// Figure 8: average observed bandwidth, UCSB -> UF, 1 MB - 128 MB.
// LSL's advantage appears once the two-connection overhead is amortized.
#include "bench_common.hpp"
#include "util/units.hpp"

int main() {
  using namespace lsl;
  const std::vector<std::uint64_t> sizes = {
      1 * util::kMiB,  2 * util::kMiB,  4 * util::kMiB,  8 * util::kMiB,
      16 * util::kMiB, 32 * util::kMiB, 64 * util::kMiB, 128 * util::kMiB};
  const auto pts = bench::size_sweep(exp::case2_ucsb_uf(), sizes,
                                     bench::iterations(8));
  bench::emit(bench::sweep_table(
                  "Fig 8: Bandwidth UCSB->UF (1M-128M), direct vs LSL", pts),
              "fig08_bw_uf_large");
  return 0;
}
