// Figure 10: average observed bandwidth, UTK -> UCSB over the 802.11b edge,
// 1 MB - 256 MB (the paper plots a log-scale x axis). LSL yields a modest
// (~13%) average improvement; sublink 1 (the wired path) is the bottleneck.
#include "bench_common.hpp"
#include "util/units.hpp"

int main() {
  using namespace lsl;
  const std::vector<std::uint64_t> sizes = {
      1 * util::kMiB,  4 * util::kMiB,   16 * util::kMiB,
      64 * util::kMiB, 128 * util::kMiB, 256 * util::kMiB};
  const auto pts = bench::size_sweep(exp::case3_utk_wireless(), sizes,
                                     bench::iterations(5));
  bench::emit(
      bench::sweep_table(
          "Fig 10: Bandwidth UTK->UCSB wireless (1M-256M), direct vs LSL",
          pts),
      "fig10_bw_wireless");
  return 0;
}
