// Figures 19-22: sequence growth of 16 MB transfers, UCSB -> UIUC: min /
// median / max loss cases and the average. The LSL-vs-direct gap widens
// with the loss rate, because each sublink recovers on its own shorter RTT.
#include "bench_common.hpp"
#include "util/units.hpp"

int main() {
  using namespace lsl;
  const auto runs = bench::traced_runs(exp::case1_ucsb_uiuc(),
                                       16 * util::kMiB,
                                       bench::iterations(10));
  const char* names[3] = {"Fig 19: 16MB, minimum-loss case",
                          "Fig 20: 16MB, median-loss case",
                          "Fig 21: 16MB, maximum-loss case"};
  const char* stems[3] = {"fig19_seq_16m_minloss", "fig20_seq_16m_medloss",
                          "fig21_seq_16m_maxloss"};
  for (int which = 0; which < 3; ++which) {
    const auto& r = bench::select_by_loss(runs, which);
    bench::emit(bench::growth_table_single(names[which], r, 30),
                stems[which]);
  }
  bench::emit(bench::growth_table("Fig 22: 16MB, average over all runs",
                                  runs, 30),
              "fig22_seq_16m_avg");
  return 0;
}
