// Ablation: end-host socket buffers. The paper notes (§IV.A) that LSL's
// improvement is *more* profound when end hosts have limited buffers — the
// situation of lightweight mobile devices — because a small receive window
// caps direct TCP at window/RTT(e2e), while each LSL sublink only needs
// window/RTT(sublink).
#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

int main() {
  using namespace lsl;
  const std::uint64_t bufs[] = {64 * util::kKiB, 128 * util::kKiB,
                                256 * util::kKiB, 1 * util::kMiB,
                                8 * util::kMiB};

  const exp::PathParams path = exp::case1_ucsb_uiuc();
  util::Table t(
      "Ablation: end-host socket buffer vs throughput (16MB, Case 1)",
      {"buffer", "direct_mbps", "lsl_mbps", "gain_%"});
  for (const std::uint64_t b : bufs) {
    exp::RunConfig cfg;
    cfg.bytes = 16 * util::kMiB;
    cfg.seed = bench::base_seed();
    cfg.tcp.send_buffer = b;
    cfg.tcp.recv_buffer = b;

    cfg.mode = exp::Mode::kDirectTcp;
    const auto direct = exp::run_many(path, cfg, bench::iterations(4));
    cfg.mode = exp::Mode::kLsl;
    const auto lsl = exp::run_many(path, cfg, bench::iterations(4));
    const double dm = exp::mean_mbps(direct);
    const double lm = exp::mean_mbps(lsl);
    t.add_row({util::format_bytes(b), util::Cell(dm, 2), util::Cell(lm, 2),
               util::Cell(dm > 0 ? (lm / dm - 1.0) * 100.0 : 0.0, 1)});
  }
  bench::emit(t, "abl_endhost_buffer");
  return 0;
}
