// Ablation: LSL gain vs path loss rate. The Mathis model predicts direct
// throughput ~ MSS/(RTT*sqrt(p)) while each LSL sublink sees roughly half
// the RTT and half the loss — so the gain should *grow* with the loss rate
// until other limits (depot capacity, link rate) bind.
#include "bench_common.hpp"
#include "util/units.hpp"

int main() {
  using namespace lsl;
  const double losses[] = {1e-5, 5e-5, 1.4e-4, 5e-4, 1e-3};

  util::Table t("Ablation: per-segment loss rate vs LSL gain (16MB, Case 1)",
                {"loss_per_segment", "direct_mbps", "lsl_mbps", "gain_%"});
  for (const double p : losses) {
    exp::PathParams path = exp::case1_ucsb_uiuc();
    path.wan1_loss = p;
    path.wan2_loss = p;
    const auto pts = bench::size_sweep(path, {16 * util::kMiB},
                                       bench::iterations(4));
    t.add_row({util::Cell(p, 6), util::Cell(pts[0].direct_mbps, 2),
               util::Cell(pts[0].lsl_mbps, 2),
               util::Cell(pts[0].gain_percent, 1)});
  }
  bench::emit(t, "abl_loss_sweep");
  return 0;
}
