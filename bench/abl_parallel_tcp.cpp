// Ablation: PSockets-style parallel TCP (related work, §II) vs LSL.
// Striping over N connections also beats a single direct stream (each
// stream recovers independently and the aggregate window grows N times
// faster), but unlike LSL it multiplies the flow's aggressiveness at the
// shared bottleneck instead of shortening the control loops.
//
// The striped legs (src/stripe) change the topology, not just the
// connection count: one session over N *disjoint* depot chains, so the
// lanes aggregate independent path bandwidth instead of contending for
// one bottleneck, and the sink reassembles the merged stream.
#include "bench_common.hpp"
#include "exp/striped.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

int main() {
  using namespace lsl;
  const exp::PathParams path = exp::case1_ucsb_uiuc();
  const std::uint64_t bytes = 64 * util::kMiB;
  const std::size_t iters = bench::iterations(4);

  util::Table t("Ablation: direct vs parallel-TCP vs LSL (64MB, Case 1)",
                {"mode", "mbps", "sd"});

  const auto add = [&](const std::string& name, exp::RunConfig cfg) {
    cfg.bytes = bytes;
    cfg.seed = bench::base_seed();
    const auto runs = exp::run_many(path, cfg, iters);
    util::RunningStats s;
    for (const auto& r : runs) {
      if (r.completed) s.add(r.mbps);
    }
    t.add_row({name, util::Cell(s.mean(), 2), util::Cell(s.stddev(), 2)});
  };

  exp::RunConfig cfg;
  cfg.mode = exp::Mode::kDirectTcp;
  add("direct TCP", cfg);
  cfg.mode = exp::Mode::kParallelTcp;
  for (std::size_t n : {2u, 4u, 8u}) {
    cfg.parallel_streams = n;
    add("parallel x" + std::to_string(n), cfg);
  }
  cfg.mode = exp::Mode::kLsl;
  add("LSL (1 depot)", cfg);

  // One striped session over n disjoint chains, Case-1-like per-path WAN.
  for (std::uint16_t n = 1; n <= 4; ++n) {
    util::RunningStats s;
    for (std::size_t i = 0; i < iters; ++i) {
      exp::StripedParams p;
      p.paths = 4;
      p.stripes = n;
      p.bytes = bytes;
      p.seed = bench::base_seed() + i;
      const exp::StripedResult r = exp::run_striped(p);
      if (r.verified) s.add(r.mbps);
    }
    t.add_row({"LSL striped x" + std::to_string(n), util::Cell(s.mean(), 2),
               util::Cell(s.stddev(), 2)});
  }

  bench::emit(t, "abl_parallel_tcp");
  return 0;
}
