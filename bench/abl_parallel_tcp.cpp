// Ablation: PSockets-style parallel TCP (related work, §II) vs LSL.
// Striping over N connections also beats a single direct stream (each
// stream recovers independently and the aggregate window grows N times
// faster), but unlike LSL it multiplies the flow's aggressiveness at the
// shared bottleneck instead of shortening the control loops.
#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

int main() {
  using namespace lsl;
  const exp::PathParams path = exp::case1_ucsb_uiuc();
  const std::uint64_t bytes = 64 * util::kMiB;
  const std::size_t iters = bench::iterations(4);

  util::Table t("Ablation: direct vs parallel-TCP vs LSL (64MB, Case 1)",
                {"mode", "mbps", "sd"});

  const auto add = [&](const std::string& name, exp::RunConfig cfg) {
    cfg.bytes = bytes;
    cfg.seed = bench::base_seed();
    const auto runs = exp::run_many(path, cfg, iters);
    util::RunningStats s;
    for (const auto& r : runs) {
      if (r.completed) s.add(r.mbps);
    }
    t.add_row({name, util::Cell(s.mean(), 2), util::Cell(s.stddev(), 2)});
  };

  exp::RunConfig cfg;
  cfg.mode = exp::Mode::kDirectTcp;
  add("direct TCP", cfg);
  cfg.mode = exp::Mode::kParallelTcp;
  for (std::size_t n : {2u, 4u, 8u}) {
    cfg.parallel_streams = n;
    add("parallel x" + std::to_string(n), cfg);
  }
  cfg.mode = exp::Mode::kLsl;
  add("LSL (1 depot)", cfg);

  bench::emit(t, "abl_parallel_tcp");
  return 0;
}
