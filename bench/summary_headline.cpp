// The headline claim: "LSL can increase end-to-end throughput by an average
// of 40% and as much as 75% in a variety of network settings." This bench
// aggregates the LSL gain over a basket spanning all four measurement
// configurations and a range of transfer sizes, and reports the average and
// maximum observed improvement.
#include <algorithm>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

int main() {
  using namespace lsl;

  struct Entry {
    exp::PathParams path;
    std::vector<std::uint64_t> sizes;
  };
  const std::vector<Entry> basket = {
      {exp::case1_ucsb_uiuc(),
       {1 * util::kMiB, 4 * util::kMiB, 16 * util::kMiB, 64 * util::kMiB}},
      {exp::case2_ucsb_uf(),
       {4 * util::kMiB, 16 * util::kMiB, 64 * util::kMiB}},
      {exp::case_osu_steady(),
       {4 * util::kMiB, 32 * util::kMiB, 128 * util::kMiB}},
      {exp::case3_utk_wireless(), {4 * util::kMiB, 32 * util::kMiB}},
  };

  util::Table t("Headline: LSL throughput gain across settings",
                {"path", "xfer_size", "direct_mbps", "lsl_mbps", "gain_%"});
  util::RunningStats gains;
  for (const auto& e : basket) {
    const auto pts = bench::size_sweep(e.path, e.sizes, bench::iterations(5));
    for (const auto& p : pts) {
      t.add_row({e.path.name, util::format_bytes(p.bytes),
                 util::Cell(p.direct_mbps, 2), util::Cell(p.lsl_mbps, 2),
                 util::Cell(p.gain_percent, 1)});
      gains.add(p.gain_percent);
    }
  }
  t.add_row({"AVERAGE", "", "", "", util::Cell(gains.mean(), 1)});
  t.add_row({"MAX", "", "", "", util::Cell(gains.max(), 1)});
  bench::emit(t, "summary_headline");
  return 0;
}
