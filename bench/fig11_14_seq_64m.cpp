// Figures 11-14: normalized sequence-number growth for 64 MB transfers,
// UCSB -> UIUC. Figure 11 plots the individual direct-TCP runs and their
// average; Figures 12/13 the LSL sublinks; Figure 14 overlays the three
// averages. We print the per-run summaries (the individual curves' end
// points and loss counts) plus the averaged overlay table.
#include "bench_common.hpp"
#include "trace/analysis.hpp"
#include "util/units.hpp"

int main() {
  using namespace lsl;
  const auto runs = bench::traced_runs(exp::case1_ucsb_uiuc(),
                                       64 * util::kMiB,
                                       bench::iterations(10));

  util::Table per_run(
      "Fig 11-13: individual 64MB runs (UCSB->UIUC): durations and "
      "retransmissions per connection",
      {"test", "direct_s", "direct_retx", "sublink1_s", "sublink1_retx",
       "sublink2_s", "sublink2_retx"});
  int test = 0;
  for (const auto& r : runs) {
    const double s1 = r.lsl.traces.size() > 0
                          ? util::duration(trace::sequence_growth(
                                *r.lsl.traces[0]))
                          : 0.0;
    const double s2 = r.lsl.traces.size() > 1
                          ? util::duration(trace::sequence_growth(
                                *r.lsl.traces[1]))
                          : 0.0;
    per_run.add_row(
        {++test, util::Cell(r.direct.seconds, 2),
         util::Cell(r.direct.retransmits),
         util::Cell(s1, 2),
         util::Cell(r.lsl.retx_per_link.size() > 0 ? r.lsl.retx_per_link[0]
                                                   : 0),
         util::Cell(s2, 2),
         util::Cell(r.lsl.retx_per_link.size() > 1 ? r.lsl.retx_per_link[1]
                                                   : 0)});
  }
  bench::emit(per_run, "fig11_13_individual");

  bench::emit(bench::growth_table(
                  "Fig 14: average sequence growth, 64MB UCSB->UIUC "
                  "(direct vs LSL sublinks)",
                  runs, 40),
              "fig14_seq_avg_64m");
  return 0;
}
