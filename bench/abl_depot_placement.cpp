// Ablation: depot placement. The paper chose depots "to minimize the
// divergence of the LSL path from the default TCP path" (Figure 2). This
// sweep moves the depot progressively farther off-path (larger attachment
// delay) and shows the gain eroding: a long detour both lengthens the
// cascade RTT sum and unbalances the sublink control loops.
#include "bench_common.hpp"
#include "util/units.hpp"

int main() {
  using namespace lsl;
  const double detours_ms[] = {0.25, 1.5, 5.0, 10.0, 20.0, 40.0};

  util::Table t("Ablation: depot attachment delay vs LSL gain (64MB, Case 1)",
                {"detour_ms", "direct_mbps", "lsl_mbps", "gain_%",
                 "rtt_sum_ms", "rtt_e2e_ms"});
  for (const double d : detours_ms) {
    exp::PathParams p = exp::case1_ucsb_uiuc();
    p.depot_link_delay = util::millis(d);
    const auto runs =
        bench::traced_runs(p, 64 * util::kMiB, bench::iterations(4));
    util::RunningStats dm, lm, s1, s2, e2e;
    for (const auto& r : runs) {
      if (r.direct.completed) dm.add(r.direct.mbps);
      if (r.lsl.completed) lm.add(r.lsl.mbps);
      if (!r.direct.rtt_ms.empty()) e2e.add(r.direct.rtt_ms[0]);
      if (r.lsl.rtt_ms.size() > 0) s1.add(r.lsl.rtt_ms[0]);
      if (r.lsl.rtt_ms.size() > 1) s2.add(r.lsl.rtt_ms[1]);
    }
    t.add_row({util::Cell(d, 2), util::Cell(dm.mean(), 2),
               util::Cell(lm.mean(), 2),
               util::Cell((lm.mean() / dm.mean() - 1.0) * 100.0, 1),
               util::Cell(s1.mean() + s2.mean(), 1),
               util::Cell(e2e.mean(), 1)});
  }
  bench::emit(t, "abl_depot_placement");
  return 0;
}
