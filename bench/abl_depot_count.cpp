// Ablation: number of cascaded depots. Holding the total path (delay and
// loss budget) constant, each additional depot shortens every control
// loop's RTT — but adds a handshake, a copy stage and per-session setup.
// The gain should grow with diminishing returns and eventually flatten.
#include "bench_common.hpp"
#include "exp/chain.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

int main() {
  using namespace lsl;
  util::Table t(
      "Ablation: cascaded depot count (32MB, 57ms / 2.8e-4-loss path)",
      {"depots", "mbps", "sd", "gain_vs_direct_%"});
  double direct = 0.0;
  for (std::size_t depots : {0u, 1u, 2u, 3u, 4u}) {
    util::RunningStats s;
    for (std::size_t i = 0; i < bench::iterations(4); ++i) {
      exp::ChainParams p;
      p.depots = depots;
      p.bytes = 32 * util::kMiB;
      p.seed = bench::base_seed() + i;
      const auto r = exp::run_chain(p);
      if (r.completed) s.add(r.mbps);
    }
    if (depots == 0) direct = s.mean();
    t.add_row({util::Cell(static_cast<std::uint64_t>(depots)),
               util::Cell(s.mean(), 2), util::Cell(s.stddev(), 2),
               util::Cell(direct > 0 ? (s.mean() / direct - 1.0) * 100.0 : 0.0,
                          1)});
  }
  bench::emit(t, "abl_depot_count");
  return 0;
}
