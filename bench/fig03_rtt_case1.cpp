// Figure 3: average observed TCP round-trip time, Case 1 (UCSB -> UIUC via
// the Denver depot). RTTs are ACK-matched from sender-side traces of 64 MB
// transfers, exactly as the paper derives them from tcpdump.
#include "bench_common.hpp"
#include "util/units.hpp"

int main() {
  using namespace lsl;
  const auto runs = bench::traced_runs(exp::case1_ucsb_uiuc(),
                                       64 * util::kMiB,
                                       bench::iterations(6));
  bench::emit(bench::rtt_figure(
                  "Fig 3: Average observed TCP RTT, Case 1 (via Denver)",
                  runs),
              "fig03_rtt_case1");
  bench::emit_trace_metrics(runs, "fig03_rtt_case1");
  return 0;
}
