// Figure 9: average observed TCP round-trip time, Case 3 (UTK -> UCSB with
// an 802.11b last hop; depot at the UCSB wired edge). Sublink 1 — the long
// wired path — carries nearly all of the latency.
#include "bench_common.hpp"
#include "util/units.hpp"

int main() {
  using namespace lsl;
  const auto runs = bench::traced_runs(exp::case3_utk_wireless(),
                                       32 * util::kMiB,
                                       bench::iterations(6));
  bench::emit(bench::rtt_figure(
                  "Fig 9: Average observed TCP RTT, Case 3 (wireless edge)",
                  runs),
              "fig09_rtt_case3");
  bench::emit_trace_metrics(runs, "fig09_rtt_case3");
  return 0;
}
