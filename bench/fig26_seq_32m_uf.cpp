// Figure 26: average sequence growth of 32 MB transfers UCSB -> UF (via
// Houston). The sublink slopes sit close together: sublink 1 — nearer the
// sender — is the bottleneck on this path.
#include "bench_common.hpp"
#include "util/units.hpp"

int main() {
  using namespace lsl;
  const auto runs = bench::traced_runs(exp::case2_ucsb_uf(), 32 * util::kMiB,
                                       bench::iterations(8));
  bench::emit(bench::growth_table(
                  "Fig 26: average sequence growth, 32MB UCSB->UF", runs, 30),
              "fig26_seq_32m_uf");
  return 0;
}
