// Figure 29: UCSB -> OSU, 32 KB - 1024 KB: the small-transfer end of the
// steady-state study, showing the connection-setup crossover.
#include "bench_common.hpp"
#include "util/units.hpp"

int main() {
  using namespace lsl;
  const std::vector<std::uint64_t> sizes = {
      32 * util::kKiB,  64 * util::kKiB,  128 * util::kKiB, 256 * util::kKiB,
      384 * util::kKiB, 512 * util::kKiB, 768 * util::kKiB, 1024 * util::kKiB};
  const auto pts = bench::size_sweep(exp::case_osu_steady(), sizes,
                                     bench::iterations(10));
  bench::emit(bench::sweep_table(
                  "Fig 29: Bandwidth UCSB->OSU (32K-1024K), direct vs LSL",
                  pts),
              "fig29_bw_osu_small");
  return 0;
}
