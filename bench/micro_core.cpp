// Micro-benchmarks (google-benchmark) of the core building blocks: MD5
// hashing, the discrete-event queue, the SACK interval set, the payload
// generator, trace analysis, and the PRNG. These bound the simulator's own
// overheads so the figure benches' wall-clock behaviour is explainable.
#include <benchmark/benchmark.h>

#include <vector>

#include "lsl/payload.hpp"
#include "md5/md5.hpp"
#include "sim/event_queue.hpp"
#include "trace/analysis.hpp"
#include "util/interval_set.hpp"
#include "util/rng.hpp"

namespace {

void BM_Md5Throughput(benchmark::State& state) {
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(state.range(0)));
  lsl::util::Rng rng(1);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng());
  for (auto _ : state) {
    lsl::md5::Md5 h;
    h.update(buf);
    auto d = h.finalize();
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Md5Throughput)->Arg(4 << 10)->Arg(64 << 10)->Arg(1 << 20);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    lsl::sim::EventQueue q;
    std::uint64_t sum = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      q.schedule_at(i * 10, [&sum, i] { sum += static_cast<std::uint64_t>(i); });
    }
    q.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_EventQueueCancel(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    lsl::sim::EventQueue q;
    std::vector<lsl::sim::EventId> ids;
    ids.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      ids.push_back(q.schedule_at(i, [] {}));
    }
    for (auto id : ids) q.cancel(id);
    q.run();
    benchmark::DoNotOptimize(q.executed_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_EventQueueCancel)->Arg(1 << 12)->Arg(1 << 16);

void BM_IntervalSetSackPattern(benchmark::State& state) {
  // Emulates a SACK scoreboard: scattered inserts then gap scans.
  const std::int64_t n = state.range(0);
  lsl::util::Rng rng(7);
  for (auto _ : state) {
    lsl::util::IntervalSet set;
    for (std::int64_t i = 0; i < n; ++i) {
      const std::uint64_t start = rng.uniform_int(0, 1u << 22);
      set.insert(start, start + 1448);
    }
    std::uint64_t holes = 0;
    std::uint64_t from = 0;
    while (auto gap = set.next_gap(from, 1u << 22)) {
      ++holes;
      from = gap->second;
    }
    benchmark::DoNotOptimize(holes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_IntervalSetSackPattern)->Arg(64)->Arg(1024);

void BM_PayloadGenerator(benchmark::State& state) {
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(state.range(0)));
  lsl::core::PayloadGenerator gen(42);
  for (auto _ : state) {
    gen.generate(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PayloadGenerator)->Arg(16 << 10)->Arg(256 << 10);

void BM_Rng(benchmark::State& state) {
  lsl::util::Rng rng(3);
  std::uint64_t acc = 0;
  for (auto _ : state) acc += rng();
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_Rng);

void BM_RttAnalysis(benchmark::State& state) {
  // Build a synthetic trace of n data packets + matching ACKs, then time
  // the ACK-matching RTT derivation (Karn's exclusion included: every 16th
  // segment is retransmitted so the matcher exercises the discard path).
  const std::int64_t n = state.range(0);
  lsl::trace::TraceRecorder rec("synthetic");
  for (std::int64_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * 1.0;  // 1 ms per segment
    const auto seq = static_cast<std::uint64_t>(i) * 1448;
    lsl::trace::TraceEvent data;
    data.time = lsl::util::millis(t);
    data.outgoing = true;
    data.seq = seq;
    data.payload = 1448;
    data.retransmit = (i % 16) == 15;
    rec.record(data);
    lsl::trace::TraceEvent ack;
    ack.time = lsl::util::millis(t + 30.0);
    ack.outgoing = false;
    ack.flags = lsl::sim::kFlagAck;
    ack.ack = seq + 1448;
    rec.record(ack);
  }
  for (auto _ : state) {
    auto samples = lsl::trace::rtt_samples(rec);
    benchmark::DoNotOptimize(samples.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_RttAnalysis)->Arg(1 << 14);

}  // namespace

BENCHMARK_MAIN();
