// Figure 28: "steady-state" study — UCSB -> OSU, 1 MB to 512 MB (log x).
// The paper ran 120 iterations per size; the default here is scaled down
// for wall-clock reasons (LSL_BENCH_ITERS raises it). The point being
// reproduced: the LSL advantage persists at 512 MB with no sign of
// convergence — TCP's RTT dependence governs the whole life of the
// connection, not just slow start.
#include "bench_common.hpp"
#include "util/units.hpp"

int main() {
  using namespace lsl;
  const std::vector<std::uint64_t> sizes = {
      1 * util::kMiB,  2 * util::kMiB,  4 * util::kMiB,   8 * util::kMiB,
      16 * util::kMiB, 32 * util::kMiB, 64 * util::kMiB, 128 * util::kMiB,
      256 * util::kMiB, 512 * util::kMiB};
  const auto pts = bench::size_sweep(exp::case_osu_steady(), sizes,
                                     bench::iterations(5));
  bench::emit(bench::sweep_table(
                  "Fig 28: Bandwidth UCSB->OSU (1M-512M), direct vs LSL",
                  pts),
              "fig28_bw_osu_large");
  return 0;
}
