// Figure 4: average observed TCP round-trip time, Case 2 (UCSB -> UF via
// the Houston depot). The sum of sublink RTTs exceeds the direct RTT by
// ~20 ms of load-induced depot-attachment latency (paper §IV.A footnote).
#include "bench_common.hpp"
#include "util/units.hpp"

int main() {
  using namespace lsl;
  const auto runs = bench::traced_runs(exp::case2_ucsb_uf(), 64 * util::kMiB,
                                       bench::iterations(6));
  bench::emit(bench::rtt_figure(
                  "Fig 4: Average observed TCP RTT, Case 2 (via Houston)",
                  runs),
              "fig04_rtt_case2");
  bench::emit_trace_metrics(runs, "fig04_rtt_case2");
  return 0;
}
