// Figure 27: sequence growth of one 256 MB transfer over the wireless edge
// path (UTK -> UCSB). Sublink 1 (the long wired path) is the bottleneck.
#include "bench_common.hpp"
#include "util/units.hpp"

int main() {
  using namespace lsl;
  const auto runs = bench::traced_runs(exp::case3_utk_wireless(),
                                       256 * util::kMiB, 1);
  bench::emit(bench::growth_table_single(
                  "Fig 27: sequence growth, 256MB wireless case", runs[0],
                  40),
              "fig27_seq_wireless");
  return 0;
}
