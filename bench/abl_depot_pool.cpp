// Scalability (paper §VII): contention and depot pooling. "We did not
// measure the effects of multiple-connection contention ... admission
// control and load balancing over a pool of available depots could easily
// be used to provide scalability."
//
// N concurrent LSL sessions share the POP; they are balanced round-robin
// over K depot daemons attached to it. With one depot, every session queues
// behind the daemon's single copy resource; adding depots restores
// per-session throughput until the WAN segments bind.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "lsl/apps.hpp"
#include "lsl/depot.hpp"
#include "lsl/directory.hpp"
#include "lsl/session_id.hpp"
#include "sim/network.hpp"
#include "tcp/stack.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

using namespace lsl;

namespace {

constexpr sim::PortNum kDepotPort = 4000;

struct Result {
  double aggregate_mbps = 0.0;
  double per_session_mean = 0.0;
  bool ok = false;
};

Result run_pool(std::size_t sessions, std::size_t depots, std::uint64_t bytes,
                std::uint64_t seed) {
  sim::Network net(seed);
  sim::Node& src = net.add_host("src");
  sim::Node& dst = net.add_host("dst");
  sim::Node& gw_s = net.add_router("gw_s");
  sim::Node& pop = net.add_router("pop");
  sim::Node& gw_d = net.add_router("gw_d");

  sim::LinkConfig access;
  access.rate = util::DataRate::mbps(200);
  access.delay = util::millis(0.5);
  net.connect(src, gw_s, access);
  net.connect(gw_d, dst, access);

  sim::LinkConfig wan;
  wan.rate = util::DataRate::mbps(60);
  wan.delay = util::millis(14);
  wan.loss_rate = 1.4e-4;
  net.connect(gw_s, pop, wan);
  net.connect(pop, gw_d, wan);

  std::vector<sim::Node*> depot_nodes;
  for (std::size_t i = 0; i < depots; ++i) {
    sim::Node& d = net.add_host("depot" + std::to_string(i));
    sim::LinkConfig dlink;
    dlink.rate = util::DataRate::mbps(100);
    dlink.delay = util::millis(1.5);
    net.connect(pop, d, dlink);
    depot_nodes.push_back(&d);
  }
  net.compute_routes();

  tcp::TcpConfig tcp;
  tcp.initial_ssthresh = 64 * util::kKiB;
  tcp::TcpStack s_src(net, src, tcp);
  tcp::TcpStack s_dst(net, dst, tcp);
  std::vector<std::unique_ptr<tcp::TcpStack>> depot_stacks;
  core::SessionDirectory dir;
  std::vector<std::unique_ptr<core::DepotApp>> depot_apps;
  for (sim::Node* d : depot_nodes) {
    depot_stacks.push_back(std::make_unique<tcp::TcpStack>(net, *d, tcp));
    core::DepotConfig dcfg;
    dcfg.port = kDepotPort;
    dcfg.buffer_bytes = util::kMiB;
    dcfg.copy_rate = util::DataRate::mbps(18);
    dcfg.wakeup_latency = util::micros(200);
    dcfg.session_setup_latency = util::millis(40);
    depot_apps.push_back(std::make_unique<core::DepotApp>(
        *depot_stacks.back(), dcfg, &dir));
  }

  std::size_t completed = 0;
  util::SimTime last_done = 0;
  std::vector<double> per_session;
  std::vector<std::unique_ptr<core::SinkServer>> sinks;
  std::vector<std::unique_ptr<core::SourceApp>> sources;
  std::vector<util::SimTime> starts(sessions, 0);

  for (std::size_t i = 0; i < sessions; ++i) {
    const sim::PortNum sink_port = static_cast<sim::PortNum>(5001 + i);
    core::SinkConfig scfg;
    scfg.expect_header = true;
    sinks.push_back(
        std::make_unique<core::SinkServer>(s_dst, sink_port, scfg, &dir));
    sinks.back()->on_complete = [&, i](core::SinkApp& app) {
      ++completed;
      last_done = std::max(last_done, app.complete_time());
      per_session.push_back(util::throughput_mbps(
          app.payload_received(), app.complete_time() - starts[i]));
    };

    sim::Node* depot = depot_nodes[i % depots];
    core::SourceConfig cfg;
    cfg.payload_bytes = bytes;
    cfg.use_header = true;
    util::Rng rng(seed * 100 + i);
    cfg.header.session = core::SessionId::generate(rng);
    cfg.header.payload_length = bytes;
    cfg.header.hops = {{depot->id(), kDepotPort}};
    cfg.header.destination = {dst.id(), sink_port};
    sources.push_back(std::make_unique<core::SourceApp>(
        s_src, sim::Endpoint{depot->id(), kDepotPort}, cfg, &dir));
    sources.back()->start();
    starts[i] = sources.back()->start_time();
  }

  auto& ev = net.sim().events();
  while (completed < sessions && ev.now() <= 3600ll * util::kSecond &&
         ev.step()) {
  }
  Result res;
  if (completed < sessions) return res;
  res.ok = true;
  res.aggregate_mbps = util::throughput_mbps(
      bytes * sessions, last_done - starts[0]);
  res.per_session_mean = util::mean(per_session);
  return res;
}

}  // namespace

int main() {
  const std::uint64_t bytes = 16 * util::kMiB;
  const std::size_t iters = lsl::bench::iterations(3);

  struct Combo {
    std::size_t sessions, depots;
  };
  const Combo combos[] = {{1, 1}, {2, 1}, {4, 1}, {8, 1},
                          {2, 2}, {4, 2}, {4, 4}, {8, 4}};

  util::Table t("Scalability: N concurrent sessions over K pooled depots "
                "(16MB each; one depot sustains ~18 Mbit/s of relay copy)",
                {"sessions", "depots", "aggregate_mbps", "per_session_mbps"});
  for (const Combo& c : combos) {
    util::RunningStats agg, per;
    for (std::size_t i = 0; i < iters; ++i) {
      const Result r =
          run_pool(c.sessions, c.depots, bytes, lsl::bench::base_seed() + i);
      if (r.ok) {
        agg.add(r.aggregate_mbps);
        per.add(r.per_session_mean);
      }
    }
    t.add_row({util::Cell(static_cast<std::uint64_t>(c.sessions)),
               util::Cell(static_cast<std::uint64_t>(c.depots)),
               util::Cell(agg.mean(), 2), util::Cell(per.mean(), 2)});
  }
  lsl::bench::emit(t, "abl_depot_pool");
  return 0;
}
