// Scalability (paper §VII): contention and depot pooling. "We did not
// measure the effects of multiple-connection contention ... admission
// control and load balancing over a pool of available depots could easily
// be used to provide scalability."
//
// N concurrent LSL sessions share the POP; they are balanced round-robin
// over K depot daemons attached to it. With one depot, every session queues
// behind the daemon's single copy resource; adding depots restores
// per-session throughput until the WAN segments bind.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "lsl/apps.hpp"
#include "lsl/depot.hpp"
#include "lsl/directory.hpp"
#include "lsl/session_id.hpp"
#include "sim/network.hpp"
#include "tcp/stack.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

using namespace lsl;

namespace {

constexpr sim::PortNum kDepotPort = 4000;

struct Result {
  double aggregate_mbps = 0.0;
  double per_session_mean = 0.0;
  bool ok = false;
};

Result run_pool(std::size_t sessions, std::size_t depots, std::uint64_t bytes,
                std::uint64_t seed) {
  sim::Network net(seed);
  sim::Node& src = net.add_host("src");
  sim::Node& dst = net.add_host("dst");
  sim::Node& gw_s = net.add_router("gw_s");
  sim::Node& pop = net.add_router("pop");
  sim::Node& gw_d = net.add_router("gw_d");

  sim::LinkConfig access;
  access.rate = util::DataRate::mbps(200);
  access.delay = util::millis(0.5);
  net.connect(src, gw_s, access);
  net.connect(gw_d, dst, access);

  sim::LinkConfig wan;
  wan.rate = util::DataRate::mbps(60);
  wan.delay = util::millis(14);
  wan.loss_rate = 1.4e-4;
  net.connect(gw_s, pop, wan);
  net.connect(pop, gw_d, wan);

  std::vector<sim::Node*> depot_nodes;
  for (std::size_t i = 0; i < depots; ++i) {
    sim::Node& d = net.add_host("depot" + std::to_string(i));
    sim::LinkConfig dlink;
    dlink.rate = util::DataRate::mbps(100);
    dlink.delay = util::millis(1.5);
    net.connect(pop, d, dlink);
    depot_nodes.push_back(&d);
  }
  net.compute_routes();

  tcp::TcpConfig tcp;
  tcp.initial_ssthresh = 64 * util::kKiB;
  tcp::TcpStack s_src(net, src, tcp);
  tcp::TcpStack s_dst(net, dst, tcp);
  std::vector<std::unique_ptr<tcp::TcpStack>> depot_stacks;
  core::SessionDirectory dir;
  std::vector<std::unique_ptr<core::DepotApp>> depot_apps;
  for (sim::Node* d : depot_nodes) {
    depot_stacks.push_back(std::make_unique<tcp::TcpStack>(net, *d, tcp));
    core::DepotConfig dcfg;
    dcfg.port = kDepotPort;
    dcfg.buffer_bytes = util::kMiB;
    dcfg.copy_rate = util::DataRate::mbps(18);
    dcfg.wakeup_latency = util::micros(200);
    dcfg.session_setup_latency = util::millis(40);
    depot_apps.push_back(std::make_unique<core::DepotApp>(
        *depot_stacks.back(), dcfg, &dir));
  }

  std::size_t completed = 0;
  util::SimTime last_done = 0;
  std::vector<double> per_session;
  std::vector<std::unique_ptr<core::SinkServer>> sinks;
  std::vector<std::unique_ptr<core::SourceApp>> sources;
  std::vector<util::SimTime> starts(sessions, 0);

  for (std::size_t i = 0; i < sessions; ++i) {
    const sim::PortNum sink_port = static_cast<sim::PortNum>(5001 + i);
    core::SinkConfig scfg;
    scfg.expect_header = true;
    sinks.push_back(
        std::make_unique<core::SinkServer>(s_dst, sink_port, scfg, &dir));
    sinks.back()->on_complete = [&, i](core::SinkApp& app) {
      ++completed;
      last_done = std::max(last_done, app.complete_time());
      per_session.push_back(util::throughput_mbps(
          app.payload_received(), app.complete_time() - starts[i]));
    };

    sim::Node* depot = depot_nodes[i % depots];
    core::SourceConfig cfg;
    cfg.payload_bytes = bytes;
    cfg.use_header = true;
    util::Rng rng(seed * 100 + i);
    cfg.header.session = core::SessionId::generate(rng);
    cfg.header.payload_length = bytes;
    cfg.header.hops = {{depot->id(), kDepotPort}};
    cfg.header.destination = {dst.id(), sink_port};
    sources.push_back(std::make_unique<core::SourceApp>(
        s_src, sim::Endpoint{depot->id(), kDepotPort}, cfg, &dir));
    sources.back()->start();
    starts[i] = sources.back()->start_time();
  }

  auto& ev = net.sim().events();
  while (completed < sessions && ev.now() <= 3600ll * util::kSecond &&
         ev.step()) {
  }
  Result res;
  if (completed < sessions) return res;
  res.ok = true;
  res.aggregate_mbps = util::throughput_mbps(
      bytes * sessions, last_done - starts[0]);
  res.per_session_mean = util::mean(per_session);
  return res;
}

struct BudgetResult {
  std::size_t completed = 0;
  std::uint64_t refused_memory = 0;
  std::uint64_t peak_bytes = 0;
  std::uint64_t pressure_episodes = 0;
  double aggregate_mbps = 0.0;
};

// Memory-budget leg: one depot whose copy resource is the bottleneck, with
// the pooled-memory admission model enabled. Sessions arrive staggered so
// early arrivals drive the buffer into the high watermark and later ones
// face refusal; shrinking the budget trades buffered bytes (and admitted
// sessions) against a hard per-depot memory ceiling.
BudgetResult run_budget(std::size_t sessions, std::uint64_t budget_bytes,
                        std::uint64_t bytes, std::uint64_t seed) {
  sim::Network net(seed);
  sim::Node& src = net.add_host("src");
  sim::Node& dst = net.add_host("dst");
  sim::Node& depot = net.add_host("depot");

  sim::LinkConfig fast;
  fast.rate = util::DataRate::mbps(200);
  fast.delay = util::millis(1);
  net.connect(src, depot, fast);
  net.connect(depot, dst, fast);
  net.compute_routes();

  tcp::TcpConfig tcp;
  tcp.initial_ssthresh = 64 * util::kKiB;
  tcp::TcpStack s_src(net, src, tcp);
  tcp::TcpStack s_dst(net, dst, tcp);
  tcp::TcpStack s_depot(net, depot, tcp);

  core::SessionDirectory dir;
  core::DepotConfig dcfg;
  dcfg.port = kDepotPort;
  dcfg.buffer_bytes = 4 * util::kMiB;
  dcfg.copy_rate = util::DataRate::mbps(18);
  dcfg.wakeup_latency = util::micros(200);
  dcfg.session_setup_latency = util::millis(5);
  dcfg.pool_budget_bytes = budget_bytes;
  dcfg.pool_low_watermark = 0.25;
  dcfg.pool_high_watermark = 0.50;
  core::DepotApp app(s_depot, dcfg, &dir);

  std::size_t completed = 0;
  util::SimTime first_start = 0;
  util::SimTime last_done = 0;
  std::vector<std::unique_ptr<core::SinkServer>> sinks;
  std::vector<std::unique_ptr<core::SourceApp>> sources;
  sources.reserve(sessions);

  auto& ev = net.sim().events();
  for (std::size_t i = 0; i < sessions; ++i) {
    const sim::PortNum sink_port = static_cast<sim::PortNum>(5001 + i);
    core::SinkConfig scfg;
    scfg.expect_header = true;
    sinks.push_back(
        std::make_unique<core::SinkServer>(s_dst, sink_port, scfg, &dir));
    sinks.back()->on_complete = [&](core::SinkApp& s) {
      ++completed;
      last_done = std::max(last_done, s.complete_time());
    };

    ev.schedule_at(static_cast<util::SimTime>(i) * util::millis(200),
                   [&, i, sink_port] {
      core::SourceConfig cfg;
      cfg.payload_bytes = bytes;
      cfg.use_header = true;
      util::Rng rng(seed * 100 + i);
      cfg.header.session = core::SessionId::generate(rng);
      cfg.header.payload_length = bytes;
      cfg.header.hops = {{depot.id(), kDepotPort}};
      cfg.header.destination = {dst.id(), sink_port};
      sources.push_back(std::make_unique<core::SourceApp>(
          s_src, sim::Endpoint{depot.id(), kDepotPort}, cfg, &dir));
      sources.back()->start();
      if (i == 0) first_start = sources.back()->start_time();
    });
  }

  while (ev.now() <= 3600ll * util::kSecond && ev.step()) {
  }

  BudgetResult res;
  res.completed = completed;
  res.refused_memory = app.stats().sessions_refused_memory;
  res.peak_bytes = app.memory().peak();
  res.pressure_episodes = app.memory().pressure_episodes();
  if (completed > 0 && last_done > first_start) {
    res.aggregate_mbps =
        util::throughput_mbps(bytes * completed, last_done - first_start);
  }
  return res;
}

}  // namespace

int main() {
  const std::uint64_t bytes = 16 * util::kMiB;
  const std::size_t iters = lsl::bench::iterations(3);

  struct Combo {
    std::size_t sessions, depots;
  };
  const Combo combos[] = {{1, 1}, {2, 1}, {4, 1}, {8, 1},
                          {2, 2}, {4, 2}, {4, 4}, {8, 4}};

  util::Table t("Scalability: N concurrent sessions over K pooled depots "
                "(16MB each; one depot sustains ~18 Mbit/s of relay copy)",
                {"sessions", "depots", "aggregate_mbps", "per_session_mbps"});
  for (const Combo& c : combos) {
    util::RunningStats agg, per;
    for (std::size_t i = 0; i < iters; ++i) {
      const Result r =
          run_pool(c.sessions, c.depots, bytes, lsl::bench::base_seed() + i);
      if (r.ok) {
        agg.add(r.aggregate_mbps);
        per.add(r.per_session_mean);
      }
    }
    t.add_row({util::Cell(static_cast<std::uint64_t>(c.sessions)),
               util::Cell(static_cast<std::uint64_t>(c.depots)),
               util::Cell(agg.mean(), 2), util::Cell(per.mean(), 2)});
  }
  lsl::bench::emit(t, "abl_depot_pool");

  // Memory-budget sweep: same depot, shrinking pooled-memory budget. The
  // budget caps buffered bytes (peak <= budget) and, under pressure, turns
  // new sessions away at admission instead of growing without bound.
  const std::uint64_t budgets[] = {0, 4 * util::kMiB, util::kMiB,
                                   256 * util::kKiB};
  util::Table bt("Admission under a per-depot memory budget: 8 staggered "
                 "sessions, 4MB each (0 = unlimited)",
                 {"budget_kib", "completed", "refused_mem", "peak_kib",
                  "pressure_eps", "aggregate_mbps"});
  for (const std::uint64_t budget : budgets) {
    const BudgetResult r =
        run_budget(8, budget, 4 * util::kMiB, lsl::bench::base_seed());
    bt.add_row({util::Cell(budget / util::kKiB),
                util::Cell(static_cast<std::uint64_t>(r.completed)),
                util::Cell(r.refused_memory),
                util::Cell(r.peak_bytes / util::kKiB),
                util::Cell(r.pressure_episodes),
                util::Cell(r.aggregate_mbps, 2)});
  }
  lsl::bench::emit(bt, "abl_depot_pool_budget");
  return 0;
}
