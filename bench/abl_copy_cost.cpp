// Ablation: depot copy cost. A user-level relay pays per-byte copy
// bandwidth and per-wakeup scheduling latency; this sweep shows how depot
// host capability bounds the LSL gain (and why the paper calls its
// unprivileged prototype "a worst-case scenario in some sense").
#include "bench_common.hpp"
#include "exp/runner.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

int main() {
  using namespace lsl;
  const exp::PathParams path = exp::case1_ucsb_uiuc();

  util::Table t("Ablation: depot relay rate / wakeup latency vs LSL "
                "throughput (64MB, Case 1; direct ~11 Mbit/s)",
                {"relay_rate_mbps", "wakeup_ms", "lsl_mbps"});
  const double rates[] = {10, 18, 30, 60, 200};
  const double wakeups_ms[] = {0.2, 2.0, 10.0};
  for (const double rate : rates) {
    for (const double w : wakeups_ms) {
      exp::RunConfig cfg;
      cfg.mode = exp::Mode::kLsl;
      cfg.bytes = 64 * util::kMiB;
      cfg.seed = bench::base_seed();
      core::DepotConfig d;
      d.buffer_bytes = path.depot_relay_buffer;
      d.copy_rate = util::DataRate::mbps(rate);
      d.wakeup_latency = util::millis(w);
      d.session_setup_latency = path.depot_setup;
      cfg.depot_override = d;
      const auto runs = exp::run_many(path, cfg, bench::iterations(3));
      t.add_row({util::Cell(rate, 0), util::Cell(w, 1),
                 util::Cell(exp::mean_mbps(runs), 2)});
    }
  }
  bench::emit(t, "abl_copy_cost");
  return 0;
}
