// Figures 15-18: sequence growth of 4 MB transfers, UCSB -> UIUC, under the
// minimum (ideally zero), median and maximum observed loss, plus the
// all-runs average. Even at zero loss the direct connection's window opens
// more slowly than the cascaded sublinks'.
#include "bench_common.hpp"
#include "util/units.hpp"

int main() {
  using namespace lsl;
  const auto runs = bench::traced_runs(exp::case1_ucsb_uiuc(),
                                       4 * util::kMiB,
                                       bench::iterations(10));
  const char* names[3] = {"Fig 15: 4MB, minimum-loss case",
                          "Fig 16: 4MB, median-loss case",
                          "Fig 17: 4MB, maximum-loss case"};
  const char* stems[3] = {"fig15_seq_4m_minloss", "fig16_seq_4m_medloss",
                          "fig17_seq_4m_maxloss"};
  for (int which = 0; which < 3; ++which) {
    const auto& r = bench::select_by_loss(runs, which);
    bench::emit(bench::growth_table_single(names[which], r, 30),
                stems[which]);
  }
  bench::emit(bench::growth_table("Fig 18: 4MB, average over all runs", runs,
                                  30),
              "fig18_seq_4m_avg");
  return 0;
}
