// Figure 7: average observed bandwidth, UCSB -> UF, 32 KB - 256 KB.
// On this faster, cleaner path small transfers are roughly equivalent.
#include "bench_common.hpp"
#include "util/units.hpp"

int main() {
  using namespace lsl;
  const std::vector<std::uint64_t> sizes = {
      32 * util::kKiB,  48 * util::kKiB,  64 * util::kKiB, 96 * util::kKiB,
      128 * util::kKiB, 192 * util::kKiB, 256 * util::kKiB};
  const auto pts = bench::size_sweep(exp::case2_ucsb_uf(), sizes,
                                     bench::iterations(10));
  bench::emit(bench::sweep_table(
                  "Fig 7: Bandwidth UCSB->UF (32K-256K), direct vs LSL", pts),
              "fig07_bw_uf_small");
  return 0;
}
