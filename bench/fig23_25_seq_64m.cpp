// Figures 23-25: sequence growth of 64 MB transfers, UCSB -> UIUC, at the
// minimum / median / maximum observed loss (the average is Figure 14,
// reproduced by bench/fig11_14_seq_64m).
#include "bench_common.hpp"
#include "util/units.hpp"

int main() {
  using namespace lsl;
  const auto runs = bench::traced_runs(exp::case1_ucsb_uiuc(),
                                       64 * util::kMiB,
                                       bench::iterations(8));
  const char* names[3] = {"Fig 23: 64MB, minimum-loss case",
                          "Fig 24: 64MB, median-loss case",
                          "Fig 25: 64MB, maximum-loss case"};
  const char* stems[3] = {"fig23_seq_64m_minloss", "fig24_seq_64m_medloss",
                          "fig25_seq_64m_maxloss"};
  for (int which = 0; which < 3; ++which) {
    const auto& r = bench::select_by_loss(runs, which);
    bench::emit(bench::growth_table_single(names[which], r, 30),
                stems[which]);
  }
  return 0;
}
