// Ablation: depot relay-buffer size. LSL deliberately uses "small,
// short-lived intermediate buffers"; this sweep asks how small is enough.
// Too small a buffer stalls the upstream sublink (backpressure) before the
// downstream can drain it; beyond a few bandwidth-delay products there is
// nothing left to gain.
#include "bench_common.hpp"
#include "exp/runner.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

int main() {
  using namespace lsl;
  const std::uint64_t buffers[] = {16 * util::kKiB,  64 * util::kKiB,
                                   256 * util::kKiB, 1 * util::kMiB,
                                   4 * util::kMiB,   16 * util::kMiB};

  const exp::PathParams path = exp::case1_ucsb_uiuc();
  util::Table t("Ablation: depot buffer size vs LSL throughput (64MB, Case 1)",
                {"buffer", "lsl_mbps", "lsl_sd"});
  for (const std::uint64_t b : buffers) {
    exp::RunConfig cfg;
    cfg.mode = exp::Mode::kLsl;
    cfg.bytes = 64 * util::kMiB;
    cfg.seed = bench::base_seed();
    core::DepotConfig d;
    d.buffer_bytes = b;
    d.copy_rate = path.depot_relay_rate;
    d.wakeup_latency = path.depot_wakeup;
    d.session_setup_latency = path.depot_setup;
    cfg.depot_override = d;
    const auto runs = exp::run_many(path, cfg, bench::iterations(4));
    util::RunningStats s;
    for (const auto& r : runs) {
      if (r.completed) s.add(r.mbps);
    }
    t.add_row({util::format_bytes(b), util::Cell(s.mean(), 2),
               util::Cell(s.stddev(), 2)});
  }
  bench::emit(t, "abl_depot_buffer");
  return 0;
}
