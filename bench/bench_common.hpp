// Shared machinery for the figure-reproduction benches.
//
// Every bench binary reproduces one figure (or figure group) of the paper:
// it runs the corresponding workload on the corresponding scenario, prints
// an aligned table of the same series the paper plots, and writes a CSV
// next to the binary (./bench_results/<name>.csv) for re-plotting.
//
// Environment knobs:
//   LSL_BENCH_ITERS  — override the per-point iteration count (default is
//                      per-bench; the paper used 10, or 120 for Fig 28/29).
//   LSL_BENCH_SEED   — base RNG seed (default 1000).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "exp/scenarios.hpp"
#include "util/series.hpp"
#include "util/table.hpp"

namespace lsl::bench {

/// Iteration count: `fallback` unless LSL_BENCH_ITERS is set.
std::size_t iterations(std::size_t fallback);

/// Base seed: 1000 unless LSL_BENCH_SEED is set.
std::uint64_t base_seed();

/// Print `t` to stdout and write `bench_results/<stem>.csv`.
void emit(const util::Table& t, const std::string& stem);

/// One (mode, size) measurement cell of a bandwidth figure.
struct SweepPoint {
  std::uint64_t bytes = 0;
  double direct_mbps = 0.0;
  double direct_stddev = 0.0;
  double lsl_mbps = 0.0;
  double lsl_stddev = 0.0;
  double gain_percent = 0.0;
};

/// Run direct + LSL transfers of every size, `iters` iterations each, and
/// return the per-size averages (the paper's bandwidth-vs-size figures).
std::vector<SweepPoint> size_sweep(const exp::PathParams& path,
                                   const std::vector<std::uint64_t>& sizes,
                                   std::size_t iters);

/// Render a size sweep as the standard bandwidth figure table.
util::Table sweep_table(const std::string& title,
                        const std::vector<SweepPoint>& points);

/// Per-iteration traces of one LSL + one direct transfer (seq-growth and
/// RTT figures). Index semantics follow exp::TransferResult::traces.
struct TracePair {
  exp::TransferResult direct;
  exp::TransferResult lsl;
};

/// Run `iters` paired (direct, LSL) transfers of `bytes` with trace capture.
std::vector<TracePair> traced_runs(const exp::PathParams& path,
                                   std::uint64_t bytes, std::size_t iters);

/// The average RTT bar chart of Figures 3/4/9: sublink1, sublink2,
/// end-to-end, and sum-of-sublinks, averaged over the traced runs.
util::Table rtt_figure(const std::string& title,
                       const std::vector<TracePair>& runs);

/// Bridge every trace of every run through trace::export_trace_metrics and
/// write the aggregate registry to bench_results/<stem>_metrics.jsonl —
/// per-sublink RTT/retransmit histograms accumulated over all iterations,
/// for replotting the RTT figures from distributions instead of means.
void emit_trace_metrics(const std::vector<TracePair>& runs,
                        const std::string& stem);

/// Normalized sequence-growth series for run `r`: [0] = direct, [1] =
/// sublink 1, [2] = sublink 2 (sublink 2 normalized against sublink 1's
/// start, as in the paper's Figures 12-13).
std::vector<util::Series> growth_series(const TracePair& r);

/// Table of `n` sampled rows overlaying direct / sublink1 / sublink2
/// averaged sequence growth (Figures 14, 18, 22, 26, 27).
util::Table growth_table(const std::string& title,
                         const std::vector<TracePair>& runs, std::size_t n);

/// Select the run with minimum / median / maximum total retransmissions —
/// the paper's loss-case selection for Figures 15-17, 19-21, 23-25.
/// `which` is 0 = min, 1 = median, 2 = max.
const TracePair& select_by_loss(const std::vector<TracePair>& runs,
                                int which);

/// Single-run (loss-case) growth table for the selected run.
util::Table growth_table_single(const std::string& title, const TracePair& r,
                                std::size_t n);

}  // namespace lsl::bench
