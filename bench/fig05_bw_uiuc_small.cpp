// Figure 5: average observed bandwidth, UCSB -> UIUC, 32 KB - 256 KB.
// LSL loses below the crossover (two handshakes + depot processing), then
// wins by a growing margin.
#include "bench_common.hpp"
#include "util/units.hpp"

int main() {
  using namespace lsl;
  const std::vector<std::uint64_t> sizes = {
      32 * util::kKiB,  48 * util::kKiB,  64 * util::kKiB, 96 * util::kKiB,
      128 * util::kKiB, 192 * util::kKiB, 256 * util::kKiB};
  const auto pts = bench::size_sweep(exp::case1_ucsb_uiuc(), sizes,
                                     bench::iterations(10));
  bench::emit(bench::sweep_table(
                  "Fig 5: Bandwidth UCSB->UIUC (32K-256K), direct vs LSL",
                  pts),
              "fig05_bw_uiuc_small");
  return 0;
}
