#include "bench_common.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "metrics/export.hpp"
#include "metrics/metrics.hpp"
#include "trace/analysis.hpp"
#include "util/stats.hpp"

namespace lsl::bench {

std::size_t iterations(std::size_t fallback) {
  if (const char* s = std::getenv("LSL_BENCH_ITERS")) {
    const auto v = std::strtoull(s, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

std::uint64_t base_seed() {
  if (const char* s = std::getenv("LSL_BENCH_SEED")) {
    return std::strtoull(s, nullptr, 10);
  }
  return 1000;
}

void emit(const util::Table& t, const std::string& stem) {
  t.print(std::cout);
  std::cout << std::endl;
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (!ec) {
    std::ofstream csv("bench_results/" + stem + ".csv");
    if (csv) t.write_csv(csv);
  }
}

std::vector<SweepPoint> size_sweep(const exp::PathParams& path,
                                   const std::vector<std::uint64_t>& sizes,
                                   std::size_t iters) {
  std::vector<SweepPoint> out;
  out.reserve(sizes.size());
  const std::uint64_t seed0 = base_seed();
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    SweepPoint pt;
    pt.bytes = sizes[si];

    exp::RunConfig cfg;
    cfg.bytes = sizes[si];
    cfg.seed = seed0 + si * 1000;

    cfg.mode = exp::Mode::kDirectTcp;
    const auto direct = exp::run_many(path, cfg, iters);
    cfg.mode = exp::Mode::kLsl;
    const auto lsl = exp::run_many(path, cfg, iters);

    util::RunningStats ds, ls;
    for (const auto& r : direct) {
      if (r.completed) ds.add(r.mbps);
    }
    for (const auto& r : lsl) {
      if (r.completed) ls.add(r.mbps);
    }
    pt.direct_mbps = ds.mean();
    pt.direct_stddev = ds.stddev();
    pt.lsl_mbps = ls.mean();
    pt.lsl_stddev = ls.stddev();
    pt.gain_percent =
        pt.direct_mbps > 0 ? (pt.lsl_mbps / pt.direct_mbps - 1.0) * 100.0 : 0;
    out.push_back(pt);
  }
  return out;
}

util::Table sweep_table(const std::string& title,
                        const std::vector<SweepPoint>& points) {
  util::Table t(title, {"xfer_size", "direct_mbps", "direct_sd", "lsl_mbps",
                        "lsl_sd", "lsl_gain_%"});
  for (const auto& p : points) {
    t.add_row({util::format_bytes(p.bytes), util::Cell(p.direct_mbps, 2),
               util::Cell(p.direct_stddev, 2), util::Cell(p.lsl_mbps, 2),
               util::Cell(p.lsl_stddev, 2), util::Cell(p.gain_percent, 1)});
  }
  return t;
}

std::vector<TracePair> traced_runs(const exp::PathParams& path,
                                   std::uint64_t bytes, std::size_t iters) {
  std::vector<TracePair> out;
  out.reserve(iters);
  const std::uint64_t seed0 = base_seed();
  for (std::size_t i = 0; i < iters; ++i) {
    TracePair pair;
    exp::RunConfig cfg;
    cfg.bytes = bytes;
    cfg.seed = seed0 + i;
    cfg.capture_traces = true;
    cfg.mode = exp::Mode::kDirectTcp;
    pair.direct = exp::run_transfer(path, cfg);
    cfg.mode = exp::Mode::kLsl;
    pair.lsl = exp::run_transfer(path, cfg);
    out.push_back(std::move(pair));
  }
  return out;
}

util::Table rtt_figure(const std::string& title,
                       const std::vector<TracePair>& runs) {
  util::RunningStats sub1, sub2, e2e;
  for (const auto& r : runs) {
    if (r.direct.rtt_ms.size() > 0 && r.direct.rtt_ms[0] > 0) {
      e2e.add(r.direct.rtt_ms[0]);
    }
    if (r.lsl.rtt_ms.size() > 0 && r.lsl.rtt_ms[0] > 0) {
      sub1.add(r.lsl.rtt_ms[0]);
    }
    if (r.lsl.rtt_ms.size() > 1 && r.lsl.rtt_ms[1] > 0) {
      sub2.add(r.lsl.rtt_ms[1]);
    }
  }
  util::Table t(title, {"subpath", "avg_rtt_ms"});
  t.add_row({"sublink1", util::Cell(sub1.mean(), 1)});
  t.add_row({"sublink2", util::Cell(sub2.mean(), 1)});
  t.add_row({"end-to-end", util::Cell(e2e.mean(), 1)});
  t.add_row({"sub1+sub2", util::Cell(sub1.mean() + sub2.mean(), 1)});
  return t;
}

void emit_trace_metrics(const std::vector<TracePair>& runs,
                        const std::string& stem) {
  metrics::Registry reg;
  for (const auto& r : runs) {
    for (const auto& rec : r.direct.traces) {
      trace::export_trace_metrics(*rec, reg, "trace." + rec->label());
    }
    for (const auto& rec : r.lsl.traces) {
      trace::export_trace_metrics(*rec, reg, "trace." + rec->label());
    }
  }
  if (reg.size() == 0) return;
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (!ec) {
    metrics::write_file(reg, "bench_results/" + stem + "_metrics.jsonl");
  }
}

std::vector<util::Series> growth_series(const TracePair& r) {
  std::vector<util::Series> out(3);
  if (!r.direct.traces.empty()) {
    out[0] = trace::sequence_growth(*r.direct.traces[0]);
  }
  if (!r.lsl.traces.empty()) {
    out[1] = trace::sequence_growth(*r.lsl.traces[0]);
    if (r.lsl.traces.size() > 1) {
      // Normalize sublink 2's clock to sublink 1's start so the cascade's
      // relative growth is visible (paper Figure 13).
      out[2] = trace::sequence_growth(*r.lsl.traces[1],
                                      r.lsl.traces[0]->start_time());
    }
  }
  return out;
}

namespace {

util::Table growth_rows(const std::string& title,
                        const std::vector<util::Series>& avg, std::size_t n) {
  double t_max = 0.0;
  for (const auto& s : avg) t_max = std::max(t_max, util::duration(s));
  util::Table t(title,
                {"time_s", "direct_bytes", "sublink1_bytes", "sublink2_bytes"});
  for (std::size_t i = 0; i < n; ++i) {
    const double ts =
        n == 1 ? 0.0
               : t_max * static_cast<double>(i) / static_cast<double>(n - 1);
    t.add_row({util::Cell(ts, 2),
               util::Cell(util::interpolate(avg[0], ts), 0),
               util::Cell(util::interpolate(avg[1], ts), 0),
               util::Cell(util::interpolate(avg[2], ts), 0)});
  }
  return t;
}

}  // namespace

util::Table growth_table(const std::string& title,
                         const std::vector<TracePair>& runs, std::size_t n) {
  std::vector<util::Series> direct_runs, sub1_runs, sub2_runs;
  for (const auto& r : runs) {
    auto s = growth_series(r);
    if (!s[0].empty()) direct_runs.push_back(std::move(s[0]));
    if (!s[1].empty()) sub1_runs.push_back(std::move(s[1]));
    if (!s[2].empty()) sub2_runs.push_back(std::move(s[2]));
  }
  std::vector<util::Series> avg{util::average_series(direct_runs, 200),
                                util::average_series(sub1_runs, 200),
                                util::average_series(sub2_runs, 200)};
  return growth_rows(title, avg, n);
}

util::Table growth_table_single(const std::string& title, const TracePair& r,
                                std::size_t n) {
  return growth_rows(title, growth_series(r), n);
}

const TracePair& select_by_loss(const std::vector<TracePair>& runs,
                                int which) {
  // Rank by the total retransmissions of the direct connection — the
  // paper's per-case loss metric.
  std::vector<std::size_t> order(runs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return runs[a].direct.retransmits < runs[b].direct.retransmits;
  });
  if (which == 0) return runs[order.front()];
  if (which == 2) return runs[order.back()];
  return runs[order[order.size() / 2]];
}

}  // namespace lsl::bench
