// Figure 6: average observed bandwidth, UCSB -> UIUC, 1 MB - 64 MB.
// LSL's advantage holds at roughly +60% across the range.
#include "bench_common.hpp"
#include "util/units.hpp"

int main() {
  using namespace lsl;
  const std::vector<std::uint64_t> sizes = {
      1 * util::kMiB, 2 * util::kMiB,  4 * util::kMiB,
      8 * util::kMiB, 16 * util::kMiB, 32 * util::kMiB,
      64 * util::kMiB};
  const auto pts = bench::size_sweep(exp::case1_ucsb_uiuc(), sizes,
                                     bench::iterations(10));
  bench::emit(bench::sweep_table(
                  "Fig 6: Bandwidth UCSB->UIUC (1M-64M), direct vs LSL", pts),
              "fig06_bw_uiuc_large");
  return 0;
}
