// Ablation: SACK vs NewReno endpoints. The paper's Linux 2.4 hosts
// negotiated SACK; this sweep quantifies how much of both modes' throughput
// depends on it (burst losses from slow-start overshoot are where NewReno's
// one-hole-per-RTT recovery hurts).
#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

int main() {
  using namespace lsl;
  const exp::PathParams path = exp::case1_ucsb_uiuc();

  util::Table t("Ablation: SACK vs NewReno (64MB, Case 1)",
                {"tcp_variant", "direct_mbps", "lsl_mbps", "gain_%"});
  for (const bool sack : {true, false}) {
    exp::RunConfig cfg;
    cfg.bytes = 64 * util::kMiB;
    cfg.seed = bench::base_seed();
    cfg.tcp.sack = sack;

    cfg.mode = exp::Mode::kDirectTcp;
    const double dm = exp::mean_mbps(
        exp::run_many(path, cfg, bench::iterations(4)));
    cfg.mode = exp::Mode::kLsl;
    const double lm = exp::mean_mbps(
        exp::run_many(path, cfg, bench::iterations(4)));
    t.add_row({sack ? "SACK" : "NewReno", util::Cell(dm, 2),
               util::Cell(lm, 2),
               util::Cell(dm > 0 ? (lm / dm - 1.0) * 100.0 : 0.0, 1)});
  }
  bench::emit(t, "abl_sack");
  return 0;
}
