// Extension (paper §VII): multipath sessions. "We believe that this
// abstraction is also useful for other approaches such as multi-path
// performance optimizations and parallel TCP streams."
//
// Topology: two disjoint WAN paths between the endpoints, each with its own
// POP and depot. The session layer stripes one logical transfer across two
// cascaded sessions, one per path; completion is when both stripes land.
//
//        popA(25 Mbit, 27 ms one-way, lossier)--- depotA
//   src <                                              > dst
//        popB(18 Mbit, 35 ms one-way, cleaner) --- depotB
//
// Compared: direct TCP (routed over the best path), single-path LSL via
// each depot, a naive 50/50 stripe, and a rate-weighted stripe using the
// per-path LSL throughput the single-path runs measured (what an
// NWS-informed splitter would do).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "exp/striped.hpp"
#include "lsl/apps.hpp"
#include "lsl/depot.hpp"
#include "lsl/directory.hpp"
#include "lsl/session_id.hpp"
#include "sim/network.hpp"
#include "tcp/stack.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

using namespace lsl;

namespace {

constexpr sim::PortNum kSinkA = 5001;
constexpr sim::PortNum kSinkB = 5002;
constexpr sim::PortNum kDepotPort = 4000;

struct World {
  std::unique_ptr<sim::Network> net;
  sim::Node *src, *dst, *depot_a, *depot_b;
  std::unique_ptr<tcp::TcpStack> s_src, s_dst, s_da, s_db;
  core::SessionDirectory dir;
};

std::unique_ptr<World> make_world(std::uint64_t seed) {
  auto w = std::make_unique<World>();
  w->net = std::make_unique<sim::Network>(seed);
  auto& net = *w->net;
  w->src = &net.add_host("src");
  w->dst = &net.add_host("dst");
  sim::Node& gw_s = net.add_router("gw_s");
  sim::Node& gw_d = net.add_router("gw_d");
  sim::Node& pop_a = net.add_router("pop_a");
  sim::Node& pop_b = net.add_router("pop_b");
  w->depot_a = &net.add_host("depot_a");
  w->depot_b = &net.add_host("depot_b");

  sim::LinkConfig access;
  access.rate = util::DataRate::mbps(100);
  access.delay = util::millis(0.5);
  net.connect(*w->src, gw_s, access);
  net.connect(gw_d, *w->dst, access);

  sim::LinkConfig wan_a;  // fast but lossy
  wan_a.rate = util::DataRate::mbps(25);
  wan_a.delay = util::millis(13.5);
  wan_a.loss_rate = 2e-4;
  net.connect(gw_s, pop_a, wan_a);
  net.connect(pop_a, gw_d, wan_a);

  sim::LinkConfig wan_b = wan_a;  // slower, longer, cleaner
  wan_b.rate = util::DataRate::mbps(18);
  wan_b.delay = util::millis(17.5);
  wan_b.loss_rate = 5e-5;
  net.connect(gw_s, pop_b, wan_b);
  net.connect(pop_b, gw_d, wan_b);

  sim::LinkConfig dlink;
  dlink.rate = util::DataRate::mbps(100);
  dlink.delay = util::millis(1);
  net.connect(pop_a, *w->depot_a, dlink);
  net.connect(pop_b, *w->depot_b, dlink);
  net.compute_routes();

  tcp::TcpConfig tcp;
  tcp.initial_ssthresh = 64 * util::kKiB;
  w->s_src = std::make_unique<tcp::TcpStack>(net, *w->src, tcp);
  w->s_dst = std::make_unique<tcp::TcpStack>(net, *w->dst, tcp);
  w->s_da = std::make_unique<tcp::TcpStack>(net, *w->depot_a, tcp);
  w->s_db = std::make_unique<tcp::TcpStack>(net, *w->depot_b, tcp);
  return w;
}

struct Stripe {
  char path;  ///< 'A' or 'B'
  sim::PortNum sink_port;
  std::uint64_t bytes;
};

/// Run `stripes` concurrent LSL sessions; returns aggregate Mbit/s
/// (total bytes / time to the LAST sink completion), or 0 on failure.
double run_striped(std::uint64_t seed, const std::vector<Stripe>& stripes) {
  auto w = make_world(seed);
  std::vector<std::unique_ptr<core::DepotApp>> depots;
  std::vector<std::unique_ptr<core::SinkServer>> sinks;
  std::vector<std::unique_ptr<core::SourceApp>> sources;

  std::size_t completed = 0;
  util::SimTime last_done = 0;
  std::uint64_t total = 0;
  for (const Stripe& st : stripes) total += st.bytes;

  for (const Stripe& st : stripes) {
    tcp::TcpStack& depot_stack =
        st.path == 'A' ? *w->s_da : *w->s_db;
    core::DepotConfig dcfg;
    dcfg.port = kDepotPort;
    dcfg.buffer_bytes = util::kMiB;
    dcfg.copy_rate = util::DataRate::mbps(60);
    dcfg.session_setup_latency = util::millis(40);
    depots.push_back(
        std::make_unique<core::DepotApp>(depot_stack, dcfg, &w->dir));

    core::SinkConfig scfg;
    scfg.expect_header = true;
    sinks.push_back(std::make_unique<core::SinkServer>(*w->s_dst, st.sink_port,
                                                       scfg, &w->dir));
    sinks.back()->on_complete = [&](core::SinkApp& app) {
      ++completed;
      last_done = std::max(last_done, app.complete_time());
    };
  }

  util::SimTime start = 0;
  for (std::size_t i = 0; i < stripes.size(); ++i) {
    const Stripe& st = stripes[i];
    sim::Node* depot = st.path == 'A' ? w->depot_a : w->depot_b;
    core::SourceConfig cfg;
    cfg.payload_bytes = st.bytes;
    cfg.use_header = true;
    util::Rng rng(seed + i);
    cfg.header.session = core::SessionId::generate(rng);
    cfg.header.payload_length = st.bytes;
    cfg.header.hops = {{depot->id(), kDepotPort}};
    cfg.header.destination = {w->dst->id(), st.sink_port};
    sources.push_back(std::make_unique<core::SourceApp>(
        *w->s_src, sim::Endpoint{depot->id(), kDepotPort}, cfg, &w->dir));
    sources.back()->start();
    start = sources.back()->start_time();
  }

  auto& ev = w->net->sim().events();
  while (completed < stripes.size() &&
         ev.now() <= 3600ll * util::kSecond && ev.step()) {
  }
  if (completed < stripes.size()) return 0.0;
  return util::throughput_mbps(total, last_done - start);
}

/// Direct TCP over the (routed) best path.
double run_direct(std::uint64_t seed, std::uint64_t bytes) {
  auto w = make_world(seed);
  core::SinkConfig scfg;  // raw sink
  core::SinkServer sink(*w->s_dst, kSinkA, scfg, nullptr);
  bool done = false;
  util::SimTime done_time = 0;
  sink.on_complete = [&](core::SinkApp& app) {
    done = true;
    done_time = app.complete_time();
  };
  core::SourceConfig cfg;
  cfg.payload_bytes = bytes;
  core::SourceApp src(*w->s_src, sim::Endpoint{w->dst->id(), kSinkA}, cfg,
                      nullptr);
  src.start();
  auto& ev = w->net->sim().events();
  while (!done && ev.now() <= 3600ll * util::kSecond && ev.step()) {
  }
  return done ? util::throughput_mbps(bytes, done_time - src.start_time())
              : 0.0;
}

}  // namespace

int main() {
  const std::uint64_t bytes = 32 * util::kMiB;
  const std::size_t iters = lsl::bench::iterations(4);
  const std::uint64_t seed0 = lsl::bench::base_seed();

  util::RunningStats direct, via_a, via_b, stripe_even, stripe_weighted;

  for (std::size_t i = 0; i < iters; ++i) {
    const std::uint64_t seed = seed0 + i;
    direct.add(run_direct(seed, bytes));
    via_a.add(run_striped(seed, {{'A', kSinkA, bytes}}));
    via_b.add(run_striped(seed, {{'B', kSinkB, bytes}}));
    stripe_even.add(run_striped(seed, {{'A', kSinkA, bytes / 2},
                                       {'B', kSinkB, bytes - bytes / 2}}));
    // Rate-weighted split using the single-path measurements so far — the
    // decision an NWS-informed splitter would make.
    const double ra = via_a.mean(), rb = via_b.mean();
    const double frac = ra + rb > 0 ? ra / (ra + rb) : 0.5;
    const auto ba =
        static_cast<std::uint64_t>(frac * static_cast<double>(bytes));
    stripe_weighted.add(run_striped(
        seed, {{'A', kSinkA, ba}, {'B', kSinkB, bytes - ba}}));
  }

  util::Table t("Extension: multipath striped sessions (32MB, two disjoint "
                "WAN paths)",
                {"configuration", "mbps", "sd"});
  t.add_row({"direct TCP (best path)", util::Cell(direct.mean(), 2),
             util::Cell(direct.stddev(), 2)});
  t.add_row({"LSL via path A depot", util::Cell(via_a.mean(), 2),
             util::Cell(via_a.stddev(), 2)});
  t.add_row({"LSL via path B depot", util::Cell(via_b.mean(), 2),
             util::Cell(via_b.stddev(), 2)});
  t.add_row({"LSL multipath 50/50", util::Cell(stripe_even.mean(), 2),
             util::Cell(stripe_even.stddev(), 2)});
  t.add_row({"LSL multipath rate-weighted",
             util::Cell(stripe_weighted.mean(), 2),
             util::Cell(stripe_weighted.stddev(), 2)});
  lsl::bench::emit(t, "abl_multipath");

  // Striped legs: ONE session over N lanes of a 4-chain braid (src/stripe),
  // not the N cascaded sessions above — the lanes share a session id, a v3
  // wire header maps them back, and the sink reassembles the merged stream.
  util::Table ts("Extension: striped sessions over a 4-chain braid (32MB)",
                 {"configuration", "mbps", "sd"});
  const auto add_striped = [&](const std::string& name,
                               std::uint16_t stripes, std::uint8_t red,
                               bool weighted) {
    util::RunningStats s;
    for (std::size_t i = 0; i < iters; ++i) {
      exp::StripedParams p;
      p.paths = 4;
      p.stripes = stripes;
      p.redundancy = red;
      p.weighted = weighted;
      p.bytes = bytes;
      p.seed = seed0 + i;
      const exp::StripedResult r = exp::run_striped(p);
      if (r.verified) s.add(r.mbps);
    }
    ts.add_row({name, util::Cell(s.mean(), 2), util::Cell(s.stddev(), 2)});
  };
  for (std::uint16_t n = 1; n <= 4; ++n) {
    add_striped("striped x" + std::to_string(n), n, 0, false);
  }
  add_striped("striped x4 weighted", 4, 0, true);
  add_striped("striped x4 redundancy 1", 4, 1, false);
  lsl::bench::emit(ts, "abl_multipath_striped");
  return 0;
}
