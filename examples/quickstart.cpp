// Quickstart: the LSL effect in one page.
//
// Builds the paper's Case 1 path (UCSB -> UIUC with a depot at the Denver
// POP), transfers 4 MB once over direct TCP and once as an LSL session
// cascaded through the depot, and prints both measurements. Run it with no
// arguments; pass a byte count (e.g. 67108864) to try other sizes.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "exp/runner.hpp"
#include "exp/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace lsl;

  std::uint64_t bytes = 4 * util::kMiB;
  if (argc > 1) bytes = std::strtoull(argv[1], nullptr, 10);

  const exp::PathParams path = exp::case1_ucsb_uiuc();
  std::printf("Path: %s\n", path.name.c_str());
  std::printf("Transfer size: %s\n\n", util::format_bytes(bytes).c_str());

  exp::RunConfig cfg;
  cfg.bytes = bytes;
  cfg.seed = 42;
  cfg.capture_traces = true;

  cfg.mode = exp::Mode::kDirectTcp;
  const exp::TransferResult direct = exp::run_transfer(path, cfg);

  cfg.mode = exp::Mode::kLsl;
  const exp::TransferResult lsl = exp::run_transfer(path, cfg);

  if (!direct.completed || !lsl.completed) {
    std::fprintf(stderr, "transfer failed to complete\n");
    return 1;
  }

  std::printf("%-28s %10s %10s %8s %8s %8s %8s\n", "mode", "time (s)",
              "Mbit/s", "retx", "rto", "dwire", "dqueue");
  std::printf("%-28s %10.3f %10.2f %8llu %8llu %8llu %8llu\n", "direct TCP",
              direct.seconds, direct.mbps,
              static_cast<unsigned long long>(direct.retransmits),
              static_cast<unsigned long long>(direct.timeouts),
              static_cast<unsigned long long>(direct.drops_wire),
              static_cast<unsigned long long>(direct.drops_queue));
  std::printf("%-28s %10.3f %10.2f %8llu %8llu %8llu %8llu\n",
              "LSL via Denver depot", lsl.seconds, lsl.mbps,
              static_cast<unsigned long long>(lsl.retransmits),
              static_cast<unsigned long long>(lsl.timeouts),
              static_cast<unsigned long long>(lsl.drops_wire),
              static_cast<unsigned long long>(lsl.drops_queue));
  std::printf("\nLSL speedup: %.1f%%\n",
              (lsl.mbps / direct.mbps - 1.0) * 100.0);

  std::printf("\nPer-connection average RTT (from sender-side traces):\n");
  std::printf("  direct end-to-end : %6.1f ms\n", direct.rtt_ms[0]);
  std::printf("  LSL sublink 1     : %6.1f ms\n", lsl.rtt_ms[0]);
  if (lsl.rtt_ms.size() > 1) {
    std::printf("  LSL sublink 2     : %6.1f ms\n", lsl.rtt_ms[1]);
    std::printf("  sum of sublinks   : %6.1f ms\n",
                lsl.rtt_ms[0] + lsl.rtt_ms[1]);
  }
  return 0;
}
