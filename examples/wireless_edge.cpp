// wireless_edge — LSL as a gateway service for a mobile client.
//
// Models the paper's Case 3: a client at UCSB attached by 802.11b, pulling
// data from a server at UTK across a long, loaded wired path. The provider
// places an LSL depot at the wired edge of the campus network ("a wireless
// provider with infrastructure willing to gateway LSL into TCP for users",
// §IV). The depot isolates the lossy wireless hop from the 100 ms wired
// control loop: wireless losses are recovered in milliseconds by the short
// sublink instead of costing a full cross-country RTT each.
#include <cstdio>
#include <cstdlib>

#include "exp/runner.hpp"
#include "exp/scenarios.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

using namespace lsl;

int main(int argc, char** argv) {
  std::size_t iters = 3;
  if (argc > 1) iters = static_cast<std::size_t>(std::atoi(argv[1]));

  const exp::PathParams path = exp::case3_utk_wireless();
  std::printf("Wireless edge scenario: %s\n", path.name.c_str());
  std::printf("wired path ~%.0f ms RTT; 802.11b last hop (%.0f Mbit/s, "
              "bursty loss)\n\n",
              2 * util::to_millis(path.wan1_delay + path.wan2_delay +
                                  path.access_delay),
              path.wireless_rate.as_mbps());

  std::printf("%10s %14s %14s %8s\n", "size", "direct Mbit/s", "LSL Mbit/s",
              "gain");
  util::RunningStats gains;
  for (const std::uint64_t bytes :
       {4 * util::kMiB, 16 * util::kMiB, 64 * util::kMiB}) {
    exp::RunConfig cfg;
    cfg.bytes = bytes;
    cfg.seed = 11;
    cfg.mode = exp::Mode::kDirectTcp;
    const double direct = exp::mean_mbps(exp::run_many(path, cfg, iters));
    cfg.mode = exp::Mode::kLsl;
    const double lsl = exp::mean_mbps(exp::run_many(path, cfg, iters));
    const double gain = direct > 0 ? (lsl / direct - 1.0) * 100.0 : 0.0;
    gains.add(gain);
    std::printf("%10s %14.2f %14.2f %7.1f%%\n",
                util::format_bytes(bytes).c_str(), direct, lsl, gain);
  }
  std::printf("\naverage gain from gatewaying at the wireless edge: %.1f%%\n",
              gains.mean());
  std::printf("(the paper reports ~13%% for this configuration)\n");
  return 0;
}
