// mobile_resume — session survival across roaming disconnects.
//
// The paper's §III: "Intermittently connected devices could use the session
// layer to mitigate connection creation overhead and the effects of roaming
// (in that the ultimate server need not know of an address change)." This
// example runs a transfer whose client-side sublink is killed twice in
// flight; each time, the client redials the depot with a resume header and
// the session continues over the SAME depot-to-server connection. The
// server's single TCP connection never breaks, and the delivered stream is
// verified byte for byte.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "lsl/apps.hpp"
#include "lsl/depot.hpp"
#include "lsl/session_id.hpp"
#include "sim/network.hpp"
#include "tcp/stack.hpp"
#include "util/units.hpp"

using namespace lsl;

int main(int argc, char** argv) {
  std::uint64_t bytes = 8 * util::kMiB;
  if (argc > 1) bytes = std::strtoull(argv[1], nullptr, 10);

  sim::Network net(2026);
  sim::Node& client = net.add_host("mobile_client");
  sim::Node& server = net.add_host("server");
  sim::Node& depot_host = net.add_host("edge_depot");
  sim::Node& r = net.add_router("r");

  sim::LinkConfig wan;
  wan.rate = util::DataRate::mbps(20);
  wan.delay = util::millis(15);
  net.connect(client, r, wan);
  net.connect(r, server, wan);
  sim::LinkConfig dlink;
  dlink.rate = util::DataRate::mbps(100);
  dlink.delay = util::millis(1);
  net.connect(r, depot_host, dlink);
  net.compute_routes();

  tcp::TcpConfig tcp;
  tcp.carry_data = true;  // real bytes: the far end verifies content
  tcp::TcpStack client_stack(net, client, tcp);
  tcp::TcpStack server_stack(net, server, tcp);
  tcp::TcpStack depot_stack(net, depot_host, tcp);

  core::DepotConfig dcfg;
  dcfg.port = 4000;
  dcfg.resume_grace = 60 * util::kSecond;
  core::DepotApp depot(depot_stack, dcfg, nullptr);

  bool done = false;
  bool verified = false;
  std::uint64_t received = 0;
  util::SimTime done_time = 0;
  core::SinkConfig sink_cfg;
  sink_cfg.expect_header = true;
  sink_cfg.verify_payload = true;
  sink_cfg.payload_seed = 314;
  core::SinkServer sink(server_stack, 5001, sink_cfg, nullptr);
  sink.on_complete = [&](core::SinkApp& app) {
    done = true;
    verified = app.verified();
    received = app.payload_received();
    done_time = app.complete_time();
  };

  core::SourceConfig scfg;
  scfg.payload_bytes = bytes;
  scfg.payload_seed = 314;
  scfg.use_header = true;
  scfg.resumable = true;
  util::Rng rng(1);
  scfg.header.session = core::SessionId::generate(rng);
  scfg.header.payload_length = bytes;
  scfg.header.hops = {{depot_host.id(), 4000}};
  scfg.header.destination = {server.id(), 5001};
  core::SourceApp source(client_stack,
                         sim::Endpoint{depot_host.id(), 4000}, scfg, nullptr);

  std::printf("session %s: %s from mobile client to server via edge depot\n",
              scfg.header.session.hex().c_str(),
              util::format_bytes(bytes).c_str());
  source.start();

  // Roam twice: the client's connection is torn down mid-transfer.
  for (double at_s : {0.6, 1.4}) {
    net.sim().events().schedule_in(util::seconds(at_s), [&source, at_s] {
      std::printf("t=%.1fs  client roams: sublink torn down\n", at_s);
      source.simulate_disconnect();
    });
  }

  auto& ev = net.sim().events();
  while (!done && ev.now() <= 3600ll * util::kSecond && ev.step()) {
  }

  if (!done) {
    std::fprintf(stderr, "transfer did not complete\n");
    return 1;
  }
  std::printf("\ncompleted in %.2f s (simulated), %s delivered\n",
              util::to_seconds(done_time - source.start_time()),
              util::format_bytes(received).c_str());
  std::printf("reconnect/resume cycles : %zu\n", source.resumes());
  std::printf("duplicate bytes dropped : %llu (unacked in-flight data "
              "retransmitted after each roam)\n",
              static_cast<unsigned long long>(depot.stats().bytes_discarded));
  std::printf("server-side connections : 1 (the server never noticed)\n");
  std::printf("content verification    : %s\n",
              verified ? "EVERY BYTE CORRECT" : "MISMATCH");
  return verified ? 0 : 1;
}
