// lsd_relay — the real-socket artifact, end to end.
//
// Demo mode (default): starts two lsd depot daemons and an LSL sink in this
// process, then streams a session source -> depot1 -> depot2 -> sink over
// loopback TCP, with the MD5 stream digest verified at the far end. This is
// the paper's prototype in miniature: unprivileged user-level processes
// cascading standard TCP connections.
//
// Daemon mode: `lsd_relay --daemon <port> [buffer_bytes]` runs a single
// forwarding daemon on the given port until killed — usable as a real relay
// for any LSL client on the network. Daemon options:
//
//   --resume-grace=DUR  park sessions whose upstream dies and accept a
//                       kFlagResume reconnect for DUR (e.g. 2s, 500ms);
//                       default 0 = resume disabled (docs/PROTOCOL.md §6)
//   --fault-spec=SPEC   scripted fault injection against this daemon
//                       (crash/restart windows, refused accepts, mid-stream
//                       resets, stalls) in the grammar of docs/FAULTS.md
//   --liveness          enforce the recommended relay deadlines
//                       (docs/PROTOCOL.md §7): header/dial/idle timeouts
//                       and the min-progress stall watchdog
//   --drain-deadline=DUR  bound a SIGTERM graceful drain: in-flight
//                       sessions get DUR to finish (or park) before being
//                       aborted; default 30s with --liveness, unbounded
//                       otherwise
//   --spans-out=FILE    attach a span tracer ("lsd.<port>") and dump its
//                       flight recorder to FILE as JSONL on exit — after a
//                       SIGTERM drain resolves, and from the post-mortem
//                       hook if a contract aborts the daemon. Feed the
//                       per-depot files to tools/lsl_spans to merge a
//                       cascade's timeline (docs/OBSERVABILITY.md)
//   --admin-socket=PATH serve live introspection (stats|spans|health line
//                       protocol) on a Unix-domain socket at PATH, answered
//                       from the daemon's own event loop (with --shards>1:
//                       from the control thread, aggregating every shard)
//   --shards=N          run N SO_REUSEPORT shard daemons — one acceptor +
//                       event loop + OS thread each — behind the one port,
//                       drawing on one shared memory budget (docs/ENGINE.md).
//                       Default 1: the classic single-threaded daemon,
//                       byte-identical to previous releases
//   --health            attach a depot HealthBoard (one per shard with
//                       --shards>1): the daemon scores every next hop it
//                       dials, and the admin `health` response gains
//                       per-depot rows (docs/HEALTH.md)
//   --gossip-peers=P1,P2  admin-socket paths of peer daemons to poll with
//                       the `gossip` command; their rows merge into the
//                       local board(s) by judgement blending. Implies
//                       --health; requires --admin-socket on the peers
//   --gossip-interval=DUR  poll cadence (default 1s)
//
// SIGTERM (or Ctrl-C) in daemon mode triggers a graceful drain: the daemon
// refuses new sessions, lets in-flight ones finish, then exits printing a
// drain report (with --shards>1, merged across shards).
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "fault/spec.hpp"
#include "live/liveness.hpp"
#include "health/board.hpp"
#include "posix/admin.hpp"
#include "posix/client.hpp"
#include "posix/epoll_loop.hpp"
#include "posix/fault_driver.hpp"
#include "posix/gossip_poller.hpp"
#include "posix/lsd.hpp"
#include "posix/sharded_lsd.hpp"
#include "span/span.hpp"
#include "util/units.hpp"

using namespace lsl;

namespace {

volatile std::sig_atomic_t g_drain_requested = 0;

void on_terminate_signal(int) { g_drain_requested = 1; }

/// Health-plane options shared by the classic and sharded daemon paths.
struct HealthOptions {
  bool enabled = false;                   ///< --health (or implied)
  std::vector<std::string> gossip_peers;  ///< --gossip-peers admin paths
  std::chrono::milliseconds gossip_interval{1000};
};

std::vector<std::string> split_commas(const std::string& list) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string item = list.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

int run_daemon(std::uint16_t port, std::size_t buffer,
               std::chrono::milliseconds resume_grace,
               const std::string& fault_spec,
               const live::LivenessConfig& liveness,
               const std::string& spans_out,
               const std::string& admin_socket, const HealthOptions& health) {
  posix::EpollLoop loop;
  posix::LsdConfig cfg;
  cfg.bind = posix::InetAddress{0, port};  // INADDR_ANY
  cfg.buffer_bytes = buffer;
  cfg.resume_grace = resume_grace;
  cfg.liveness = liveness;
  // Declared before the daemon: Lsd teardown flushes open stream windows
  // through the tracer, so it must outlive the Lsd; the health board must
  // outlive it too (finish() scores next hops through it).
  std::unique_ptr<span::Tracer> tracer;
  std::unique_ptr<health::HealthBoard> board;
  posix::Lsd daemon(loop, cfg);

  std::unique_ptr<posix::GossipPoller> gossip;
  if (health.enabled) {
    board = std::make_unique<health::HealthBoard>();
    daemon.set_health_board(board.get());
    if (!health.gossip_peers.empty()) {
      posix::GossipPollerConfig gcfg;
      gcfg.peers = health.gossip_peers;
      gcfg.interval = health.gossip_interval;
      gossip = std::make_unique<posix::GossipPoller>(
          loop, std::vector<health::HealthBoard*>{board.get()}, gcfg);
      std::printf("lsd: health plane on, gossiping with %zu peer(s) every "
                  "%lld ms\n",
                  health.gossip_peers.size(),
                  static_cast<long long>(health.gossip_interval.count()));
    } else {
      std::printf("lsd: health plane on\n");
    }
  }

  if (!spans_out.empty()) {
    tracer = std::make_unique<span::Tracer>("lsd." +
                                            std::to_string(daemon.port()));
    daemon.set_tracer(tracer.get());
    // If a contract aborts the daemon, the flight recorder's last moments
    // still reach the file.
    span::install_post_mortem(tracer.get(), spans_out);
    std::printf("lsd: tracing to %s (source %s)\n", spans_out.c_str(),
                tracer->source().c_str());
  }

  std::unique_ptr<posix::AdminServer> admin;
  if (!admin_socket.empty()) {
    admin = std::make_unique<posix::AdminServer>(loop, admin_socket, daemon);
    if (tracer) admin->set_tracer(tracer.get());
    std::printf("lsd: admin socket at %s\n", admin_socket.c_str());
  }

  std::unique_ptr<posix::LsdFaultDriver> driver;
  if (!fault_spec.empty()) {
    std::string err;
    const auto plan = fault::parse_fault_spec(fault_spec, &err);
    if (!plan) {
      std::fprintf(stderr, "lsd: bad --fault-spec: %s\n", err.c_str());
      return 2;
    }
    driver = std::make_unique<posix::LsdFaultDriver>(daemon, *plan);
    driver->arm();
    std::printf("lsd: fault plan armed: %s\n", plan->to_spec().c_str());
  }

  std::printf("lsd: forwarding daemon on port %u (buffer %zu bytes, "
              "resume grace %lld ms)\n",
              daemon.port(), buffer,
              static_cast<long long>(resume_grace.count()));
  std::signal(SIGTERM, on_terminate_signal);
  std::signal(SIGINT, on_terminate_signal);
  // Bounded waits instead of loop.run(): the fault driver's timed events,
  // parked-session expiry and the SIGTERM flag all need the loop to wake
  // up periodically; liveness deadlines ride the daemon's own timerfd.
  while (true) {
    if (g_drain_requested && !daemon.draining()) {
      std::printf("lsd: termination requested; draining...\n");
      daemon.begin_drain();
    }
    if (daemon.draining() && daemon.drain_done()) break;
    int wait = driver ? driver->next_timeout_ms() : daemon.next_timeout_ms();
    if (gossip) {
      const int g = gossip->next_timeout_ms();
      if (g >= 0 && (wait < 0 || g < wait)) wait = g;
    }
    if (wait < 0 || wait > 500) wait = 500;
    // run_once returns -1 only on EINTR — which is exactly how SIGTERM
    // announces itself mid-epoll_wait. Loop around so the drain flag is
    // seen; breaking here would exit without draining.
    if (loop.run_once(wait) < 0) continue;
    if (driver) {
      driver->poll();
    } else {
      daemon.expire_parked();
    }
    if (gossip) gossip->poll();
  }
  int rc = 0;
  if (daemon.draining()) {
    const live::DrainReport& rep = daemon.drain_report();
    std::printf("lsd: %s\n", rep.summary().c_str());  // "drain <state>: ..."
    rc = rep.expired ? 1 : 0;
  }
  if (tracer) {
    span::install_post_mortem(nullptr, "");  // normal exit: no crash hook
    if (span::dump_file(*tracer, spans_out)) {
      std::printf("lsd: dumped %llu spans to %s\n",
                  static_cast<unsigned long long>(
                      tracer->recorder().recorded()),
                  spans_out.c_str());
    } else {
      std::fprintf(stderr, "lsd: cannot write %s\n", spans_out.c_str());
    }
  }
  return rc;
}

int run_sharded(std::uint16_t port, std::size_t buffer,
                std::chrono::milliseconds resume_grace,
                const std::string& fault_spec,
                const live::LivenessConfig& liveness,
                const std::string& spans_out,
                const std::string& admin_socket, int shards,
                const HealthOptions& health) {
  posix::ShardedLsdConfig scfg;
  scfg.base.bind = posix::InetAddress{0, port};  // INADDR_ANY
  scfg.base.buffer_bytes = buffer;
  scfg.base.resume_grace = resume_grace;
  scfg.base.liveness = liveness;
  scfg.shards = shards;
  scfg.health_plane = health.enabled;

  // Declared before the daemon: shard teardown flushes open stream windows
  // through the tracer, so it must outlive the ShardedLsd. The recorder is
  // multi-writer safe, so all shards share one tracer.
  std::unique_ptr<span::Tracer> tracer;
  if (!spans_out.empty()) {
    tracer = std::make_unique<span::Tracer>("lsd." + std::to_string(port));
    scfg.tracer = tracer.get();
    span::install_post_mortem(tracer.get(), spans_out);
    std::printf("lsd: tracing to %s (source %s)\n", spans_out.c_str(),
                tracer->source().c_str());
  }
  if (!fault_spec.empty()) {
    std::string err;
    const auto plan = fault::parse_fault_spec(fault_spec, &err);
    if (!plan) {
      std::fprintf(stderr, "lsd: bad --fault-spec: %s\n", err.c_str());
      return 2;
    }
    scfg.fault_plan = *plan;
    std::printf("lsd: fault plan armed on every shard: %s\n",
                plan->to_spec().c_str());
  }

  posix::ShardedLsd daemon(scfg);

  // The main thread becomes the control plane: it owns an engine of its
  // own for the admin socket and watches the drain flag; the shards do
  // all the relaying on their threads.
  posix::EpollLoop control;
  std::unique_ptr<posix::AdminServer> admin;
  if (!admin_socket.empty()) {
    admin = std::make_unique<posix::AdminServer>(control, admin_socket,
                                                 daemon);
    if (tracer) admin->set_tracer(tracer.get());
    std::printf("lsd: admin socket at %s\n", admin_socket.c_str());
  }

  // Gossip rides the control loop: remote rows merge into every shard's
  // (mutex-guarded) board, so each shard routes on the fleet's judgement.
  std::unique_ptr<posix::GossipPoller> gossip;
  if (health.enabled && !health.gossip_peers.empty()) {
    posix::GossipPollerConfig gcfg;
    gcfg.peers = health.gossip_peers;
    gcfg.interval = health.gossip_interval;
    gossip = std::make_unique<posix::GossipPoller>(
        control, daemon.health_boards(), gcfg);
    std::printf("lsd: health plane on, gossiping with %zu peer(s) every "
                "%lld ms\n",
                health.gossip_peers.size(),
                static_cast<long long>(health.gossip_interval.count()));
  } else if (health.enabled) {
    std::printf("lsd: health plane on\n");
  }

  std::printf("lsd: sharded forwarding daemon on port %u "
              "(%d shards, buffer %zu bytes, resume grace %lld ms)\n",
              daemon.port(), daemon.shard_count(), buffer,
              static_cast<long long>(resume_grace.count()));
  std::signal(SIGTERM, on_terminate_signal);
  std::signal(SIGINT, on_terminate_signal);
  while (true) {
    if (g_drain_requested && !daemon.draining()) {
      std::printf("lsd: termination requested; draining %d shards...\n",
                  daemon.shard_count());
      daemon.begin_drain();
    }
    if (daemon.draining() && daemon.drain_done()) break;
    // run_once returns -1 only on EINTR — how SIGTERM announces itself.
    if (control.run_once(200) < 0) continue;
    if (gossip) gossip->poll();
  }
  int rc = 0;
  if (daemon.draining()) {
    const live::DrainReport rep = daemon.drain_report();
    std::printf("lsd: %s\n", rep.summary().c_str());
    rc = rep.expired ? 1 : 0;
  }
  if (tracer) {
    span::install_post_mortem(nullptr, "");  // normal exit: no crash hook
    if (span::dump_file(*tracer, spans_out)) {
      std::printf("lsd: dumped %llu spans to %s\n",
                  static_cast<unsigned long long>(
                      tracer->recorder().recorded()),
                  spans_out.c_str());
    } else {
      std::fprintf(stderr, "lsd: cannot write %s\n", spans_out.c_str());
    }
  }
  return rc;
}

int run_demo(std::uint64_t bytes) {
  posix::EpollLoop loop;

  posix::Lsd depot1(loop, posix::LsdConfig{});
  posix::Lsd depot2(loop, posix::LsdConfig{});
  posix::PosixSinkServer sink(loop, posix::InetAddress::loopback(0),
                              /*expect_header=*/true, /*payload_seed=*/2024);

  std::printf("depot 1 on 127.0.0.1:%u\n", depot1.port());
  std::printf("depot 2 on 127.0.0.1:%u\n", depot2.port());
  std::printf("sink    on 127.0.0.1:%u\n\n", sink.port());

  bool done = false;
  posix::SinkResult result;
  sink.on_complete = [&](const posix::SinkResult& r) {
    result = r;
    done = true;
  };

  posix::PosixSourceConfig cfg;
  cfg.route = {posix::InetAddress::loopback(depot1.port()),
               posix::InetAddress::loopback(depot2.port())};
  cfg.destination = posix::InetAddress::loopback(sink.port());
  cfg.payload_bytes = bytes;
  cfg.payload_seed = 2024;

  bool source_ok = false;
  posix::PosixSource source(loop, cfg);
  source.on_done = [&](bool ok) { source_ok = ok; };
  source.start();

  while (!done) {
    if (loop.run_once(1000) < 0) break;
  }
  // Let the source collect its end-to-end status byte.
  for (int i = 0; i < 50 && !source.finished(); ++i) loop.run_once(10);

  std::printf("session: %s\n",
              result.header ? result.header->session.hex().c_str() : "?");
  std::printf("relayed %s through 2 cascaded depots in %.3f s (%.1f Mbit/s)\n",
              util::format_bytes(result.payload_bytes).c_str(), result.seconds,
              result.seconds > 0
                  ? static_cast<double>(result.payload_bytes) * 8 / 1e6 /
                        result.seconds
                  : 0.0);
  std::printf("MD5 stream digest: %s\n",
              result.verified ? "VERIFIED" : "MISMATCH");
  std::printf("source end-to-end status: %s\n", source_ok ? "OK" : "FAILED");
  std::printf("depot1 relayed %llu bytes, depot2 relayed %llu bytes\n",
              static_cast<unsigned long long>(depot1.stats().bytes_relayed),
              static_cast<unsigned long long>(depot2.stats().bytes_relayed));
  return result.verified && source_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  if (argc > 1 && std::strcmp(argv[1], "--daemon") == 0) {
    std::uint16_t port = 4000;
    std::size_t buffer = 1024 * 1024;
    std::chrono::milliseconds grace{0};
    std::string fault_spec;
    std::string spans_out;
    std::string admin_socket;
    live::LivenessConfig liveness;  // all-zero: deadlines off
    int shards = 1;
    HealthOptions health;
    bool have_port = false;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--resume-grace=", 0) == 0) {
        const auto d = fault::parse_duration(arg.substr(15));
        if (!d || *d < 0) {
          std::fprintf(stderr, "lsd: bad --resume-grace duration\n");
          return 2;
        }
        grace = std::chrono::milliseconds(*d / util::kMillisecond);
      } else if (arg.rfind("--fault-spec=", 0) == 0) {
        fault_spec = arg.substr(13);
      } else if (arg.rfind("--spans-out=", 0) == 0) {
        spans_out = arg.substr(12);
      } else if (arg.rfind("--admin-socket=", 0) == 0) {
        admin_socket = arg.substr(15);
      } else if (arg.rfind("--shards=", 0) == 0) {
        shards = std::atoi(arg.c_str() + 9);
        if (shards < 1) {
          std::fprintf(stderr, "lsd: bad --shards (need >= 1)\n");
          return 2;
        }
      } else if (arg == "--health") {
        health.enabled = true;
      } else if (arg.rfind("--gossip-peers=", 0) == 0) {
        health.gossip_peers = split_commas(arg.substr(15));
        health.enabled = true;  // gossip without a board is meaningless
      } else if (arg.rfind("--gossip-interval=", 0) == 0) {
        const auto d = fault::parse_duration(arg.substr(18));
        if (!d || *d <= 0) {
          std::fprintf(stderr, "lsd: bad --gossip-interval duration\n");
          return 2;
        }
        health.gossip_interval =
            std::chrono::milliseconds(*d / util::kMillisecond);
      } else if (arg == "--liveness") {
        const auto drain = liveness.drain_deadline;  // may be set already
        liveness = live::LivenessConfig::recommended();
        if (drain > 0) liveness.drain_deadline = drain;
      } else if (arg.rfind("--drain-deadline=", 0) == 0) {
        const auto d = fault::parse_duration(arg.substr(17));
        if (!d || *d < 0) {
          std::fprintf(stderr, "lsd: bad --drain-deadline duration\n");
          return 2;
        }
        liveness.drain_deadline = *d;
      } else if (!have_port) {
        port = static_cast<std::uint16_t>(std::atoi(arg.c_str()));
        have_port = true;
      } else {
        buffer = static_cast<std::size_t>(std::atoll(arg.c_str()));
      }
    }
    // --shards=1 (the default) takes the classic single-threaded path —
    // not a one-shard ShardedLsd — so default behavior (and its metric
    // exports) stays byte-identical to previous releases.
    if (shards > 1) {
      return run_sharded(port, buffer, grace, fault_spec, liveness,
                         spans_out, admin_socket, shards, health);
    }
    return run_daemon(port, buffer, grace, fault_spec, liveness, spans_out,
                      admin_socket, health);
  }
  std::uint64_t bytes = 8 * util::kMiB;
  if (argc > 1) bytes = std::strtoull(argv[1], nullptr, 10);
  return run_demo(bytes);
}
