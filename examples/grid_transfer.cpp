// grid_transfer — logistical route selection for a Grid bulk transfer.
//
// The paper assumes clients consult Network Weather Service forecasts to
// decide a session's path (§III). This example shows that whole loop on the
// Case 1 topology:
//   1. probe both candidate routes (direct; via the Denver depot) with a
//      few small transfers, feeding RTT/bandwidth/loss observations into
//      the NWS forecaster database;
//   2. let the RouteSelector score each candidate for the real transfer
//      size by predicted wall-clock time (handshakes + slow-start ramp +
//      Mathis steady state);
//   3. run the chosen route and compare prediction with measurement.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "exp/scenarios.hpp"
#include "lsl/selector.hpp"
#include "util/units.hpp"

using namespace lsl;

namespace {

/// Probe one route with small transfers, feeding the forecaster database.
void probe_route(const exp::PathParams& path, exp::Mode mode,
                 core::PathDatabase& db, const std::string& from,
                 const std::string& mid, const std::string& to,
                 std::uint64_t seed) {
  for (int i = 0; i < 3; ++i) {
    exp::RunConfig cfg;
    cfg.mode = mode;
    cfg.bytes = 2 * util::kMiB;
    cfg.seed = seed + static_cast<std::uint64_t>(i);
    cfg.capture_traces = true;
    const auto r = exp::run_transfer(path, cfg);
    if (!r.completed) continue;

    if (mode == exp::Mode::kDirectTcp) {
      db.observe_bandwidth_mbps(from, to, r.mbps);
      if (!r.rtt_ms.empty()) db.observe_rtt_ms(from, to, r.rtt_ms[0]);
      const double segs =
          static_cast<double>(cfg.bytes) / 1448.0;
      db.observe_loss_rate(from, to,
                           static_cast<double>(r.retransmits) / segs);
    } else {
      // Per-sublink observations from the LSL probe's traces.
      const double segs = static_cast<double>(cfg.bytes) / 1448.0;
      if (r.rtt_ms.size() > 0) {
        db.observe_rtt_ms(from, mid, r.rtt_ms[0]);
        db.observe_bandwidth_mbps(from, mid, r.mbps);
        db.observe_loss_rate(
            from, mid,
            r.retx_per_link.size() > 0
                ? static_cast<double>(r.retx_per_link[0]) / segs
                : 0.0);
      }
      if (r.rtt_ms.size() > 1) {
        db.observe_rtt_ms(mid, to, r.rtt_ms[1]);
        db.observe_bandwidth_mbps(mid, to, r.mbps);
        db.observe_loss_rate(
            mid, to,
            r.retx_per_link.size() > 1
                ? static_cast<double>(r.retx_per_link[1]) / segs
                : 0.0);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t bytes = 64 * util::kMiB;
  if (argc > 1) bytes = std::strtoull(argv[1], nullptr, 10);

  const exp::PathParams path = exp::case1_ucsb_uiuc();
  std::printf("Grid transfer planning: %s, %s payload\n\n", path.name.c_str(),
              util::format_bytes(bytes).c_str());

  core::PathDatabase db;
  std::puts("probing candidate routes (3 x 2MB each)...");
  probe_route(path, exp::Mode::kDirectTcp, db, "ucsb", "denver", "uiuc", 7000);
  probe_route(path, exp::Mode::kLsl, db, "ucsb", "denver", "uiuc", 8000);

  const std::vector<core::CandidateRoute> candidates = {
      {{"ucsb", "uiuc"}},
      {{"ucsb", "denver", "uiuc"}},
  };

  core::RouteSelector selector(db);
  std::printf("\n%-28s %16s\n", "candidate route", "predicted time");
  for (const auto& c : candidates) {
    std::printf("%-28s %14.2f s\n", c.describe().c_str(),
                selector.predict_transfer_seconds(c, bytes));
  }
  const core::CandidateRoute& best = selector.choose(candidates, bytes);
  std::printf("\nchosen: %s\n", best.describe().c_str());

  exp::RunConfig cfg;
  cfg.bytes = bytes;
  cfg.seed = 4242;
  cfg.mode = best.sublink_count() > 1 ? exp::Mode::kLsl
                                      : exp::Mode::kDirectTcp;
  const auto r = exp::run_transfer(path, cfg);
  if (!r.completed) {
    std::fprintf(stderr, "transfer failed\n");
    return 1;
  }
  std::printf("measured: %.2f s (%.2f Mbit/s), predicted %.2f s\n", r.seconds,
              r.mbps, selector.predict_transfer_seconds(best, bytes));
  return 0;
}
