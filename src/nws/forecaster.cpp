#include "nws/forecaster.hpp"

#include <algorithm>
#include <stdexcept>

namespace lsl::nws {
namespace {

class LastValue final : public Predictor {
 public:
  LastValue() : name_("last_value") {}
  const std::string& name() const override { return name_; }
  double predict(double fallback) const override {
    return has_ ? last_ : fallback;
  }
  void observe(double v) override {
    last_ = v;
    has_ = true;
  }

 private:
  std::string name_;
  double last_ = 0.0;
  bool has_ = false;
};

class RunningMean final : public Predictor {
 public:
  RunningMean() : name_("running_mean") {}
  const std::string& name() const override { return name_; }
  double predict(double fallback) const override {
    return n_ ? sum_ / static_cast<double>(n_) : fallback;
  }
  void observe(double v) override {
    sum_ += v;
    ++n_;
  }

 private:
  std::string name_;
  double sum_ = 0.0;
  std::size_t n_ = 0;
};

class SlidingMean final : public Predictor {
 public:
  explicit SlidingMean(std::size_t window)
      : name_("sliding_mean(" + std::to_string(window) + ")"),
        window_(std::max<std::size_t>(window, 1)) {}
  const std::string& name() const override { return name_; }
  double predict(double fallback) const override {
    return hist_.empty() ? fallback
                         : sum_ / static_cast<double>(hist_.size());
  }
  void observe(double v) override {
    hist_.push_back(v);
    sum_ += v;
    if (hist_.size() > window_) {
      sum_ -= hist_.front();
      hist_.pop_front();
    }
  }

 private:
  std::string name_;
  std::size_t window_;
  std::deque<double> hist_;
  double sum_ = 0.0;
};

class SlidingMedian final : public Predictor {
 public:
  explicit SlidingMedian(std::size_t window)
      : name_("sliding_median(" + std::to_string(window) + ")"),
        window_(std::max<std::size_t>(window, 1)) {}
  const std::string& name() const override { return name_; }
  double predict(double fallback) const override {
    if (hist_.empty()) return fallback;
    std::vector<double> v(hist_.begin(), hist_.end());
    const std::size_t mid = v.size() / 2;
    std::nth_element(v.begin(), v.begin() + mid, v.end());
    if (v.size() % 2 == 1) return v[mid];
    const double hi = v[mid];
    const double lo = *std::max_element(v.begin(), v.begin() + mid);
    return (lo + hi) / 2.0;
  }
  void observe(double v) override {
    hist_.push_back(v);
    if (hist_.size() > window_) hist_.pop_front();
  }

 private:
  std::string name_;
  std::size_t window_;
  std::deque<double> hist_;
};

class ExpSmoothing final : public Predictor {
 public:
  explicit ExpSmoothing(double alpha)
      : name_("exp_smoothing(" + std::to_string(alpha) + ")"),
        alpha_(std::clamp(alpha, 1e-6, 1.0)) {}
  const std::string& name() const override { return name_; }
  double predict(double fallback) const override {
    return has_ ? value_ : fallback;
  }
  void observe(double v) override {
    value_ = has_ ? alpha_ * v + (1.0 - alpha_) * value_ : v;
    has_ = true;
  }

 private:
  std::string name_;
  double alpha_;
  double value_ = 0.0;
  bool has_ = false;
};

}  // namespace

std::unique_ptr<Predictor> make_last_value() {
  return std::make_unique<LastValue>();
}
std::unique_ptr<Predictor> make_running_mean() {
  return std::make_unique<RunningMean>();
}
std::unique_ptr<Predictor> make_sliding_mean(std::size_t window) {
  return std::make_unique<SlidingMean>(window);
}
std::unique_ptr<Predictor> make_sliding_median(std::size_t window) {
  return std::make_unique<SlidingMedian>(window);
}
std::unique_ptr<Predictor> make_exp_smoothing(double alpha) {
  return std::make_unique<ExpSmoothing>(alpha);
}

Forecaster::Forecaster() {
  battery_.push_back({make_last_value(), 0.0});
  battery_.push_back({make_running_mean(), 0.0});
  battery_.push_back({make_sliding_mean(5), 0.0});
  battery_.push_back({make_sliding_mean(31), 0.0});
  battery_.push_back({make_sliding_median(5), 0.0});
  battery_.push_back({make_sliding_median(31), 0.0});
  battery_.push_back({make_exp_smoothing(0.25), 0.0});
  battery_.push_back({make_exp_smoothing(0.5), 0.0});
}

Forecaster::Forecaster(std::vector<std::unique_ptr<Predictor>> battery) {
  if (battery.empty()) {
    throw std::invalid_argument("Forecaster: empty predictor battery");
  }
  for (auto& p : battery) battery_.push_back({std::move(p), 0.0});
}

void Forecaster::observe(double value) {
  // Score each predictor's standing forecast against the new truth, then
  // let it learn the value.
  for (Entry& e : battery_) {
    if (count_ > 0) {
      const double err = e.predictor->predict(last_) - value;
      e.squared_error_sum += err * err;
    }
    e.predictor->observe(value);
  }
  last_ = value;
  ++count_;
}

std::size_t Forecaster::best_index() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < battery_.size(); ++i) {
    if (battery_[i].squared_error_sum < battery_[best].squared_error_sum) {
      best = i;
    }
  }
  return best;
}

double Forecaster::predict() const {
  if (count_ == 0) return 0.0;
  return battery_[best_index()].predictor->predict(last_);
}

void Forecaster::observe_at(double value, double when) {
  observe(value);
  last_at_ = std::max(last_at_, when);
}

double Forecaster::predict_at(double now) const {
  const double fresh = predict();
  if (count_ == 0 || horizon_ <= 0.0) return fresh;
  const double age = now - last_at_;
  if (age <= horizon_) return fresh;
  // Past the horizon the forecast decays toward ignorance: scale by
  // horizon/age, so a forecast twice its horizon old is worth half its
  // face value and the limit at infinite age is the empty-forecaster 0.
  return fresh * (horizon_ / age);
}

const std::string& Forecaster::best_predictor() const {
  return battery_[best_index()].predictor->name();
}

double Forecaster::best_mse() const {
  if (count_ < 2) return 0.0;
  return battery_[best_index()].squared_error_sum /
         static_cast<double>(count_ - 1);
}

}  // namespace lsl::nws
