// Network Weather Service-style time-series forecasting.
//
// The paper assumes "LSL clients and depots ... have network performance
// information available from a system such as the Network Weather Service,
// in order to make decisions about paths" (§III). This module implements the
// NWS forecasting architecture (Wolski, Cluster Computing 1998): a family of
// simple predictors run side by side over the measurement history, and an
// adaptive selector that, for each prediction, answers with the predictor
// whose past forecasts have the lowest accumulated error. src/lsl/selector.*
// builds depot/path choice on top of these forecasts.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace lsl::nws {

/// Interface of one forecasting method over a scalar measurement stream.
class Predictor {
 public:
  virtual ~Predictor() = default;

  /// Name for reports ("sliding_median(31)").
  virtual const std::string& name() const = 0;

  /// Current forecast of the next measurement; `fallback` until the method
  /// has enough history.
  virtual double predict(double fallback) const = 0;

  /// Fold in an observed measurement.
  virtual void observe(double value) = 0;
};

/// Forecasts the most recent measurement (persistence model).
std::unique_ptr<Predictor> make_last_value();

/// Forecasts the mean of the entire history.
std::unique_ptr<Predictor> make_running_mean();

/// Forecasts the mean of the last `window` measurements.
std::unique_ptr<Predictor> make_sliding_mean(std::size_t window);

/// Forecasts the median of the last `window` measurements.
std::unique_ptr<Predictor> make_sliding_median(std::size_t window);

/// Exponential smoothing with gain `alpha` in (0, 1].
std::unique_ptr<Predictor> make_exp_smoothing(double alpha);

/// The NWS adaptive forecaster: runs every registered predictor in parallel
/// and answers with the one whose historical mean-squared error is lowest.
class Forecaster {
 public:
  /// Constructs with the standard NWS predictor battery (last value, running
  /// mean, sliding mean/median at several windows, exponential smoothing at
  /// several gains).
  Forecaster();

  /// Constructs with a caller-supplied battery (must be non-empty).
  explicit Forecaster(std::vector<std::unique_ptr<Predictor>> battery);

  /// Record a new measurement; updates every predictor's error history.
  void observe(double value);

  /// Forecast of the next measurement. Before any observation, returns 0.
  double predict() const;

  /// Staleness horizon in caller time units (simulated or wall seconds —
  /// the forecaster never reads a clock). 0, the default, disables
  /// staleness entirely: timeless observe()/predict() behave as before.
  void set_horizon(double horizon) { horizon_ = horizon; }
  double horizon() const { return horizon_; }

  /// Timestamped observe: like observe(), and also remembers when the
  /// measurement was taken for staleness accounting.
  void observe_at(double value, double when);

  /// Staleness-aware forecast: a forecast younger than the horizon is
  /// returned as-is; past the horizon it decays toward ignorance (0 — the
  /// same answer an empty forecaster gives) in proportion to its age:
  ///
  ///   predict_at(now) = predict() * horizon / age      (age > horizon)
  ///
  /// A 5-minute-horizon bandwidth forecast an hour old is worth a twelfth
  /// of its face value, not full trust forever.
  double predict_at(double now) const;

  /// Time of the most recent observe_at(); 0 before any.
  double last_observed_at() const { return last_at_; }

  /// Name of the predictor currently winning the error tournament.
  const std::string& best_predictor() const;

  /// Mean squared error of the winning predictor so far.
  double best_mse() const;

  /// Number of observations folded in.
  std::size_t observations() const { return count_; }

 private:
  struct Entry {
    std::unique_ptr<Predictor> predictor;
    double squared_error_sum = 0.0;
  };
  std::size_t best_index() const;

  std::vector<Entry> battery_;
  std::size_t count_ = 0;
  double last_ = 0.0;
  double horizon_ = 0.0;
  double last_at_ = 0.0;
};

}  // namespace lsl::nws
