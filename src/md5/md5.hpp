// MD5 message digest (RFC 1321), implemented from scratch.
//
// The paper specifies that "an MD5 message digest over the complete stream
// should be sent between end-systems" so that data integrity remains an
// end-to-end property even though flow control and buffering are hop-by-hop.
// This is that digest: an incremental hasher fed as stream bytes are
// produced/consumed, so neither endpoint ever needs the whole transfer in
// memory.
//
// MD5 is used here exactly as the paper uses it — as an integrity check
// against the silent corruption TCP's 16-bit checksum can miss — not as a
// cryptographic primitive.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace lsl::md5 {

/// A finished 128-bit digest.
struct Digest {
  std::array<std::uint8_t, 16> bytes{};

  /// Lowercase hex rendering ("d41d8cd98f00b204e9800998ecf8427e").
  std::string hex() const;

  friend bool operator==(const Digest&, const Digest&) = default;
};

/// Incremental MD5 hasher.
///
/// Usage: construct, call update() any number of times with consecutive
/// chunks of the message, then finalize(). After finalize() the hasher may be
/// reset() and reused.
class Md5 {
 public:
  Md5() { reset(); }

  /// Restore the initial state, discarding any buffered input.
  void reset();

  /// Absorb the next `data.size()` bytes of the message.
  void update(std::span<const std::uint8_t> data);

  /// Convenience overload for character data.
  void update(std::string_view data);

  /// Pad, absorb the length, and return the digest. The hasher must be
  /// reset() before further use.
  Digest finalize();

  /// Total number of message bytes absorbed so far.
  std::uint64_t message_length() const { return total_len_; }

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 4> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// One-shot digest of a byte span.
Digest compute(std::span<const std::uint8_t> data);

/// One-shot digest of character data.
Digest compute(std::string_view data);

}  // namespace lsl::md5
