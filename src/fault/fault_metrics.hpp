// Fault and recovery instruments.
//
// Unlike the per-instance bundles in src/metrics/instruments.hpp, fault
// metrics are session-global: one chaos run injects faults across many
// depots and links but recovers as a single session, so the names are flat
// (`fault.*`, `recovery.*`) rather than `<component>.<instance>.*`. Every
// name registered here must appear in docs/OBSERVABILITY.md — the
// `fault-metrics-docs` rule of tools/lsl_lint enforces that for any
// `fault.`/`recovery.` string literal in this directory.
#pragma once

#include "metrics/instruments.hpp"
#include "metrics/metrics.hpp"

#include "fault/spec.hpp"

namespace lsl::fault {

/// Pre-resolved fault/recovery instruments (see metrics bundle pattern in
/// src/metrics/instruments.hpp: resolve once, hot path touches atomics).
struct FaultMetrics {
  explicit FaultMetrics(metrics::Registry& reg);

  metrics::Counter* injected;        ///< faults actually applied
  metrics::Timeseries* timeline;     ///< (t_seconds, FaultKind index)
  metrics::Counter* attempts;        ///< recovery attempts started
  metrics::Counter* successes;       ///< recoveries that completed
  metrics::Counter* reroutes;        ///< attempts that switched routes
  metrics::Histogram* latency_ms;    ///< failure detected -> recovered

  void on_injected(double t_seconds, FaultKind kind) {
    injected->inc();
    timeline->record(t_seconds, static_cast<double>(kind));
  }
  void on_attempt() { attempts->inc(); }
  void on_reroute() { reroutes->inc(); }
  void on_recovered(double latency_milliseconds) {
    successes->inc();
    latency_ms->observe(latency_milliseconds);
  }
};

}  // namespace lsl::fault
