#include "fault/policy.hpp"

#include <algorithm>
#include <cmath>

namespace lsl::fault {

std::optional<util::SimDuration> RetryPolicy::next_delay() {
  if (attempts_ >= config_.max_attempts) return std::nullopt;
  const auto k = static_cast<double>(attempts_);
  ++attempts_;
  double ns = static_cast<double>(config_.base_delay) *
              std::pow(config_.multiplier, k);
  ns = std::min(ns, static_cast<double>(config_.max_delay));
  if (config_.jitter > 0.0) {
    // One RNG draw per attempt, jitter or not in range: keeps the stream
    // position a pure function of attempt count for a given seed.
    const double scale =
        rng_.uniform(1.0 - config_.jitter, 1.0 + config_.jitter);
    ns *= scale;
  }
  const auto delay = static_cast<util::SimDuration>(ns);
  return std::max<util::SimDuration>(delay, 1);
}

const char* to_string(RerouteError e) {
  switch (e) {
    case RerouteError::kNone:
      return "none";
    case RerouteError::kNoCandidates:
      return "no-candidates";
    case RerouteError::kNoAlternativeRoute:
      return "no-alternative-route";
  }
  return "?";  // unreachable: all enumerators handled above
}

std::set<std::string> ReroutePolicy::excluded_depots() const {
  if (board_ == nullptr) return failed_;
  std::set<std::string> out;
  for (const std::string& d : failed_) {
    // Re-admission: the board's judgement supersedes the sticky memory.
    // Only depots it still calls suspect-or-worse stay banned.
    if (board_->state(d) >= health::DepotState::kSuspect) out.insert(d);
  }
  return out;
}

std::optional<core::CandidateRoute> ReroutePolicy::choose_excluding(
    const std::vector<core::CandidateRoute>& candidates,
    const std::set<std::string>& dead_depots, std::uint64_t bytes,
    RerouteError* error) const {
  const auto set_error = [&](RerouteError e) {
    if (error != nullptr) *error = e;
  };
  if (candidates.empty()) {
    set_error(RerouteError::kNoCandidates);
    return std::nullopt;
  }
  const std::set<std::string> noted = excluded_depots();
  std::vector<core::CandidateRoute> alive;
  for (const core::CandidateRoute& c : candidates) {
    bool ok = true;
    for (std::size_t i = 1; i + 1 < c.waypoints.size(); ++i) {
      if (dead_depots.count(c.waypoints[i]) != 0 ||
          noted.count(c.waypoints[i]) != 0) {
        ok = false;
        break;
      }
    }
    if (ok) alive.push_back(c);
  }
  if (alive.empty()) {
    set_error(RerouteError::kNoAlternativeRoute);
    return std::nullopt;
  }
  set_error(RerouteError::kNone);
  return selector_.choose(alive, bytes);
}

}  // namespace lsl::fault
