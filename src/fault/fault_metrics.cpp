#include "fault/fault_metrics.hpp"

namespace lsl::fault {

FaultMetrics::FaultMetrics(metrics::Registry& reg)
    : injected(&reg.counter("fault.injected")),
      timeline(&reg.timeseries("fault.timeline")),
      attempts(&reg.counter("recovery.attempts")),
      successes(&reg.counter("recovery.successes")),
      reroutes(&reg.counter("recovery.reroutes")),
      latency_ms(&reg.histogram("recovery.latency_ms",
                                metrics::latency_ms_bounds())) {}

}  // namespace lsl::fault
