#include "fault/spec.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace lsl::fault {

namespace {

/// Exact-unit formatting so to_spec() round-trips: pick the largest unit
/// that divides the value evenly.
std::string format_spec_duration(util::SimDuration d) {
  std::ostringstream out;
  if (d % util::kSecond == 0) {
    out << d / util::kSecond << "s";
  } else if (d % util::kMillisecond == 0) {
    out << d / util::kMillisecond << "ms";
  } else if (d % util::kMicrosecond == 0) {
    out << d / util::kMicrosecond << "us";
  } else {
    out << d << "ns";
  }
  return out.str();
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      parts.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

bool fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

std::optional<FaultKind> parse_kind(const std::string& word) {
  if (word == "crash") return FaultKind::kCrash;
  if (word == "restart") return FaultKind::kRestart;
  if (word == "blackhole") return FaultKind::kBlackhole;
  if (word == "flap") return FaultKind::kFlap;
  if (word == "syndrop") return FaultKind::kSynDrop;
  if (word == "reset") return FaultKind::kReset;
  if (word == "slow") return FaultKind::kSlow;
  if (word == "corrupt") return FaultKind::kCorrupt;
  if (word == "disconnect") return FaultKind::kDisconnect;
  return std::nullopt;
}

bool wants_depot(FaultKind k) {
  return k == FaultKind::kCrash || k == FaultKind::kRestart ||
         k == FaultKind::kSynDrop || k == FaultKind::kReset ||
         k == FaultKind::kSlow;
}

bool wants_link(FaultKind k) {
  return k == FaultKind::kBlackhole || k == FaultKind::kFlap;
}

/// Byte-keyed triggers make sense only where a stream offset exists.
bool allows_bytes(FaultKind k) {
  return k == FaultKind::kCrash || k == FaultKind::kReset ||
         k == FaultKind::kCorrupt || k == FaultKind::kSlow;
}

bool parse_one_event(const std::string& text, FaultEvent* ev,
                     std::string* error) {
  const std::size_t colon = text.find(':');
  if (colon == std::string::npos)
    return fail(error, "event '" + text + "' has no ':' after the kind");
  const std::string kind_word = trim(text.substr(0, colon));
  const auto kind = parse_kind(kind_word);
  if (!kind) return fail(error, "unknown fault kind '" + kind_word + "'");
  ev->kind = *kind;

  bool saw_for = false;
  for (const std::string& raw : split(text.substr(colon + 1), ',')) {
    const std::string pair = trim(raw);
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos)
      return fail(error, "'" + pair + "' is not key=value");
    const std::string key = trim(pair.substr(0, eq));
    const std::string value = trim(pair.substr(eq + 1));
    if (value.empty()) return fail(error, "empty value for '" + key + "'");
    if (key == "depot" || key == "link") {
      const bool applies = key == "depot" ? wants_depot(ev->kind)
                                          : wants_link(ev->kind);
      if (!applies)
        return fail(error, "'" + key + "=' does not apply to " + kind_word);
      ev->target = value;
    } else if (key == "at") {
      const auto d = parse_duration(value);
      if (!d) return fail(error, "bad duration '" + value + "' for at=");
      ev->at = *d;
    } else if (key == "at_bytes") {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0')
        return fail(error, "bad byte offset '" + value + "'");
      ev->at_bytes = v;
    } else if (key == "for") {
      const auto d = parse_duration(value);
      if (!d || *d <= 0)
        return fail(error, "bad duration '" + value + "' for for=");
      ev->duration = *d;
      saw_for = true;
    } else if (key == "count") {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || v == 0)
        return fail(error, "bad count '" + value + "'");
      ev->count = static_cast<std::uint32_t>(v);
    } else {
      return fail(error, "unknown key '" + key + "' in " + kind_word);
    }
  }

  // Per-kind validation: every event needs a trigger and its target.
  if (wants_depot(ev->kind) && ev->target.empty())
    return fail(error, kind_word + " requires depot=<name>");
  if (wants_link(ev->kind)) {
    if (ev->target.empty()) return fail(error, kind_word + " requires link=a-b");
    if (ev->target.find('-') == std::string::npos)
      return fail(error, "link '" + ev->target + "' must be <a>-<b>");
  }
  if (ev->byte_keyed() && !allows_bytes(ev->kind))
    return fail(error, kind_word + " cannot be keyed to at_bytes=");
  if (ev->kind == FaultKind::kCorrupt && !ev->byte_keyed())
    return fail(error, "corrupt requires at_bytes=<n>");
  if (ev->at < 0 && !ev->byte_keyed())
    return fail(error, kind_word + " needs at=<dur> or at_bytes=<n>");
  if (ev->at >= 0 && ev->byte_keyed())
    return fail(error, kind_word + " cannot have both at= and at_bytes=");
  if (ev->kind == FaultKind::kFlap && !saw_for)
    return fail(error, "flap requires for=<dur>");
  if (ev->kind == FaultKind::kSlow && !saw_for)
    return fail(error, "slow requires for=<dur>");
  return true;
}

}  // namespace

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRestart:
      return "restart";
    case FaultKind::kBlackhole:
      return "blackhole";
    case FaultKind::kFlap:
      return "flap";
    case FaultKind::kSynDrop:
      return "syndrop";
    case FaultKind::kReset:
      return "reset";
    case FaultKind::kSlow:
      return "slow";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kDisconnect:
      return "disconnect";
  }
  return "?";  // unreachable: all enumerators handled above
}

std::string FaultEvent::to_spec() const {
  std::ostringstream out;
  out << to_string(kind) << ":";
  bool first = true;
  const auto emit = [&](const std::string& key, const std::string& value) {
    if (!first) out << ",";
    out << key << "=" << value;
    first = false;
  };
  if (!target.empty())
    emit(wants_link(kind) ? "link" : "depot", target);
  if (byte_keyed())
    emit("at_bytes", std::to_string(at_bytes));
  else
    emit("at", format_spec_duration(at));
  if (duration > 0) emit("for", format_spec_duration(duration));
  if (count != 1) emit("count", std::to_string(count));
  return out.str();
}

std::string FaultEvent::describe() const { return to_spec(); }

std::string FaultPlan::to_spec() const {
  std::string out;
  for (const FaultEvent& ev : events) {
    if (!out.empty()) out += ";";
    out += ev.to_spec();
  }
  return out;
}

std::optional<util::SimDuration> parse_duration(const std::string& text) {
  const std::string t = trim(text);
  if (t.empty()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  if (end == t.c_str() || v < 0) return std::nullopt;
  const std::string unit = trim(std::string(end));
  if (unit == "s") return util::seconds(v);
  if (unit == "ms") return util::millis(v);
  if (unit == "us") return util::micros(v);
  if (unit == "ns") return static_cast<util::SimDuration>(v);
  return std::nullopt;  // missing or unknown unit
}

std::optional<FaultPlan> parse_fault_spec(const std::string& spec,
                                          std::string* error) {
  FaultPlan plan;
  for (const std::string& raw : split(spec, ';')) {
    const std::string text = trim(raw);
    if (text.empty()) continue;
    FaultEvent ev;
    if (!parse_one_event(text, &ev, error)) return std::nullopt;
    plan.events.push_back(std::move(ev));
  }
  return plan;
}

}  // namespace lsl::fault
