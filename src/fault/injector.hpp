// The simulator-side fault injector.
//
// Takes a parsed FaultPlan and applies it to a live topology through the
// hooks the stack already exposes: sim::Link::set_loss_rate (blackhole /
// flap), core::DepotApp::crash/restart/set_accept_drops/set_stalled/
// inject_upstream_reset, and core::SourceApp::simulate_disconnect.
// Time-keyed events are scheduled on the simulator's own EventQueue, so
// they interleave with protocol events in deterministic order; byte-keyed
// events ride DepotApp::on_progress, which is itself dispatched through a
// zero-delay simulator event. Nothing here draws randomness — a fixed
// (plan, seed) pair replays bit-for-bit, which is what lets the chaos
// tests assert byte-identical metrics exports across runs.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "fault/fault_metrics.hpp"
#include "fault/spec.hpp"
#include "lsl/apps.hpp"
#include "lsl/depot.hpp"
#include "sim/network.hpp"

namespace lsl::fault {

/// Applies a FaultPlan to registered depots/links/sources.
class FaultInjector {
 public:
  FaultInjector(sim::Network& net, FaultPlan plan,
                FaultMetrics* metrics = nullptr)
      : net_(net), plan_(std::move(plan)), metrics_(metrics) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Register the depot application running on host `name` (the name used
  /// in crash:/restart:/syndrop:/reset:/slow: events).
  void register_depot(const std::string& name, core::DepotApp* depot);

  /// Register the sending application (disconnect: events).
  void register_source(core::SourceApp* source);

  /// Schedule every time-keyed event and arm byte-offset triggers. Call
  /// once, after registration and before the transfer starts. Events whose
  /// target was never registered are skipped (and not counted injected).
  void arm();

  /// Record an injection applied outside the injector (the source-side
  /// corrupt fault lives in SourceConfig; see exp::run_chaos).
  void note_injected(FaultKind kind);

  /// Depots currently crashed — the exclusion set for ReroutePolicy.
  const std::set<std::string>& dead_depots() const { return dead_; }

  /// Faults applied so far.
  std::uint64_t injected() const { return injected_; }

  const FaultPlan& plan() const { return plan_; }

 private:
  void apply(const FaultEvent& ev);
  /// Take both directions of "a-b" down (loss 1.0) or restore them.
  void set_link_down(const std::string& spec, bool down);
  void on_depot_progress(const std::string& name, std::uint64_t bytes);
  double now_seconds() const;

  sim::Network& net_;
  FaultPlan plan_;
  FaultMetrics* metrics_;
  std::map<std::string, core::DepotApp*> depots_;
  core::SourceApp* source_ = nullptr;
  /// Byte-keyed events per depot, pending until progress passes at_bytes.
  std::map<std::string, std::vector<FaultEvent>> pending_bytes_;
  /// Saved per-direction loss rates of links taken down, keyed by "a-b".
  std::map<std::string, std::pair<double, double>> saved_loss_;
  std::set<std::string> dead_;
  std::uint64_t injected_ = 0;
  bool armed_ = false;
};

}  // namespace lsl::fault
