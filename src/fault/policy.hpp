// Recovery policies: what the session layer does after a fault.
//
// The paper's §III mobility story is that depots hold enough state for a
// session to survive endpoint and sublink failure; this module supplies the
// client-side half of that story. RetryPolicy decides *when* to try again
// (exponential backoff with seeded jitter and a capped attempt budget —
// deterministic under a fixed seed, so chaos runs replay bit-for-bit).
// ReroutePolicy decides *where*: it re-asks the existing RouteSelector for
// the best candidate route whose depots are all still alive, and reports a
// distinct error when no alternative exists so callers can fail cleanly
// instead of hammering a dead path.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "health/board.hpp"
#include "lsl/selector.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace lsl::fault {

/// Backoff knobs (see docs/FAULTS.md for the full table).
struct RetryConfig {
  /// Retry budget: how many re-attempts follow the initial try.
  std::uint32_t max_attempts = 4;
  util::SimDuration base_delay = 50 * util::kMillisecond;
  double multiplier = 2.0;
  util::SimDuration max_delay = 5 * util::kSecond;
  /// Jitter fraction j: each delay is scaled by uniform(1-j, 1+j) drawn
  /// from the policy's own seeded RNG. 0 disables jitter.
  double jitter = 0.2;
};

/// Exponential backoff with seeded jitter and capped attempts.
///
/// delay(k) = min(base * multiplier^k, max) * uniform(1-j, 1+j)
///
/// All randomness comes from a util::Rng constructed from the caller's
/// seed, so a fixed seed yields an identical delay sequence — the property
/// tests/fault_test.cpp pins down.
class RetryPolicy {
 public:
  RetryPolicy(RetryConfig config, std::uint64_t seed)
      : config_(config), rng_(seed) {}

  /// The delay before the next retry, or nullopt when the attempt budget
  /// is exhausted (caller should give up and surface the failure).
  std::optional<util::SimDuration> next_delay();

  std::uint32_t attempts_made() const { return attempts_; }
  const RetryConfig& config() const { return config_; }

  /// Forget past attempts (a fresh transfer reuses the policy object).
  /// The RNG stream is deliberately *not* rewound: two transfers in one
  /// run draw different jitter, while a re-run with the same seed still
  /// reproduces the whole sequence.
  void reset() { attempts_ = 0; }

 private:
  RetryConfig config_;
  util::Rng rng_;
  std::uint32_t attempts_ = 0;
};

/// Why a reroute attempt produced no route.
enum class RerouteError {
  kNone,               ///< a route was found
  kNoCandidates,       ///< the candidate list itself was empty
  kNoAlternativeRoute, ///< every candidate traverses a dead depot
};

const char* to_string(RerouteError e);

/// Route selection under failure: the best candidate avoiding dead depots.
class ReroutePolicy {
 public:
  explicit ReroutePolicy(core::RouteSelector& selector)
      : selector_(selector) {}

  /// The fastest candidate (per RouteSelector::choose) whose *interior*
  /// waypoints — the depots; endpoints are the session's own hosts — avoid
  /// `dead_depots` and every depot noted via note_depot_failure() that is
  /// not yet re-admitted (see set_health_board). Returns nullopt with a
  /// distinct RerouteError when the candidate list is empty or fully
  /// eliminated.
  std::optional<core::CandidateRoute> choose_excluding(
      const std::vector<core::CandidateRoute>& candidates,
      const std::set<std::string>& dead_depots, std::uint64_t bytes,
      RerouteError* error = nullptr) const;

  /// Remember a depot this policy saw fail (a dial error, a mid-relay
  /// death). Noted depots are excluded from future choices. Without a
  /// health board this memory is sticky for the policy's lifetime — the
  /// historical behavior that turned one bad afternoon into a permanent
  /// ban; attach a board to make the exclusion score-driven instead.
  void note_depot_failure(const std::string& depot) {
    failed_.insert(depot);
  }

  /// Attach a health board for re-admission: a noted depot stays excluded
  /// only while the board still judges it suspect-or-worse. A depot whose
  /// score recovered (decay plus probe successes promoting it back to
  /// degraded or healthy) becomes eligible again — recovered depots must
  /// not be shunned forever. nullptr reverts to sticky exclusion.
  void set_health_board(const health::HealthBoard* board) { board_ = board; }

  /// Noted failures still in force (after board-driven re-admission).
  std::set<std::string> excluded_depots() const;

 private:
  core::RouteSelector& selector_;
  std::set<std::string> failed_;
  const health::HealthBoard* board_ = nullptr;
};

}  // namespace lsl::fault
