#include "fault/injector.hpp"

#include <utility>

#include "util/log.hpp"

namespace lsl::fault {

void FaultInjector::register_depot(const std::string& name,
                                   core::DepotApp* depot) {
  depots_[name] = depot;
}

void FaultInjector::register_source(core::SourceApp* source) {
  source_ = source;
}

double FaultInjector::now_seconds() const {
  return util::to_seconds(net_.sim().now());
}

void FaultInjector::note_injected(FaultKind kind) {
  ++injected_;
  if (metrics_) metrics_->on_injected(now_seconds(), kind);
}

void FaultInjector::arm() {
  if (armed_) return;
  armed_ = true;
  auto& ev = net_.sim().events();
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kCorrupt) {
      // The corrupt fault lives at the source (SourceConfig::corrupt_at_byte)
      // because the flip must happen after hashing; the harness wires it and
      // reports back through note_injected().
      continue;
    }
    if (e.byte_keyed()) {
      const auto it = depots_.find(e.target);
      if (it == depots_.end()) {
        LSL_LOG_WARN("fault: no depot '%s' for byte-keyed %s",
                     e.target.c_str(), to_string(e.kind));
        continue;
      }
      if (pending_bytes_.find(e.target) == pending_bytes_.end()) {
        const std::string name = e.target;
        it->second->on_progress = [this, name](std::uint64_t bytes) {
          on_depot_progress(name, bytes);
        };
      }
      pending_bytes_[e.target].push_back(e);
      continue;
    }
    ev.schedule_at(e.at, [this, e] { apply(e); });
  }
}

void FaultInjector::on_depot_progress(const std::string& name,
                                      std::uint64_t bytes) {
  auto it = pending_bytes_.find(name);
  if (it == pending_bytes_.end()) return;
  auto& pending = it->second;
  for (std::size_t i = 0; i < pending.size();) {
    if (pending[i].at_bytes <= bytes) {
      const FaultEvent e = pending[i];
      pending.erase(pending.begin() + static_cast<long>(i));
      apply(e);
    } else {
      ++i;
    }
  }
}

void FaultInjector::apply(const FaultEvent& e) {
  auto& ev = net_.sim().events();
  const auto depot_of = [&](const std::string& name) -> core::DepotApp* {
    const auto it = depots_.find(name);
    if (it == depots_.end()) {
      LSL_LOG_WARN("fault: no registered depot '%s'", name.c_str());
      return nullptr;
    }
    return it->second;
  };

  switch (e.kind) {
    case FaultKind::kCrash: {
      core::DepotApp* d = depot_of(e.target);
      if (d == nullptr) return;
      LSL_LOG_INFO("fault: crash depot %s", e.target.c_str());
      d->crash();
      dead_.insert(e.target);
      if (e.duration > 0) {
        ev.schedule_in(e.duration, [this, name = e.target] {
          const auto it = depots_.find(name);
          if (it == depots_.end()) return;
          LSL_LOG_INFO("fault: restart depot %s", name.c_str());
          it->second->restart();
          dead_.erase(name);
        });
      }
      break;
    }
    case FaultKind::kRestart: {
      core::DepotApp* d = depot_of(e.target);
      if (d == nullptr) return;
      LSL_LOG_INFO("fault: restart depot %s", e.target.c_str());
      d->restart();
      dead_.erase(e.target);
      // A restart repairs rather than injects; it is not counted.
      return;
    }
    case FaultKind::kBlackhole:
    case FaultKind::kFlap: {
      LSL_LOG_INFO("fault: %s link %s", to_string(e.kind), e.target.c_str());
      set_link_down(e.target, true);
      if (e.duration > 0) {
        ev.schedule_in(e.duration, [this, link = e.target] {
          LSL_LOG_INFO("fault: link %s back up", link.c_str());
          set_link_down(link, false);
        });
      }
      break;
    }
    case FaultKind::kSynDrop: {
      core::DepotApp* d = depot_of(e.target);
      if (d == nullptr) return;
      LSL_LOG_INFO("fault: drop next %u accepts at %s", e.count,
                   e.target.c_str());
      d->set_accept_drops(e.count);
      break;
    }
    case FaultKind::kReset: {
      core::DepotApp* d = depot_of(e.target);
      if (d == nullptr) return;
      LSL_LOG_INFO("fault: reset upstream at %s", e.target.c_str());
      d->inject_upstream_reset();
      break;
    }
    case FaultKind::kSlow: {
      core::DepotApp* d = depot_of(e.target);
      if (d == nullptr) return;
      LSL_LOG_INFO("fault: stall depot %s for %s", e.target.c_str(),
                   util::format_duration(e.duration).c_str());
      d->set_stalled(true);
      ev.schedule_in(e.duration, [this, name = e.target] {
        const auto it = depots_.find(name);
        if (it != depots_.end()) it->second->set_stalled(false);
      });
      break;
    }
    case FaultKind::kCorrupt:
      return;  // applied at the source, accounted via note_injected()
    case FaultKind::kDisconnect: {
      if (source_ == nullptr) {
        LSL_LOG_WARN("fault: disconnect with no registered source");
        return;
      }
      LSL_LOG_INFO("fault: source disconnect");
      source_->simulate_disconnect();
      break;
    }
  }
  note_injected(e.kind);
}

void FaultInjector::set_link_down(const std::string& spec, bool down) {
  const std::size_t dash = spec.find('-');
  if (dash == std::string::npos) return;  // validated at parse; defensive
  sim::Node* a = net_.find_node(spec.substr(0, dash));
  sim::Node* b = net_.find_node(spec.substr(dash + 1));
  if (a == nullptr || b == nullptr) {
    LSL_LOG_WARN("fault: unknown link '%s'", spec.c_str());
    return;
  }
  sim::Link* ab = net_.link_between(a->id(), b->id());
  sim::Link* ba = net_.link_between(b->id(), a->id());
  if (ab == nullptr || ba == nullptr) {
    LSL_LOG_WARN("fault: nodes '%s' are not adjacent", spec.c_str());
    return;
  }
  if (down) {
    if (saved_loss_.find(spec) == saved_loss_.end()) {
      saved_loss_[spec] = {ab->config().loss_rate, ba->config().loss_rate};
    }
    ab->set_loss_rate(1.0);
    ba->set_loss_rate(1.0);
  } else {
    const auto it = saved_loss_.find(spec);
    const auto prior = it != saved_loss_.end()
                           ? it->second
                           : std::pair<double, double>{0.0, 0.0};
    ab->set_loss_rate(prior.first);
    ba->set_loss_rate(prior.second);
    if (it != saved_loss_.end()) saved_loss_.erase(it);
  }
}

}  // namespace lsl::fault
