// Scripted fault plans: the deterministic chaos vocabulary.
//
// A FaultPlan is an ordered list of failure events — depot crashes and
// restarts, link blackholes and flaps, accept (SYN) drops, mid-stream
// connection resets, slow-depot relay stalls, and single-byte payload
// corruption — each keyed to a simulated-time instant or a stream byte
// offset. Plans parse from a compact spec string so an entire chaos
// scenario is reproducible from one CLI flag:
//
//   crash:depot=depot1,at=2s;flap:link=depot1-depot2,at=1s,for=300ms
//
// The same grammar drives both halves of the repository: the simulator's
// FaultInjector (src/fault/injector.hpp) and the real-socket daemon's
// fault driver (src/posix/fault_driver.hpp). The spec layer itself depends
// on nothing but util, so every consumer can parse plans without pulling
// in the network stacks. Grammar reference: docs/FAULTS.md.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace lsl::fault {

/// Sentinel for "this event is not keyed to a byte offset".
inline constexpr std::uint64_t kNoByteOffset = ~0ull;

/// The failure vocabulary. Keep to_string()/parse in spec.cpp in sync.
enum class FaultKind {
  kCrash,       ///< depot dies: all relays fail, listener closes
  kRestart,     ///< a crashed depot re-binds its listener
  kBlackhole,   ///< link drops every packet (optionally for a window)
  kFlap,        ///< bounded blackhole: link down for `duration`, then up
  kSynDrop,     ///< depot refuses (aborts) the next `count` accepts
  kReset,       ///< mid-stream upstream connection reset at a depot
  kSlow,        ///< depot relay stall: stops pulling/pushing for a window
  kCorrupt,     ///< source flips one payload byte (after digesting it)
  kDisconnect,  ///< source-side connection abort (the §III roam)
};

const char* to_string(FaultKind k);

/// One scripted failure.
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  /// Depot name (crash/restart/syndrop/reset/slow) or "a-b" link name
  /// (blackhole/flap); empty for source-side events (corrupt/disconnect).
  std::string target;
  /// Trigger instant in simulated time; -1 when the event is byte-keyed.
  util::SimTime at = -1;
  /// Trigger stream byte offset; kNoByteOffset when time-keyed.
  std::uint64_t at_bytes = kNoByteOffset;
  /// Window length for bounded events (flap/slow/crash-with-restart);
  /// 0 = unbounded / instantaneous.
  util::SimDuration duration = 0;
  /// Repeat count (syndrop: how many accepts to refuse).
  std::uint32_t count = 1;

  bool byte_keyed() const { return at_bytes != kNoByteOffset; }
  /// Round-trips through parse_fault_spec (modulo key order).
  std::string to_spec() const;
  std::string describe() const;
};

/// An ordered fault script. Events fire independently; order in the spec
/// string is preserved for reporting but execution order is governed by
/// the `at` / `at_bytes` keys.
struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  std::string to_spec() const;
};

/// Parse a duration literal: "2s", "300ms", "150us", "40ns". Plain
/// integers are rejected — the unit is mandatory so specs read
/// unambiguously. Returns nullopt on malformed input.
std::optional<util::SimDuration> parse_duration(const std::string& text);

/// Parse the compact spec grammar:
///
///   plan  := event (';' event)*
///   event := kind ':' key '=' value (',' key '=' value)*
///   kind  := crash | restart | blackhole | flap | syndrop | reset
///          | slow | corrupt | disconnect
///   keys  := depot= | link= | at= | at_bytes= | for= | count=
///
/// Whitespace around separators is ignored. On failure returns nullopt and,
/// when `error` is non-null, stores a one-line description of what was
/// wrong (unknown kind, missing required key, bad duration, ...).
std::optional<FaultPlan> parse_fault_spec(const std::string& spec,
                                          std::string* error = nullptr);

}  // namespace lsl::fault
