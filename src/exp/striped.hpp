// Striped multipath experiments: one session over N disjoint depot chains.
//
// run_striped builds a "braid" topology — `paths` parallel single-depot
// chains between a shared source and sink — and moves one session over
// `stripes` of them at once: a stripe::StripePlan splits the byte stream
// into lanes, each lane rides the depot chain stripe::disjoint_routes
// picked for it, every lane connection carries a version-3 wire header
// (src/lsl/wire.hpp) mapping its bytes back into the merged stream, and a
// sink-side stripe::Reassembler merges the lanes, verifies content against
// the seeded generator, and checks the shipped MD5 trailer against the
// digest of the reassembled stream.
//
// Faults compose with the existing policy machinery: a scripted depot
// crash (fault::FaultPlan) kills one lane mid-transfer; with stripe
// redundancy the surviving lanes already cover the dead lane's logical
// stripes and the run completes with zero replacement bytes; without
// redundancy the driver backs off per fault::RetryPolicy, asks
// fault::ReroutePolicy for a spare disjoint chain, and re-stripes the
// lane's undelivered suffix onto it (wire resume_offset carries the
// lane-relative skip). Deterministic under a fixed seed, like run_chaos:
// same-seed runs export byte-identical metrics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/policy.hpp"
#include "fault/spec.hpp"
#include "lsl/depot.hpp"
#include "metrics/metrics.hpp"
#include "tcp/tcp.hpp"
#include "util/units.hpp"

namespace lsl::exp {

/// Parameters of one striped run.
struct StripedParams {
  /// Disjoint single-depot chains in the braid (>= stripes).
  std::size_t paths = 4;
  /// Lanes the session is striped over (1 = degenerate single chain).
  std::uint16_t stripes = 2;
  /// Round-robin cell size (ignored in weighted mode).
  std::uint32_t chunk = 64 * util::kKiB;
  /// Extra carriers per logical stripe: any `redundancy` lane deaths leave
  /// full coverage (round-robin mode only).
  std::uint8_t redundancy = 0;
  /// Contiguous ranges sized by the RouteSelector's predicted lane speeds
  /// instead of byte-interleaved round-robin cells.
  bool weighted = false;

  std::uint64_t bytes = 8 * util::kMiB;
  std::uint64_t seed = 1;

  /// Per-path backbone rate; `path_rate_mbps` (when non-empty, one entry
  /// per path) overrides `wan_rate` for heterogeneous braids.
  util::DataRate wan_rate = util::DataRate::mbps(40);
  std::vector<double> path_rate_mbps;
  /// One-way propagation delay of each path's backbone (split across its
  /// two segments), and its total one-way loss probability.
  util::SimDuration one_way_delay = util::millis(28);
  double loss = 2.8e-4;
  std::size_t wan_queue_bytes = 256 * util::kKiB;
  util::SimDuration access_delay = util::millis(0.5);

  tcp::TcpConfig tcp{.initial_ssthresh = 64 * util::kKiB};
  core::DepotConfig depot{.buffer_bytes = util::kMiB,
                          .copy_rate = util::DataRate::mbps(60),
                          .session_setup_latency = util::millis(40)};

  util::SimDuration deadline = 4ull * 3600 * util::kSecond;

  /// When set, the run registers `stripe.*` instruments (and the per-lane
  /// `stripe.lane<i>.bps` gauges) here. Must outlive the call.
  metrics::Registry* metrics = nullptr;

  /// Scripted faults (depot crashes kill lanes) and the restripe backoff.
  fault::FaultPlan plan;
  fault::RetryConfig retry;

  /// Check merged-stream content against the seeded generator as the
  /// reassembly frontier advances (the MD5 trailer is always checked).
  bool verify_content = true;
};

/// Outcome of one striped run.
struct StripedResult {
  bool completed = false;  ///< the sink merged every byte of the stream
  bool verified = false;   ///< ... content and MD5 trailer both checked out
  std::uint16_t lanes = 0;
  std::uint32_t stripes_lost = 0;       ///< lanes that died mid-transfer
  std::uint32_t stripes_recovered = 0;  ///< lanes re-striped onto spare chains
  /// Redundant/overlapping bytes the reassembler dropped.
  std::uint64_t duplicate_bytes = 0;
  /// Bytes carried by replacement lanes — 0 when redundancy absorbed every
  /// death (the issue's "no retransmission" acceptance bar).
  std::uint64_t retransmitted_bytes = 0;
  std::uint32_t attempts = 0;  ///< restripe attempts granted by RetryPolicy
  std::uint64_t faults_injected = 0;
  std::vector<std::string> lane_routes;  ///< final depot of each lane
  double seconds = 0.0;  ///< first source start -> merge completion
  double mbps = 0.0;
};

/// Run one striped transfer; recover lane deaths per the policies.
StripedResult run_striped(const StripedParams& params);

}  // namespace lsl::exp
