#include "exp/scenarios.hpp"

namespace lsl::exp {

void Scenario::start_cross_traffic() {
  for (auto& s : cross_sources) s->start();
}

void Scenario::stop_cross_traffic() {
  for (auto& s : cross_sources) s->stop();
}

Scenario build_scenario(const PathParams& p, std::uint64_t seed) {
  Scenario sc;
  sc.net = std::make_unique<sim::Network>(seed);
  sim::Network& net = *sc.net;

  sim::Node& src = net.add_host("src");
  sim::Node& gw_src = net.add_router("gw_src");
  sim::Node& pop = net.add_router("pop");
  sim::Node& gw_dst = net.add_router("gw_dst");
  sim::Node& dst = net.add_host("dst");
  sim::Node& depot = net.add_host("depot");

  sc.src = &src;
  sc.dst = &dst;
  sc.depot = &depot;
  sc.pop = &pop;

  sim::LinkConfig access;
  access.rate = p.access_rate;
  access.delay = p.access_delay;
  access.queue_bytes = 512 * util::kKiB;
  net.connect(src, gw_src, access);

  sim::LinkConfig wan1;
  wan1.rate = p.wan_rate;
  wan1.delay = p.wan1_delay;
  wan1.loss_rate = p.wan1_loss;
  wan1.queue_bytes = p.wan_queue_bytes;
  wan1.jitter = p.wan_jitter;
  net.connect(gw_src, pop, wan1);

  sim::LinkConfig wan2 = wan1;
  wan2.delay = p.wan2_delay;
  wan2.loss_rate = p.wan2_loss;
  net.connect(pop, gw_dst, wan2);

  if (p.wireless_dst) {
    sim::LinkConfig wl;
    wl.rate = p.wireless_rate;
    wl.delay = p.wireless_delay;
    wl.queue_bytes = 48 * util::kKiB;
    wl.gilbert_elliott = true;
    wl.ge_good_to_bad = p.wireless_ge_good_to_bad;
    wl.ge_bad_to_good = p.wireless_ge_bad_to_good;
    wl.ge_loss_bad = p.wireless_ge_loss_bad;
    wl.ge_loss_good = p.wireless_ge_loss_good;
    net.connect(gw_dst, dst, wl);
  } else {
    net.connect(gw_dst, dst, access);
  }

  sim::LinkConfig dlink;
  dlink.rate = p.depot_link_rate;
  dlink.delay = p.depot_link_delay;
  dlink.queue_bytes = 512 * util::kKiB;
  net.connect(pop, depot, dlink);

  if (p.cross_traffic_mbps > 0.0) {
    // One on/off source per WAN segment direction that the transfer shares:
    // gw_src -> pop and pop -> gw_dst (forward data path), plus reverse-path
    // sources to perturb the ACK stream.
    sim::Node& xa = net.add_host("xsrc_a");
    sim::Node& xb = net.add_host("xsink_b");
    sim::LinkConfig xlink;
    xlink.rate = util::DataRate::gbps(1);
    xlink.delay = util::micros(100);
    net.connect(xa, gw_src, xlink);
    net.connect(xb, gw_dst, xlink);

    sim::CrossTrafficConfig ct;
    ct.peak_rate = util::DataRate::mbps(p.cross_traffic_mbps * 3.0);
    ct.mean_on = util::millis(150);
    ct.mean_off = util::millis(300);

    sc.cross_sources.push_back(
        std::make_unique<sim::OnOffUdpSource>(net, xa, xb.id(), ct));
    sc.cross_sources.push_back(
        std::make_unique<sim::OnOffUdpSource>(net, xb, xa.id(), ct));
  }

  net.compute_routes();
  return sc;
}

PathParams case1_ucsb_uiuc() {
  PathParams p;
  p.name = "case1_ucsb_uiuc_via_denver";
  // Moderately provisioned path: the direct flow is loss/RTT-limited well
  // below the segment rate (so its RTT stays near propagation), while LSL's
  // faster sublink control loops push toward the segment rate.
  p.wan_rate = util::DataRate::mbps(40);
  p.wan1_delay = util::millis(14.5);  // UCSB <-> Denver POP
  p.wan2_delay = util::millis(13.0);  // Denver POP <-> UIUC
  p.wan1_loss = 1.4e-4;
  p.wan2_loss = 1.4e-4;
  p.wan_queue_bytes = 256 * util::kKiB;
  p.depot_link_delay = util::millis(1.5);
  // A loaded shared host relaying through user space in 2001.
  p.depot_relay_rate = util::DataRate::mbps(18);
  p.depot_relay_buffer = util::kMiB;
  p.initial_ssthresh = 64 * util::kKiB;
  p.cross_traffic_mbps = 2.0;
  return p;
}

PathParams case2_ucsb_uf() {
  PathParams p;
  p.name = "case2_ucsb_uf_via_houston";
  p.wan_rate = util::DataRate::mbps(80);
  p.wan1_delay = util::millis(14.5);  // UCSB <-> Houston POP
  p.wan2_delay = util::millis(14.5);  // Houston POP <-> UF
  p.wan1_loss = 1.3e-5;
  p.wan2_loss = 1.3e-5;
  p.wan_queue_bytes = 512 * util::kKiB;
  p.depot_relay_rate = util::DataRate::mbps(55);
  p.depot_relay_buffer = 2 * util::kMiB;
  p.initial_ssthresh = 160 * util::kKiB;
  // The paper attributes ~20 ms of extra sublink RTT to load at/near the
  // Houston depot (§IV.A footnote): a slower, busier depot attachment.
  p.depot_link_delay = util::millis(5.0);
  p.cross_traffic_mbps = 4.0;
  return p;
}

PathParams case3_utk_wireless() {
  PathParams p;
  p.name = "case3_utk_ucsb_wireless";
  // UTK -> UCSB wired path is long and loaded; the depot sits at the UCSB
  // campus edge, so wan1 carries nearly all of the wired latency and wan2
  // is the short campus segment ahead of the wireless hop.
  p.wan_rate = util::DataRate::mbps(30);
  p.wan1_delay = util::millis(48.0);
  p.wan2_delay = util::millis(1.0);
  p.wan1_loss = 7e-4;
  p.wan2_loss = 1e-5;
  p.depot_link_delay = util::millis(0.5);
  p.depot_relay_rate = util::DataRate::mbps(60);
  p.depot_setup = util::millis(40);  // lightly loaded campus-edge depot
  p.initial_ssthresh = 48 * util::kKiB;
  p.wireless_dst = true;
  p.cross_traffic_mbps = 2.0;
  return p;
}

PathParams case_osu_steady() {
  PathParams p;
  p.name = "case_osu_steady_via_denver";
  p.wan_rate = util::DataRate::mbps(45);
  p.wan1_delay = util::millis(14.0);  // UCSB <-> Denver POP
  p.wan2_delay = util::millis(12.5);  // Denver POP <-> OSU
  p.wan1_loss = 4e-5;
  p.wan2_loss = 4e-5;
  p.depot_link_delay = util::millis(1.5);
  p.depot_relay_rate = util::DataRate::mbps(28);
  p.initial_ssthresh = 64 * util::kKiB;
  p.cross_traffic_mbps = 2.0;
  return p;
}

}  // namespace lsl::exp
