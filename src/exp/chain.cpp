#include "exp/chain.hpp"

#include <memory>
#include <vector>

#include <string>

#include "lsl/apps.hpp"
#include "lsl/directory.hpp"
#include "lsl/session_id.hpp"
#include "metrics/instruments.hpp"
#include "sim/network.hpp"
#include "tcp/stack.hpp"
#include "trace/analysis.hpp"
#include "util/rng.hpp"

namespace lsl::exp {

namespace {
constexpr sim::PortNum kSinkPort = 5001;
constexpr sim::PortNum kDepotPort = 4000;
}  // namespace

ChainResult run_chain(const ChainParams& params) {
  ChainResult res;
  const std::size_t segments = params.depots + 1;

  sim::Network net(params.seed);
  sim::Node& src = net.add_host("src");
  sim::Node& dst = net.add_host("dst");
  sim::Node& gw_a = net.add_router("gw_a");
  sim::Node& gw_b = net.add_router("gw_b");

  sim::LinkConfig access;
  access.rate = util::DataRate::mbps(100);
  access.delay = params.access_delay;
  access.queue_bytes = 512 * util::kKiB;
  net.connect(src, gw_a, access);
  net.connect(gw_b, dst, access);

  sim::LinkConfig seg;
  seg.rate = params.wan_rate;
  seg.delay = params.total_one_way_delay /
              static_cast<util::SimDuration>(segments);
  seg.loss_rate = params.total_loss / static_cast<double>(segments);
  seg.queue_bytes = params.wan_queue_bytes;

  // Junction routers J1..Jk with a depot host on each.
  std::vector<sim::Node*> junctions;
  std::vector<sim::Node*> depot_hosts;
  sim::Node* prev = &gw_a;
  for (std::size_t i = 0; i < params.depots; ++i) {
    sim::Node& j = net.add_router("J" + std::to_string(i + 1));
    net.connect(*prev, j, seg);
    sim::Node& d = net.add_host("depot" + std::to_string(i + 1));
    sim::LinkConfig dlink;
    dlink.rate = util::DataRate::mbps(100);
    dlink.delay = util::millis(0.5);
    dlink.queue_bytes = 512 * util::kKiB;
    net.connect(j, d, dlink);
    junctions.push_back(&j);
    depot_hosts.push_back(&d);
    prev = &j;
  }
  net.connect(*prev, gw_b, seg);
  net.compute_routes();

  tcp::TcpConfig tcpc = params.tcp;

  // Metric bundles, declared before the stacks so they outlive every socket
  // holding a pointer to them.
  std::vector<std::unique_ptr<metrics::TcpConnMetrics>> tcp_bundles;
  std::vector<std::unique_ptr<metrics::DepotMetrics>> depot_bundles;
  auto instrument = [&](tcp::TcpSocket* s, const std::string& label) {
    if (params.metrics) {
      tcp_bundles.push_back(std::make_unique<metrics::TcpConnMetrics>(
          *params.metrics, "tcp." + label));
      s->set_metrics(tcp_bundles.back().get());
    }
    if (params.capture_traces) {
      auto rec = std::make_unique<trace::TraceRecorder>(label);
      rec->attach(s);
      res.traces.push_back(std::move(rec));
    }
  };

  tcp::TcpStack src_stack(net, src, tcpc);
  tcp::TcpStack dst_stack(net, dst, tcpc);
  std::vector<std::unique_ptr<tcp::TcpStack>> depot_stacks;
  for (sim::Node* d : depot_hosts) {
    depot_stacks.push_back(std::make_unique<tcp::TcpStack>(net, *d, tcpc));
  }

  core::SessionDirectory dir;
  std::vector<std::unique_ptr<core::DepotApp>> depot_apps;
  std::vector<tcp::TcpSocket*> senders;
  for (std::size_t i = 0; i < depot_stacks.size(); ++i) {
    core::DepotConfig dcfg = params.depot;
    dcfg.port = kDepotPort;
    auto app = std::make_unique<core::DepotApp>(*depot_stacks[i], dcfg, &dir);
    if (params.metrics) {
      depot_bundles.push_back(std::make_unique<metrics::DepotMetrics>(
          *params.metrics, "depot." + std::to_string(i + 1)));
      app->set_metrics(depot_bundles.back().get());
    }
    // Depot i's downstream connection is sublink i+2 of the cascade.
    const std::string label = "sublink" + std::to_string(i + 2);
    app->on_downstream_open = [&senders, &instrument,
                               label](tcp::TcpSocket* s) {
      senders.push_back(s);
      instrument(s, label);
    };
    depot_apps.push_back(std::move(app));
  }

  bool done = false;
  util::SimTime done_time = 0;
  core::SinkConfig sink_cfg;
  sink_cfg.expect_header = params.depots > 0;
  core::SinkServer sink(dst_stack, kSinkPort, sink_cfg, &dir);
  sink.on_complete = [&](core::SinkApp& app) {
    done = true;
    done_time = app.complete_time();
  };

  core::SourceConfig scfg;
  scfg.payload_bytes = params.bytes;
  sim::Endpoint first_hop{dst.id(), kSinkPort};
  if (params.depots > 0) {
    scfg.use_header = true;
    util::Rng id_rng(params.seed);
    scfg.header.session = core::SessionId::generate(id_rng);
    scfg.header.payload_length = params.bytes;
    for (sim::Node* d : depot_hosts) {
      scfg.header.hops.push_back({d->id(), kDepotPort});
    }
    scfg.header.destination = {dst.id(), kSinkPort};
    first_hop = {depot_hosts.front()->id(), kDepotPort};
  }
  core::SourceApp source(src_stack, first_hop, scfg, &dir);
  source.start();
  instrument(source.socket(), params.depots > 0 ? "sublink1" : "direct");
  senders.insert(senders.begin(), source.socket());

  auto& ev = net.sim().events();
  while (!done && ev.now() <= params.deadline && ev.step()) {
  }
  res.completed = done;
  if (done) {
    res.seconds = util::to_seconds(done_time - source.start_time());
    res.mbps = util::throughput_mbps(params.bytes, done_time - source.start_time());
  }
  for (tcp::TcpSocket* s : senders) res.retransmits += s->stats().retransmits;
  for (const auto& rec : res.traces) {
    res.rtt_ms.push_back(trace::average_rtt_ms(*rec));
    res.retx_per_link.push_back(trace::retransmission_count(*rec));
    if (params.metrics) {
      trace::export_trace_metrics(*rec, *params.metrics,
                                  "trace." + rec->label());
    }
  }
  return res;
}

}  // namespace lsl::exp
