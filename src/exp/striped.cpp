#include "exp/striped.hpp"

#include <algorithm>
#include <array>
#include <memory>
#include <optional>
#include <set>
#include <utility>

#include "fault/fault_metrics.hpp"
#include "fault/injector.hpp"
#include "lsl/apps.hpp"
#include "lsl/directory.hpp"
#include "lsl/payload.hpp"
#include "lsl/selector.hpp"
#include "lsl/session_id.hpp"
#include "sim/network.hpp"
#include "stripe/plan.hpp"
#include "stripe/reassemble.hpp"
#include "stripe/stripe_metrics.hpp"
#include "tcp/stack.hpp"
#include "util/contract.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace lsl::exp {

namespace {

constexpr sim::PortNum kSinkPort = 5001;
constexpr sim::PortNum kDepotPort = 4000;

std::string depot_name(std::size_t path) {
  return "depot" + std::to_string(path + 1);
}

/// Random-access lane-order payload filler: maps a connection-relative lane
/// offset through a LaneCursor onto merged-stream offsets and generates the
/// seeded content there. SourceApp offsets are monotonic per connection,
/// but the filler tolerates a rewind by rebuilding its cursor.
struct LaneFiller {
  core::StripeInfo info;
  std::uint64_t lane_total;
  std::uint64_t base;  ///< lane offset this connection starts at
  core::PayloadGenerator gen;
  stripe::LaneCursor cursor;
  std::uint64_t conn_off = 0;

  LaneFiller(const core::StripeInfo& i, std::uint64_t total,
             std::uint64_t base_off, std::uint64_t seed)
      : info(i), lane_total(total), base(base_off), gen(seed),
        cursor(i, total) {
    cursor.skip(base);
  }

  void fill(std::uint64_t offset, std::span<std::uint8_t> out) {
    if (offset != conn_off) {
      cursor = stripe::LaneCursor(info, lane_total);
      cursor.skip(base + offset);
      conn_off = offset;
    }
    std::size_t done = 0;
    while (done < out.size()) {
      const auto r = cursor.next(out.size() - done);
      if (r.length == 0) break;  // lane exhausted (caller sized the transfer)
      gen.seek(r.global);
      gen.generate(out.subspan(done, static_cast<std::size_t>(r.length)));
      done += static_cast<std::size_t>(r.length);
      conn_off += r.length;
    }
  }
};

/// The whole striped run: braid topology, lane sources, reassembling sink,
/// and the death/restripe driver. One instance per run_striped call.
class StripedRun {
 public:
  explicit StripedRun(const StripedParams& params) : p_(params) {}
  StripedResult run();

 private:
  struct Lane {
    std::uint16_t id = 0;
    std::optional<core::StripeInfo> info;  ///< absent for stripes == 1
    std::uint64_t total = 0;               ///< full lane byte count
    std::string depot;                     ///< current chain's depot
    std::uint64_t delivered = 0;  ///< in-order lane bytes at the sink
    util::SimTime start = -1;
    bool completed = false;  ///< all lane payload merged
    bool dead = false;       ///< lost; absorbed or awaiting a restripe
  };

  /// One accepted sink-side connection (a lane, or its replacement).
  struct Conn {
    tcp::TcpSocket* sock = nullptr;
    std::vector<std::uint8_t> buf;  ///< header accumulation
    bool header_done = false;
    std::uint16_t lane_id = 0;
    std::optional<stripe::LaneCursor> cursor;  ///< striped placement
    std::uint64_t direct_pos = 0;              ///< unstriped placement
    std::uint64_t payload_left = 0;
    bool want_trailer = false;
    std::vector<std::uint8_t> trailer;
    bool closed = false;  ///< finished or dead; callbacks disarmed
  };

  void build_topology();
  void seed_database(core::PathDatabase& db) const;
  void make_plan();
  void launch_lane(std::size_t li, std::uint64_t resume_at);
  void on_accept(tcp::TcpSocket* sock);
  void on_conn_readable(Conn* c);
  void feed_payload(Conn* c, std::span<const std::uint8_t> data);
  void conn_dead(Conn* c);
  void lane_death(std::size_t li);
  bool coverage_without_dead() const;
  void schedule_restripe(std::size_t li);
  void scan_dead_depots();
  double path_rate_mbps(std::size_t path) const;

  sim::EventQueue& ev() { return net_->sim().events(); }

  const StripedParams& p_;
  StripedResult res_;

  std::unique_ptr<sim::Network> net_;
  sim::Node* src_ = nullptr;
  sim::Node* dst_ = nullptr;
  std::vector<sim::Node*> depot_hosts_;
  std::unique_ptr<tcp::TcpStack> src_stack_;
  std::unique_ptr<tcp::TcpStack> dst_stack_;
  std::vector<std::unique_ptr<tcp::TcpStack>> depot_stacks_;
  core::SessionDirectory dir_;
  std::vector<std::unique_ptr<core::DepotApp>> depot_apps_;
  std::optional<fault::FaultMetrics> fault_metrics_;
  std::unique_ptr<fault::FaultInjector> injector_;

  core::PathDatabase db_;
  std::unique_ptr<core::RouteSelector> selector_;
  std::unique_ptr<fault::ReroutePolicy> rerouter_;
  std::unique_ptr<fault::RetryPolicy> policy_;
  std::vector<core::CandidateRoute> candidates_;

  stripe::StripePlan plan_;
  std::vector<Lane> lanes_;
  core::SessionId session_;
  md5::Digest session_digest_;

  std::optional<stripe::StripeMetrics> stripe_metrics_;
  std::unique_ptr<stripe::Reassembler> reasm_;
  std::optional<core::PayloadVerifier> verifier_;
  std::vector<std::unique_ptr<core::SourceApp>> sources_;
  std::vector<std::unique_ptr<Conn>> conns_;

  std::optional<md5::Digest> wire_trailer_;
  util::SimTime first_start_ = -1;
  util::SimTime merge_time_ = -1;
  bool restripe_failed_ = false;
};

double StripedRun::path_rate_mbps(std::size_t path) const {
  if (path < p_.path_rate_mbps.size()) return p_.path_rate_mbps[path];
  return p_.wan_rate.as_mbps();
}

void StripedRun::build_topology() {
  net_ = std::make_unique<sim::Network>(p_.seed);
  src_ = &net_->add_host("src");
  dst_ = &net_->add_host("dst");
  sim::Node& gw_a = net_->add_router("gw_a");
  sim::Node& gw_b = net_->add_router("gw_b");

  // Fat access links: the braid's aggregate must be WAN-limited, or the
  // multipath sweep would just measure the shared edge.
  sim::LinkConfig access;
  access.rate = util::DataRate::mbps(1000);
  access.delay = p_.access_delay;
  access.queue_bytes = util::kMiB;
  net_->connect(*src_, gw_a, access);
  net_->connect(gw_b, *dst_, access);

  for (std::size_t i = 0; i < p_.paths; ++i) {
    sim::LinkConfig seg;
    seg.rate = util::DataRate::mbps(path_rate_mbps(i));
    seg.delay = p_.one_way_delay / 2;
    seg.loss_rate = p_.loss / 2.0;
    seg.queue_bytes = p_.wan_queue_bytes;

    sim::Node& j = net_->add_router("J" + std::to_string(i + 1));
    net_->connect(gw_a, j, seg);
    net_->connect(j, gw_b, seg);

    sim::Node& d = net_->add_host(depot_name(i));
    sim::LinkConfig dlink;
    dlink.rate = util::DataRate::mbps(1000);
    dlink.delay = util::millis(0.5);
    dlink.queue_bytes = util::kMiB;
    net_->connect(j, d, dlink);
    depot_hosts_.push_back(&d);
  }
  net_->compute_routes();

  tcp::TcpConfig tcpc = p_.tcp;
  tcpc.carry_data = true;  // reassembly and MD5 need real bytes

  src_stack_ = std::make_unique<tcp::TcpStack>(*net_, *src_, tcpc);
  dst_stack_ = std::make_unique<tcp::TcpStack>(*net_, *dst_, tcpc);
  for (sim::Node* d : depot_hosts_) {
    depot_stacks_.push_back(std::make_unique<tcp::TcpStack>(*net_, *d, tcpc));
  }

  if (p_.metrics != nullptr) fault_metrics_.emplace(*p_.metrics);
  for (auto& stack : depot_stacks_) {
    core::DepotConfig dcfg = p_.depot;
    dcfg.port = kDepotPort;
    depot_apps_.push_back(
        std::make_unique<core::DepotApp>(*stack, dcfg, &dir_));
  }

  injector_ = std::make_unique<fault::FaultInjector>(
      *net_, p_.plan, fault_metrics_ ? &*fault_metrics_ : nullptr);
  for (std::size_t i = 0; i < depot_apps_.size(); ++i) {
    injector_->register_depot(depot_name(i), depot_apps_[i].get());
  }
}

void StripedRun::seed_database(core::PathDatabase& db) const {
  // Deterministic seeding from the braid's own geometry (cf. run_chaos):
  // each src<->depot_i / depot_i<->dst sublink crosses one access link,
  // one WAN segment, and the depot's local link.
  for (std::size_t i = 0; i < p_.paths; ++i) {
    const double one_way_s = util::to_seconds(p_.access_delay) +
                             util::to_seconds(p_.one_way_delay) / 2.0 +
                             0.5e-3;
    const double rtt_ms = 2.0 * one_way_s * 1e3;
    const double bw = path_rate_mbps(i);
    const double loss = std::max(p_.loss / 2.0, 1e-7);
    const std::string d = depot_name(i);
    db.observe_rtt_ms("src", d, rtt_ms);
    db.observe_bandwidth_mbps("src", d, bw);
    db.observe_loss_rate("src", d, loss);
    db.observe_rtt_ms(d, "dst", rtt_ms);
    db.observe_bandwidth_mbps(d, "dst", bw);
    db.observe_loss_rate(d, "dst", loss);
  }
}

void StripedRun::make_plan() {
  seed_database(db_);
  selector_ = std::make_unique<core::RouteSelector>(
      db_, 1448.0, util::to_seconds(p_.depot.session_setup_latency));
  rerouter_ = std::make_unique<fault::ReroutePolicy>(*selector_);
  policy_ = std::make_unique<fault::RetryPolicy>(
      p_.retry, p_.seed ^ 0x9e3779b97f4a7c15ull);

  for (std::size_t i = 0; i < p_.paths; ++i) {
    core::CandidateRoute r;
    r.waypoints = {"src", depot_name(i), "dst"};
    candidates_.push_back(std::move(r));
  }

  const std::vector<core::CandidateRoute> routes = stripe::disjoint_routes(
      *selector_, candidates_, p_.stripes, p_.bytes);
  LSL_PRECONDITION(routes.size() == p_.stripes,
                   "striped: not enough disjoint chains for the lane count");

  if (p_.stripes >= 2) {
    if (p_.weighted) {
      std::vector<double> weights;
      for (const core::CandidateRoute& r : routes) {
        const double t = selector_->predict_transfer_seconds(r, p_.bytes);
        weights.push_back(t > 0.0 ? 1.0 / t : 1.0);
      }
      plan_ = stripe::StripePlan::weighted(p_.bytes, weights);
    } else {
      plan_ = stripe::StripePlan::round_robin(p_.bytes, p_.stripes, p_.chunk,
                                              p_.redundancy);
    }
  }

  lanes_.resize(p_.stripes);
  for (std::size_t j = 0; j < p_.stripes; ++j) {
    Lane& lane = lanes_[j];
    lane.id = static_cast<std::uint16_t>(j);
    lane.depot = routes[j].waypoints[1];
    if (p_.stripes >= 2) {
      lane.info = plan_.lanes[j];
      lane.total = plan_.lane_bytes[j];
    } else {
      lane.total = p_.bytes;  // degenerate: one unstriped chain
    }
  }
}

void StripedRun::launch_lane(std::size_t li, std::uint64_t resume_at) {
  Lane& lane = lanes_[li];
  core::SourceConfig scfg;
  scfg.payload_bytes = lane.total - resume_at;
  scfg.payload_seed = p_.seed;
  scfg.use_header = true;
  scfg.header.session = session_;
  scfg.header.flags |= core::kFlagDigestTrailer;
  scfg.header.payload_length = lane.total - resume_at;
  scfg.header.resume_offset = resume_at;
  scfg.header.stripe = lane.info;
  sim::Node* depot_node = net_->find_node(lane.depot);
  scfg.header.hops.push_back({depot_node->id(), kDepotPort});
  scfg.header.destination = {dst_->id(), kSinkPort};
  // Every lane ships the merged stream's digest: only the reassembling
  // sink can check it, and a surviving lane's trailer still vouches for
  // the whole session after another lane died.
  scfg.trailer_digest = session_digest_;
  if (lane.info) {
    auto filler = std::make_shared<LaneFiller>(*lane.info, lane.total,
                                               resume_at, p_.seed);
    scfg.payload_fill = [filler](std::uint64_t off,
                                 std::span<std::uint8_t> out) {
      filler->fill(off, out);
    };
  }

  const sim::Endpoint first_hop{depot_node->id(), kDepotPort};
  sources_.push_back(std::make_unique<core::SourceApp>(
      *src_stack_, first_hop, scfg, &dir_));
  core::SourceApp* app = sources_.back().get();
  app->start();
  if (lane.start < 0) lane.start = app->start_time();
  if (first_start_ < 0) first_start_ = app->start_time();
}

void StripedRun::on_accept(tcp::TcpSocket* sock) {
  conns_.push_back(std::make_unique<Conn>());
  Conn* c = conns_.back().get();
  c->sock = sock;
  sock->on_readable = [this, c] { on_conn_readable(c); };
  sock->on_error = [this, c](tcp::TcpError) { conn_dead(c); };
}

void StripedRun::on_conn_readable(Conn* c) {
  if (c->closed) return;
  std::array<std::uint8_t, 64 * 1024> buf;
  for (;;) {
    const std::size_t n = c->sock->recv(buf);
    if (n == 0) break;
    std::span<const std::uint8_t> data(buf.data(), n);

    if (!c->header_done) {
      c->buf.insert(c->buf.end(), data.begin(), data.end());
      const auto need = core::header_length(c->buf);
      if (!need || c->buf.size() < *need) continue;
      const auto header =
          core::decode_header({c->buf.data(), *need});
      if (!header) {
        conn_dead(c);
        return;
      }
      c->header_done = true;
      c->payload_left = header->payload_length;
      c->want_trailer = header->has_digest();
      if (header->stripe) {
        c->lane_id = header->stripe->stripe_id;
        c->cursor.emplace(*header->stripe,
                          header->resume_offset + header->payload_length);
        c->cursor->skip(header->resume_offset);
      } else {
        c->lane_id = 0;
        c->direct_pos = header->resume_offset;
      }
      const std::vector<std::uint8_t> rest(c->buf.begin() +
                                               static_cast<long>(*need),
                                           c->buf.end());
      c->buf.clear();
      if (!rest.empty()) feed_payload(c, rest);
      if (c->closed) return;
      continue;
    }
    feed_payload(c, data);
    if (c->closed) return;
  }

  if (c->sock->eof()) {
    if (c->payload_left == 0 &&
        (!c->want_trailer || c->trailer.size() == md5::Digest{}.bytes.size())) {
      c->closed = true;
      if (c->lane_id < lanes_.size()) lanes_[c->lane_id].completed = true;
    } else {
      conn_dead(c);
    }
  }
}

void StripedRun::feed_payload(Conn* c, std::span<const std::uint8_t> data) {
  Lane& lane = lanes_[c->lane_id];
  while (!data.empty() && c->payload_left > 0) {
    std::uint64_t global;
    std::uint64_t len;
    if (c->cursor) {
      const auto r =
          c->cursor->next(std::min<std::uint64_t>(data.size(),
                                                  c->payload_left));
      if (r.length == 0) break;  // malformed lane: longer than its plan
      global = r.global;
      len = r.length;
    } else {
      global = c->direct_pos;
      len = std::min<std::uint64_t>(data.size(), c->payload_left);
      c->direct_pos += len;
    }
    reasm_->offer(c->lane_id, global,
                  data.first(static_cast<std::size_t>(len)));
    lane.delivered += len;
    c->payload_left -= len;
    data = data.subspan(static_cast<std::size_t>(len));

    if (stripe_metrics_ && lane.start >= 0) {
      const double elapsed = util::to_seconds(ev().now() - lane.start);
      if (elapsed > 0.0) {
        stripe_metrics_->on_lane_rate(
            lane.id, 8.0 * static_cast<double>(lane.delivered) / elapsed);
      }
    }
  }
  if (c->payload_left == 0 && c->want_trailer && !data.empty()) {
    const std::size_t take = std::min<std::size_t>(
        data.size(), md5::Digest{}.bytes.size() - c->trailer.size());
    c->trailer.insert(c->trailer.end(), data.begin(),
                      data.begin() + static_cast<long>(take));
    if (c->trailer.size() == md5::Digest{}.bytes.size() && !wire_trailer_) {
      md5::Digest d;
      std::copy(c->trailer.begin(), c->trailer.end(), d.bytes.begin());
      wire_trailer_ = d;
    }
  }
  if (reasm_->complete() && merge_time_ < 0) {
    merge_time_ = ev().now();
    if (stripe_metrics_) stripe_metrics_->sessions_completed->inc();
  }
}

void StripedRun::conn_dead(Conn* c) {
  if (c->closed) return;
  c->closed = true;
  // A pre-header death cannot name its lane; the dead-depot scan in the
  // driver loop attributes it instead.
  if (!c->header_done) return;
  lane_death(c->lane_id);
}

void StripedRun::lane_death(std::size_t li) {
  Lane& lane = lanes_[li];
  if (lane.dead || lane.completed) return;
  if (lane.delivered >= lane.total) {
    // All payload already merged — only the trailer was cut off. Another
    // lane's (identical) trailer vouches for the session.
    lane.completed = true;
    return;
  }
  lane.dead = true;
  ++res_.stripes_lost;
  if (stripe_metrics_) stripe_metrics_->stripes_lost->inc();
  LSL_LOG_INFO("striped: lane %u died on %s at %llu/%llu lane bytes",
               static_cast<unsigned>(lane.id), lane.depot.c_str(),
               static_cast<unsigned long long>(lane.delivered),
               static_cast<unsigned long long>(lane.total));
  if (coverage_without_dead()) {
    LSL_LOG_INFO("striped: redundancy covers lane %u, no restripe",
                 static_cast<unsigned>(lane.id));
    return;
  }
  schedule_restripe(li);
}

bool StripedRun::coverage_without_dead() const {
  if (p_.stripes < 2) return false;
  const std::uint16_t count = plan_.stripe_count();
  std::vector<bool> covered(count, false);
  for (const Lane& l : lanes_) {
    if (l.dead || !l.info) continue;
    if (l.info->mode == core::StripeMode::kContiguous) {
      covered[l.id] = true;
    } else {
      for (std::uint16_t k = 0; k <= l.info->redundancy; ++k) {
        covered[(l.id + k) % count] = true;
      }
    }
  }
  return std::all_of(covered.begin(), covered.end(),
                     [](bool b) { return b; });
}

void StripedRun::schedule_restripe(std::size_t li) {
  const auto delay = policy_->next_delay();
  if (!delay) {
    restripe_failed_ = true;
    return;
  }
  if (fault_metrics_) fault_metrics_->on_attempt();
  ev().schedule_in(*delay, [this, li] {
    Lane& lane = lanes_[li];
    std::set<std::string> excluded = injector_->dead_depots();
    excluded.insert(lane.depot);
    for (const Lane& l : lanes_) {
      if (!l.dead && !l.completed) excluded.insert(l.depot);
    }
    fault::RerouteError err = fault::RerouteError::kNone;
    const auto chosen = rerouter_->choose_excluding(
        candidates_, excluded, lane.total - lane.delivered, &err);
    if (!chosen) {
      // A crashed chain may come back (scripted restart): burn the tick
      // and try again while the budget lasts, like run_chaos.
      LSL_LOG_WARN("striped: no spare chain for lane %u (%s)",
                   static_cast<unsigned>(lane.id), fault::to_string(err));
      schedule_restripe(li);
      return;
    }
    lane.depot = chosen->waypoints[1];
    lane.dead = false;
    ++res_.stripes_recovered;
    if (stripe_metrics_) stripe_metrics_->stripes_recovered->inc();
    res_.retransmitted_bytes += lane.total - lane.delivered;
    LSL_LOG_INFO("striped: lane %u re-striped onto %s (resume %llu)",
                 static_cast<unsigned>(lane.id), lane.depot.c_str(),
                 static_cast<unsigned long long>(lane.delivered));
    launch_lane(li, lane.delivered);
  });
}

void StripedRun::scan_dead_depots() {
  const std::set<std::string>& dead = injector_->dead_depots();
  if (dead.empty()) return;
  for (std::size_t li = 0; li < lanes_.size(); ++li) {
    const Lane& lane = lanes_[li];
    if (!lane.dead && !lane.completed && dead.count(lane.depot) > 0) {
      lane_death(li);
    }
  }
}

StripedResult StripedRun::run() {
  LSL_PRECONDITION(p_.stripes >= 1 && p_.stripes <= core::kMaxStripes,
                   "striped: lane count out of range");
  LSL_PRECONDITION(p_.paths >= p_.stripes,
                   "striped: need at least one path per lane");
  res_.lanes = p_.stripes;

  build_topology();
  make_plan();

  util::Rng id_rng(p_.seed);
  session_ = core::SessionId::generate(id_rng);
  session_digest_ = core::stream_digest(p_.seed, p_.bytes);

  if (p_.metrics != nullptr) {
    stripe_metrics_.emplace(*p_.metrics, p_.stripes);
  }
  stripe::Reassembler::Config rc;
  rc.session_bytes = p_.bytes;
  rc.stripe_count = p_.stripes;
  rc.metrics = stripe_metrics_ ? &*stripe_metrics_ : nullptr;
  reasm_ = std::make_unique<stripe::Reassembler>(rc);
  if (p_.verify_content) {
    verifier_.emplace(p_.seed);
    reasm_->on_frontier = [this](std::uint64_t,
                                 std::span<const std::uint8_t> data) {
      verifier_->feed(data);
    };
  }

  dst_stack_->listen(kSinkPort,
                     [this](tcp::TcpSocket* s) { on_accept(s); });

  injector_->arm();
  for (std::size_t li = 0; li < lanes_.size(); ++li) launch_lane(li, 0);

  // Drive until the merge completes and a trailer arrived to check it
  // against, a restripe ran out of budget, or nothing is left to simulate.
  while (!(reasm_->complete() && wire_trailer_) && !restripe_failed_ &&
         ev().now() <= p_.deadline && ev().step()) {
    scan_dead_depots();
  }

  res_.attempts = policy_->attempts_made();
  res_.faults_injected = injector_->injected();
  res_.duplicate_bytes = reasm_->duplicate_bytes();
  for (const Lane& lane : lanes_) res_.lane_routes.push_back(lane.depot);

  if (reasm_->complete()) {
    res_.completed = true;
    const bool content_ok = !verifier_ || verifier_->ok();
    const bool digest_ok =
        wire_trailer_ && reasm_->digest() == *wire_trailer_;
    res_.verified = content_ok && digest_ok;
    const util::SimDuration elapsed = merge_time_ - first_start_;
    res_.seconds = util::to_seconds(elapsed);
    res_.mbps = util::throughput_mbps(p_.bytes, elapsed);
  }
  return res_;
}

}  // namespace

StripedResult run_striped(const StripedParams& params) {
  StripedRun run(params);
  return run.run();
}

}  // namespace lsl::exp
