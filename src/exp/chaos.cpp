#include "exp/chaos.hpp"

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <set>

#include "fault/fault_metrics.hpp"
#include "fault/injector.hpp"
#include "health/health_metrics.hpp"
#include "lsl/apps.hpp"
#include "lsl/directory.hpp"
#include "lsl/selector.hpp"
#include "lsl/session_id.hpp"
#include "metrics/instruments.hpp"
#include "sim/network.hpp"
#include "tcp/stack.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace lsl::exp {

namespace {

constexpr sim::PortNum kSinkPort = 5001;
constexpr sim::PortNum kDepotPort = 4000;

/// Every order-preserving non-empty subset of the depot chain is a
/// candidate loose source route (capped: beyond 8 depots only the full
/// chain is offered — 2^N candidates would swamp the selector).
std::vector<core::CandidateRoute> chain_candidates(std::size_t depots) {
  std::vector<core::CandidateRoute> out;
  if (depots > 8) {
    core::CandidateRoute full;
    full.waypoints.push_back("src");
    for (std::size_t i = 0; i < depots; ++i) {
      full.waypoints.push_back("depot" + std::to_string(i + 1));
    }
    full.waypoints.push_back("dst");
    out.push_back(std::move(full));
    return out;
  }
  for (std::uint32_t mask = 1; mask < (1u << depots); ++mask) {
    core::CandidateRoute r;
    r.waypoints.push_back("src");
    for (std::size_t i = 0; i < depots; ++i) {
      if (mask & (1u << i)) {
        r.waypoints.push_back("depot" + std::to_string(i + 1));
      }
    }
    r.waypoints.push_back("dst");
    out.push_back(std::move(r));
  }
  return out;
}

/// Seed the selector's PathDatabase from the chain's own geometry: node i
/// sits at segment position i (src=0, depot_i=i, dst=N+1), a sublink
/// spanning k segments sees k shares of delay and loss. Deterministic —
/// no measurement noise — so route choice replays exactly.
void seed_path_database(core::PathDatabase& db, const ChainParams& p) {
  const std::size_t positions = p.depots + 2;
  const auto name_of = [&](std::size_t pos) -> std::string {
    if (pos == 0) return "src";
    if (pos + 1 == positions) return "dst";
    return "depot" + std::to_string(pos);
  };
  const double seg_delay_s =
      util::to_seconds(p.total_one_way_delay) /
      static_cast<double>(p.depots + 1);
  const double seg_loss = p.total_loss / static_cast<double>(p.depots + 1);
  const double access_s = util::to_seconds(p.access_delay);
  for (std::size_t a = 0; a < positions; ++a) {
    for (std::size_t b = a + 1; b < positions; ++b) {
      const auto spans = static_cast<double>(b - a);
      const double one_way_s = spans * seg_delay_s + 2.0 * access_s;
      db.observe_rtt_ms(name_of(a), name_of(b), 2.0 * one_way_s * 1e3);
      db.observe_bandwidth_mbps(name_of(a), name_of(b), p.wan_rate.as_mbps());
      db.observe_loss_rate(name_of(a), name_of(b),
                           std::max(spans * seg_loss, 1e-7));
    }
  }
}

}  // namespace

ChaosResult run_chaos(const ChaosParams& params) {
  ChaosResult res;
  const ChainParams& cp = params.chain;
  const std::uint64_t bytes = cp.bytes;

  // --- Topology: identical to run_chain ---------------------------------
  sim::Network net(cp.seed);
  sim::Node& src = net.add_host("src");
  sim::Node& dst = net.add_host("dst");
  sim::Node& gw_a = net.add_router("gw_a");
  sim::Node& gw_b = net.add_router("gw_b");

  sim::LinkConfig access;
  access.rate = util::DataRate::mbps(100);
  access.delay = cp.access_delay;
  access.queue_bytes = 512 * util::kKiB;
  net.connect(src, gw_a, access);
  net.connect(gw_b, dst, access);

  const std::size_t segments = cp.depots + 1;
  sim::LinkConfig seg;
  seg.rate = cp.wan_rate;
  seg.delay =
      cp.total_one_way_delay / static_cast<util::SimDuration>(segments);
  seg.loss_rate = cp.total_loss / static_cast<double>(segments);
  seg.queue_bytes = cp.wan_queue_bytes;

  std::vector<sim::Node*> depot_hosts;
  sim::Node* prev = &gw_a;
  for (std::size_t i = 0; i < cp.depots; ++i) {
    sim::Node& j = net.add_router("J" + std::to_string(i + 1));
    net.connect(*prev, j, seg);
    sim::Node& d = net.add_host("depot" + std::to_string(i + 1));
    sim::LinkConfig dlink;
    dlink.rate = util::DataRate::mbps(100);
    dlink.delay = util::millis(0.5);
    dlink.queue_bytes = 512 * util::kKiB;
    net.connect(j, d, dlink);
    depot_hosts.push_back(&d);
    prev = &j;
  }
  net.connect(*prev, gw_b, seg);
  net.compute_routes();

  // Chaos transfers always carry real bytes: end-to-end verification (the
  // recovery trigger for corruption) needs actual content on the wire.
  tcp::TcpConfig tcpc = cp.tcp;
  tcpc.carry_data = true;

  tcp::TcpStack src_stack(net, src, tcpc);
  tcp::TcpStack dst_stack(net, dst, tcpc);
  std::vector<std::unique_ptr<tcp::TcpStack>> depot_stacks;
  for (sim::Node* d : depot_hosts) {
    depot_stacks.push_back(std::make_unique<tcp::TcpStack>(net, *d, tcpc));
  }

  // --- Depots + instruments ---------------------------------------------
  std::optional<fault::FaultMetrics> fm;
  std::vector<std::unique_ptr<metrics::DepotMetrics>> depot_bundles;
  if (cp.metrics != nullptr) fm.emplace(*cp.metrics);

  core::SessionDirectory dir;
  std::vector<std::unique_ptr<core::DepotApp>> depot_apps;
  for (std::size_t i = 0; i < depot_stacks.size(); ++i) {
    core::DepotConfig dcfg = cp.depot;
    dcfg.port = kDepotPort;
    auto app = std::make_unique<core::DepotApp>(*depot_stacks[i], dcfg, &dir);
    if (cp.metrics != nullptr) {
      depot_bundles.push_back(std::make_unique<metrics::DepotMetrics>(
          *cp.metrics, "depot." + std::to_string(i + 1)));
      app->set_metrics(depot_bundles.back().get());
    }
    depot_apps.push_back(std::move(app));
  }

  fault::FaultInjector injector(net, params.plan,
                                fm ? &*fm : nullptr);
  for (std::size_t i = 0; i < depot_apps.size(); ++i) {
    injector.register_depot("depot" + std::to_string(i + 1),
                            depot_apps[i].get());
  }

  // The source-side corrupt fault is applied on the *first* attempt only:
  // a retransfer must be clean or recovery could never converge.
  std::optional<std::uint64_t> corrupt_at;
  for (const fault::FaultEvent& e : params.plan.events) {
    if (e.kind == fault::FaultKind::kCorrupt) corrupt_at = e.at_bytes;
  }

  // --- Policies ----------------------------------------------------------
  core::PathDatabase db;
  seed_path_database(db, cp);
  core::RouteSelector selector(
      db, 1448.0, util::to_seconds(cp.depot.session_setup_latency));
  fault::ReroutePolicy rerouter(selector);
  const std::vector<core::CandidateRoute> candidates =
      chain_candidates(cp.depots);
  // The policy's jitter stream is derived from the run seed, split so it
  // never aliases the simulator's own RNG consumers.
  fault::RetryPolicy policy(params.retry, cp.seed ^ 0x9e3779b97f4a7c15ull);

  // --- Health plane (fully inert when disabled: no board, no events, no
  // instruments — same-seed exports stay byte-identical) -------------------
  const bool health_on = params.health.enabled;
  std::optional<health::HealthBoard> board;
  std::optional<health::HealthMetrics> hm;
  std::optional<core::SessionLedger> ledger;
  if (health_on) {
    board.emplace(params.health.board);
    if (cp.metrics != nullptr) {
      hm.emplace(*cp.metrics);
      board->set_metrics(&*hm);
    }
    selector.set_health(&*board);
    rerouter.set_health_board(&*board);
    ledger.emplace(cp.seed);
  }

  // --- Sink --------------------------------------------------------------
  bool sink_done = false;
  bool sink_verified = false;
  util::SimTime sink_time = 0;
  core::SessionId completed_session;  // health mode: ledger-verdicted id
  core::SinkConfig sink_cfg;
  sink_cfg.expect_header = true;
  sink_cfg.verify_payload = true;
  sink_cfg.payload_seed = cp.seed;
  if (health_on) sink_cfg.ledger = &*ledger;
  core::SinkServer sink(dst_stack, kSinkPort, sink_cfg, &dir);
  if (health_on) {
    // Completion is a *stream* property once connections can hand the
    // session to each other: the ledger verdicts when the stitched
    // frontier reaches the total, whichever connections carried it.
    ledger->on_session_complete = [&](const core::SessionId& id,
                                      const core::SessionLedger::Session& s) {
      sink_done = true;
      sink_time = s.complete_time;
      completed_session = id;
    };
  } else {
    sink.on_complete = [&](core::SinkApp& app) {
      if (app.payload_received() != bytes) return;  // truncated husk
      sink_done = true;
      sink_verified = app.verified();
      sink_time = app.complete_time();
    };
  }

  // --- Attempt loop ------------------------------------------------------
  auto& ev = net.sim().events();
  injector.arm();

  util::Rng id_rng(cp.seed);
  std::vector<std::unique_ptr<core::SourceApp>> sources;
  std::vector<std::string> route;  // depot names of the current attempt
  for (std::size_t i = 0; i < cp.depots; ++i) {
    route.push_back("depot" + std::to_string(i + 1));
  }
  util::SimTime first_start = -1;
  util::SimTime first_failure = -1;
  bool first_attempt = true;

  // --- Health sampling + proactive migration (health mode only) ----------
  core::SourceApp* active_source = nullptr;
  core::SessionId active_session;
  std::optional<health::MigrationPolicy> migrator;
  struct ProbeCounters {
    std::uint64_t relayed = 0;
    std::uint64_t stalls = 0;
    std::uint64_t pressure = 0;
    std::uint64_t failed = 0;
  };
  std::vector<ProbeCounters> probe_prev(depot_apps.size());
  bool probe_pending = false;
  std::function<void()> probe_tick = [&] {
    probe_pending = false;
    // The tick chain must eventually stop so the attempt loop's dead-path
    // detection (event queue drains) still works: stop on verdict or when
    // the source abandoned. A source that *cleanly* finished queuing stays
    // probed while resumable — its bytes may still be stranded behind a
    // wedged depot, which is exactly when migration earns its keep.
    if (sink_done || active_source == nullptr || active_source->gave_up() ||
        (active_source->finished() && !params.resumable_attempts)) {
      return;
    }
    const auto now_ms =
        static_cast<std::uint64_t>(util::to_millis(ev.now()));
    const double interval_s = util::to_seconds(params.health.probe_interval);
    const std::set<std::string> dead = injector.dead_depots();
    for (std::size_t i = 0; i < depot_apps.size(); ++i) {
      const std::string name = "depot" + std::to_string(i + 1);
      const core::DepotStats& st = depot_apps[i]->stats();
      const ProbeCounters cur{
          st.bytes_relayed, st.timeouts_stall,
          st.backpressure_stalls + st.sessions_refused_memory,
          st.sessions_failed};
      if (dead.count(name) != 0) {
        board->observe_failure(name, now_ms);
      } else {
        if (cur.failed > probe_prev[i].failed) board->observe_failure(name, now_ms);
        if (cur.stalls > probe_prev[i].stalls) board->observe_timeout(name, now_ms);
        if (cur.pressure > probe_prev[i].pressure) {
          board->observe_pressure(name, now_ms);
        }
        const std::uint64_t delta = cur.relayed - probe_prev[i].relayed;
        if (delta > 0) {
          board->observe_bps(name, static_cast<double>(delta) * 8.0 /
                                       interval_s, now_ms);
        } else if (st.sessions_accepted >
                   st.sessions_completed + st.sessions_failed) {
          // Sessions live, nothing moved this tick: a stalled relay — the
          // signal a kSlow fault (or a genuinely wedged depot) produces
          // without killing the connection.
          board->observe_timeout(name, now_ms);
        }
      }
      probe_prev[i] = cur;
    }
    // Proactive mid-transfer re-selection: evacuate the live session off a
    // depot the board now calls suspect, *before* its retry budget fires.
    if (migrator) {
      const std::string offender = migrator->should_migrate(route, now_ms);
      if (!offender.empty()) {
        std::set<std::string> excluded = dead;
        excluded.insert(offender);
        const auto chosen =
            rerouter.choose_excluding(candidates, excluded, bytes);
        if (chosen) {
          std::vector<std::string> next(chosen->waypoints.begin() + 1,
                                        chosen->waypoints.end() - 1);
          std::vector<core::HopAddress> hops;
          for (const std::string& n : next) {
            hops.push_back({net.find_node(n)->id(), kDepotPort});
          }
          sim::Node* fd = net.find_node(next.front());
          // The floor is the sink's stitched frontier — never the source's
          // ack counter, which can exceed what actually escaped the dying
          // chain's buffers.
          const std::uint64_t floor = ledger->frontier(active_session);
          if (active_source->migrate({fd->id(), kDepotPort}, std::move(hops),
                                     floor)) {
            migrator->note_migrated(now_ms);
            board->note_migration();
            ++res.migrations;
            if (res.migrations == 1) res.migration_floor = floor;
            LSL_LOG_INFO("chaos: migrated off %s at floor %llu",
                         offender.c_str(),
                         static_cast<unsigned long long>(floor));
            route = std::move(next);
          }
        }
      }
    }
    probe_pending = true;
    ev.schedule_in(params.health.probe_interval, probe_tick);
  };

  for (;;) {
    // Build this attempt's session over `route`.
    core::SourceConfig scfg;
    scfg.payload_bytes = bytes;
    scfg.payload_seed = cp.seed;
    scfg.use_header = true;
    scfg.header.session = core::SessionId::generate(id_rng);
    scfg.header.payload_length = bytes;
    for (const std::string& name : route) {
      sim::Node* host = net.find_node(name);
      scfg.header.hops.push_back({host->id(), kDepotPort});
    }
    scfg.header.destination = {dst.id(), kSinkPort};
    scfg.resumable = params.resumable_attempts;
    if (params.resumable_attempts) {
      // In-session reconnects draw from the same retry budget as
      // cross-session retransfers; each granted delay is one recovery
      // attempt.
      scfg.reconnect_backoff = [&]() -> std::optional<util::SimDuration> {
        const auto d = policy.next_delay();
        if (d && fm) fm->on_attempt();
        return d;
      };
    } else {
      scfg.header.flags |= core::kFlagDigestTrailer;
    }
    if (first_attempt && corrupt_at) {
      scfg.corrupt_at_byte = corrupt_at;
      scfg.on_corrupt = [&](std::uint64_t) {
        injector.note_injected(fault::FaultKind::kCorrupt);
      };
    }
    sim::Node* first_depot = net.find_node(route.front());
    const sim::Endpoint first_hop{first_depot->id(), kDepotPort};

    sources.push_back(std::make_unique<core::SourceApp>(
        src_stack, first_hop, scfg, &dir));
    core::SourceApp* source = sources.back().get();
    injector.register_source(source);
    if (health_on) {
      active_source = source;
      active_session = scfg.header.session;
      // A fresh MigrationPolicy per attempt: the per-session migration
      // budget and cooldown restart with the session.
      migrator.emplace(&*board, params.health.migration);
      if (!probe_pending) {
        probe_pending = true;
        ev.schedule_in(params.health.probe_interval, probe_tick);
      }
    }
    source->start();
    if (first_start < 0) first_start = source->start_time();
    first_attempt = false;

    // Drive until the sink verdicts, the source abandons, or — a dead
    // attempt with nothing in flight — the event queue drains.
    while (!sink_done && !source->gave_up() && ev.now() <= cp.deadline &&
           ev.step()) {
    }
    res.resumes += source->resumes();

    if (health_on && sink_done) {
      // Stream-level verdict: content checked against the seeded generator
      // across every stitched connection, digest against the whole-stream
      // MD5 — the proof that a migration resumed from the exact floor.
      res.stream_digest_ok =
          ledger->digest(completed_session) ==
          core::stream_digest(cp.seed, bytes);
      sink_verified =
          ledger->content_ok(completed_session) && res.stream_digest_ok;
    }
    if (sink_done && sink_verified) {
      res.completed = true;
      res.verified = true;
      break;
    }
    if (ev.now() > cp.deadline) {
      LSL_LOG_WARN("chaos: deadline exceeded");
      break;
    }
    // The attempt failed: source gave up, the path died with nothing in
    // flight, or the payload arrived corrupted.
    if (first_failure < 0) first_failure = ev.now();
    sink_done = false;
    sink_verified = false;

    // Plan the next attempt: wait out a backoff tick, then re-route around
    // depots the injector knows are down. A dead path may come back (a
    // scripted restart), so a failed reroute is not terminal by itself —
    // it burns the tick and re-checks on the next one. Only when the
    // budget dies with still no route does the run fail, carrying the
    // distinct RerouteError instead of a generic timeout.
    bool have_route = false;
    while (!have_route) {
      const auto delay = policy.next_delay();
      if (!delay) break;  // retry budget exhausted: give up for good
      if (fm) fm->on_attempt();

      // Sit out the backoff on simulated time (scripted restarts and
      // link restorations keep firing underneath).
      bool waited = false;
      ev.schedule_in(*delay, [&waited] { waited = true; });
      while (!waited && ev.step()) {
      }

      fault::RerouteError rerr = fault::RerouteError::kNone;
      const auto chosen = rerouter.choose_excluding(
          candidates, injector.dead_depots(), bytes, &rerr);
      if (!chosen) {
        res.reroute_error = rerr;
        LSL_LOG_WARN("chaos: no viable route this attempt (%s)",
                     fault::to_string(rerr));
        continue;
      }
      res.reroute_error = fault::RerouteError::kNone;
      std::vector<std::string> next_route(chosen->waypoints.begin() + 1,
                                          chosen->waypoints.end() - 1);
      if (next_route != route) {
        ++res.reroutes;
        if (fm) fm->on_reroute();
        LSL_LOG_INFO("chaos: rerouting via %s", chosen->describe().c_str());
      }
      route = std::move(next_route);
      have_route = true;
    }
    if (!have_route) break;
  }

  res.attempts = policy.attempts_made();
  res.faults_injected = injector.injected();
  res.final_route = route;
  if (health_on) res.health_transitions = board->transitions();
  if (res.completed) {
    const util::SimDuration elapsed = sink_time - first_start;
    res.seconds = util::to_seconds(elapsed);
    res.mbps = util::throughput_mbps(bytes, elapsed);
    if (first_failure >= 0 && fm) {
      fm->on_recovered(util::to_millis(sink_time - first_failure));
    }
  }
  return res;
}

}  // namespace lsl::exp
