// The experiment runner: executes one transfer (direct TCP, LSL through the
// depot, or PSockets-style parallel streams) over a scenario and reports the
// paper's measurement quantities — host-to-host wall-clock throughput
// (connection setup and depot overheads included), per-connection
// sender-side traces, ACK-derived RTTs and retransmission counts.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "exp/scenarios.hpp"
#include "lsl/apps.hpp"
#include "lsl/depot.hpp"
#include "metrics/metrics.hpp"
#include "trace/analysis.hpp"
#include "trace/trace.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace lsl::exp {

/// How the payload travels.
enum class Mode {
  kDirectTcp,   ///< one end-to-end TCP connection (the baseline)
  kLsl,         ///< cascaded TCP through the scenario's depot(s)
  kParallelTcp, ///< N striped TCP connections (PSockets baseline)
};

/// Per-run knobs.
struct RunConfig {
  Mode mode = Mode::kDirectTcp;
  std::uint64_t bytes = util::kMiB;
  std::uint64_t seed = 1;
  bool capture_traces = false;   ///< record sender-side packet traces
  bool carry_data = false;       ///< real payload bytes + MD5 end-to-end
  std::size_t parallel_streams = 4;
  tcp::TcpConfig tcp;              ///< applied to every stack
  /// Depot tuning; when unset, derived from the scenario's PathParams
  /// (depot_relay_rate / depot_relay_buffer / depot_wakeup).
  std::optional<core::DepotConfig> depot_override;
  /// Park window for sessions whose upstream died awaiting a kFlagResume
  /// reconnect, applied to every depot the run builds (also on top of
  /// depot_override). The simulator's default is 0 = resumption off — the
  /// same default the real daemon's `lsd --resume-grace` knob documents in
  /// docs/PROTOCOL.md §6.
  util::SimDuration resume_grace = 0;
  /// When set, the run registers live instruments here: per-connection TCP
  /// metrics under `tcp.<label>.*`, depot metrics under `depot.1.*`, and —
  /// with capture_traces — a trace::analysis bridge under `trace.<label>.*`.
  /// Must outlive the call.
  metrics::Registry* metrics = nullptr;
  /// Hard simulated-time ceiling; a run that exceeds it reports failure.
  util::SimDuration deadline = 4ull * 3600 * util::kSecond;
};

/// Everything measured from one transfer.
struct TransferResult {
  bool completed = false;
  std::uint64_t bytes = 0;
  double seconds = 0.0;         ///< source start -> sink completion
  double mbps = 0.0;            ///< payload throughput over `seconds`
  bool verified = true;         ///< real mode: content + MD5 ok
  std::uint64_t retransmits = 0;  ///< summed across sending sockets
  std::uint64_t timeouts = 0;     ///< RTO events across sending sockets
  std::uint64_t drops_wire = 0;   ///< loss-model drops, all links
  std::uint64_t drops_queue = 0;  ///< drop-tail discards, all links

  // Sender-side traces (when capture_traces): index 0 is the end-to-end
  // connection in direct mode, or sublink 1 in LSL mode; subsequent entries
  // are each depot's downstream sublink in path order.
  std::vector<std::unique_ptr<trace::TraceRecorder>> traces;

  /// Average ACK-derived RTT (ms) of traces[i]; empty without traces.
  std::vector<double> rtt_ms;
  /// Retransmission count per traced connection.
  std::vector<std::uint64_t> retx_per_link;
};

/// Run a single transfer over a freshly built scenario.
TransferResult run_transfer(const PathParams& path, const RunConfig& cfg);

/// Run `iterations` transfers with seeds seed, seed+1, ... and return each
/// result (the paper runs 10 iterations per size, 120 for the OSU study).
std::vector<TransferResult> run_many(const PathParams& path,
                                     const RunConfig& cfg,
                                     std::size_t iterations);

/// Mean throughput (Mbit/s) over completed runs; 0 when none completed.
double mean_mbps(const std::vector<TransferResult>& results);

}  // namespace lsl::exp
