#include "exp/runner.hpp"

#include <cassert>

#include "lsl/directory.hpp"
#include "lsl/session_id.hpp"
#include "tcp/stack.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace lsl::exp {

namespace {
constexpr sim::PortNum kSinkPort = 5001;
constexpr sim::PortNum kDepotPort = 4000;
}  // namespace

TransferResult run_transfer(const PathParams& path, const RunConfig& cfg) {
  TransferResult res;
  res.bytes = cfg.bytes;

  Scenario sc = build_scenario(path, cfg.seed);
  sim::Network& net = *sc.net;

  tcp::TcpConfig tcpc = cfg.tcp;
  tcpc.carry_data = cfg.carry_data;
  if (tcpc.initial_ssthresh == 0) tcpc.initial_ssthresh = path.initial_ssthresh;

  // Metric bundles, declared before the stacks so they outlive every socket
  // holding a pointer to them.
  std::vector<std::unique_ptr<metrics::TcpConnMetrics>> tcp_bundles;
  std::unique_ptr<metrics::DepotMetrics> depot_bundle;
  auto meter_socket = [&](tcp::TcpSocket* s, const std::string& label) {
    if (!cfg.metrics) return;
    tcp_bundles.push_back(
        std::make_unique<metrics::TcpConnMetrics>(*cfg.metrics,
                                                  "tcp." + label));
    s->set_metrics(tcp_bundles.back().get());
  };

  tcp::TcpStack src_stack(net, *sc.src, tcpc);
  tcp::TcpStack dst_stack(net, *sc.dst, tcpc);
  tcp::TcpStack depot_stack(net, *sc.depot, tcpc);

  core::SessionDirectory dir;
  core::SessionDirectory* dirp = cfg.carry_data ? nullptr : &dir;

  bool done = false;
  util::SimTime done_time = 0;
  bool verified = true;

  // Sending sockets, in path order, for stats collection.
  std::vector<tcp::TcpSocket*> senders;

  // --- Receiving side --------------------------------------------------------
  std::unique_ptr<core::SinkServer> sink_server;
  std::unique_ptr<core::ParallelSinkServer> parallel_sink;
  if (cfg.mode == Mode::kParallelTcp) {
    parallel_sink = std::make_unique<core::ParallelSinkServer>(
        dst_stack, kSinkPort, cfg.parallel_streams);
    parallel_sink->on_complete = [&] {
      done = true;
      done_time = parallel_sink->complete_time();
    };
  } else {
    core::SinkConfig sink_cfg;
    sink_cfg.expect_header = (cfg.mode == Mode::kLsl);
    sink_cfg.verify_payload = cfg.carry_data;
    sink_cfg.payload_seed = cfg.seed ^ 0x5157c0debeefull;
    sink_server = std::make_unique<core::SinkServer>(dst_stack, kSinkPort,
                                                     sink_cfg, dirp);
    sink_server->on_complete = [&](core::SinkApp& app) {
      done = true;
      done_time = app.complete_time();
      verified = !cfg.carry_data || app.verified();
    };
  }

  // --- Depot (LSL mode) ------------------------------------------------------
  std::unique_ptr<core::DepotApp> depot_app;
  if (cfg.mode == Mode::kLsl) {
    core::DepotConfig dcfg;
    if (cfg.depot_override) {
      dcfg = *cfg.depot_override;
    } else {
      dcfg.buffer_bytes = path.depot_relay_buffer;
      dcfg.copy_rate = path.depot_relay_rate;
      dcfg.wakeup_latency = path.depot_wakeup;
      dcfg.session_setup_latency = path.depot_setup;
    }
    dcfg.port = kDepotPort;
    if (cfg.resume_grace > 0) dcfg.resume_grace = cfg.resume_grace;
    depot_app = std::make_unique<core::DepotApp>(depot_stack, dcfg, dirp);
    if (cfg.metrics) {
      depot_bundle =
          std::make_unique<metrics::DepotMetrics>(*cfg.metrics, "depot.1");
      depot_app->set_metrics(depot_bundle.get());
    }
    depot_app->on_downstream_open = [&](tcp::TcpSocket* s) {
      senders.push_back(s);
      meter_socket(s, "sublink2");
      if (cfg.capture_traces) {
        auto rec = std::make_unique<trace::TraceRecorder>("sublink2");
        rec->attach(s);
        res.traces.push_back(std::move(rec));
      }
    };
  }

  // --- Sending side ----------------------------------------------------------
  std::unique_ptr<core::SourceApp> source;
  std::unique_ptr<core::ParallelSource> parallel_source;
  util::SimTime start_time = 0;

  if (cfg.mode == Mode::kParallelTcp) {
    parallel_source = std::make_unique<core::ParallelSource>(
        src_stack, sim::Endpoint{sc.dst->id(), kSinkPort}, cfg.bytes,
        cfg.parallel_streams);
  } else {
    core::SourceConfig scfg;
    scfg.payload_bytes = cfg.bytes;
    scfg.payload_seed = cfg.seed ^ 0x5157c0debeefull;
    sim::Endpoint first_hop{sc.dst->id(), kSinkPort};
    if (cfg.mode == Mode::kLsl) {
      scfg.use_header = true;
      util::Rng id_rng(cfg.seed);
      scfg.header.session = core::SessionId::generate(id_rng);
      if (cfg.carry_data) scfg.header.flags |= core::kFlagDigestTrailer;
      scfg.header.payload_length = cfg.bytes;
      scfg.header.hops = {{sc.depot->id(), kDepotPort}};
      scfg.header.destination = {sc.dst->id(), kSinkPort};
      first_hop = {sc.depot->id(), kDepotPort};
    }
    source = std::make_unique<core::SourceApp>(src_stack, first_hop, scfg,
                                               dirp);
  }

  // --- Run -------------------------------------------------------------------
  sc.start_cross_traffic();
  if (source) {
    source->start();
    start_time = source->start_time();
    senders.insert(senders.begin(), source->socket());
    meter_socket(source->socket(),
                 cfg.mode == Mode::kLsl ? "sublink1" : "direct");
    if (cfg.capture_traces) {
      auto rec = std::make_unique<trace::TraceRecorder>(
          cfg.mode == Mode::kLsl ? "sublink1" : "direct");
      rec->attach(source->socket());
      res.traces.insert(res.traces.begin(), std::move(rec));
    }
  } else {
    parallel_source->start();
    start_time = parallel_source->start_time();
  }

  auto& ev = net.sim().events();
  while (!done && ev.now() <= cfg.deadline && ev.step()) {
  }
  sc.stop_cross_traffic();

  res.completed = done;
  if (done) {
    res.seconds = util::to_seconds(done_time - start_time);
    res.mbps = util::throughput_mbps(cfg.bytes, done_time - start_time);
    res.verified = verified;
  } else {
    LSL_LOG_WARN("run_transfer(%s): transfer did not complete (%llu bytes)",
                 path.name.c_str(),
                 static_cast<unsigned long long>(cfg.bytes));
    res.verified = false;
  }

  for (tcp::TcpSocket* s : senders) {
    res.retransmits += s->stats().retransmits;
    res.timeouts += s->stats().timeouts;
  }
  const sim::LinkStats link_totals = net.total_link_stats();
  res.drops_wire = link_totals.drops_wire;
  res.drops_queue = link_totals.drops_queue;
  for (const auto& rec : res.traces) {
    res.rtt_ms.push_back(trace::average_rtt_ms(*rec));
    res.retx_per_link.push_back(trace::retransmission_count(*rec));
    if (cfg.metrics) {
      trace::export_trace_metrics(*rec, *cfg.metrics,
                                  "trace." + rec->label());
    }
  }
  return res;
}

std::vector<TransferResult> run_many(const PathParams& path,
                                     const RunConfig& cfg,
                                     std::size_t iterations) {
  std::vector<TransferResult> out;
  out.reserve(iterations);
  for (std::size_t i = 0; i < iterations; ++i) {
    RunConfig c = cfg;
    c.seed = cfg.seed + i;
    out.push_back(run_transfer(path, c));
  }
  return out;
}

double mean_mbps(const std::vector<TransferResult>& results) {
  util::RunningStats s;
  for (const auto& r : results) {
    if (r.completed) s.add(r.mbps);
  }
  return s.mean();
}

}  // namespace lsl::exp
