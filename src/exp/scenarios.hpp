// The paper's measurement configurations as simulated topologies.
//
// Every experiment in the paper runs over one of four wide-area paths
// (Figure 2 shape): a campus source host behind an access link, one or two
// Abilene-like backbone segments meeting at an intermediate POP, a campus
// destination host, and a depot host attached to the POP by a short link so
// that "the latency being added should be minimal" (§IV.A):
//
//   src --access-- gw_src --wan1-- pop --wan2-- gw_dst --access-- dst
//                                   |
//                                 depot
//
// Link rates, delays and loss rates are calibrated so the *direct* TCP
// path reproduces the paper's observed end-to-end RTT and throughput; the
// LSL numbers are then whatever the protocol actually achieves — that is
// the reproduction. Loss uses i.i.d. Bernoulli on the WAN segments (random
// background loss on a shared backbone) and optionally a Gilbert–Elliott
// bursty model on a wireless last hop (Case 3). On/off UDP cross-traffic
// across the shared segments supplies the queueing variance real traces
// show.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/cross_traffic.hpp"
#include "sim/network.hpp"
#include "util/units.hpp"

namespace lsl::exp {

/// Parameters of one measurement path.
struct PathParams {
  std::string name = "unnamed";

  // Campus access links (both ends unless wireless_dst).
  util::DataRate access_rate = util::DataRate::mbps(100);
  util::SimDuration access_delay = util::millis(0.5);

  // Backbone segments: gw_src <-> pop <-> gw_dst.
  util::DataRate wan_rate = util::DataRate::mbps(20);
  util::SimDuration wan1_delay = util::millis(14.5);
  util::SimDuration wan2_delay = util::millis(13.0);
  double wan1_loss = 1.4e-4;  ///< per-packet, each direction
  double wan2_loss = 1.4e-4;
  std::size_t wan_queue_bytes = 256 * util::kKiB;
  util::SimDuration wan_jitter = util::micros(200);

  // Depot attachment.
  util::DataRate depot_link_rate = util::DataRate::mbps(100);
  util::SimDuration depot_link_delay = util::millis(1.5);

  // Depot host capability. The paper's depots are unprivileged processes on
  // shared general-purpose machines "not designed to forward traffic
  // efficiently" (§VII); relay_rate is the end-to-end rate such a host can
  // sustain through recv()+copy+send(), and relay_buffer is the "small,
  // short-lived" session buffer.
  util::DataRate depot_relay_rate = util::DataRate::mbps(100);
  std::uint64_t depot_relay_buffer = util::kMiB;
  util::SimDuration depot_wakeup = util::micros(200);
  util::SimDuration depot_setup = util::millis(140);

  // Optional 802.11b-style wireless last hop replacing dst's access link.
  bool wireless_dst = false;
  util::DataRate wireless_rate = util::DataRate::mbps(6);
  util::SimDuration wireless_delay = util::millis(2.0);
  double wireless_ge_good_to_bad = 2e-4;
  double wireless_ge_bad_to_good = 0.4;
  double wireless_ge_loss_bad = 0.2;
  double wireless_ge_loss_good = 1e-5;

  // Background cross-traffic over each WAN segment (0 disables).
  double cross_traffic_mbps = 0.0;

  /// Warmed route-metric ssthresh applied to every connection in this
  /// scenario (Linux 2.4 cached ssthresh per destination; the paper's
  /// 10-120 iterations per configuration ran over warmed routes).
  std::uint64_t initial_ssthresh = 112 * util::kKiB;
};

/// A constructed topology ready to host transport stacks.
struct Scenario {
  std::unique_ptr<sim::Network> net;
  sim::Node* src = nullptr;
  sim::Node* dst = nullptr;
  sim::Node* depot = nullptr;
  sim::Node* pop = nullptr;
  std::vector<std::unique_ptr<sim::OnOffUdpSource>> cross_sources;

  /// Start all configured cross-traffic sources.
  void start_cross_traffic();
  /// Stop them (lets the event queue drain after a transfer).
  void stop_cross_traffic();
};

/// Build the topology for `p`, seeding all simulation randomness from
/// `seed` (distinct seeds give statistically independent iterations).
Scenario build_scenario(const PathParams& p, std::uint64_t seed);

/// Case 1 (§IV.A, Figures 3, 5, 6, 11–25): UCSB -> UIUC via a Denver depot.
/// Direct path: ~57 ms RTT, ~11 Mbit/s at 64 MB.
PathParams case1_ucsb_uiuc();

/// Case 2 (Figures 4, 7, 8, 26): UCSB -> UF via a Houston depot whose
/// access is load-delayed (~+20 ms on the sum of sublink RTTs).
/// Direct path: ~60 ms RTT, ~33 Mbit/s at 128 MB.
PathParams case2_ucsb_uf();

/// Case 3 (Figures 9, 10, 27): UTK -> UCSB with an 802.11b last hop and the
/// depot at the wired network edge near the client.
PathParams case3_utk_wireless();

/// Steady-state study (Figures 28, 29): UCSB -> OSU via Denver, transfers
/// up to 512 MB. Direct path: ~20 Mbit/s at 512 MB.
PathParams case_osu_steady();

}  // namespace lsl::exp
