// Chaos experiments: scripted faults against a cascaded chain transfer,
// recovered by the policy layer.
//
// run_chaos builds the same N-depot chain topology as run_chain, arms a
// fault::FaultInjector with a scripted FaultPlan, and then drives transfer
// *attempts* under a fault::RetryPolicy: when an attempt fails (depot
// crash, refused accept, end-to-end verification mismatch), the harness
// backs off per the policy, re-asks fault::ReroutePolicy for the best
// route excluding crashed depots, and launches a fresh session. Attempts
// marked resumable additionally survive sublink resets *within* a session
// via the kFlagResume machinery (depot park + source reconnect).
//
// Everything is deterministic under a fixed seed — faults, backoff jitter,
// TCP timing — so two identical runs export byte-identical metrics; the
// chaos test tier (tests/chaos_test.cpp) asserts exactly that.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/chain.hpp"
#include "fault/policy.hpp"
#include "fault/spec.hpp"
#include "metrics/metrics.hpp"

namespace lsl::exp {

/// Parameters of one chaos run.
struct ChaosParams {
  /// Topology, payload size, seed, depot tuning (set depot.resume_grace
  /// for reset-style scenarios). capture_traces is ignored; chain.metrics
  /// doubles as the registry for `fault.*` / `recovery.*` instruments.
  ChainParams chain;
  fault::FaultPlan plan;
  fault::RetryConfig retry;
  /// Resumable attempts survive mid-stream connection resets in-session
  /// (kFlagResume; no digest trailer — content is still verified against
  /// the seeded generator). Non-resumable attempts carry the full MD5
  /// trailer and recover by policy-driven retransfer.
  bool resumable_attempts = false;
};

/// Outcome of one chaos run.
struct ChaosResult {
  bool completed = false;  ///< a sink received the full payload
  bool verified = false;   ///< ... and it checked out end to end
  /// Recovery attempts granted by the RetryPolicy (in-session reconnects
  /// plus cross-session retransfers).
  std::uint32_t attempts = 0;
  std::uint32_t reroutes = 0;       ///< attempts that switched routes
  std::size_t resumes = 0;          ///< in-session resume cycles (all attempts)
  std::uint64_t faults_injected = 0;
  /// Why rerouting gave up, when it did (kNone otherwise) — the distinct
  /// "no alternative route" failure the policy layer must surface.
  fault::RerouteError reroute_error = fault::RerouteError::kNone;
  std::vector<std::string> final_route;  ///< depot names of the last attempt
  double seconds = 0.0;  ///< source start (first attempt) -> verified sink
  double mbps = 0.0;
};

/// Run one transfer under the fault plan; recover per the policies.
ChaosResult run_chaos(const ChaosParams& params);

}  // namespace lsl::exp
