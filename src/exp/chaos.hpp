// Chaos experiments: scripted faults against a cascaded chain transfer,
// recovered by the policy layer.
//
// run_chaos builds the same N-depot chain topology as run_chain, arms a
// fault::FaultInjector with a scripted FaultPlan, and then drives transfer
// *attempts* under a fault::RetryPolicy: when an attempt fails (depot
// crash, refused accept, end-to-end verification mismatch), the harness
// backs off per the policy, re-asks fault::ReroutePolicy for the best
// route excluding crashed depots, and launches a fresh session. Attempts
// marked resumable additionally survive sublink resets *within* a session
// via the kFlagResume machinery (depot park + source reconnect).
//
// Everything is deterministic under a fixed seed — faults, backoff jitter,
// TCP timing — so two identical runs export byte-identical metrics; the
// chaos test tier (tests/chaos_test.cpp) asserts exactly that.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/chain.hpp"
#include "fault/policy.hpp"
#include "fault/spec.hpp"
#include "health/board.hpp"
#include "health/migration.hpp"
#include "metrics/metrics.hpp"

namespace lsl::exp {

/// Health-plane knobs for a chaos run. Disabled (the default) schedules
/// nothing and allocates nothing: same-seed metric exports stay
/// byte-identical with and without this struct present — the repository's
/// determinism invariant (tests/health_test.cpp pins it).
struct ChaosHealth {
  /// Master switch for the whole plane (board, sampling, migration).
  bool enabled = false;
  health::HealthConfig board;
  /// Mid-transfer re-selection; `migration.enabled` still gates it inside
  /// an enabled plane, so scoring can run with migration off (admission
  /// only).
  health::MigrationConfig migration;
  /// Depot scorecard sampling period (simulated time). Each tick folds
  /// every depot's relay-rate delta, stall/pressure counters, and
  /// injector-known deaths into the board, then consults the
  /// MigrationPolicy for the live attempt.
  util::SimDuration probe_interval = util::millis(100);
};

/// Parameters of one chaos run.
struct ChaosParams {
  /// Topology, payload size, seed, depot tuning (set depot.resume_grace
  /// for reset-style scenarios). capture_traces is ignored; chain.metrics
  /// doubles as the registry for `fault.*` / `recovery.*` instruments.
  ChainParams chain;
  fault::FaultPlan plan;
  fault::RetryConfig retry;
  /// Resumable attempts survive mid-stream connection resets in-session
  /// (kFlagResume; no digest trailer — content is still verified against
  /// the seeded generator). Non-resumable attempts carry the full MD5
  /// trailer and recover by policy-driven retransfer.
  bool resumable_attempts = false;
  /// Adaptive depot health plane (requires resumable_attempts when
  /// migration is enabled — migration rides the resume machinery).
  ChaosHealth health;
};

/// Outcome of one chaos run.
struct ChaosResult {
  bool completed = false;  ///< a sink received the full payload
  bool verified = false;   ///< ... and it checked out end to end
  /// Recovery attempts granted by the RetryPolicy (in-session reconnects
  /// plus cross-session retransfers).
  std::uint32_t attempts = 0;
  std::uint32_t reroutes = 0;       ///< attempts that switched routes
  std::size_t resumes = 0;          ///< in-session resume cycles (all attempts)
  std::uint64_t faults_injected = 0;
  /// Why rerouting gave up, when it did (kNone otherwise) — the distinct
  /// "no alternative route" failure the policy layer must surface.
  fault::RerouteError reroute_error = fault::RerouteError::kNone;
  std::vector<std::string> final_route;  ///< depot names of the last attempt
  double seconds = 0.0;  ///< source start (first attempt) -> verified sink
  double mbps = 0.0;
  // --- Health plane (all zero when ChaosParams::health is disabled) ------
  std::size_t migrations = 0;  ///< proactive mid-transfer re-selections
  /// Stream offset the first migration resumed from (the sink's exact
  /// acknowledged frontier at that instant); 0 when no migration happened.
  std::uint64_t migration_floor = 0;
  /// Health mode: the ledger-stitched stream's MD5 matched the seeded
  /// generator's digest over the full payload (false when not health mode).
  bool stream_digest_ok = false;
  std::uint64_t health_transitions = 0;  ///< board state changes observed
};

/// Run one transfer under the fault plan; recover per the policies.
ChaosResult run_chaos(const ChaosParams& params);

}  // namespace lsl::exp
