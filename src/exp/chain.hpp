// Generalized cascade experiments: a source and sink joined by N+1 WAN
// segments with N depots at the junctions, holding the *total* path delay
// and loss constant while varying how many times the path is articulated.
//
// This answers the design question the single-depot paper setup leaves
// open: how does the LSL effect scale with the number of cascaded TCP
// connections, and where do per-depot costs (setup latency, copy rate)
// eat the gains?
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "lsl/depot.hpp"
#include "metrics/metrics.hpp"
#include "tcp/tcp.hpp"
#include "trace/trace.hpp"
#include "util/units.hpp"

namespace lsl::exp {

/// Parameters of one chain run.
struct ChainParams {
  std::size_t depots = 1;  ///< cascaded depots (0 = direct TCP)
  std::uint64_t bytes = 16 * util::kMiB;
  std::uint64_t seed = 1;

  /// Total one-way propagation delay of the backbone, split evenly across
  /// the depots+1 segments.
  util::SimDuration total_one_way_delay = util::millis(28);
  /// Total one-way per-packet loss probability of the backbone, split
  /// evenly across the segments.
  double total_loss = 2.8e-4;
  util::DataRate wan_rate = util::DataRate::mbps(40);
  std::size_t wan_queue_bytes = 256 * util::kKiB;
  util::SimDuration access_delay = util::millis(0.5);

  tcp::TcpConfig tcp{.initial_ssthresh = 64 * util::kKiB};
  core::DepotConfig depot{.buffer_bytes = util::kMiB,
                          .copy_rate = util::DataRate::mbps(60),
                          .session_setup_latency = util::millis(40)};

  util::SimDuration deadline = 4ull * 3600 * util::kSecond;

  /// Record sender-side packet traces for every sublink.
  bool capture_traces = false;
  /// When set, the run registers live instruments here: per-sublink TCP
  /// metrics under `tcp.sublink<i>.*` (or `tcp.direct.*` with 0 depots),
  /// per-depot metrics under `depot.<i>.*`, and — with capture_traces — a
  /// trace::analysis bridge under `trace.<label>.*`. Must outlive the call.
  metrics::Registry* metrics = nullptr;
};

/// Outcome of one chain transfer.
struct ChainResult {
  bool completed = false;
  double seconds = 0.0;
  double mbps = 0.0;
  std::uint64_t retransmits = 0;

  // Sender-side traces (when capture_traces), in path order: the source's
  // connection first ("sublink1", or "direct" with 0 depots), then each
  // depot's downstream sublink ("sublink2".."sublinkN+1").
  std::vector<std::unique_ptr<trace::TraceRecorder>> traces;
  /// Average ACK-derived RTT (ms) of traces[i]; empty without traces.
  std::vector<double> rtt_ms;
  /// Retransmission count per traced sublink.
  std::vector<std::uint64_t> retx_per_link;
};

/// Build the chain, run one transfer through all depots, and measure it the
/// same way run_transfer does (source start -> sink completion).
ChainResult run_chain(const ChainParams& params);

}  // namespace lsl::exp
