// Generalized cascade experiments: a source and sink joined by N+1 WAN
// segments with N depots at the junctions, holding the *total* path delay
// and loss constant while varying how many times the path is articulated.
//
// This answers the design question the single-depot paper setup leaves
// open: how does the LSL effect scale with the number of cascaded TCP
// connections, and where do per-depot costs (setup latency, copy rate)
// eat the gains?
#pragma once

#include <cstdint>
#include <optional>

#include "lsl/depot.hpp"
#include "tcp/tcp.hpp"
#include "util/units.hpp"

namespace lsl::exp {

/// Parameters of one chain run.
struct ChainParams {
  std::size_t depots = 1;  ///< cascaded depots (0 = direct TCP)
  std::uint64_t bytes = 16 * util::kMiB;
  std::uint64_t seed = 1;

  /// Total one-way propagation delay of the backbone, split evenly across
  /// the depots+1 segments.
  util::SimDuration total_one_way_delay = util::millis(28);
  /// Total one-way per-packet loss probability of the backbone, split
  /// evenly across the segments.
  double total_loss = 2.8e-4;
  util::DataRate wan_rate = util::DataRate::mbps(40);
  std::size_t wan_queue_bytes = 256 * util::kKiB;
  util::SimDuration access_delay = util::millis(0.5);

  tcp::TcpConfig tcp{.initial_ssthresh = 64 * util::kKiB};
  core::DepotConfig depot{.buffer_bytes = util::kMiB,
                          .copy_rate = util::DataRate::mbps(60),
                          .session_setup_latency = util::millis(40)};

  util::SimDuration deadline = 4ull * 3600 * util::kSecond;
};

/// Outcome of one chain transfer.
struct ChainResult {
  bool completed = false;
  double seconds = 0.0;
  double mbps = 0.0;
  std::uint64_t retransmits = 0;
};

/// Build the chain, run one transfer through all depots, and measure it the
/// same way run_transfer does (source start -> sink completion).
ChainResult run_chain(const ChainParams& params);

}  // namespace lsl::exp
