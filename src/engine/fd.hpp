// RAII file descriptor.
#pragma once

#include <unistd.h>

#include <utility>

namespace lsl::engine {

/// Owns a POSIX file descriptor; closes on destruction. Move-only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  explicit operator bool() const { return valid(); }

  /// Release ownership without closing.
  int release() { return std::exchange(fd_, -1); }

  /// Close (if open) and optionally adopt a new descriptor.
  void reset(int fd = -1) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

}  // namespace lsl::engine
