#include "engine/epoll_engine.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <stdexcept>
#include <system_error>

namespace lsl::engine {

EpollEngine::EpollEngine() : epoll_(::epoll_create1(EPOLL_CLOEXEC)) {
  if (!epoll_.valid()) {
    throw std::system_error(errno, std::generic_category(), "epoll_create1");
  }
  // The wakeup channel is an ordinary registered fd: a counting eventfd
  // whose callback drains the count and runs the installed closure. It is
  // excluded from watched_count() so run()'s "no fds left" exit condition
  // keeps its pre-wakeup meaning.
  wakeup_fd_.reset(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!wakeup_fd_.valid()) {
    throw std::system_error(errno, std::generic_category(), "eventfd");
  }
  add(wakeup_fd_.get(), EPOLLIN, [this](std::uint32_t) { drain_wakeup(); });
}

void EpollEngine::add(int fd, std::uint32_t events, IoCallback cb) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw std::system_error(errno, std::generic_category(), "epoll_ctl ADD");
  }
  callbacks_[fd] = std::move(cb);
}

void EpollEngine::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw std::system_error(errno, std::generic_category(), "epoll_ctl MOD");
  }
}

void EpollEngine::remove(int fd) {
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

int EpollEngine::run_once(int timeout_ms) {
  std::array<epoll_event, 64> events;
  const int n = ::epoll_wait(epoll_.get(), events.data(),
                             static_cast<int>(events.size()), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return -1;
    throw std::system_error(errno, std::generic_category(), "epoll_wait");
  }
  std::chrono::steady_clock::time_point dispatch_start;
  if (metrics_) {
    metrics_->iterations->inc();
    metrics_->events_dispatched->inc(static_cast<std::uint64_t>(n));
    dispatch_start = std::chrono::steady_clock::now();
  }
  for (int i = 0; i < n; ++i) {
    const int fd = events[static_cast<std::size_t>(i)].data.fd;
    const auto it = callbacks_.find(fd);
    if (it == callbacks_.end()) continue;  // removed by an earlier callback
    // Copy: the callback may remove (and thus invalidate) its own entry.
    IoCallback cb = it->second;
    cb(events[static_cast<std::size_t>(i)].events);
  }
  if (metrics_ && n > 0) {
    metrics_->dispatch_ms->observe(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - dispatch_start)
            .count());
  }
  return n;
}

void EpollEngine::run() {
  stopped_ = false;
  while (!stopped_ && watched_count() > 0) {
    run_once(-1);
  }
}

void EpollEngine::wakeup() {
  // write(2) on an eventfd is atomic and thread-safe; the counter adds up
  // and the dispatch thread drains it in one read, so wakeups coalesce.
  const std::uint64_t one = 1;
  const auto n = ::write(wakeup_fd_.get(), &one, sizeof(one));
  (void)n;  // EAGAIN means the counter is saturated — a wakeup is pending
}

void EpollEngine::drain_wakeup() {
  std::uint64_t count = 0;
  const auto n = ::read(wakeup_fd_.get(), &count, sizeof(count));
  (void)n;  // EFD_NONBLOCK: EAGAIN just means a spurious wake
  if (on_wakeup_) on_wakeup_();
}

std::unique_ptr<EventEngine> make_engine(std::string_view backend) {
  if (backend == "epoll") return std::make_unique<EpollEngine>();
  throw std::invalid_argument("make_engine: unknown backend '" +
                              std::string(backend) + "'");
}

}  // namespace lsl::engine
