// Single-threaded epoll event engine — the first EventEngine backend.
//
// The real-socket half of the repository (the lsd daemon, the posix client
// and sink) is written against this engine so a whole relay chain — client,
// several depots, sink — can run in one process over loopback, mirroring
// how the simulated apps share one event queue. Each daemon shard owns one
// EpollEngine; the eventfd-based wakeup() is how other threads get the
// shard's attention (post a closure, then wakeup()).
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <unordered_map>

#include "engine/event_engine.hpp"
#include "engine/fd.hpp"
#include "metrics/instruments.hpp"

namespace lsl::engine {

/// Edge-triggered-free (level-triggered) epoll wrapper with an eventfd
/// wakeup channel.
class EpollEngine final : public EventEngine {
 public:
  EpollEngine();
  ~EpollEngine() override = default;

  std::string_view backend_name() const override { return "epoll"; }

  void add(int fd, std::uint32_t events, IoCallback cb) override;
  void modify(int fd, std::uint32_t events) override;
  void remove(int fd) override;
  int run_once(int timeout_ms = -1) override;
  void run() override;
  void stop() override { stopped_ = true; }

  /// Registered fds, excluding the internal wakeup eventfd.
  std::size_t watched_count() const override {
    return callbacks_.size() - (wakeup_fd_.valid() ? 1u : 0u);
  }

  void set_metrics(metrics::LoopMetrics* m) override { metrics_ = m; }

  void wakeup() override;
  void set_wakeup_callback(std::function<void()> cb) override {
    on_wakeup_ = std::move(cb);
  }

 private:
  void drain_wakeup();

  Fd epoll_;
  Fd wakeup_fd_;
  std::unordered_map<int, IoCallback> callbacks_;
  std::function<void()> on_wakeup_;
  metrics::LoopMetrics* metrics_ = nullptr;
  bool stopped_ = false;
};

}  // namespace lsl::engine
