// timerfd wrapper: turns a DeadlineWheel due-instant into an engine wakeup.
//
// The daemon's deadlines must fire even when no socket is ready — a silent
// peer generates no events, which is exactly the case liveness exists to
// catch. An EngineTimer registers in the same EventEngine as the sockets;
// arming it at the wheel's next_due() makes the engine's plain run() wake
// for deadlines with no host-side polling and no computed-timeout plumbing.
// Each daemon (shard) owns its own timer, so several daemons can share one
// engine in single-threaded tests.
#pragma once

#include <cstdint>
#include <functional>

#include "engine/event_engine.hpp"
#include "engine/fd.hpp"

namespace lsl::engine {

/// A CLOCK_MONOTONIC timerfd registered in an EventEngine.
class EngineTimer {
 public:
  /// Creates the timerfd (disarmed) and registers it for EPOLLIN; `on_fire`
  /// runs whenever the armed instant passes. Throws std::system_error if
  /// the timer cannot be created.
  EngineTimer(EventEngine& engine, std::function<void()> on_fire);
  ~EngineTimer();

  EngineTimer(const EngineTimer&) = delete;
  EngineTimer& operator=(const EngineTimer&) = delete;

  /// Current CLOCK_MONOTONIC time in nanoseconds — the timebase armed
  /// instants are expressed in (and the one the daemon's DeadlineWheel
  /// runs on).
  static std::int64_t now_ns();

  /// Arm (or re-arm) for absolute monotonic instant `due_ns`; an instant
  /// at or before now fires on the next loop turn. Arming at the instant
  /// already armed is a no-op (skips the syscall).
  void arm(std::int64_t due_ns);

  /// Disarm without unregistering.
  void disarm();

  bool armed() const { return armed_; }
  int fd() const { return fd_.get(); }

 private:
  void on_readable();

  EventEngine& engine_;
  Fd fd_;
  std::function<void()> on_fire_;
  bool armed_ = false;
  std::int64_t armed_due_ = 0;
};

}  // namespace lsl::engine
