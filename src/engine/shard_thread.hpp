// ShardThread: the one sanctioned std::thread wrapper in src/.
//
// The repository-wide thread-discipline rule (tools/lsl_lint) bans bare
// std::thread under src/ so cross-thread protocols are forced through the
// model-checked Sync seam rather than grown ad hoc. Shards still need a
// real OS thread to run their EventEngine on, and this wrapper is the
// single carve-out the lint rule grants: join-on-destruction semantics
// (no detached threads, no std::terminate from a forgotten join), nothing
// else. Everything the shard thread *shares* — post queues, drain gates,
// budgets, stats boards — lives behind Sync-templated types that the
// model checker explores.
#pragma once

#include <functional>
#include <thread>
#include <utility>

namespace lsl::engine {

/// Join-on-destruction OS thread. Move-only.
class ShardThread {
 public:
  ShardThread() = default;
  explicit ShardThread(std::function<void()> body)
      : thread_(std::move(body)) {}
  ~ShardThread() { join(); }

  ShardThread(const ShardThread&) = delete;
  ShardThread& operator=(const ShardThread&) = delete;
  ShardThread(ShardThread&& other) noexcept
      : thread_(std::move(other.thread_)) {}
  ShardThread& operator=(ShardThread&& other) noexcept {
    if (this != &other) {
      join();
      thread_ = std::move(other.thread_);
    }
    return *this;
  }

  bool joinable() const { return thread_.joinable(); }
  void join() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  std::thread thread_;
};

}  // namespace lsl::engine
