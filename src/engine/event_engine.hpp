// EventEngine: the backend seam between the daemon and the kernel.
//
// Everything real-socket in the repository — the lsd daemon, the posix
// client and sink, the admin socket, timers — is written against this
// interface rather than a concrete epoll loop. The contract is small on
// purpose: readiness callbacks on registered fds, one blocking dispatch
// primitive, and a thread-safe wakeup. That is exactly the surface an
// io_uring backend can also provide (submit POLL_ADD SQEs instead of
// epoll_ctl, reap CQEs instead of epoll_wait, post a NOP SQE for wakeup),
// so a second backend slots in behind make_engine() without touching the
// daemon. The first backend is EpollEngine (engine/epoll_engine.hpp),
// the epoll+eventfd loop the daemon has always run on.
//
// Threading contract: every method except wakeup() must be called from
// the thread that drives run()/run_once() — the engine is the shard's
// single-threaded heart, and the sharded runtime (posix::ShardedLsd)
// gets work onto it by posting closures and calling wakeup() from
// outside. wakeup() is async-signal-unsafe but thread-safe.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "metrics/instruments.hpp"

namespace lsl::engine {

/// Abstract readiness-event backend. Level-triggered semantics: a
/// callback fires as long as the fd stays ready for its interest mask.
class EventEngine {
 public:
  /// Callback receives the ready EPOLL* event mask.
  using IoCallback = std::function<void(std::uint32_t events)>;

  EventEngine() = default;
  virtual ~EventEngine() = default;

  EventEngine(const EventEngine&) = delete;
  EventEngine& operator=(const EventEngine&) = delete;

  /// Backend identifier ("epoll", later "io_uring").
  virtual std::string_view backend_name() const = 0;

  /// Register `fd` for `events` (EPOLLIN/EPOLLOUT/...). The callback stays
  /// installed until remove().
  virtual void add(int fd, std::uint32_t events, IoCallback cb) = 0;

  /// Change the interest mask of a registered fd.
  virtual void modify(int fd, std::uint32_t events) = 0;

  /// Deregister; safe to call from inside the fd's own callback.
  virtual void remove(int fd) = 0;

  /// Dispatch ready events once, waiting up to `timeout_ms` (-1 = forever).
  /// Returns the number of events handled, or -1 on EINTR.
  virtual int run_once(int timeout_ms = -1) = 0;

  /// Loop until stop() is called or no fds remain registered (the
  /// engine's own wakeup descriptor does not count as registered).
  virtual void run() = 0;

  /// Make run() return after the current dispatch round.
  virtual void stop() = 0;

  /// Registered fds, excluding engine-internal descriptors.
  virtual std::size_t watched_count() const = 0;

  /// Attach a metrics bundle (must outlive the engine's use); null
  /// detaches. Dispatch timing is only measured while a bundle is
  /// attached, so the unmetered engine pays no clock_gettime cost.
  virtual void set_metrics(metrics::LoopMetrics* m) = 0;

  /// Thread-safe: make the engine's dispatch thread wake from a blocking
  /// run_once() and invoke the wakeup callback (if set). Coalescing is
  /// allowed — N wakeups may produce one callback invocation.
  virtual void wakeup() = 0;

  /// Install the closure the dispatch thread runs on wakeup (typically:
  /// drain a cross-thread post queue). Must be set before other threads
  /// may call wakeup(); runs on the dispatch thread.
  virtual void set_wakeup_callback(std::function<void()> cb) = 0;
};

/// Construct a backend by name. "epoll" is always available; unknown
/// names throw std::invalid_argument. (An "io_uring" registration will
/// land here once that backend exists.)
std::unique_ptr<EventEngine> make_engine(std::string_view backend = "epoll");

}  // namespace lsl::engine
