#include "engine/timer.hpp"

#include <sys/epoll.h>
#include <sys/timerfd.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>

namespace lsl::engine {

EngineTimer::EngineTimer(EventEngine& engine, std::function<void()> on_fire)
    : engine_(engine), on_fire_(std::move(on_fire)) {
  fd_.reset(::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC));
  if (!fd_.valid()) {
    throw std::system_error(errno, std::generic_category(), "timerfd_create");
  }
  engine_.add(fd_.get(), EPOLLIN, [this](std::uint32_t) { on_readable(); });
}

EngineTimer::~EngineTimer() {
  if (fd_.valid()) engine_.remove(fd_.get());
}

std::int64_t EngineTimer::now_ns() {
  struct timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

void EngineTimer::arm(std::int64_t due_ns) {
  if (armed_ && armed_due_ == due_ns) return;
  // it_value {0,0} would disarm; clamp a past/zero instant to 1 ns so the
  // timer still fires (immediately) instead of going silent.
  if (due_ns < 1) due_ns = 1;
  struct itimerspec spec = {};
  spec.it_value.tv_sec = due_ns / 1'000'000'000;
  spec.it_value.tv_nsec = due_ns % 1'000'000'000;
  ::timerfd_settime(fd_.get(), TFD_TIMER_ABSTIME, &spec, nullptr);
  armed_ = true;
  armed_due_ = due_ns;
}

void EngineTimer::disarm() {
  if (!armed_) return;
  struct itimerspec spec = {};  // zero it_value = disarm
  ::timerfd_settime(fd_.get(), 0, &spec, nullptr);
  armed_ = false;
  armed_due_ = 0;
}

void EngineTimer::on_readable() {
  std::uint64_t expirations = 0;
  // Drain the expiration count so level-triggered epoll quiesces.
  const auto n = ::read(fd_.get(), &expirations, sizeof(expirations));
  (void)n;  // TFD_NONBLOCK: EAGAIN just means a spurious wake
  armed_ = false;
  armed_due_ = 0;
  if (on_fire_) on_fire_();
}

}  // namespace lsl::engine
