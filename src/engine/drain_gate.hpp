// DrainGate: the cross-shard drain rendezvous.
//
// SIGTERM drain in the sharded daemon is a two-phase protocol: the
// controller requests drain once (request()), every shard observes the
// request on its own dispatch thread, finishes its in-flight sessions,
// and arrives exactly once (arrive()); the controller (or anyone) asks
// all_done() to learn whether every shard has arrived. The properties
// the daemon depends on — a shard that checked requested()==false before
// accepting can never see the gate already complete, arrivals are never
// lost or double-counted, request() is idempotent — are explored
// exhaustively by the model checker (src/check/suite.cpp scenario
// "engine_drain_gate") rather than sampled under TSan.
#pragma once

#include <cstdint>

#include "check/shim.hpp"

namespace lsl::engine {

/// N-party drain rendezvous: one idempotent request, one arrival per
/// party, observable completion.
template <typename Sync>
class BasicDrainGate {
 public:
  explicit BasicDrainGate(std::uint32_t parties) : parties_(parties) {}
  BasicDrainGate(const BasicDrainGate&) = delete;
  BasicDrainGate& operator=(const BasicDrainGate&) = delete;

  /// Ask every party to drain. Returns true on the first call, false on
  /// repeats (signal handlers may fire more than once).
  bool request() { return !requested_.exchange(true); }

  bool requested() const { return requested_.load(); }

  /// A party reports its drain complete. Returns true when this arrival
  /// completed the gate. Arriving more than once per party is a protocol
  /// violation (caught under the checked Sync policy).
  bool arrive() {
    const std::uint32_t before = arrived_.fetch_add(1);
    if constexpr (Sync::kChecked) {
      check::model_assert(before < parties_, "drain gate over-arrival");
    }
    return before + 1 == parties_;
  }

  std::uint32_t arrived() const { return arrived_.load(); }
  std::uint32_t parties() const { return parties_; }
  bool all_done() const { return arrived_.load() >= parties_; }

 private:
  const std::uint32_t parties_;
  typename Sync::template atomic<bool> requested_{false};
  typename Sync::template atomic<std::uint32_t> arrived_{0};
};

/// Production alias.
using DrainGate = BasicDrainGate<check::StdSync>;

}  // namespace lsl::engine
