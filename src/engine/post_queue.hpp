// Cross-thread post queue: how work gets onto a shard's dispatch thread.
//
// Any thread may post() a closure; the shard's dispatch thread drains the
// queue (typically from the engine's wakeup callback) and runs every task
// in FIFO order. The protocol is deliberately tiny — one mutex, one deque,
// swap-and-run — and is templated over the check::Sync policy so the
// model checker can prove the two properties the sharded daemon depends
// on: no posted task is lost, and no task runs twice (src/check/suite.cpp
// scenario "engine_post_queue").
//
// drain() moves the whole batch out under the lock and runs the tasks
// *outside* it, so a task may itself post() (to this or another queue)
// without deadlock; tasks posted during a drain land in the next batch.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <utility>

#include "check/shim.hpp"

namespace lsl::engine {

/// MPSC task queue (any producer, the dispatch thread consumes).
template <typename Sync>
class BasicPostQueue {
 public:
  using Task = std::function<void()>;

  BasicPostQueue() = default;
  BasicPostQueue(const BasicPostQueue&) = delete;
  BasicPostQueue& operator=(const BasicPostQueue&) = delete;

  /// Enqueue; returns true when the queue was empty (the caller should
  /// wake the consumer — returning this instead of always-waking lets
  /// producers coalesce wakeups on a busy queue).
  bool post(Task task) {
    typename Sync::lock_guard lock(mu_);
    const bool was_empty = tasks_.empty();
    tasks_.push_back(std::move(task));
    return was_empty;
  }

  /// Run every queued task in FIFO order on the calling thread. Returns
  /// the number of tasks run. Tasks posted while draining go to the next
  /// drain.
  std::size_t drain() {
    std::deque<Task> batch;
    {
      typename Sync::lock_guard lock(mu_);
      batch.swap(tasks_);
    }
    for (auto& task : batch) task();
    return batch.size();
  }

  std::size_t pending() const {
    typename Sync::lock_guard lock(mu_);
    return tasks_.size();
  }

 private:
  mutable typename Sync::mutex mu_;
  std::deque<Task> tasks_;
};

/// Production alias.
using PostQueue = BasicPostQueue<check::StdSync>;

}  // namespace lsl::engine
