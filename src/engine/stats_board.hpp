// StatsBoard: contention-free cross-thread publication of a stats struct.
//
// Each shard's dispatch thread owns its counters exclusively (plain
// uint64 fields in LsdStats — no atomics on the hot path) and publishes a
// copy to its board after every dispatch round; aggregation threads (the
// admin socket, lsl_load's reporter) snapshot any board at any time. The
// board is an array of relaxed-atomic words, so there is never a data
// race, but a snapshot taken mid-publish may mix words from two adjacent
// dispatch rounds. That is the deliberate trade: monotonic counters off
// by one round cost nothing, a shared atomic per counter on the relay
// fast path would. Snapshots are exact whenever the shard is quiescent
// (drained, stopped, or simply between rounds), which is when tests and
// drain reports read them.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace lsl::engine {

/// Single-writer multi-reader board for a trivially copyable stats struct
/// whose size is a multiple of 8 bytes.
template <typename T>
class StatsBoard {
  static_assert(std::is_trivially_copyable_v<T>,
                "StatsBoard needs a trivially copyable stats struct");
  static_assert(sizeof(T) % sizeof(std::uint64_t) == 0,
                "StatsBoard publishes whole 64-bit words");
  static constexpr std::size_t kWords = sizeof(T) / sizeof(std::uint64_t);

 public:
  StatsBoard() { publish(T{}); }

  StatsBoard(const StatsBoard&) = delete;
  StatsBoard& operator=(const StatsBoard&) = delete;

  /// Owner thread: publish the current value, word by word.
  void publish(const T& value) {
    std::uint64_t words[kWords];
    std::memcpy(words, &value, sizeof(T));
    for (std::size_t i = 0; i < kWords; ++i) {
      std::atomic_ref<std::uint64_t>(words_[i]).store(
          words[i], std::memory_order_relaxed);
    }
  }

  /// Any thread: read the last published value (word-coherent; see file
  /// comment for the mid-publish caveat).
  T snapshot() const {
    std::uint64_t words[kWords];
    for (std::size_t i = 0; i < kWords; ++i) {
      words[i] = std::atomic_ref<const std::uint64_t>(words_[i])
                     .load(std::memory_order_relaxed);
    }
    T value;
    std::memcpy(&value, words, sizeof(T));
    return value;
  }

 private:
  alignas(std::atomic_ref<std::uint64_t>::required_alignment)
      std::uint64_t words_[kWords] = {};
};

}  // namespace lsl::engine
