#include "health/health_metrics.hpp"

namespace lsl::health {

HealthMetrics::HealthMetrics(metrics::Registry& reg)
    : transitions(&reg.counter("health.transitions")),
      demotions(&reg.counter("health.demotions")),
      promotions(&reg.counter("health.promotions")),
      admission_refused(&reg.counter("health.admission_refused")),
      migrations(&reg.counter("health.migrations")),
      gossip_merged(&reg.counter("health.gossip_merged")),
      suspect_depots(&reg.gauge("health.suspect_depots")) {}

}  // namespace lsl::health
