// Scorecard gossip: the line-oriented text codec `lsd_relay` peers use to
// exchange depot health judgements.
//
// A relay learns about its *own* upstreams the hard way — dial failures,
// stall watchdogs, collapsed relay rates — but sessions route through
// chains of depots, and the depot two hops away learns nothing until its
// own dial fails. Gossip closes that gap: each daemon exposes its rows
// over the admin socket (`gossip` command), peers poll and merge them with
// a configurable weight (judgement blending, never counter addition — see
// BasicHealthBoard::merge for the double-count argument).
//
// Wire format (one row per line, space-separated, `#`-prefixed comments
// ignored, documented in docs/HEALTH.md):
//
//   h1 <depot> <state> <score> <ewma_bps> <failures> <successes> <timeouts>
//
// `h1` is the version tag; unknown tags are skipped so the protocol can
// grow. Depot names are host:port or topology identifiers — never spaces.
#pragma once

#include <string>
#include <vector>

#include "health/board.hpp"

namespace lsl::health {

/// Render rows in gossip wire format, one `h1` line per depot.
std::string encode_gossip(const std::vector<DepotHealth>& rows);

/// Parse gossip text; malformed or unknown-version lines are skipped
/// (gossip is advisory — a bad peer must never take the daemon down).
std::vector<DepotHealth> decode_gossip(const std::string& text);

/// Merge scorecard rows from several shards (or several polls) into one
/// view: same-name rows keep the worst state, the minimum score, and the
/// sum of event counters. Used by ShardedLsd to present one fleet row set
/// over the admin socket.
std::vector<DepotHealth> merge_rows(
    const std::vector<std::vector<DepotHealth>>& shards);

}  // namespace lsl::health
