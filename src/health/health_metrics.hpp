// Health-plane instruments.
//
// Like the fault/pool/live bundles, health metrics are daemon-global flat
// names (`health.*`): one daemon, one health board, one set of
// instruments. Every name registered here must appear in
// docs/OBSERVABILITY.md — the `health-metrics-docs` rule of tools/lsl_lint
// enforces that for any `health.` string literal in this directory.
#pragma once

#include "metrics/metrics.hpp"

namespace lsl::health {

/// Pre-resolved health-plane instruments (see the metrics bundle pattern in
/// src/metrics/instruments.hpp: resolve once, hot path touches atomics).
struct HealthMetrics {
  explicit HealthMetrics(metrics::Registry& reg);

  metrics::Counter* transitions;        ///< state changes, either direction
  metrics::Counter* demotions;          ///< transitions toward dead
  metrics::Counter* promotions;         ///< transitions toward healthy
  metrics::Counter* admission_refused;  ///< placements refused on health
  metrics::Counter* migrations;         ///< live sessions proactively moved
  metrics::Counter* gossip_merged;      ///< peer scorecard rows folded in
  metrics::Gauge* suspect_depots;       ///< depots currently suspect-or-worse

  void on_transition(bool promotion) {
    transitions->inc();
    if (promotion) {
      promotions->inc();
    } else {
      demotions->inc();
    }
  }
  void on_admission_refused() { admission_refused->inc(); }
  void on_migration() { migrations->inc(); }
  void on_gossip_merged() { gossip_merged->inc(); }
};

}  // namespace lsl::health
