#include "health/gossip.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace lsl::health {

namespace {

// Scores travel with fixed precision so encode/decode round-trips are
// stable across locales and platforms.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

std::string encode_gossip(const std::vector<DepotHealth>& rows) {
  std::ostringstream out;
  for (const DepotHealth& r : rows) {
    out << "h1 " << r.name << ' ' << static_cast<unsigned>(r.state) << ' '
        << format_double(r.score) << ' ' << format_double(r.ewma_bps) << ' '
        << r.failures << ' ' << r.successes << ' ' << r.timeouts << '\n';
  }
  return out.str();
}

std::vector<DepotHealth> decode_gossip(const std::string& text) {
  std::vector<DepotHealth> rows;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag != "h1") continue;  // unknown version: skip, don't fail
    DepotHealth r;
    unsigned state = 0;
    if (!(ls >> r.name >> state >> r.score >> r.ewma_bps >> r.failures >>
          r.successes >> r.timeouts)) {
      continue;  // malformed row: advisory data, drop it
    }
    if (state > static_cast<unsigned>(DepotState::kDead)) continue;
    r.state = static_cast<DepotState>(state);
    r.score = std::clamp(r.score, 0.0, 1.0);
    rows.push_back(std::move(r));
  }
  return rows;
}

std::vector<DepotHealth> merge_rows(
    const std::vector<std::vector<DepotHealth>>& shards) {
  std::map<std::string, DepotHealth> merged;
  for (const auto& shard : shards) {
    for (const DepotHealth& r : shard) {
      auto [it, fresh] = merged.try_emplace(r.name, r);
      if (fresh) continue;
      DepotHealth& m = it->second;
      // Pessimistic view: any shard seeing trouble is trouble.
      m.state = std::max(m.state, r.state);
      m.score = std::min(m.score, r.score);
      if (m.ewma_bps == 0.0) {
        m.ewma_bps = r.ewma_bps;
      } else if (r.ewma_bps > 0.0) {
        m.ewma_bps = std::min(m.ewma_bps, r.ewma_bps);
      }
      m.fail_streak = std::max(m.fail_streak, r.fail_streak);
      m.successes += r.successes;
      m.failures += r.failures;
      m.timeouts += r.timeouts;
      m.pressure_episodes += r.pressure_episodes;
      m.parks += r.parks;
      m.salvages += r.salvages;
      m.transitions += r.transitions;
      m.last_update_ms = std::max(m.last_update_ms, r.last_update_ms);
    }
  }
  std::vector<DepotHealth> out;
  out.reserve(merged.size());
  for (auto& [name, r] : merged) out.push_back(std::move(r));
  return out;
}

}  // namespace lsl::health
