// The depot health plane: a per-depot scorecard shared verbatim by the
// simulator and the posix daemon.
//
// The paper picks depots once, at session start, from static NWS forecasts;
// a fleet serving heavy traffic needs placement to track depot health
// *continuously*. A HealthBoard folds the liveness signals the rest of the
// repository already emits — observed relay rate (`live.slowest_relay_bps`),
// pool-pressure episodes (`pool.pressure_episodes`), failure/timeout streaks
// (`fault.*` / `recovery.*`), park/salvage counts — into one score per depot
// and a hysteretic state machine:
//
//   healthy -> degraded -> suspect -> dead     (demotions, score falling)
//   dead -> suspect -> degraded -> healthy     (promotions, score recovering)
//
// Every observation moves the state at most ONE step (hysteresis is monotone
// per observer — the model-checker scenario `health_transitions` explores
// this exhaustively), and promotion thresholds sit strictly above demotion
// thresholds so a score oscillating inside the band cannot flap the state.
// Decay is deterministic: scores relax toward a neutral value as a pure
// function of caller-supplied timestamps (simulated or steady-clock
// milliseconds) — no wall-clock reads, no hidden RNG — so a seeded sim run
// replays bit-for-bit and, with the plane disabled, same-seed metric
// exports stay byte-identical (the repository's guarded invariant).
//
// Written over the `Sync` policy seam (src/check/shim.hpp):
// `HealthBoard` = BasicHealthBoard<StdSync> is the production alias the
// daemon's gossip thread and admin snapshots share; the model checker
// instantiates BasicHealthBoard<ModelSync> and enumerates interleavings.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "check/shim.hpp"
#include "health/health_metrics.hpp"

namespace lsl::health {

/// The hysteretic depot states, ordered from best to worst. `kDegraded`
/// depots still admit sessions (the selector spreads load away from them);
/// `kSuspect` and `kDead` depots are refused placement.
enum class DepotState : std::uint8_t {
  kHealthy = 0,
  kDegraded = 1,
  kSuspect = 2,
  kDead = 3,
};

inline const char* to_string(DepotState s) {
  switch (s) {
    case DepotState::kHealthy:
      return "healthy";
    case DepotState::kDegraded:
      return "degraded";
    case DepotState::kSuspect:
      return "suspect";
    case DepotState::kDead:
      return "dead";
  }
  return "unknown";
}

/// Scoring and hysteresis knobs. Scores live in [0, 1]; a fresh depot
/// starts at 1.0. Every demotion threshold sits strictly below the
/// corresponding promotion threshold — that gap is the hysteresis band.
struct HealthConfig {
  // Score deltas per observation.
  double fail_penalty = 0.25;      ///< dial failure / relay error
  double timeout_penalty = 0.20;   ///< stall-watchdog / deadline expiry
  double pressure_penalty = 0.10;  ///< pool-pressure episode
  double park_penalty = 0.05;      ///< session parked (upstream died there)
  double success_reward = 0.15;    ///< relay completed cleanly

  /// EWMA gain for the observed-bps series.
  double ewma_alpha = 0.3;
  /// Observed EWMA bps below this is a collapse (scored like a timeout,
  /// without extending the failure streak). 0 disables collapse scoring.
  double collapse_bps = 0.0;

  // Demotion thresholds (state worsens when score falls to or below).
  double demote_degraded = 0.60;
  double demote_suspect = 0.35;
  double demote_dead = 0.10;
  // Promotion thresholds (state improves when score rises to or above).
  double promote_healthy = 0.75;
  double promote_degraded = 0.55;
  double promote_suspect = 0.30;

  /// Consecutive failures/timeouts that force the target state to kDead
  /// regardless of score.
  std::uint32_t dead_streak = 4;

  /// Deterministic decay: the score relaxes toward `neutral_score` with
  /// this half-life (milliseconds of caller-supplied time). 0 disables
  /// decay — scores then move only on observations. Decay is what re-admits
  /// a dead depot: once the score drifts back above promote_suspect, the
  /// next tick steps it to suspect and probe successes walk it home.
  std::uint64_t decay_half_life_ms = 10'000;
  double neutral_score = 0.70;
};

/// One depot's scorecard row — the snapshot the admin socket exports and
/// the gossip protocol ships.
struct DepotHealth {
  std::string name;
  DepotState state = DepotState::kHealthy;
  double score = 1.0;
  double ewma_bps = 0.0;
  std::uint32_t fail_streak = 0;
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t pressure_episodes = 0;
  std::uint64_t parks = 0;
  std::uint64_t salvages = 0;
  std::uint64_t transitions = 0;
  std::uint64_t last_update_ms = 0;
};

/// What one observation did to the depot's state — the unit the
/// model-checker invariants are phrased over.
struct HealthEffect {
  DepotState before = DepotState::kHealthy;
  DepotState after = DepotState::kHealthy;
  bool transitioned() const { return before != after; }
  /// Levels moved; hysteresis is monotone, so this is always <= 1.
  int steps() const {
    const int d = static_cast<int>(after) - static_cast<int>(before);
    return d < 0 ? -d : d;
  }
};

template <typename Sync>
class BasicHealthBoard {
 public:
  explicit BasicHealthBoard(HealthConfig cfg = {}) : cfg_(cfg) {}

  BasicHealthBoard(const BasicHealthBoard&) = delete;
  BasicHealthBoard& operator=(const BasicHealthBoard&) = delete;

  /// Attach (or detach) a metrics bundle; transition/gossip counters bump
  /// through it. Call before concurrent use.
  void set_metrics(HealthMetrics* m) { metrics_ = m; }

  const HealthConfig& config() const { return cfg_; }

  // --- Observers (each applies decay, scores, then steps the state) -------

  HealthEffect observe_success(const std::string& name, std::uint64_t now_ms) {
    typename Sync::lock_guard lock(mu_);
    Entry& e = touch(name, now_ms);
    ++e.row.successes;
    e.row.fail_streak = 0;
    bump(e, cfg_.success_reward);
    return step(e);
  }

  /// Fold one observed delivery rate (bits/second) into the depot's EWMA.
  /// A rate above the collapse floor counts as progress (resets the
  /// failure streak); at or below it, the depot is scored like a timeout.
  HealthEffect observe_bps(const std::string& name, double bps,
                           std::uint64_t now_ms) {
    typename Sync::lock_guard lock(mu_);
    Entry& e = touch(name, now_ms);
    e.row.ewma_bps = e.bps_samples == 0
                         ? bps
                         : cfg_.ewma_alpha * bps +
                               (1.0 - cfg_.ewma_alpha) * e.row.ewma_bps;
    ++e.bps_samples;
    if (cfg_.collapse_bps > 0.0 && e.row.ewma_bps <= cfg_.collapse_bps) {
      bump(e, -cfg_.timeout_penalty);
    } else {
      e.row.fail_streak = 0;
      bump(e, cfg_.success_reward * 0.5);
    }
    return step(e);
  }

  HealthEffect observe_failure(const std::string& name, std::uint64_t now_ms) {
    typename Sync::lock_guard lock(mu_);
    Entry& e = touch(name, now_ms);
    ++e.row.failures;
    ++e.row.fail_streak;
    bump(e, -cfg_.fail_penalty);
    return step(e);
  }

  HealthEffect observe_timeout(const std::string& name, std::uint64_t now_ms) {
    typename Sync::lock_guard lock(mu_);
    Entry& e = touch(name, now_ms);
    ++e.row.timeouts;
    ++e.row.fail_streak;
    bump(e, -cfg_.timeout_penalty);
    return step(e);
  }

  HealthEffect observe_pressure(const std::string& name,
                                std::uint64_t now_ms) {
    typename Sync::lock_guard lock(mu_);
    Entry& e = touch(name, now_ms);
    ++e.row.pressure_episodes;
    bump(e, -cfg_.pressure_penalty);
    return step(e);
  }

  HealthEffect observe_park(const std::string& name, std::uint64_t now_ms) {
    typename Sync::lock_guard lock(mu_);
    Entry& e = touch(name, now_ms);
    ++e.row.parks;
    bump(e, -cfg_.park_penalty);
    return step(e);
  }

  HealthEffect observe_salvage(const std::string& name,
                               std::uint64_t now_ms) {
    typename Sync::lock_guard lock(mu_);
    Entry& e = touch(name, now_ms);
    ++e.row.salvages;
    return step(e);
  }

  /// Apply decay to every known depot and re-evaluate each state (one step
  /// at most, as ever). This is what lets an idle dead depot drift back to
  /// suspect and become probe-eligible again.
  void tick(std::uint64_t now_ms) {
    typename Sync::lock_guard lock(mu_);
    for (auto& [name, e] : entries_) {
      touch_entry(e, now_ms);
      step(e);
    }
  }

  /// Fold a remote scorecard row (gossip) into the local one: the local
  /// score and EWMA shift toward the remote values by `weight` in (0, 1].
  /// Remote event counters are NOT added (they would double-count when
  /// gossip cycles); only the judgement is blended.
  HealthEffect merge(const DepotHealth& remote, double weight,
                     std::uint64_t now_ms) {
    typename Sync::lock_guard lock(mu_);
    Entry& e = touch(remote.name, now_ms);
    const double w = std::clamp(weight, 0.0, 1.0);
    e.row.score = clamp01(e.row.score + w * (remote.score - e.row.score));
    if (remote.ewma_bps > 0.0) {
      e.row.ewma_bps = e.bps_samples == 0
                           ? remote.ewma_bps
                           : e.row.ewma_bps +
                                 w * (remote.ewma_bps - e.row.ewma_bps);
      ++e.bps_samples;
    }
    ++gossip_merged_;
    if (metrics_ != nullptr) metrics_->on_gossip_merged();
    return step(e);
  }

  // --- Queries -------------------------------------------------------------

  /// Unknown depots are healthy: the plane refuses placement only on
  /// evidence, never on ignorance.
  DepotState state(const std::string& name) const {
    typename Sync::lock_guard lock(mu_);
    const auto it = entries_.find(name);
    return it == entries_.end() ? DepotState::kHealthy : it->second.row.state;
  }

  double score(const std::string& name) const {
    typename Sync::lock_guard lock(mu_);
    const auto it = entries_.find(name);
    return it == entries_.end() ? 1.0 : it->second.row.score;
  }

  /// Placement admission: healthy and degraded depots accept sessions;
  /// suspect and dead ones are refused.
  bool admissible(const std::string& name) const {
    return state(name) <= DepotState::kDegraded;
  }

  /// Count a placement refused because of this board's verdict.
  void note_admission_refused() {
    typename Sync::lock_guard lock(mu_);
    ++admission_refused_;
    if (metrics_ != nullptr) metrics_->on_admission_refused();
  }

  /// Count a live session proactively re-routed off a suspect depot.
  void note_migration() {
    typename Sync::lock_guard lock(mu_);
    ++migrations_;
    if (metrics_ != nullptr) metrics_->on_migration();
  }

  /// Snapshot one row; a default row (healthy, score 1) for unknown names.
  DepotHealth row(const std::string& name) const {
    typename Sync::lock_guard lock(mu_);
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      DepotHealth r;
      r.name = name;
      return r;
    }
    return it->second.row;
  }

  /// Snapshot every row, sorted by depot name (the map order) — the admin
  /// socket's `health` per-depot export and the gossip payload.
  std::vector<DepotHealth> rows() const {
    typename Sync::lock_guard lock(mu_);
    std::vector<DepotHealth> out;
    out.reserve(entries_.size());
    for (const auto& [name, e] : entries_) out.push_back(e.row);
    return out;
  }

  std::uint64_t transitions() const {
    typename Sync::lock_guard lock(mu_);
    return transitions_;
  }
  std::uint64_t admission_refused() const {
    typename Sync::lock_guard lock(mu_);
    return admission_refused_;
  }
  std::uint64_t migrations() const {
    typename Sync::lock_guard lock(mu_);
    return migrations_;
  }
  std::uint64_t gossip_merged() const {
    typename Sync::lock_guard lock(mu_);
    return gossip_merged_;
  }
  std::size_t depots() const {
    typename Sync::lock_guard lock(mu_);
    return entries_.size();
  }

 private:
  struct Entry {
    DepotHealth row;
    std::uint64_t bps_samples = 0;
  };

  static double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

  void bump(Entry& e, double delta) {
    e.row.score = clamp01(e.row.score + delta);
  }

  /// Find-or-create, then apply decay for the elapsed interval. Decay is a
  /// pure function of (score, dt, config) — deterministic under replay.
  Entry& touch(const std::string& name, std::uint64_t now_ms) {
    auto [it, fresh] = entries_.try_emplace(name);
    Entry& e = it->second;
    if (fresh) {
      e.row.name = name;
      e.row.last_update_ms = now_ms;
    }
    touch_entry(e, now_ms);
    return e;
  }

  void touch_entry(Entry& e, std::uint64_t now_ms) {
    if (now_ms <= e.row.last_update_ms) return;  // time never runs backward
    if (cfg_.decay_half_life_ms > 0) {
      const double dt =
          static_cast<double>(now_ms - e.row.last_update_ms);
      const double factor = std::exp2(
          -dt / static_cast<double>(cfg_.decay_half_life_ms));
      e.row.score = clamp01(cfg_.neutral_score +
                            (e.row.score - cfg_.neutral_score) * factor);
      // A quiet interval also lets a stale streak expire: decay is the
      // depot's way back in when no traffic probes it.
      if (factor < 0.5) e.row.fail_streak = 0;
    }
    e.row.last_update_ms = now_ms;
  }

  /// The state the score/streak argue for, ignoring hysteresis.
  DepotState target(const Entry& e) const {
    if (e.row.fail_streak >= cfg_.dead_streak ||
        e.row.score <= cfg_.demote_dead) {
      return DepotState::kDead;
    }
    if (e.row.score <= cfg_.demote_suspect) return DepotState::kSuspect;
    if (e.row.score <= cfg_.demote_degraded) return DepotState::kDegraded;
    return DepotState::kHealthy;
  }

  /// Move at most one level toward the target; promotions additionally
  /// require the score to clear the *promotion* threshold of the next
  /// better state (the hysteresis band holds otherwise).
  HealthEffect step(Entry& e) {
    HealthEffect eff;
    eff.before = e.row.state;
    const DepotState want = target(e);
    DepotState next = e.row.state;
    if (want > e.row.state) {
      next = static_cast<DepotState>(static_cast<std::uint8_t>(e.row.state) +
                                     1);
    } else if (want < e.row.state) {
      const double gate = e.row.state == DepotState::kDead
                              ? cfg_.promote_suspect
                          : e.row.state == DepotState::kSuspect
                              ? cfg_.promote_degraded
                              : cfg_.promote_healthy;
      if (e.row.score >= gate) {
        next = static_cast<DepotState>(
            static_cast<std::uint8_t>(e.row.state) - 1);
      }
    }
    if (next != e.row.state) {
      e.row.state = next;
      ++e.row.transitions;
      ++transitions_;
      if (metrics_ != nullptr) {
        metrics_->on_transition(/*promotion=*/next < eff.before);
        double suspect = 0;
        for (const auto& [n, other] : entries_) {
          if (other.row.state >= DepotState::kSuspect) suspect += 1.0;
        }
        metrics_->suspect_depots->set(suspect);
      }
    }
    eff.after = e.row.state;
    if constexpr (Sync::kChecked) {
      check::model_assert(eff.steps() <= 1,
                          "health: a single observation moved the state "
                          "more than one level");
    }
    return eff;
  }

  HealthConfig cfg_;
  mutable typename Sync::mutex mu_;
  std::map<std::string, Entry> entries_;
  std::uint64_t transitions_ = 0;
  std::uint64_t admission_refused_ = 0;
  std::uint64_t migrations_ = 0;
  std::uint64_t gossip_merged_ = 0;
  HealthMetrics* metrics_ = nullptr;
};

/// Production alias: std:: primitives, shared by the daemon's epoll loop,
/// its gossip poller, and admin snapshots.
using HealthBoard = BasicHealthBoard<check::StdSync>;

}  // namespace lsl::health
