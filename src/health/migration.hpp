// Proactive mid-transfer re-selection policy.
//
// The fault machinery (src/fault) reacts: a depot dies, the retry budget
// burns, the reroute policy picks a new chain, the session resumes from
// its acked floor. MigrationPolicy acts *before* the budget fires: when a
// live session's interior depot crosses into suspect on the HealthBoard
// (stall watchdog, pressure episode, bps collapse), the source re-routes
// immediately, resuming from the exact acked floor the sink reports.
// Migration composes with — never replaces — park/salvage/resume: if the
// move itself fails, the ordinary retry path takes over.
//
// The policy is pure bookkeeping over caller-supplied time (deterministic
// under seeded replay) and defaults OFF, preserving the repository's
// byte-identical same-seed export invariant.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "health/board.hpp"

namespace lsl::health {

struct MigrationConfig {
  /// Master switch; everything below is inert while false.
  bool enabled = false;
  /// A depot at or past this state triggers migration (suspect by
  /// default: degraded depots are spread away from, not evacuated).
  DepotState trigger = DepotState::kSuspect;
  /// Hard cap on migrations per session — a flapping board must not turn
  /// one transfer into a route carousel.
  std::uint32_t max_migrations = 2;
  /// Minimum quiet time between two migrations of the same session.
  std::uint64_t cooldown_ms = 500;
};

/// Per-session migration trigger. One instance per live session; the
/// drivers (exp::run_chaos, tools/lsl_load) poll it against the board.
class MigrationPolicy {
 public:
  MigrationPolicy(const HealthBoard* board, MigrationConfig cfg)
      : board_(board), cfg_(cfg) {}

  const MigrationConfig& config() const { return cfg_; }
  std::uint32_t migrations() const { return migrations_; }

  /// If any interior depot of the live route has crossed the trigger
  /// state (and budget/cooldown allow), return its name; empty string
  /// otherwise. Does NOT count the migration — call note_migrated() once
  /// the re-route is actually issued, so a failed attempt can retry.
  std::string should_migrate(const std::vector<std::string>& interior_depots,
                             std::uint64_t now_ms) const {
    if (!cfg_.enabled || board_ == nullptr) return {};
    if (migrations_ >= cfg_.max_migrations) return {};
    if (last_migration_ms_ != 0 &&
        now_ms < last_migration_ms_ + cfg_.cooldown_ms) {
      return {};
    }
    for (const std::string& d : interior_depots) {
      if (board_->state(d) >= cfg_.trigger) return d;
    }
    return {};
  }

  void note_migrated(std::uint64_t now_ms) {
    ++migrations_;
    last_migration_ms_ = now_ms;
  }

 private:
  const HealthBoard* board_;
  MigrationConfig cfg_;
  std::uint32_t migrations_ = 0;
  std::uint64_t last_migration_ms_ = 0;
};

}  // namespace lsl::health
