// Span-based session tracing: the per-flow complement to src/metrics.
//
// Metrics aggregate ("how many bytes did lsd.9001 relay?"); spans attribute
// ("where did session 7f3a spend its time across the chain?"). A source
// mints a 64-bit trace id, the wire header carries it hop to hop (see
// src/lsl/wire.hpp, version 2), and every depot a session crosses records
// its lifecycle phases — accept, header read, dial, stream windows,
// park/salvage/resume, drain — against that id. tools/lsl_spans joins the
// per-depot dumps into one end-to-end timeline.
//
// The subsystem follows the repo's shared-substrate rules:
//
//  * one implementation serves the simulator and the posix daemon; the
//    tracer is clock-agnostic (callers pass seconds in their own timebase,
//    simulated or wall);
//  * default-off: nothing records unless a Tracer is attached, and with
//    tracing off same-seed sim metric exports stay byte-identical
//    (tested in tests/span_test.cpp);
//  * O(1) hot path: records land in a bounded lock-free ring (the
//    **flight recorder**) that overwrites the oldest entries, so a
//    long-running daemon keeps the recent past at fixed memory cost and a
//    crash dump is always available (post-mortem flight recording).
//
// Span names are static string literals namespaced `span.*`; the
// `span-names-docs` lint rule ties every name used in code to the span
// catalogue in docs/OBSERVABILITY.md.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "check/shim.hpp"

namespace lsl::span {

// Catalogued span names, defined once so the simulator and the posix
// daemon emit byte-identical vocabularies. Every name here must have a row
// in docs/OBSERVABILITY.md's span catalogue (lint rule `span-names-docs`).
inline constexpr const char* kSpanAccept = "span.accept";
inline constexpr const char* kSpanHeaderRead = "span.header_read";
inline constexpr const char* kSpanDial = "span.dial";
inline constexpr const char* kSpanStreamWindow = "span.stream_window";
inline constexpr const char* kSpanPark = "span.park";
inline constexpr const char* kSpanSalvage = "span.salvage";
inline constexpr const char* kSpanResume = "span.resume";
inline constexpr const char* kSpanDrain = "span.drain";

// Lane-indexed stream-window names for striped sessions (wire version 3):
// each lane's windows carry its stripe id so tools/lsl_spans can render a
// striped transfer as parallel lanes. SpanRecord::name must be a static
// literal, so the sixteen possible lanes (wire kMaxStripes) are enumerated
// rather than formatted; every entry is catalogued in OBSERVABILITY.md.
inline constexpr const char* kSpanStreamWindowLane[] = {
    "span.stream_window.s0",  "span.stream_window.s1",
    "span.stream_window.s2",  "span.stream_window.s3",
    "span.stream_window.s4",  "span.stream_window.s5",
    "span.stream_window.s6",  "span.stream_window.s7",
    "span.stream_window.s8",  "span.stream_window.s9",
    "span.stream_window.s10", "span.stream_window.s11",
    "span.stream_window.s12", "span.stream_window.s13",
    "span.stream_window.s14", "span.stream_window.s15",
};

/// The stream-window span name for a relay: lane-indexed when the session
/// is striped (stripe_lane in [0, 16)), the bare name otherwise.
inline constexpr const char* stream_window_name(int stripe_lane) {
  return stripe_lane >= 0 && stripe_lane < 16
             ? kSpanStreamWindowLane[stripe_lane]
             : kSpanStreamWindow;
}

/// Stream progress granularity: one span.stream_window closes per this
/// many relayed bytes (plus a final partial window at session end), so the
/// hot path pays one comparison per chunk regardless of transfer size.
inline constexpr std::uint64_t kStreamWindowBytes = 1ull << 20;

/// One recorded span: a named interval (or instant, when end == start) of a
/// traced session's life on one node. Fixed-size and trivially copyable so
/// the flight recorder's slots never allocate; `name` must be a static
/// string literal (the catalogued `span.*` names).
struct SpanRecord {
  std::uint64_t trace_id = 0;   ///< wire-carried join key (0 = untraced)
  const char* name = nullptr;   ///< static literal, e.g. "span.dial"
  double start = 0.0;           ///< seconds, caller's timebase
  double end = 0.0;             ///< seconds; == start for instant marks
  std::uint64_t bytes = 0;      ///< byte-progress mark (stream windows)
};

/// Bounded lock-free ring of SpanRecord slots — the flight recorder.
///
/// Writers claim a slot with one fetch_add and one exchange, fill it, and
/// release it with one store: O(1), allocation-free, and safe from any
/// number of threads. When the ring laps itself the oldest records are
/// overwritten (that is the point: keep the recent past, always). The one
/// sacrifice contention can force is a *drop*: if two writers land on the
/// same slot simultaneously the loser abandons the write and bumps
/// dropped() rather than spin — the hot path never waits.
///
/// snapshot() is for quiescent readers: the owning event-loop thread, a
/// post-mortem dump, or tests after joining writers. It skips any slot
/// still mid-write, so calling it concurrently is safe but may miss the
/// newest records.
///
/// Templated over a check::Sync policy: `FlightRecorder` below is the
/// production std::atomic instantiation; the model-check suite explores
/// the claim/fill/release slot protocol under
/// BasicFlightRecorder<check::ModelSync>, with the kChecked invariant that
/// a claimed slot's seq never changes under the claim holder.
template <typename Sync>
class BasicFlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit BasicFlightRecorder(std::size_t capacity = kDefaultCapacity)
      : capacity_(std::max<std::size_t>(capacity, 2)),
        slots_(std::make_unique<Slot[]>(capacity_)) {}

  BasicFlightRecorder(const BasicFlightRecorder&) = delete;
  BasicFlightRecorder& operator=(const BasicFlightRecorder&) = delete;

  /// Record `r` (O(1), lock-free, never blocks). May drop under slot
  /// contention; see dropped().
  void record(const SpanRecord& r) noexcept {
    const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[ticket % capacity_];
    // Claim the slot. exchange() is the arbiter: exactly one writer sees the
    // previous published value; a second writer lapping onto the same slot
    // mid-write sees kSlotBusy and abandons (a counted drop) instead of
    // spinning — the hot path never waits.
    const std::uint64_t prev =
        s.seq.exchange(kSlotBusy, std::memory_order_acquire);
    if (prev == kSlotBusy) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    s.rec = r;
    if constexpr (Sync::kChecked) {
      // Publication must find the slot exactly as we claimed it: anyone
      // who wrote seq while we held the claim read/wrote `rec` racily.
      const std::uint64_t held = s.seq.exchange(
          ticket + kSlotFirstSeq, std::memory_order_release);
      check::model_assert(held == kSlotBusy,
                          "recorder slot seq changed while claimed");
    } else {
      s.seq.store(ticket + kSlotFirstSeq, std::memory_order_release);
    }
  }

  /// Copy the retained records into `out` (cleared first), oldest first.
  void snapshot(std::vector<SpanRecord>& out) const {
    out.clear();
    // Read through the same claim protocol as record(): ownership of the
    // slot, not a seqlock, guards `rec`, so a concurrent snapshot is a data
    // race with nobody — at worst a racing writer drops onto the claimed
    // slot, same as writer/writer contention.
    std::vector<std::pair<std::uint64_t, SpanRecord>> kept;
    kept.reserve(capacity_);
    for (std::size_t i = 0; i < capacity_; ++i) {
      Slot& s = slots_[i];
      const std::uint64_t seq =
          s.seq.exchange(kSlotBusy, std::memory_order_acquire);
      if (seq == kSlotEmpty) {
        s.seq.store(kSlotEmpty, std::memory_order_release);
        continue;
      }
      if (seq == kSlotBusy) continue;  // a writer holds it; skip
      kept.emplace_back(seq, s.rec);
      s.seq.store(seq, std::memory_order_release);
    }
    std::sort(kept.begin(), kept.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    out.reserve(kept.size());
    for (const auto& [seq, rec] : kept) out.push_back(rec);
  }

  std::size_t capacity() const noexcept { return capacity_; }
  /// Total record() calls, including overwritten and dropped ones.
  std::uint64_t recorded() const noexcept {
    return next_.load(std::memory_order_relaxed);
  }
  /// Records abandoned to slot contention (not overwrites — those are by
  /// design and not counted).
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  // Slot protocol: seq == kSlotEmpty (never written), kSlotBusy (a writer
  // holds it), else ticket + kSlotFirstSeq (published; larger = newer).
  static constexpr std::uint64_t kSlotEmpty = 0;
  static constexpr std::uint64_t kSlotBusy = 1;
  static constexpr std::uint64_t kSlotFirstSeq = 2;

  struct Slot {
    typename Sync::template atomic<std::uint64_t> seq{kSlotEmpty};
    SpanRecord rec;
  };

  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  typename Sync::template atomic<std::uint64_t> next_{0};
  typename Sync::template atomic<std::uint64_t> dropped_{0};
};

// The production instantiation is compiled once in span.cpp.
extern template class BasicFlightRecorder<check::StdSync>;

/// Production alias — the pre-seam name every call site uses.
using FlightRecorder = BasicFlightRecorder<check::StdSync>;

/// A named span source: one per process/depot, owning a flight recorder.
///
/// The name identifies the node in merged timelines ("lsd.9001",
/// "depot2"); the merge tool keys hops on it. Attach a Tracer* to an Lsd
/// or DepotApp the same way a metrics bundle is attached; nullptr (the
/// default) keeps tracing off with zero cost beyond one branch.
class Tracer {
 public:
  explicit Tracer(std::string source,
                  std::size_t capacity = FlightRecorder::kDefaultCapacity)
      : source_(std::move(source)), recorder_(capacity) {}

  const std::string& source() const { return source_; }
  FlightRecorder& recorder() { return recorder_; }
  const FlightRecorder& recorder() const { return recorder_; }

  /// Record a completed interval span.
  void emit(std::uint64_t trace_id, const char* name, double start,
            double end, std::uint64_t bytes = 0) noexcept {
    recorder_.record({trace_id, name, start, end, bytes});
  }

  /// Record an instant mark (end == start).
  void mark(std::uint64_t trace_id, const char* name, double at,
            std::uint64_t bytes = 0) noexcept {
    recorder_.record({trace_id, name, at, at, bytes});
  }

 private:
  std::string source_;
  FlightRecorder recorder_;
};

/// Dump the recorder's retained spans as JSONL, one record per line:
///   {"trace":"00000000075bcd15","span":"span.dial","src":"lsd.9001",
///    "start":0.00123,"end":0.00345,"bytes":0}
/// The format tools/lsl_spans merges. Caller rules follow snapshot().
void dump_jsonl(const Tracer& tracer, std::ostream& out);

/// dump_jsonl to a file; false on I/O error.
bool dump_file(const Tracer& tracer, const std::string& path);

/// Register `tracer` for a post-mortem dump to `path` when a contract
/// aborts (util::contract_fail / transition_fail): the flight recorder's
/// last-moments view survives the crash. Pass nullptr to unregister.
/// One registration per process; the hook is async-signal-unsafe by
/// design (contract aborts are synchronous, not signal handlers).
void install_post_mortem(const Tracer* tracer, std::string path);

/// Mint a trace id from a seed; never returns 0 (0 means "untraced" on
/// the wire). Deterministic — the simulator derives ids from run seeds so
/// traced runs stay reproducible.
std::uint64_t mint_trace_id(std::uint64_t seed) noexcept;

}  // namespace lsl::span
