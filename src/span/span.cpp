#include "span/span.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "util/contract.hpp"

namespace lsl::span {

// The ring itself lives in span.hpp as a Sync-policy template; compile the
// production instantiation here once.
template class BasicFlightRecorder<check::StdSync>;

namespace {

std::string jnum(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

void hex16(std::uint64_t v, char out[17]) {
  static const char digits[] = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    out[i] = digits[v & 0xf];
    v >>= 4;
  }
  out[16] = '\0';
}

}  // namespace

void dump_jsonl(const Tracer& tracer, std::ostream& out) {
  std::vector<SpanRecord> records;
  tracer.recorder().snapshot(records);
  char trace[17];
  for (const SpanRecord& r : records) {
    hex16(r.trace_id, trace);
    out << "{\"trace\":\"" << trace << "\",\"span\":\""
        << (r.name ? r.name : "span.unknown") << "\",\"src\":\""
        << tracer.source() << "\",\"start\":" << jnum(r.start)
        << ",\"end\":" << jnum(r.end) << ",\"bytes\":" << r.bytes << "}\n";
  }
}

bool dump_file(const Tracer& tracer, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  dump_jsonl(tracer, out);
  return out.good();
}

namespace {

// Post-mortem registration. Written once at startup (install_post_mortem),
// read by the contract-abort hook; the process is already dying when the
// hook runs, so plain statics suffice.
const Tracer* g_post_mortem_tracer = nullptr;
std::string g_post_mortem_path;

void post_mortem_hook() noexcept {
  const Tracer* t = g_post_mortem_tracer;
  if (!t) return;
  g_post_mortem_tracer = nullptr;  // a second abort must not re-enter
  if (dump_file(*t, g_post_mortem_path)) {
    std::fprintf(stderr, "lsl: flight recorder dumped to %s\n",
                 g_post_mortem_path.c_str());
  }
}

}  // namespace

void install_post_mortem(const Tracer* tracer, std::string path) {
  g_post_mortem_tracer = tracer;
  g_post_mortem_path = std::move(path);
  util::set_contract_abort_hook(tracer ? &post_mortem_hook : nullptr);
}

std::uint64_t mint_trace_id(std::uint64_t seed) noexcept {
  // splitmix64: full-period mixing so per-session seeds (however regular)
  // yield well-spread ids; 0 is reserved for "untraced" on the wire.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z ? z : 0x9e3779b97f4a7c15ull;
}

}  // namespace lsl::span
