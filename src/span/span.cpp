#include "span/span.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "util/contract.hpp"

namespace lsl::span {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 2)),
      slots_(std::make_unique<Slot[]>(capacity_)) {}

void FlightRecorder::record(const SpanRecord& r) noexcept {
  const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[ticket % capacity_];
  // Claim the slot. exchange() is the arbiter: exactly one writer sees the
  // previous published value; a second writer lapping onto the same slot
  // mid-write sees kSlotBusy and abandons (a counted drop) instead of
  // spinning — the hot path never waits.
  const std::uint64_t prev = s.seq.exchange(kSlotBusy,
                                            std::memory_order_acquire);
  if (prev == kSlotBusy) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  s.rec = r;
  s.seq.store(ticket + kSlotFirstSeq, std::memory_order_release);
}

void FlightRecorder::snapshot(std::vector<SpanRecord>& out) const {
  out.clear();
  // Read through the same claim protocol as record(): ownership of the
  // slot, not a seqlock, guards `rec`, so a concurrent snapshot is a data
  // race with nobody — at worst a racing writer drops onto the claimed
  // slot, same as writer/writer contention.
  std::vector<std::pair<std::uint64_t, SpanRecord>> kept;
  kept.reserve(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    Slot& s = slots_[i];
    const std::uint64_t seq =
        s.seq.exchange(kSlotBusy, std::memory_order_acquire);
    if (seq == kSlotEmpty) {
      s.seq.store(kSlotEmpty, std::memory_order_release);
      continue;
    }
    if (seq == kSlotBusy) continue;  // a writer holds it; skip
    kept.emplace_back(seq, s.rec);
    s.seq.store(seq, std::memory_order_release);
  }
  std::sort(kept.begin(), kept.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out.reserve(kept.size());
  for (const auto& [seq, rec] : kept) out.push_back(rec);
}

namespace {

std::string jnum(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

void hex16(std::uint64_t v, char out[17]) {
  static const char digits[] = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    out[i] = digits[v & 0xf];
    v >>= 4;
  }
  out[16] = '\0';
}

}  // namespace

void dump_jsonl(const Tracer& tracer, std::ostream& out) {
  std::vector<SpanRecord> records;
  tracer.recorder().snapshot(records);
  char trace[17];
  for (const SpanRecord& r : records) {
    hex16(r.trace_id, trace);
    out << "{\"trace\":\"" << trace << "\",\"span\":\""
        << (r.name ? r.name : "span.unknown") << "\",\"src\":\""
        << tracer.source() << "\",\"start\":" << jnum(r.start)
        << ",\"end\":" << jnum(r.end) << ",\"bytes\":" << r.bytes << "}\n";
  }
}

bool dump_file(const Tracer& tracer, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  dump_jsonl(tracer, out);
  return out.good();
}

namespace {

// Post-mortem registration. Written once at startup (install_post_mortem),
// read by the contract-abort hook; the process is already dying when the
// hook runs, so plain statics suffice.
const Tracer* g_post_mortem_tracer = nullptr;
std::string g_post_mortem_path;

void post_mortem_hook() noexcept {
  const Tracer* t = g_post_mortem_tracer;
  if (!t) return;
  g_post_mortem_tracer = nullptr;  // a second abort must not re-enter
  if (dump_file(*t, g_post_mortem_path)) {
    std::fprintf(stderr, "lsl: flight recorder dumped to %s\n",
                 g_post_mortem_path.c_str());
  }
}

}  // namespace

void install_post_mortem(const Tracer* tracer, std::string path) {
  g_post_mortem_tracer = tracer;
  g_post_mortem_path = std::move(path);
  util::set_contract_abort_hook(tracer ? &post_mortem_hook : nullptr);
}

std::uint64_t mint_trace_id(std::uint64_t seed) noexcept {
  // splitmix64: full-period mixing so per-session seeds (however regular)
  // yield well-spread ids; 0 is reserved for "untraced" on the wire.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z ? z : 0x9e3779b97f4a7c15ull;
}

}  // namespace lsl::span
