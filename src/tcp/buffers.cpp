#include "tcp/buffers.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

namespace lsl::tcp {

// --- SendBuffer --------------------------------------------------------------

SendBuffer::SendBuffer(std::uint64_t capacity, bool real)
    : capacity_(capacity) {
  if (capacity_ == 0) throw std::invalid_argument("SendBuffer: zero capacity");
  if (real) ring_.resize(capacity_);
}

std::size_t SendBuffer::write(std::span<const std::uint8_t> data) {
  assert(real() && "write() requires real mode");
  const std::uint64_t n =
      std::min<std::uint64_t>(data.size(), free_space());
  for (std::uint64_t i = 0; i < n; ++i) {
    ring_[(written_ + i) % capacity_] = data[i];
  }
  written_ += n;
  return static_cast<std::size_t>(n);
}

std::uint64_t SendBuffer::write_virtual(std::uint64_t n) {
  assert(!real() && "write_virtual() requires virtual mode");
  const std::uint64_t take = std::min(n, free_space());
  written_ += take;
  return take;
}

void SendBuffer::ack_to(std::uint64_t offset) {
  if (offset <= acked_) return;
  acked_ = std::min(offset, written_);
}

std::shared_ptr<const std::vector<std::uint8_t>> SendBuffer::slice(
    std::uint64_t offset, std::uint32_t len) const {
  if (!real()) return nullptr;
  assert(offset >= acked_ && offset + len <= written_);
  auto out = std::make_shared<std::vector<std::uint8_t>>(len);
  for (std::uint32_t i = 0; i < len; ++i) {
    (*out)[i] = ring_[(offset + i) % capacity_];
  }
  return out;
}

// --- RecvBuffer --------------------------------------------------------------

RecvBuffer::RecvBuffer(std::uint64_t capacity, bool real)
    : capacity_(capacity), real_(real) {
  if (capacity_ == 0) throw std::invalid_argument("RecvBuffer: zero capacity");
}

std::uint64_t RecvBuffer::window() const {
  const std::uint64_t used = (rcv_nxt_ - app_read_) + ooo_bytes_;
  return used >= capacity_ ? 0 : capacity_ - used;
}

bool RecvBuffer::insert(std::uint64_t offset, std::uint32_t len,
                        std::shared_ptr<const std::vector<std::uint8_t>> data) {
  std::uint64_t start = std::max(offset, rcv_nxt_);
  // Never buffer beyond the space we could ever have advertised; a correct
  // sender respects the window, so this only trims pathological input.
  std::uint64_t end = std::min(offset + len, app_read_ + capacity_);
  if (end <= start) {
    // Entirely duplicate (or empty): frontier unchanged.
    return false;
  }

  const std::uint64_t old_frontier = rcv_nxt_;

  // Gap-fill: walk existing chunks in [start, end) and insert only the
  // missing ranges, so chunks_ stays non-overlapping.
  auto it = chunks_.lower_bound(start);
  // A predecessor chunk may cover the beginning of our range.
  if (it != chunks_.begin()) {
    auto prev = std::prev(it);
    const std::uint64_t prev_end = prev->first + prev->second.len;
    if (prev_end > start) start = prev_end;
  }
  while (start < end) {
    std::uint64_t next_start = (it != chunks_.end()) ? it->first : end;
    if (next_start <= start) {
      // Existing chunk covers [next_start, ...); skip past it.
      start = std::max(start, it->first + it->second.len);
      ++it;
      continue;
    }
    const std::uint64_t gap_end = std::min(end, next_start);
    Chunk c;
    c.len = static_cast<std::uint32_t>(gap_end - start);
    if (real_) {
      if (!data) {
        throw std::invalid_argument("RecvBuffer: real mode requires payload");
      }
      c.data = data;
      c.trim_front = static_cast<std::uint32_t>(start - offset);
    }
    ooo_bytes_ += c.len;
    it = chunks_.emplace_hint(it, start, std::move(c));
    ++it;
    start = gap_end;
  }

  advance_frontier();
  return rcv_nxt_ != old_frontier;
}

void RecvBuffer::advance_frontier() {
  while (true) {
    const auto it = chunks_.find(rcv_nxt_);
    if (it == chunks_.end()) break;
    rcv_nxt_ += it->second.len;
    ooo_bytes_ -= it->second.len;
    // The chunk stays in the map until the application reads it.
  }
}

std::size_t RecvBuffer::read(std::span<std::uint8_t> out) {
  std::size_t copied = 0;
  while (copied < out.size() && app_read_ < rcv_nxt_) {
    // Find the chunk containing app_read_ (contiguity below the frontier
    // guarantees it exists).
    auto it = chunks_.upper_bound(app_read_);
    assert(it != chunks_.begin());
    --it;
    const std::uint64_t chunk_start = it->first;
    const Chunk& c = it->second;
    assert(chunk_start <= app_read_ && app_read_ < chunk_start + c.len);
    const std::uint64_t within = app_read_ - chunk_start;
    const std::uint64_t avail =
        std::min<std::uint64_t>(c.len - within, out.size() - copied);
    if (real_) {
      assert(c.data);
      std::memcpy(out.data() + copied,
                  c.data->data() + c.trim_front + within, avail);
    } else {
      // Virtual chunks read as zero bytes.
      std::memset(out.data() + copied, 0, avail);
    }
    copied += static_cast<std::size_t>(avail);
    app_read_ += avail;
    if (app_read_ >= chunk_start + c.len) chunks_.erase(it);
  }
  return copied;
}

std::optional<std::pair<std::uint64_t, std::uint64_t>>
RecvBuffer::ooo_block_containing(std::uint64_t offset) const {
  if (offset < rcv_nxt_) return std::nullopt;
  auto it = chunks_.upper_bound(offset);
  if (it == chunks_.begin()) return std::nullopt;
  --it;
  if (offset >= it->first + it->second.len) return std::nullopt;
  // Extend left across adjacent chunks.
  auto lo = it;
  while (lo != chunks_.begin()) {
    auto prev = std::prev(lo);
    if (prev->first + prev->second.len != lo->first) break;
    lo = prev;
  }
  // Extend right across adjacent chunks.
  auto hi = it;
  std::uint64_t end = hi->first + hi->second.len;
  for (auto next = std::next(hi); next != chunks_.end() && next->first == end;
       ++next) {
    end = next->first + next->second.len;
  }
  return std::pair{lo->first, end};
}

std::uint64_t RecvBuffer::read_virtual(std::uint64_t max) {
  const std::uint64_t n = std::min(max, readable());
  app_read_ += n;
  // Prune chunks that are now fully consumed.
  while (!chunks_.empty()) {
    auto it = chunks_.begin();
    if (it->first + it->second.len > app_read_) break;
    chunks_.erase(it);
  }
  return n;
}

}  // namespace lsl::tcp
