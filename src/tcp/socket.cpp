#include "tcp/socket.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "metrics/instruments.hpp"
#include "tcp/stack.hpp"
#include "util/log.hpp"

namespace lsl::tcp {

namespace {
/// Sequence-space length of a segment: payload plus one for SYN and FIN.
std::uint32_t seq_len(std::uint32_t payload, std::uint8_t flags) {
  std::uint32_t n = payload;
  if (flags & sim::kFlagSyn) ++n;
  if (flags & sim::kFlagFin) ++n;
  return n;
}
}  // namespace

const char* to_string(TcpState s) {
  switch (s) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynReceived: return "SYN_RECEIVED";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN_WAIT_1";
    case TcpState::kFinWait2: return "FIN_WAIT_2";
    case TcpState::kClosing: return "CLOSING";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kLastAck: return "LAST_ACK";
  }
  return "?";
}

const char* to_string(TcpError e) {
  switch (e) {
    case TcpError::kNone: return "NONE";
    case TcpError::kConnectTimeout: return "CONNECT_TIMEOUT";
    case TcpError::kReset: return "RESET";
    case TcpError::kTimedOut: return "TIMED_OUT";
  }
  return "?";
}

const util::TransitionTable<TcpState, kTcpStateCount>& tcp_transition_table() {
  using S = TcpState;
  static const util::TransitionTable<TcpState, kTcpStateCount> table{
      "tcp", to_string, {
          // Establishment.
          {S::kClosed, S::kSynSent},         // active open
          {S::kClosed, S::kSynReceived},     // passive open
          {S::kSynSent, S::kEstablished},    // SYN|ACK received
          {S::kSynReceived, S::kEstablished},// handshake ACK received
          // Local close first.
          {S::kEstablished, S::kFinWait1},   // we sent FIN
          {S::kFinWait1, S::kFinWait2},      // our FIN acked
          {S::kFinWait1, S::kClosing},       // simultaneous close
          // Remote close first.
          {S::kEstablished, S::kCloseWait},  // peer FIN consumed
          {S::kCloseWait, S::kLastAck},      // then we sent FIN
          // Clean completion (TIME_WAIT collapses into kClosed).
          {S::kFinWait2, S::kClosed},
          {S::kClosing, S::kClosed},
          {S::kLastAck, S::kClosed},
          // Abortive close (RST, connect timeout, data-retry exhaustion)
          // is legal from every live state.
          {S::kSynSent, S::kClosed},
          {S::kSynReceived, S::kClosed},
          {S::kEstablished, S::kClosed},
          {S::kFinWait1, S::kClosed},
          {S::kCloseWait, S::kClosed},
      }};
  return table;
}

TcpSocket::TcpSocket(TcpStack& stack, sim::Endpoint local, sim::Endpoint remote,
                     const TcpConfig& config, bool active_open)
    : stack_(stack),
      local_(local),
      remote_(remote),
      config_(config),
      send_buf_(config.send_buffer, config.carry_data),
      recv_buf_(config.recv_buffer, config.carry_data) {
  (void)active_open;
  cwnd_ = static_cast<std::uint64_t>(config_.initial_cwnd_segments) *
          config_.mss;
  // RFC 5681: initial ssthresh is arbitrarily high unless route metrics
  // (config) supply a warmed value; the first loss adjusts it either way.
  ssthresh_ = config_.initial_ssthresh > 0 ? config_.initial_ssthresh
                                           : ~std::uint64_t{0} / 2;
  advertised_wnd_ = recv_buf_.window();
}

TcpSocket::~TcpSocket() {
  cancel_rto();
  auto& ev = stack_.sim().events();
  ev.cancel(delack_timer_);
  ev.cancel(persist_timer_);
}

util::SimTime TcpSocket::now() const { return stack_.sim().now(); }

util::SimDuration TcpSocket::rto() const {
  util::SimDuration base;
  if (have_rtt_) {
    const double var = std::max(rttvar_ns_ * 4.0,
                                static_cast<double>(util::kMillisecond));
    base = static_cast<util::SimDuration>(srtt_ns_ + var);
  } else {
    base = config_.initial_rto;
  }
  base = std::clamp(base, config_.min_rto, config_.max_rto);
  const std::uint32_t shift = std::min(rto_backoff_, 12u);
  const util::SimDuration backed = base << shift;
  return std::min(backed < base ? config_.max_rto : backed, config_.max_rto);
}

// --- Application API ---------------------------------------------------------

std::size_t TcpSocket::send(std::span<const std::uint8_t> data) {
  assert(config_.carry_data && "send() requires carry_data sockets");
  if (fin_pending_ || state_ == TcpState::kClosed) return 0;
  const std::size_t n = send_buf_.write(data);
  maybe_send();
  return n;
}

std::uint64_t TcpSocket::send_virtual(std::uint64_t n) {
  assert(!config_.carry_data && "send_virtual() requires virtual sockets");
  if (fin_pending_ || state_ == TcpState::kClosed) return 0;
  const std::uint64_t taken = send_buf_.write_virtual(n);
  maybe_send();
  return taken;
}

std::size_t TcpSocket::recv(std::span<std::uint8_t> out) {
  const std::size_t n = recv_buf_.read(out);
  if (n > 0) maybe_send_window_update();
  return n;
}

std::uint64_t TcpSocket::recv_virtual(std::uint64_t max) {
  const std::uint64_t n = recv_buf_.read_virtual(max);
  if (n > 0) maybe_send_window_update();
  return n;
}

void TcpSocket::close() {
  if (fin_pending_ || state_ == TcpState::kClosed) return;
  fin_pending_ = true;
  maybe_send();
}

void TcpSocket::abort() {
  if (state_ == TcpState::kClosed) return;
  sim::Packet p;
  p.src = local_.node;
  p.dst = remote_.node;
  p.proto = sim::Protocol::kTcp;
  p.tcp.src_port = local_.port;
  p.tcp.dst_port = remote_.port;
  p.tcp.seq = snd_nxt_;
  p.tcp.flags = sim::kFlagRst;
  p.serial = stack_.sim().next_packet_serial();
  emit(std::move(p), false);
  fail(TcpError::kReset);
}

// --- Connection establishment ------------------------------------------------

void TcpSocket::set_state(TcpState to) {
  tcp_transition_table().check(state_, to);
  state_ = to;
}

void TcpSocket::start_connect() {
  set_state(TcpState::kSynSent);
  send_segment(0, 0, sim::kFlagSyn, false);
  arm_rto();
}

void TcpSocket::start_passive(std::uint64_t peer_syn_seq) {
  // The peer's SYN occupies sequence 0 in its own space; nothing enters the
  // receive buffer, our ACK of it is implied by current_rcv_ack() == 1.
  (void)peer_syn_seq;
  set_state(TcpState::kSynReceived);
  send_segment(0, 0, sim::kFlagSyn | sim::kFlagAck, false);
  arm_rto();
}

void TcpSocket::become_established() {
  if (state_ == TcpState::kEstablished) return;
  const bool was_passive = state_ == TcpState::kSynReceived;
  set_state(TcpState::kEstablished);
  if (on_established) on_established();
  (void)was_passive;
  maybe_send();
}

// --- Packet handling ---------------------------------------------------------

void TcpSocket::handle_packet(sim::Packet&& p) {
  if (in_hook_) in_hook_(p);

  if (p.has(sim::kFlagRst)) {
    fail(TcpError::kReset);
    return;
  }

  switch (state_) {
    case TcpState::kClosed:
      // TIME_WAIT-lite: after a clean close, a retransmitted FIN (our final
      // ACK was lost) must be re-acknowledged or the peer retransmits it
      // forever. Aborted sockets stay silent.
      if (error_ == TcpError::kNone &&
          (p.has(sim::kFlagFin) || p.payload_bytes > 0)) {
        send_ack_now();
      }
      return;

    case TcpState::kSynSent: {
      if (p.has(sim::kFlagSyn) && p.has(sim::kFlagAck) && p.tcp.ack >= 1) {
        handle_ack(p);  // acks our SYN, pops it from flight
        become_established();
        send_ack_now();
      }
      return;
    }

    case TcpState::kSynReceived: {
      if (p.has(sim::kFlagSyn) && !p.has(sim::kFlagAck)) {
        // Duplicate SYN: our SYN|ACK was lost; retransmit it.
        retransmit_one(0);
        return;
      }
      if (p.has(sim::kFlagAck) && p.tcp.ack >= 1) {
        handle_ack(p);
        become_established();
        if (p.payload_bytes > 0 || p.has(sim::kFlagFin)) handle_data(p);
      }
      return;
    }

    // All post-handshake states share one data path: ACK processing plus
    // in-order delivery; state-specific close behavior lives in handle_data.
    default: {
      if (p.has(sim::kFlagSyn) && p.has(sim::kFlagAck)) {
        // Retransmitted SYN|ACK: our final handshake ACK was lost.
        send_ack_now();
        return;
      }
      if (p.has(sim::kFlagAck)) handle_ack(p);
      if (p.payload_bytes > 0 || p.has(sim::kFlagFin)) handle_data(p);
      return;
    }
  }
}

void TcpSocket::handle_ack(const sim::Packet& p) {
  if (!p.has(sim::kFlagAck)) return;
  ++stats_.acks_received;
  const std::uint64_t ack = p.tcp.ack;
  const std::uint64_t wnd = p.tcp.window;

  if (ack > snd_nxt_ && ack > snd_max_) {
    // Acks data we never sent; ignore (cannot happen with our own model).
    return;
  }

  const bool new_sack = config_.sack && merge_peer_sack(p);

  if (ack > snd_una_) {
    const std::uint64_t newly = ack - snd_una_;

    // Pop fully acked segments; take an RTT sample from the most recently
    // (first-)transmitted one (Karn's algorithm: never from retransmits).
    util::SimTime sample_send_time = -1;
    while (!inflight_.empty()) {
      Segment& seg = inflight_.front();
      if (seg.seq + seg.len <= ack) {
        if (!seg.retransmitted) {
          sample_send_time = std::max(sample_send_time, seg.send_time);
        }
        inflight_.pop_front();
      } else if (seg.seq < ack) {
        // Partial segment ack (window-probe interactions); shrink it.
        const std::uint64_t eaten = ack - seg.seq;
        seg.seq = ack;
        seg.len -= static_cast<std::uint32_t>(eaten);
        break;
      } else {
        break;
      }
    }
    if (sample_send_time >= 0) {
      take_rtt_sample(stack_.sim().now() - sample_send_time);
    }
    rto_backoff_ = 0;

    snd_una_ = ack;
    // After an RTO rewind, a late ACK for the original transmissions can
    // overtake the rewound send point; never let snd_nxt lag snd_una.
    snd_nxt_ = std::max(snd_nxt_, snd_una_);
    LSL_INVARIANT(snd_una_ <= snd_nxt_ && snd_nxt_ <= snd_max_,
                  "sender sequence pointers out of order");
    const std::uint64_t stream_acked =
        std::min<std::uint64_t>(ack > 0 ? ack - 1 : 0, send_buf_.written());
    send_buf_.ack_to(stream_acked);
    stats_.bytes_acked = stream_acked;
    sacked_.erase_below(snd_una_);
    retx_rec_.erase_below(snd_una_);

    peer_wnd_ = wnd;
    peer_wnd_edge_ = ack + wnd;

    check_fin_acked(ack);

    if (in_recovery_) {
      if (ack >= recovery_point_) {
        // Full ACK: recovery complete.
        cwnd_ = std::max<std::uint64_t>(ssthresh_, 2 * config_.mss);
        in_recovery_ = false;
        dupacks_ = 0;
      } else if (config_.sack) {
        // Partial ACK under SACK recovery: the pipe shrank; fill holes.
        send_in_recovery();
        arm_rto();
      } else if (config_.newreno) {
        // Partial ACK: retransmit the next hole, deflate, stay in recovery.
        retransmit_one(snd_una_);
        const std::uint64_t deflate =
            newly > config_.mss ? newly - config_.mss : 0;
        cwnd_ = cwnd_ > deflate ? cwnd_ - deflate : config_.mss;
        cwnd_ = std::max<std::uint64_t>(cwnd_, config_.mss);
        arm_rto();
      }
    } else {
      dupacks_ = 0;
      if (cwnd_ < ssthresh_) {
        // Slow start: one MSS per ACK (bounded by bytes acked).
        cwnd_ += std::min<std::uint64_t>(newly, config_.mss);
      } else {
        // Congestion avoidance: MSS*MSS/cwnd per ACK, accumulated exactly.
        cwnd_frac_ += static_cast<double>(config_.mss) *
                      static_cast<double>(config_.mss) /
                      static_cast<double>(cwnd_);
        const auto inc = static_cast<std::uint64_t>(cwnd_frac_);
        cwnd_ += inc;
        cwnd_frac_ -= static_cast<double>(inc);
      }
    }

    if (flight_size() == 0) {
      cancel_rto();
    } else {
      arm_rto();
    }

    maybe_send();
    maybe_finish_close();
    if (on_writable && send_buf_.free_space() > 0 && !fin_pending_ &&
        state_ != TcpState::kClosed) {
      on_writable();
    }
    return;
  }

  if (ack == snd_una_) {
    const std::uint64_t new_edge = ack + wnd;
    if (new_edge > peer_wnd_edge_) {
      // Window update, not a duplicate ACK.
      peer_wnd_ = wnd;
      peer_wnd_edge_ = new_edge;
      cancel_persist();
      maybe_send();
      return;
    }
    if (p.payload_bytes == 0 && !p.has(sim::kFlagSyn) &&
        !p.has(sim::kFlagFin) && flight_size() > 0) {
      ++dupacks_;
      if (in_recovery_) {
        if (config_.sack) {
          // The SACK scoreboard grew; pipe shrank — fill holes.
          if (new_sack) send_in_recovery();
        } else {
          // Reno inflation: each dup ACK signals a departed segment.
          cwnd_ += config_.mss;
          maybe_send();
        }
      } else if (dupacks_ >= config_.dupack_threshold) {
        enter_recovery();
      }
    }
  }
  // ack < snd_una_: old duplicate; ignore.
}

bool TcpSocket::merge_peer_sack(const sim::Packet& p) {
  bool new_info = false;
  for (const auto& [s, e] : p.tcp.sack) {
    const std::uint64_t s2 = std::max(s, snd_una_);
    const std::uint64_t e2 = std::min(e, snd_max_);
    if (s2 >= e2) continue;
    if (!sacked_.contains(s2, e2)) {
      sacked_.insert(s2, e2);
      new_info = true;
    }
  }
  return new_info;
}

std::uint64_t TcpSocket::sack_pipe() const {
  const std::uint64_t flight = snd_nxt_ - snd_una_;
  const std::uint64_t sacked_in =
      sacked_.covered_within(snd_una_, snd_nxt_);
  // Bytes deemed lost: holes below the highest SACKed sequence that have
  // not been retransmitted in this recovery episode.
  std::uint64_t lost = 0;
  const std::uint64_t high = std::min(sacked_.max_end(), snd_nxt_);
  std::uint64_t from = snd_una_;
  while (auto gap = sacked_.next_gap(from, high)) {
    lost += (gap->second - gap->first) -
            retx_rec_.covered_within(gap->first, gap->second);
    from = gap->second;
  }
  const std::uint64_t out = sacked_in + lost;
  return flight > out ? flight - out : 0;
}

void TcpSocket::send_in_recovery() {
  if (state_ == TcpState::kClosed) return;
  bool sent = false;
  for (int guard = 0; guard < 4096; ++guard) {
    if (sack_pipe() + config_.mss > cwnd_) break;

    // First priority: retransmit the lowest hole below the highest SACK.
    const std::uint64_t high = std::min(sacked_.max_end(), snd_nxt_);
    std::optional<util::IntervalSet::Interval> hole;
    std::uint64_t from = snd_una_;
    while (auto gap = sacked_.next_gap(from, high)) {
      if (auto h = retx_rec_.next_gap(gap->first, gap->second)) {
        hole = h;
        break;
      }
      from = gap->second;
    }
    if (hole) {
      const auto len = static_cast<std::uint32_t>(std::min<std::uint64_t>(
          config_.mss, hole->second - hole->first));
      retransmit_range(hole->first, len);
      retx_rec_.insert(hole->first, hole->first + len);
      sent = true;
      continue;
    }

    // Second priority: new data, subject to the peer window.
    const std::uint64_t data_end_seq = send_buf_.written() + 1;
    const std::uint64_t avail =
        data_end_seq > snd_nxt_ ? data_end_seq - snd_nxt_ : 0;
    const std::uint64_t rwnd_allow =
        peer_wnd_edge_ > snd_nxt_ ? peer_wnd_edge_ - snd_nxt_ : 0;
    if (avail == 0 || rwnd_allow == 0) break;
    const auto len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>({avail, rwnd_allow, config_.mss}));
    send_segment(snd_nxt_, len, sim::kFlagAck, false);
    sent = true;
  }
  if (sent && rto_timer_ == sim::kInvalidEvent) arm_rto();
}

void TcpSocket::enter_recovery() {
  LSL_PRECONDITION(!in_recovery_, "re-entered fast recovery");
  ssthresh_ = std::max<std::uint64_t>(flight_size() / 2,
                                      2 * static_cast<std::uint64_t>(config_.mss));
  recovery_point_ = snd_max_;
  in_recovery_ = true;
  ++stats_.fast_retransmits;
  ++stats_.recovery_episodes;
  if (metrics_) metrics_->on_recovery();
  if (config_.sack) {
    // RFC 6675-style: cwnd pinned at ssthresh; the first hole (which by
    // definition starts at snd_una) is retransmitted unconditionally, then
    // the pipe rule governs.
    retx_rec_.clear();
    cwnd_ = ssthresh_;
    const std::uint32_t len = config_.mss;
    retransmit_range(snd_una_, len);
    retx_rec_.insert(snd_una_, snd_una_ + len);
    arm_rto();
    send_in_recovery();
    sample_cwnd_metrics();
    return;
  }
  retransmit_one(snd_una_);
  cwnd_ = ssthresh_ + 3 * static_cast<std::uint64_t>(config_.mss);
  arm_rto();
  maybe_send();
  sample_cwnd_metrics();
}

void TcpSocket::handle_data(const sim::Packet& p) {
  const std::uint64_t seq = p.tcp.seq;
  bool advanced = false;

  if (p.payload_bytes > 0) {
    ++stats_.segments_received;
    const std::uint64_t offset = seq > 0 ? seq - 1 : 0;
    advanced = recv_buf_.insert(offset, p.payload_bytes, p.data);
    stats_.bytes_received = recv_buf_.rcv_nxt();

    if (config_.sack) {
      // Maintain the advertised SACK block list: the block containing the
      // arrival goes first (RFC 2018), stale blocks fall off the tail.
      const std::uint64_t frontier_seq = recv_buf_.rcv_nxt() + 1;
      std::erase_if(rcv_sack_blocks_, [frontier_seq](const auto& b) {
        return b.second <= frontier_seq;
      });
      if (offset >= recv_buf_.rcv_nxt()) {
        if (const auto blk = recv_buf_.ooo_block_containing(offset)) {
          const std::pair<std::uint64_t, std::uint64_t> sb{blk->first + 1,
                                                           blk->second + 1};
          std::erase_if(rcv_sack_blocks_, [&sb](const auto& b) {
            return b.first >= sb.first && b.second <= sb.second;
          });
          rcv_sack_blocks_.insert(rcv_sack_blocks_.begin(), sb);
          if (rcv_sack_blocks_.size() > 4) rcv_sack_blocks_.resize(4);
        }
      }
    }
  }

  if (p.has(sim::kFlagFin) && !have_remote_fin_) {
    have_remote_fin_ = true;
    remote_fin_seq_ = seq + p.payload_bytes;
  }

  bool fin_just_consumed = false;
  if (have_remote_fin_ && !fin_received_ &&
      recv_buf_.rcv_nxt() + 1 == remote_fin_seq_) {
    fin_received_ = true;
    fin_just_consumed = true;
    advanced = true;
    switch (state_) {
      case TcpState::kEstablished:
        set_state(TcpState::kCloseWait);
        break;
      case TcpState::kFinWait1:
        set_state(TcpState::kClosing);
        break;
      case TcpState::kFinWait2:
        break;  // resolved in maybe_finish_close
      default:
        break;  // FIN in other states changes nothing until our side acts
    }
  }

  // ACK generation (RFC 5681 §4.2): immediate ACK for out-of-order arrivals
  // and gap fills; otherwise delayed ACK every second full segment.
  const bool out_of_order = !advanced || recv_buf_.out_of_order_bytes() > 0;
  if (fin_just_consumed || out_of_order || !config_.delayed_ack) {
    send_ack_now();
  } else {
    ++segs_since_ack_;
    if (segs_since_ack_ >= 2) {
      send_ack_now();
    } else {
      schedule_delack();
    }
  }

  if (recv_buf_.readable() > 0 || eof()) notify_readable();
  maybe_finish_close();
}

void TcpSocket::notify_readable() {
  if (on_readable) on_readable();
}

// --- Sending -----------------------------------------------------------------

void TcpSocket::maybe_send() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait &&
      state_ != TcpState::kFinWait1 && state_ != TcpState::kLastAck &&
      state_ != TcpState::kClosing) {
    return;
  }
  if (in_recovery_ && config_.sack) {
    // During SACK recovery the pipe rule governs all transmissions.
    send_in_recovery();
    return;
  }

  for (;;) {
    const std::uint64_t data_end_seq = send_buf_.written() + 1;
    const std::uint64_t avail =
        data_end_seq > snd_nxt_ ? data_end_seq - snd_nxt_ : 0;
    const std::uint64_t flight = flight_size();
    const std::uint64_t cwnd_allow = cwnd_ > flight ? cwnd_ - flight : 0;
    const std::uint64_t rwnd_allow =
        peer_wnd_edge_ > snd_nxt_ ? peer_wnd_edge_ - snd_nxt_ : 0;
    const std::uint64_t usable = std::min(cwnd_allow, rwnd_allow);

    if (avail > 0) {
      if (usable == 0) {
        if (flight == 0 && rwnd_allow == 0) arm_persist();
        break;
      }
      const std::uint32_t len = static_cast<std::uint32_t>(
          std::min<std::uint64_t>({avail, usable, config_.mss}));
      send_segment(snd_nxt_, len, sim::kFlagAck, false);
      continue;
    }

    // All data sent; emit FIN if the application closed.
    if (fin_pending_ && !fin_sent_ && snd_nxt_ == data_end_seq) {
      fin_seq_ = snd_nxt_;
      send_segment(snd_nxt_, 0, sim::kFlagFin | sim::kFlagAck, false);
      fin_sent_ = true;
      if (state_ == TcpState::kEstablished) {
        set_state(TcpState::kFinWait1);
      } else if (state_ == TcpState::kCloseWait) {
        set_state(TcpState::kLastAck);
      }
    }
    break;
  }

  if (flight_size() > 0 && rto_timer_ == sim::kInvalidEvent) arm_rto();
}

void TcpSocket::send_segment(std::uint64_t seq, std::uint32_t payload_len,
                             std::uint8_t flags, bool retransmit) {
  const std::uint32_t slen = seq_len(payload_len, flags);
  const bool wire_retx = retransmit || (slen > 0 && seq < snd_max_);

  sim::Packet p;
  p.src = local_.node;
  p.dst = remote_.node;
  p.proto = sim::Protocol::kTcp;
  p.tcp.src_port = local_.port;
  p.tcp.dst_port = remote_.port;
  p.tcp.seq = seq;
  p.tcp.flags = flags;
  if (flags & sim::kFlagAck) {
    p.tcp.ack = current_rcv_ack();
    p.tcp.window = current_window();
    advertised_wnd_ = p.tcp.window;
    if (config_.sack && !rcv_sack_blocks_.empty()) {
      const std::uint64_t ack = p.tcp.ack;
      for (const auto& b : rcv_sack_blocks_) {
        if (b.second <= ack) continue;  // already cumulatively acked
        p.tcp.sack.push_back(b);
        if (p.tcp.sack.size() == 3) break;
      }
    }
    // Any segment carries the current ACK: piggybacking cancels delayed ACK.
    if (delack_timer_ != sim::kInvalidEvent) {
      stack_.sim().events().cancel(delack_timer_);
      delack_timer_ = sim::kInvalidEvent;
    }
    segs_since_ack_ = 0;
  }
  p.payload_bytes = payload_len;
  if (payload_len > 0 && config_.carry_data) {
    p.data = send_buf_.slice(seq - 1, payload_len);
  }
  p.serial = stack_.sim().next_packet_serial();

  if (slen > 0) {
    if (wire_retx) {
      ++stats_.retransmits;
      if (metrics_) metrics_->on_retransmit();
      // Refresh (or re-add) bookkeeping for the retransmitted range.
      bool found = false;
      for (auto& seg : inflight_) {
        if (seg.seq == seq) {
          seg.retransmitted = true;
          seg.send_time = stack_.sim().now();
          found = true;
          break;
        }
      }
      if (!found) {
        inflight_.push_front(
            Segment{seq, slen, stack_.sim().now(), true});
        std::sort(inflight_.begin(), inflight_.end(),
                  [](const Segment& a, const Segment& b) {
                    return a.seq < b.seq;
                  });
      }
    } else {
      inflight_.push_back(Segment{seq, slen, stack_.sim().now(), false});
      if (payload_len > 0) {
        ++stats_.segments_sent;
        stats_.bytes_sent += payload_len;
      }
    }
    snd_nxt_ = std::max(snd_nxt_, seq + slen);
    snd_max_ = std::max(snd_max_, snd_nxt_);
  } else {
    ++stats_.acks_sent;
  }

  emit(std::move(p), wire_retx);
}

void TcpSocket::retransmit_one(std::uint64_t seq) {
  retransmit_range(seq, config_.mss);
}

void TcpSocket::retransmit_range(std::uint64_t seq, std::uint32_t max_len) {
  std::uint8_t flags = sim::kFlagAck;
  std::uint32_t payload = 0;

  if (seq == 0) {
    // Handshake segment. Passive sockets combined SYN|ACK; active plain SYN.
    flags = (state_ == TcpState::kSynSent)
                ? static_cast<std::uint8_t>(sim::kFlagSyn)
                : static_cast<std::uint8_t>(sim::kFlagSyn | sim::kFlagAck);
    send_segment(0, 0, flags, true);
    return;
  }
  if (fin_sent_ && seq == fin_seq_) {
    send_segment(seq, 0, sim::kFlagFin | sim::kFlagAck, true);
    return;
  }
  const std::uint64_t data_end_seq = send_buf_.written() + 1;
  if (seq >= data_end_seq) return;  // nothing there (stale)
  const std::uint64_t until_fin = data_end_seq - seq;
  payload = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      {until_fin, config_.mss, snd_max_ - seq, max_len}));
  if (payload == 0) return;
  // If the FIN immediately follows this retransmitted slice and was already
  // sent, resend it separately via its own loss handling.
  send_segment(seq, payload, flags, true);
}

// --- Timers ------------------------------------------------------------------

void TcpSocket::arm_rto() {
  cancel_rto();
  rto_timer_ = stack_.sim().events().schedule_in(
      rto(), [this] {
        rto_timer_ = sim::kInvalidEvent;
        on_rto_timer();
      });
}

void TcpSocket::cancel_rto() {
  if (rto_timer_ != sim::kInvalidEvent) {
    stack_.sim().events().cancel(rto_timer_);
    rto_timer_ = sim::kInvalidEvent;
  }
}

void TcpSocket::on_rto_timer() {
  if (state_ == TcpState::kClosed) return;
  ++stats_.timeouts;
  if (metrics_) metrics_->on_timeout();
  rto_backoff_ = std::min(rto_backoff_ + 1, 12u);

  if (state_ == TcpState::kSynSent || state_ == TcpState::kSynReceived) {
    if (++syn_retries_ > config_.max_syn_retries) {
      fail(TcpError::kConnectTimeout);
      return;
    }
    retransmit_one(0);
    arm_rto();
    return;
  }

  if (flight_size() == 0) return;  // spurious

  // Give up after a bounded run of consecutive unanswered timeouts (the
  // peer is unreachable); rto_backoff_ resets on any new ACK.
  if (rto_backoff_ >= config_.max_data_retries) {
    fail(TcpError::kTimedOut);
    return;
  }

  // RFC 5681: collapse to one segment, re-enter slow start, and resend from
  // the oldest unacknowledged byte (go-back-N; ACKs for originals still in
  // flight will suppress unnecessary resends).
  ssthresh_ = std::max<std::uint64_t>(
      flight_size() / 2, 2 * static_cast<std::uint64_t>(config_.mss));
  cwnd_ = config_.mss;
  cwnd_frac_ = 0.0;
  in_recovery_ = false;
  dupacks_ = 0;
  // Discard SACK state (reneging-safe) and fall back to go-back-N.
  sacked_.clear();
  retx_rec_.clear();
  inflight_.clear();
  snd_nxt_ = snd_una_;
  // If the rewind moved below the FIN, it must be resent by maybe_send().
  if (fin_sent_ && snd_nxt_ <= fin_seq_) fin_sent_ = false;
  maybe_send();
  arm_rto();
  sample_cwnd_metrics();
}

void TcpSocket::arm_persist() {
  if (persist_timer_ != sim::kInvalidEvent) return;
  const util::SimDuration delay = std::min<util::SimDuration>(
      config_.min_rto << std::min(persist_backoff_, 10u),
      util::seconds(60));
  persist_timer_ = stack_.sim().events().schedule_in(delay, [this] {
    persist_timer_ = sim::kInvalidEvent;
    on_persist_timer();
  });
}

void TcpSocket::cancel_persist() {
  if (persist_timer_ != sim::kInvalidEvent) {
    stack_.sim().events().cancel(persist_timer_);
    persist_timer_ = sim::kInvalidEvent;
  }
  persist_backoff_ = 0;
}

void TcpSocket::on_persist_timer() {
  if (state_ == TcpState::kClosed) return;
  const std::uint64_t data_end_seq = send_buf_.written() + 1;
  const std::uint64_t avail =
      data_end_seq > snd_nxt_ ? data_end_seq - snd_nxt_ : 0;
  const std::uint64_t rwnd_allow =
      peer_wnd_edge_ > snd_nxt_ ? peer_wnd_edge_ - snd_nxt_ : 0;
  if (avail == 0 || rwnd_allow > 0) {
    maybe_send();
    return;
  }
  // Zero-window probe: one byte beyond the advertised window.
  send_segment(snd_nxt_, 1, sim::kFlagAck, false);
  ++persist_backoff_;
  arm_persist();
}

void TcpSocket::take_rtt_sample(util::SimDuration sample) {
  if (sample < 0) return;
  const double r = static_cast<double>(sample);
  if (!have_rtt_) {
    srtt_ns_ = r;
    rttvar_ns_ = r / 2.0;
    have_rtt_ = true;
    stats_.min_rtt = sample;
  } else {
    rttvar_ns_ = 0.75 * rttvar_ns_ + 0.25 * std::abs(srtt_ns_ - r);
    srtt_ns_ = 0.875 * srtt_ns_ + 0.125 * r;
    stats_.min_rtt = std::min(stats_.min_rtt, sample);
  }
  ++stats_.rtt_samples;
  stats_.srtt = static_cast<util::SimDuration>(srtt_ns_);
  if (metrics_) {
    // The ACK clock makes this a per-RTT cadence — the natural rate for
    // sampling the congestion state without touching the per-packet path.
    metrics_->on_rtt_sample(util::to_seconds(stack_.sim().now()),
                            util::to_seconds(sample), srtt_ns_ * 1e-9);
    sample_cwnd_metrics();
  }
}

void TcpSocket::sample_cwnd_metrics() {
  if (!metrics_) return;
  metrics_->on_cwnd(util::to_seconds(stack_.sim().now()), cwnd_, ssthresh_);
}

// --- Receiver ACK machinery --------------------------------------------------

std::uint64_t TcpSocket::current_rcv_ack() const {
  // Peer SYN consumes sequence 0; FIN consumes one more past the data.
  return 1 + recv_buf_.rcv_nxt() + (fin_received_ ? 1 : 0);
}

std::uint64_t TcpSocket::current_window() const { return recv_buf_.window(); }

void TcpSocket::send_ack_now() {
  if (delack_timer_ != sim::kInvalidEvent) {
    stack_.sim().events().cancel(delack_timer_);
    delack_timer_ = sim::kInvalidEvent;
  }
  segs_since_ack_ = 0;
  send_segment(snd_nxt_, 0, sim::kFlagAck, false);
}

void TcpSocket::schedule_delack() {
  if (delack_timer_ != sim::kInvalidEvent) return;
  delack_timer_ = stack_.sim().events().schedule_in(
      config_.delayed_ack_timeout, [this] {
        delack_timer_ = sim::kInvalidEvent;
        on_delack_timer();
      });
}

void TcpSocket::on_delack_timer() {
  if (state_ == TcpState::kClosed) return;
  send_ack_now();
}

void TcpSocket::maybe_send_window_update() {
  if (state_ == TcpState::kClosed) return;
  const std::uint64_t wnd = current_window();
  if (wnd <= advertised_wnd_) return;
  // Send an update when the window grew by >= 2 MSS or reopened from zero
  // (the classic silly-window-avoidance receiver rule).
  if (advertised_wnd_ == 0 ||
      wnd - advertised_wnd_ >= 2ull * config_.mss) {
    send_ack_now();
  }
}

// --- Close / teardown --------------------------------------------------------

void TcpSocket::check_fin_acked(std::uint64_t ack) {
  // fin_seq_ is fixed the first time the FIN is sent (the stream length is
  // frozen by close()); the check must hold even if an RTO rewind cleared
  // fin_sent_ and the covering ACK for the original FIN arrives before the
  // retransmission goes out.
  if (fin_acked_ || fin_seq_ == 0) return;
  if (ack >= fin_seq_ + 1) {
    fin_acked_ = true;
    fin_sent_ = true;
    if (state_ == TcpState::kFinWait1) set_state(TcpState::kFinWait2);
  }
}

void TcpSocket::maybe_finish_close() {
  if (state_ == TcpState::kClosed) return;
  if (fin_sent_ && fin_acked_ && fin_received_) {
    set_state(TcpState::kClosed);
    cancel_rto();
    cancel_persist();
    auto& ev = stack_.sim().events();
    if (delack_timer_ != sim::kInvalidEvent) {
      ev.cancel(delack_timer_);
      delack_timer_ = sim::kInvalidEvent;
    }
    if (!closed_notified_) {
      closed_notified_ = true;
      if (on_closed) on_closed();
    }
  }
}

void TcpSocket::fail(TcpError err) {
  if (state_ == TcpState::kClosed) return;
  set_state(TcpState::kClosed);
  error_ = err;
  cancel_rto();
  cancel_persist();
  auto& ev = stack_.sim().events();
  if (delack_timer_ != sim::kInvalidEvent) {
    ev.cancel(delack_timer_);
    delack_timer_ = sim::kInvalidEvent;
  }
  if (on_error) on_error(err);
  if (!closed_notified_) {
    closed_notified_ = true;
    if (on_closed) on_closed();
  }
}

void TcpSocket::emit(sim::Packet&& p, bool retransmit) {
  if (out_hook_) out_hook_(p, retransmit);
  stack_.transmit(std::move(p));
}

}  // namespace lsl::tcp
