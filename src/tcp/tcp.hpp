// Shared TCP model configuration and state definitions.
#pragma once

#include <cstdint>

#include "sim/packet.hpp"
#include "util/contract.hpp"
#include "util/units.hpp"

namespace lsl::tcp {

/// Tunable parameters of one TCP connection.
///
/// Defaults match the paper's measurement configuration: Linux 2.4-era
/// Reno/NewReno with RFC 1323 large windows, 8 MB socket buffers, MSS 1448,
/// initial congestion window of 2 segments, 200 ms minimum RTO and standard
/// delayed ACKs.
struct TcpConfig {
  std::uint32_t mss = sim::kDefaultMss;       ///< max segment payload, bytes
  std::uint64_t send_buffer = 8 * util::kMiB; ///< sender socket buffer
  std::uint64_t recv_buffer = 8 * util::kMiB; ///< advertised-window ceiling
  std::uint32_t initial_cwnd_segments = 2;    ///< RFC 2581 initial window
  /// Initial slow-start threshold in bytes; 0 means "effectively infinite"
  /// (RFC 5681 first-connection behaviour). Linux 2.4 cached ssthresh per
  /// destination route, so repeated transfers along a measured path — the
  /// paper's methodology — start slow-start with a realistic ceiling; the
  /// experiment scenarios set this to model warmed route metrics.
  std::uint64_t initial_ssthresh = 0;
  std::uint32_t dupack_threshold = 3;         ///< fast-retransmit trigger
  /// Selective acknowledgments (RFC 2018 + conservative RFC 6675 recovery).
  /// On by default — the paper's Linux 2.4 endpoints negotiated SACK; the
  /// SACK-vs-NewReno difference is measured by bench/abl_sack.
  bool sack = true;
  bool newreno = true;           ///< NewReno partial-ACK recovery (RFC 2582)
  bool delayed_ack = true;       ///< ACK every 2nd segment / 40 ms
  util::SimDuration delayed_ack_timeout = util::millis(40);
  util::SimDuration min_rto = util::millis(200);   ///< Linux floor
  util::SimDuration max_rto = util::seconds(60);
  util::SimDuration initial_rto = util::seconds(3);  ///< pre-sample RTO
  std::uint32_t max_syn_retries = 5;
  /// Consecutive unanswered data RTOs before the connection is declared
  /// dead (Linux tcp_retries2-style bound).
  std::uint32_t max_data_retries = 15;
  /// Carry real payload bytes through the network (tests / MD5 path) rather
  /// than virtual byte counts (large sweeps).
  bool carry_data = false;
};

/// Connection life-cycle states (RFC 793 subset; TIME_WAIT is collapsed
/// into kClosed since the simulator never reuses 4-tuples within 2*MSL).
enum class TcpState {
  kClosed,
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kClosing,
  kCloseWait,
  kLastAck,
};

/// Terminal error causes surfaced to the application.
enum class TcpError {
  kNone,
  kConnectTimeout,  ///< SYN retries exhausted
  kReset,           ///< RST received
  kTimedOut,        ///< too many data RTOs (peer unreachable)
};

/// Human-readable state name (diagnostics).
const char* to_string(TcpState s);

/// Number of TcpState values (TransitionTable dimension).
inline constexpr std::size_t kTcpStateCount = 9;

/// The legal RFC 793 edges of the connection state machine, as implemented
/// here (TIME_WAIT collapsed into kClosed; abortive close legal from every
/// live state). TcpSocket validates every state change against this table;
/// a transition outside it aborts via the contract framework.
const util::TransitionTable<TcpState, kTcpStateCount>& tcp_transition_table();

/// Human-readable error name (diagnostics).
const char* to_string(TcpError e);

/// Per-connection counters exposed to experiments and tests.
struct TcpStats {
  std::uint64_t segments_sent = 0;       ///< data-bearing segments sent
  std::uint64_t segments_received = 0;   ///< data-bearing segments received
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t retransmits = 0;         ///< segments re-sent (any cause)
  std::uint64_t fast_retransmits = 0;    ///< dupack-triggered recoveries
  std::uint64_t recovery_episodes = 0;   ///< distinct fast-recovery entries
  std::uint64_t timeouts = 0;            ///< RTO expirations
  std::uint64_t bytes_sent = 0;          ///< unique stream bytes first-sent
  std::uint64_t bytes_acked = 0;
  std::uint64_t bytes_received = 0;      ///< in-order stream bytes received
  std::uint64_t rtt_samples = 0;
  util::SimDuration srtt = 0;            ///< smoothed RTT estimate
  util::SimDuration min_rtt = 0;         ///< smallest valid sample
};

}  // namespace lsl::tcp
