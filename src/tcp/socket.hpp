// One simulated TCP connection.
//
// Implements the sender and receiver halves of TCP Reno/NewReno over the
// discrete-event network: three-way handshake, cumulative ACKs with delayed
// ACK policy, sliding-window flow control against the advertised window,
// slow start / congestion avoidance, fast retransmit + (NewReno) fast
// recovery with partial-ACK retransmission, Jacobson/Karels RTO estimation
// with Karn's algorithm and exponential backoff, zero-window persist probes,
// and orderly FIN teardown.
//
// The asynchronous API mirrors a nonblocking BSD socket: applications set
// callbacks and call send/recv from them; all I/O completes inside the
// event loop.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/packet.hpp"
#include "sim/types.hpp"
#include "tcp/buffers.hpp"
#include "tcp/tcp.hpp"
#include "util/interval_set.hpp"
#include "util/units.hpp"

namespace lsl::metrics {
struct TcpConnMetrics;
}

namespace lsl::tcp {

class TcpStack;

/// A simulated TCP connection endpoint.
///
/// Instances are created and owned by a TcpStack (via connect() or a
/// listener); applications hold non-owning pointers which remain valid for
/// the lifetime of the stack.
class TcpSocket {
 public:
  /// Sender-side trace hook: every outgoing packet, with a retransmission
  /// flag — the simulator's tcpdump-at-the-sender.
  using PacketOutHook = std::function<void(const sim::Packet&, bool retx)>;
  /// Every incoming packet for this connection.
  using PacketInHook = std::function<void(const sim::Packet&)>;

  /// Fires when the handshake completes (connect() side) or the connection
  /// is fully established (accepted side).
  std::function<void()> on_established;
  /// Fires when new in-order bytes (or EOF) become available.
  std::function<void()> on_readable;
  /// Fires when send-buffer space becomes available after ACKs.
  std::function<void()> on_writable;
  /// Fires once when the connection reaches kClosed cleanly.
  std::function<void()> on_closed;
  /// Fires once on abortive termination.
  std::function<void(TcpError)> on_error;

  ~TcpSocket();

  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  // --- Data transfer --------------------------------------------------------

  /// Queue real bytes for transmission; returns bytes accepted (bounded by
  /// send-buffer space). Requires TcpConfig::carry_data.
  std::size_t send(std::span<const std::uint8_t> data);

  /// Queue `n` virtual bytes; returns bytes accepted. Requires
  /// !TcpConfig::carry_data.
  std::uint64_t send_virtual(std::uint64_t n);

  /// Free space in the send buffer.
  std::uint64_t send_space() const { return send_buf_.free_space(); }

  /// Read available in-order bytes into `out`; returns bytes read.
  std::size_t recv(std::span<std::uint8_t> out);

  /// Consume up to `max` in-order bytes without copying.
  std::uint64_t recv_virtual(std::uint64_t max);

  /// In-order bytes ready to read.
  std::uint64_t readable() const { return recv_buf_.readable(); }

  /// True once the peer's FIN has been consumed and all prior data read.
  bool eof() const { return fin_received_ && recv_buf_.readable() == 0; }

  // --- Lifecycle -------------------------------------------------------------

  /// Half-close: no more sends; a FIN follows the last buffered byte.
  void close();

  /// Abortive close: sends RST, discards state.
  void abort();

  TcpState state() const { return state_; }
  TcpError error() const { return error_; }
  const TcpStats& stats() const { return stats_; }
  const TcpConfig& config() const { return config_; }
  sim::Endpoint local() const { return local_; }
  sim::Endpoint remote() const { return remote_; }

  /// Current congestion window in bytes (diagnostics).
  std::uint64_t cwnd() const { return cwnd_; }
  /// Current slow-start threshold in bytes (diagnostics).
  std::uint64_t ssthresh() const { return ssthresh_; }
  /// Unacknowledged bytes in flight (sequence space).
  std::uint64_t flight_size() const { return snd_nxt_ - snd_una_; }
  /// Current retransmission timeout.
  util::SimDuration rto() const;

  /// Install packet trace hooks (see trace::TraceRecorder).
  void set_packet_out_hook(PacketOutHook h) { out_hook_ = std::move(h); }
  void set_packet_in_hook(PacketInHook h) { in_hook_ = std::move(h); }

  /// Attach a metrics bundle (see metrics::TcpConnMetrics); the bundle must
  /// outlive the socket's traffic. Null detaches.
  void set_metrics(metrics::TcpConnMetrics* m) { metrics_ = m; }

  /// Current simulated time (convenience for trace capture and apps).
  util::SimTime now() const;

 private:
  friend class TcpStack;

  /// In-flight segment bookkeeping for RTT sampling and retransmission.
  struct Segment {
    std::uint64_t seq = 0;       ///< first sequence number
    std::uint32_t len = 0;       ///< sequence-space length (SYN/FIN count 1)
    util::SimTime send_time = 0;
    bool retransmitted = false;
  };

  TcpSocket(TcpStack& stack, sim::Endpoint local, sim::Endpoint remote,
            const TcpConfig& config, bool active_open);

  // Event entry points (called by the stack / timers).
  void start_connect();
  void start_passive(std::uint64_t peer_syn_seq);
  void handle_packet(sim::Packet&& p);
  void on_rto_timer();
  void on_delack_timer();
  void on_persist_timer();

  // Sender machinery.
  void maybe_send();
  void send_segment(std::uint64_t seq, std::uint32_t payload_len,
                    std::uint8_t flags, bool retransmit);
  void retransmit_one(std::uint64_t seq);
  void retransmit_range(std::uint64_t seq, std::uint32_t max_len);
  void enter_recovery();
  void handle_ack(const sim::Packet& p);

  // SACK machinery (RFC 2018 scoreboard + conservative RFC 6675 recovery).
  bool merge_peer_sack(const sim::Packet& p);  ///< returns "new info arrived"
  std::uint64_t sack_pipe() const;  ///< estimated bytes still in the network
  void send_in_recovery();          ///< hole retransmits + new data by pipe
  void take_rtt_sample(util::SimDuration sample);
  /// Record (cwnd, ssthresh) into the attached metrics bundle, if any.
  void sample_cwnd_metrics();
  void arm_rto();
  void cancel_rto();
  void arm_persist();
  void cancel_persist();

  // Receiver machinery.
  void handle_data(const sim::Packet& p);
  void send_ack_now();
  void schedule_delack();
  std::uint64_t current_rcv_ack() const;  ///< ack field we would send
  std::uint64_t current_window() const;
  void maybe_send_window_update();

  // Lifecycle helpers.
  /// All state changes funnel through here: the edge is validated against
  /// tcp_transition_table() (a forbidden transition aborts).
  void set_state(TcpState to);
  void become_established();
  void check_fin_acked(std::uint64_t ack);
  void maybe_finish_close();
  void fail(TcpError err);
  void emit(sim::Packet&& p, bool retransmit);
  void notify_readable();

  TcpStack& stack_;
  sim::Endpoint local_;
  sim::Endpoint remote_;
  TcpConfig config_;
  TcpState state_ = TcpState::kClosed;
  TcpError error_ = TcpError::kNone;
  TcpStats stats_;

  SendBuffer send_buf_;
  RecvBuffer recv_buf_;

  // Sequence space (64-bit, never wraps): SYN = 0, data byte k = k + 1,
  // FIN = stream length + 1.
  std::uint64_t snd_una_ = 0;  ///< oldest unacknowledged
  std::uint64_t snd_nxt_ = 0;  ///< next to send
  std::uint64_t snd_max_ = 0;  ///< highest ever sent + 1
  std::deque<Segment> inflight_;

  // Congestion control.
  std::uint64_t cwnd_ = 0;
  std::uint64_t ssthresh_ = 0;
  std::uint32_t dupacks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recovery_point_ = 0;
  double cwnd_frac_ = 0.0;  ///< sub-MSS congestion-avoidance accumulator

  // Peer flow control.
  std::uint64_t peer_wnd_ = 0;        ///< last advertised window
  std::uint64_t peer_wnd_edge_ = 0;   ///< snd_una + peer window at last ACK

  // RTT estimation (Jacobson/Karels) & timers.
  bool have_rtt_ = false;
  double srtt_ns_ = 0.0;
  double rttvar_ns_ = 0.0;
  std::uint32_t rto_backoff_ = 0;  ///< consecutive backoffs (shift count)
  std::uint32_t syn_retries_ = 0;
  sim::EventId rto_timer_ = sim::kInvalidEvent;
  sim::EventId delack_timer_ = sim::kInvalidEvent;
  sim::EventId persist_timer_ = sim::kInvalidEvent;
  std::uint32_t persist_backoff_ = 0;

  // SACK state.
  util::IntervalSet sacked_;    ///< peer-reported received ranges (seq space)
  util::IntervalSet retx_rec_;  ///< ranges retransmitted in this recovery
  /// SACK blocks we advertise (seq space), most recently changed first.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> rcv_sack_blocks_;

  // Receiver state.
  bool fin_received_ = false;          ///< peer FIN consumed in order
  bool have_remote_fin_ = false;       ///< peer FIN seen (maybe out of order)
  std::uint64_t remote_fin_seq_ = 0;   ///< sequence number of peer FIN
  std::uint32_t segs_since_ack_ = 0;
  std::uint64_t advertised_wnd_ = 0;   ///< window in the last ACK we sent

  // Sender close state.
  bool fin_pending_ = false;  ///< close() called; FIN follows last data
  bool fin_sent_ = false;
  std::uint64_t fin_seq_ = 0;
  bool fin_acked_ = false;
  bool closed_notified_ = false;

  PacketOutHook out_hook_;
  PacketInHook in_hook_;
  metrics::TcpConnMetrics* metrics_ = nullptr;
};

}  // namespace lsl::tcp
