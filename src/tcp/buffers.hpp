// Send/receive stream buffers for the simulated TCP model.
//
// Both buffers operate in one of two modes, fixed at construction:
//  * real mode    — actual bytes are stored and carried in packets, so
//                   content flows end-to-end (tests, MD5 integrity path);
//  * virtual mode — only byte *counts* are tracked and packets carry
//                   (offset, length). Timing-identical to real mode but
//                   O(1) memory, making multi-gigabyte sweeps cheap.
//
// Offsets are absolute positions in the application byte stream (0-based),
// independent of TCP sequence numbers.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

namespace lsl::tcp {

/// Sender-side stream buffer: a sliding window of unacknowledged data.
///
/// Holds stream bytes in [acked, written). Capacity bounds written - acked,
/// i.e. the send-socket-buffer size (8 MB in the paper's configuration).
class SendBuffer {
 public:
  /// `real` selects real-byte storage (a ring buffer) vs. count-only mode.
  SendBuffer(std::uint64_t capacity, bool real);

  bool real() const { return !ring_.empty(); }
  std::uint64_t capacity() const { return capacity_; }

  /// Total bytes the application has written so far.
  std::uint64_t written() const { return written_; }

  /// Lowest unacknowledged stream offset.
  std::uint64_t acked() const { return acked_; }

  /// Free space available for application writes.
  std::uint64_t free_space() const { return capacity_ - (written_ - acked_); }

  /// Append real bytes; returns the number accepted (bounded by free_space).
  /// Only valid in real mode.
  std::size_t write(std::span<const std::uint8_t> data);

  /// Append `n` virtual bytes; returns the number accepted.
  /// Only valid in virtual mode.
  std::uint64_t write_virtual(std::uint64_t n);

  /// Release everything below stream offset `offset` (cumulative ack).
  void ack_to(std::uint64_t offset);

  /// Copy out [offset, offset+len) for (re)transmission. Returns nullptr in
  /// virtual mode. Requires acked() <= offset and offset+len <= written().
  std::shared_ptr<const std::vector<std::uint8_t>> slice(std::uint64_t offset,
                                                         std::uint32_t len) const;

 private:
  std::uint64_t capacity_;
  std::uint64_t written_ = 0;
  std::uint64_t acked_ = 0;
  std::vector<std::uint8_t> ring_;  // empty in virtual mode
};

/// Receiver-side reassembly buffer.
///
/// Accepts segments at arbitrary offsets, tracks the contiguous frontier
/// (rcv_nxt), and serves in-order reads to the application. The advertised
/// window shrinks by both unread in-order bytes and buffered out-of-order
/// bytes, which is what closes the upstream window when an LSL depot's relay
/// buffer fills (hop-by-hop backpressure).
class RecvBuffer {
 public:
  RecvBuffer(std::uint64_t capacity, bool real);

  bool real() const { return real_; }
  std::uint64_t capacity() const { return capacity_; }

  /// Next expected stream offset (the contiguous frontier).
  std::uint64_t rcv_nxt() const { return rcv_nxt_; }

  /// Bytes ready for in-order application reads.
  std::uint64_t readable() const { return rcv_nxt_ - app_read_; }

  /// Current advertised receive window in bytes.
  std::uint64_t window() const;

  /// Insert a segment [offset, offset+len). `data` may be null in virtual
  /// mode. Duplicate/overlapping bytes are ignored. Returns true if the
  /// contiguous frontier advanced.
  bool insert(std::uint64_t offset, std::uint32_t len,
              std::shared_ptr<const std::vector<std::uint8_t>> data);

  /// Read up to out.size() in-order bytes into `out` (real mode).
  std::size_t read(std::span<std::uint8_t> out);

  /// Consume up to `max` in-order bytes without copying (virtual mode; also
  /// legal in real mode — bytes are discarded).
  std::uint64_t read_virtual(std::uint64_t max);

  /// Bytes currently held out-of-order beyond the frontier.
  std::uint64_t out_of_order_bytes() const { return ooo_bytes_; }

  /// The maximal contiguous out-of-order block containing stream offset
  /// `offset` (merging adjacent chunks); nullopt if `offset` lies below the
  /// frontier or in no buffered chunk. Feeds SACK block generation.
  std::optional<std::pair<std::uint64_t, std::uint64_t>> ooo_block_containing(
      std::uint64_t offset) const;

 private:
  struct Chunk {
    std::uint32_t len = 0;
    /// Real payload; may be shorter-lived than len if trimmed (trim_front
    /// tracks the skip). Null in virtual mode.
    std::shared_ptr<const std::vector<std::uint8_t>> data;
    std::uint32_t trim_front = 0;  ///< bytes of `data` to skip (overlap trim)
  };

  void advance_frontier();

  std::uint64_t capacity_;
  bool real_;
  std::uint64_t rcv_nxt_ = 0;
  std::uint64_t app_read_ = 0;
  std::uint64_t ooo_bytes_ = 0;
  /// All buffered segments keyed by start offset, both in-order-unread and
  /// out-of-order. Non-overlapping after insert() normalization.
  std::map<std::uint64_t, Chunk> chunks_;
};

}  // namespace lsl::tcp
