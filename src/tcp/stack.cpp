#include "tcp/stack.hpp"

#include <stdexcept>
#include <utility>

#include "util/log.hpp"

namespace lsl::tcp {

TcpStack::TcpStack(sim::Network& net, sim::Node& host, TcpConfig default_config)
    : net_(net), host_(host), default_config_(default_config) {
  if (host.is_router()) {
    throw std::invalid_argument("TcpStack must attach to a host, not router");
  }
  host_.set_protocol_handler(
      sim::Protocol::kTcp,
      [this](sim::Packet&& p) { handle_packet(std::move(p)); });
}

TcpSocket* TcpStack::connect(sim::Endpoint remote) {
  return connect(remote, default_config_);
}

TcpSocket* TcpStack::connect(sim::Endpoint remote, const TcpConfig& config) {
  const sim::Endpoint local{host_.id(), allocate_ephemeral_port()};
  auto sock = std::unique_ptr<TcpSocket>(
      new TcpSocket(*this, local, remote, config, /*active_open=*/true));
  TcpSocket* raw = sock.get();
  flows_.emplace(FlowKey{local, remote}, std::move(sock));
  raw->start_connect();
  return raw;
}

TcpListener& TcpStack::listen(sim::PortNum port,
                              TcpListener::AcceptFn on_accept) {
  return listen(port, default_config_, std::move(on_accept));
}

TcpListener& TcpStack::listen(sim::PortNum port, const TcpConfig& config,
                              TcpListener::AcceptFn on_accept) {
  if (listeners_.count(port) != 0) {
    throw std::invalid_argument("port already bound: " + std::to_string(port));
  }
  auto l = std::make_unique<TcpListener>(port, config, std::move(on_accept));
  TcpListener& ref = *l;
  listeners_.emplace(port, std::move(l));
  return ref;
}

void TcpStack::close_listener(sim::PortNum port) { listeners_.erase(port); }

std::size_t TcpStack::connection_count() const {
  std::size_t n = 0;
  for (const auto& [key, sock] : flows_) {
    if (sock->state() != TcpState::kClosed) ++n;
  }
  return n;
}

sim::PortNum TcpStack::allocate_ephemeral_port() {
  for (int attempts = 0; attempts < 65536; ++attempts) {
    const sim::PortNum port = next_ephemeral_;
    next_ephemeral_ =
        next_ephemeral_ >= 65535 ? sim::PortNum{32768}
                                 : static_cast<sim::PortNum>(next_ephemeral_ + 1);
    if (listeners_.count(port) != 0) continue;
    bool used = false;
    for (const auto& [key, sock] : flows_) {
      if (key.local.port == port) {
        used = true;
        break;
      }
    }
    if (!used) return port;
  }
  throw std::runtime_error("ephemeral port space exhausted");
}

void TcpStack::handle_packet(sim::Packet&& p) {
  const FlowKey key{{host_.id(), p.tcp.dst_port}, {p.src, p.tcp.src_port}};
  const auto it = flows_.find(key);
  if (it != flows_.end()) {
    it->second->handle_packet(std::move(p));
    return;
  }

  // New connection?
  if (p.has(sim::kFlagSyn) && !p.has(sim::kFlagAck)) {
    const auto lt = listeners_.find(p.tcp.dst_port);
    if (lt != listeners_.end()) {
      auto sock = std::unique_ptr<TcpSocket>(
          new TcpSocket(*this, key.local, key.remote, lt->second->config(),
                        /*active_open=*/false));
      TcpSocket* raw = sock.get();
      // Report the socket through the listener once established. The port is
      // re-resolved at fire time in case the listener was closed meanwhile.
      const sim::PortNum lport = p.tcp.dst_port;
      raw->on_established = [this, lport, raw] {
        const auto jt = listeners_.find(lport);
        accepted_established(jt == listeners_.end() ? nullptr : jt->second.get(),
                             raw);
      };
      flows_.emplace(key, std::move(sock));
      raw->start_passive(p.tcp.seq);
      return;
    }
  }

  if (!p.has(sim::kFlagRst)) send_rst(p);
}

void TcpStack::accepted_established(TcpListener* l, TcpSocket* s) {
  s->on_established = nullptr;
  if (l == nullptr) {
    // Listener closed between SYN and establishment: refuse the connection.
    s->abort();
    return;
  }
  if (l->on_accept_) l->on_accept_(s);
}

void TcpStack::send_rst(const sim::Packet& cause) {
  sim::Packet p;
  p.src = host_.id();
  p.dst = cause.src;
  p.proto = sim::Protocol::kTcp;
  p.tcp.src_port = cause.tcp.dst_port;
  p.tcp.dst_port = cause.tcp.src_port;
  p.tcp.seq = cause.tcp.ack;
  p.tcp.flags = sim::kFlagRst;
  p.serial = net_.sim().next_packet_serial();
  LSL_LOG_DEBUG("%s: RST to node %u port %u", host_.name().c_str(), p.dst,
                p.tcp.dst_port);
  transmit(std::move(p));
}

void TcpStack::transmit(sim::Packet&& p) { host_.send(std::move(p)); }

}  // namespace lsl::tcp
