// Per-host TCP stack: demultiplexes incoming segments to connections by
// 4-tuple, owns all sockets and listeners, and hands outgoing packets to the
// host for routing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/packet.hpp"
#include "sim/types.hpp"
#include "tcp/socket.hpp"
#include "tcp/tcp.hpp"

namespace lsl::tcp {

/// A passive listener bound to a local port.
class TcpListener {
 public:
  /// Invoked when an accepted connection completes its handshake. The
  /// callback should install the application's socket callbacks.
  using AcceptFn = std::function<void(TcpSocket*)>;

  TcpListener(sim::PortNum port, TcpConfig config, AcceptFn on_accept)
      : port_(port), config_(config), on_accept_(std::move(on_accept)) {}

  sim::PortNum port() const { return port_; }
  const TcpConfig& config() const { return config_; }

 private:
  friend class TcpStack;
  sim::PortNum port_;
  TcpConfig config_;
  AcceptFn on_accept_;
};

/// The TCP protocol instance on one simulated host.
class TcpStack {
 public:
  /// Attaches to `host` as its TCP protocol handler. `default_config`
  /// applies to sockets created without an explicit config.
  TcpStack(sim::Network& net, sim::Node& host,
           TcpConfig default_config = {});

  TcpStack(const TcpStack&) = delete;
  TcpStack& operator=(const TcpStack&) = delete;

  /// Open an active connection to `remote`; the handshake starts
  /// immediately. The returned socket is owned by the stack.
  TcpSocket* connect(sim::Endpoint remote);
  TcpSocket* connect(sim::Endpoint remote, const TcpConfig& config);

  /// Bind a listener; incoming SYNs to `port` spawn accepted sockets which
  /// are reported through `on_accept` once established.
  TcpListener& listen(sim::PortNum port, TcpListener::AcceptFn on_accept);
  TcpListener& listen(sim::PortNum port, const TcpConfig& config,
                      TcpListener::AcceptFn on_accept);

  /// Stop accepting on `port` (existing connections unaffected).
  void close_listener(sim::PortNum port);

  sim::Node& host() { return host_; }
  sim::Network& network() { return net_; }
  sim::Simulator& sim() { return net_.sim(); }
  const TcpConfig& default_config() const { return default_config_; }

  /// Number of live (not fully closed) connections.
  std::size_t connection_count() const;

  /// Visit every connection the stack has ever created (diagnostics).
  void for_each_connection(
      const std::function<void(const TcpSocket&)>& fn) const {
    for (const auto& [key, sock] : flows_) fn(*sock);
  }

 private:
  friend class TcpSocket;

  struct FlowKey {
    sim::Endpoint local;
    sim::Endpoint remote;
    friend bool operator==(const FlowKey&, const FlowKey&) = default;
  };
  struct FlowKeyHash {
    std::size_t operator()(const FlowKey& k) const noexcept {
      const std::size_t h1 = std::hash<sim::Endpoint>{}(k.local);
      const std::size_t h2 = std::hash<sim::Endpoint>{}(k.remote);
      return h1 ^ (h2 * 0x9e3779b97f4a7c15ull);
    }
  };

  void handle_packet(sim::Packet&& p);
  void transmit(sim::Packet&& p);
  void send_rst(const sim::Packet& cause);
  sim::PortNum allocate_ephemeral_port();
  void accepted_established(TcpListener* l, TcpSocket* s);

  sim::Network& net_;
  sim::Node& host_;
  TcpConfig default_config_;
  sim::PortNum next_ephemeral_ = 32768;
  std::unordered_map<FlowKey, std::unique_ptr<TcpSocket>, FlowKeyHash> flows_;
  std::unordered_map<sim::PortNum, std::unique_ptr<TcpListener>> listeners_;
};

}  // namespace lsl::tcp
