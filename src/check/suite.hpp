// The named model-check suite: scenarios over the ModelSync instantiations
// of the four riskiest concurrent protocols (buf::ChunkPool+MemoryBudget,
// span::FlightRecorder, live::SharedDeadlineWheel, metrics registration),
// plus deliberately seeded bug fixtures that prove the checker catches the
// classes of bug it exists for. tools/lsl_mc runs the suite;
// tests/mcheck_test.cpp pins its outcomes and census determinism.
#pragma once

#include <string>
#include <vector>

#include "check/sched.hpp"

namespace lsl::check {

/// One registered scenario.
struct ScenarioInfo {
  std::string name;
  std::string subsystem;    ///< buf | span | live | metrics | check
  std::string description;
  /// Bug fixtures: the checker MUST find a violation (a clean pass is the
  /// failure). Pass scenarios: any violation is a real protocol bug.
  bool expect_violation = false;
  /// Per-scenario schedule budgets (fully resolved, no -1 sentinels).
  Options defaults;
};

/// Every registered scenario, in suite order.
const std::vector<ScenarioInfo>& scenarios();

/// nullptr when unknown.
const ScenarioInfo* find_scenario(const std::string& name);

/// Explore one scenario; `overrides` wins field-by-field over the
/// scenario's default budgets (-1 / empty fields inherit).
Outcome run_scenario(const std::string& name, const Options& overrides);

}  // namespace lsl::check
