// Sync-policy shims: the seam that lets one protocol implementation run on
// real std:: primitives in production and on model-checked primitives under
// the deterministic scheduler (src/check/sched.hpp).
//
// A concurrent class is written once as a template over a `Sync` policy:
//
//   template <typename Sync> class BasicChunkPool { ...
//     mutable typename Sync::mutex mu_;
//     typename Sync::template atomic<std::uint32_t> refs_;
//   };
//   using ChunkPool = BasicChunkPool<check::StdSync>;   // production alias
//
// `StdSync` is pure aliases to std:: types — the production instantiation
// is byte-for-byte the code that existed before the seam, with zero added
// overhead and no link dependency on the checker. `ModelSync` substitutes
// ModelAtomic/ModelMutex/ModelCv, whose every operation is a *scheduling
// point*: the cooperative scheduler serializes the virtual threads and
// enumerates their interleavings (DFS, bounded preemption), so a race that
// TSan would need luck to observe is found systematically.
//
// `Sync::kChecked` gates deep (too slow or too invasive for production)
// invariants inside the protocols themselves — double-release scans,
// refcount-resurrection checks, claim-held publication checks — via
// `if constexpr`, so the production instantiation never even compiles them.
//
// The Model* types are declared here but their operations funnel into
// detail:: hooks defined in sched.cpp; because the methods are inline and
// only instantiated when a ModelSync instantiation is actually used,
// production code that includes this header does not link the checker.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace lsl::check {

/// Production policy: plain std:: primitives, no instrumentation.
struct StdSync {
  template <typename T>
  using atomic = std::atomic<T>;
  using mutex = std::mutex;
  using lock_guard = std::lock_guard<std::mutex>;
  using unique_lock = std::unique_lock<std::mutex>;
  using cv = std::condition_variable;
  static constexpr bool kChecked = false;
};

namespace detail {

/// Model-mutex bookkeeping, inspected by the scheduler: who holds it and
/// whether it is held. `owner` is a virtual-thread id, -1 when free, -2
/// when taken outside exploration (scenario setup on the controller).
struct MutexState {
  bool locked = false;
  int owner = -1;
};

/// Model-condvar bookkeeping: a bitmask of virtual-thread ids currently
/// blocked in wait() (the scheduler supports at most 32 virtual threads).
struct CvState {
  std::uint32_t waiters = 0;
};

// Scheduler hooks (defined in sched.cpp). Each is a no-op / direct
// operation when called outside an active exploration, so ModelSync
// objects may be constructed and touched during scenario setup.
void op_point();
void mutex_lock(MutexState* m);
bool mutex_try_lock(MutexState* m);
void mutex_unlock(MutexState* m);
void cv_wait(CvState* cv, MutexState* m);
void cv_notify(CvState* cv);
/// Record a built-in invariant violation against the running exploration
/// (replayable seed and all); aborts the process when no exploration is
/// active.
void assert_fail(const char* msg);

}  // namespace detail

/// Deep-invariant check for kChecked code paths: failure becomes a model
/// violation with a replay seed rather than a process abort.
inline void model_assert(bool ok, const char* msg) {
  if (!ok) detail::assert_fail(msg);
}

/// Model atomic: sequentially consistent shared cell whose every access is
/// a scheduling point. Memory-order arguments are accepted and ignored —
/// the explorer enumerates thread interleavings under sequential
/// consistency only; weak-memory reorderings are out of scope (documented
/// in docs/STATIC_ANALYSIS.md).
template <typename T>
class ModelAtomic {
 public:
  constexpr ModelAtomic() noexcept : v_{} {}
  constexpr ModelAtomic(T v) noexcept : v_(v) {}  // NOLINT(google-explicit-constructor)
  ModelAtomic(const ModelAtomic&) = delete;
  ModelAtomic& operator=(const ModelAtomic&) = delete;

  T load(std::memory_order = std::memory_order_seq_cst) const noexcept {
    detail::op_point();
    return v_;
  }
  void store(T v, std::memory_order = std::memory_order_seq_cst) noexcept {
    detail::op_point();
    v_ = v;
  }
  T exchange(T v, std::memory_order = std::memory_order_seq_cst) noexcept {
    detail::op_point();
    T old = v_;
    v_ = v;
    return old;
  }
  T fetch_add(T n, std::memory_order = std::memory_order_seq_cst) noexcept {
    detail::op_point();
    T old = v_;
    v_ = static_cast<T>(v_ + n);
    return old;
  }
  T fetch_sub(T n, std::memory_order = std::memory_order_seq_cst) noexcept {
    detail::op_point();
    T old = v_;
    v_ = static_cast<T>(v_ - n);
    return old;
  }
  bool compare_exchange_weak(
      T& expected, T desired,
      std::memory_order = std::memory_order_seq_cst,
      std::memory_order = std::memory_order_seq_cst) noexcept {
    return compare_exchange_strong(expected, desired);
  }
  bool compare_exchange_strong(
      T& expected, T desired,
      std::memory_order = std::memory_order_seq_cst,
      std::memory_order = std::memory_order_seq_cst) noexcept {
    detail::op_point();
    if (v_ == expected) {
      v_ = desired;
      return true;
    }
    expected = v_;
    return false;
  }
  operator T() const noexcept { return load(); }  // NOLINT(google-explicit-constructor)
  T operator=(T v) noexcept {
    store(v);
    return v;
  }

 private:
  T v_;
};

/// Model mutex: lock/unlock are scheduling points; contention blocks the
/// virtual thread and lets the explorer pick who wins the race.
class ModelMutex {
 public:
  ModelMutex() = default;
  ModelMutex(const ModelMutex&) = delete;
  ModelMutex& operator=(const ModelMutex&) = delete;

  void lock() { detail::mutex_lock(&s_); }
  bool try_lock() { return detail::mutex_try_lock(&s_); }
  void unlock() { detail::mutex_unlock(&s_); }

  detail::MutexState* state() noexcept { return &s_; }

 private:
  detail::MutexState s_;
};

/// Model condition variable. notify_one is modeled as notify_all (a
/// conservative Mesa-style approximation: every waiter re-checks its
/// predicate, so code correct under the model is correct under the looser
/// real semantics — but lost-wakeup bugs that depend on *which* waiter
/// wakes are out of scope).
class ModelCv {
 public:
  ModelCv() = default;
  ModelCv(const ModelCv&) = delete;
  ModelCv& operator=(const ModelCv&) = delete;

  void wait(std::unique_lock<ModelMutex>& lk) {
    detail::cv_wait(&s_, lk.mutex()->state());
  }
  template <typename Pred>
  void wait(std::unique_lock<ModelMutex>& lk, Pred pred) {
    while (!pred()) wait(lk);
  }
  void notify_one() { detail::cv_notify(&s_); }
  void notify_all() { detail::cv_notify(&s_); }

 private:
  detail::CvState s_;
};

/// Model-checking policy: every sync operation is a scheduling point and
/// deep invariants (`if constexpr (Sync::kChecked)`) are compiled in.
struct ModelSync {
  template <typename T>
  using atomic = ModelAtomic<T>;
  using mutex = ModelMutex;
  using lock_guard = std::lock_guard<ModelMutex>;
  using unique_lock = std::unique_lock<ModelMutex>;
  using cv = ModelCv;
  static constexpr bool kChecked = true;
};

}  // namespace lsl::check
