#include "check/sched.hpp"

#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "check/shim.hpp"
#include "util/contract.hpp"

namespace lsl::check {

namespace {

constexpr int kDefaultSchedules = 4096;
constexpr int kDefaultPreemptions = 2;
constexpr int kDefaultSteps = 20000;
constexpr int kMaxThreads = 32;

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

// Seed alphabet: one character per chosen thread id (kMaxThreads <= 32).
constexpr char kSeedDigits[] = "0123456789abcdefghijklmnopqrstuv";

int seed_digit_value(char c) {
  for (int i = 0; i < 32; ++i) {
    if (kSeedDigits[i] == c) return i;
  }
  return -1;
}

class Scheduler;

// The controller thread and every virtual thread carry a pointer to the
// active scheduler; shim operations on any other thread (production code
// accidentally touching a ModelSync object, scenario setup) fall through
// to direct, uninstrumented behavior.
thread_local Scheduler* tl_sched = nullptr;
thread_local int tl_tid = -1;  // virtual-thread id; -1 = controller/other

class Scheduler {
 public:
  explicit Scheduler(const Options& opts) : opts_(opts) {
    if (opts_.max_schedules < 0) opts_.max_schedules = kDefaultSchedules;
    if (opts_.preemption_bound < 0) opts_.preemption_bound = kDefaultPreemptions;
    if (opts_.max_steps < 0) opts_.max_steps = kDefaultSteps;
  }

  Outcome explore(const std::function<void()>& body);

  // -- scenario-facing (via the free functions below) --
  void spawn(std::function<void()> fn);
  void run_threads();
  void fail(const std::string& msg);

  // -- shim-facing (via detail:: hooks) --
  void op_point();
  void mutex_lock(detail::MutexState* m);
  bool mutex_try_lock(detail::MutexState* m);
  void mutex_unlock(detail::MutexState* m);
  void cv_wait(detail::CvState* cv, detail::MutexState* m);
  void cv_notify(detail::CvState* cv);

 private:
  enum class St { kReady, kRunning, kBlocked, kDone };

  struct VThread {
    std::thread os;
    std::function<void()> fn;
    St st = St::kReady;
    const void* wait_obj = nullptr;  // MutexState/CvState while kBlocked
    bool force_granted = false;      // deadlock teardown: wait satisfied by fiat
  };

  // One frame of the DFS over scheduling choices. `alts` holds the
  // bound-admissible choices at this depth, default (non-preempting)
  // first; `next` indexes the alternative the current execution follows.
  struct StackEntry {
    std::vector<std::uint8_t> alts;
    std::size_t next = 0;
    std::uint32_t enabled_mask = 0;  // replay-consistency check
  };

  void reset_execution();
  void vthread_main(int tid);
  void schedule_loop(std::unique_lock<std::mutex>& lk);
  // Park the calling virtual thread in `st` until the scheduler hands the
  // token back. Caller holds `lk`.
  void vthread_pause(std::unique_lock<std::mutex>& lk, St st,
                     const void* obj);
  int pick_next(const std::vector<int>& enabled);
  int round_robin_pick(std::uint32_t mask);
  bool advance();
  void wake_waiters(const void* obj);
  void fail_locked(const std::string& msg);
  static std::string encode(const std::vector<std::uint8_t>& trace);

  Options opts_;

  // Token handshake: exactly one party runs at a time. -1 = the
  // controller/scheduler holds the token, otherwise the id of the active
  // virtual thread.
  std::mutex hmu_;
  std::condition_variable hcv_;
  int active_ = -1;

  std::vector<std::unique_ptr<VThread>> threads_;

  // Per-execution state.
  std::vector<std::uint8_t> trace_;  // chosen thread id per scheduling point
  int preemptions_ = 0;
  std::uint64_t steps_ = 0;
  int prev_ = -1;        // thread that ran last (preemption accounting)
  bool free_run_ = false;  // post-violation: deterministic drain to completion
  int rr_next_ = 0;

  // DFS bookkeeping (persists across executions).
  std::vector<StackEntry> stack_;
  std::vector<std::uint8_t> forced_;  // decoded replay seed
  bool replaying_ = false;

  // Results.
  std::optional<Violation> violation_;
  std::uint64_t explored_ = 0;
  std::uint64_t pruned_ = 0;
  std::uint64_t hash_ = kFnvOffset;
  bool exhausted_ = false;
};

void Scheduler::reset_execution() {
  trace_.clear();
  preemptions_ = 0;
  steps_ = 0;
  prev_ = -1;
  free_run_ = false;
  rr_next_ = 0;
  violation_.reset();
}

Outcome Scheduler::explore(const std::function<void()>& body) {
  LSL_PRECONDITION(tl_sched == nullptr, "nested explore() is not supported");
  tl_sched = this;
  replaying_ = !opts_.replay_seed.empty();
  if (replaying_) {
    for (char c : opts_.replay_seed) {
      const int v = seed_digit_value(c);
      LSL_PRECONDITION(v >= 0, "malformed replay seed character");
      forced_.push_back(static_cast<std::uint8_t>(v));
    }
  }
  const std::uint64_t budget =
      replaying_ ? 1 : static_cast<std::uint64_t>(opts_.max_schedules);
  for (std::uint64_t i = 0; i < budget; ++i) {
    reset_execution();
    body();
    LSL_PRECONDITION(
        threads_.empty(),
        "scenario spawned virtual threads but never called run_threads()");
    ++explored_;
    for (std::uint8_t c : trace_) {
      hash_ ^= c;
      hash_ *= kFnvPrime;
    }
    hash_ ^= 0xffu;  // schedule separator
    hash_ *= kFnvPrime;
    if (violation_) {
      if (violation_->seed.empty()) violation_->seed = encode(trace_);
      break;
    }
    if (replaying_) break;
    if (!advance()) {
      exhausted_ = true;
      break;
    }
  }
  tl_sched = nullptr;
  Outcome out;
  out.explored = explored_;
  out.pruned = pruned_;
  out.exhausted = exhausted_;
  out.schedule_hash = hash_;
  out.violation = violation_;
  return out;
}

bool Scheduler::advance() {
  while (!stack_.empty()) {
    StackEntry& e = stack_.back();
    if (e.next + 1 < e.alts.size()) {
      ++e.next;
      return true;
    }
    stack_.pop_back();
  }
  return false;
}

void Scheduler::spawn(std::function<void()> fn) {
  LSL_PRECONDITION(tl_tid == -1, "spawn() from a virtual thread");
  LSL_PRECONDITION(static_cast<int>(threads_.size()) < kMaxThreads,
                   "too many virtual threads");
  LSL_PRECONDITION(fn != nullptr, "spawn() with a null body");
  auto t = std::make_unique<VThread>();
  t->fn = std::move(fn);
  threads_.push_back(std::move(t));
}

void Scheduler::run_threads() {
  LSL_PRECONDITION(tl_tid == -1, "run_threads() from a virtual thread");
  if (threads_.empty()) return;
  {
    std::unique_lock<std::mutex> lk(hmu_);
    active_ = -1;
    for (std::size_t i = 0; i < threads_.size(); ++i) {
      // The checker is the one sanctioned std::thread user outside tests
      // and tools: virtual threads need real stacks to run real protocol
      // code, and the token handshake keeps exactly one runnable.
      threads_[i]->os =
          std::thread([this, i] { vthread_main(static_cast<int>(i)); });
    }
    schedule_loop(lk);
  }
  for (auto& t : threads_) t->os.join();
  threads_.clear();
}

void Scheduler::vthread_main(int tid) {
  tl_sched = this;
  tl_tid = tid;
  {
    std::unique_lock<std::mutex> lk(hmu_);
    hcv_.wait(lk, [&] { return active_ == tid; });
    threads_[static_cast<std::size_t>(tid)]->st = St::kRunning;
  }
  threads_[static_cast<std::size_t>(tid)]->fn();
  {
    std::unique_lock<std::mutex> lk(hmu_);
    threads_[static_cast<std::size_t>(tid)]->st = St::kDone;
    active_ = -1;
    hcv_.notify_all();
  }
  tl_tid = -1;
  tl_sched = nullptr;
}

void Scheduler::schedule_loop(std::unique_lock<std::mutex>& lk) {
  for (;;) {
    bool all_done = true;
    std::vector<int> enabled;
    for (std::size_t i = 0; i < threads_.size(); ++i) {
      if (threads_[i]->st != St::kDone) all_done = false;
      if (threads_[i]->st == St::kReady) {
        enabled.push_back(static_cast<int>(i));
      }
    }
    if (all_done) return;
    if (enabled.empty()) {
      // Every live thread is blocked on a mutex or condvar: deadlock.
      // Record it, then force-grant the waits so the execution drains
      // through normal code paths instead of aborting mid-protocol.
      std::ostringstream msg;
      msg << "deadlock: threads {";
      bool first = true;
      for (std::size_t i = 0; i < threads_.size(); ++i) {
        if (threads_[i]->st != St::kBlocked) continue;
        msg << (first ? "" : ",") << i;
        first = false;
      }
      msg << "} blocked with no runnable thread";
      fail_locked(msg.str());
      free_run_ = true;
      for (auto& t : threads_) {
        if (t->st == St::kBlocked) {
          t->st = St::kReady;
          t->force_granted = true;
        }
      }
      continue;
    }
    const int chosen = pick_next(enabled);
    prev_ = chosen;
    active_ = chosen;
    hcv_.notify_all();
    hcv_.wait(lk, [&] { return active_ == -1; });
  }
}

int Scheduler::round_robin_pick(std::uint32_t mask) {
  const int n = static_cast<int>(threads_.size());
  for (int k = 0; k < n; ++k) {
    const int cand = (rr_next_ + k) % n;
    if ((mask >> cand) & 1u) {
      rr_next_ = (cand + 1) % n;
      return cand;
    }
  }
  LSL_UNREACHABLE("round-robin pick with empty enabled mask");
}

int Scheduler::pick_next(const std::vector<int>& enabled) {
  std::uint32_t mask = 0;
  for (int t : enabled) mask |= (1u << t);
  ++steps_;
  if (!free_run_ &&
      steps_ > static_cast<std::uint64_t>(opts_.max_steps)) {
    fail_locked("execution exceeded max_steps (livelock?)");
    free_run_ = true;
  }
  int chosen = -1;
  if (free_run_) {
    // The drain is round-robin fair, so any body that terminates under a
    // fair scheduler finishes; a body that cannot is a scenario bug worth
    // a hard stop rather than a hang.
    LSL_INVARIANT(
        steps_ < 100ull * static_cast<std::uint64_t>(opts_.max_steps) + 1000,
        "free-run drain did not terminate");
    chosen = round_robin_pick(mask);
  } else if (replaying_) {
    const std::size_t depth = trace_.size();
    if (depth < forced_.size()) {
      const int want = forced_[depth];
      if ((mask >> want) & 1u) {
        chosen = want;
      } else {
        fail_locked("replay diverged: seeded thread not enabled");
        free_run_ = true;
        chosen = round_robin_pick(mask);
      }
    } else {
      // Past the recorded schedule (the violation fired later in the
      // original run than the seed covers — cannot happen for seeds this
      // explorer emitted): continue deterministically.
      chosen = round_robin_pick(mask);
    }
  } else {
    const std::size_t depth = trace_.size();
    if (depth < stack_.size()) {
      StackEntry& e = stack_[depth];
      if (e.enabled_mask != mask) {
        fail_locked(
            "nondeterministic scenario: enabled threads diverged on a "
            "replayed prefix");
        free_run_ = true;
        chosen = round_robin_pick(mask);
      } else {
        chosen = e.alts[e.next];
      }
    } else {
      StackEntry e;
      e.enabled_mask = mask;
      const bool prev_enabled = prev_ >= 0 && ((mask >> prev_) & 1u);
      const int def = prev_enabled ? prev_ : enabled.front();
      e.alts.push_back(static_cast<std::uint8_t>(def));
      for (int t : enabled) {
        if (t == def) continue;
        // Switching away from a still-runnable thread is a preemption;
        // branches past the bound are pruned (and counted).
        const int cost = prev_enabled ? 1 : 0;
        if (preemptions_ + cost <= opts_.preemption_bound) {
          e.alts.push_back(static_cast<std::uint8_t>(t));
        } else {
          ++pruned_;
        }
      }
      stack_.push_back(std::move(e));
      chosen = stack_.back().alts[0];
    }
  }
  if (prev_ >= 0 && ((mask >> prev_) & 1u) && chosen != prev_) {
    ++preemptions_;
  }
  trace_.push_back(static_cast<std::uint8_t>(chosen));
  return chosen;
}

void Scheduler::vthread_pause(std::unique_lock<std::mutex>& lk, St st,
                              const void* obj) {
  VThread& me = *threads_[static_cast<std::size_t>(tl_tid)];
  me.st = st;
  me.wait_obj = obj;
  active_ = -1;
  hcv_.notify_all();
  hcv_.wait(lk, [&] { return active_ == tl_tid; });
  me.st = St::kRunning;
  me.wait_obj = nullptr;
}

void Scheduler::wake_waiters(const void* obj) {
  for (auto& t : threads_) {
    if (t->st == St::kBlocked && t->wait_obj == obj) t->st = St::kReady;
  }
}

void Scheduler::fail_locked(const std::string& msg) {
  if (violation_) return;  // first violation wins; teardown noise ignored
  violation_ = Violation{msg, std::string()};
}

void Scheduler::fail(const std::string& msg) {
  std::unique_lock<std::mutex> lk(hmu_);
  fail_locked(msg);
  // A virtual thread keeps running after a failed check; drain the rest of
  // the execution deterministically instead of exploring a doomed state.
  free_run_ = true;
}

void Scheduler::op_point() {
  if (tl_tid < 0) return;  // controller/setup: direct access
  std::unique_lock<std::mutex> lk(hmu_);
  vthread_pause(lk, St::kReady, nullptr);
}

void Scheduler::mutex_lock(detail::MutexState* m) {
  if (tl_tid < 0) {
    LSL_PRECONDITION(!m->locked, "check::mutex: relock outside exploration");
    m->locked = true;
    m->owner = -2;
    return;
  }
  std::unique_lock<std::mutex> lk(hmu_);
  VThread& me = *threads_[static_cast<std::size_t>(tl_tid)];
  vthread_pause(lk, St::kReady, nullptr);  // acquisition is a visible op
  if (m->locked && m->owner == tl_tid) {
    // Self-deadlock is certain; report it rather than wedging the run.
    fail_locked("mutex relocked by its owning thread (self-deadlock)");
    free_run_ = true;
  } else {
    while (m->locked && !me.force_granted) {
      vthread_pause(lk, St::kBlocked, m);
    }
  }
  me.force_granted = false;
  m->locked = true;
  m->owner = tl_tid;
}

bool Scheduler::mutex_try_lock(detail::MutexState* m) {
  if (tl_tid < 0) {
    if (m->locked) return false;
    m->locked = true;
    m->owner = -2;
    return true;
  }
  std::unique_lock<std::mutex> lk(hmu_);
  vthread_pause(lk, St::kReady, nullptr);
  if (m->locked) return false;
  m->locked = true;
  m->owner = tl_tid;
  return true;
}

void Scheduler::mutex_unlock(detail::MutexState* m) {
  if (tl_tid < 0) {
    m->locked = false;
    m->owner = -1;
    return;
  }
  std::unique_lock<std::mutex> lk(hmu_);
  vthread_pause(lk, St::kReady, nullptr);  // release is a visible op
  if (!m->locked || (m->owner != tl_tid && !free_run_)) {
    fail_locked("mutex unlocked by a thread that does not own it");
    free_run_ = true;
  }
  m->locked = false;
  m->owner = -1;
  // Every blocked contender becomes runnable and re-competes for the lock
  // — the explorer decides who wins, modeling grab-order nondeterminism.
  wake_waiters(m);
}

void Scheduler::cv_wait(detail::CvState* cv, detail::MutexState* m) {
  LSL_PRECONDITION(tl_tid >= 0,
                   "check::cv: wait outside exploration would block forever");
  std::unique_lock<std::mutex> lk(hmu_);
  VThread& me = *threads_[static_cast<std::size_t>(tl_tid)];
  vthread_pause(lk, St::kReady, nullptr);
  if (!m->locked || (m->owner != tl_tid && !free_run_)) {
    fail_locked("cv wait without holding the associated mutex");
    free_run_ = true;
  }
  // Atomically release the mutex and join the wait set.
  m->locked = false;
  m->owner = -1;
  wake_waiters(m);
  cv->waiters |= (1u << tl_tid);
  while (((cv->waiters >> tl_tid) & 1u) && !me.force_granted) {
    vthread_pause(lk, St::kBlocked, cv);
  }
  cv->waiters &= ~(1u << tl_tid);
  me.force_granted = false;
  // Reacquire before returning, competing like any lock() would.
  while (m->locked && !me.force_granted) {
    vthread_pause(lk, St::kBlocked, m);
  }
  me.force_granted = false;
  m->locked = true;
  m->owner = tl_tid;
}

void Scheduler::cv_notify(detail::CvState* cv) {
  if (tl_tid < 0) {
    // No virtual thread can be waiting when the controller runs (they are
    // all joined between run_threads() calls); nothing to do.
    cv->waiters = 0;
    return;
  }
  std::unique_lock<std::mutex> lk(hmu_);
  vthread_pause(lk, St::kReady, nullptr);
  const std::uint32_t w = cv->waiters;
  cv->waiters = 0;
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    if ((w >> i) & 1u) threads_[i]->st = St::kReady;
  }
}

std::string Scheduler::encode(const std::vector<std::uint8_t>& trace) {
  std::string s;
  s.reserve(trace.size());
  for (std::uint8_t c : trace) s.push_back(kSeedDigits[c & 31u]);
  return s;
}

}  // namespace

namespace detail {

void op_point() {
  if (tl_sched != nullptr) tl_sched->op_point();
}

void mutex_lock(MutexState* m) {
  if (tl_sched != nullptr) {
    tl_sched->mutex_lock(m);
    return;
  }
  LSL_PRECONDITION(!m->locked, "check::mutex: relock with no scheduler");
  m->locked = true;
  m->owner = -2;
}

bool mutex_try_lock(MutexState* m) {
  if (tl_sched != nullptr) return tl_sched->mutex_try_lock(m);
  if (m->locked) return false;
  m->locked = true;
  m->owner = -2;
  return true;
}

void mutex_unlock(MutexState* m) {
  if (tl_sched != nullptr) {
    tl_sched->mutex_unlock(m);
    return;
  }
  m->locked = false;
  m->owner = -1;
}

void cv_wait(CvState* cv, MutexState* m) {
  LSL_PRECONDITION(tl_sched != nullptr,
                   "check::cv: wait with no scheduler would block forever");
  tl_sched->cv_wait(cv, m);
}

void cv_notify(CvState* cv) {
  if (tl_sched != nullptr) {
    tl_sched->cv_notify(cv);
    return;
  }
  cv->waiters = 0;
}

void assert_fail(const char* msg) {
  if (tl_sched != nullptr) {
    tl_sched->fail(msg);
    return;
  }
  // A kChecked instantiation tripped outside any exploration; treat it as
  // the contract violation it is.
  util::contract_fail("model-invariant", __FILE__, __LINE__, "-", msg);
}

}  // namespace detail

std::string Outcome::census() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "explored=%llu pruned=%llu exhausted=%d hash=%016llx",
                static_cast<unsigned long long>(explored),
                static_cast<unsigned long long>(pruned), exhausted ? 1 : 0,
                static_cast<unsigned long long>(schedule_hash));
  return std::string(buf);
}

Outcome explore(const Options& opts, const std::function<void()>& body) {
  Scheduler sched(opts);
  return sched.explore(body);
}

void spawn(std::function<void()> fn) {
  LSL_PRECONDITION(tl_sched != nullptr, "spawn() outside explore()");
  tl_sched->spawn(std::move(fn));
}

void run_threads() {
  LSL_PRECONDITION(tl_sched != nullptr, "run_threads() outside explore()");
  tl_sched->run_threads();
}

void check_that(bool ok, const std::string& msg) {
  if (ok) return;
  LSL_PRECONDITION(tl_sched != nullptr, "check_that() outside explore()");
  tl_sched->fail(msg);
}

Options merge_options(const Options& base, const Options& over) {
  Options m = base;
  if (over.max_schedules >= 0) m.max_schedules = over.max_schedules;
  if (over.preemption_bound >= 0) m.preemption_bound = over.preemption_bound;
  if (over.max_steps >= 0) m.max_steps = over.max_steps;
  if (!over.replay_seed.empty()) m.replay_seed = over.replay_seed;
  return m;
}

}  // namespace lsl::check
