#include "check/suite.hpp"

#include <cstddef>
#include <memory>

#include "buf/budget.hpp"
#include "buf/pool.hpp"
#include "buf/shared_budget.hpp"
#include "check/shim.hpp"
#include "engine/drain_gate.hpp"
#include "engine/post_queue.hpp"
#include "health/board.hpp"
#include "live/shared_wheel.hpp"
#include "metrics/metrics.hpp"
#include "span/span.hpp"
#include "util/contract.hpp"

namespace lsl::check {

namespace {

using MS = ModelSync;
using ModelPool = buf::BasicChunkPool<MS>;
using ModelRef = buf::BasicChunkRef<MS>;
using ModelRecorder = span::BasicFlightRecorder<MS>;
using ModelWheel = live::BasicSharedDeadlineWheel<MS>;
using ModelCounter = metrics::BasicCounter<MS>;
using ModelGauge = metrics::BasicGauge<MS>;
using ModelCounterMap = metrics::BasicInstrumentMap<MS, ModelCounter>;
using ModelSharedBudget = buf::BasicSharedBudget<MS>;
using ModelPostQueue = engine::BasicPostQueue<MS>;
using ModelDrainGate = engine::BasicDrainGate<MS>;
using ModelHealthBoard = health::BasicHealthBoard<MS>;

// ---------------------------------------------------------------------------
// buf: ChunkPool + MemoryBudget
// ---------------------------------------------------------------------------

// Two threads race copies and resets of one chunk; the last reset recycles
// it. Deep checks (refcount never resurrects, no double recycle, freelist
// refs zero) are armed the whole time.
void pool_refcount() {
  buf::PoolConfig cfg;
  cfg.chunk_bytes = 1024;
  cfg.budget_bytes = 4 * 1024;
  ModelPool pool(cfg);
  ModelRef shared = pool.acquire();
  check_that(static_cast<bool>(shared), "setup: acquire refused with headroom");
  ModelRef c1 = shared;
  ModelRef c2 = shared;
  shared.reset();
  spawn([&] {
    c1.data()[0] = 1;
    c1.reset();
  });
  spawn([&] {
    c2.data()[1] = 2;
    c2.reset();
  });
  run_threads();
  const buf::PoolStats st = pool.stats();
  check_that(st.in_use_bytes == 0, "last reset must release the budget");
  check_that(st.free_chunks == 1, "recycled chunk must be on the freelist");
  check_that(st.allocs == 1 && st.failures == 0, "exactly one acquire");
}

// Three threads contend a two-chunk budget: every acquire must be
// accounted as a success or a refusal, reserve/release must be symmetric,
// and drained pressure must clear.
void pool_budget() {
  buf::PoolConfig cfg;
  cfg.chunk_bytes = 1024;
  cfg.budget_bytes = 2 * 1024;
  cfg.low_watermark = 0.25;
  cfg.high_watermark = 0.75;
  ModelPool pool(cfg);
  int got[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    spawn([&pool, &got, i] {
      ModelRef r = pool.acquire();
      if (r) {
        r.data()[0] = static_cast<std::uint8_t>(i);
        got[i] = 1;
        r.reset();
      }
    });
  }
  run_threads();
  const int oks = got[0] + got[1] + got[2];
  const buf::PoolStats st = pool.stats();
  check_that(st.allocs + st.failures == 3, "every acquire success or refusal");
  check_that(st.allocs == static_cast<std::uint64_t>(oks),
             "success count matches delivered refs");
  check_that(oks >= 2, "at most one contender can see an exhausted budget");
  check_that(st.in_use_bytes == 0, "reserve/release symmetric after drain");
  check_that(!pool.under_pressure(), "pressure must clear once drained");
}

// BUG FIXTURE (the "dropped release" acceptance case): a worker that
// observes admission pressure returns early and skips its release. Only
// schedules where both workers hold reservations simultaneously assert
// pressure, so the leak needs a preemption to surface — exactly what the
// explorer provides.
void budget_leak_bug() {
  buf::MemoryBudget budget(4096, 0.25, 0.5);
  ModelMutex mu;  // MemoryBudget is not thread-safe; scenario guards it
  for (int i = 0; i < 2; ++i) {
    spawn([&] {
      bool ok;
      {
        MS::lock_guard lock(mu);
        ok = budget.reserve(1024);
      }
      if (!ok) return;
      bool pressured;
      {
        MS::lock_guard lock(mu);
        pressured = budget.under_pressure();
      }
      if (pressured) return;  // BUG: early return drops the release
      {
        MS::lock_guard lock(mu);
        budget.release(1024);
      }
    });
  }
  run_threads();
  check_that(budget.in_use() == 0,
             "memory budget leaked: reserve without matching release");
}

// BUG FIXTURE: can_acquire()-then-acquire() is a check-then-act race — the
// headroom the check promised can be gone by the time acquire() runs.
void pool_toctou_bug() {
  buf::PoolConfig cfg;
  cfg.chunk_bytes = 1024;
  cfg.budget_bytes = 1024;  // exactly one chunk of headroom
  ModelPool pool(cfg);
  int delivered[2] = {1, 1};
  for (int i = 0; i < 2; ++i) {
    spawn([&pool, &delivered, i] {
      if (pool.can_acquire()) {  // BUG: decision taken outside acquire's lock
        ModelRef r = pool.acquire();
        delivered[i] = r ? 1 : 0;
        if (r) {
          r.data()[0] = 1;
          r.reset();
        }
      }
    });
  }
  run_threads();
  check_that(delivered[0] == 1 && delivered[1] == 1,
             "can_acquire() promised headroom that acquire() then refused");
}

// The sharded runtime's budget protocol: two shard pools, each with its
// own freelist and local accounting, draw on ONE SharedBudget. Three
// contenders race across the pools against a two-chunk process-wide
// ceiling. No schedule may ever admit bytes past the ceiling, every
// acquire must resolve to a success or a refusal, and both the shared and
// the per-shard local accounting must drain symmetric.
void buf_shared_budget() {
  buf::PoolConfig cfg;
  cfg.chunk_bytes = 1024;
  cfg.budget_bytes = 2 * 1024;
  cfg.low_watermark = 0.25;
  cfg.high_watermark = 0.75;
  ModelSharedBudget budget(cfg.budget_bytes, cfg.low_watermark,
                           cfg.high_watermark);
  ModelPool shard_a(cfg, &budget);
  ModelPool shard_b(cfg, &budget);
  ModelPool* pools[3] = {&shard_a, &shard_b, &shard_a};
  int got[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    spawn([&budget, &pools, &got, i] {
      ModelRef r = pools[i]->acquire();
      if (r) {
        check_that(budget.in_use() <= budget.budget(),
                   "shared budget admitted bytes past the ceiling");
        r.data()[0] = static_cast<std::uint8_t>(i);
        got[i] = 1;
        r.reset();
      }
    });
  }
  run_threads();
  const buf::PoolStats sa = shard_a.stats();
  const buf::PoolStats sb = shard_b.stats();
  check_that(sa.allocs + sb.allocs + sa.failures + sb.failures == 3,
             "every cross-shard acquire success or refusal");
  check_that(sa.allocs + sb.allocs ==
                 static_cast<std::uint64_t>(got[0] + got[1] + got[2]),
             "success count matches delivered refs");
  check_that(got[0] + got[1] + got[2] >= 2,
             "at most one contender can see an exhausted shared budget");
  check_that(budget.in_use() == 0, "shared reserve/release symmetric");
  check_that(sa.in_use_bytes == 0 && sb.in_use_bytes == 0,
             "per-shard local accounting symmetric after drain");
  check_that(budget.peak() <= budget.budget(),
             "peak may never exceed the shared ceiling");
  check_that(!budget.under_pressure(), "pressure must clear once drained");
}

// The sharded runtime's work-injection protocol: a control thread posts
// closures into a shard's queue (the was-empty return deciding whether to
// ring the engine's wakeup) while the shard thread drains. No schedule may
// lose or duplicate a task, and the empty->non-empty edge must signal at
// least once — the coalescing contract wakeup() relies on.
void engine_post_queue() {
  ModelPostQueue q;
  int ran[2] = {0, 0};
  int wakeups = 0;  // control-thread local
  spawn([&] {
    for (int i = 0; i < 2; ++i) {
      if (q.post([&ran, i] { ++ran[i]; })) ++wakeups;
    }
  });
  spawn([&] { q.drain(); });  // the shard thread's wakeup-driven drain
  run_threads();
  q.drain();  // the engine drains again on its next turn
  check_that(ran[0] == 1 && ran[1] == 1,
             "every posted task runs exactly once");
  check_that(q.pending() == 0, "queue drained");
  check_that(wakeups >= 1, "the empty->non-empty edge must signal a wakeup");
  check_that(wakeups <= 2, "a non-empty queue must coalesce, not re-signal");
}

// The sharded runtime's drain rendezvous: SIGTERM can land more than once
// and begin_drain() races itself, so exactly one request() wins; each
// shard then finishes its sessions and arrives exactly once; all_done()
// becomes true precisely at the last arrival (the over-arrival assert in
// the gate stays armed throughout).
void engine_drain_gate() {
  ModelDrainGate gate(2);
  bool won[2] = {false, false};
  for (int i = 0; i < 2; ++i) {
    spawn([&gate, &won, i] {
      won[i] = gate.request();  // repeated signal: both shards may request
      check_that(gate.requested(), "request() must be visible immediately");
      const bool last = gate.arrive();
      if (last) {
        check_that(gate.all_done(), "last arrival must observe all_done");
      }
    });
  }
  run_threads();
  check_that((won[0] ? 1 : 0) + (won[1] ? 1 : 0) == 1,
             "exactly one racing request() may win");
  check_that(gate.arrived() == 2, "every shard arrives exactly once");
  check_that(gate.all_done(), "drain resolves once all shards arrive");
}

// ---------------------------------------------------------------------------
// span: FlightRecorder claim/fill/release ring
// ---------------------------------------------------------------------------

// Records are written with a redundant encoding (trace_id == bytes,
// start == end) so any torn read/write shows up as an inconsistent record.
bool torn(const span::SpanRecord& r) {
  return r.trace_id != r.bytes || r.start != r.end;
}

// Two writers on distinct slots race a concurrent snapshotter. The
// snapshot must only ever see internally consistent records, and every
// record must end up published or counted as dropped.
void recorder_claim() {
  ModelRecorder rec(2);
  spawn([&] { rec.record({1, span::kSpanAccept, 1.0, 1.0, 1}); });
  spawn([&] { rec.record({2, span::kSpanDial, 2.0, 2.0, 2}); });
  spawn([&] {
    std::vector<span::SpanRecord> snap;
    rec.snapshot(snap);
    for (const span::SpanRecord& r : snap) {
      check_that(!torn(r), "concurrent snapshot observed a torn record");
    }
  });
  run_threads();
  check_that(rec.recorded() == 2, "both tickets taken");
  std::vector<span::SpanRecord> fin;
  rec.snapshot(fin);
  for (const span::SpanRecord& r : fin) {
    check_that(!torn(r), "published record torn");
  }
  check_that(fin.size() + rec.dropped() == 2,
             "every record published or counted as a drop");
}

// Three writers on a two-slot ring: two tickets collide on slot 0, so the
// run exercises claim contention (a counted drop) and/or overwrite. The
// ring must retain exactly its capacity in published records.
void recorder_wrap() {
  ModelRecorder rec(2);
  for (int i = 0; i < 3; ++i) {
    spawn([&rec, i] {
      const std::uint64_t id = static_cast<std::uint64_t>(i) + 1;
      rec.record({id, span::kSpanStreamWindow, static_cast<double>(id),
                  static_cast<double>(id), id});
    });
  }
  run_threads();
  check_that(rec.recorded() == 3, "all three tickets taken");
  check_that(rec.dropped() <= 1, "only one of a colliding pair can drop");
  std::vector<span::SpanRecord> fin;
  rec.snapshot(fin);
  for (const span::SpanRecord& r : fin) {
    check_that(!torn(r), "published record torn");
  }
  check_that(fin.size() == 2, "a full lapped ring retains capacity records");
}

// ---------------------------------------------------------------------------
// live: SharedDeadlineWheel
// ---------------------------------------------------------------------------

// Two firers race a canceller. cancel()==true must mean the callback never
// runs; either way it runs at most once, and the callback's reentrant
// schedule() must not self-deadlock (it would, if fire_due held the wheel
// lock across callbacks — the model mutex detects exactly that).
void wheel_cancel() {
  ModelWheel wheel;
  int ran = 0;
  ModelWheel::Token tok = wheel.schedule(100, [&] {
    ++ran;
    wheel.schedule(200, [] {});
  });
  bool cancelled = false;
  spawn([&] { wheel.fire_due(100); });
  spawn([&] { wheel.fire_due(100); });
  spawn([&] { cancelled = wheel.cancel(tok); });
  run_threads();
  check_that(ran <= 1, "a deadline fired more than once");
  if (cancelled) {
    check_that(ran == 0, "cancel()==true but the callback ran");
  } else {
    check_that(ran == 1, "cancel()==false yet the due callback never ran");
  }
  check_that(wheel.size() == static_cast<std::size_t>(ran),
             "reentrant schedule pending iff the callback ran");
}

// ---------------------------------------------------------------------------
// metrics: registration + extreme tracking
// ---------------------------------------------------------------------------

// Two threads race get_or_create() on one name: they must intern to the
// same instrument and neither increment may be lost.
void metrics_register() {
  ModelCounterMap map;
  const ModelCounter* seen[2] = {nullptr, nullptr};
  for (int i = 0; i < 2; ++i) {
    spawn([&map, &seen, i] {
      ModelCounter& c = map.get_or_create("relay.sessions");
      c.inc();
      seen[i] = &c;
    });
  }
  run_threads();
  check_that(seen[0] != nullptr && seen[0] == seen[1],
             "racing registrations must intern to one instrument");
  check_that(seen[0]->value() == 2, "an increment was lost");
  check_that(map.size() == 1, "one name must yield one instrument");
}

// The fixed Gauge: extremes converge through CAS from identity values, so
// no schedule can lose one.
void gauge_extremes() {
  ModelGauge g;
  spawn([&] { g.set(5.0); });
  spawn([&] { g.set(3.0); });
  run_threads();
  check_that(g.touched(), "gauge set but not touched");
  check_that(g.max() == 5.0, "max lost the larger concurrent set");
  check_that(g.min() == 3.0, "min lost the smaller concurrent set");
  const double v = g.value();
  check_that(v == 5.0 || v == 3.0, "value must be one of the sets");
}

// BUG FIXTURE: the pre-seam Gauge::set seeded the extremes from the first
// setter after a touched_ exchange; a concurrent setter's CAS-established
// extreme lands in that window and is clobbered by the seeding store.
struct SeededGauge {
  ModelAtomic<double> v_{0.0};
  ModelAtomic<double> max_{0.0};
  ModelAtomic<double> min_{0.0};
  ModelAtomic<bool> touched_{false};

  void set(double v) noexcept {
    v_.store(v);
    if (!touched_.exchange(true)) {
      max_.store(v);
      min_.store(v);
      return;
    }
    double cur = max_.load();
    while (v > cur && !max_.compare_exchange_weak(cur, v)) {
    }
    cur = min_.load();
    while (v < cur && !min_.compare_exchange_weak(cur, v)) {
    }
  }
};

void gauge_seed_bug() {
  SeededGauge g;
  spawn([&] { g.set(5.0); });
  spawn([&] { g.set(3.0); });
  run_threads();
  check_that(g.max_.load() == 5.0,
             "seeding store clobbered a concurrent larger max");
  check_that(g.min_.load() == 3.0,
             "seeding store clobbered a concurrent smaller min");
}

// ---------------------------------------------------------------------------
// health: HealthBoard scoring + hysteresis
// ---------------------------------------------------------------------------

// Two observers race failure/success observations on one depot (the
// daemon's relay finishes vs a sibling's — or under ShardedLsd, the shard
// thread vs the gossip poller's merge path, which shares the same lock).
// The invariants are what no interleaving may break: every counter update
// lands, every state change is recorded exactly once, the additive score
// commutes at a single instant, and hysteresis moves at most one level
// per observation (the board's own kChecked model_assert arms that last
// one on every internal step as well).
void health_transitions() {
  ModelHealthBoard board;
  const std::uint64_t t = 1000;  // one instant: decay stays out of the frame
  health::HealthEffect eff[4];
  spawn([&] {
    eff[0] = board.observe_failure("d1", t);
    eff[1] = board.observe_failure("d1", t);
  });
  spawn([&] {
    eff[2] = board.observe_failure("d1", t);
    eff[3] = board.observe_success("d1", t);
  });
  run_threads();
  std::uint64_t stepped = 0;
  for (const health::HealthEffect& e : eff) {
    check_that(e.steps() <= 1, "hysteresis must move at most one level");
    if (e.transitioned()) ++stepped;
  }
  const health::DepotHealth row = board.row("d1");
  check_that(row.failures == 3 && row.successes == 1,
             "an observation's counter update was lost");
  check_that(row.transitions == stepped,
             "a state transition was lost or invented");
  check_that(board.transitions() == stepped,
             "the board-wide transition total drifted from the row's");
  // 3 failures and 1 success at one instant: the additive score is
  // order-independent (1 - 3*0.25 + 0.15; clamping never binds en route).
  const double want = 1.0 - 3 * 0.25 + 0.15;
  check_that(row.score > want - 1e-9 && row.score < want + 1e-9,
             "score must commute across observation orders");
  // Where the ladder halts depends on when the success landed — but a
  // 0.40 score can never read healthy (it is inside the demote band) and
  // never dead (the streak is broken and the score clears demote_dead).
  check_that(row.state == health::DepotState::kDegraded ||
                 row.state == health::DepotState::kSuspect,
             "final state must sit inside the hysteresis band");
  check_that(!board.admissible("d1") ||
                 row.state == health::DepotState::kDegraded,
             "admission verdict must match the final state");
}

// ---------------------------------------------------------------------------
// check: the shims themselves
// ---------------------------------------------------------------------------

// Producer/consumer over a model condvar: classic predicate-loop handoff.
void cv_handoff() {
  ModelMutex mu;
  ModelCv cv;
  int queued = 0;  // both guarded by mu
  bool done = false;
  int consumed = 0;
  spawn([&] {
    for (int i = 0; i < 2; ++i) {
      MS::unique_lock lk(mu);
      ++queued;
      cv.notify_one();
    }
    MS::unique_lock lk(mu);
    done = true;
    cv.notify_one();
  });
  spawn([&] {
    MS::unique_lock lk(mu);
    for (;;) {
      cv.wait(lk, [&] { return queued > 0 || done; });
      while (queued > 0) {
        --queued;
        ++consumed;
      }
      if (done) break;
    }
  });
  run_threads();
  check_that(consumed == 2, "every produced item consumed exactly once");
  check_that(queued == 0, "queue drained");
}

// BUG FIXTURE: the textbook AB/BA ordering deadlock (the dynamic twin of
// lsl_lint's lock-order rule). Needs one preemption between T0's two
// acquisitions; the scheduler's deadlock detector reports it with a seed.
void lock_order_bug() {
  ModelMutex a;
  ModelMutex b;
  // The deliberate AB/BA below is this fixture's whole point; the static
  // rule (which flags exactly this shape) is waved off inline.
  spawn([&] {
    MS::lock_guard la(a);
    MS::lock_guard lb(b);  // lsl-lint: allow(lock-order)
  });
  spawn([&] {
    MS::lock_guard lb(b);
    MS::lock_guard la(a);  // lsl-lint: allow(lock-order)
  });
  run_threads();
}

// ---------------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------------

struct ScenarioDef {
  ScenarioInfo info;
  void (*body)();
};

Options budgets(int max_schedules, int preemption_bound, int max_steps) {
  Options o;
  o.max_schedules = max_schedules;
  o.preemption_bound = preemption_bound;
  o.max_steps = max_steps;
  return o;
}

const std::vector<ScenarioDef>& defs() {
  static const std::vector<ScenarioDef> kDefs = {
      {{"pool_refcount", "buf",
        "ChunkPool refcount copy/reset race; last ref recycles exactly once",
        false, budgets(20000, 2, 20000)},
       &pool_refcount},
      {{"pool_budget", "buf",
        "3 threads contend a 2-chunk budget; accounting stays symmetric",
        false, budgets(60000, 2, 20000)},
       &pool_budget},
      {{"budget_leak_bug", "buf",
        "seeded bug: worker seeing pressure skips its release (leak)", true,
        budgets(20000, 2, 20000)},
       &budget_leak_bug},
      {{"pool_toctou_bug", "buf",
        "seeded bug: can_acquire()/acquire() check-then-act race", true,
        budgets(20000, 2, 20000)},
       &pool_toctou_bug},
      {{"buf_shared_budget", "buf",
        "2 shard pools on one SharedBudget; ceiling holds, drain symmetric",
        false, budgets(120000, 2, 40000)},
       &buf_shared_budget},
      {{"engine_post_queue", "engine",
        "cross-thread post/drain loses no task; empty edge signals wakeup",
        false, budgets(60000, 2, 20000)},
       &engine_post_queue},
      {{"engine_drain_gate", "engine",
        "racing drain requests: one winner, exact arrivals, all_done last",
        false, budgets(60000, 2, 20000)},
       &engine_drain_gate},
      {{"recorder_claim", "span",
        "2 writers + concurrent snapshot on the claim/fill/release ring",
        false, budgets(60000, 2, 20000)},
       &recorder_claim},
      {{"recorder_wrap", "span",
        "3 writers lap a 2-slot ring: claim contention drops, never tears",
        false, budgets(60000, 2, 20000)},
       &recorder_wrap},
      {{"wheel_cancel", "live",
        "2 firers vs cancel on SharedDeadlineWheel; reentrant schedule",
        false, budgets(60000, 2, 20000)},
       &wheel_cancel},
      {{"metrics_register", "metrics",
        "racing get_or_create() interns one instrument, loses no update",
        false, budgets(20000, 2, 20000)},
       &metrics_register},
      {{"gauge_extremes", "metrics",
        "fixed Gauge: concurrent sets never lose a max/min extreme", false,
        budgets(20000, 2, 20000)},
       &gauge_extremes},
      {{"gauge_seed_bug", "metrics",
        "seeded bug: pre-seam Gauge extreme-seeding store clobbers a CAS",
        true, budgets(20000, 2, 20000)},
       &gauge_seed_bug},
      {{"health_transitions", "health",
        "racing observers on one depot: no lost transition, one-step "
        "hysteresis",
        false, budgets(60000, 2, 20000)},
       &health_transitions},
      {{"cv_handoff", "check",
        "producer/consumer over the model condvar (predicate loop)", false,
        budgets(20000, 2, 20000)},
       &cv_handoff},
      {{"lock_order_bug", "check",
        "seeded bug: AB/BA mutex ordering deadlock, detected with a seed",
        true, budgets(20000, 2, 20000)},
       &lock_order_bug},
  };
  return kDefs;
}

const ScenarioDef* find_def(const std::string& name) {
  for (const ScenarioDef& d : defs()) {
    if (d.info.name == name) return &d;
  }
  return nullptr;
}

}  // namespace

const std::vector<ScenarioInfo>& scenarios() {
  static const std::vector<ScenarioInfo> kInfos = [] {
    std::vector<ScenarioInfo> out;
    for (const ScenarioDef& d : defs()) out.push_back(d.info);
    return out;
  }();
  return kInfos;
}

const ScenarioInfo* find_scenario(const std::string& name) {
  const ScenarioDef* d = find_def(name);
  return d == nullptr ? nullptr : &d->info;
}

Outcome run_scenario(const std::string& name, const Options& overrides) {
  const ScenarioDef* d = find_def(name);
  LSL_PRECONDITION(d != nullptr, "run_scenario: unknown scenario name");
  const Options merged = merge_options(d->info.defaults, overrides);
  void (*body)() = d->body;
  return explore(merged, [body] { body(); });
}

}  // namespace lsl::check
