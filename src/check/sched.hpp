// Deterministic concurrency model checker (Loom/CHESS style).
//
// explore() runs a scenario body many times, each time forcing a different
// interleaving of its virtual threads. Threads are real OS threads, but a
// token handshake serializes them: exactly one runs at a time, and it runs
// until its next *scheduling point* — any operation on a ModelSync
// primitive (src/check/shim.hpp). At each point the explorer either
// follows its depth-first search stack or, past the explored frontier,
// extends it with every runnable thread that the preemption bound allows:
// staying on the current thread is free, switching away from a thread that
// could have continued costs one preemption. With the CHESS insight that
// most concurrency bugs need only a couple of preemptions, a small bound
// covers the interesting interleavings of 2-4 threads at polynomial cost;
// schedules beyond the bound are counted as pruned.
//
// Every schedule is a sequence of chosen thread ids, encoded as a compact
// seed string ("01121..."). A violation — failed check_that(), failed
// built-in model_assert(), deadlock, or step-budget livelock — reports the
// seed of the offending schedule; replaying it (Options::replay_seed)
// reproduces the exact interleaving, deterministically, in one execution.
//
// Violations do not unwind: the execution switches to a deterministic
// free-run mode and lets every thread finish (blocked threads are
// force-granted their waits), so protocol objects are torn down through
// their normal code paths instead of aborting mid-critical-section.
//
// The full schedule census (explored/pruned counts plus an FNV-1a hash
// over every schedule explored) is itself deterministic for a fixed
// scenario and budget — the reproducibility guard tests/mcheck_test.cpp
// pins down.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

namespace lsl::check {

/// Exploration knobs. -1 / empty means "use the default" (or, through
/// tools/lsl_mc, the scenario's own default), so callers override only
/// what they mean to.
struct Options {
  /// Executions to explore before giving up (-1 = default 4096).
  int max_schedules = -1;
  /// Max preemptive context switches per execution (-1 = default 2).
  int preemption_bound = -1;
  /// Max scheduling points per execution; exceeding it is reported as a
  /// livelock violation (-1 = default 20000).
  int max_steps = -1;
  /// Non-empty: skip exploration and replay exactly this schedule.
  std::string replay_seed;
};

/// One schedule-dependent failure, with the seed that reproduces it.
struct Violation {
  std::string message;
  std::string seed;
};

/// Result of an explore() call.
struct Outcome {
  std::uint64_t explored = 0;  ///< executions actually run
  std::uint64_t pruned = 0;    ///< branches cut by the preemption bound
  /// True when the DFS ran out of untried schedules within budget (the
  /// scenario is exhaustively verified up to the preemption bound).
  bool exhausted = false;
  /// FNV-1a over every explored schedule, in order — the census
  /// fingerprint; byte-identical across runs for fixed options.
  std::uint64_t schedule_hash = 0;
  std::optional<Violation> violation;

  /// "explored=N pruned=M exhausted=0|1 hash=%016x" (census guard format).
  std::string census() const;
};

/// Explore the interleavings of `body`. The body runs on the calling
/// thread (the controller): it sets up state, spawn()s 2-4 virtual
/// threads, run_threads()s them to completion, then checks postconditions
/// with check_that(). It is called once per schedule and must be
/// deterministic apart from the interleaving (no clocks, no randomness, no
/// branching on addresses).
Outcome explore(const Options& opts, const std::function<void()>& body);

/// Register a virtual thread (controller only, before run_threads()).
void spawn(std::function<void()> fn);

/// Run every spawned thread under the scheduler until all finish
/// (controller only). One run_threads() per body invocation.
void run_threads();

/// Scenario assertion: a failure is recorded as a violation against the
/// current schedule (with its replay seed) rather than aborting. Usable
/// from virtual threads and from the controller.
void check_that(bool ok, const std::string& msg);

/// `over` wins field-by-field where it was explicitly set.
Options merge_options(const Options& base, const Options& over);

}  // namespace lsl::check
