// Liveness instruments.
//
// Like the fault/pool bundles, liveness metrics are daemon-global flat
// names (`live.*`): one daemon, one deadline subsystem, one set of
// instruments. Every name registered here must appear in
// docs/OBSERVABILITY.md — the `live-metrics-docs` rule of tools/lsl_lint
// enforces that for any `live.` string literal in this directory.
#pragma once

#include "live/liveness.hpp"
#include "metrics/metrics.hpp"

namespace lsl::live {

/// Pre-resolved liveness instruments (see the metrics bundle pattern in
/// src/metrics/instruments.hpp: resolve once, hot path touches atomics).
struct LiveMetrics {
  explicit LiveMetrics(metrics::Registry& reg);

  metrics::Counter* timeouts_header;  ///< header-read deadlines fired
  metrics::Counter* timeouts_dial;    ///< next-hop dial deadlines fired
  metrics::Counter* timeouts_idle;    ///< idle deadlines fired
  metrics::Counter* timeouts_stall;   ///< progress-watchdog expiries
  metrics::Counter* drains_started;   ///< graceful drains begun
  metrics::Counter* drains_completed; ///< drains that reached quiescence
  metrics::Counter* drains_expired;   ///< drains cut off by the deadline
  metrics::Gauge* slowest_relay_bps;  ///< slowest live relay's progress rate

  /// Bump the counter for one fired deadline class (kDrain maps to
  /// drains_expired — the only way a drain deadline fires).
  void on_timeout(DeadlineKind kind);
};

}  // namespace lsl::live
