// SharedDeadlineWheel — the cross-thread facade over DeadlineWheel.
//
// Today's daemon drives its wheel from one epoll thread, so the plain
// DeadlineWheel is deliberately not thread-safe. The sharded daemon the
// ROADMAP plans (SO_REUSEPORT, one loop per core) will need shards to arm
// and cancel deadlines on each other — park expiry migrates with a
// session, drain fans out across shards. This facade is that component,
// landed first under the model checker: every schedule/cancel/fire_due
// interleaving of the Sync=ModelSync instantiation is explored by
// tools/lsl_mc (scenario `wheel_cancel`) before any daemon thread ever
// touches it.
//
// Locking contract: the mutex guards the wheel's structures only.
// fire_due() detaches the due batch under the lock (DeadlineWheel::
// take_due) and runs the callbacks OUTSIDE it, so callbacks may re-enter
// schedule()/cancel() freely — holding the lock across user code is how
// wheel facades classically deadlock. The price is a small semantic
// loosening relative to the single-threaded wheel, stated precisely:
//
//  * cancel() == true  still guarantees the callback never runs;
//  * cancel() == false means it already ran or is in (or committed to)
//    a concurrent fire_due batch — "too late", not an error;
//  * a callback scheduling an already-due deadline leaves it for the next
//    fire_due pass instead of running it in the same one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "check/shim.hpp"
#include "live/deadline_wheel.hpp"

namespace lsl::live {

template <typename Sync>
class BasicSharedDeadlineWheel {
 public:
  using Token = DeadlineWheel::Token;
  using Callback = DeadlineWheel::Callback;
  static constexpr Token kInvalidToken = DeadlineWheel::kInvalidToken;

  BasicSharedDeadlineWheel() = default;
  BasicSharedDeadlineWheel(const BasicSharedDeadlineWheel&) = delete;
  BasicSharedDeadlineWheel& operator=(const BasicSharedDeadlineWheel&) =
      delete;

  /// Arm a deadline at absolute instant `due` (host timebase, ns).
  Token schedule(std::int64_t due, Callback cb) {
    typename Sync::lock_guard lock(mu_);
    return wheel_.schedule(due, std::move(cb));
  }

  /// Disarm a pending deadline; true guarantees the callback never runs.
  bool cancel(Token token) {
    typename Sync::lock_guard lock(mu_);
    return wheel_.cancel(token);
  }

  /// Run every deadline due at `now`. The due batch is detached under the
  /// lock and the callbacks run outside it, in the wheel's deterministic
  /// order; see the header comment for the exact semantics.
  std::size_t fire_due(std::int64_t now) {
    std::vector<Callback> due;
    {
      typename Sync::lock_guard lock(mu_);
      wheel_.take_due(now, &due);
    }
    for (Callback& cb : due) cb();
    return due.size();
  }

  bool empty() const {
    typename Sync::lock_guard lock(mu_);
    return wheel_.empty();
  }

  std::size_t size() const {
    typename Sync::lock_guard lock(mu_);
    return wheel_.size();
  }

  /// Milliseconds a host may block before the next deadline is due (-1 =
  /// nothing scheduled, 0 = already due) — the epoll_wait convention.
  int next_timeout_ms(std::int64_t now) const {
    typename Sync::lock_guard lock(mu_);
    return wheel_.empty() ? -1 : wheel_.next_timeout_ms(now);
  }

 private:
  mutable typename Sync::mutex mu_;
  DeadlineWheel wheel_;
};

/// Production alias (std::mutex); the sharded daemon's future import.
using SharedDeadlineWheel = BasicSharedDeadlineWheel<check::StdSync>;

}  // namespace lsl::live
