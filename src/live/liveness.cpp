#include "live/liveness.hpp"

#include <sstream>

#include "util/contract.hpp"

namespace lsl::live {

const char* to_string(DeadlineKind kind) {
  switch (kind) {
    case DeadlineKind::kHeader:
      return "header";
    case DeadlineKind::kDial:
      return "dial";
    case DeadlineKind::kIdle:
      return "idle";
    case DeadlineKind::kStall:
      return "stall";
    case DeadlineKind::kDrain:
      return "drain";
  }
  LSL_UNREACHABLE("bad DeadlineKind");
}

LivenessConfig LivenessConfig::recommended() {
  LivenessConfig c;
  c.header_timeout = 5 * util::kSecond;
  c.dial_timeout = 10 * util::kSecond;
  c.idle_timeout = 60 * util::kSecond;
  c.stall_window = 10 * util::kSecond;
  c.min_bytes_per_window = 1;
  c.drain_deadline = 30 * util::kSecond;
  return c;
}

void RelayLiveness::attach(DeadlineWheel* wheel, const LivenessConfig* config,
                           std::function<void(DeadlineKind)> on_expire) {
  cancel_all();
  wheel_ = wheel;
  config_ = config;
  on_expire_ = std::move(on_expire);
}

void RelayLiveness::on_accepted(std::int64_t now) {
  last_activity_ = now;
  if (!attached() || config_->header_timeout <= 0) return;
  header_token_ = wheel_->schedule(now + config_->header_timeout, [this] {
    header_token_ = DeadlineWheel::kInvalidToken;
    expire(DeadlineKind::kHeader);
  });
}

void RelayLiveness::on_header_done(std::int64_t now) {
  last_activity_ = now;
  if (!attached()) return;
  wheel_->cancel(header_token_);
  header_token_ = DeadlineWheel::kInvalidToken;
  if (config_->dial_timeout <= 0) return;
  dial_token_ = wheel_->schedule(now + config_->dial_timeout, [this] {
    dial_token_ = DeadlineWheel::kInvalidToken;
    expire(DeadlineKind::kDial);
  });
}

void RelayLiveness::on_connected(std::int64_t now) {
  last_activity_ = now;
  if (!attached()) return;
  wheel_->cancel(dial_token_);
  dial_token_ = DeadlineWheel::kInvalidToken;
  streaming_ = true;
  // The stream phase is watched by exactly one of idle/stall at a time,
  // selected by whether bytes are waiting for downstream.
  if (should_progress_) {
    arm_stall_at(now + config_->stall_window);
  } else {
    arm_idle_at(now + config_->idle_timeout);
  }
}

void RelayLiveness::set_should_progress(bool should, std::int64_t now) {
  if (should == should_progress_) return;
  should_progress_ = should;
  if (!attached() || !streaming_) return;
  wheel_->cancel(watch_token_);
  watch_token_ = DeadlineWheel::kInvalidToken;
  if (should) {
    arm_stall_at(now + config_->stall_window);
  } else {
    arm_idle_at(now + config_->idle_timeout);
  }
}

void RelayLiveness::arm_idle_at(std::int64_t due) {
  if (config_->idle_timeout <= 0) return;
  watch_due_ = due;
  watch_token_ = wheel_->schedule(due, [this] {
    watch_token_ = DeadlineWheel::kInvalidToken;
    on_idle_fired();
  });
}

void RelayLiveness::on_idle_fired() {
  // Lazy re-arm: activity since the arm only stamped last_activity_. If it
  // pushed the horizon past the instant we were armed for, sleep again
  // until the new horizon instead of expiring — O(1) per byte batch, one
  // wheel entry per relay.
  const std::int64_t horizon = last_activity_ + config_->idle_timeout;
  if (horizon > watch_due_) {
    arm_idle_at(horizon);
  } else {
    expire(DeadlineKind::kIdle);
  }
}

void RelayLiveness::arm_stall_at(std::int64_t window_end) {
  if (config_->stall_window <= 0) return;
  window_bytes_ = 0;
  watch_due_ = window_end;
  watch_token_ = wheel_->schedule(window_end, [this] {
    watch_token_ = DeadlineWheel::kInvalidToken;
    on_stall_fired();
  });
}

void RelayLiveness::on_stall_fired() {
  if (window_bytes_ >= config_->min_bytes_per_window) {
    if (rate_hook_) {
      rate_hook_(static_cast<double>(window_bytes_) * 1e9 /
                 static_cast<double>(config_->stall_window));
    }
    arm_stall_at(watch_due_ + config_->stall_window);  // moving: next window
  } else {
    expire(DeadlineKind::kStall);
  }
}

void RelayLiveness::cancel_all() {
  if (wheel_ != nullptr) {
    wheel_->cancel(header_token_);
    wheel_->cancel(dial_token_);
    wheel_->cancel(watch_token_);
  }
  header_token_ = dial_token_ = watch_token_ = DeadlineWheel::kInvalidToken;
  streaming_ = false;
}

void RelayLiveness::expire(DeadlineKind kind) {
  if (on_expire_) on_expire_(kind);
}

std::string DrainReport::summary() const {
  std::ostringstream os;
  os << "drain " << (expired ? "expired" : "complete") << ": "
     << in_flight_at_start << " in flight, " << completed << " completed, "
     << parked << " parked, " << aborted << " aborted, " << refused
     << " refused";
  return os.str();
}

}  // namespace lsl::live
