// DeadlineWheel — a deterministic, cancellable timer queue shared by the
// simulator and the real-socket daemon.
//
// The wheel is clock-agnostic: deadlines are int64 nanosecond instants on
// whatever timebase the host supplies (util::SimTime in the simulator,
// steady-clock nanoseconds in the posix daemon). The host drives it in one
// of two ways:
//
//  * pull — ask `next_timeout_ms(now)` how long the host may sleep (the
//    epoll_wait / LsdFaultDriver convention: -1 = nothing scheduled,
//    0 = something already due), then call `fire_due(now)` after waking;
//  * push — schedule one host-side wakeup (a sim event or a timerfd) at
//    `next_due()` and call `fire_due(now)` when it lands, re-arming when
//    the earliest deadline changes.
//
// Expiry order is deterministic: by due instant, ties broken by schedule
// order (monotonic token). No wall clock is ever read here, so the same
// schedule of calls produces the same expiries on any machine — the
// property the same-seed chaos tests rely on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

namespace lsl::live {

class DeadlineWheel {
 public:
  /// Handle for cancellation. 0 never names a live deadline.
  using Token = std::uint64_t;
  static constexpr Token kInvalidToken = 0;

  using Callback = std::function<void()>;

  /// Arm a deadline at absolute instant `due` (host timebase, ns).
  /// The callback runs from fire_due(); it may schedule or cancel freely.
  Token schedule(std::int64_t due, Callback cb);

  /// Disarm a pending deadline. Returns false if the token is unknown —
  /// already fired, already cancelled, or kInvalidToken (all benign, so
  /// holders can cancel unconditionally).
  bool cancel(Token token);

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

  /// Earliest due instant; only meaningful when !empty().
  std::int64_t next_due() const { return queue_.begin()->first.first; }

  /// Milliseconds a host may block before the next deadline is due:
  /// -1 when nothing is scheduled, 0 when a deadline is already due at
  /// `now`, otherwise the remaining time rounded up to whole ms (so a
  /// host that sleeps the full bound never wakes early).
  int next_timeout_ms(std::int64_t now) const;

  /// Run every deadline with due <= now, in deterministic order. Returns
  /// the number fired. Reentrant-safe: each callback is detached from the
  /// queue before it runs.
  std::size_t fire_due(std::int64_t now);

  /// Detach every deadline with due <= now into `out` (appended, same
  /// deterministic order fire_due would use) WITHOUT running them. This is
  /// the lock-friendly half of fire_due: a caller serializing the wheel
  /// behind a mutex (live::SharedDeadlineWheel) pops the batch under the
  /// lock and runs the callbacks outside it, so callbacks may re-enter
  /// schedule()/cancel() without self-deadlocking. Deadlines scheduled by
  /// those callbacks are not part of the batch even if already due.
  void take_due(std::int64_t now, std::vector<Callback>* out);

 private:
  using Key = std::pair<std::int64_t, Token>;  // (due, token)
  std::map<Key, Callback> queue_;
  std::map<Token, std::int64_t> due_by_token_;
  Token next_token_ = 1;
};

}  // namespace lsl::live
