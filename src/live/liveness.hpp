// Relay liveness policy: per-relay lifecycle deadlines and the
// min-progress-rate watchdog, expressed over a DeadlineWheel so the exact
// same policy runs in the simulator (SimTime) and the posix daemon
// (steady-clock ns).
//
// A relay's life has four liveness phases, each guarded by one deadline
// class (docs/PROTOCOL.md tabulates the defaults; docs/FAULTS.md shows how
// chaos tests trip each class):
//
//   header — accepted but the LSL header has not finished arriving;
//   dial   — header parsed, the non-blocking next-hop connect() is pending;
//   idle   — streaming, nothing buffered for downstream, and no socket
//            activity in either direction (a dead or silent peer);
//   stall  — streaming with bytes buffered for downstream, but the
//            downstream is absorbing them below the configured
//            min-progress rate (slowloris reader). The watchdog samples
//            byte progress per window, so "slow but moving" survives and
//            "stalled" does not.
//
// All deadlines default to 0 = disabled, so embedding RelayLiveness in a
// component changes nothing until a config opts in — in particular the
// simulator's same-seed metric exports stay byte-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "live/deadline_wheel.hpp"
#include "util/units.hpp"

namespace lsl::live {

/// Which deadline class expired (reported to the host's on_expire hook and
/// counted by LiveMetrics).
enum class DeadlineKind {
  kHeader,  ///< header-read timeout
  kDial,    ///< next-hop connect() timeout
  kIdle,    ///< no activity and nothing to forward
  kStall,   ///< buffered bytes moving below the min-progress rate
  kDrain,   ///< graceful-drain bound expired (daemon-wide, not per-relay)
};

const char* to_string(DeadlineKind kind);

/// Liveness policy knobs. Durations are util::SimDuration (int64 ns) on the
/// host's timebase; 0 disables that deadline class individually, and a
/// default-constructed config disables the subsystem entirely.
struct LivenessConfig {
  /// Accept → complete header, or the relay fails with a header timeout.
  util::SimDuration header_timeout = 0;
  /// Non-blocking connect() start → writability, or the dial is abandoned.
  util::SimDuration dial_timeout = 0;
  /// Longest tolerated quiet period (no bytes either direction) while
  /// nothing is waiting to be forwarded.
  util::SimDuration idle_timeout = 0;
  /// Progress-watchdog sampling window; each window the relay must move at
  /// least `min_bytes_per_window` toward downstream while bytes are
  /// buffered, or it is declared stalled.
  util::SimDuration stall_window = 0;
  std::uint64_t min_bytes_per_window = 1;
  /// Graceful drain: how long in-flight sessions get to finish (or park)
  /// after a drain begins before the daemon gives up on them. 0 = wait
  /// forever.
  util::SimDuration drain_deadline = 0;

  /// True when any per-relay deadline class is armed.
  bool any_relay_deadline() const {
    return header_timeout > 0 || dial_timeout > 0 || idle_timeout > 0 ||
           stall_window > 0;
  }

  /// The documented defaults (docs/PROTOCOL.md §7) for deployments that
  /// want liveness on without hand-tuning. Tests build their own tighter
  /// configs.
  static LivenessConfig recommended();
};

/// Per-relay deadline state machine over a host-owned DeadlineWheel.
///
/// The host reports lifecycle edges (accepted / header done / connected)
/// and activity (bytes moved, buffered-state changes); RelayLiveness keeps
/// at most one header/dial deadline and one idle-or-stall watchdog armed,
/// and calls `on_expire(kind)` when one trips. The host reacts by failing
/// the relay — RelayLiveness never touches sockets itself.
///
/// The idle deadline is re-armed lazily: activity only stamps
/// last_activity, and when the armed deadline fires early it re-schedules
/// at last_activity + idle_timeout instead of expiring (O(1) per byte
/// batch, one wheel entry per relay).
class RelayLiveness {
 public:
  RelayLiveness() = default;
  ~RelayLiveness() { cancel_all(); }

  RelayLiveness(const RelayLiveness&) = delete;
  RelayLiveness& operator=(const RelayLiveness&) = delete;

  /// Bind to a wheel + config. `on_expire` must outlive this object or be
  /// cancelled first; it is invoked from DeadlineWheel::fire_due. A null
  /// wheel (or a config with no deadlines) leaves the object inert.
  void attach(DeadlineWheel* wheel, const LivenessConfig* config,
              std::function<void(DeadlineKind)> on_expire);

  bool attached() const { return wheel_ != nullptr && config_ != nullptr; }

  /// Relay accepted at `now`: arm the header deadline.
  void on_accepted(std::int64_t now);
  /// Header fully parsed: header deadline retired, dial deadline armed.
  void on_header_done(std::int64_t now);
  /// Downstream connect completed: dial deadline retired; the idle/stall
  /// watchdog takes over for the stream phase.
  void on_connected(std::int64_t now);

  /// Any socket activity (bytes in or out, either direction).
  void note_activity(std::int64_t now) { last_activity_ = now; }
  /// Bytes delivered toward downstream (the watchdog's progress signal).
  void note_progress(std::uint64_t bytes) { window_bytes_ += bytes; }
  /// Whether bytes are currently buffered awaiting downstream. True arms
  /// the stall watchdog and suspends the idle deadline; false the reverse.
  void set_should_progress(bool should, std::int64_t now);

  /// Optional: receives the watchdog's measured progress rate in bytes
  /// per second each time a stall window closes with movement — the feed
  /// behind the slowest-relay gauge (min-tracking keeps the floor).
  void set_rate_hook(std::function<void(double bytes_per_second)> hook) {
    rate_hook_ = std::move(hook);
  }

  /// Disarm everything (relay finished, parked, or host shutting down).
  void cancel_all();

 private:
  void arm_idle_at(std::int64_t due);
  void arm_stall_at(std::int64_t window_end);
  void on_idle_fired();
  void on_stall_fired();
  void expire(DeadlineKind kind);

  DeadlineWheel* wheel_ = nullptr;
  const LivenessConfig* config_ = nullptr;
  std::function<void(DeadlineKind)> on_expire_;
  std::function<void(double)> rate_hook_;

  DeadlineWheel::Token header_token_ = DeadlineWheel::kInvalidToken;
  DeadlineWheel::Token dial_token_ = DeadlineWheel::kInvalidToken;
  /// Idle deadline or stall-window end, whichever is watching the stream.
  DeadlineWheel::Token watch_token_ = DeadlineWheel::kInvalidToken;
  std::int64_t watch_due_ = 0;  ///< instant watch_token_ is armed for

  bool streaming_ = false;
  bool should_progress_ = false;
  std::int64_t last_activity_ = 0;
  std::uint64_t window_bytes_ = 0;
};

/// Outcome of one graceful drain (SIGTERM → stop accepting → finish or
/// park in-flight sessions → exit), reported by the daemon when the drain
/// resolves.
struct DrainReport {
  std::uint64_t in_flight_at_start = 0;  ///< live relays when drain began
  std::uint64_t completed = 0;           ///< finished cleanly during drain
  std::uint64_t parked = 0;              ///< parked awaiting resume
  std::uint64_t aborted = 0;  ///< still live when the deadline expired
  std::uint64_t refused = 0;  ///< new accepts turned away while draining
  bool expired = false;       ///< drain deadline hit before quiescence

  /// One-line human-readable form for logs and the daemon's exit message.
  std::string summary() const;
};

}  // namespace lsl::live
