#include "live/live_metrics.hpp"

namespace lsl::live {

LiveMetrics::LiveMetrics(metrics::Registry& reg)
    : timeouts_header(&reg.counter("live.timeouts_header")),
      timeouts_dial(&reg.counter("live.timeouts_dial")),
      timeouts_idle(&reg.counter("live.timeouts_idle")),
      timeouts_stall(&reg.counter("live.timeouts_stall")),
      drains_started(&reg.counter("live.drains_started")),
      drains_completed(&reg.counter("live.drains_completed")),
      drains_expired(&reg.counter("live.drains_expired")),
      slowest_relay_bps(&reg.gauge("live.slowest_relay_bps")) {}

void LiveMetrics::on_timeout(DeadlineKind kind) {
  switch (kind) {
    case DeadlineKind::kHeader:
      timeouts_header->inc();
      break;
    case DeadlineKind::kDial:
      timeouts_dial->inc();
      break;
    case DeadlineKind::kIdle:
      timeouts_idle->inc();
      break;
    case DeadlineKind::kStall:
      timeouts_stall->inc();
      break;
    case DeadlineKind::kDrain:
      drains_expired->inc();
      break;
  }
}

}  // namespace lsl::live
