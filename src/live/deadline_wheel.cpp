#include "live/deadline_wheel.hpp"

#include "util/contract.hpp"

namespace lsl::live {

DeadlineWheel::Token DeadlineWheel::schedule(std::int64_t due, Callback cb) {
  LSL_PRECONDITION(cb != nullptr, "DeadlineWheel::schedule: null callback");
  const Token token = next_token_++;
  queue_.emplace(Key{due, token}, std::move(cb));
  due_by_token_.emplace(token, due);
  return token;
}

bool DeadlineWheel::cancel(Token token) {
  auto it = due_by_token_.find(token);
  if (it == due_by_token_.end()) return false;
  queue_.erase(Key{it->second, token});
  due_by_token_.erase(it);
  return true;
}

int DeadlineWheel::next_timeout_ms(std::int64_t now) const {
  if (queue_.empty()) return -1;
  const std::int64_t due = next_due();
  if (due <= now) return 0;
  const std::int64_t ns = due - now;
  constexpr std::int64_t kNsPerMs = 1'000'000;
  const std::int64_t ms = (ns + kNsPerMs - 1) / kNsPerMs;  // round up
  constexpr std::int64_t kMaxTimeout = 1'000'000'000;  // well past any test
  return static_cast<int>(ms < kMaxTimeout ? ms : kMaxTimeout);
}

void DeadlineWheel::take_due(std::int64_t now, std::vector<Callback>* out) {
  LSL_PRECONDITION(out != nullptr, "DeadlineWheel::take_due: null out");
  // The batch is what was due at entry. Unlike fire_due — which re-checks
  // the queue after each callback and so also runs deadlines a callback
  // schedules in the past — a take_due batch never grows; the caller's
  // next pass picks such late arrivals up.
  while (!queue_.empty() && queue_.begin()->first.first <= now) {
    auto it = queue_.begin();
    out->push_back(std::move(it->second));
    due_by_token_.erase(it->first.second);
    queue_.erase(it);
  }
}

std::size_t DeadlineWheel::fire_due(std::int64_t now) {
  std::size_t fired = 0;
  while (!queue_.empty() && queue_.begin()->first.first <= now) {
    auto it = queue_.begin();
    // Detach before invoking: the callback may re-enter schedule()/cancel().
    Callback cb = std::move(it->second);
    due_by_token_.erase(it->first.second);
    queue_.erase(it);
    cb();
    ++fired;
  }
  return fired;
}

}  // namespace lsl::live
