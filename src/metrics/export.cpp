#include "metrics/export.hpp"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

namespace lsl::metrics {

namespace {

/// JSON-safe number: finite values print shortest-roundtrip-ish, non-finite
/// become null (JSON has no inf/nan).
std::string jnum(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

std::string jstr(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

void write_jsonl(const Registry& reg, std::ostream& out) {
  reg.for_each_counter([&](const std::string& n, const Counter& c) {
    out << "{\"type\":\"counter\",\"name\":" << jstr(n)
        << ",\"value\":" << c.value() << "}\n";
  });
  reg.for_each_gauge([&](const std::string& n, const Gauge& g) {
    out << "{\"type\":\"gauge\",\"name\":" << jstr(n)
        << ",\"value\":" << jnum(g.value()) << ",\"min\":" << jnum(g.min())
        << ",\"max\":" << jnum(g.max()) << "}\n";
  });
  reg.for_each_histogram([&](const std::string& n, const Histogram& h) {
    out << "{\"type\":\"histogram\",\"name\":" << jstr(n)
        << ",\"count\":" << h.count() << ",\"sum\":" << jnum(h.sum())
        << ",\"mean\":" << jnum(h.mean())
        << ",\"p50\":" << jnum(h.percentile(0.50))
        << ",\"p90\":" << jnum(h.percentile(0.90))
        << ",\"p99\":" << jnum(h.percentile(0.99)) << ",\"buckets\":[";
    const auto& bounds = h.bounds();
    for (std::size_t i = 0; i <= bounds.size(); ++i) {
      if (i > 0) out << ',';
      out << "{\"le\":";
      if (i < bounds.size()) {
        out << jnum(bounds[i]);
      } else {
        out << "\"inf\"";
      }
      out << ",\"count\":" << h.bucket_count(i) << '}';
    }
    out << "]}\n";
  });
  reg.for_each_timeseries([&](const std::string& n, const Timeseries& t) {
    out << "{\"type\":\"timeseries\",\"name\":" << jstr(n)
        << ",\"recorded\":" << t.recorded() << ",\"points\":[";
    bool first = true;
    for (const auto& s : t.samples()) {
      if (!first) out << ',';
      first = false;
      out << '[' << jnum(s.t) << ',' << jnum(s.v) << ']';
    }
    out << "]}\n";
  });
}

void write_csv(const Registry& reg, std::ostream& out) {
  out << "kind,name,field,value\n";
  reg.for_each_counter([&](const std::string& n, const Counter& c) {
    out << "counter," << n << ",value," << c.value() << '\n';
  });
  reg.for_each_gauge([&](const std::string& n, const Gauge& g) {
    out << "gauge," << n << ",value," << g.value() << '\n';
    out << "gauge," << n << ",min," << g.min() << '\n';
    out << "gauge," << n << ",max," << g.max() << '\n';
  });
  reg.for_each_histogram([&](const std::string& n, const Histogram& h) {
    out << "histogram," << n << ",count," << h.count() << '\n';
    out << "histogram," << n << ",sum," << h.sum() << '\n';
    out << "histogram," << n << ",mean," << h.mean() << '\n';
    out << "histogram," << n << ",p50," << h.percentile(0.50) << '\n';
    out << "histogram," << n << ",p90," << h.percentile(0.90) << '\n';
    out << "histogram," << n << ",p99," << h.percentile(0.99) << '\n';
    const auto& bounds = h.bounds();
    for (std::size_t i = 0; i <= bounds.size(); ++i) {
      out << "histogram," << n << ",le=";
      if (i < bounds.size()) {
        out << bounds[i];
      } else {
        out << "inf";
      }
      out << ',' << h.bucket_count(i) << '\n';
    }
  });
  reg.for_each_timeseries([&](const std::string& n, const Timeseries& t) {
    for (const auto& s : t.samples()) {
      out << "timeseries," << n << ",t=" << s.t << ',' << s.v << '\n';
    }
  });
}

bool write_file(const Registry& reg, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (csv) {
    write_csv(reg, out);
  } else {
    write_jsonl(reg, out);
  }
  return out.good();
}

}  // namespace lsl::metrics
