#include "metrics/metrics.hpp"

#include <algorithm>

namespace lsl::metrics {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx =
      static_cast<std::size_t>(it - bounds_.begin());  // == size(): overflow
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double s = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(s, s + v, std::memory_order_relaxed)) {
  }
}

double Histogram::percentile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0 || bounds_.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation, 1-based: q=0 is the first, q=1 the
  // last. Walk buckets until the cumulative count covers it.
  const double rank = 1.0 + q * static_cast<double>(total - 1);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    const std::uint64_t in_bucket = bucket_count(i);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= rank) {
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double frac =
          (rank - static_cast<double>(cum)) / static_cast<double>(in_bucket);
      return lower + (bounds_[i] - lower) * frac;
    }
    cum += in_bucket;
  }
  return bounds_.back();  // overflow bucket: pinned to the last bound
}

std::vector<double> Histogram::exponential(double first, double factor,
                                           std::size_t n) {
  std::vector<double> b;
  b.reserve(n);
  double v = first;
  for (std::size_t i = 0; i < n; ++i) {
    b.push_back(v);
    v *= factor;
  }
  return b;
}

Timeseries::Timeseries(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 2)) {
  samples_.reserve(capacity_);
}

void Timeseries::record(double t, double v) {
  const std::uint64_t idx = recorded_++;
  if (idx % stride_ != 0) return;
  if (samples_.size() == capacity_) {
    // Thin in place: keep every other sample, double the stride. The final
    // value of a run is always re-recordable afterwards, so the visual
    // envelope of the series survives thinning.
    std::size_t w = 0;
    for (std::size_t r = 0; r < samples_.size(); r += 2) {
      samples_[w++] = samples_[r];
    }
    samples_.resize(w);
    stride_ *= 2;
    if (idx % stride_ != 0) return;
  }
  samples_.push_back({t, v});
}

Counter& Registry::counter(const std::string& name) {
  return counters_.get_or_create(name);
}

Gauge& Registry::gauge(const std::string& name) {
  return gauges_.get_or_create(name);
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> upper_bounds) {
  return histograms_.get_or_create(name, std::move(upper_bounds));
}

Timeseries& Registry::timeseries(const std::string& name,
                                 std::size_t capacity) {
  return timeseries_.get_or_create(name, capacity);
}

const Counter* Registry::find_counter(const std::string& name) const {
  return counters_.find(name);
}
const Gauge* Registry::find_gauge(const std::string& name) const {
  return gauges_.find(name);
}
const Histogram* Registry::find_histogram(const std::string& name) const {
  return histograms_.find(name);
}
const Timeseries* Registry::find_timeseries(const std::string& name) const {
  return timeseries_.find(name);
}

void Registry::for_each_counter(
    const std::function<void(const std::string&, const Counter&)>& fn) const {
  counters_.for_each(fn);
}

void Registry::for_each_gauge(
    const std::function<void(const std::string&, const Gauge&)>& fn) const {
  gauges_.for_each(fn);
}

void Registry::for_each_histogram(
    const std::function<void(const std::string&, const Histogram&)>& fn)
    const {
  histograms_.for_each(fn);
}

void Registry::for_each_timeseries(
    const std::function<void(const std::string&, const Timeseries&)>& fn)
    const {
  timeseries_.for_each(fn);
}

std::size_t Registry::size() const {
  return counters_.size() + gauges_.size() + histograms_.size() +
         timeseries_.size();
}

}  // namespace lsl::metrics
