// Unified metrics: the repository's one observability substrate.
//
// Every layer that carries bytes — the simulated TCP sockets, the depot
// relay, and the real-socket lsd daemon — registers its instruments here
// instead of growing ad-hoc counter structs. The design constraints come
// from the two very different hosts the registry serves:
//
//  * the discrete-event simulator is single-threaded but extremely hot
//    (millions of packet events per run), so metric updates must be
//    allocation-free and branch-light;
//  * the posix daemon is single-threaded today but the registry is read
//    (exported) from outside the event loop in tools and tests, so all
//    scalar instruments are lock-free atomics and registration is guarded
//    by a mutex.
//
// Instruments are owned by a Registry and referenced by stable pointers;
// registration is the only allocating operation. Exporters (JSONL, CSV)
// live in src/metrics/export.hpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "check/shim.hpp"

namespace lsl::metrics {

/// Monotonically increasing event count (lock-free).
///
/// The scalar instruments are templates over a check::Sync policy
/// (src/check/shim.hpp): `Counter`/`Gauge` below are the production
/// std::atomic instantiations; the model-check suite instantiates the
/// ModelSync variants to explore registration and extreme-tracking races.
template <typename Sync>
class BasicCounter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  typename Sync::template atomic<std::uint64_t> v_{0};
};

/// Instantaneous level with min/max high-water tracking (lock-free).
///
/// set() is the hot-path operation: one relaxed store plus two CAS loops
/// that almost always succeed on the first try (the extremes move rarely).
/// The extremes start at their identity values (-inf-most / +inf-most) so
/// every set() converges through the same CAS path — an earlier version
/// seeded them from the first set() after a touched_ exchange, a window in
/// which a concurrent setter's extreme could be overwritten (the
/// `gauge_seed_bug` model-check fixture preserves that bug and the checker
/// finds it in a handful of schedules).
template <typename Sync>
class BasicGauge {
 public:
  void set(double v) noexcept {
    v_.store(v, std::memory_order_relaxed);
    double cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    touched_.store(true, std::memory_order_relaxed);
  }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  /// Largest value ever set (0 before the first set()).
  double max() const noexcept {
    return touched() ? max_.load(std::memory_order_relaxed) : 0.0;
  }
  /// Smallest value ever set (0 before the first set()).
  double min() const noexcept {
    return touched() ? min_.load(std::memory_order_relaxed) : 0.0;
  }
  bool touched() const noexcept {
    return touched_.load(std::memory_order_relaxed);
  }

 private:
  typename Sync::template atomic<double> v_{0.0};
  typename Sync::template atomic<double> max_{
      std::numeric_limits<double>::lowest()};
  typename Sync::template atomic<double> min_{
      std::numeric_limits<double>::max()};
  typename Sync::template atomic<bool> touched_{false};
};

/// Production aliases — the pre-seam names every call site uses.
using Counter = BasicCounter<check::StdSync>;
using Gauge = BasicGauge<check::StdSync>;

/// Fixed-bucket histogram (lock-free observation path).
///
/// Bucket `i` counts observations <= bounds[i]; one implicit overflow
/// bucket counts the rest. Bounds are fixed at registration so observe()
/// never allocates; sum and count are tracked for mean derivation.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket i (i == bounds().size() is the overflow bucket).
  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double mean() const noexcept {
    const std::uint64_t n = count();
    return n ? sum() / static_cast<double>(n) : 0.0;
  }

  /// Quantile estimate (q in [0,1], clamped) by linear interpolation
  /// inside the bucket that holds the q-th observation; 0 for an empty
  /// histogram. Observations in the overflow bucket are pinned to the
  /// last finite bound — an admitted under-estimate, the standard
  /// fixed-bucket trade (exports also carry the raw buckets).
  double percentile(double q) const noexcept;

  /// Exponential bucket boundaries: n bounds starting at `first`, each
  /// `factor` times the previous — the standard latency layout.
  static std::vector<double> exponential(double first, double factor,
                                         std::size_t n);

 private:
  std::vector<double> bounds_;  ///< ascending upper bounds
  /// bounds_.size() + 1 atomics (last = overflow); unique_ptr keeps the
  /// Histogram movable at registration time while the array itself is fixed.
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Sampled (time, value) series with a hard memory bound.
///
/// Storage is reserved once at registration; when the buffer fills, every
/// other retained sample is dropped and the acceptance stride doubles, so a
/// run of any length costs O(capacity) memory while keeping a uniformly
/// thinned picture of the whole run. Single writer (the owning event loop);
/// readers must not overlap the writer.
class Timeseries {
 public:
  struct Sample {
    double t = 0.0;  ///< seconds (simulated or wall, the caller's timebase)
    double v = 0.0;
  };

  explicit Timeseries(std::size_t capacity = 4096);

  void record(double t, double v);

  const std::vector<Sample>& samples() const { return samples_; }
  std::size_t capacity() const { return capacity_; }
  /// Total record() calls, including thinned-away ones.
  std::uint64_t recorded() const { return recorded_; }

 private:
  std::size_t capacity_;
  std::uint64_t stride_ = 1;  ///< accept every stride-th record()
  std::uint64_t recorded_ = 0;
  std::vector<Sample> samples_;
};

/// One named-instrument family: mutex-guarded lookup-or-create with stable
/// pointers (values are unique_ptr-owned, never destroyed or rebound).
///
/// This is the registration seam the model checker exercises: two threads
/// racing get_or_create() on the same name must converge on one instrument
/// (same pointer, both updates land) with the map size unchanged. The
/// Registry below is four production instantiations of this template.
template <typename Sync, typename T>
class BasicInstrumentMap {
 public:
  BasicInstrumentMap() = default;
  BasicInstrumentMap(const BasicInstrumentMap&) = delete;
  BasicInstrumentMap& operator=(const BasicInstrumentMap&) = delete;

  /// Lookup-or-create; `args` are only consulted when `name` is new.
  template <typename... Args>
  T& get_or_create(const std::string& name, Args&&... args) {
    typename Sync::lock_guard lock(mu_);
    auto it = map_.find(name);
    if (it == map_.end()) {
      it = map_.emplace(name, std::make_unique<T>(std::forward<Args>(args)...))
               .first;
    }
    return *it->second;
  }

  /// nullptr when absent.
  const T* find(const std::string& name) const {
    typename Sync::lock_guard lock(mu_);
    const auto it = map_.find(name);
    return it == map_.end() ? nullptr : it->second.get();
  }

  /// Visit every instrument in name order. The visitor runs under the
  /// registration mutex; do not register from inside it.
  void for_each(
      const std::function<void(const std::string&, const T&)>& fn) const {
    typename Sync::lock_guard lock(mu_);
    for (const auto& [name, v] : map_) fn(name, *v);
  }

  std::size_t size() const {
    typename Sync::lock_guard lock(mu_);
    return map_.size();
  }

 private:
  mutable typename Sync::mutex mu_;
  std::map<std::string, std::unique_ptr<T>> map_;
};

/// Owner and namespace of a set of instruments.
///
/// Lookup-or-create by name; returned references stay valid for the
/// registry's lifetime (instruments are never destroyed or rebound).
/// Re-registering a name returns the existing instrument, so independent
/// components can share one series by agreeing on its name.
///
/// Each instrument family has its own registration mutex (the four
/// InstrumentMap members); cross-family registrations never contend.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upper_bounds` is only consulted when the histogram does not exist yet.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);
  Timeseries& timeseries(const std::string& name,
                         std::size_t capacity = 4096);

  /// Look up an existing instrument; nullptr when absent (or another kind).
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;
  const Timeseries* find_timeseries(const std::string& name) const;

  /// Visit every instrument in name order (exporters). The visitor runs
  /// under the registration mutex; do not register from inside it.
  void for_each_counter(
      const std::function<void(const std::string&, const Counter&)>& fn) const;
  void for_each_gauge(
      const std::function<void(const std::string&, const Gauge&)>& fn) const;
  void for_each_histogram(
      const std::function<void(const std::string&, const Histogram&)>& fn)
      const;
  void for_each_timeseries(
      const std::function<void(const std::string&, const Timeseries&)>& fn)
      const;

  std::size_t size() const;

 private:
  BasicInstrumentMap<check::StdSync, Counter> counters_;
  BasicInstrumentMap<check::StdSync, Gauge> gauges_;
  BasicInstrumentMap<check::StdSync, Histogram> histograms_;
  BasicInstrumentMap<check::StdSync, Timeseries> timeseries_;
};

}  // namespace lsl::metrics
