// Registry exporters: JSONL (one self-describing object per instrument per
// line, the format `--metrics-out *.jsonl` emits) and flat CSV
// (kind,name,field,value rows, convenient for spreadsheet/plot pipelines).
// No external dependencies — the JSON subset emitted here is numbers,
// strings and arrays only.
#pragma once

#include <iosfwd>
#include <string>

#include "metrics/metrics.hpp"

namespace lsl::metrics {

/// Write every instrument as one JSON object per line:
///   {"type":"counter","name":N,"value":V}
///   {"type":"gauge","name":N,"value":V,"min":m,"max":M}
///   {"type":"histogram","name":N,"count":C,"sum":S,"mean":A,
///    "buckets":[{"le":B,"count":C},...,{"le":"inf","count":C}]}
///   {"type":"timeseries","name":N,"recorded":R,"points":[[t,v],...]}
void write_jsonl(const Registry& reg, std::ostream& out);

/// Write every instrument as flat CSV rows: kind,name,field,value.
/// Histogram buckets become field "le=<bound>"; timeseries points become
/// field "t=<time>".
void write_csv(const Registry& reg, std::ostream& out);

/// Write to `path`, choosing the format by extension (".csv" → CSV,
/// anything else → JSONL). Returns false when the file cannot be opened.
bool write_file(const Registry& reg, const std::string& path);

}  // namespace lsl::metrics
