#include "metrics/instruments.hpp"

namespace lsl::metrics {

std::vector<double> latency_ms_bounds() {
  return Histogram::exponential(0.5, 2.0, 16);
}

std::vector<double> fine_ms_bounds() {
  return Histogram::exponential(1e-3, 2.0, 20);
}

TcpConnMetrics::TcpConnMetrics(Registry& reg, const std::string& prefix)
    : retransmits(&reg.counter(prefix + ".retransmits")),
      timeouts(&reg.counter(prefix + ".timeouts")),
      recoveries(&reg.counter(prefix + ".recovery_episodes")),
      rtt_sample_count(&reg.counter(prefix + ".rtt_samples")),
      rtt_ms(&reg.histogram(prefix + ".rtt_ms", latency_ms_bounds())),
      cwnd_bytes(&reg.timeseries(prefix + ".cwnd_bytes")),
      ssthresh_bytes(&reg.timeseries(prefix + ".ssthresh_bytes")),
      srtt_ms(&reg.timeseries(prefix + ".srtt_ms")) {}

DepotMetrics::DepotMetrics(Registry& reg, const std::string& prefix)
    : ring_occupancy_bytes(&reg.gauge(prefix + ".ring_occupancy_bytes")),
      copy_queue_bytes(&reg.gauge(prefix + ".copy_queue_bytes")),
      backpressure_stalls(&reg.counter(prefix + ".backpressure_stalls")),
      stall_time_ns(&reg.counter(prefix + ".backpressure_stall_ns")),
      bytes_relayed(&reg.counter(prefix + ".bytes_relayed")),
      copy_queue_delay_ms(
          &reg.histogram(prefix + ".copy_queue_delay_ms", fine_ms_bounds())),
      relay_latency_ms(
          &reg.histogram(prefix + ".relay_latency_ms", latency_ms_bounds())) {}

LsdMetrics::LsdMetrics(Registry& reg, const std::string& prefix)
    : bytes_relayed(&reg.counter(prefix + ".bytes_relayed")),
      bytes_spliced(&reg.counter(prefix + ".bytes_spliced")),
      bytes_reverse(&reg.counter(prefix + ".bytes_reverse")),
      read_errors(&reg.counter(prefix + ".read_errors")),
      write_errors(&reg.counter(prefix + ".write_errors")),
      ring_occupancy_bytes(&reg.gauge(prefix + ".ring_occupancy_bytes")),
      accept_to_dial_ms(
          &reg.histogram(prefix + ".accept_to_dial_ms", fine_ms_bounds())) {}

LoopMetrics::LoopMetrics(Registry& reg, const std::string& prefix)
    : iterations(&reg.counter(prefix + ".iterations")),
      events_dispatched(&reg.counter(prefix + ".events_dispatched")),
      dispatch_ms(
          &reg.histogram(prefix + ".dispatch_ms", fine_ms_bounds())) {}

}  // namespace lsl::metrics
