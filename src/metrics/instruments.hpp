// Per-component instrument bundles.
//
// Each bundle resolves its instruments against a Registry once, at
// attachment time, and exposes inline update helpers so the owning hot path
// (a TCP socket's ACK clock, the depot's relay pump, the daemon's epoll
// loop) performs only atomic arithmetic — no map lookups, no allocation,
// no locking. Components hold an optional pointer to their bundle; a null
// pointer means "not instrumented" and costs one predictable branch.
//
// Naming convention (see docs/OBSERVABILITY.md): instruments are namespaced
// `<component>.<instance>.<metric>`, e.g. `tcp.sublink1.retransmits` or
// `depot.1.ring_occupancy_bytes`.
#pragma once

#include <cstdint>
#include <string>

#include "metrics/metrics.hpp"

namespace lsl::metrics {

/// Bucket layout every RTT/latency histogram in the repo shares, so
/// distributions from live sockets, the trace bridge, and the daemon are
/// directly comparable: 0.5 ms .. ~16 s in 16 doubling buckets.
std::vector<double> latency_ms_bounds();

/// Sub-millisecond layout for dispatch/queueing delays: 1 us .. ~0.5 s.
std::vector<double> fine_ms_bounds();

/// One TCP connection's congestion/latency instruments (simulator side).
///
/// The sampled series capture what the paper plots per sublink: cwnd and
/// ssthresh evolution, smoothed RTT, and the discrete loss events.
struct TcpConnMetrics {
  TcpConnMetrics(Registry& reg, const std::string& prefix);

  Counter* retransmits;        ///< segments re-sent, any cause
  Counter* timeouts;           ///< RTO expirations
  Counter* recoveries;         ///< fast-recovery episodes entered
  Counter* rtt_sample_count;   ///< valid (Karn-filtered) RTT samples
  Histogram* rtt_ms;           ///< distribution of those samples
  Timeseries* cwnd_bytes;      ///< congestion window over time
  Timeseries* ssthresh_bytes;  ///< slow-start threshold over time
  Timeseries* srtt_ms;         ///< smoothed RTT estimate over time

  void on_retransmit() { retransmits->inc(); }
  void on_timeout() { timeouts->inc(); }
  void on_recovery() { recoveries->inc(); }
  void on_rtt_sample(double t_s, double sample_s, double srtt_s) {
    rtt_sample_count->inc();
    rtt_ms->observe(sample_s * 1e3);
    srtt_ms->record(t_s, srtt_s * 1e3);
  }
  void on_cwnd(double t_s, std::uint64_t cwnd, std::uint64_t ssthresh) {
    cwnd_bytes->record(t_s, static_cast<double>(cwnd));
    ssthresh_bytes->record(t_s, static_cast<double>(ssthresh));
  }
};

/// One simulated depot's relay instruments.
struct DepotMetrics {
  DepotMetrics(Registry& reg, const std::string& prefix);

  Gauge* ring_occupancy_bytes;   ///< buffered bytes (max() = high water)
  Gauge* copy_queue_bytes;       ///< bytes queued for / inside the copier
  Counter* backpressure_stalls;  ///< times the ring filled and reads stopped
  Counter* stall_time_ns;        ///< total stalled duration (simulated ns)
  Counter* bytes_relayed;
  Histogram* copy_queue_delay_ms;  ///< wait behind the serial copy resource
  Histogram* relay_latency_ms;     ///< accept → session completion
};

/// One real-socket lsd daemon's instruments (wall-clock timebase).
struct LsdMetrics {
  LsdMetrics(Registry& reg, const std::string& prefix);

  Counter* bytes_relayed;   ///< forward-path payload bytes written
  Counter* bytes_spliced;   ///< of bytes_relayed, moved by the splice path
  Counter* bytes_reverse;   ///< reverse-path (status/ack stream) bytes
  Counter* read_errors;     ///< fatal read()s on either side
  Counter* write_errors;    ///< fatal write()s on either side
  Gauge* ring_occupancy_bytes;
  Histogram* accept_to_dial_ms;  ///< header parse + downstream connect start
};

/// Epoll loop iteration instruments (wall-clock timebase).
struct LoopMetrics {
  LoopMetrics(Registry& reg, const std::string& prefix);

  Counter* iterations;         ///< epoll_wait returns
  Counter* events_dispatched;  ///< callbacks invoked
  Histogram* dispatch_ms;      ///< callback-batch duration per iteration
};

}  // namespace lsl::metrics
