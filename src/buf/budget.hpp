// Watermarked memory budget — the daemon-wide admission model.
//
// One accounting object answers two different questions:
//
//  * "may I allocate?" — reserve() enforces the hard byte budget the
//    operator gave the daemon (paper §VII: an unprivileged user-level
//    process must bound its own footprint; the kernel will not do it);
//  * "may I admit a new session?" — under_pressure() is a hysteresis
//    signal between a low and a high watermark, so admission flaps at
//    neither boundary: refusal starts when usage climbs to the high
//    watermark and ends only once it has drained back to the low one.
//
// The same class backs the real chunk pool (src/buf/pool.hpp, guarded by
// the pool's mutex) and the simulated depot (src/lsl/depot.cpp,
// single-threaded), so experiments sweep exactly the semantics the real
// daemon enforces. It is deliberately not thread-safe on its own.
#pragma once

#include <algorithm>
#include <cstdint>

namespace lsl::buf {

/// Byte budget with low/high watermark hysteresis. A zero budget disables
/// all limits (reserve always succeeds, pressure never asserts).
class MemoryBudget {
 public:
  MemoryBudget() = default;
  MemoryBudget(std::uint64_t budget_bytes, double low_watermark,
               double high_watermark)
      : budget_(budget_bytes),
        low_(static_cast<std::uint64_t>(
            static_cast<double>(budget_bytes) * low_watermark)),
        high_(static_cast<std::uint64_t>(
            static_cast<double>(budget_bytes) * high_watermark)) {
    // A degenerate configuration (high <= low) still behaves sanely:
    // pressure asserts at high and clears at min(low, high).
    low_ = std::min(low_, high_);
  }

  bool enabled() const { return budget_ > 0; }
  std::uint64_t budget() const { return budget_; }
  std::uint64_t in_use() const { return in_use_; }
  std::uint64_t peak() const { return peak_; }

  /// Bytes still reservable under the budget (max when unlimited).
  std::uint64_t headroom() const {
    if (budget_ == 0) return ~std::uint64_t{0};
    return budget_ > in_use_ ? budget_ - in_use_ : 0;
  }

  /// Account `n` bytes. Refuses (reserving nothing) when the budget would
  /// be exceeded — unless `force`, for salvage paths that must not drop
  /// already-acknowledged bytes even if the budget briefly overshoots.
  bool reserve(std::uint64_t n, bool force = false) {
    if (!force && budget_ > 0 && in_use_ + n > budget_) return false;
    in_use_ += n;
    peak_ = std::max(peak_, in_use_);
    update_pressure();
    return true;
  }

  void release(std::uint64_t n) {
    in_use_ = n < in_use_ ? in_use_ - n : 0;
    update_pressure();
  }

  /// Hysteresis admission signal; see the header comment.
  bool under_pressure() const { return pressure_; }
  /// Times pressure asserted (rising edges only).
  std::uint64_t pressure_episodes() const { return episodes_; }

 private:
  void update_pressure() {
    if (budget_ == 0) return;
    if (!pressure_ && in_use_ >= high_) {
      pressure_ = true;
      ++episodes_;
    } else if (pressure_ && in_use_ <= low_) {
      pressure_ = false;
    }
  }

  std::uint64_t budget_ = 0;
  std::uint64_t low_ = 0;   ///< absolute bytes: pressure clears at/below
  std::uint64_t high_ = 0;  ///< absolute bytes: pressure asserts at/above
  std::uint64_t in_use_ = 0;
  std::uint64_t peak_ = 0;
  std::uint64_t episodes_ = 0;
  bool pressure_ = false;
};

}  // namespace lsl::buf
