#include "buf/chunk_ring.hpp"

#include <algorithm>

#include "util/contract.hpp"

namespace lsl::buf {

ChunkRing::ChunkRing(ChunkPool& pool, std::size_t max_bytes)
    : pool_(&pool), max_bytes_(max_bytes) {
  LSL_PRECONDITION(max_bytes_ > 0, "chunk ring: zero capacity");
}

std::span<std::uint8_t> ChunkRing::write_window() {
  if (size_ >= max_bytes_) {
    pool_starved_ = false;  // our own cap, not the pool's
    return {};
  }
  const std::size_t cap_left = max_bytes_ - size_;
  if (!segments_.empty()) {
    Segment& tail = segments_.back();
    const std::size_t free = tail.chunk.capacity() - tail.len;
    if (free > 0) {
      pool_starved_ = false;
      return {tail.chunk.data() + tail.len, std::min(free, cap_left)};
    }
  }
  ChunkRef chunk = pool_->acquire();
  if (!chunk) {
    pool_starved_ = true;
    return {};
  }
  pool_starved_ = false;
  segments_.push_back(Segment{std::move(chunk), 0});
  Segment& tail = segments_.back();
  return {tail.chunk.data(), std::min(tail.chunk.capacity(), cap_left)};
}

void ChunkRing::commit(std::size_t n) {
  LSL_PRECONDITION(!segments_.empty(), "chunk ring: commit without window");
  Segment& tail = segments_.back();
  LSL_PRECONDITION(tail.len + n <= tail.chunk.capacity() &&
                       size_ + n <= max_bytes_,
                   "chunk ring: commit beyond window");
  tail.len += n;
  size_ += n;
}

bool ChunkRing::can_accept() const {
  if (size_ >= max_bytes_) return false;
  if (!segments_.empty() &&
      segments_.back().len < segments_.back().chunk.capacity()) {
    return true;
  }
  return pool_->can_acquire();
}

std::span<const std::uint8_t> ChunkRing::read_window() const {
  if (size_ == 0) return {};
  const Segment& head = segments_.front();
  return {head.chunk.data() + head_off_, head.len - head_off_};
}

void ChunkRing::consume(std::size_t n) {
  LSL_PRECONDITION(n <= size_, "chunk ring: consume beyond contents");
  size_ -= n;
  while (n > 0) {
    Segment& head = segments_.front();
    const std::size_t avail = head.len - head_off_;
    const std::size_t take = std::min(avail, n);
    head_off_ += take;
    n -= take;
    // A fully-drained chunk goes home unless it is also the tail still
    // accepting writes.
    if (head_off_ == head.len &&
        (segments_.size() > 1 || head.len == head.chunk.capacity())) {
      segments_.pop_front();
      head_off_ = 0;
    }
  }
}

void ChunkRing::clear() {
  segments_.clear();
  head_off_ = 0;
  size_ = 0;
  pool_starved_ = false;
}

}  // namespace lsl::buf
