#include "buf/pool.hpp"

namespace lsl::buf {

PoolMetrics::PoolMetrics(metrics::Registry& reg)
    : bytes_in_use(&reg.gauge("pool.bytes_in_use")),
      chunks_free(&reg.gauge("pool.chunks_free")),
      alloc_total(&reg.counter("pool.alloc_total")),
      alloc_reuses(&reg.counter("pool.alloc_reuses")),
      alloc_failures(&reg.counter("pool.alloc_failures")),
      pressure_episodes(&reg.counter("pool.pressure_episodes")) {}

// The production pool is compiled here once rather than re-instantiated in
// every including TU; the model-check suite instantiates its ModelSync
// variant itself.
template class BasicChunkPool<check::StdSync>;
template class BasicChunkRef<check::StdSync>;

}  // namespace lsl::buf
