#include "buf/pool.hpp"

#include "util/contract.hpp"

namespace lsl::buf {

PoolMetrics::PoolMetrics(metrics::Registry& reg)
    : bytes_in_use(&reg.gauge("pool.bytes_in_use")),
      chunks_free(&reg.gauge("pool.chunks_free")),
      alloc_total(&reg.counter("pool.alloc_total")),
      alloc_reuses(&reg.counter("pool.alloc_reuses")),
      alloc_failures(&reg.counter("pool.alloc_failures")),
      pressure_episodes(&reg.counter("pool.pressure_episodes")) {}

void ChunkRef::reset() {
  Chunk* chunk = std::exchange(chunk_, nullptr);
  ChunkPool* pool = std::exchange(pool_, nullptr);
  if (chunk == nullptr) return;
  // acq_rel: the thread that drops the last reference must observe every
  // write earlier holders made into the chunk before recycling it.
  if (chunk->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    pool->recycle(chunk);
  }
}

ChunkPool::ChunkPool(const PoolConfig& config)
    : config_(config),
      budget_(config.budget_bytes, config.low_watermark,
              config.high_watermark) {
  LSL_PRECONDITION(config_.chunk_bytes > 0, "pool: zero chunk size");
}

ChunkPool::~ChunkPool() {
  // Every ref must be gone before the pool that owns the storage dies.
  LSL_INVARIANT(budget_.in_use() == 0,
                "pool destroyed with live chunk references");
}

ChunkRef ChunkPool::acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!budget_.reserve(config_.chunk_bytes)) {
    ++failures_;
    if (metrics_) metrics_->alloc_failures->inc();
    return {};
  }
  Chunk* chunk = nullptr;
  if (!free_.empty()) {
    chunk = free_.back();
    free_.pop_back();
    ++reuses_;
    if (metrics_) metrics_->alloc_reuses->inc();
  } else {
    auto owned = std::make_unique<Chunk>();
    owned->data = std::make_unique<std::uint8_t[]>(config_.chunk_bytes);
    owned->capacity = config_.chunk_bytes;
    chunk = owned.get();
    chunks_.push_back(std::move(owned));
  }
  ++allocs_;
  if (metrics_) metrics_->alloc_total->inc();
  chunk->refs.store(1, std::memory_order_relaxed);
  publish_levels();
  return ChunkRef(chunk, this);
}

bool ChunkPool::can_acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_.headroom() >= config_.chunk_bytes;
}

bool ChunkPool::under_pressure() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_.under_pressure();
}

PoolStats ChunkPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PoolStats s;
  s.allocs = allocs_;
  s.reuses = reuses_;
  s.creations = chunks_.size();
  s.failures = failures_;
  s.pressure_episodes = budget_.pressure_episodes();
  s.in_use_bytes = budget_.in_use();
  s.peak_bytes = budget_.peak();
  s.free_chunks = free_.size();
  return s;
}

void ChunkPool::set_metrics(PoolMetrics* m) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_ = m;
  if (metrics_) publish_levels();
}

void ChunkPool::recycle(Chunk* chunk) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t episodes_before = budget_.pressure_episodes();
  free_.push_back(chunk);
  budget_.release(config_.chunk_bytes);
  LSL_INVARIANT(budget_.pressure_episodes() == episodes_before,
                "pool: release raised pressure");
  publish_levels();
}

void ChunkPool::publish_levels() {
  if (!metrics_) return;
  metrics_->bytes_in_use->set(static_cast<double>(budget_.in_use()));
  metrics_->chunks_free->set(static_cast<double>(free_.size()));
  // The counter mirrors the budget's rising-edge count; publish the delta.
  const std::uint64_t episodes = budget_.pressure_episodes();
  const std::uint64_t seen = metrics_->pressure_episodes->value();
  if (episodes > seen) metrics_->pressure_episodes->inc(episodes - seen);
}

}  // namespace lsl::buf
