// Refcounted fixed-size buffer chunks (the repo's mbuf analogue).
//
// A Chunk is one pool-owned allocation of ChunkPool's configured size.
// ChunkRef is the only way to hold one: copying a ref bumps an atomic
// refcount, and the last ref returns the chunk to its pool's freelist —
// bytes "move" between owners by reference, never by memcpy. The atomic
// count is what makes the pool shareable across threads (the TSan workout
// in tests/buf_concurrency_test.cpp hammers exactly this edge, and the
// model checker in src/check explores its interleavings exhaustively).
//
// The types are templates over a check::Sync policy (src/check/shim.hpp):
// `Chunk`/`ChunkRef` are the production std::atomic instantiations, while
// tools/lsl_mc instantiates the Model variants whose refcount traffic the
// deterministic scheduler can interleave and whose deep invariants
// (refcount never resurrects, no double recycle) are compiled in.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "check/shim.hpp"

namespace lsl::buf {

template <typename Sync>
class BasicChunkPool;

/// One pooled buffer. Created and recycled only by ChunkPool; never
/// touched directly by users (hold a ChunkRef instead).
template <typename Sync>
struct BasicChunk {
  std::unique_ptr<std::uint8_t[]> data;
  std::size_t capacity = 0;
  typename Sync::template atomic<std::uint32_t> refs{0};
};

/// Shared handle to a pooled chunk; the last reference recycles it.
template <typename Sync>
class BasicChunkRef {
 public:
  BasicChunkRef() = default;
  BasicChunkRef(const BasicChunkRef& other)
      : chunk_(other.chunk_), pool_(other.pool_) {
    if (chunk_ != nullptr) {
      const std::uint32_t prev =
          chunk_->refs.fetch_add(1, std::memory_order_relaxed);
      if constexpr (Sync::kChecked) {
        // Copying a ref whose count already hit zero would resurrect a
        // chunk the pool has (or is about to have) recycled.
        check::model_assert(prev > 0, "chunk refcount resurrected by copy");
      }
    }
  }
  BasicChunkRef(BasicChunkRef&& other) noexcept
      : chunk_(std::exchange(other.chunk_, nullptr)),
        pool_(std::exchange(other.pool_, nullptr)) {}
  BasicChunkRef& operator=(BasicChunkRef other) noexcept {
    std::swap(chunk_, other.chunk_);
    std::swap(pool_, other.pool_);
    return *this;
  }
  ~BasicChunkRef() { reset(); }

  /// Drop this reference (recycling the chunk when it was the last).
  /// Defined in buf/pool.hpp (needs the pool's recycle()).
  void reset();

  explicit operator bool() const { return chunk_ != nullptr; }
  std::uint8_t* data() const { return chunk_->data.get(); }
  std::size_t capacity() const {
    return chunk_ != nullptr ? chunk_->capacity : 0;
  }
  std::uint32_t use_count() const {
    return chunk_ != nullptr
               ? chunk_->refs.load(std::memory_order_relaxed)
               : 0;
  }

 private:
  friend class BasicChunkPool<Sync>;
  /// Adopts one already-counted reference (ChunkPool::acquire).
  BasicChunkRef(BasicChunk<Sync>* chunk, BasicChunkPool<Sync>* pool)
      : chunk_(chunk), pool_(pool) {}

  BasicChunk<Sync>* chunk_ = nullptr;
  BasicChunkPool<Sync>* pool_ = nullptr;
};

/// Production aliases — the pre-seam names every call site uses.
using Chunk = BasicChunk<check::StdSync>;
using ChunkRef = BasicChunkRef<check::StdSync>;

}  // namespace lsl::buf
