// Refcounted fixed-size buffer chunks (the repo's mbuf analogue).
//
// A Chunk is one pool-owned allocation of ChunkPool's configured size.
// ChunkRef is the only way to hold one: copying a ref bumps an atomic
// refcount, and the last ref returns the chunk to its pool's freelist —
// bytes "move" between owners by reference, never by memcpy. The atomic
// count is what makes the pool shareable across threads (the TSan workout
// in tests/buf_concurrency_test.cpp hammers exactly this edge).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace lsl::buf {

class ChunkPool;

/// One pooled buffer. Created and recycled only by ChunkPool; never
/// touched directly by users (hold a ChunkRef instead).
struct Chunk {
  std::unique_ptr<std::uint8_t[]> data;
  std::size_t capacity = 0;
  std::atomic<std::uint32_t> refs{0};
};

/// Shared handle to a pooled chunk; the last reference recycles it.
class ChunkRef {
 public:
  ChunkRef() = default;
  ChunkRef(const ChunkRef& other) : chunk_(other.chunk_), pool_(other.pool_) {
    if (chunk_ != nullptr) {
      chunk_->refs.fetch_add(1, std::memory_order_relaxed);
    }
  }
  ChunkRef(ChunkRef&& other) noexcept
      : chunk_(std::exchange(other.chunk_, nullptr)),
        pool_(std::exchange(other.pool_, nullptr)) {}
  ChunkRef& operator=(ChunkRef other) noexcept {
    std::swap(chunk_, other.chunk_);
    std::swap(pool_, other.pool_);
    return *this;
  }
  ~ChunkRef() { reset(); }

  /// Drop this reference (recycling the chunk when it was the last).
  void reset();

  explicit operator bool() const { return chunk_ != nullptr; }
  std::uint8_t* data() const { return chunk_->data.get(); }
  std::size_t capacity() const { return chunk_ != nullptr ? chunk_->capacity : 0; }
  std::uint32_t use_count() const {
    return chunk_ != nullptr
               ? chunk_->refs.load(std::memory_order_relaxed)
               : 0;
  }

 private:
  friend class ChunkPool;
  /// Adopts one already-counted reference (ChunkPool::acquire).
  ChunkRef(Chunk* chunk, ChunkPool* pool) : chunk_(chunk), pool_(pool) {}

  Chunk* chunk_ = nullptr;
  ChunkPool* pool_ = nullptr;
};

}  // namespace lsl::buf
