// The daemon-wide chunk pool: freelist + budget + watermarks.
//
// All relay buffering in the posix daemon draws from one ChunkPool, so the
// process has a single, operator-configured memory ceiling instead of
// "1 MiB times however many sessions show up" (the unbounded footprint the
// paper's §VII scalability concern warns about). Recycled chunks go to a
// freelist, so a steady-state daemon allocates almost never: the chunk
// reuse rate — pool.alloc_reuses / pool.alloc_total — is the health signal
// tools/lsl_load reports.
//
// Thread-safety: acquire() and the last-ref recycle take the pool mutex;
// refcount traffic on a live ChunkRef is lock-free. The simulator does not
// use ChunkPool (it shares only MemoryBudget) — real chunks exist to back
// real sockets.
//
// The pool is a template over a check::Sync policy (src/check/shim.hpp):
// `ChunkPool` below is the production std:: instantiation (identical code
// to the pre-seam class), while the model-check suite instantiates
// BasicChunkPool<check::ModelSync> to explore acquire/copy/reset
// interleavings exhaustively with the deep `kChecked` invariants on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "buf/budget.hpp"
#include "buf/chunk.hpp"
#include "buf/shared_budget.hpp"
#include "check/shim.hpp"
#include "metrics/metrics.hpp"
#include "util/contract.hpp"

namespace lsl::buf {

/// Pool sizing knobs.
struct PoolConfig {
  std::size_t chunk_bytes = 64 * 1024;  ///< one chunk's capacity
  /// Hard ceiling on bytes held by live refs (0 = unlimited). Because every
  /// chunk is born through a successful reserve(), the pool's *total*
  /// allocation (live + freelist) also never exceeds this.
  std::uint64_t budget_bytes = 64ull * 1024 * 1024;
  double low_watermark = 0.50;   ///< admission pressure clears at/below
  double high_watermark = 0.85;  ///< admission pressure asserts at/above
};

/// Consistent snapshot of the pool's counters (tests, lsl_load reporting).
struct PoolStats {
  std::uint64_t allocs = 0;        ///< successful acquire() calls
  std::uint64_t reuses = 0;        ///< of which served from the freelist
  std::uint64_t creations = 0;     ///< of which newly allocated
  std::uint64_t failures = 0;      ///< acquire() refusals (budget exhausted)
  std::uint64_t pressure_episodes = 0;
  std::uint64_t in_use_bytes = 0;  ///< bytes held by live refs right now
  std::uint64_t peak_bytes = 0;    ///< high-water of in_use_bytes
  std::size_t free_chunks = 0;     ///< freelist depth
};

/// `pool.*` instrument bundle (wall-clock timebase). Names are catalogued
/// in docs/OBSERVABILITY.md; the pool-metrics-docs lint rule fails the
/// build if one here is missing there.
struct PoolMetrics {
  explicit PoolMetrics(metrics::Registry& reg);

  metrics::Gauge* bytes_in_use;      ///< live-ref bytes (max() = high water)
  metrics::Gauge* chunks_free;       ///< freelist depth
  metrics::Counter* alloc_total;     ///< successful chunk acquisitions
  metrics::Counter* alloc_reuses;    ///< served from the freelist
  metrics::Counter* alloc_failures;  ///< refused: budget exhausted
  metrics::Counter* pressure_episodes;  ///< admission-pressure assertions
};

/// The pool itself. Outlives every ChunkRef it hands out.
template <typename Sync>
class BasicChunkPool {
 public:
  explicit BasicChunkPool(const PoolConfig& config)
      : config_(config),
        budget_(config.budget_bytes, config.low_watermark,
                config.high_watermark) {
    LSL_PRECONDITION(config_.chunk_bytes > 0, "pool: zero chunk size");
  }

  /// Shard mode: draw byte accounting from an externally-owned shared
  /// budget (one ceiling for all shards) instead of the pool's own.
  /// `config.budget_bytes` and the watermarks are ignored — the shared
  /// budget carries them; freelist, chunks, and per-pool counters stay
  /// local and contention-free. `shared` must outlive the pool.
  BasicChunkPool(const PoolConfig& config, BasicSharedBudget<Sync>* shared)
      : config_(config), shared_budget_(shared) {
    LSL_PRECONDITION(config_.chunk_bytes > 0, "pool: zero chunk size");
    LSL_PRECONDITION(shared != nullptr, "pool: null shared budget");
  }

  ~BasicChunkPool() {
    // Every ref must be gone before the pool that owns the storage dies.
    LSL_INVARIANT(local_in_use() == 0,
                  "pool destroyed with live chunk references");
  }

  BasicChunkPool(const BasicChunkPool&) = delete;
  BasicChunkPool& operator=(const BasicChunkPool&) = delete;

  /// One chunk, freelist-first. A null ref means the budget is exhausted —
  /// the caller must back off (drop read interest) and retry when
  /// released bytes make headroom.
  BasicChunkRef<Sync> acquire() {
    typename Sync::lock_guard lock(mu_);
    if (!reserve_bytes(config_.chunk_bytes)) {
      ++failures_;
      if (metrics_) metrics_->alloc_failures->inc();
      return {};
    }
    BasicChunk<Sync>* chunk = nullptr;
    if (!free_.empty()) {
      chunk = free_.back();
      free_.pop_back();
      ++reuses_;
      if (metrics_) metrics_->alloc_reuses->inc();
      if constexpr (Sync::kChecked) {
        // A chunk on the freelist with a live count was recycled while
        // still referenced (or its count was resurrected afterwards).
        check::model_assert(
            chunk->refs.load(std::memory_order_relaxed) == 0,
            "freelist chunk reused with nonzero refcount");
      }
    } else {
      auto owned = std::make_unique<BasicChunk<Sync>>();
      owned->data = std::make_unique<std::uint8_t[]>(config_.chunk_bytes);
      owned->capacity = config_.chunk_bytes;
      chunk = owned.get();
      chunks_.push_back(std::move(owned));
    }
    ++allocs_;
    if (metrics_) metrics_->alloc_total->inc();
    chunk->refs.store(1, std::memory_order_relaxed);
    publish_levels();
    return BasicChunkRef<Sync>(chunk, this);
  }

  /// Whether acquire() would currently succeed (interest-mask decisions;
  /// advisory under concurrency).
  bool can_acquire() const {
    typename Sync::lock_guard lock(mu_);
    if (shared_budget_) {
      return shared_budget_->headroom() >= config_.chunk_bytes;
    }
    return budget_.headroom() >= config_.chunk_bytes;
  }

  /// Watermark admission signal — refuse *new* sessions while set, keep
  /// serving existing ones until the hard budget stops them. In shard mode
  /// this reads the *shared* hysteresis, so every shard starts and stops
  /// admitting together.
  bool under_pressure() const {
    typename Sync::lock_guard lock(mu_);
    if (shared_budget_) return shared_budget_->under_pressure();
    return budget_.under_pressure();
  }

  PoolStats stats() const {
    typename Sync::lock_guard lock(mu_);
    PoolStats s;
    s.allocs = allocs_;
    s.reuses = reuses_;
    s.creations = chunks_.size();
    s.failures = failures_;
    // Shard mode: in_use/peak are this pool's slice; pressure episodes are
    // the shared budget's (process-wide) rising edges.
    s.pressure_episodes = shared_budget_ ? shared_budget_->pressure_episodes()
                                         : budget_.pressure_episodes();
    s.in_use_bytes = local_in_use();
    s.peak_bytes = shared_budget_ ? local_peak_ : budget_.peak();
    s.free_chunks = free_.size();
    return s;
  }

  /// The shared budget this pool draws on (null in classic owned mode).
  BasicSharedBudget<Sync>* shared_budget() const { return shared_budget_; }

  const PoolConfig& config() const { return config_; }

  /// Attach a metrics bundle (must outlive the pool's traffic); null
  /// detaches.
  void set_metrics(PoolMetrics* m) {
    typename Sync::lock_guard lock(mu_);
    metrics_ = m;
    if (metrics_) publish_levels();
  }

 private:
  friend class BasicChunkRef<Sync>;

  void recycle(BasicChunk<Sync>* chunk) {
    typename Sync::lock_guard lock(mu_);
    if constexpr (Sync::kChecked) {
      check::model_assert(chunk->refs.load(std::memory_order_relaxed) == 0,
                          "chunk recycled while still referenced");
      for (const BasicChunk<Sync>* f : free_) {
        check::model_assert(f != chunk, "chunk recycled twice (double release)");
      }
    }
    free_.push_back(chunk);
    if (shared_budget_) {
      local_in_use_ -= config_.chunk_bytes;
      shared_budget_->release(config_.chunk_bytes);
    } else {
      const std::uint64_t episodes_before = budget_.pressure_episodes();
      budget_.release(config_.chunk_bytes);
      // (Owned budget only: with a shared budget another shard may raise
      // pressure concurrently, so the episode count is not stable here.)
      LSL_INVARIANT(budget_.pressure_episodes() == episodes_before,
                    "pool: release raised pressure");
    }
    publish_levels();
  }

  /// Reserve byte accounting for one chunk against whichever budget this
  /// pool runs on; callers hold mu_.
  bool reserve_bytes(std::uint64_t n) {
    if (shared_budget_) {
      if (!shared_budget_->reserve(n)) return false;
      local_in_use_ += n;
      local_peak_ = std::max(local_peak_, local_in_use_);
      return true;
    }
    return budget_.reserve(n);
  }

  /// Bytes held by this pool's live refs; callers hold mu_ (or the pool is
  /// quiescent, as in the destructor).
  std::uint64_t local_in_use() const {
    return shared_budget_ ? local_in_use_ : budget_.in_use();
  }

  /// Refresh attached gauges; callers hold mu_.
  void publish_levels() {
    if (!metrics_) return;
    metrics_->bytes_in_use->set(static_cast<double>(local_in_use()));
    metrics_->chunks_free->set(static_cast<double>(free_.size()));
    // The counter mirrors the budget's rising-edge count; publish the delta.
    const std::uint64_t episodes = shared_budget_
                                       ? shared_budget_->pressure_episodes()
                                       : budget_.pressure_episodes();
    const std::uint64_t seen = metrics_->pressure_episodes->value();
    if (episodes > seen) metrics_->pressure_episodes->inc(episodes - seen);
  }

  const PoolConfig config_;
  mutable typename Sync::mutex mu_;
  MemoryBudget budget_;
  BasicSharedBudget<Sync>* shared_budget_ = nullptr;
  std::uint64_t local_in_use_ = 0;  ///< shard mode: this pool's slice
  std::uint64_t local_peak_ = 0;    ///< shard mode: high-water of the slice
  /// every chunk ever born
  std::vector<std::unique_ptr<BasicChunk<Sync>>> chunks_;
  std::vector<BasicChunk<Sync>*> free_;  ///< recycled, ready to hand out
  std::uint64_t allocs_ = 0;
  std::uint64_t reuses_ = 0;
  std::uint64_t failures_ = 0;
  PoolMetrics* metrics_ = nullptr;
};

template <typename Sync>
void BasicChunkRef<Sync>::reset() {
  BasicChunk<Sync>* chunk = std::exchange(chunk_, nullptr);
  BasicChunkPool<Sync>* pool = std::exchange(pool_, nullptr);
  if (chunk == nullptr) return;
  // acq_rel: the thread that drops the last reference must observe every
  // write earlier holders made into the chunk before recycling it.
  if (chunk->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    pool->recycle(chunk);
  }
}

// The production instantiations are compiled once in pool.cpp.
extern template class BasicChunkPool<check::StdSync>;
extern template class BasicChunkRef<check::StdSync>;

/// Production alias — the pre-seam name every call site uses.
using ChunkPool = BasicChunkPool<check::StdSync>;

}  // namespace lsl::buf
