// The daemon-wide chunk pool: freelist + budget + watermarks.
//
// All relay buffering in the posix daemon draws from one ChunkPool, so the
// process has a single, operator-configured memory ceiling instead of
// "1 MiB times however many sessions show up" (the unbounded footprint the
// paper's §VII scalability concern warns about). Recycled chunks go to a
// freelist, so a steady-state daemon allocates almost never: the chunk
// reuse rate — pool.alloc_reuses / pool.alloc_total — is the health signal
// tools/lsl_load reports.
//
// Thread-safety: acquire() and the last-ref recycle take the pool mutex;
// refcount traffic on a live ChunkRef is lock-free. The simulator does not
// use ChunkPool (it shares only MemoryBudget) — real chunks exist to back
// real sockets.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "buf/budget.hpp"
#include "buf/chunk.hpp"
#include "metrics/metrics.hpp"

namespace lsl::buf {

/// Pool sizing knobs.
struct PoolConfig {
  std::size_t chunk_bytes = 64 * 1024;  ///< one chunk's capacity
  /// Hard ceiling on bytes held by live refs (0 = unlimited). Because every
  /// chunk is born through a successful reserve(), the pool's *total*
  /// allocation (live + freelist) also never exceeds this.
  std::uint64_t budget_bytes = 64ull * 1024 * 1024;
  double low_watermark = 0.50;   ///< admission pressure clears at/below
  double high_watermark = 0.85;  ///< admission pressure asserts at/above
};

/// Consistent snapshot of the pool's counters (tests, lsl_load reporting).
struct PoolStats {
  std::uint64_t allocs = 0;        ///< successful acquire() calls
  std::uint64_t reuses = 0;        ///< of which served from the freelist
  std::uint64_t creations = 0;     ///< of which newly allocated
  std::uint64_t failures = 0;      ///< acquire() refusals (budget exhausted)
  std::uint64_t pressure_episodes = 0;
  std::uint64_t in_use_bytes = 0;  ///< bytes held by live refs right now
  std::uint64_t peak_bytes = 0;    ///< high-water of in_use_bytes
  std::size_t free_chunks = 0;     ///< freelist depth
};

/// `pool.*` instrument bundle (wall-clock timebase). Names are catalogued
/// in docs/OBSERVABILITY.md; the pool-metrics-docs lint rule fails the
/// build if one here is missing there.
struct PoolMetrics {
  explicit PoolMetrics(metrics::Registry& reg);

  metrics::Gauge* bytes_in_use;      ///< live-ref bytes (max() = high water)
  metrics::Gauge* chunks_free;       ///< freelist depth
  metrics::Counter* alloc_total;     ///< successful chunk acquisitions
  metrics::Counter* alloc_reuses;    ///< served from the freelist
  metrics::Counter* alloc_failures;  ///< refused: budget exhausted
  metrics::Counter* pressure_episodes;  ///< admission-pressure assertions
};

/// The pool itself. Outlives every ChunkRef it hands out.
class ChunkPool {
 public:
  explicit ChunkPool(const PoolConfig& config);
  ~ChunkPool();

  ChunkPool(const ChunkPool&) = delete;
  ChunkPool& operator=(const ChunkPool&) = delete;

  /// One chunk, freelist-first. A null ref means the budget is exhausted —
  /// the caller must back off (drop read interest) and retry when
  /// released bytes make headroom.
  ChunkRef acquire();

  /// Whether acquire() would currently succeed (interest-mask decisions;
  /// advisory under concurrency).
  bool can_acquire() const;

  /// Watermark admission signal — refuse *new* sessions while set, keep
  /// serving existing ones until the hard budget stops them.
  bool under_pressure() const;

  PoolStats stats() const;
  const PoolConfig& config() const { return config_; }

  /// Attach a metrics bundle (must outlive the pool's traffic); null
  /// detaches.
  void set_metrics(PoolMetrics* m);

 private:
  friend class ChunkRef;
  void recycle(Chunk* chunk);
  /// Refresh attached gauges; callers hold mu_.
  void publish_levels();

  const PoolConfig config_;
  mutable std::mutex mu_;
  MemoryBudget budget_;
  std::vector<std::unique_ptr<Chunk>> chunks_;  ///< every chunk ever born
  std::vector<Chunk*> free_;                    ///< recycled, ready to hand out
  std::uint64_t allocs_ = 0;
  std::uint64_t reuses_ = 0;
  std::uint64_t failures_ = 0;
  PoolMetrics* metrics_ = nullptr;
};

}  // namespace lsl::buf
