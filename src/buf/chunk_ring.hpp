// ChunkRing — a bounded FIFO of pooled chunks.
//
// Replaces the posix relay's flat per-session byte ring: instead of one
// eagerly-allocated 1 MiB array per session, a relay buffers into chunks
// drawn on demand from the daemon-wide ChunkPool and returns each one the
// instant it drains. The interface mirrors what a nonblocking relay pump
// needs — a contiguous write window to read() into, a contiguous read
// window to write() from — so no byte is ever copied between chunks.
//
// Single-threaded (one event loop owns a ring); the pool underneath is the
// shared, thread-safe part.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>

#include "buf/pool.hpp"

namespace lsl::buf {

class ChunkRing {
 public:
  /// `max_bytes` is the per-session cap (the old ring capacity); the pool
  /// budget is the daemon-wide one. Both bound the ring.
  ChunkRing(ChunkPool& pool, std::size_t max_bytes);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t max_bytes() const { return max_bytes_; }

  /// Contiguous free space at the tail, acquiring a chunk when the current
  /// tail is full. Empty when the per-session cap is reached or the pool
  /// refused a chunk (distinguish with pool_starved()).
  std::span<std::uint8_t> write_window();

  /// Publish `n` bytes just written into write_window().
  void commit(std::size_t n);

  /// True when the last write_window() came up empty because the *pool*
  /// refused, as opposed to this ring's own cap. Cleared by the next
  /// successful write_window().
  bool pool_starved() const { return pool_starved_; }

  /// Whether write_window() could currently produce space without a pool
  /// refusal — the interest-mask predicate (level-triggered epoll must not
  /// watch a socket whose bytes we cannot buffer).
  bool can_accept() const;

  /// Contiguous buffered bytes at the head (empty when the ring is).
  std::span<const std::uint8_t> read_window() const;

  /// Discard `n` bytes from the head; fully drained chunks go back to the
  /// pool immediately.
  void consume(std::size_t n);

  /// Drop everything, returning every chunk to the pool now — the
  /// graveyard path (a finished relay must not sit on pool memory while
  /// awaiting deferred deletion).
  void clear();

 private:
  struct Segment {
    ChunkRef chunk;
    std::size_t len = 0;  ///< bytes written into this chunk
  };

  ChunkPool* pool_;
  std::size_t max_bytes_;
  std::deque<Segment> segments_;
  std::size_t head_off_ = 0;  ///< consumed bytes of the front segment
  std::size_t size_ = 0;      ///< total buffered bytes
  bool pool_starved_ = false;
};

}  // namespace lsl::buf
