// SharedBudget: one MemoryBudget shared by several shard-local pools.
//
// The sharded daemon gives every shard its own ChunkPool (freelists and
// counters stay contention-free on the relay fast path) but the operator
// still configures ONE memory ceiling for the process. This facade wraps
// the deliberately-not-thread-safe MemoryBudget in a Sync-policy mutex —
// the same pattern as live::BasicSharedDeadlineWheel — so N pools can
// reserve() and release() against the same watermarked accounting.
//
// Lock order: a pool calls in with its own mu_ already held, so the
// repository-wide order is pool mutex → budget mutex; the budget never
// calls out while holding its lock (tools/lsl_lint lock-order rule).
//
// Correctness across shards — reservations never exceed the ceiling, a
// release is never lost, the pressure hysteresis sees every edge — is
// explored exhaustively by the model checker (src/check/suite.cpp
// scenario "buf_shared_budget") rather than sampled under TSan.
#pragma once

#include <cstdint>

#include "buf/budget.hpp"
#include "check/shim.hpp"

namespace lsl::buf {

/// Thread-safe facade over one MemoryBudget.
template <typename Sync>
class BasicSharedBudget {
 public:
  BasicSharedBudget() = default;
  BasicSharedBudget(std::uint64_t budget_bytes, double low_watermark,
                    double high_watermark)
      : budget_(budget_bytes, low_watermark, high_watermark) {}

  BasicSharedBudget(const BasicSharedBudget&) = delete;
  BasicSharedBudget& operator=(const BasicSharedBudget&) = delete;

  /// MemoryBudget::reserve under the lock; see its contract (force is the
  /// salvage path's may-overshoot escape hatch).
  bool reserve(std::uint64_t n, bool force = false) {
    typename Sync::lock_guard lock(mu_);
    return budget_.reserve(n, force);
  }

  void release(std::uint64_t n) {
    typename Sync::lock_guard lock(mu_);
    budget_.release(n);
  }

  bool enabled() const {
    typename Sync::lock_guard lock(mu_);
    return budget_.enabled();
  }
  std::uint64_t budget() const {
    typename Sync::lock_guard lock(mu_);
    return budget_.budget();
  }
  std::uint64_t in_use() const {
    typename Sync::lock_guard lock(mu_);
    return budget_.in_use();
  }
  std::uint64_t peak() const {
    typename Sync::lock_guard lock(mu_);
    return budget_.peak();
  }
  std::uint64_t headroom() const {
    typename Sync::lock_guard lock(mu_);
    return budget_.headroom();
  }
  bool under_pressure() const {
    typename Sync::lock_guard lock(mu_);
    return budget_.under_pressure();
  }
  std::uint64_t pressure_episodes() const {
    typename Sync::lock_guard lock(mu_);
    return budget_.pressure_episodes();
  }

 private:
  mutable typename Sync::mutex mu_;
  MemoryBudget budget_;
};

/// Production alias.
using SharedBudget = BasicSharedBudget<check::StdSync>;

}  // namespace lsl::buf
