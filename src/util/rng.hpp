// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulation (link loss, jitter, cross
// traffic, payload generation) draws from an explicitly seeded Rng so that
// experiments are exactly reproducible run-to-run and machine-to-machine.
// The generator is xoshiro256** (Blackman & Vigna), seeded via SplitMix64,
// which is both faster and of higher statistical quality than std::mt19937
// and — unlike the standard distributions — yields identical streams across
// standard library implementations.
#pragma once

#include <array>
#include <cstdint>

namespace lsl::util {

/// xoshiro256** pseudo-random generator with SplitMix64 seeding.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Construct from a 64-bit seed. Two Rngs with the same seed produce
  /// identical streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  /// Next raw 64-bit value.
  std::uint64_t operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive), unbiased via rejection.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Normally distributed value (Box–Muller, deterministic pairing).
  double normal(double mean, double stddev);

  /// Derive an independent child generator; used to give each simulation
  /// component its own stream so adding a component never perturbs others.
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace lsl::util
