// Descriptive statistics used by the experiment harness and the trace
// analyzer: streaming moments (Welford), order statistics, and a compact
// Summary type printed into every reproduced table.
#pragma once

#include <cstddef>
#include <vector>

namespace lsl::util {

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long runs; O(1) space. Used for per-connection RTT
/// averages and throughput aggregation across iterations.
class RunningStats {
 public:
  /// Fold one observation into the accumulator.
  void add(double x);

  /// Number of observations folded in so far.
  std::size_t count() const { return n_; }
  /// Arithmetic mean; 0 if empty.
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const;
  /// Square root of variance().
  double stddev() const;
  /// Smallest observation; 0 if empty.
  double min() const { return n_ ? min_ : 0.0; }
  /// Largest observation; 0 if empty.
  double max() const { return n_ ? max_ : 0.0; }

  /// Merge another accumulator into this one (parallel-combine form).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double median = 0.0;
  double max = 0.0;
};

/// Compute a Summary of `values` (copies and partially sorts internally).
Summary summarize(const std::vector<double>& values);

/// Median of `values`; 0 if empty. Does not modify the input.
double median(const std::vector<double>& values);

/// Linear-interpolated quantile q in [0,1]; 0 if empty.
double quantile(const std::vector<double>& values, double q);

/// Arithmetic mean; 0 if empty.
double mean(const std::vector<double>& values);

}  // namespace lsl::util
