#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace lsl::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n = n_ + other.n_;
  const double delta = other.mean_ - mean_;
  const double mean =
      mean_ + delta * static_cast<double>(other.n_) / static_cast<double>(n);
  m2_ = m2_ + other.m2_ +
        delta * delta * static_cast<double>(n_) *
            static_cast<double>(other.n_) / static_cast<double>(n);
  mean_ = mean;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = n;
}

double quantile(const std::vector<double>& values, double q) {
  if (values.empty()) return 0.0;
  std::vector<double> v = values;
  std::sort(v.begin(), v.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double median(const std::vector<double>& values) {
  return quantile(values, 0.5);
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

Summary summarize(const std::vector<double>& values) {
  Summary s;
  RunningStats rs;
  for (double v : values) rs.add(v);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.median = median(values);
  return s;
}

}  // namespace lsl::util
