// Time-series utilities for the sequence-number-growth analysis
// (paper Figures 11–27): resampling irregular (time, value) traces onto a
// common grid and averaging many runs point-wise, exactly as the paper
// normalizes and averages per-iteration tcpdump traces.
#pragma once

#include <cstddef>
#include <vector>

namespace lsl::util {

/// One sample of a piecewise-linear time series.
struct SeriesPoint {
  double t = 0.0;  ///< time, seconds
  double v = 0.0;  ///< value (e.g. normalized sequence number, bytes)
};

/// An irregularly sampled, monotonically timed series.
using Series = std::vector<SeriesPoint>;

/// Linear interpolation of `s` at time `t`.
///
/// Values are clamped to the endpoints outside the sampled range (a finished
/// transfer holds its final sequence number; before the first sample the
/// series holds its initial value), matching how averaged traces are plotted
/// in the paper.
double interpolate(const Series& s, double t);

/// Resample `s` at `n` evenly spaced points covering [0, t_max].
Series resample(const Series& s, double t_max, std::size_t n);

/// Point-wise average of several runs on a common grid of `n` points over
/// [0, max run duration]. Empty runs are skipped.
Series average_series(const std::vector<Series>& runs, std::size_t n);

/// Final time of the series (0 if empty).
double duration(const Series& s);

}  // namespace lsl::util
