#include "util/series.hpp"

#include <algorithm>

namespace lsl::util {

double interpolate(const Series& s, double t) {
  if (s.empty()) return 0.0;
  if (t <= s.front().t) return s.front().v;
  if (t >= s.back().t) return s.back().v;
  // First point with time > t; s is sorted by construction.
  const auto it = std::upper_bound(
      s.begin(), s.end(), t,
      [](double lhs, const SeriesPoint& p) { return lhs < p.t; });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  const double span = hi.t - lo.t;
  if (span <= 0.0) return hi.v;
  const double frac = (t - lo.t) / span;
  return lo.v + frac * (hi.v - lo.v);
}

Series resample(const Series& s, double t_max, std::size_t n) {
  Series out;
  if (n == 0) return out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t =
        n == 1 ? 0.0
               : t_max * static_cast<double>(i) / static_cast<double>(n - 1);
    out.push_back({t, interpolate(s, t)});
  }
  return out;
}

double duration(const Series& s) { return s.empty() ? 0.0 : s.back().t; }

Series average_series(const std::vector<Series>& runs, std::size_t n) {
  Series out;
  if (n == 0) return out;
  double t_max = 0.0;
  std::size_t live = 0;
  for (const auto& r : runs) {
    if (r.empty()) continue;
    ++live;
    t_max = std::max(t_max, duration(r));
  }
  if (live == 0) return out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t =
        n == 1 ? 0.0
               : t_max * static_cast<double>(i) / static_cast<double>(n - 1);
    double sum = 0.0;
    for (const auto& r : runs) {
      if (r.empty()) continue;
      sum += interpolate(r, t);
    }
    out.push_back({t, sum / static_cast<double>(live)});
  }
  return out;
}

}  // namespace lsl::util
