#include "util/rng.hpp"

#include <cmath>

namespace lsl::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  if (lo >= hi) return lo;
  const std::uint64_t range = hi - lo + 1;
  if (range == 0) return (*this)();  // full 64-bit range
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return lo + v % range;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  // Box–Muller; we draw both uniforms every call and discard the second
  // variate to keep the stream position deterministic per call.
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

Rng Rng::split() { return Rng((*this)()); }

}  // namespace lsl::util
