// A set of disjoint half-open uint64 intervals [start, end).
//
// Used by the TCP model's SACK machinery: the sender's scoreboard of
// selectively acknowledged sequence ranges, and the per-recovery record of
// retransmitted ranges. Intervals merge on insert; queries support coverage
// accounting and hole (gap) scanning.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>

namespace lsl::util {

/// Disjoint-interval set over std::uint64_t with merge-on-insert.
class IntervalSet {
 public:
  using Interval = std::pair<std::uint64_t, std::uint64_t>;  // [first, second)

  /// Insert [start, end), merging with any overlapping/adjacent intervals.
  /// Empty ranges are ignored.
  void insert(std::uint64_t start, std::uint64_t end);

  /// Remove everything below `bound` (cumulative-ACK advance).
  void erase_below(std::uint64_t bound);

  /// Drop all intervals.
  void clear() { set_.clear(); total_ = 0; }

  /// True if [start, end) is entirely contained.
  bool contains(std::uint64_t start, std::uint64_t end) const;

  /// True if the point `x` is covered.
  bool contains(std::uint64_t x) const { return contains(x, x + 1); }

  /// Number of bytes of [start, end) that are covered.
  std::uint64_t covered_within(std::uint64_t start, std::uint64_t end) const;

  /// First maximal uncovered gap [gap_start, gap_end) with gap_start >= from
  /// and gap_start < limit; gap_end is clamped to limit. nullopt if the
  /// range [from, limit) is fully covered.
  std::optional<Interval> next_gap(std::uint64_t from,
                                   std::uint64_t limit) const;

  /// Total bytes covered.
  std::uint64_t total() const { return total_; }

  /// Highest covered point + 1 (0 when empty).
  std::uint64_t max_end() const {
    return set_.empty() ? 0 : std::prev(set_.end())->second;
  }

  bool empty() const { return set_.empty(); }
  std::size_t interval_count() const { return set_.size(); }

  /// Iteration over the disjoint intervals in ascending order.
  auto begin() const { return set_.begin(); }
  auto end() const { return set_.end(); }

 private:
  std::map<std::uint64_t, std::uint64_t> set_;  // start -> end
  std::uint64_t total_ = 0;
};

}  // namespace lsl::util
