#include "util/contract.hpp"

#include <cstdio>
#include <cstdlib>

namespace lsl::util {

[[noreturn]] void contract_fail(const char* kind, const char* file, int line,
                                const char* expr, const char* msg) noexcept {
  std::fprintf(stderr, "lsl: %s violated at %s:%d: %s (%s)\n", kind, file,
               line, expr, msg);
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] void transition_fail(const char* machine, const char* from,
                                  const char* to) noexcept {
  std::fprintf(stderr,
               "lsl: forbidden state transition in machine '%s': %s -> %s\n",
               machine, from, to);
  std::fflush(stderr);
  std::abort();
}

}  // namespace lsl::util
