#include "util/contract.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace lsl::util {

namespace {

std::atomic<void (*)() noexcept> g_abort_hook{nullptr};

/// Run the registered post-mortem hook at most once, even if the hook
/// itself trips another contract on the way down.
void run_abort_hook() noexcept {
  if (auto* hook = g_abort_hook.exchange(nullptr)) hook();
}

}  // namespace

void set_contract_abort_hook(void (*hook)() noexcept) noexcept {
  g_abort_hook.store(hook);
}

[[noreturn]] void contract_fail(const char* kind, const char* file, int line,
                                const char* expr, const char* msg) noexcept {
  std::fprintf(stderr, "lsl: %s violated at %s:%d: %s (%s)\n", kind, file,
               line, expr, msg);
  std::fflush(stderr);
  run_abort_hook();
  std::abort();
}

[[noreturn]] void transition_fail(const char* machine, const char* from,
                                  const char* to) noexcept {
  std::fprintf(stderr,
               "lsl: forbidden state transition in machine '%s': %s -> %s\n",
               machine, from, to);
  std::fflush(stderr);
  run_abort_hook();
  std::abort();
}

}  // namespace lsl::util
