// Tabular output for the benchmark harness: every reproduced figure prints
// an aligned ASCII table to stdout and can optionally emit CSV so the series
// can be re-plotted. Columns are declared once; rows accept heterogeneous
// cells (string / integer / fixed-precision double).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace lsl::util {

/// One table cell: text, integer, or a double with explicit precision.
class Cell {
 public:
  Cell(const char* s) : text_(s) {}                    // NOLINT(runtime/explicit)
  Cell(std::string s) : text_(std::move(s)) {}         // NOLINT(runtime/explicit)
  Cell(std::int64_t v);                                // NOLINT(runtime/explicit)
  Cell(std::uint64_t v);                               // NOLINT(runtime/explicit)
  Cell(int v) : Cell(static_cast<std::int64_t>(v)) {}  // NOLINT(runtime/explicit)
  /// Double rendered with `precision` digits after the decimal point.
  Cell(double v, int precision = 2);                   // NOLINT(runtime/explicit)

  const std::string& text() const { return text_; }

 private:
  std::string text_;
};

/// An aligned ASCII / CSV table with a title and fixed column headers.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  /// Append a row; must have exactly as many cells as there are columns.
  void add_row(std::vector<Cell> cells);

  /// Render as an aligned, boxed ASCII table.
  void print(std::ostream& os) const;

  /// Render as CSV (header row + data rows, RFC-4180 quoting for commas).
  void write_csv(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }
  const std::string& title() const { return title_; }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lsl::util
