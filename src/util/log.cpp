#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace lsl::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void logf(LogLevel level, const char* fmt, ...) {
  if (level < log_level()) return;
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), buf);
}

}  // namespace lsl::util
