#include "util/log.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <mutex>
#include <string>

namespace lsl::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

std::optional<LogLevel> parse_log_level(std::string_view name) {
  std::string s(name);
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn" || s == "warning") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  if (s == "off" || s == "none") return LogLevel::kOff;
  return std::nullopt;
}

void logf(LogLevel level, const char* fmt, ...) {
  if (level < log_level()) return;
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), buf);
}

}  // namespace lsl::util
