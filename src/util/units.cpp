#include "util/units.hpp"

#include <cstdio>

namespace lsl::util {

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  if (bytes >= kGiB && bytes % kGiB == 0) {
    std::snprintf(buf, sizeof(buf), "%lluG",
                  static_cast<unsigned long long>(bytes / kGiB));
  } else if (bytes >= kMiB && bytes % kMiB == 0) {
    std::snprintf(buf, sizeof(buf), "%lluM",
                  static_cast<unsigned long long>(bytes / kMiB));
  } else if (bytes >= kKiB && bytes % kKiB == 0) {
    std::snprintf(buf, sizeof(buf), "%lluK",
                  static_cast<unsigned long long>(bytes / kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string format_duration(SimDuration d) {
  char buf[64];
  if (d >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3fs", to_seconds(d));
  } else if (d >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.3fms", to_millis(d));
  } else if (d >= kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%.3fus",
                  static_cast<double>(d) / static_cast<double>(kMicrosecond));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(d));
  }
  return buf;
}

}  // namespace lsl::util
