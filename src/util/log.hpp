// Minimal leveled logger.
//
// The simulator and the real-socket daemon share this facility; it is
// intentionally tiny (printf-style, a global level, stderr sink) because
// observability inside the simulator comes from packet traces, not logs.
#pragma once

#include <cstdarg>
#include <optional>
#include <string_view>

namespace lsl::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Set the global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);

/// Current global log threshold.
LogLevel log_level();

/// Parse a level name ("debug", "info", "warn", "error", "off",
/// case-insensitive) — the CLI tools' --log-level flag.
std::optional<LogLevel> parse_log_level(std::string_view name);

/// printf-style log statement; thread-safe line-at-a-time output to stderr.
void logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace lsl::util

#define LSL_LOG_DEBUG(...) \
  ::lsl::util::logf(::lsl::util::LogLevel::kDebug, __VA_ARGS__)
#define LSL_LOG_INFO(...) \
  ::lsl::util::logf(::lsl::util::LogLevel::kInfo, __VA_ARGS__)
#define LSL_LOG_WARN(...) \
  ::lsl::util::logf(::lsl::util::LogLevel::kWarn, __VA_ARGS__)
#define LSL_LOG_ERROR(...) \
  ::lsl::util::logf(::lsl::util::LogLevel::kError, __VA_ARGS__)
