#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <stdexcept>

namespace lsl::util {

Cell::Cell(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  text_ = buf;
}

Cell::Cell(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  text_ = buf;
}

Cell::Cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  text_ = buf;
}

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::add_row(std::vector<Cell> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("Table::add_row: expected " +
                                std::to_string(columns_.size()) +
                                " cells, got " + std::to_string(cells.size()));
  }
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (auto& c : cells) row.push_back(c.text());
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    widths[i] = columns_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  const auto rule = [&] {
    os << '+';
    for (auto w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << ' ' << cells[i];
      for (std::size_t p = cells[i].size(); p < widths[i] + 1; ++p) os << ' ';
      os << '|';
    }
    os << '\n';
  };

  os << "== " << title_ << " ==\n";
  rule();
  emit_row(columns_);
  rule();
  for (const auto& row : rows_) emit_row(row);
  rule();
}

void Table::write_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      const auto& s = cells[i];
      if (s.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char c : s) {
          if (c == '"') os << '"';
          os << c;
        }
        os << '"';
      } else {
        os << s;
      }
    }
    os << '\n';
  };
  emit(columns_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace lsl::util
