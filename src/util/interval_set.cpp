#include "util/interval_set.hpp"

#include <algorithm>

namespace lsl::util {

void IntervalSet::insert(std::uint64_t start, std::uint64_t end) {
  if (start >= end) return;

  // Find the first interval that could merge: the one before `start` if it
  // reaches start, else the first beginning at or after start.
  auto it = set_.upper_bound(start);
  if (it != set_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) it = prev;
  }
  // Absorb all overlapping/adjacent intervals.
  while (it != set_.end() && it->first <= end) {
    start = std::min(start, it->first);
    end = std::max(end, it->second);
    total_ -= it->second - it->first;
    it = set_.erase(it);
  }
  set_.emplace(start, end);
  total_ += end - start;
}

void IntervalSet::erase_below(std::uint64_t bound) {
  auto it = set_.begin();
  while (it != set_.end() && it->first < bound) {
    if (it->second <= bound) {
      total_ -= it->second - it->first;
      it = set_.erase(it);
    } else {
      // Trim the straddling interval.
      total_ -= bound - it->first;
      const std::uint64_t end = it->second;
      set_.erase(it);
      set_.emplace(bound, end);
      break;
    }
  }
}

bool IntervalSet::contains(std::uint64_t start, std::uint64_t end) const {
  if (start >= end) return true;
  auto it = set_.upper_bound(start);
  if (it == set_.begin()) return false;
  --it;
  return it->first <= start && end <= it->second;
}

std::uint64_t IntervalSet::covered_within(std::uint64_t start,
                                          std::uint64_t end) const {
  if (start >= end) return 0;
  std::uint64_t covered = 0;
  auto it = set_.upper_bound(start);
  if (it != set_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > start) {
      covered += std::min(prev->second, end) - start;
    }
  }
  for (; it != set_.end() && it->first < end; ++it) {
    covered += std::min(it->second, end) - it->first;
  }
  return covered;
}

std::optional<IntervalSet::Interval> IntervalSet::next_gap(
    std::uint64_t from, std::uint64_t limit) const {
  while (from < limit) {
    auto it = set_.upper_bound(from);
    if (it != set_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > from) {
        from = prev->second;  // `from` is covered; skip past the interval
        continue;
      }
    }
    // `from` is uncovered; the gap runs to the next interval or the limit.
    const std::uint64_t gap_end =
        it == set_.end() ? limit : std::min(it->first, limit);
    if (from >= gap_end) return std::nullopt;
    return Interval{from, gap_end};
  }
  return std::nullopt;
}

}  // namespace lsl::util
