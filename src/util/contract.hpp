// Machine-checked invariants and declarative state machines.
//
// LSL's correctness story splits integrity (end-to-end MD5) from flow
// control (hop-by-hop TCP sublinks): a silently corrupted relay state
// machine degrades throughput or wedges a cascade without ever failing a
// checksum. Tests only trip such bugs by accident; contracts turn them
// into immediate, attributable aborts at the exact violating transition.
//
// Three macro families:
//
//   LSL_PRECONDITION(cond, msg)  caller broke the function's requirements
//   LSL_INVARIANT(cond, msg)     internal state is inconsistent
//   LSL_UNREACHABLE(msg)         control flow reached an impossible point
//
// plus a declarative state-machine layer: a TransitionTable enumerates the
// legal edges of an enum-typed lifecycle once, and a CheckedState member
// refuses (aborts) any transition outside that table. The TCP connection
// states (tcp::TcpSocket) and the lsd relay lifecycle (posix::Lsd) are both
// guarded this way — the PR 1 use-after-free (a deleted relay pumped again)
// is now a checked kDone-edge violation rather than heap corruption.
//
// Contracts are ON by default in every build type, including optimized
// ones: each check costs one predictable branch (transition checks, which
// are rare, cost a 2-D table load). Configure with -DLSL_CONTRACTS=OFF to
// compile them out (LSL_UNREACHABLE then lowers to __builtin_unreachable).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <utility>

namespace lsl::util {

/// Print a diagnostic to stderr and abort. Never returns.
[[noreturn]] void contract_fail(const char* kind, const char* file, int line,
                                const char* expr, const char* msg) noexcept;

/// Abort for a forbidden state-machine edge. Never returns.
[[noreturn]] void transition_fail(const char* machine, const char* from,
                                  const char* to) noexcept;

/// Register a hook invoked exactly once just before a contract abort
/// terminates the process — the post-mortem flush point (e.g. the span
/// flight recorder's crash dump). nullptr unregisters. The hook runs on
/// the aborting thread, synchronously (contract aborts are not signal
/// handlers); it must not itself trip a contract.
void set_contract_abort_hook(void (*hook)() noexcept) noexcept;

}  // namespace lsl::util

#if defined(LSL_CONTRACTS_OFF)

#define LSL_PRECONDITION(cond, msg) ((void)0)
#define LSL_INVARIANT(cond, msg) ((void)0)
#define LSL_UNREACHABLE(msg) __builtin_unreachable()

#else

#define LSL_PRECONDITION(cond, msg)                                     \
  ((cond) ? (void)0                                                     \
          : ::lsl::util::contract_fail("precondition", __FILE__,        \
                                       __LINE__, #cond, msg))
#define LSL_INVARIANT(cond, msg)                                        \
  ((cond) ? (void)0                                                     \
          : ::lsl::util::contract_fail("invariant", __FILE__, __LINE__, \
                                       #cond, msg))
#define LSL_UNREACHABLE(msg)                                          \
  ::lsl::util::contract_fail("unreachable", __FILE__, __LINE__, "-", \
                             msg)

#endif  // LSL_CONTRACTS_OFF

namespace lsl::util {

/// The legal edges of an enum-typed state machine, declared once as data.
///
/// `State` must be an enum (class) whose underlying values are the dense
/// range [0, kNumStates). The table is a kNumStates² adjacency matrix, so
/// checking an edge is one load; the name function renders diagnostics.
template <typename State, std::size_t kNumStates>
class TransitionTable {
 public:
  using NameFn = const char* (*)(State);
  using Edge = std::pair<State, State>;

  constexpr TransitionTable(const char* machine, NameFn name,
                            std::initializer_list<Edge> edges)
      : machine_(machine), name_(name), allowed_{} {
    for (const Edge& e : edges) {
      allowed_[index(e.first)][index(e.second)] = true;
    }
  }

  /// True when `from -> to` is a declared edge.
  constexpr bool allowed(State from, State to) const {
    return allowed_[index(from)][index(to)];
  }

  /// Abort (via transition_fail) when `from -> to` is not declared.
  /// Compiled out together with the other contracts.
  void check(State from, State to) const {
#if !defined(LSL_CONTRACTS_OFF)
    if (!allowed(from, to)) {
      transition_fail(machine_, name_(from), name_(to));
    }
#else
    (void)from;
    (void)to;
#endif
  }

  const char* machine() const { return machine_; }
  const char* name(State s) const { return name_(s); }

 private:
  static constexpr std::size_t index(State s) {
    return static_cast<std::size_t>(s);
  }

  const char* machine_;
  NameFn name_;
  bool allowed_[kNumStates][kNumStates];
};

/// An enum-typed state whose every mutation is validated against a
/// TransitionTable. Converts implicitly to `State` so comparisons read
/// like a plain member; mutation only happens through transition().
template <typename State, std::size_t kNumStates>
class CheckedState {
 public:
  constexpr CheckedState(const TransitionTable<State, kNumStates>& table,
                         State initial)
      : table_(&table), state_(initial) {}

  /// Move to `to`, aborting if the edge is not in the table.
  void transition(State to) {
    table_->check(state_, to);
    state_ = to;
  }

  State get() const { return state_; }
  operator State() const { return state_; }

 private:
  const TransitionTable<State, kNumStates>* table_;
  State state_;
};

}  // namespace lsl::util
