// Units and simulated-time primitives shared across the LSL codebase.
//
// Simulated time is a signed 64-bit count of nanoseconds. Using an integral
// representation keeps the discrete-event simulation exactly deterministic
// (no floating-point drift in event ordering) while covering ~292 years of
// simulated time, far beyond any experiment in this repository.
#pragma once

#include <cstdint>
#include <string>

namespace lsl::util {

/// Simulated time in nanoseconds since the start of the simulation.
using SimTime = std::int64_t;

/// A duration in simulated nanoseconds.
using SimDuration = std::int64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;

/// Construct a duration from floating-point seconds (rounded to ns).
constexpr SimDuration seconds(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond));
}
/// Construct a duration from floating-point milliseconds.
constexpr SimDuration millis(double ms) {
  return static_cast<SimDuration>(ms * static_cast<double>(kMillisecond));
}
/// Construct a duration from floating-point microseconds.
constexpr SimDuration micros(double us) {
  return static_cast<SimDuration>(us * static_cast<double>(kMicrosecond));
}

/// Convert a simulated duration to floating-point seconds.
constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
/// Convert a simulated duration to floating-point milliseconds.
constexpr double to_millis(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

// --- Data sizes -------------------------------------------------------------

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

// --- Data rates -------------------------------------------------------------

/// Link and application data rates, stored as bits per second.
///
/// The paper reports all throughput in Mbit/s; links are likewise specified
/// in bits per second so serialization delays are exact integer arithmetic.
struct DataRate {
  std::uint64_t bits_per_second = 0;

  constexpr DataRate() = default;
  constexpr explicit DataRate(std::uint64_t bps) : bits_per_second(bps) {}

  static constexpr DataRate bps(std::uint64_t v) { return DataRate(v); }
  static constexpr DataRate kbps(double v) {
    return DataRate(static_cast<std::uint64_t>(v * 1e3));
  }
  static constexpr DataRate mbps(double v) {
    return DataRate(static_cast<std::uint64_t>(v * 1e6));
  }
  static constexpr DataRate gbps(double v) {
    return DataRate(static_cast<std::uint64_t>(v * 1e9));
  }

  constexpr double as_mbps() const {
    return static_cast<double>(bits_per_second) / 1e6;
  }

  constexpr bool is_zero() const { return bits_per_second == 0; }

  /// Time needed to serialize `bytes` onto a link of this rate.
  constexpr SimDuration transmission_time(std::uint64_t bytes) const {
    if (bits_per_second == 0) return 0;
    // bytes * 8 * 1e9 / bps, computed with 128-bit intermediate to avoid
    // overflow for multi-gigabyte payloads on slow links. __int128 is a GCC
    // extension; __extension__ keeps -Wpedantic quiet about it.
    __extension__ using u128 = unsigned __int128;
    const auto bits = static_cast<u128>(bytes) * 8u;
    const auto ns = bits * static_cast<u128>(kSecond) /
                    static_cast<u128>(bits_per_second);
    return static_cast<SimDuration>(ns);
  }

  friend constexpr bool operator==(DataRate a, DataRate b) {
    return a.bits_per_second == b.bits_per_second;
  }
  friend constexpr auto operator<=>(DataRate a, DataRate b) {
    return a.bits_per_second <=> b.bits_per_second;
  }
};

/// Throughput of `bytes` transferred in `elapsed` simulated time, in Mbit/s.
constexpr double throughput_mbps(std::uint64_t bytes, SimDuration elapsed) {
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(bytes) * 8.0 / 1e6 / to_seconds(elapsed);
}

/// Format a byte count with a human-readable suffix, e.g. "64M", "256K".
std::string format_bytes(std::uint64_t bytes);

/// Format a simulated duration, e.g. "57.3ms".
std::string format_duration(SimDuration d);

}  // namespace lsl::util
