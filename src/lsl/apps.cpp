#include "lsl/apps.hpp"

#include <algorithm>
#include <cassert>

#include "util/log.hpp"

namespace lsl::core {

// --- SessionLedger -----------------------------------------------------------

void SessionLedger::open(const SessionId& id, std::uint64_t total,
                         util::SimTime now) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    it = sessions_.emplace(id, State(seed_)).first;
    it->second.s.total = total;
    it->second.s.first_accept = now;
  }
  ++it->second.s.connections;
}

void SessionLedger::feed(const SessionId& id, std::uint64_t offset,
                         std::span<const std::uint8_t> data,
                         util::SimTime now) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return;  // never opened: nothing to stitch
  State& st = it->second;
  if (st.s.completed || st.s.gap_refused) return;
  if (offset > st.s.frontier) {
    // The connection claims bytes past everything we hold: acked data was
    // lost in a dead chain. Refuse the session rather than paper over it.
    st.s.gap_refused = true;
    LSL_LOG_WARN("ledger: gap at %llu (frontier %llu), session refused",
                 static_cast<unsigned long long>(offset),
                 static_cast<unsigned long long>(st.s.frontier));
    return;
  }
  // Discard the duplicated prefix; feed only frontier-advancing bytes so
  // the verifier's MD5 covers each stream byte exactly once.
  const std::uint64_t skip = st.s.frontier - offset;
  if (skip >= data.size()) return;
  const auto fresh = data.subspan(static_cast<std::size_t>(skip));
  st.verifier.feed(fresh);
  st.s.frontier += fresh.size();
  if (st.s.frontier >= st.s.total) {
    st.s.completed = true;
    st.s.complete_time = now;
    if (on_session_complete) on_session_complete(id, st.s);
  }
}

const SessionLedger::Session* SessionLedger::find(const SessionId& id) const {
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second.s;
}

std::uint64_t SessionLedger::frontier(const SessionId& id) const {
  const Session* s = find(id);
  return s == nullptr ? 0 : s->frontier;
}

bool SessionLedger::completed(const SessionId& id) const {
  const Session* s = find(id);
  return s != nullptr && s->completed;
}

bool SessionLedger::content_ok(const SessionId& id) const {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  return !it->second.s.gap_refused && it->second.verifier.ok();
}

md5::Digest SessionLedger::digest(const SessionId& id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return {};
  return it->second.verifier.digest();
}

// --- SourceApp ---------------------------------------------------------------

SourceApp::SourceApp(tcp::TcpStack& stack, sim::Endpoint first_hop,
                     SourceConfig config, SessionDirectory* dir)
    : stack_(stack), first_hop_(first_hop), config_(config), dir_(dir) {}

void SourceApp::start() {
  assert(socket_ == nullptr && "start() may only be called once");
  assert((!config_.resumable ||
          (config_.use_header && !config_.header.has_digest())) &&
         "resumable sessions need a header and cannot carry a digest "
         "trailer (MD5 cannot rewind across a resume boundary)");
  start_time_ = stack_.sim().now();

  const bool real = stack_.default_config().carry_data;
  if (real) {
    generator_.emplace(config_.payload_seed);
    // A precomputed trailer (striped lanes ship the merged stream's digest)
    // replaces per-connection hashing.
    if (config_.use_header && config_.header.has_digest() &&
        !config_.trailer_digest) {
      hasher_.emplace();
    }
  }
  open_connection(0);
}

void SourceApp::open_connection(std::uint64_t resume_offset) {
  const bool real = stack_.default_config().carry_data;
  pending_.clear();
  pending_off_ = 0;
  header_virtual_left_ = 0;
  trailer_staged_ = false;
  payload_left_ = config_.payload_bytes - resume_offset;

  conn_offset_ = resume_offset;
  SessionHeader wire_header;
  if (config_.use_header) {
    // The route's first hop is the endpoint we dial; the header we transmit
    // carries the *remaining* hops (the depot we connect to must not see
    // itself in the route, or it would relay to itself).
    wire_header = config_.header.popped();
    if (migrated_) {
      // A migrated session travels a chain that has never seen it:
      // kFlagMigrate (not kFlagResume — fresh depots would refuse an
      // unknown-session resume) with the remaining-bytes convention, so
      // the sink's ledger can splice it at resume_offset.
      wire_header.flags |= kFlagMigrate;
      wire_header.resume_offset = resume_offset;
      wire_header.payload_length = config_.payload_bytes - resume_offset;
    } else if (resumes_ > 0) {
      wire_header.flags |= kFlagResume;
      wire_header.resume_offset = resume_offset;
    }
    header_wire_bytes_ = wire_header.encoded_size();
    if (real) {
      encode_header(wire_header, pending_);
    } else {
      header_virtual_left_ = header_wire_bytes_;
    }
  } else {
    header_wire_bytes_ = 0;
  }
  if (real && generator_) generator_->seek(resume_offset);

  socket_ = stack_.connect(first_hop_);
  if (config_.use_header && dir_ != nullptr && !real) {
    dir_->publish(socket_->local(), wire_header);
  }
  socket_->on_established = [this] {
    established_time_ = stack_.sim().now();
    pump();
  };
  socket_->on_writable = [this] { pump(); };
  socket_->on_error = [this](tcp::TcpError err) {
    LSL_LOG_DEBUG("source: connection error %s", tcp::to_string(err));
    handle_connection_error();
  };
}

void SourceApp::handle_connection_error() {
  if (finished_) return;
  if (!config_.resumable) {
    finished_ = true;
    if (on_finished) on_finished();
    return;
  }
  // A backoff policy decides the reconnect delay — and whether to keep
  // trying at all. Without one, the fixed re-association delay applies.
  util::SimDuration delay = config_.resume_reconnect_delay;
  if (config_.reconnect_backoff) {
    const auto next = config_.reconnect_backoff();
    if (!next) {
      // Attempt budget exhausted: abandon the transfer.
      gave_up_ = true;
      finished_ = true;
      socket_->on_closed = nullptr;
      socket_->on_writable = nullptr;
      socket_ = nullptr;
      if (on_finished) on_finished();
      return;
    }
    delay = *next;
  }
  // Resume from the highest payload byte the dead connection delivered and
  // had acknowledged; everything beyond it is retransmitted.
  const std::uint64_t acked = socket_->stats().bytes_acked;
  std::uint64_t acked_payload =
      acked > header_wire_bytes_ ? acked - header_wire_bytes_ : 0;
  // Post-migration connections start mid-stream, so the conn-relative ack
  // count must be rebased to a global offset. (Pre-migration resumes keep
  // the historical conservative floor: the depot rebind path discards the
  // duplicated prefix either way.)
  if (migrated_) acked_payload += conn_offset_;
  acked_payload = std::min(acked_payload, config_.payload_bytes);
  ++resumes_;
  // Detach from the dead socket: its on_closed (fired right after this
  // error callback) must not mark the session finished.
  socket_->on_closed = nullptr;
  socket_->on_writable = nullptr;
  socket_ = nullptr;  // the dead socket stays owned by the stack
  const std::uint64_t epoch = epoch_;
  stack_.sim().events().schedule_in(delay, [this, acked_payload, epoch] {
    if (!finished_ && epoch == epoch_) open_connection(acked_payload);
  });
}

bool SourceApp::migrate(sim::Endpoint new_first_hop,
                        std::vector<HopAddress> hops, std::uint64_t floor) {
  assert(config_.resumable &&
         "migration rides the resume machinery: the source must be resumable");
  if (gave_up_ || socket_ == nullptr) return false;
  if (floor >= config_.payload_bytes) return false;
  // A source that already queued everything — even one whose FIN handshake
  // completed — can still migrate: its bytes may be stranded in a dying
  // chain's buffers downstream. The sink's acknowledged frontier, not our
  // send counter or FIN, is the truth about delivery.
  finished_ = false;

  ++epoch_;  // void any pending reconnect event from the old chain
  migrated_ = true;
  ++migrations_;

  // Detach and abort the old connection; the old chain's depots will park
  // or fail the husk on their own (their bytes-in-flight die with it —
  // that is why the floor comes from the sink, not from our ack counter).
  socket_->on_error = nullptr;
  socket_->on_closed = nullptr;
  socket_->on_writable = nullptr;
  if (socket_->state() != tcp::TcpState::kClosed) socket_->abort();
  socket_ = nullptr;

  first_hop_ = new_first_hop;
  config_.header.hops = std::move(hops);
  open_connection(floor);
  return true;
}

void SourceApp::simulate_disconnect() {
  if (socket_ != nullptr && socket_->state() != tcp::TcpState::kClosed) {
    socket_->abort();  // fires on_error -> resume machinery
  }
}

void SourceApp::pump() {
  if (finished_ || socket_ == nullptr) return;
  const bool real = socket_->config().carry_data;

  for (;;) {
    // 1. Header bytes.
    if (!real && header_virtual_left_ > 0) {
      const std::uint64_t took = socket_->send_virtual(header_virtual_left_);
      header_virtual_left_ -= took;
      if (header_virtual_left_ > 0) return;  // buffer full; resume on_writable
    }
    if (real && pending_off_ < pending_.size()) {
      const std::size_t took = socket_->send(std::span<const std::uint8_t>(
          pending_.data() + pending_off_, pending_.size() - pending_off_));
      pending_off_ += took;
      if (pending_off_ < pending_.size()) return;
      if (trailer_staged_) break;  // trailer fully queued: done
      pending_.clear();
      pending_off_ = 0;
    }

    // 2. Payload.
    if (payload_left_ > 0) {
      if (real) {
        std::uint8_t buf[16 * 1024];
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>({payload_left_, sizeof(buf),
                                     socket_->send_space()}));
        if (want == 0) return;
        if (config_.payload_fill) {
          config_.payload_fill(config_.payload_bytes - payload_left_,
                               std::span<std::uint8_t>(buf, want));
        } else {
          generator_->generate(std::span<std::uint8_t>(buf, want));
        }
        if (hasher_) {
          hasher_->update(std::span<const std::uint8_t>(buf, want));
        }
        // Fault injection: flip one byte after it was digested, so the
        // wire carries corrupted payload under an honest trailer and the
        // sink's end-to-end MD5 check fires.
        if (config_.corrupt_at_byte) {
          const std::uint64_t position =
              config_.payload_bytes - payload_left_;
          const std::uint64_t off = *config_.corrupt_at_byte;
          if (off >= position && off < position + want) {
            buf[static_cast<std::size_t>(off - position)] ^= 0x5a;
            if (config_.on_corrupt) config_.on_corrupt(off);
          }
        }
        const std::size_t took =
            socket_->send(std::span<const std::uint8_t>(buf, want));
        assert(took == want);
        payload_left_ -= took;
      } else {
        const std::uint64_t took = socket_->send_virtual(payload_left_);
        payload_left_ -= took;
        if (payload_left_ > 0) return;
      }
      continue;
    }

    // 3. Digest trailer (real mode with the digest flag): hashed here, or
    // the caller-supplied merged-stream digest for striped lanes.
    const bool send_trailer =
        real && config_.use_header && config_.header.has_digest();
    if (send_trailer && !trailer_staged_) {
      const md5::Digest d =
          hasher_ ? hasher_->finalize() : *config_.trailer_digest;
      pending_.assign(d.bytes.begin(), d.bytes.end());
      pending_off_ = 0;
      trailer_staged_ = true;
      continue;
    }
    break;
  }

  // Everything queued into the socket buffer: half-close.
  socket_->close();
  socket_->on_writable = nullptr;
  if (config_.resumable) {
    // Delivery is only certain once the FIN handshake completes; a failure
    // before that re-enters the resume machinery via on_error.
    socket_->on_closed = [this] {
      if (finished_) return;
      finished_ = true;
      if (on_finished) on_finished();
    };
    return;
  }
  finished_ = true;
  if (on_finished) on_finished();
}

// --- SinkApp -----------------------------------------------------------------

SinkApp::SinkApp(tcp::TcpSocket* socket, SinkConfig config,
                 SessionDirectory* dir)
    : socket_(socket), config_(config), dir_(dir) {
  const bool real = socket_->config().carry_data;

  if (config_.expect_header && !real) {
    // Virtual mode: header contents come from the directory; the bytes are
    // still consumed from the stream below.
    auto h = dir_ != nullptr ? dir_->consume(socket_->remote()) : std::nullopt;
    if (h) {
      header_ = std::move(*h);
      header_virtual_left_ = header_->encoded_size();
    } else {
      LSL_LOG_WARN("sink: no published header for incoming session");
      header_virtual_left_ = 0;
      header_done_ = true;
    }
  }
  if (!config_.expect_header) header_done_ = true;

  if (config_.verify_payload && real && config_.ledger == nullptr) {
    // With a ledger, stream-level verification happens there: a migrate
    // connection is only a fragment, so checking it against offset 0 of
    // the generator would be meaningless.
    verifier_.emplace(config_.payload_seed);
  }

  socket_->on_readable = [this] { on_readable(); };
  socket_->on_error = [this](tcp::TcpError err) {
    LSL_LOG_WARN("sink: connection error %s", tcp::to_string(err));
  };
  // Data may already be buffered (header piggybacked on the establishing
  // segment exchange).
  if (socket_->readable() > 0 || socket_->eof()) on_readable();
}

void SinkApp::on_readable() {
  if (complete_) return;
  if (socket_->config().carry_data) {
    consume_real();
  } else {
    consume_virtual();
  }
  if (socket_->eof() && socket_->readable() == 0 && !complete_) finish();
}

void SinkApp::consume_virtual() {
  if (!header_done_) {
    const std::uint64_t took = socket_->recv_virtual(header_virtual_left_);
    header_virtual_left_ -= took;
    if (header_virtual_left_ > 0) return;
    header_done_ = true;
  }
  payload_received_ += socket_->recv_virtual(~std::uint64_t{0});
}

void SinkApp::consume_real() {
  std::vector<std::uint8_t> buf(config_.read_chunk);
  while (socket_->readable() > 0) {
    // Header phase: accumulate until decodable.
    if (!header_done_) {
      // Read the prefix first, then exactly the remainder.
      std::size_t want = kHeaderPrefixBytes > header_buf_.size()
                             ? kHeaderPrefixBytes - header_buf_.size()
                             : 0;
      if (want == 0) {
        const auto len = header_length(header_buf_);
        if (!len) {
          LSL_LOG_ERROR("sink: malformed LSL header");
          socket_->abort();
          return;
        }
        if (header_buf_.size() >= *len) {
          header_ = decode_header(header_buf_);
          header_done_ = true;
          header_buf_.clear();
          if (config_.ledger != nullptr &&
              (header_->flags & kFlagUnboundedStream) == 0) {
            // Register with the stream ledger: a migrate header's
            // (resume_offset, payload_length) pair is (floor, remaining),
            // so the logical total is their sum.
            const std::uint64_t total =
                header_->is_migrate()
                    ? header_->resume_offset + header_->payload_length
                    : header_->payload_length;
            config_.ledger->open(header_->session, total, socket_->now());
          }
          continue;
        }
        want = *len - header_buf_.size();
      }
      const std::size_t got = socket_->recv(std::span<std::uint8_t>(
          buf.data(), std::min(want, buf.size())));
      if (got == 0) return;
      header_buf_.insert(header_buf_.end(), buf.data(), buf.data() + got);
      continue;
    }

    // Payload phase: everything except a possible 16-byte trailer. With a
    // header, payload_length is exact unless the unbounded flag is set.
    const bool digest = header_ && header_->has_digest();
    const bool bounded =
        header_ && (header_->flags & kFlagUnboundedStream) == 0;
    const std::uint64_t payload_total =
        bounded ? header_->payload_length : ~std::uint64_t{0};
    if (payload_received_ < payload_total) {
      const std::size_t want = static_cast<std::size_t>(
          std::min<std::uint64_t>(payload_total - payload_received_,
                                  buf.size()));
      const std::size_t got =
          socket_->recv(std::span<std::uint8_t>(buf.data(), want));
      if (got == 0) return;
      if (verifier_) {
        if (!verifier_->feed(std::span<const std::uint8_t>(buf.data(), got))) {
          content_ok_ = false;
        }
      }
      if (config_.ledger != nullptr && header_) {
        const std::uint64_t base =
            header_->is_migrate() ? header_->resume_offset : 0;
        config_.ledger->feed(header_->session, base + payload_received_,
                             std::span<const std::uint8_t>(buf.data(), got),
                             socket_->now());
      }
      payload_received_ += got;
      continue;
    }

    // Trailer phase.
    if (digest && trailer_.size() < kDigestTrailerBytes) {
      const std::size_t want = kDigestTrailerBytes - trailer_.size();
      const std::size_t got = socket_->recv(std::span<std::uint8_t>(
          buf.data(), std::min(want, buf.size())));
      if (got == 0) return;
      trailer_.insert(trailer_.end(), buf.data(), buf.data() + got);
      continue;
    }

    // Unexpected surplus bytes: drain (defensive).
    const std::size_t got =
        socket_->recv(std::span<std::uint8_t>(buf.data(), buf.size()));
    if (got == 0) return;
    LSL_LOG_WARN("sink: %zu unexpected trailing bytes", got);
  }
}

void SinkApp::finish() {
  complete_ = true;
  complete_time_ = socket_->now();

  if (verifier_) {
    content_ok_ = content_ok_ && verifier_->ok();
    if (header_ && header_->has_digest()) {
      if (trailer_.size() == kDigestTrailerBytes) {
        md5::Digest expect;
        std::copy(trailer_.begin(), trailer_.end(), expect.bytes.begin());
        digest_ok_ = (verifier_->digest() == expect);
      } else {
        digest_ok_ = false;
      }
    }
  }

  socket_->close();  // complete the FIN handshake from our side
  if (on_complete) on_complete(*this);
}

// --- SinkServer --------------------------------------------------------------

SinkServer::SinkServer(tcp::TcpStack& stack, sim::PortNum port,
                       SinkConfig config, SessionDirectory* dir)
    : stack_(stack), config_(config), dir_(dir) {
  stack_.listen(port, [this](tcp::TcpSocket* s) {
    auto sink = std::make_unique<SinkApp>(s, config_, dir_);
    sink->on_complete = [this](SinkApp& app) {
      if (on_complete) on_complete(app);
    };
    sinks_.push_back(std::move(sink));
  });
}

// --- Parallel (PSockets-style) baseline --------------------------------------

ParallelSource::ParallelSource(tcp::TcpStack& stack, sim::Endpoint sink,
                               std::uint64_t payload_bytes,
                               std::size_t streams) {
  assert(streams > 0);
  const std::uint64_t share = payload_bytes / streams;
  std::uint64_t remainder = payload_bytes % streams;
  for (std::size_t i = 0; i < streams; ++i) {
    SourceConfig cfg;
    cfg.payload_bytes = share + (remainder > 0 ? 1 : 0);
    if (remainder > 0) --remainder;
    sources_.push_back(
        std::make_unique<SourceApp>(stack, sink, cfg, nullptr));
  }
}

void ParallelSource::start() {
  for (auto& s : sources_) {
    s->start();
    if (start_time_ == 0) start_time_ = s->start_time();
  }
}

ParallelSinkServer::ParallelSinkServer(tcp::TcpStack& stack, sim::PortNum port,
                                       std::size_t streams)
    : expected_(streams) {
  SinkConfig cfg;  // plain TCP streams, no header
  server_ = std::make_unique<SinkServer>(stack, port, cfg, nullptr);
  server_->on_complete = [this](SinkApp& app) {
    ++completed_;
    if (completed_ == expected_) {
      complete_time_ = app.complete_time();
      if (on_complete) on_complete();
    }
  };
}

std::uint64_t ParallelSinkServer::payload_received() const {
  std::uint64_t total = 0;
  for (const auto& s : server_->sinks()) total += s->payload_received();
  return total;
}

}  // namespace lsl::core
