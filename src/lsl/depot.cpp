#include "lsl/depot.hpp"

#include <algorithm>
#include <cassert>

#include "util/log.hpp"

namespace lsl::core {

DepotApp::DepotApp(tcp::TcpStack& stack, DepotConfig config,
                   SessionDirectory* dir)
    : stack_(stack),
      config_(config),
      dir_(dir),
      budget_(config.pool_budget_bytes, config.pool_low_watermark,
              config.pool_high_watermark) {
  stack_.listen(config_.port,
                [this](tcp::TcpSocket* s) { on_accept(s); });
}

std::size_t DepotApp::live_sessions() const {
  std::size_t n = 0;
  for (const auto& r : relays_) {
    if (!r->done) ++n;
  }
  return n;
}

void DepotApp::on_accept(tcp::TcpSocket* up) {
  if (draining_) {
    // A draining depot finishes what it has but adopts nothing new; the
    // RST sends the source to its retry policy (and another depot).
    ++stats_.sessions_refused_drain;
    ++drain_report_.refused;
    up->abort();
    return;
  }
  if (accept_drops_ > 0) {
    --accept_drops_;
    ++stats_.sessions_refused;
    up->abort();
    return;
  }
  if (config_.max_sessions > 0 && live_sessions() >= config_.max_sessions) {
    ++stats_.sessions_refused;
    up->abort();
    return;
  }
  if (budget_.under_pressure()) {
    // Memory admission control, mirroring the real daemon: refuse (RST)
    // while buffered bytes sit over the high watermark, so the source's
    // RetryPolicy backs off instead of the depot overcommitting.
    ++stats_.sessions_refused_memory;
    up->abort();
    return;
  }
  ++stats_.sessions_accepted;
  auto relay = std::make_unique<Relay>();
  Relay* r = relay.get();
  r->up = up;
  r->accept_time = stack_.sim().now();
  relays_.push_back(std::move(relay));

  r->live.attach(&wheel_, &config_.liveness,
                 [this, r](live::DeadlineKind k) { on_deadline(*r, k); });
  if (live_metrics_) {
    r->live.set_rate_hook([this](double bps) {
      live_metrics_->slowest_relay_bps->set(bps);
    });
  }
  r->live.on_accepted(stack_.sim().now());
  arm_live_timer();

  const bool real = up->config().carry_data;
  if (!real) {
    // peek/consume split: only erase the directory entry once this relay
    // actually adopts the session, so a failed adoption leaves the entry
    // for the client's republish-and-reconnect cycle (resume).
    auto h = dir_ != nullptr ? dir_->peek(up->remote()) : std::nullopt;
    if (!h) {
      LSL_LOG_ERROR("depot: virtual session without published header");
      fail_relay(*r);
      return;
    }
    dir_->consume(up->remote());
    r->header = std::move(*h);
    r->header_virtual_left = r->header->encoded_size();
  }

  up->on_readable = [this, r] { pull_upstream(*r); };
  up->on_error = [this, r](tcp::TcpError) { on_upstream_error(*r); };
  if (up->readable() > 0 || up->eof()) pull_upstream(*r);
}

void DepotApp::pull_upstream(Relay& r) {
  if (r.done) return;
  const bool real = r.up->config().carry_data;

  // Phase 1: ingest the LSL header.
  if (!r.header_done) {
    if (real) {
      std::uint8_t buf[512];
      while (!r.header_done && r.up->readable() > 0) {
        std::size_t want = kHeaderPrefixBytes > r.header_buf.size()
                               ? kHeaderPrefixBytes - r.header_buf.size()
                               : 0;
        if (want == 0) {
          const auto len = header_length(r.header_buf);
          if (!len) {
            LSL_LOG_ERROR("depot: malformed LSL header");
            fail_relay(r);
            return;
          }
          if (r.header_buf.size() >= *len) {
            r.header = decode_header(r.header_buf);
            r.header_done = true;
            break;
          }
          want = *len - r.header_buf.size();
        }
        const std::size_t got = r.up->recv(std::span<std::uint8_t>(
            buf, std::min(want, sizeof(buf))));
        if (got == 0) break;
        r.header_buf.insert(r.header_buf.end(), buf, buf + got);
      }
    } else {
      const std::uint64_t got = r.up->recv_virtual(r.header_virtual_left);
      r.header_virtual_left -= got;
      if (r.header_virtual_left == 0) r.header_done = true;
    }
    if (!r.header_done) {
      if (r.up->eof()) fail_relay(r);  // truncated header
      return;
    }
  }

  if (r.stripe_lane < 0 && r.header && r.header->stripe) {
    r.stripe_lane = r.header->stripe->stripe_id;
  }
  // The header is in: adopt its trace id (once — trace_id goes non-zero)
  // and backfill the accept/header-read spans, whose interval opened at
  // accept but whose join key only exists now.
  if (r.trace_id == 0 && r.header && r.header->trace_id != 0) {
    r.trace_id = r.header->trace_id;
    if (tracer_ != nullptr) {
      tracer_->mark(r.trace_id, span::kSpanAccept,
                    util::to_seconds(r.accept_time));
      tracer_->emit(r.trace_id, span::kSpanHeaderRead,
                    util::to_seconds(r.accept_time),
                    util::to_seconds(stack_.sim().now()));
    }
  }

  // Phase 2a: a resume header re-binds an existing parked session instead
  // of dialing a new downstream path.
  if (r.header->is_resume() && !r.downstream_dialed) {
    if (!try_resume(r)) fail_relay(r);
    return;  // `r` is a husk either way; the merged relay carries on
  }

  // Phase 2b: dial the next hop as soon as the header is known, after the
  // daemon's per-session processing delay.
  if (!r.downstream_dialed) {
    r.downstream_dialed = true;
    r.dial_start = stack_.sim().now();
    // The dial deadline covers setup latency + handshake in one span.
    r.live.on_header_done(stack_.sim().now());
    arm_live_timer();
    if (config_.resume_grace > 0) {
      sessions_[r.header->session] = &r;
    }
    if (config_.session_setup_latency > 0) {
      Relay* rp = &r;
      stack_.sim().events().schedule_in(config_.session_setup_latency,
                                        [this, rp] {
                                          if (!rp->done) dial_downstream(*rp);
                                        });
    } else {
      dial_downstream(r);
    }
  }

  // Phase 3: relay payload through the bounded buffer with the copy model.
  pull_payload(r, /*ignore_space=*/false);
  sync_liveness(r);
  arm_live_timer();

  if (r.up->eof()) {
    r.up_eof = true;
    maybe_complete(r);
  }
}

void DepotApp::pull_payload(Relay& r, bool ignore_space) {
  // A stalled (slow-fault) depot stops relaying, but parked-session salvage
  // (ignore_space) still runs: those bytes were acked and must not be lost.
  if (stalled_ && !ignore_space) return;
  const bool real = r.up->config().carry_data;
  while (r.up->readable() > 0) {
    std::uint64_t space = ~std::uint64_t{0};
    if (!ignore_space) {
      space = config_.buffer_bytes > buffered(r)
                  ? config_.buffer_bytes - buffered(r)
                  : 0;
      space = std::min(space, budget_.headroom());
      if (space == 0) {
        begin_stall(r);
        return;  // backpressure: upstream window will close
      }
    }
    end_stall(r);

    const std::uint64_t want =
        std::min<std::uint64_t>({space, r.up->readable(), 64 * util::kKiB});
    std::vector<std::uint8_t> chunk;
    std::uint64_t got = 0;
    if (real) {
      chunk.resize(static_cast<std::size_t>(want));
      got = r.up->recv(chunk);
      chunk.resize(static_cast<std::size_t>(got));
    } else {
      got = r.up->recv_virtual(want);
    }
    if (got == 0) break;
    r.payload_pulled += got;
    r.live.note_activity(stack_.sim().now());

    // Drop the duplicated prefix of a resumed session.
    if (r.discard_left > 0) {
      const std::uint64_t drop = std::min(r.discard_left, got);
      r.discard_left -= drop;
      stats_.bytes_discarded += drop;
      got -= drop;
      if (real) {
        chunk.erase(chunk.begin(),
                    chunk.begin() + static_cast<long>(drop));
      }
      if (got == 0) continue;
    }

    // Serial copy resource, shared by all of the daemon's relays: chunks
    // become downstream-eligible in FIFO order after the wakeup latency and
    // the proportional copy time, and concurrent sessions queue behind one
    // another for the host's copy bandwidth.
    auto& ev = stack_.sim().events();
    const util::SimTime start =
        std::max(stack_.sim().now() + config_.wakeup_latency,
                 copy_busy_until_);
    const util::SimTime ready_at =
        start + config_.copy_rate.transmission_time(got);
    if (metrics_) {
      // Wait behind the daemon's serial copy resource, beyond the fixed
      // wakeup latency every pull pays — the §VII contention signal.
      const util::SimTime queued_from =
          stack_.sim().now() + config_.wakeup_latency;
      metrics_->copy_queue_delay_ms->observe(
          util::to_millis(start > queued_from ? start - queued_from : 0));
    }
    copy_busy_until_ = ready_at;
    // Salvage pulls (ignore_space) may overshoot the budget: those bytes
    // were acked to the sender and must not be dropped. Bounded pulls were
    // clamped to headroom above, so the non-forced reserve cannot fail.
    const bool reserved = budget_.reserve(got, /*force=*/ignore_space);
    assert(reserved);
    (void)reserved;
    r.in_copy_bytes += got;
    stats_.max_buffered = std::max(stats_.max_buffered, buffered(r));
    note_occupancy(r);
    Relay* rp = &r;
    ev.schedule_at(ready_at,
                   [this, rp, got, c = std::move(chunk)]() mutable {
                     copy_complete(*rp, got, std::move(c));
                   });
  }
}

void DepotApp::dial_downstream(Relay& r) {
  assert(r.header);
  const bool real = r.up->config().carry_data;

  const SessionHeader fwd = r.header->popped();
  const HopAddress next = r.header->next_hop();
  const sim::Endpoint next_ep{static_cast<sim::NodeId>(next.addr), next.port};

  r.down = stack_.connect(next_ep);
  if (!real && dir_ != nullptr) {
    dir_->publish(r.down->local(), fwd);
  }
  if (real) {
    encode_header(fwd, r.fwd_header);
  } else {
    r.fwd_virtual_left = fwd.encoded_size();
  }

  Relay* rp = &r;
  r.down->on_established = [this, rp] {
    rp->downstream_up = true;
    rp->live.on_connected(stack_.sim().now());
    if (tracer_ != nullptr && rp->trace_id != 0) {
      // Covers session_setup_latency + the downstream handshake, the same
      // interval the dial liveness deadline bounds.
      tracer_->emit(rp->trace_id, span::kSpanDial,
                    util::to_seconds(rp->dial_start),
                    util::to_seconds(stack_.sim().now()));
    }
    pump_downstream(*rp);
  };
  r.down->on_writable = [this, rp] { pump_downstream(*rp); };
  r.down->on_error = [this, rp](tcp::TcpError) { fail_relay(*rp); };
  if (on_downstream_open) on_downstream_open(r.down);
}

void DepotApp::copy_complete(Relay& r, std::uint64_t bytes,
                             std::vector<std::uint8_t> chunk) {
  if (r.done) return;
  r.in_copy_bytes -= bytes;
  r.ready_bytes += bytes;
  if (!chunk.empty()) r.ready_chunks.push_back(std::move(chunk));
  note_occupancy(r);
  pump_downstream(r);
}

void DepotApp::pump_downstream(Relay& r) {
  if (r.done || r.down == nullptr || !r.downstream_up || stalled_) {
    if (!r.done) {
      sync_liveness(r);
      arm_live_timer();
    }
    return;
  }
  const bool real = r.down->config().carry_data;
  const std::uint64_t relayed_before = stats_.bytes_relayed;

  // Forwarded header goes first.
  if (real && r.fwd_off < r.fwd_header.size()) {
    const std::size_t took = r.down->send(std::span<const std::uint8_t>(
        r.fwd_header.data() + r.fwd_off, r.fwd_header.size() - r.fwd_off));
    r.fwd_off += took;
    if (r.fwd_off < r.fwd_header.size()) return;
  }
  if (!real && r.fwd_virtual_left > 0) {
    const std::uint64_t took = r.down->send_virtual(r.fwd_virtual_left);
    r.fwd_virtual_left -= took;
    if (r.fwd_virtual_left > 0) return;
  }

  // Then buffered payload.
  bool freed = false;
  if (real) {
    while (!r.ready_chunks.empty()) {
      auto& front = r.ready_chunks.front();
      const std::size_t remaining = front.size() - r.ready_consumed;
      const std::size_t took = r.down->send(std::span<const std::uint8_t>(
          front.data() + r.ready_consumed, remaining));
      if (took == 0) break;
      r.ready_consumed += took;
      r.ready_bytes -= took;
      budget_.release(took);
      stats_.bytes_relayed += took;
      if (metrics_) metrics_->bytes_relayed->inc(took);
      note_stream(r, took);
      freed = true;
      if (r.ready_consumed == front.size()) {
        r.ready_chunks.pop_front();
        r.ready_consumed = 0;
      }
    }
  } else {
    while (r.ready_bytes > 0) {
      const std::uint64_t took = r.down->send_virtual(r.ready_bytes);
      if (took == 0) break;
      r.ready_bytes -= took;
      budget_.release(took);
      stats_.bytes_relayed += took;
      if (metrics_) metrics_->bytes_relayed->inc(took);
      note_stream(r, took);
      freed = true;
    }
  }

  if (freed) {
    end_stall(r);  // ring space exists again; reads may resume
    if (metrics_) note_occupancy(r);
    schedule_progress();
    // Space freed: resume reading from upstream (we may have declined
    // earlier).
    if (r.up != nullptr && r.up->readable() > 0) pull_upstream(r);
  }
  if (stats_.bytes_relayed != relayed_before) {
    r.live.note_progress(stats_.bytes_relayed - relayed_before);
    r.live.note_activity(stack_.sim().now());
  }
  sync_liveness(r);
  arm_live_timer();

  maybe_complete(r);
}

void DepotApp::note_stream(Relay& r, std::uint64_t took) {
  r.relayed += took;
  if (tracer_ == nullptr || r.trace_id == 0 || took == 0) return;
  if (r.window_open < 0) {
    r.window_open = stack_.sim().now();
    r.window_base = r.relayed - took;
  }
  if (r.relayed - r.window_base >= span::kStreamWindowBytes) {
    tracer_->emit(r.trace_id, span::stream_window_name(r.stripe_lane),
                  util::to_seconds(r.window_open),
                  util::to_seconds(stack_.sim().now()), r.relayed);
    r.window_open = -1;
  }
}

void DepotApp::flush_stream_window(Relay& r) {
  if (tracer_ == nullptr || r.trace_id == 0 || r.window_open < 0) return;
  tracer_->emit(r.trace_id, span::stream_window_name(r.stripe_lane),
                util::to_seconds(r.window_open),
                util::to_seconds(stack_.sim().now()), r.relayed);
  r.window_open = -1;
}

void DepotApp::schedule_progress() {
  if (!on_progress || progress_scheduled_) return;
  progress_scheduled_ = true;
  stack_.sim().events().schedule_in(0, [this] {
    progress_scheduled_ = false;
    if (on_progress) on_progress(stats_.bytes_relayed);
  });
}

void DepotApp::crash() {
  if (crashed_) return;
  crashed_ = true;
  stack_.close_listener(config_.port);
  // fail_relay() unparks, cancels expiry timers and erases the sessions_
  // entry per relay; afterwards nothing resumable is left.
  for (std::size_t i = 0; i < relays_.size(); ++i) {
    Relay* r = relays_[i].get();
    if (!r->done) fail_relay(*r);
  }
}

void DepotApp::restart() {
  if (!crashed_) return;
  crashed_ = false;
  stack_.listen(config_.port, [this](tcp::TcpSocket* s) { on_accept(s); });
}

void DepotApp::set_stalled(bool stalled) {
  if (stalled_ == stalled) return;
  stalled_ = stalled;
  if (stalled_) {
    // A stalled depot should be moving bytes and is not — exactly what the
    // progress watchdog exists to catch; re-sync so it starts counting.
    for (std::size_t i = 0; i < relays_.size(); ++i) {
      Relay* r = relays_[i].get();
      if (r->done || r->parked) continue;
      sync_liveness(*r);
    }
    arm_live_timer();
    return;
  }
  // Un-stall: kick every live relay; pending ready bytes flow again and
  // upstream reads that were declined resume.
  for (std::size_t i = 0; i < relays_.size(); ++i) {
    Relay* r = relays_[i].get();
    if (r->done || r->parked) continue;
    pump_downstream(*r);
    if (!r->done && r->up != nullptr && r->up->readable() > 0) {
      pull_upstream(*r);
    }
  }
  arm_live_timer();
}

void DepotApp::inject_upstream_reset() {
  for (std::size_t i = 0; i < relays_.size(); ++i) {
    Relay* r = relays_[i].get();
    if (r->done || r->parked || !r->header_done || r->up == nullptr) continue;
    // Enter the error path while the socket's receive buffer is intact so
    // park_relay() can salvage acked bytes, then RST the peer. The abort's
    // own error callback is harmless afterwards: parked and failed relays
    // return from on_upstream_error immediately.
    tcp::TcpSocket* up = r->up;
    on_upstream_error(*r);
    if (up->state() != tcp::TcpState::kClosed) up->abort();
  }
}

void DepotApp::on_upstream_error(Relay& r) {
  if (r.done || r.parked) return;
  // Park only sessions whose downstream path is (or is becoming) live and
  // whose operator enabled resumption; everything else aborts.
  if (config_.resume_grace > 0 && r.header_done && r.downstream_dialed &&
      !r.up_eof) {
    park_relay(r);
    return;
  }
  fail_relay(r);
}

void DepotApp::park_relay(Relay& r) {
  // Salvage everything the dead connection's TCP had already received in
  // order — those bytes were acknowledged to the sender, so the resumed
  // connection will not carry them again. The ring may temporarily exceed
  // its configured bound here; that is the price of not losing acked data.
  pull_payload(r, /*ignore_space=*/true);
  end_stall(r);  // a parked relay is waiting for resume, not for ring space
  r.parked = true;
  flush_stream_window(r);
  if (tracer_ != nullptr && r.trace_id != 0) {
    tracer_->mark(r.trace_id, span::kSpanPark,
                  util::to_seconds(stack_.sim().now()), r.payload_pulled);
  }
  // A parked relay is deliberately dormant: its clock is the resume grace,
  // not the liveness deadlines.
  r.live.cancel_all();
  arm_live_timer();
  Relay* rp = &r;
  r.park_expiry = stack_.sim().events().schedule_in(
      config_.resume_grace, [this, rp] {
        rp->park_expiry = sim::kInvalidEvent;
        if (rp->parked && !rp->done) fail_relay(*rp);
      });
  pump_downstream(r);
  maybe_finish_drain();
}

bool DepotApp::try_resume(Relay& fresh) {
  const auto it = sessions_.find(fresh.header->session);
  if (it == sessions_.end()) return false;
  Relay* old = it->second;
  if (!old->parked || old->done) return false;
  // Invariant: payload_pulled is the stream position of the next byte the
  // (dead) upstream would have delivered; discard_left counts duplicated
  // positions below the distinct high-water mark still awaiting re-receipt
  // from an earlier resume. Their sum is the highest distinct byte secured.
  const std::uint64_t high_water = old->payload_pulled + old->discard_left;
  if (fresh.header->resume_offset > old->payload_pulled) {
    // The reconnecting sender claims bytes we never received: a gap we
    // cannot paper over. Refuse; the whole session fails.
    fail_relay(*old);
    return false;
  }

  // Re-bind the fresh upstream connection to the parked relay.
  old->discard_left = high_water - fresh.header->resume_offset;
  old->payload_pulled = fresh.header->resume_offset;  // re-counts from here
  old->up = fresh.up;
  old->parked = false;
  if (old->park_expiry != sim::kInvalidEvent) {
    stack_.sim().events().cancel(old->park_expiry);
    old->park_expiry = sim::kInvalidEvent;
  }
  ++stats_.sessions_resumed;

  old->up->on_readable = [this, old] { pull_upstream(*old); };
  old->up->on_error = [this, old](tcp::TcpError) { on_upstream_error(*old); };

  // Neutralize the husk so its callbacks never fire again; any bytes it
  // buffered die with it.
  budget_.release(buffered(fresh));
  fresh.done = true;
  fresh.up = nullptr;
  fresh.live.cancel_all();

  // The merged relay is streaming again: restart the idle/stall watchdog
  // from the resume instant.
  old->live.on_connected(stack_.sim().now());
  arm_live_timer();
  if (tracer_ != nullptr && old->trace_id != 0) {
    tracer_->mark(old->trace_id, span::kSpanResume,
                  util::to_seconds(stack_.sim().now()),
                  fresh.header->resume_offset);
  }

  pull_upstream(*old);
  return true;
}

void DepotApp::maybe_complete(Relay& r) {
  if (r.done || r.parked) return;
  if (r.up_eof && r.in_copy_bytes == 0 && r.ready_bytes == 0 &&
      r.fwd_virtual_left == 0 &&
      (r.fwd_header.empty() || r.fwd_off == r.fwd_header.size())) {
    if (r.down == nullptr || !r.downstream_up) {
      // EOF before the downstream is up. If the dial is pending (setup
      // latency or handshake in flight), wait — pump_downstream() re-invokes
      // us on establishment. Only an undialed relay (truncated session) is
      // a failure.
      if (!r.downstream_dialed) fail_relay(r);
      return;
    }
    r.done = true;
    end_stall(r);
    flush_stream_window(r);
    ++stats_.sessions_completed;
    if (draining_ && !drain_done_) ++drain_report_.completed;
    r.live.cancel_all();
    arm_live_timer();
    if (metrics_) {
      metrics_->relay_latency_ms->observe(
          util::to_millis(stack_.sim().now() - r.accept_time));
    }
    if (r.header) sessions_.erase(r.header->session);
    r.down->close();
    r.up->close();  // completes the upstream FIN handshake from our side
    maybe_finish_drain();
  }
}

void DepotApp::begin_stall(Relay& r) {
  if (r.stall_since >= 0) return;  // already stalled
  r.stall_since = stack_.sim().now();
  ++stats_.backpressure_stalls;
  if (metrics_) metrics_->backpressure_stalls->inc();
}

void DepotApp::end_stall(Relay& r) {
  if (r.stall_since < 0) return;
  const util::SimDuration stalled = stack_.sim().now() - r.stall_since;
  r.stall_since = -1;
  stats_.backpressure_stall_time += stalled;
  if (metrics_) {
    metrics_->stall_time_ns->inc(static_cast<std::uint64_t>(stalled));
  }
}

void DepotApp::note_occupancy(const Relay& r) {
  if (!metrics_) return;
  metrics_->ring_occupancy_bytes->set(static_cast<double>(buffered(r)));
  metrics_->copy_queue_bytes->set(static_cast<double>(r.in_copy_bytes));
}

void DepotApp::fail_relay(Relay& r) {
  if (r.done) return;
  r.done = true;
  // The relay's buffered bytes are dead; hand their budget back now so
  // live sessions (and new admissions) see the space immediately. Late
  // copy_complete events on this relay return without touching accounts.
  budget_.release(buffered(r));
  end_stall(r);
  flush_stream_window(r);
  r.live.cancel_all();
  arm_live_timer();
  ++stats_.sessions_failed;
  if (r.park_expiry != sim::kInvalidEvent) {
    stack_.sim().events().cancel(r.park_expiry);
    r.park_expiry = sim::kInvalidEvent;
  }
  if (r.header) {
    const auto it = sessions_.find(r.header->session);
    if (it != sessions_.end() && it->second == &r) sessions_.erase(it);
  }
  if (r.up != nullptr && r.up->state() != tcp::TcpState::kClosed) {
    r.up->abort();
  }
  if (r.down != nullptr && r.down->state() != tcp::TcpState::kClosed) {
    r.down->abort();
  }
  maybe_finish_drain();
}

void DepotApp::on_deadline(Relay& r, live::DeadlineKind kind) {
  if (r.done || r.parked) return;
  LSL_LOG_WARN("depot: %s deadline expired; failing relay",
               live::to_string(kind));
  switch (kind) {
    case live::DeadlineKind::kHeader:
      ++stats_.timeouts_header;
      break;
    case live::DeadlineKind::kDial:
      ++stats_.timeouts_dial;
      break;
    case live::DeadlineKind::kIdle:
      ++stats_.timeouts_idle;
      break;
    case live::DeadlineKind::kStall:
      ++stats_.timeouts_stall;
      break;
    case live::DeadlineKind::kDrain:
      return;  // daemon-wide, handled by on_drain_deadline
  }
  if (live_metrics_) live_metrics_->on_timeout(kind);
  fail_relay(r);
}

void DepotApp::sync_liveness(Relay& r) {
  if (r.done || r.parked) return;
  // "Should be progressing" = there are bytes the downstream ought to be
  // absorbing. A stalled (slow-fault) depot also ought to be progressing —
  // that is precisely the condition the watchdog exists to expose.
  const bool staged =
      r.downstream_up && (stalled_ || buffered(r) > 0 ||
                          r.fwd_virtual_left > 0 ||
                          r.fwd_off < r.fwd_header.size());
  r.live.set_should_progress(staged, stack_.sim().now());
}

void DepotApp::arm_live_timer() {
  if (wheel_.empty()) {
    if (live_event_ != sim::kInvalidEvent) {
      stack_.sim().events().cancel(live_event_);
      live_event_ = sim::kInvalidEvent;
    }
    return;
  }
  const util::SimTime due =
      std::max<util::SimTime>(wheel_.next_due(), stack_.sim().now());
  if (live_event_ != sim::kInvalidEvent) {
    if (live_event_due_ == due) return;
    stack_.sim().events().cancel(live_event_);
  }
  live_event_due_ = due;
  live_event_ = stack_.sim().events().schedule_at(due, [this] {
    live_event_ = sim::kInvalidEvent;
    wheel_.fire_due(stack_.sim().now());
    arm_live_timer();
  });
}

void DepotApp::begin_drain() {
  if (draining_) return;
  draining_ = true;
  drain_start_ = stack_.sim().now();
  drain_report_ = {};
  std::uint64_t parked = 0;
  for (const auto& r : relays_) {
    if (!r->done && r->parked) ++parked;
  }
  drain_report_.in_flight_at_start = live_sessions() - parked;
  LSL_LOG_INFO("depot: drain started with %llu in-flight session(s)",
               static_cast<unsigned long long>(
                   drain_report_.in_flight_at_start));
  if (live_metrics_) live_metrics_->drains_started->inc();
  if (config_.liveness.drain_deadline > 0) {
    drain_token_ = wheel_.schedule(
        stack_.sim().now() + config_.liveness.drain_deadline, [this] {
          drain_token_ = live::DeadlineWheel::kInvalidToken;
          on_drain_deadline();
        });
    arm_live_timer();
  }
  maybe_finish_drain();
}

void DepotApp::maybe_finish_drain() {
  if (!draining_ || drain_done_) return;
  std::uint64_t parked = 0;
  for (const auto& r : relays_) {
    if (r->done) continue;
    if (!r->parked) return;  // still in flight
    ++parked;
  }
  drain_done_ = true;
  drain_report_.parked = parked;
  if (drain_token_ != live::DeadlineWheel::kInvalidToken) {
    wheel_.cancel(drain_token_);
    drain_token_ = live::DeadlineWheel::kInvalidToken;
    arm_live_timer();
  }
  if (live_metrics_ && !drain_report_.expired) {
    live_metrics_->drains_completed->inc();
  }
  if (tracer_ != nullptr) {
    // Daemon-wide lifecycle span: trace id 0 marks node scope, not a flow.
    tracer_->emit(0, span::kSpanDrain, util::to_seconds(drain_start_),
                  util::to_seconds(stack_.sim().now()),
                  drain_report_.completed);
  }
  LSL_LOG_INFO("depot: drain resolved: %s", drain_report_.summary().c_str());
  if (on_drain_done) on_drain_done(drain_report_);
}

void DepotApp::on_drain_deadline() {
  drain_report_.expired = true;
  if (live_metrics_) live_metrics_->on_timeout(live::DeadlineKind::kDrain);
  std::vector<Relay*> stragglers;
  for (const auto& r : relays_) {
    if (!r->done && !r->parked) stragglers.push_back(r.get());
  }
  drain_report_.aborted = stragglers.size();
  LSL_LOG_WARN("depot: drain deadline expired; aborting %zu straggler(s)",
               stragglers.size());
  for (Relay* r : stragglers) fail_relay(*r);
  maybe_finish_drain();
}

}  // namespace lsl::core
