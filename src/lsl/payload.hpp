// Deterministic payload streams.
//
// When transfers carry real bytes (tests, the MD5 integrity path, the posix
// client) the payload is generated from a PRNG seeded by the session id, so
// the source and sink can independently produce byte-identical streams —
// the sink verifies content without any side channel, exactly as a file
// transfer would, but without storing multi-megabyte fixtures.
#pragma once

#include <cstdint>
#include <span>

#include "md5/md5.hpp"
#include "util/rng.hpp"

namespace lsl::core {

/// Deterministic byte-stream generator. The stream content is a pure
/// function of (seed, byte offset), so chunking never affects the bytes.
class PayloadGenerator {
 public:
  explicit PayloadGenerator(std::uint64_t seed) : mix_(util::Rng(seed)()) {}

  /// Fill `out` with the next out.size() bytes of the stream.
  void generate(std::span<std::uint8_t> out);

  /// Total bytes generated so far.
  std::uint64_t position() const { return position_; }

  /// Jump to an absolute stream position (content is random-access); used
  /// when a resumed session retransmits from its acknowledged offset.
  void seek(std::uint64_t position) { position_ = position; }

 private:
  std::uint64_t mix_;
  std::uint64_t position_ = 0;
};

/// Sequential verifier for the same stream: feeds received bytes, checks
/// them against the expected generator output, and accumulates the MD5 the
/// sender will ship in the digest trailer.
class PayloadVerifier {
 public:
  /// With `check_content` false, feed() only accumulates the MD5 (for the
  /// digest trailer) without comparing bytes against the generator — the
  /// mode used for arbitrary (non-generated) payloads such as files.
  explicit PayloadVerifier(std::uint64_t seed, bool check_content = true)
      : expect_(seed), check_content_(check_content) {}

  /// Check the next received chunk. Returns false (and latches failure) on
  /// the first mismatching byte.
  bool feed(std::span<const std::uint8_t> data);

  bool ok() const { return ok_; }
  std::uint64_t verified_bytes() const { return verified_; }

  /// MD5 over everything fed so far (mirrors the sender's stream digest).
  md5::Digest digest() const { return hash_copy_digest(); }

 private:
  md5::Digest hash_copy_digest() const;

  PayloadGenerator expect_;
  md5::Md5 hasher_;
  bool check_content_ = true;
  bool ok_ = true;
  std::uint64_t verified_ = 0;
};

/// MD5 of the first `length` bytes of the stream seeded with `seed` —
/// what the sender computes while transmitting.
md5::Digest stream_digest(std::uint64_t seed, std::uint64_t length);

}  // namespace lsl::core
