// Logistical route selection.
//
// "LSL clients and depots are assumed to have network performance
// information available from a system such as the Network Weather Service,
// in order to make decisions about paths" (§III). This module is that
// decision layer: a PathDatabase holds NWS forecasters for each observed
// sublink (RTT, bandwidth, loss), and a RouteSelector scores candidate
// loose source routes by predicted transfer time — the logistics objective —
// using a TCP macroscopic model (Mathis et al., 1997) plus handshake and
// slow-start costs, which is precisely why cascading wins: splitting a path
// halves each control loop's RTT in the model just as it does on the wire.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "health/board.hpp"
#include "nws/forecaster.hpp"

namespace lsl::core {

/// Forecast state for one directed sublink.
struct SublinkForecast {
  nws::Forecaster rtt_ms;          ///< round-trip time, milliseconds
  nws::Forecaster bandwidth_mbps;  ///< achievable bulk bandwidth, Mbit/s
  nws::Forecaster loss_rate;       ///< packet loss probability
};

/// Observed-performance database keyed by (from, to) node names.
class PathDatabase {
 public:
  /// The forecast record for a directed edge (created on first use).
  SublinkForecast& edge(const std::string& from, const std::string& to);

  /// Convenience observers.
  void observe_rtt_ms(const std::string& from, const std::string& to,
                      double ms);
  void observe_bandwidth_mbps(const std::string& from, const std::string& to,
                              double mbps);
  void observe_loss_rate(const std::string& from, const std::string& to,
                         double p);

  /// True once the edge has at least one observation of each metric.
  bool knows(const std::string& from, const std::string& to) const;

 private:
  std::map<std::pair<std::string, std::string>, SublinkForecast> edges_;
};

/// A candidate session path: node names from source through depots to sink.
struct CandidateRoute {
  std::vector<std::string> waypoints;  ///< size >= 2 (src ... dst)

  std::size_t sublink_count() const {
    return waypoints.empty() ? 0 : waypoints.size() - 1;
  }
  std::string describe() const;
};

/// Scores candidate routes by predicted transfer time.
class RouteSelector {
 public:
  /// `depot_setup_seconds` is the per-depot session processing cost added
  /// to a cascaded route's setup time (header parse, route lookup, onward
  /// connect in a loaded user-level daemon) — the term that makes direct
  /// TCP win for small transfers.
  explicit RouteSelector(PathDatabase& db, double mss_bytes = 1448.0,
                         double depot_setup_seconds = 0.1)
      : db_(db), mss_(mss_bytes), depot_setup_s_(depot_setup_seconds) {}

  /// Predicted wall-clock seconds to move `bytes` over `route`:
  /// sequential sublink handshakes + slow-start ramp on the bottleneck
  /// sublink + steady transfer at the route's predicted end-to-end rate.
  /// Routes with unknown sublinks predict +infinity.
  double predict_transfer_seconds(const CandidateRoute& route,
                                  std::uint64_t bytes) const;

  /// Predicted steady-state throughput of one sublink in Mbit/s — the lower
  /// of the forecast path bandwidth and the Mathis TCP model
  /// MSS / (RTT * sqrt(loss)).
  double sublink_rate_mbps(const std::string& from,
                           const std::string& to) const;

  /// The candidate with the smallest predicted transfer time. Ties go to
  /// the route with fewer sublinks. `candidates` must be non-empty.
  const CandidateRoute& choose(const std::vector<CandidateRoute>& candidates,
                               std::uint64_t bytes) const;

  /// Attach a health board: route scoring then folds depot liveness into
  /// the forecast-based prediction. Interior waypoints (everything but the
  /// endpoints) that are suspect or dead make the route +infinity —
  /// refused placement — and degraded ones multiply the predicted time by
  /// `degraded_penalty`, spreading load toward healthy depots without
  /// banning a merely slow one. nullptr detaches (the default: selection
  /// is pure forecast arithmetic, and deterministic exports stay intact).
  void set_health(const health::HealthBoard* board,
                  double degraded_penalty = 2.0) {
    health_ = board;
    degraded_penalty_ = degraded_penalty;
  }
  const health::HealthBoard* health() const { return health_; }

 private:
  PathDatabase& db_;
  double mss_;
  double depot_setup_s_;
  const health::HealthBoard* health_ = nullptr;
  double degraded_penalty_ = 2.0;
};

}  // namespace lsl::core
