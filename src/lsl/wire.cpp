#include "lsl/wire.hpp"

#include <cstring>
#include <stdexcept>

namespace lsl::core {
namespace {

constexpr std::uint8_t kMagic[4] = {'L', 'S', 'L', '1'};
constexpr std::uint8_t kVersion = 1;
constexpr std::uint8_t kVersionTraced = 2;
constexpr std::uint8_t kVersionStriped = 3;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return (static_cast<std::uint64_t>(get_u32(p)) << 32) | get_u32(p + 4);
}

}  // namespace

bool stripe_info_valid(const StripeInfo& s) {
  if (s.stripe_count < 2 || s.stripe_count > kMaxStripes) return false;
  if (s.stripe_id >= s.stripe_count) return false;
  if (s.redundancy >= s.stripe_count) return false;
  switch (s.mode) {
    case StripeMode::kRoundRobin:
      // The interleave unit is the whole geometry; a zero chunk would make
      // every lane own nothing. range_lo is meaningless here.
      return s.chunk > 0 && s.range_lo == 0;
    case StripeMode::kContiguous:
      // Contiguous lanes are described by range_lo + payload_length alone;
      // redundancy needs interleaving to mask loss, so it is round-robin
      // only (docs/STRIPING.md discusses the trade-off).
      return s.chunk == 0 && s.redundancy == 0 &&
             s.range_lo <= s.session_bytes;
  }
  return false;
}

SessionHeader SessionHeader::popped() const {
  SessionHeader h = *this;
  if (!h.hops.empty()) h.hops.erase(h.hops.begin());
  return h;
}

void encode_header(const SessionHeader& h, std::vector<std::uint8_t>& out) {
  if (h.hops.size() > kMaxHops) {
    throw std::length_error("LSL route exceeds kMaxHops");
  }
  if (h.stripe && !stripe_info_valid(*h.stripe)) {
    throw std::invalid_argument("LSL stripe block is malformed");
  }
  out.reserve(out.size() + h.encoded_size());
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(h.stripe ? kVersionStriped
                         : (h.trace_id != 0 ? kVersionTraced : kVersion));
  out.push_back(h.flags);
  put_u16(out, static_cast<std::uint16_t>(h.hops.size()));
  out.insert(out.end(), h.session.bytes().begin(), h.session.bytes().end());
  put_u64(out, h.payload_length);
  put_u64(out, h.resume_offset);
  // Version 3 always carries the trace-id field (zero when untraced) so the
  // fixed length is a function of the version byte alone.
  if (h.stripe || h.trace_id != 0) put_u64(out, h.trace_id);
  if (h.stripe) {
    put_u16(out, h.stripe->stripe_id);
    put_u16(out, h.stripe->stripe_count);
    put_u32(out, h.stripe->chunk);
    out.push_back(h.stripe->redundancy);
    out.push_back(static_cast<std::uint8_t>(h.stripe->mode));
    put_u16(out, 0);  // reserved — must be zero on the wire
    put_u64(out, h.stripe->session_bytes);
    put_u64(out, h.stripe->range_lo);
  }
  for (const HopAddress& hop : h.hops) {
    put_u32(out, hop.addr);
    put_u16(out, hop.port);
  }
  put_u32(out, h.destination.addr);
  put_u16(out, h.destination.port);
}

std::optional<std::size_t> header_length(
    std::span<const std::uint8_t> prefix) {
  if (prefix.size() < kHeaderPrefixBytes) return std::nullopt;
  if (std::memcmp(prefix.data(), kMagic, 4) != 0) return std::nullopt;
  if (prefix[4] != kVersion && prefix[4] != kVersionTraced &&
      prefix[4] != kVersionStriped) {
    return std::nullopt;
  }
  const std::uint16_t hops = get_u16(prefix.data() + 6);
  if (hops > kMaxHops) return std::nullopt;
  const std::size_t fixed = prefix[4] == kVersionStriped
                                ? kFixedHeaderBytesV3
                                : (prefix[4] == kVersionTraced
                                       ? kFixedHeaderBytesV2
                                       : kFixedHeaderBytes);
  return fixed + kBytesPerHop * static_cast<std::size_t>(hops);
}

std::optional<SessionHeader> decode_header(std::span<const std::uint8_t> buf) {
  const auto len = header_length(buf);
  if (!len || buf.size() < *len) return std::nullopt;

  SessionHeader h;
  h.flags = buf[5];
  const std::uint16_t hop_count = get_u16(buf.data() + 6);
  std::array<std::uint8_t, 16> id{};
  std::memcpy(id.data(), buf.data() + 8, 16);
  h.session = SessionId(id);
  h.payload_length = get_u64(buf.data() + 24);
  h.resume_offset = get_u64(buf.data() + 32);
  const std::uint8_t* p = buf.data() + 40;
  if (buf[4] == kVersionTraced || buf[4] == kVersionStriped) {
    h.trace_id = get_u64(p);
    p += kTraceIdBytes;
    // A version-2 header with trace id 0 would re-encode as version 1 and
    // change length mid-chain; reject it at the edge instead. (Version 3
    // carries the field unconditionally, so zero is legal there.)
    if (h.trace_id == 0 && buf[4] == kVersionTraced) return std::nullopt;
  }
  if (buf[4] == kVersionStriped) {
    StripeInfo s;
    s.stripe_id = get_u16(p);
    s.stripe_count = get_u16(p + 2);
    s.chunk = get_u32(p + 4);
    s.redundancy = p[8];
    const std::uint8_t mode = p[9];
    const std::uint16_t reserved = get_u16(p + 10);
    s.session_bytes = get_u64(p + 12);
    s.range_lo = get_u64(p + 20);
    p += kStripeBytes;
    if (mode > static_cast<std::uint8_t>(StripeMode::kContiguous)) {
      return std::nullopt;
    }
    s.mode = static_cast<StripeMode>(mode);
    // A version-3 header describing fewer than two stripes would re-encode
    // shorter (version 1/2) and change length mid-chain — reject, like the
    // zero-trace-id case above. Reserved bits must be zero so they stay
    // available for a future revision.
    if (reserved != 0 || !stripe_info_valid(s)) return std::nullopt;
    h.stripe = s;
  }
  h.hops.reserve(hop_count);
  for (std::uint16_t i = 0; i < hop_count; ++i) {
    h.hops.push_back({get_u32(p), get_u16(p + 4)});
    p += 6;
  }
  h.destination = {get_u32(p), get_u16(p + 4)};
  return h;
}

}  // namespace lsl::core
