#include "lsl/wire.hpp"

#include <cstring>
#include <stdexcept>

namespace lsl::core {
namespace {

constexpr std::uint8_t kMagic[4] = {'L', 'S', 'L', '1'};
constexpr std::uint8_t kVersion = 1;
constexpr std::uint8_t kVersionTraced = 2;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return (static_cast<std::uint64_t>(get_u32(p)) << 32) | get_u32(p + 4);
}

}  // namespace

SessionHeader SessionHeader::popped() const {
  SessionHeader h = *this;
  if (!h.hops.empty()) h.hops.erase(h.hops.begin());
  return h;
}

void encode_header(const SessionHeader& h, std::vector<std::uint8_t>& out) {
  if (h.hops.size() > kMaxHops) {
    throw std::length_error("LSL route exceeds kMaxHops");
  }
  out.reserve(out.size() + h.encoded_size());
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(h.trace_id != 0 ? kVersionTraced : kVersion);
  out.push_back(h.flags);
  put_u16(out, static_cast<std::uint16_t>(h.hops.size()));
  out.insert(out.end(), h.session.bytes().begin(), h.session.bytes().end());
  put_u64(out, h.payload_length);
  put_u64(out, h.resume_offset);
  if (h.trace_id != 0) put_u64(out, h.trace_id);
  for (const HopAddress& hop : h.hops) {
    put_u32(out, hop.addr);
    put_u16(out, hop.port);
  }
  put_u32(out, h.destination.addr);
  put_u16(out, h.destination.port);
}

std::optional<std::size_t> header_length(
    std::span<const std::uint8_t> prefix) {
  if (prefix.size() < kHeaderPrefixBytes) return std::nullopt;
  if (std::memcmp(prefix.data(), kMagic, 4) != 0) return std::nullopt;
  if (prefix[4] != kVersion && prefix[4] != kVersionTraced) {
    return std::nullopt;
  }
  const std::uint16_t hops = get_u16(prefix.data() + 6);
  if (hops > kMaxHops) return std::nullopt;
  const std::size_t fixed =
      prefix[4] == kVersionTraced ? kFixedHeaderBytesV2 : kFixedHeaderBytes;
  return fixed + kBytesPerHop * static_cast<std::size_t>(hops);
}

std::optional<SessionHeader> decode_header(std::span<const std::uint8_t> buf) {
  const auto len = header_length(buf);
  if (!len || buf.size() < *len) return std::nullopt;

  SessionHeader h;
  h.flags = buf[5];
  const std::uint16_t hop_count = get_u16(buf.data() + 6);
  std::array<std::uint8_t, 16> id{};
  std::memcpy(id.data(), buf.data() + 8, 16);
  h.session = SessionId(id);
  h.payload_length = get_u64(buf.data() + 24);
  h.resume_offset = get_u64(buf.data() + 32);
  const std::uint8_t* p = buf.data() + 40;
  if (buf[4] == kVersionTraced) {
    h.trace_id = get_u64(p);
    p += kTraceIdBytes;
    // A version-2 header with trace id 0 would re-encode as version 1 and
    // change length mid-chain; reject it at the edge instead.
    if (h.trace_id == 0) return std::nullopt;
  }
  h.hops.reserve(hop_count);
  for (std::uint16_t i = 0; i < hop_count; ++i) {
    h.hops.push_back({get_u32(p), get_u16(p + 4)});
    p += 6;
  }
  h.destination = {get_u32(p), get_u16(p + 4)};
  return h;
}

}  // namespace lsl::core
