// The LSL wire header and its codec.
//
// A session's initiator specifies a "loose source route" — the list of
// depots the flow should cascade through (§III). The header travels as the
// first bytes of every sublink's byte stream: each depot parses it, pops the
// next hop, dials onward, and forwards the header with the remaining route
// before relaying payload. The same codec is used by the simulated depot
// (src/lsl/depot.*) and the real-socket lsd daemon (src/posix), so the two
// implementations are wire compatible by construction.
//
// Layout (big-endian):
//   0   4  magic "LSL1"
//   4   1  version (1, or 2 when a trace id is carried)
//   5   1  flags (SessionFlags bits)
//   6   2  remaining hop count (excluding final destination)
//   8  16  session id
//  24   8  payload length in bytes
//  32   8  resume offset (first payload byte carried; 0 for new sessions)
// [40   8  trace id — version 2 only; joins per-depot span records]
//   ..  6*n remaining hops: address(4) + port(2)
//   ..  6  final destination: address(4) + port(2)
//
// Version gating keeps tracing opt-in on the wire: a header is encoded as
// version 2 if and only if trace_id != 0, so untraced sessions are
// byte-identical to what a version-1-only peer expects, and a traced
// session fails fast (header rejected) at such a peer instead of
// silently losing its trace id mid-chain.
//
// "address" is a node id in the simulator and an IPv4 address in the posix
// implementation — both 32 bits, so headers are layout-identical.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "lsl/session_id.hpp"

namespace lsl::core {

/// One hop of a loose source route: 32-bit address + 16-bit port.
struct HopAddress {
  std::uint32_t addr = 0;
  std::uint16_t port = 0;

  friend bool operator==(const HopAddress&, const HopAddress&) = default;
};

/// Maximum number of relay hops a header may carry.
inline constexpr std::size_t kMaxHops = 16;

/// Bytes of the fixed (route-independent) portion of a version-1 header:
/// magic(4) + version(1) + flags(1) + hop count(2) + session id(16) +
/// payload length(8) + resume offset(8) + destination(6).
inline constexpr std::size_t kFixedHeaderBytes = 46;

/// Bytes of the wire-carried trace id (version 2 headers only).
inline constexpr std::size_t kTraceIdBytes = 8;

/// Fixed portion of a version-2 (traced) header: version 1's fields plus
/// the trace id between resume offset and the route.
inline constexpr std::size_t kFixedHeaderBytesV2 =
    kFixedHeaderBytes + kTraceIdBytes;

/// Bytes each route entry adds: address(4) + port(2).
inline constexpr std::size_t kBytesPerHop = 6;

/// Header flags.
enum SessionFlags : std::uint8_t {
  kFlagDigestTrailer = 1u << 0,  ///< MD5 trailer (16 bytes) after payload
  /// payload_length is advisory only; the stream runs until FIN. Mutually
  /// exclusive with kFlagDigestTrailer (the trailer needs a known length).
  kFlagUnboundedStream = 1u << 1,
  /// This connection resumes an existing session: resume_offset is the
  /// first payload byte the sender will (re)transmit. A depot holding the
  /// session re-binds its relay to this connection and discards the
  /// duplicated prefix — the paper's §III mobility scenario ("transport
  /// connections may come and go without disrupting the integrity of the
  /// session-layer handle"; the ultimate server never notices).
  kFlagResume = 1u << 2,
};

/// Session completion status byte sent by the sink back to the source just
/// before it closes: the end-to-end acknowledgment that the stream arrived
/// intact (or not). A close without a status byte means the session died in
/// transit (e.g. a depot failed to reach the next hop).
inline constexpr std::uint8_t kStatusOk = 0x06;    // ASCII ACK
inline constexpr std::uint8_t kStatusFail = 0x15;  // ASCII NAK

/// The parsed LSL session header.
struct SessionHeader {
  SessionId session;
  std::uint8_t flags = 0;
  /// Exact payload byte count (headers/trailers excluded); advisory only
  /// when kFlagUnboundedStream is set.
  std::uint64_t payload_length = 0;
  /// First payload byte this connection carries (kFlagResume sessions).
  std::uint64_t resume_offset = 0;
  /// End-to-end tracing join key, minted at the source and relayed
  /// unchanged hop to hop. 0 (the default) means untraced: the header is
  /// then encoded as version 1, byte-identical to pre-tracing builds.
  std::uint64_t trace_id = 0;
  std::vector<HopAddress> hops;         ///< remaining relay depots
  HopAddress destination;               ///< ultimate sink

  bool has_digest() const { return (flags & kFlagDigestTrailer) != 0; }
  bool is_resume() const { return (flags & kFlagResume) != 0; }

  /// Next endpoint to dial: the first remaining hop, or the destination.
  HopAddress next_hop() const { return hops.empty() ? destination : hops[0]; }

  /// The header this node forwards onward (first hop popped).
  SessionHeader popped() const;

  /// Encoded size of this header in bytes (version dependent).
  std::size_t encoded_size() const {
    return (trace_id != 0 ? kFixedHeaderBytesV2 : kFixedHeaderBytes) +
           kBytesPerHop * hops.size();
  }
};

/// Fixed prefix length needed before the total header length is known.
inline constexpr std::size_t kHeaderPrefixBytes = 8;

/// Size in bytes of the MD5 digest trailer.
inline constexpr std::size_t kDigestTrailerBytes = 16;

/// Serialize `h` (appends to `out`). Throws std::length_error if the route
/// exceeds kMaxHops.
void encode_header(const SessionHeader& h, std::vector<std::uint8_t>& out);

/// Total header length implied by a prefix of >= kHeaderPrefixBytes bytes;
/// nullopt if the prefix is malformed (bad magic/version/hop count).
std::optional<std::size_t> header_length(std::span<const std::uint8_t> prefix);

/// Parse a complete header. nullopt on malformed input.
std::optional<SessionHeader> decode_header(std::span<const std::uint8_t> buf);

}  // namespace lsl::core
