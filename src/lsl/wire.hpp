// The LSL wire header and its codec.
//
// A session's initiator specifies a "loose source route" — the list of
// depots the flow should cascade through (§III). The header travels as the
// first bytes of every sublink's byte stream: each depot parses it, pops the
// next hop, dials onward, and forwards the header with the remaining route
// before relaying payload. The same codec is used by the simulated depot
// (src/lsl/depot.*) and the real-socket lsd daemon (src/posix), so the two
// implementations are wire compatible by construction.
//
// Layout (big-endian):
//   0   4  magic "LSL1"
//   4   1  version (1, or 2 when a trace id is carried)
//   5   1  flags (SessionFlags bits)
//   6   2  remaining hop count (excluding final destination)
//   8  16  session id
//  24   8  payload length in bytes
//  32   8  resume offset (first payload byte carried; 0 for new sessions)
// [40   8  trace id — versions 2 and 3; joins per-depot span records]
// [48  28  stripe block — version 3 only; see StripeInfo]
//   ..  6*n remaining hops: address(4) + port(2)
//   ..  6  final destination: address(4) + port(2)
//
// Version gating keeps tracing opt-in on the wire: a header is encoded as
// version 2 if and only if trace_id != 0, so untraced sessions are
// byte-identical to what a version-1-only peer expects, and a traced
// session fails fast (header rejected) at such a peer instead of
// silently losing its trace id mid-chain.
//
// Version 3 extends the same bargain to striping: a header is encoded as
// version 3 if and only if it carries a stripe block (the session is split
// across >= 2 disjoint depot chains; see docs/STRIPING.md). Version 3
// always carries the trace-id field — zero when untraced — so the fixed
// length stays unambiguous, and unstriped sessions remain byte-identical
// to version 1/2 peers. A striped lane arriving at a stripe-unaware peer
// is rejected at header parse instead of being reassembled wrongly.
//
// "address" is a node id in the simulator and an IPv4 address in the posix
// implementation — both 32 bits, so headers are layout-identical.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "lsl/session_id.hpp"

namespace lsl::core {

/// One hop of a loose source route: 32-bit address + 16-bit port.
struct HopAddress {
  std::uint32_t addr = 0;
  std::uint16_t port = 0;

  friend bool operator==(const HopAddress&, const HopAddress&) = default;
};

/// Maximum number of relay hops a header may carry.
inline constexpr std::size_t kMaxHops = 16;

/// Bytes of the fixed (route-independent) portion of a version-1 header:
/// magic(4) + version(1) + flags(1) + hop count(2) + session id(16) +
/// payload length(8) + resume offset(8) + destination(6).
inline constexpr std::size_t kFixedHeaderBytes = 46;

/// Bytes of the wire-carried trace id (version 2 headers only).
inline constexpr std::size_t kTraceIdBytes = 8;

/// Fixed portion of a version-2 (traced) header: version 1's fields plus
/// the trace id between resume offset and the route.
inline constexpr std::size_t kFixedHeaderBytesV2 =
    kFixedHeaderBytes + kTraceIdBytes;

/// Bytes of the stripe block (version 3 headers only): stripe id(2) +
/// stripe count(2) + chunk(4) + redundancy(1) + mode(1) + reserved(2) +
/// session bytes(8) + range lo(8).
inline constexpr std::size_t kStripeBytes = 28;

/// Maximum stripe fan-out a session may declare (mirrors kMaxHops: each
/// stripe rides its own depot chain, so wider makes no sense on this wire).
inline constexpr std::size_t kMaxStripes = 16;

/// Fixed portion of a version-3 (striped) header: version 2's fields —
/// the trace id is always present, zero when untraced — plus the stripe
/// block between trace id and the route.
inline constexpr std::size_t kFixedHeaderBytesV3 =
    kFixedHeaderBytesV2 + kStripeBytes;

/// Bytes each route entry adds: address(4) + port(2).
inline constexpr std::size_t kBytesPerHop = 6;

/// How a StripePlan assigns session bytes to stripes (wire `mode` field).
enum class StripeMode : std::uint8_t {
  /// Byte-interleaved: logical stripe s owns every chunk c with
  /// c % stripe_count == s. Fully derivable from the stripe block, so a
  /// lane can carry extra neighbouring stripes for redundancy.
  kRoundRobin = 0,
  /// Contiguous: this lane carries exactly [range_lo, range_lo +
  /// payload_length). Used for weighted (rate-proportional) plans;
  /// incompatible with redundancy (nothing to interleave).
  kContiguous = 1,
};

/// The version-3 stripe block: everything a sink (or a rejoining lane)
/// needs to map this connection's bytes back into the merged stream.
///
/// Round-robin semantics with redundancy r: lane j carries logical stripes
/// {j, j+1, ..., j+r} (mod stripe_count), each logical stripe s owning the
/// byte set { k*count*chunk + s*chunk + [0, chunk) } ∩ [0, session_bytes).
/// payload_length in the enclosing header is the lane's own byte count and
/// resume_offset is lane-relative (TCP in-order delivery makes per-lane
/// progress a prefix, so one offset suffices — same trick as v1 resume).
struct StripeInfo {
  std::uint16_t stripe_id = 0;     ///< this lane's index, < stripe_count
  std::uint16_t stripe_count = 0;  ///< total lanes, in [2, kMaxStripes]
  std::uint32_t chunk = 0;         ///< interleave unit; 0 in contiguous mode
  std::uint8_t redundancy = 0;     ///< extra stripes carried; < stripe_count
  StripeMode mode = StripeMode::kRoundRobin;
  std::uint64_t session_bytes = 0;  ///< merged-stream total length
  std::uint64_t range_lo = 0;       ///< contiguous lane start; 0 otherwise

  friend bool operator==(const StripeInfo&, const StripeInfo&) = default;
};

/// True when `s` is an internally consistent stripe block (the conditions
/// decode_header enforces; encode_header throws on their violation).
bool stripe_info_valid(const StripeInfo& s);

/// Header flags.
enum SessionFlags : std::uint8_t {
  kFlagDigestTrailer = 1u << 0,  ///< MD5 trailer (16 bytes) after payload
  /// payload_length is advisory only; the stream runs until FIN. Mutually
  /// exclusive with kFlagDigestTrailer (the trailer needs a known length).
  kFlagUnboundedStream = 1u << 1,
  /// This connection resumes an existing session: resume_offset is the
  /// first payload byte the sender will (re)transmit. A depot holding the
  /// session re-binds its relay to this connection and discards the
  /// duplicated prefix — the paper's §III mobility scenario ("transport
  /// connections may come and go without disrupting the integrity of the
  /// session-layer handle"; the ultimate server never notices).
  kFlagResume = 1u << 2,
  /// This connection continues a session that migrated off its old depot
  /// chain mid-transfer (health plane, docs/HEALTH.md): resume_offset is
  /// the sink-acknowledged floor and payload_length the *remaining* byte
  /// count, like a striped replacement lane. Depots on the new chain relay
  /// it as a fresh session (no prior state to re-bind, unlike
  /// kFlagResume); the SINK recognises the session id and splices the
  /// bytes onto what it already holds.
  kFlagMigrate = 1u << 3,
};

/// Session completion status byte sent by the sink back to the source just
/// before it closes: the end-to-end acknowledgment that the stream arrived
/// intact (or not). A close without a status byte means the session died in
/// transit (e.g. a depot failed to reach the next hop).
inline constexpr std::uint8_t kStatusOk = 0x06;    // ASCII ACK
inline constexpr std::uint8_t kStatusFail = 0x15;  // ASCII NAK

/// The parsed LSL session header.
struct SessionHeader {
  SessionId session;
  std::uint8_t flags = 0;
  /// Exact payload byte count (headers/trailers excluded); advisory only
  /// when kFlagUnboundedStream is set.
  std::uint64_t payload_length = 0;
  /// First payload byte this connection carries (kFlagResume sessions).
  std::uint64_t resume_offset = 0;
  /// End-to-end tracing join key, minted at the source and relayed
  /// unchanged hop to hop. 0 (the default) means untraced: the header is
  /// then encoded as version 1, byte-identical to pre-tracing builds.
  std::uint64_t trace_id = 0;
  /// Stripe block: present exactly when this connection is one lane of a
  /// striped session. Engaged => encoded as version 3 (see file comment).
  std::optional<StripeInfo> stripe;
  std::vector<HopAddress> hops;         ///< remaining relay depots
  HopAddress destination;               ///< ultimate sink

  bool has_digest() const { return (flags & kFlagDigestTrailer) != 0; }
  bool is_resume() const { return (flags & kFlagResume) != 0; }
  bool is_migrate() const { return (flags & kFlagMigrate) != 0; }
  bool is_striped() const { return stripe.has_value(); }

  /// Next endpoint to dial: the first remaining hop, or the destination.
  HopAddress next_hop() const { return hops.empty() ? destination : hops[0]; }

  /// The header this node forwards onward (first hop popped).
  SessionHeader popped() const;

  /// Encoded size of this header in bytes (version dependent).
  std::size_t encoded_size() const {
    const std::size_t fixed =
        stripe ? kFixedHeaderBytesV3
               : (trace_id != 0 ? kFixedHeaderBytesV2 : kFixedHeaderBytes);
    return fixed + kBytesPerHop * hops.size();
  }
};

/// Fixed prefix length needed before the total header length is known.
inline constexpr std::size_t kHeaderPrefixBytes = 8;

/// Size in bytes of the MD5 digest trailer.
inline constexpr std::size_t kDigestTrailerBytes = 16;

/// Serialize `h` (appends to `out`). Throws std::length_error if the route
/// exceeds kMaxHops.
void encode_header(const SessionHeader& h, std::vector<std::uint8_t>& out);

/// Total header length implied by a prefix of >= kHeaderPrefixBytes bytes;
/// nullopt if the prefix is malformed (bad magic/version/hop count).
std::optional<std::size_t> header_length(std::span<const std::uint8_t> prefix);

/// Parse a complete header. nullopt on malformed input.
std::optional<SessionHeader> decode_header(std::span<const std::uint8_t> buf);

}  // namespace lsl::core
