#include "lsl/session_id.hpp"

namespace lsl::core {
namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

SessionId SessionId::generate(util::Rng& rng) {
  std::array<std::uint8_t, 16> b{};
  for (int w = 0; w < 2; ++w) {
    const std::uint64_t v = rng();
    for (int i = 0; i < 8; ++i) {
      b[w * 8 + i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  }
  return SessionId(b);
}

std::optional<SessionId> SessionId::from_hex(std::string_view hex) {
  if (hex.size() != 32) return std::nullopt;
  std::array<std::uint8_t, 16> b{};
  for (int i = 0; i < 16; ++i) {
    const int hi = hex_digit(hex[2 * i]);
    const int lo = hex_digit(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    b[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return SessionId(b);
}

std::string SessionId::hex() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (std::uint8_t b : bytes_) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 15]);
  }
  return out;
}

bool SessionId::valid() const {
  for (std::uint8_t b : bytes_) {
    if (b != 0) return true;
  }
  return false;
}

std::uint64_t SessionId::seed() const {
  // FNV-1a over the 16 bytes.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint8_t b : bytes_) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace lsl::core
