// The simulated LSL depot — the paper's `lsd` forwarding daemon.
//
// A depot accepts session connections, reads the LSL header, dials the next
// hop of the loose source route (pipelining: payload is buffered while the
// downstream handshake completes), forwards the popped header, and then
// relays bytes through a bounded ring buffer. Three costs of the real
// user-level daemon are modeled explicitly because the paper calls them out
// as the price LSL pays (§I, §IV footnote 1):
//
//  * bounded buffering ("small, short-lived intermediate buffers") — when
//    the relay buffer fills, the depot stops reading and TCP flow control
//    closes the upstream window (hop-by-hop backpressure);
//  * copy bandwidth — moving bytes between the two sockets through a
//    user-level process is rate-limited (a serial copy resource);
//  * scheduling wakeup latency — each relay pull pays a fixed delay before
//    its bytes are eligible to be written downstream.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "buf/budget.hpp"
#include "live/live_metrics.hpp"
#include "live/liveness.hpp"
#include "lsl/directory.hpp"
#include "lsl/wire.hpp"
#include "metrics/instruments.hpp"
#include "span/span.hpp"
#include "tcp/stack.hpp"
#include "util/units.hpp"

namespace lsl::core {

/// Depot tuning knobs.
struct DepotConfig {
  sim::PortNum port = 4000;                        ///< listening port
  std::uint64_t buffer_bytes = 4 * util::kMiB;     ///< relay ring capacity
  util::DataRate copy_rate = util::DataRate::gbps(2);  ///< memcpy throughput
  util::SimDuration wakeup_latency = util::micros(200);  ///< per-pull delay
  /// Fixed per-session cost between parsing the header and dialing onward:
  /// the unprivileged daemon's scheduling, route lookup and connect()
  /// processing on a shared host. This is what makes very small transfers
  /// slower over LSL than direct TCP (paper Figures 5, 7, 29).
  util::SimDuration session_setup_latency = 0;
  /// How long a session whose upstream connection died is kept parked,
  /// downstream intact, awaiting a kFlagResume reconnect (the paper's §III
  /// mobility scenario). 0 disables resumption: upstream failure aborts.
  util::SimDuration resume_grace = 0;
  /// Admission control (paper §VII): maximum concurrently live sessions;
  /// additional connections are refused at accept. 0 = unlimited.
  std::size_t max_sessions = 0;
  /// Daemon-wide byte budget over buffered relay bytes (ready + in-copy),
  /// the same watermark admission model the real daemon's chunk pool
  /// enforces (docs/MEMORY.md): reads stop at the budget, and new sessions
  /// are refused while usage sits between the high and low watermarks.
  /// 0 (the default) disables it — and keeps same-seed metric exports
  /// byte-identical to pre-budget builds.
  std::uint64_t pool_budget_bytes = 0;
  double pool_low_watermark = 0.50;
  double pool_high_watermark = 0.85;
  /// Liveness policy (src/live): per-relay lifecycle deadlines, the
  /// min-progress watchdog, and the graceful-drain bound — the exact same
  /// LivenessConfig the real daemon takes, run on simulated time. All
  /// durations default to 0 = disabled, which keeps same-seed metric
  /// exports byte-identical to pre-liveness builds (no wheel events are
  /// ever scheduled).
  live::LivenessConfig liveness = {};
};

/// Aggregate depot counters.
struct DepotStats {
  std::uint64_t sessions_accepted = 0;
  std::uint64_t sessions_completed = 0;
  std::uint64_t sessions_failed = 0;
  std::uint64_t sessions_refused = 0;  ///< admission-control rejections
  /// Rejections specifically because the memory budget was under pressure
  /// (disjoint from sessions_refused, so capacity sweeps can tell the
  /// operator's session cap from memory backpressure; the source-side
  /// fault::RetryPolicy backs off on both the same way).
  std::uint64_t sessions_refused_memory = 0;
  std::uint64_t sessions_resumed = 0;  ///< successful kFlagResume rebinds
  /// New connections turned away (RST) while the depot was draining.
  std::uint64_t sessions_refused_drain = 0;
  /// Liveness deadline expiries by class (each also fails the relay, so
  /// these partition a subset of sessions_failed).
  std::uint64_t timeouts_header = 0;
  std::uint64_t timeouts_dial = 0;
  std::uint64_t timeouts_idle = 0;
  std::uint64_t timeouts_stall = 0;
  std::uint64_t bytes_relayed = 0;
  std::uint64_t bytes_discarded = 0;   ///< duplicate prefix on resume
  std::uint64_t max_buffered = 0;  ///< relay-buffer high-water mark
  /// Times a relay's ring filled and the depot stopped reading upstream
  /// (each one is a hop-by-hop backpressure episode).
  std::uint64_t backpressure_stalls = 0;
  /// Total simulated time spent in those stalls, summed over relays.
  util::SimDuration backpressure_stall_time = 0;
};

/// The depot application on one simulated host.
class DepotApp {
 public:
  /// Binds the listener immediately. `dir` may be null when the stack's
  /// sockets carry real data (headers are then parsed from the stream).
  DepotApp(tcp::TcpStack& stack, DepotConfig config, SessionDirectory* dir);

  DepotApp(const DepotApp&) = delete;
  DepotApp& operator=(const DepotApp&) = delete;

  const DepotStats& stats() const { return stats_; }
  const DepotConfig& config() const { return config_; }
  /// Memory-budget accounting (in_use/peak/pressure); always tracked, only
  /// enforced when config().pool_budget_bytes > 0.
  const buf::MemoryBudget& memory() const { return budget_; }

  /// Observation hook: fires with the downstream socket as each relayed
  /// session dials onward — the experiment harness attaches sublink-2
  /// trace recorders here.
  std::function<void(tcp::TcpSocket*)> on_downstream_open;

  /// Observation hook: fires with the cumulative relayed byte count after
  /// downstream progress. Dispatched through a zero-delay simulator event,
  /// never from inside the relay pump, so a hook may inject faults (crash,
  /// reset) without reentering depot state — the byte-offset trigger of
  /// fault::FaultInjector.
  std::function<void(std::uint64_t)> on_progress;

  // --- Failure injection (src/fault) -----------------------------------
  // These model the daemon process dying and the operator's knobs around
  // it; they are ordinary public API so tests can drive them directly.

  /// The daemon dies: every live session (parked ones included) fails and
  /// the listener closes. Idempotent.
  void crash();
  /// A crashed daemon comes back: re-binds the listener with empty state
  /// (a real restarted process remembers nothing). No-op unless crashed.
  void restart();
  bool crashed() const { return crashed_; }
  /// Refuse (abort) the next `n` accepted connections — a SYN/accept drop.
  void set_accept_drops(std::uint32_t n) { accept_drops_ += n; }
  /// Stall the relay: stop pulling upstream and pushing downstream until
  /// un-stalled (the "slow depot" fault). Parked-session salvage still
  /// runs — acked bytes are never dropped.
  void set_stalled(bool stalled);
  bool stalled() const { return stalled_; }
  /// Reset (RST) the upstream connection of every streaming session, as if
  /// the sender's NAT binding died mid-transfer. With resume_grace > 0 the
  /// sessions park awaiting resume; otherwise they fail.
  void inject_upstream_reset();

  /// Attach a metrics bundle (must outlive the depot's traffic); null
  /// detaches. Gauges report per-relay occupancy sampled at transition
  /// points, so gauge max() is the same high-water mark as
  /// DepotStats::max_buffered.
  void set_metrics(metrics::DepotMetrics* m) { metrics_ = m; }

  /// Attach the `live.*` instrument bundle (timeouts by class, drains,
  /// slowest-relay gauge); null detaches. Off by default so metric exports
  /// only change when a run opts in.
  void set_live_metrics(live::LiveMetrics* m) { live_metrics_ = m; }

  /// Attach a span tracer (must outlive the depot's traffic); null
  /// detaches. Off by default — with no tracer, no span code path touches
  /// any state, so same-seed metric exports stay byte-identical. Spans are
  /// only emitted for sessions whose header carries a trace id.
  void set_tracer(span::Tracer* t) { tracer_ = t; }

  // --- Graceful drain (mirrors posix::Lsd::begin_drain) -----------------

  /// Stop accepting new sessions (refused with RST) and let in-flight ones
  /// finish or park. With config().liveness.drain_deadline > 0 the wait is
  /// bounded: stragglers are aborted at the deadline. Idempotent.
  void begin_drain();
  bool draining() const { return draining_; }
  /// True once every in-flight session has finished, parked, or been
  /// aborted by the drain deadline.
  bool drain_done() const { return drain_done_; }
  /// Meaningful once draining() (final once drain_done()).
  const live::DrainReport& drain_report() const { return drain_report_; }
  /// Fires exactly once, when the drain resolves.
  std::function<void(const live::DrainReport&)> on_drain_done;

 private:
  /// One relayed session (upstream + downstream sockets and the buffer).
  struct Relay {
    tcp::TcpSocket* up = nullptr;
    tcp::TcpSocket* down = nullptr;
    std::optional<SessionHeader> header;

    // Header ingest.
    std::vector<std::uint8_t> header_buf;   // real mode
    std::uint64_t header_virtual_left = 0;  // virtual mode
    bool header_done = false;
    bool downstream_dialed = false;
    bool downstream_up = false;

    // Forwarded header staged for downstream (real mode).
    std::vector<std::uint8_t> fwd_header;
    std::size_t fwd_off = 0;
    std::uint64_t fwd_virtual_left = 0;

    // Relay ring: bytes pulled from upstream, in copy, then ready.
    std::deque<std::vector<std::uint8_t>> ready_chunks;  // real mode
    std::uint64_t ready_bytes = 0;
    std::uint64_t in_copy_bytes = 0;
    std::size_t ready_consumed = 0;  ///< bytes consumed of front chunk

    bool up_eof = false;
    bool done = false;

    // Resumption state.
    std::uint64_t payload_pulled = 0;   ///< payload bytes taken upstream
    std::uint64_t discard_left = 0;     ///< duplicate prefix still to drop
    bool parked = false;                ///< upstream gone, awaiting resume
    sim::EventId park_expiry = sim::kInvalidEvent;

    // Observability.
    util::SimTime accept_time = 0;   ///< when the upstream was accepted
    util::SimTime stall_since = -1;  ///< ring-full stall start (-1 = none)

    // Span tracing (inert unless the header carried a trace id AND a
    // tracer is attached — trace_id stays 0 otherwise).
    std::uint64_t trace_id = 0;
    util::SimTime dial_start = 0;    ///< header done; span.dial opens here
    std::uint64_t relayed = 0;       ///< payload bytes this relay pushed
    std::uint64_t window_base = 0;   ///< `relayed` at stream-window open
    util::SimTime window_open = -1;  ///< -1 = no open stream window
    /// Stripe lane of a striped (wire v3) session, -1 otherwise: selects
    /// the lane-indexed stream-window span name and feeds the daemon's
    /// striped-relay census (admin `health` "stripes").
    int stripe_lane = -1;

    /// Per-relay liveness deadlines (inert while DepotConfig::liveness is
    /// all zeros).
    live::RelayLiveness live;
  };

  void on_accept(tcp::TcpSocket* up);
  void pull_upstream(Relay& r);
  void pull_payload(Relay& r, bool ignore_space);
  void dial_downstream(Relay& r);
  void on_upstream_error(Relay& r);
  void park_relay(Relay& r);
  /// Re-bind a parked session to the fresh relay's upstream connection.
  /// Returns false when the session is unknown or the offsets are
  /// inconsistent (the fresh relay is then failed).
  bool try_resume(Relay& fresh);
  void copy_complete(Relay& r, std::uint64_t bytes,
                     std::vector<std::uint8_t> chunk);
  void pump_downstream(Relay& r);
  void maybe_complete(Relay& r);
  void fail_relay(Relay& r);
  /// Backpressure accounting: a stall begins when the ring refuses an
  /// upstream read and ends when space (or the relay's end) arrives.
  void begin_stall(Relay& r);
  void end_stall(Relay& r);
  /// Refresh occupancy gauges/high-water after buffered(r) changed.
  void note_occupancy(const Relay& r);
  /// Coalesce on_progress dispatch into one zero-delay event.
  void schedule_progress();
  /// Span bookkeeping after `took` payload bytes went downstream: opens a
  /// stream window at the first byte, closes one per kStreamWindowBytes.
  void note_stream(Relay& r, std::uint64_t took);
  /// Close a dangling stream window (session end/park/fail).
  void flush_stream_window(Relay& r);
  std::uint64_t buffered(const Relay& r) const {
    return r.ready_bytes + r.in_copy_bytes;
  }

  // --- Liveness plumbing (src/live) -------------------------------------
  /// A liveness deadline expired for `r`: count it by class and fail the
  /// relay.
  void on_deadline(Relay& r, live::DeadlineKind kind);
  /// Tell the watchdog whether `r` has bytes staged for downstream (stall
  /// watch) or is quiescent (idle watch).
  void sync_liveness(Relay& r);
  /// Keep exactly one simulator event armed at the wheel's next deadline —
  /// the sim-time analogue of the daemon's timerfd.
  void arm_live_timer();
  void maybe_finish_drain();
  void on_drain_deadline();

  /// Number of relays that are neither done nor husks (admission control).
  std::size_t live_sessions() const;

  tcp::TcpStack& stack_;
  DepotConfig config_;
  SessionDirectory* dir_;
  DepotStats stats_;
  buf::MemoryBudget budget_;
  metrics::DepotMetrics* metrics_ = nullptr;
  bool crashed_ = false;
  bool stalled_ = false;
  std::uint32_t accept_drops_ = 0;
  bool progress_scheduled_ = false;
  /// The daemon's single copy resource, shared by every relay: one
  /// user-level process has one CPU, so concurrent sessions contend for
  /// copy bandwidth (paper §VII's scalability concern).
  util::SimTime copy_busy_until_ = 0;
  /// Declared before relays_ so relay RelayLiveness destructors (which
  /// cancel wheel tokens) run while the wheel is still alive.
  live::DeadlineWheel wheel_;
  live::LiveMetrics* live_metrics_ = nullptr;
  span::Tracer* tracer_ = nullptr;
  util::SimTime drain_start_ = 0;  ///< span.drain opens at begin_drain
  sim::EventId live_event_ = sim::kInvalidEvent;
  util::SimTime live_event_due_ = -1;
  bool draining_ = false;
  bool drain_done_ = false;
  live::DrainReport drain_report_;
  live::DeadlineWheel::Token drain_token_ = live::DeadlineWheel::kInvalidToken;
  std::vector<std::unique_ptr<Relay>> relays_;
  /// Live sessions by id (only maintained when resume_grace > 0).
  std::map<SessionId, Relay*> sessions_;
};

}  // namespace lsl::core
