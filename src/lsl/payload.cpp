#include "lsl/payload.hpp"

#include <algorithm>
#include <vector>

namespace lsl::core {

void PayloadGenerator::generate(std::span<std::uint8_t> out) {
  std::size_t i = 0;
  while (i < out.size()) {
    const std::uint64_t word_index = (position_ + i) / 8;
    const std::uint32_t word_off = static_cast<std::uint32_t>((position_ + i) % 8);
    // splitmix64-style mix of (seed, word index): random access per word.
    std::uint64_t z = mix_ + 0x9e3779b97f4a7c15ull * (word_index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    const std::size_t take =
        std::min<std::size_t>(8 - word_off, out.size() - i);
    for (std::size_t b = 0; b < take; ++b) {
      out[i + b] = static_cast<std::uint8_t>(z >> (8 * (word_off + b)));
    }
    i += take;
  }
  position_ += out.size();
}

bool PayloadVerifier::feed(std::span<const std::uint8_t> data) {
  hasher_.update(data);
  if (!check_content_ || !ok_) {
    verified_ += data.size();
    return ok_;
  }
  std::vector<std::uint8_t> expected(data.size());
  expect_.generate(expected);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] != expected[i]) {
      ok_ = false;
      break;
    }
  }
  verified_ += data.size();
  return ok_;
}

md5::Digest PayloadVerifier::hash_copy_digest() const {
  md5::Md5 copy = hasher_;
  return copy.finalize();
}

md5::Digest stream_digest(std::uint64_t seed, std::uint64_t length) {
  PayloadGenerator gen(seed);
  md5::Md5 hash;
  std::vector<std::uint8_t> buf(64 * 1024);
  std::uint64_t remaining = length;
  while (remaining > 0) {
    const std::size_t take =
        static_cast<std::size_t>(std::min<std::uint64_t>(buf.size(), remaining));
    gen.generate(std::span<std::uint8_t>(buf.data(), take));
    hash.update(std::span<const std::uint8_t>(buf.data(), take));
    remaining -= take;
  }
  return hash.finalize();
}

}  // namespace lsl::core
