// Endpoint applications for simulated transfers.
//
//  * SourceApp — the sending end system: opens the first-hop connection
//    (directly to the sink for plain TCP, or to the first depot for LSL),
//    optionally emits the LSL header, streams the payload, appends the MD5
//    digest trailer in real-payload mode, and closes.
//  * SinkApp / SinkServer — the receiving end system: accepts connections,
//    optionally parses the LSL header, consumes and (in real mode) verifies
//    the payload and digest, and timestamps completion. Transfer throughput
//    in every reproduced figure is (payload bytes) / (sink completion time -
//    source start time), matching the paper's host-to-host wall-clock
//    measurement that includes connection setup and depot overheads.
//  * ParallelSource / ParallelSinkServer — the PSockets-style striped-TCP
//    baseline discussed in the paper's related work (§II), used by the
//    ablation benches.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "lsl/directory.hpp"
#include "lsl/payload.hpp"
#include "lsl/wire.hpp"
#include "tcp/stack.hpp"
#include "util/units.hpp"

namespace lsl::core {

/// Configuration of one sending application.
struct SourceConfig {
  std::uint64_t payload_bytes = 0;       ///< bytes to transfer
  bool use_header = false;               ///< LSL session (vs. plain TCP)
  SessionHeader header;                  ///< when use_header
  std::uint64_t payload_seed = 1;        ///< real-mode content stream seed
  std::size_t write_chunk = 64 * 1024;   ///< application write granularity
  /// Reconnect-and-resume on connection failure (the §III mobility story).
  /// Requires use_header and no digest trailer (MD5 cannot rewind across
  /// an unknown retransmission boundary).
  bool resumable = false;
  /// Delay before re-dialing after a failure (models re-association).
  util::SimDuration resume_reconnect_delay = util::millis(50);
  /// Policy hook consulted instead of the fixed delay when set (e.g. a
  /// fault::RetryPolicy's exponential backoff): returns the delay before
  /// the next reconnect, or nullopt to give up — the source then finishes
  /// unsuccessfully (gave_up() is true). Keeps core free of a dependency
  /// on the policy layer.
  std::function<std::optional<util::SimDuration>()> reconnect_backoff;
  /// Fault injection (real mode): flip one payload byte at this stream
  /// offset *after* it entered the digest, so the trailer stays honest and
  /// the sink's end-to-end MD5 check exposes the corruption.
  std::optional<std::uint64_t> corrupt_at_byte;
  /// Fires when corrupt_at_byte is applied (fault accounting).
  std::function<void(std::uint64_t)> on_corrupt;
  /// Striping hook (real mode): when set, payload bytes come from this
  /// filler instead of the seeded generator. `offset` is the absolute
  /// position within this connection's payload_bytes; the stripe layer maps
  /// it onto the merged stream through a LaneCursor (src/stripe/plan.hpp).
  /// Offsets may jump backwards across a resume — fillers must be
  /// random-access, like PayloadGenerator::seek.
  std::function<void(std::uint64_t offset, std::span<std::uint8_t> out)>
      payload_fill;
  /// With kFlagDigestTrailer: ship this precomputed digest instead of
  /// hashing this connection's own bytes. Striped lanes carry the *merged
  /// stream's* digest — identical on every lane — which only the
  /// reassembling sink can check (docs/STRIPING.md).
  std::optional<md5::Digest> trailer_digest;
};

/// The sending end system.
class SourceApp {
 public:
  /// `first_hop` is the transport endpoint this app dials: the sink itself
  /// for direct TCP, or the first depot of the route for LSL. `dir` may be
  /// null for real-payload transfers.
  SourceApp(tcp::TcpStack& stack, sim::Endpoint first_hop, SourceConfig config,
            SessionDirectory* dir);

  SourceApp(const SourceApp&) = delete;
  SourceApp& operator=(const SourceApp&) = delete;

  /// Initiate the connection; records start_time.
  void start();

  /// Fires when the source has written everything and closed its socket.
  std::function<void()> on_finished;

  bool started() const { return socket_ != nullptr; }
  bool finished() const { return finished_; }
  util::SimTime start_time() const { return start_time_; }
  util::SimTime established_time() const { return established_time_; }
  tcp::TcpSocket* socket() { return socket_; }

  /// Abort the current connection (simulated roaming / address change).
  /// With `resumable`, the source reconnects and resumes automatically.
  void simulate_disconnect();

  /// Number of successful reconnect-and-resume cycles so far.
  std::size_t resumes() const { return resumes_; }

  /// True when a reconnect_backoff policy exhausted its attempt budget and
  /// the source abandoned the transfer (finished() is also true then).
  bool gave_up() const { return gave_up_; }

 private:
  void pump();
  void open_connection(std::uint64_t resume_offset);
  void handle_connection_error();

  tcp::TcpStack& stack_;
  sim::Endpoint first_hop_;
  SourceConfig config_;
  SessionDirectory* dir_;
  tcp::TcpSocket* socket_ = nullptr;

  std::vector<std::uint8_t> pending_;   ///< staged header bytes (real mode)
  std::size_t pending_off_ = 0;
  std::uint64_t header_virtual_left_ = 0;
  std::uint64_t payload_left_ = 0;
  std::optional<PayloadGenerator> generator_;  // real mode
  std::optional<md5::Md5> hasher_;             // real mode with digest
  bool trailer_staged_ = false;
  bool finished_ = false;
  bool gave_up_ = false;
  std::size_t resumes_ = 0;
  std::size_t header_wire_bytes_ = 0;
  util::SimTime start_time_ = 0;
  util::SimTime established_time_ = 0;
};

/// Configuration of the receiving application.
struct SinkConfig {
  bool expect_header = false;   ///< parse an LSL header before the payload
  bool verify_payload = false;  ///< real mode: check content + MD5 trailer
  std::uint64_t payload_seed = 1;
  std::size_t read_chunk = 64 * 1024;
};

/// One accepted receiving connection.
class SinkApp {
 public:
  SinkApp(tcp::TcpSocket* socket, SinkConfig config, SessionDirectory* dir);

  SinkApp(const SinkApp&) = delete;
  SinkApp& operator=(const SinkApp&) = delete;

  /// Fires exactly once when the stream has fully arrived (EOF) and, in
  /// verifying mode, the digest has been checked.
  std::function<void(SinkApp&)> on_complete;

  bool complete() const { return complete_; }
  util::SimTime complete_time() const { return complete_time_; }
  /// Payload bytes received (headers and trailers excluded).
  std::uint64_t payload_received() const { return payload_received_; }
  /// Real mode: true when content matched and the MD5 trailer verified.
  bool verified() const { return content_ok_ && digest_ok_; }
  /// Parsed session header (when expect_header).
  const std::optional<SessionHeader>& header() const { return header_; }

 private:
  void on_readable();
  void consume_real();
  void consume_virtual();
  void finish();

  tcp::TcpSocket* socket_;
  SinkConfig config_;
  SessionDirectory* dir_;

  std::optional<SessionHeader> header_;
  std::vector<std::uint8_t> header_buf_;
  std::uint64_t header_virtual_left_ = 0;
  bool header_done_ = false;

  std::uint64_t payload_received_ = 0;
  std::optional<PayloadVerifier> verifier_;
  std::vector<std::uint8_t> trailer_;
  bool content_ok_ = true;
  bool digest_ok_ = true;
  bool complete_ = false;
  util::SimTime complete_time_ = 0;
};

/// Listens on a port and runs a SinkApp per accepted connection.
class SinkServer {
 public:
  SinkServer(tcp::TcpStack& stack, sim::PortNum port, SinkConfig config,
             SessionDirectory* dir);

  /// Forwarded to every SinkApp.
  std::function<void(SinkApp&)> on_complete;

  const std::vector<std::unique_ptr<SinkApp>>& sinks() const {
    return sinks_;
  }

 private:
  tcp::TcpStack& stack_;
  SinkConfig config_;
  SessionDirectory* dir_;
  std::vector<std::unique_ptr<SinkApp>> sinks_;
};

/// PSockets-style striped sender: `streams` parallel plain-TCP connections,
/// each carrying an equal share of the payload.
class ParallelSource {
 public:
  ParallelSource(tcp::TcpStack& stack, sim::Endpoint sink,
                 std::uint64_t payload_bytes, std::size_t streams);

  void start();
  util::SimTime start_time() const { return start_time_; }

 private:
  std::vector<std::unique_ptr<SourceApp>> sources_;
  util::SimTime start_time_ = 0;
};

/// Receives a striped transfer; completes when every stream has finished.
class ParallelSinkServer {
 public:
  ParallelSinkServer(tcp::TcpStack& stack, sim::PortNum port,
                     std::size_t streams);

  /// Fires once, when the last stream completes.
  std::function<void()> on_complete;

  bool complete() const { return completed_ == expected_; }
  util::SimTime complete_time() const { return complete_time_; }
  std::uint64_t payload_received() const;

 private:
  std::unique_ptr<SinkServer> server_;
  std::size_t expected_;
  std::size_t completed_ = 0;
  util::SimTime complete_time_ = 0;
};

}  // namespace lsl::core
