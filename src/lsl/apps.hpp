// Endpoint applications for simulated transfers.
//
//  * SourceApp — the sending end system: opens the first-hop connection
//    (directly to the sink for plain TCP, or to the first depot for LSL),
//    optionally emits the LSL header, streams the payload, appends the MD5
//    digest trailer in real-payload mode, and closes.
//  * SinkApp / SinkServer — the receiving end system: accepts connections,
//    optionally parses the LSL header, consumes and (in real mode) verifies
//    the payload and digest, and timestamps completion. Transfer throughput
//    in every reproduced figure is (payload bytes) / (sink completion time -
//    source start time), matching the paper's host-to-host wall-clock
//    measurement that includes connection setup and depot overheads.
//  * ParallelSource / ParallelSinkServer — the PSockets-style striped-TCP
//    baseline discussed in the paper's related work (§II), used by the
//    ablation benches.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "lsl/directory.hpp"
#include "lsl/payload.hpp"
#include "lsl/wire.hpp"
#include "tcp/stack.hpp"
#include "util/units.hpp"

namespace lsl::core {

/// Cross-connection session reassembly (sink side).
///
/// Mid-transfer migration (docs/HEALTH.md) splits one logical session
/// across connections arriving through *different* depot chains: the
/// original carries bytes [0, k) before being abandoned, the kFlagMigrate
/// replacement [floor, total) with floor <= k. No single connection sees
/// the whole stream, so per-connection verification cannot vouch for it.
/// The ledger stitches the pieces: per session id it tracks the contiguous
/// frontier from byte 0, silently discards re-sent prefix bytes, refuses
/// gaps (a migrate connection claiming bytes past the frontier means
/// acked data was lost — the session is failed, never papered over), and
/// feeds only frontier-advancing bytes to one PayloadVerifier, keeping the
/// whole-stream MD5 checkable end to end.
class SessionLedger {
 public:
  explicit SessionLedger(std::uint64_t payload_seed)
      : seed_(payload_seed) {}

  struct Session {
    std::uint64_t total = 0;     ///< logical session bytes
    std::uint64_t frontier = 0;  ///< contiguous bytes secured from 0
    bool gap_refused = false;    ///< a connection claimed bytes we lack
    bool completed = false;      ///< frontier reached total
    std::size_t connections = 0; ///< connections that carried the session
    util::SimTime first_accept = 0;
    util::SimTime complete_time = 0;
  };

  /// Note a connection joining `id` (the first one creates the session).
  /// `total` must agree across connections (resume_offset + payload_length
  /// for migrate headers, payload_length for the original).
  void open(const SessionId& id, std::uint64_t total, util::SimTime now);

  /// Feed payload bytes at absolute stream offset `offset`. Duplicated
  /// prefix bytes (offset + data below the frontier) are discarded; a gap
  /// (offset above the frontier) refuses the session.
  void feed(const SessionId& id, std::uint64_t offset,
            std::span<const std::uint8_t> data, util::SimTime now);

  /// Fires once per session, when its frontier reaches its total.
  std::function<void(const SessionId&, const Session&)> on_session_complete;

  const Session* find(const SessionId& id) const;
  std::uint64_t frontier(const SessionId& id) const;
  bool completed(const SessionId& id) const;
  /// Whole-stream content verdict (seeded-generator comparison).
  bool content_ok(const SessionId& id) const;
  /// MD5 over the stitched stream fed so far.
  md5::Digest digest(const SessionId& id);

 private:
  struct State {
    Session s;
    PayloadVerifier verifier;
    explicit State(std::uint64_t seed) : verifier(seed) {}
  };
  std::uint64_t seed_;
  std::map<SessionId, State> sessions_;
};

/// Configuration of one sending application.
struct SourceConfig {
  std::uint64_t payload_bytes = 0;       ///< bytes to transfer
  bool use_header = false;               ///< LSL session (vs. plain TCP)
  SessionHeader header;                  ///< when use_header
  std::uint64_t payload_seed = 1;        ///< real-mode content stream seed
  std::size_t write_chunk = 64 * 1024;   ///< application write granularity
  /// Reconnect-and-resume on connection failure (the §III mobility story).
  /// Requires use_header and no digest trailer (MD5 cannot rewind across
  /// an unknown retransmission boundary).
  bool resumable = false;
  /// Delay before re-dialing after a failure (models re-association).
  util::SimDuration resume_reconnect_delay = util::millis(50);
  /// Policy hook consulted instead of the fixed delay when set (e.g. a
  /// fault::RetryPolicy's exponential backoff): returns the delay before
  /// the next reconnect, or nullopt to give up — the source then finishes
  /// unsuccessfully (gave_up() is true). Keeps core free of a dependency
  /// on the policy layer.
  std::function<std::optional<util::SimDuration>()> reconnect_backoff;
  /// Fault injection (real mode): flip one payload byte at this stream
  /// offset *after* it entered the digest, so the trailer stays honest and
  /// the sink's end-to-end MD5 check exposes the corruption.
  std::optional<std::uint64_t> corrupt_at_byte;
  /// Fires when corrupt_at_byte is applied (fault accounting).
  std::function<void(std::uint64_t)> on_corrupt;
  /// Striping hook (real mode): when set, payload bytes come from this
  /// filler instead of the seeded generator. `offset` is the absolute
  /// position within this connection's payload_bytes; the stripe layer maps
  /// it onto the merged stream through a LaneCursor (src/stripe/plan.hpp).
  /// Offsets may jump backwards across a resume — fillers must be
  /// random-access, like PayloadGenerator::seek.
  std::function<void(std::uint64_t offset, std::span<std::uint8_t> out)>
      payload_fill;
  /// With kFlagDigestTrailer: ship this precomputed digest instead of
  /// hashing this connection's own bytes. Striped lanes carry the *merged
  /// stream's* digest — identical on every lane — which only the
  /// reassembling sink can check (docs/STRIPING.md).
  std::optional<md5::Digest> trailer_digest;
};

/// The sending end system.
class SourceApp {
 public:
  /// `first_hop` is the transport endpoint this app dials: the sink itself
  /// for direct TCP, or the first depot of the route for LSL. `dir` may be
  /// null for real-payload transfers.
  SourceApp(tcp::TcpStack& stack, sim::Endpoint first_hop, SourceConfig config,
            SessionDirectory* dir);

  SourceApp(const SourceApp&) = delete;
  SourceApp& operator=(const SourceApp&) = delete;

  /// Initiate the connection; records start_time.
  void start();

  /// Fires when the source has written everything and closed its socket.
  std::function<void()> on_finished;

  bool started() const { return socket_ != nullptr; }
  bool finished() const { return finished_; }
  util::SimTime start_time() const { return start_time_; }
  util::SimTime established_time() const { return established_time_; }
  tcp::TcpSocket* socket() { return socket_; }

  /// Abort the current connection (simulated roaming / address change).
  /// With `resumable`, the source reconnects and resumes automatically.
  void simulate_disconnect();

  /// Proactive mid-transfer re-selection (health plane, docs/HEALTH.md):
  /// abandon the current connection and continue the session through
  /// `new_first_hop` / `hops` (the full new route, first hop included),
  /// retransmitting from `floor` — the sink's acknowledged frontier. The
  /// replacement connection carries kFlagMigrate (resume_offset = floor,
  /// payload_length = remaining), which fresh depots relay as an ordinary
  /// session and the sink splices via its SessionLedger. Requires
  /// `resumable`; returns false (and does nothing) when the session has
  /// already finished or fully queued its payload.
  bool migrate(sim::Endpoint new_first_hop, std::vector<HopAddress> hops,
               std::uint64_t floor);

  /// Number of successful reconnect-and-resume cycles so far.
  std::size_t resumes() const { return resumes_; }

  /// Number of proactive migrations issued so far.
  std::size_t migrations() const { return migrations_; }

  /// True when a reconnect_backoff policy exhausted its attempt budget and
  /// the source abandoned the transfer (finished() is also true then).
  bool gave_up() const { return gave_up_; }

 private:
  void pump();
  void open_connection(std::uint64_t resume_offset);
  void handle_connection_error();

  tcp::TcpStack& stack_;
  sim::Endpoint first_hop_;
  SourceConfig config_;
  SessionDirectory* dir_;
  tcp::TcpSocket* socket_ = nullptr;

  std::vector<std::uint8_t> pending_;   ///< staged header bytes (real mode)
  std::size_t pending_off_ = 0;
  std::uint64_t header_virtual_left_ = 0;
  std::uint64_t payload_left_ = 0;
  std::optional<PayloadGenerator> generator_;  // real mode
  std::optional<md5::Md5> hasher_;             // real mode with digest
  bool trailer_staged_ = false;
  bool finished_ = false;
  bool gave_up_ = false;
  std::size_t resumes_ = 0;
  std::size_t migrations_ = 0;
  bool migrated_ = false;          ///< session left its original chain
  std::uint64_t conn_offset_ = 0;  ///< stream offset this connection began at
  /// Bumped on migrate so a pending reconnect event from the abandoned
  /// chain cannot open a stale connection.
  std::uint64_t epoch_ = 0;
  std::size_t header_wire_bytes_ = 0;
  util::SimTime start_time_ = 0;
  util::SimTime established_time_ = 0;
};

/// Configuration of the receiving application.
struct SinkConfig {
  bool expect_header = false;   ///< parse an LSL header before the payload
  bool verify_payload = false;  ///< real mode: check content + MD5 trailer
  std::uint64_t payload_seed = 1;
  std::size_t read_chunk = 64 * 1024;
  /// Cross-connection reassembly for migrated sessions (health plane).
  /// When set, headered payload additionally flows into the ledger, which
  /// then owns stream-level verification and completion; per-connection
  /// verification is skipped (a migrate connection is only a stream
  /// fragment). Null — the default — changes nothing.
  SessionLedger* ledger = nullptr;
};

/// One accepted receiving connection.
class SinkApp {
 public:
  SinkApp(tcp::TcpSocket* socket, SinkConfig config, SessionDirectory* dir);

  SinkApp(const SinkApp&) = delete;
  SinkApp& operator=(const SinkApp&) = delete;

  /// Fires exactly once when the stream has fully arrived (EOF) and, in
  /// verifying mode, the digest has been checked.
  std::function<void(SinkApp&)> on_complete;

  bool complete() const { return complete_; }
  util::SimTime complete_time() const { return complete_time_; }
  /// Payload bytes received (headers and trailers excluded).
  std::uint64_t payload_received() const { return payload_received_; }
  /// Real mode: true when content matched and the MD5 trailer verified.
  bool verified() const { return content_ok_ && digest_ok_; }
  /// Parsed session header (when expect_header).
  const std::optional<SessionHeader>& header() const { return header_; }

 private:
  void on_readable();
  void consume_real();
  void consume_virtual();
  void finish();

  tcp::TcpSocket* socket_;
  SinkConfig config_;
  SessionDirectory* dir_;

  std::optional<SessionHeader> header_;
  std::vector<std::uint8_t> header_buf_;
  std::uint64_t header_virtual_left_ = 0;
  bool header_done_ = false;

  std::uint64_t payload_received_ = 0;
  std::optional<PayloadVerifier> verifier_;
  std::vector<std::uint8_t> trailer_;
  bool content_ok_ = true;
  bool digest_ok_ = true;
  bool complete_ = false;
  util::SimTime complete_time_ = 0;
};

/// Listens on a port and runs a SinkApp per accepted connection.
class SinkServer {
 public:
  SinkServer(tcp::TcpStack& stack, sim::PortNum port, SinkConfig config,
             SessionDirectory* dir);

  /// Forwarded to every SinkApp.
  std::function<void(SinkApp&)> on_complete;

  const std::vector<std::unique_ptr<SinkApp>>& sinks() const {
    return sinks_;
  }

 private:
  tcp::TcpStack& stack_;
  SinkConfig config_;
  SessionDirectory* dir_;
  std::vector<std::unique_ptr<SinkApp>> sinks_;
};

/// PSockets-style striped sender: `streams` parallel plain-TCP connections,
/// each carrying an equal share of the payload.
class ParallelSource {
 public:
  ParallelSource(tcp::TcpStack& stack, sim::Endpoint sink,
                 std::uint64_t payload_bytes, std::size_t streams);

  void start();
  util::SimTime start_time() const { return start_time_; }

 private:
  std::vector<std::unique_ptr<SourceApp>> sources_;
  util::SimTime start_time_ = 0;
};

/// Receives a striped transfer; completes when every stream has finished.
class ParallelSinkServer {
 public:
  ParallelSinkServer(tcp::TcpStack& stack, sim::PortNum port,
                     std::size_t streams);

  /// Fires once, when the last stream completes.
  std::function<void()> on_complete;

  bool complete() const { return completed_ == expected_; }
  util::SimTime complete_time() const { return complete_time_; }
  std::uint64_t payload_received() const;

 private:
  std::unique_ptr<SinkServer> server_;
  std::size_t expected_;
  std::size_t completed_ = 0;
  util::SimTime complete_time_ = 0;
};

}  // namespace lsl::core
