#include "lsl/selector.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace lsl::core {

SublinkForecast& PathDatabase::edge(const std::string& from,
                                    const std::string& to) {
  return edges_[{from, to}];
}

void PathDatabase::observe_rtt_ms(const std::string& from,
                                  const std::string& to, double ms) {
  edge(from, to).rtt_ms.observe(ms);
}

void PathDatabase::observe_bandwidth_mbps(const std::string& from,
                                          const std::string& to, double mbps) {
  edge(from, to).bandwidth_mbps.observe(mbps);
}

void PathDatabase::observe_loss_rate(const std::string& from,
                                     const std::string& to, double p) {
  edge(from, to).loss_rate.observe(p);
}

bool PathDatabase::knows(const std::string& from, const std::string& to) const {
  const auto it = edges_.find({from, to});
  if (it == edges_.end()) return false;
  return it->second.rtt_ms.observations() > 0 &&
         it->second.bandwidth_mbps.observations() > 0;
}

std::string CandidateRoute::describe() const {
  std::string s;
  for (std::size_t i = 0; i < waypoints.size(); ++i) {
    if (i) s += " -> ";
    s += waypoints[i];
  }
  return s;
}

double RouteSelector::sublink_rate_mbps(const std::string& from,
                                        const std::string& to) const {
  if (!db_.knows(from, to)) return 0.0;
  SublinkForecast& f = db_.edge(from, to);
  const double path_mbps = f.bandwidth_mbps.predict();
  const double rtt_s = f.rtt_ms.predict() / 1e3;
  const double loss = f.loss_rate.observations() > 0
                          ? std::max(f.loss_rate.predict(), 0.0)
                          : 0.0;
  if (rtt_s <= 0.0) return path_mbps;
  if (loss <= 0.0) return path_mbps;
  // Mathis et al.: BW <= (MSS / RTT) * (1 / sqrt(p)), with the usual
  // sqrt(3/2) constant for periodic loss.
  const double mathis_bps =
      (mss_ * 8.0 / rtt_s) * std::sqrt(1.5) / std::sqrt(loss);
  return std::min(path_mbps, mathis_bps / 1e6);
}

double RouteSelector::predict_transfer_seconds(const CandidateRoute& route,
                                               std::uint64_t bytes) const {
  if (route.sublink_count() == 0) {
    return std::numeric_limits<double>::infinity();
  }

  double setup = 0.0;
  double bottleneck_mbps = std::numeric_limits<double>::infinity();
  double bottleneck_rtt_s = 0.0;

  for (std::size_t i = 0; i + 1 < route.waypoints.size(); ++i) {
    const std::string& a = route.waypoints[i];
    const std::string& b = route.waypoints[i + 1];
    if (!db_.knows(a, b)) return std::numeric_limits<double>::infinity();
    SublinkForecast& f = db_.edge(a, b);
    const double rtt_s = std::max(f.rtt_ms.predict(), 0.0) / 1e3;
    // First sublink pays 1.5 RTT (SYN exchange + header flight); each
    // cascade hop adds its own handshake, pipelined behind the header,
    // plus the depot's per-session processing.
    setup += (i == 0 ? 1.5 : 1.0) * rtt_s;
    if (i > 0) setup += depot_setup_s_;
    const double rate = sublink_rate_mbps(a, b);
    if (rate < bottleneck_mbps) {
      bottleneck_mbps = rate;
      bottleneck_rtt_s = rtt_s;
    }
  }
  if (bottleneck_mbps <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }

  // Slow-start ramp on the bottleneck sublink: doubling from 2 MSS up to
  // the window the transfer actually needs — the bandwidth-delay product,
  // or the whole transfer if it is smaller than that — costs about one RTT
  // per doubling.
  const double bdp_bytes = bottleneck_mbps * 1e6 / 8.0 * bottleneck_rtt_s;
  const double target_window =
      std::min(bdp_bytes, static_cast<double>(bytes));
  double ramp = 0.0;
  if (target_window > 2.0 * mss_ && bottleneck_rtt_s > 0.0) {
    ramp = bottleneck_rtt_s * std::log2(target_window / (2.0 * mss_));
  }

  const double steady =
      static_cast<double>(bytes) * 8.0 / (bottleneck_mbps * 1e6);
  double predicted = setup + ramp + steady;

  // Health-plane admission: a suspect or dead interior depot makes the
  // route ineligible; degraded depots inflate its predicted time so load
  // spreads away from them when a healthy alternative exists.
  if (health_ != nullptr && route.waypoints.size() > 2) {
    for (std::size_t i = 1; i + 1 < route.waypoints.size(); ++i) {
      const health::DepotState st = health_->state(route.waypoints[i]);
      if (st >= health::DepotState::kSuspect) {
        return std::numeric_limits<double>::infinity();
      }
      if (st == health::DepotState::kDegraded) {
        predicted *= degraded_penalty_;
      }
    }
  }
  return predicted;
}

const CandidateRoute& RouteSelector::choose(
    const std::vector<CandidateRoute>& candidates, std::uint64_t bytes) const {
  assert(!candidates.empty());
  std::size_t best = 0;
  double best_t = predict_transfer_seconds(candidates[0], bytes);
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const double t = predict_transfer_seconds(candidates[i], bytes);
    if (t < best_t ||
        (t == best_t && candidates[i].sublink_count() <
                            candidates[best].sublink_count())) {
      best = i;
      best_t = t;
    }
  }
  return candidates[best];
}

}  // namespace lsl::core
