// 128-bit session identifiers.
//
// "The session is described by a 128-bit session identifier. Conceptually,
// the ultimate sending and receiving ports need not exist at the same time"
// (§III). The identifier names the end-to-end conversation independently of
// any transport connection, which is what lets sublinks come and go without
// disturbing the session handle.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/rng.hpp"

namespace lsl::core {

/// A 128-bit LSL session identifier.
class SessionId {
 public:
  /// The all-zero id (invalid sentinel).
  SessionId() = default;

  /// Construct from raw bytes.
  explicit SessionId(const std::array<std::uint8_t, 16>& bytes)
      : bytes_(bytes) {}

  /// Generate a fresh random id from `rng`.
  static SessionId generate(util::Rng& rng);

  /// Parse a 32-hex-digit string; nullopt on malformed input.
  static std::optional<SessionId> from_hex(std::string_view hex);

  const std::array<std::uint8_t, 16>& bytes() const { return bytes_; }

  /// Lowercase 32-digit hex rendering.
  std::string hex() const;

  /// True unless this is the all-zero sentinel.
  bool valid() const;

  /// A 64-bit hash of the id, used to seed deterministic payload streams.
  std::uint64_t seed() const;

  friend bool operator==(const SessionId&, const SessionId&) = default;
  friend auto operator<=>(const SessionId&, const SessionId&) = default;

 private:
  std::array<std::uint8_t, 16> bytes_{};
};

}  // namespace lsl::core
