// Out-of-band session-header directory for virtual-payload simulations.
//
// When a simulated transfer runs in virtual-payload mode, packets carry only
// byte counts, so a depot cannot literally parse the LSL header out of the
// stream. The header *bytes* still traverse the wire and are counted (the
// timing is identical to real mode); the header *contents* are published
// here by the sender, keyed by the connecting socket's local endpoint, and
// consumed by the accepting depot/sink. Real-payload runs and the posix
// implementation never use this — they parse the stream, and the tests
// verify both paths agree.
#pragma once

#include <optional>
#include <unordered_map>

#include "lsl/wire.hpp"
#include "sim/types.hpp"

namespace lsl::core {

/// Maps a connection's client-side endpoint to the header it will carry.
class SessionDirectory {
 public:
  /// Publish the header the connection from `client_local` carries. The
  /// publisher calls this immediately after initiating the connection.
  void publish(sim::Endpoint client_local, SessionHeader header) {
    entries_[client_local] = std::move(header);
  }

  /// Look up the header for a connection whose peer is `remote` without
  /// erasing it; nullopt when the peer never published one. Use this when
  /// adoption of the session can still fail (e.g. a resume rebind): a
  /// reconnecting client republishing under the same endpoint must not
  /// race a consume() that already erased the entry.
  std::optional<SessionHeader> peek(sim::Endpoint remote) const {
    const auto it = entries_.find(remote);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }

  /// Look up (and erase) the header for a connection whose peer is
  /// `remote`; nullopt when the peer never published one. A second
  /// consume() of the same endpoint returns nullopt — callers that may
  /// retry must peek() first and consume() only once adoption succeeded.
  std::optional<SessionHeader> consume(sim::Endpoint remote) {
    const auto it = entries_.find(remote);
    if (it == entries_.end()) return std::nullopt;
    SessionHeader h = std::move(it->second);
    entries_.erase(it);
    return h;
  }

  std::size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<sim::Endpoint, SessionHeader> entries_;
};

}  // namespace lsl::core
