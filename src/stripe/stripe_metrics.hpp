// Striping instruments.
//
// Flat `stripe.*` names plus a per-lane gauge family: one reassembling sink
// per striped session, so the bundle is attached at the merge point (the
// sim StripedSinkServer or the posix reassembling sink) and shared with the
// Reassembler for buffer/hole gauges. Every name registered here must
// appear in docs/OBSERVABILITY.md — the `stripe-metrics-docs` rule of
// tools/lsl_lint enforces that for any `stripe.` string literal in this
// directory.
#pragma once

#include <cstdint>
#include <vector>

#include "metrics/metrics.hpp"

namespace lsl::stripe {

/// Pre-resolved striping instruments (see the metrics bundle pattern in
/// src/metrics/instruments.hpp: resolve once, hot path touches atomics).
struct StripeMetrics {
  /// `lanes` sizes the per-lane gauge family (`stripe.lane<i>.bps`).
  StripeMetrics(metrics::Registry& reg, std::uint16_t lanes);

  metrics::Counter* bytes_merged;     ///< fresh bytes accepted into the merge
  metrics::Counter* bytes_duplicate;  ///< redundant/overlap bytes dropped
  metrics::Counter* stripes_lost;     ///< lanes that died mid-transfer
  metrics::Counter* stripes_recovered;  ///< lanes re-striped onto a new chain
  metrics::Counter* sessions_completed; ///< striped sessions fully merged
  metrics::Gauge* reassembly_buffer_bytes;  ///< parked out-of-order bytes
  metrics::Gauge* holes_outstanding;        ///< coverage gaps below max seen
  std::vector<metrics::Gauge*> lane_bps;    ///< per-lane delivery rate

  /// Record one lane's smoothed delivery rate (bits/sec of lane progress).
  void on_lane_rate(std::uint16_t lane, double bps) {
    if (lane < lane_bps.size()) lane_bps[lane]->set(bps);
  }
};

}  // namespace lsl::stripe
