#include "stripe/plan.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <string>

namespace lsl::stripe {
namespace {

/// Bytes owned by logical stripe `s` of a round-robin geometry: its cells
/// from every full super-chunk (count*chunk bytes) plus its slice of the
/// trailing partial one.
std::uint64_t logical_stripe_bytes(std::uint64_t session_bytes,
                                   std::uint16_t count, std::uint32_t chunk,
                                   std::uint16_t s) {
  const std::uint64_t super = static_cast<std::uint64_t>(count) * chunk;
  const std::uint64_t full = session_bytes / super;
  const std::uint64_t rem = session_bytes % super;
  const std::uint64_t lo = static_cast<std::uint64_t>(s) * chunk;
  const std::uint64_t part = rem <= lo ? 0 : std::min<std::uint64_t>(rem - lo, chunk);
  return full * chunk + part;
}

}  // namespace

std::uint64_t round_robin_lane_bytes(const core::StripeInfo& info) {
  if (info.mode != core::StripeMode::kRoundRobin) {
    throw std::invalid_argument("round_robin_lane_bytes: contiguous lane");
  }
  std::uint64_t total = 0;
  for (std::uint16_t k = 0; k <= info.redundancy; ++k) {
    const auto s =
        static_cast<std::uint16_t>((info.stripe_id + k) % info.stripe_count);
    total += logical_stripe_bytes(info.session_bytes, info.stripe_count,
                                  info.chunk, s);
  }
  return total;
}

StripePlan StripePlan::round_robin(std::uint64_t session_bytes,
                                   std::uint16_t count, std::uint32_t chunk,
                                   std::uint8_t redundancy) {
  StripePlan plan;
  plan.session_bytes = session_bytes;
  for (std::uint16_t j = 0; j < count; ++j) {
    core::StripeInfo info;
    info.stripe_id = j;
    info.stripe_count = count;
    info.chunk = chunk;
    info.redundancy = redundancy;
    info.mode = core::StripeMode::kRoundRobin;
    info.session_bytes = session_bytes;
    if (!core::stripe_info_valid(info)) {
      throw std::invalid_argument("StripePlan::round_robin: bad geometry");
    }
    plan.lanes.push_back(info);
    plan.lane_bytes.push_back(round_robin_lane_bytes(info));
  }
  return plan;
}

StripePlan StripePlan::weighted(std::uint64_t session_bytes,
                                std::span<const double> weights) {
  StripePlan plan;
  plan.session_bytes = session_bytes;
  const auto count = static_cast<std::uint16_t>(weights.size());
  double total_w = 0;
  for (double w : weights) {
    if (w <= 0) throw std::invalid_argument("StripePlan::weighted: w <= 0");
    total_w += w;
  }
  // Cumulative proportional split: lane j covers [floor(T*W_j/W),
  // floor(T*W_{j+1}/W)), so the ranges tile [0, T) exactly with no
  // rounding drift regardless of weight precision.
  std::uint64_t prev = 0;
  double cum = 0;
  for (std::uint16_t j = 0; j < count; ++j) {
    cum += weights[j];
    const std::uint64_t hi =
        j + 1 == count ? session_bytes
                       : static_cast<std::uint64_t>(
                             static_cast<double>(session_bytes) *
                             (cum / total_w));
    core::StripeInfo info;
    info.stripe_id = j;
    info.stripe_count = count;
    info.chunk = 0;
    info.redundancy = 0;
    info.mode = core::StripeMode::kContiguous;
    info.session_bytes = session_bytes;
    info.range_lo = prev;
    if (!core::stripe_info_valid(info)) {
      throw std::invalid_argument("StripePlan::weighted: bad geometry");
    }
    plan.lanes.push_back(info);
    plan.lane_bytes.push_back(hi - prev);
    prev = hi;
  }
  return plan;
}

std::vector<core::CandidateRoute> disjoint_routes(
    const core::RouteSelector& selector,
    const std::vector<core::CandidateRoute>& candidates, std::size_t want,
    std::uint64_t bytes) {
  std::vector<core::CandidateRoute> picked;
  std::set<std::string> used;
  std::vector<core::CandidateRoute> remaining = candidates;
  while (picked.size() < want && !remaining.empty()) {
    std::vector<core::CandidateRoute> eligible;
    for (const auto& r : remaining) {
      bool clash = false;
      for (std::size_t i = 1; i + 1 < r.waypoints.size(); ++i) {
        if (used.count(r.waypoints[i]) != 0) clash = true;
      }
      // With a health board attached, a route the selector refuses
      // (suspect/dead interior depot scores +infinity) never becomes a
      // lane — better to stripe narrower than to place a lane on a depot
      // the plane has condemned.
      if (!clash && selector.health() != nullptr &&
          std::isinf(selector.predict_transfer_seconds(r, bytes))) {
        clash = true;
      }
      if (!clash) eligible.push_back(r);
    }
    if (eligible.empty()) break;
    const core::CandidateRoute best = selector.choose(eligible, bytes);
    for (std::size_t i = 1; i + 1 < best.waypoints.size(); ++i) {
      used.insert(best.waypoints[i]);
    }
    std::erase_if(remaining, [&](const core::CandidateRoute& r) {
      return r.waypoints == best.waypoints;
    });
    picked.push_back(best);
  }
  return picked;
}

LaneCursor::LaneCursor(const core::StripeInfo& info, std::uint64_t lane_total)
    : info_(info), lane_total_(lane_total) {
  if (info_.mode == core::StripeMode::kRoundRobin) {
    carried_.reserve(static_cast<std::size_t>(info_.redundancy) + 1);
    for (std::uint16_t k = 0; k <= info_.redundancy; ++k) {
      carried_.push_back(static_cast<std::uint16_t>(
          (info_.stripe_id + k) % info_.stripe_count));
    }
    // Ascending stripe index == ascending global offset within each
    // super-chunk, which is the canonical wire order both ends derive.
    std::sort(carried_.begin(), carried_.end());
  }
}

void LaneCursor::advance_cell() {
  cell_off_ = 0;
  if (++carried_idx_ == carried_.size()) {
    carried_idx_ = 0;
    ++super_;
  }
}

LaneCursor::Range LaneCursor::next(std::uint64_t max_len) {
  if (done() || max_len == 0) return {};
  if (info_.mode == core::StripeMode::kContiguous) {
    const std::uint64_t len =
        std::min(max_len, lane_total_ - lane_pos_);
    const Range r{info_.range_lo + lane_pos_, len};
    lane_pos_ += len;
    return r;
  }
  for (;;) {
    // Lane exhausted relative to the geometry (a caller-supplied lane_total
    // larger than the block implies must not spin forever).
    if (super_ * info_.stripe_count * info_.chunk >= info_.session_bytes) {
      lane_pos_ = lane_total_;
      return {};
    }
    const std::uint64_t start =
        (super_ * info_.stripe_count + carried_[carried_idx_]) * info_.chunk +
        cell_off_;
    if (start >= info_.session_bytes) {
      advance_cell();
      continue;
    }
    const std::uint64_t avail = std::min<std::uint64_t>(
        info_.chunk - cell_off_, info_.session_bytes - start);
    const std::uint64_t len = std::min(max_len, avail);
    lane_pos_ += len;
    cell_off_ += len;
    if (cell_off_ == info_.chunk || start + len == info_.session_bytes) {
      advance_cell();
    }
    return {start, len};
  }
}

void LaneCursor::skip(std::uint64_t lane_count) {
  while (lane_count > 0 && !done()) {
    lane_count -= next(lane_count).length;
  }
}

}  // namespace lsl::stripe
