#include "stripe/stripe_metrics.hpp"

#include <string>

namespace lsl::stripe {

StripeMetrics::StripeMetrics(metrics::Registry& reg, std::uint16_t lanes)
    : bytes_merged(&reg.counter("stripe.bytes_merged")),
      bytes_duplicate(&reg.counter("stripe.bytes_duplicate")),
      stripes_lost(&reg.counter("stripe.stripes_lost")),
      stripes_recovered(&reg.counter("stripe.stripes_recovered")),
      sessions_completed(&reg.counter("stripe.sessions_completed")),
      reassembly_buffer_bytes(&reg.gauge("stripe.reassembly_buffer_bytes")),
      holes_outstanding(&reg.gauge("stripe.holes_outstanding")) {
  lane_bps.reserve(lanes);
  for (std::uint16_t i = 0; i < lanes; ++i) {
    // Instanced names follow the `<component>.<instance>.<metric>`
    // convention: stripe.lane<i>.bps.
    lane_bps.push_back(
        &reg.gauge("stripe.lane" + std::to_string(i) + ".bps"));
  }
}

}  // namespace lsl::stripe
