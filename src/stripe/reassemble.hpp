// Sink-side reassembly of a striped session.
//
// N lanes deliver interleaved (or contiguous) slices of one byte stream,
// each in its own TCP order but with no ordering across lanes. The
// Reassembler is the merge point: a util::IntervalSet tracks global
// coverage (the same hole-tracking machinery the resume path uses), a
// per-stripe IntervalSet tracks each lane's contribution, out-of-order
// bytes wait in an offset-keyed buffer, and an incremental MD5 consumes the
// in-order frontier as it advances — so the merged stream's digest is
// available the moment coverage completes, without ever materializing the
// whole transfer. Redundant or re-striped lanes re-deliver bytes the sink
// already holds; those are counted and dropped, never re-hashed.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "md5/md5.hpp"
#include "util/interval_set.hpp"

namespace lsl::stripe {

struct StripeMetrics;

class Reassembler {
 public:
  struct Config {
    std::uint64_t session_bytes = 0;  ///< merged-stream total length
    std::uint16_t stripe_count = 0;
    /// Observability hook (may be null): buffer/hole gauges and merge
    /// counters are updated on every offer().
    StripeMetrics* metrics = nullptr;
  };

  explicit Reassembler(const Config& config);

  /// Sink of in-order merged bytes, invoked as the frontier advances.
  /// Tests hook content verification here; production sinks leave it unset
  /// and rely on the digest.
  std::function<void(std::uint64_t offset, std::span<const std::uint8_t>)>
      on_frontier;

  /// Accept lane bytes mapping to global range [global, global+size).
  /// (Callers derive `global` from a LaneCursor.) Bytes already covered —
  /// redundant copies, re-striped overlap — are dropped and counted.
  /// Returns the number of fresh bytes accepted.
  std::uint64_t offer(std::uint16_t stripe_id, std::uint64_t global,
                      std::span<const std::uint8_t> data);

  /// True once every byte of [0, session_bytes) has arrived.
  bool complete() const {
    return frontier_ == config_.session_bytes;
  }

  /// Length of the contiguous received prefix (== session_bytes when done).
  std::uint64_t frontier() const { return frontier_; }

  /// Bytes parked beyond the frontier awaiting their predecessors.
  std::uint64_t buffered_bytes() const { return buffered_; }

  /// Redundant/duplicate bytes dropped so far.
  std::uint64_t duplicate_bytes() const { return duplicate_; }

  /// Gaps in coverage strictly below the highest byte seen — the holes a
  /// dead lane leaves until redundancy or a re-stripe fills them.
  std::size_t holes_outstanding() const;

  /// Coverage delivered under one stripe id — per-lane progress for the
  /// `stripe.lane<i>.bps` gauges. Redundant lanes overlap, so the per-stripe
  /// totals can sum past session_bytes (fresh-vs-duplicate accounting is
  /// global: duplicate_bytes()).
  std::uint64_t stripe_received(std::uint16_t stripe_id) const;

  /// MD5 over the merged stream; meaningful only once complete().
  md5::Digest digest();

 private:
  void advance_frontier();

  Config config_;
  util::IntervalSet covered_;
  std::vector<util::IntervalSet> per_stripe_;
  /// Out-of-order bytes keyed by global offset; entries never overlap
  /// (only fresh sub-ranges are stored) and drain in order into hash_.
  std::map<std::uint64_t, std::vector<std::uint8_t>> pending_;
  md5::Md5 hash_;
  std::uint64_t frontier_ = 0;
  std::uint64_t buffered_ = 0;
  std::uint64_t duplicate_ = 0;
  bool finalized_ = false;
  md5::Digest final_digest_;
};

}  // namespace lsl::stripe
