// Striped multipath session planning (source side).
//
// The paper's cascade pushes one session down one depot chain, so the
// session's throughput is capped by the slowest chain — the very limit TCP
// Trunking and RAIL (PAPERS.md) remove by striping one logical flow across
// disjoint paths. A StripePlan splits a session's byte stream over N lanes,
// each lane riding its own depot chain chosen disjointly from the
// RouteSelector's candidates; the per-lane StripeInfo blocks it produces are
// stamped into version-3 wire headers (src/lsl/wire.hpp) so the sink — and
// any replacement connection after a lane dies — can map lane bytes back
// into the merged stream with no side channel. docs/STRIPING.md is the
// narrative companion.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lsl/selector.hpp"
#include "lsl/wire.hpp"

namespace lsl::stripe {

/// Total bytes a round-robin lane carries: the sum of its carried logical
/// stripes' byte sets (lane j carries stripes j..j+redundancy mod count).
/// Contiguous lanes are not derivable from the block alone — their length
/// lives in the plan (and on the wire in payload_length).
std::uint64_t round_robin_lane_bytes(const core::StripeInfo& info);

/// A session's byte-to-lane assignment: one StripeInfo per lane plus the
/// lane byte counts (redundancy makes the counts sum to more than
/// session_bytes — that surplus is the loss-masking premium).
struct StripePlan {
  std::uint64_t session_bytes = 0;
  std::vector<core::StripeInfo> lanes;
  std::vector<std::uint64_t> lane_bytes;

  std::uint16_t stripe_count() const {
    return static_cast<std::uint16_t>(lanes.size());
  }

  /// Byte-interleaved plan: logical stripe s owns every `chunk`-sized cell
  /// with cell_index % count == s; lane j carries stripes j..j+redundancy
  /// (mod count), so any `redundancy` lane deaths leave full coverage.
  static StripePlan round_robin(std::uint64_t session_bytes,
                                std::uint16_t count, std::uint32_t chunk,
                                std::uint8_t redundancy = 0);

  /// Contiguous weighted plan: lane j carries a single byte range sized
  /// proportionally to weights[j] (e.g. the RouteSelector's predicted lane
  /// rates, so fast chains carry more). Incompatible with redundancy.
  static StripePlan weighted(std::uint64_t session_bytes,
                             std::span<const double> weights);
};

/// Greedy depot-disjoint route pick: repeatedly take the RouteSelector's
/// best remaining candidate whose interior depots avoid every depot already
/// claimed by an earlier pick. Returns up to `want` routes (fewer when the
/// candidate pool runs out of disjoint options); order is pick order, so
/// lane 0 rides the predicted-fastest chain.
std::vector<core::CandidateRoute> disjoint_routes(
    const core::RouteSelector& selector,
    const std::vector<core::CandidateRoute>& candidates, std::size_t want,
    std::uint64_t bytes);

/// The per-stripe sequencer: walks one lane's bytes in wire order (the
/// ascending-global-offset order both endpoints derive independently from
/// the StripeInfo block) and yields the global ranges they map to. The
/// source drives it to pick which payload offsets to send next; the sink
/// drives an identical cursor to place received lane bytes. `skip()` is the
/// resume path: a replacement connection for a half-delivered lane skips
/// the lane-relative prefix the sink already holds.
class LaneCursor {
 public:
  /// `lane_total` is the lane's full byte count (plan.lane_bytes[j] at the
  /// source; header payload_length + resume_offset at the sink).
  LaneCursor(const core::StripeInfo& info, std::uint64_t lane_total);

  /// One contiguous piece of the merged stream.
  struct Range {
    std::uint64_t global = 0;  ///< absolute offset in the merged stream
    std::uint64_t length = 0;  ///< bytes; 0 means the lane is exhausted
  };

  /// Map the next `max_len` lane bytes (fewer at a cell or lane boundary).
  Range next(std::uint64_t max_len);

  /// Advance past `lane_count` lane bytes without yielding them.
  void skip(std::uint64_t lane_count);

  std::uint64_t lane_total() const { return lane_total_; }
  std::uint64_t lane_position() const { return lane_pos_; }
  bool done() const { return lane_pos_ >= lane_total_; }

 private:
  void advance_cell();

  core::StripeInfo info_;
  std::uint64_t lane_total_ = 0;
  std::uint64_t lane_pos_ = 0;
  // Round-robin walk state: super-chunk index, index into carried_, offset
  // within the current cell.
  std::vector<std::uint16_t> carried_;
  std::uint64_t super_ = 0;
  std::size_t carried_idx_ = 0;
  std::uint64_t cell_off_ = 0;
};

}  // namespace lsl::stripe
