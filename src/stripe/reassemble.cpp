#include "stripe/reassemble.hpp"

#include <algorithm>
#include <stdexcept>

#include "stripe/stripe_metrics.hpp"

namespace lsl::stripe {

Reassembler::Reassembler(const Config& config)
    : config_(config), per_stripe_(config.stripe_count) {}

std::uint64_t Reassembler::offer(std::uint16_t stripe_id, std::uint64_t global,
                                 std::span<const std::uint8_t> data) {
  if (data.empty()) return 0;
  const std::uint64_t end = global + data.size();
  if (end > config_.session_bytes) {
    throw std::out_of_range("Reassembler::offer beyond session_bytes");
  }
  if (stripe_id < per_stripe_.size()) {
    per_stripe_[stripe_id].insert(global, end);
  }

  // Walk the uncovered sub-ranges of [global, end): everything else is a
  // redundant copy (by design with redundancy >= 1, or re-striped overlap)
  // and is dropped without touching the hash.
  std::uint64_t fresh = 0;
  std::uint64_t pos = global;
  while (pos < end) {
    const auto gap = covered_.next_gap(pos, end);
    if (!gap) break;
    const auto [lo, hi] = *gap;
    const std::span<const std::uint8_t> piece =
        data.subspan(lo - global, hi - lo);
    if (lo == frontier_) {
      // Fast path: this piece extends the in-order prefix directly.
      hash_.update(piece);
      if (on_frontier) on_frontier(lo, piece);
      frontier_ = hi;
    } else {
      pending_.emplace(lo, std::vector<std::uint8_t>(piece.begin(),
                                                     piece.end()));
      buffered_ += piece.size();
    }
    covered_.insert(lo, hi);
    fresh += hi - lo;
    pos = hi;
  }
  duplicate_ += data.size() - fresh;
  advance_frontier();
  if (config_.metrics != nullptr) {
    config_.metrics->bytes_merged->inc(fresh);
    config_.metrics->bytes_duplicate->inc(data.size() - fresh);
    config_.metrics->reassembly_buffer_bytes->set(
        static_cast<double>(buffered_));
    config_.metrics->holes_outstanding->set(
        static_cast<double>(holes_outstanding()));
  }
  return fresh;
}

void Reassembler::advance_frontier() {
  // Drain parked chunks that now abut the in-order prefix. Entries never
  // overlap, so each either starts exactly at the frontier or still waits.
  auto it = pending_.begin();
  while (it != pending_.end() && it->first == frontier_) {
    hash_.update(std::span<const std::uint8_t>(it->second));
    if (on_frontier) {
      on_frontier(it->first, std::span<const std::uint8_t>(it->second));
    }
    frontier_ += it->second.size();
    buffered_ -= it->second.size();
    it = pending_.erase(it);
  }
}

std::size_t Reassembler::holes_outstanding() const {
  if (covered_.empty()) return 0;
  // Gaps between the disjoint covered intervals, plus the leading gap when
  // byte 0 itself has not arrived. The tail beyond max_end() is not a hole:
  // those bytes may simply still be in flight on a healthy lane.
  std::size_t holes = covered_.interval_count() - 1;
  if (!covered_.contains(0)) ++holes;
  return holes;
}

std::uint64_t Reassembler::stripe_received(std::uint16_t stripe_id) const {
  return stripe_id < per_stripe_.size() ? per_stripe_[stripe_id].total() : 0;
}

md5::Digest Reassembler::digest() {
  if (!finalized_) {
    final_digest_ = hash_.finalize();
    finalized_ = true;
  }
  return final_digest_;
}

}  // namespace lsl::stripe
