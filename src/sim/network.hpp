// Topology container: nodes, links between them, and shortest-path routing.
//
// The experiment scenarios (src/exp) build small WAN topologies out of these
// pieces: campus hosts, access links, POP routers on an Abilene-like
// backbone, and depot hosts hanging off the POPs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/link.hpp"
#include "sim/node.hpp"
#include "sim/simulator.hpp"
#include "sim/types.hpp"

namespace lsl::sim {

/// A simulated network: owns the Simulator, all nodes, and all links.
class Network {
 public:
  explicit Network(std::uint64_t seed = 1) : sim_(seed) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Simulator& sim() { return sim_; }
  util::SimTime now() const { return sim_.now(); }

  /// Create a host (runs transport stacks / applications).
  Node& add_host(const std::string& name);

  /// Create a router (forwards only).
  Node& add_router(const std::string& name);

  /// Connect two nodes with a duplex link, one LinkConfig per direction.
  void connect(Node& a, Node& b, const LinkConfig& ab, const LinkConfig& ba);

  /// Connect two nodes with a symmetric duplex link.
  void connect(Node& a, Node& b, const LinkConfig& both) {
    connect(a, b, both, both);
  }

  /// Node lookup by id; throws std::out_of_range on invalid id.
  Node& node(NodeId id);
  const Node& node(NodeId id) const;

  /// Node lookup by name; nullptr when absent.
  Node* find_node(const std::string& name);

  /// The directed link from `a` to `b`, or nullptr when not adjacent.
  Link* link_between(NodeId a, NodeId b);

  /// Recompute all forwarding tables (Dijkstra, propagation-delay metric).
  /// Called lazily on first send after a topology change.
  void compute_routes();

  /// Route a packet out of node `at` toward p.dst. Returns false (and
  /// counts a drop) when no route exists.
  bool forward_from(NodeId at, Packet&& p);

  /// Number of nodes in the topology.
  std::size_t node_count() const { return nodes_.size(); }

  /// Sum of all links' counters (drop accounting for experiments/tests).
  LinkStats total_link_stats() const;

  /// Run the simulation until no events remain.
  void run() { sim_.events().run(); }

  /// Run until `deadline` simulated time.
  void run_until(util::SimTime deadline) { sim_.events().run_until(deadline); }

 private:
  Node& add_node(const std::string& name, bool is_router);

  Simulator sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unordered_map<std::string, NodeId> by_name_;
  // adjacency_[a][b] = link a->b
  std::unordered_map<NodeId, std::unordered_map<NodeId, std::unique_ptr<Link>>>
      adjacency_;
  // next_hop_[src][dst] = neighbour to forward through
  std::vector<std::vector<NodeId>> next_hop_;
  bool routes_dirty_ = true;
};

}  // namespace lsl::sim
