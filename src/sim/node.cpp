#include "sim/node.hpp"

#include <utility>

#include "sim/network.hpp"
#include "util/log.hpp"

namespace lsl::sim {

Node::Node(Network& net, NodeId id, std::string name, bool is_router)
    : net_(net), id_(id), name_(std::move(name)), is_router_(is_router) {}

void Node::set_protocol_handler(Protocol proto, ProtocolHandler handler) {
  handlers_[static_cast<std::uint8_t>(proto)] = std::move(handler);
}

void Node::deliver(Packet&& p) {
  if (p.dst == id_) {
    const auto it = handlers_.find(static_cast<std::uint8_t>(p.proto));
    if (it == handlers_.end()) {
      ++dropped_;
      LSL_LOG_DEBUG("%s: no handler for protocol %u", name_.c_str(),
                    static_cast<unsigned>(p.proto));
      return;
    }
    it->second(std::move(p));
    return;
  }
  if (!is_router_) {
    // Hosts are single-homed end systems; transit traffic is discarded.
    ++dropped_;
    return;
  }
  if (p.ttl == 0) {
    ++dropped_;
    LSL_LOG_WARN("%s: TTL expired for packet serial %llu", name_.c_str(),
                 static_cast<unsigned long long>(p.serial));
    return;
  }
  --p.ttl;
  if (!net_.forward_from(id_, std::move(p))) ++dropped_;
}

void Node::send(Packet&& p) {
  if (p.dst == id_) {
    // Loopback: model a small host-internal latency so local connections
    // still order events sensibly.
    net_.sim().events().schedule_in(
        util::micros(20),
        [this, pkt = std::move(p)]() mutable { deliver(std::move(pkt)); });
    return;
  }
  if (!net_.forward_from(id_, std::move(p))) ++dropped_;
}

}  // namespace lsl::sim
