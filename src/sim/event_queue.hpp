// The discrete-event engine.
//
// A cancellable min-heap of (time, sequence) keyed events. Ties in time are
// broken by insertion order, which — together with integral nanosecond
// timestamps and explicitly seeded RNG streams — makes every simulation in
// this repository bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/units.hpp"

namespace lsl::sim {

/// Token identifying a scheduled event; usable to cancel it.
using EventId = std::uint64_t;

/// An EventId that never names a live event.
inline constexpr EventId kInvalidEvent = 0;

/// Discrete-event priority queue with cancellation.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time. Advances only inside run()/step().
  util::SimTime now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (>= now, clamped otherwise).
  EventId schedule_at(util::SimTime t, Callback cb);

  /// Schedule `cb` after `delay` (>= 0, clamped otherwise).
  EventId schedule_in(util::SimDuration delay, Callback cb);

  /// Cancel a pending event. Cancelling an already-fired or invalid id is a
  /// harmless no-op, so callers don't have to track firing themselves.
  void cancel(EventId id);

  /// True if no runnable events remain.
  bool empty() const { return live_count_ == 0; }

  /// Number of pending (non-cancelled) events.
  std::size_t size() const { return live_count_; }

  /// Execute the earliest pending event. Returns false if none remain.
  bool step();

  /// Run until the queue is empty or `deadline` is passed (events scheduled
  /// at exactly `deadline` still run). Time is left at the last executed
  /// event or at `deadline`, whichever is later.
  void run_until(util::SimTime deadline);

  /// Run until the queue drains completely.
  void run();

  /// Total events executed (diagnostics / micro-benchmarks).
  std::uint64_t executed_count() const { return executed_; }

 private:
  struct Entry {
    util::SimTime time;
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  bool pop_next(Entry& out);

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> pending_;    ///< scheduled, not yet fired/cancelled
  std::unordered_set<EventId> cancelled_;  ///< tombstones awaiting heap pop
  util::SimTime now_ = 0;
  EventId next_id_ = 1;
  std::size_t live_count_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace lsl::sim
