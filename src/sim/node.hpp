// Nodes: hosts (run transport stacks and applications) and routers
// (store-and-forward packet switches with static forwarding tables).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "sim/packet.hpp"
#include "sim/types.hpp"

namespace lsl::sim {

class Network;

/// A host or router in the simulated topology.
///
/// Nodes are created by (and owned by) a Network. A router forwards any
/// packet not addressed to it via the network's routing tables; a host
/// delivers packets addressed to it to the registered protocol handler and
/// silently drops transit traffic (hosts do not forward, mirroring the
/// single-homed general-purpose machines used in the paper's testbed).
class Node {
 public:
  using ProtocolHandler = std::function<void(Packet&&)>;

  Node(Network& net, NodeId id, std::string name, bool is_router);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  bool is_router() const { return is_router_; }

  /// Register the handler for packets of `proto` addressed to this node.
  /// The TCP stack registers itself here.
  void set_protocol_handler(Protocol proto, ProtocolHandler handler);

  /// A packet has arrived at this node from a link (or loopback).
  void deliver(Packet&& p);

  /// Send a packet originating at (or transiting) this node toward p.dst.
  /// Destination == self short-circuits through a small loopback delay.
  void send(Packet&& p);

  /// Packets dropped at this node (no handler / no route / TTL expiry).
  std::uint64_t dropped() const { return dropped_; }

 private:
  Network& net_;
  NodeId id_;
  std::string name_;
  bool is_router_;
  std::unordered_map<std::uint8_t, ProtocolHandler> handlers_;
  std::uint64_t dropped_ = 0;
};

}  // namespace lsl::sim
