// Background cross-traffic generator.
//
// The paper's wide-area measurements ran on the shared Abilene backbone, so
// the direct and LSL flows competed with real traffic; queueing from that
// traffic is what gives the observed RTTs their variance. This on/off UDP
// source reproduces that effect: exponentially distributed ON periods at a
// configured peak rate and OFF periods of silence, aimed across the shared
// segments of the experiment topologies.
#pragma once

#include <cstdint>

#include "sim/network.hpp"
#include "sim/packet.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace lsl::sim {

/// Configuration of one on/off source.
struct CrossTrafficConfig {
  util::DataRate peak_rate = util::DataRate::mbps(10);  ///< rate while ON
  util::SimDuration mean_on = util::millis(200);   ///< exponential mean
  util::SimDuration mean_off = util::millis(300);  ///< exponential mean
  std::uint32_t packet_bytes = 1000;               ///< UDP payload size
};

/// Exponential on/off UDP traffic from one host toward a destination node.
class OnOffUdpSource {
 public:
  OnOffUdpSource(Network& net, Node& src, NodeId dst,
                 const CrossTrafficConfig& config);

  /// Begin generating traffic (schedules the first ON period).
  void start();

  /// Stop after the current packet; no further periods are scheduled.
  void stop() { running_ = false; }

  std::uint64_t packets_sent() const { return packets_sent_; }

 private:
  void begin_on_period();
  void send_next();

  Network& net_;
  Node& src_;
  NodeId dst_;
  CrossTrafficConfig config_;
  util::Rng rng_;
  bool running_ = false;
  util::SimTime on_until_ = 0;
  std::uint64_t packets_sent_ = 0;
};

}  // namespace lsl::sim
