// Unidirectional point-to-point link with a drop-tail output queue.
//
// The link models exactly the mechanisms the paper's analysis depends on:
// serialization delay (rate), propagation delay (+ optional jitter),
// finite buffering (drop-tail queue in bytes), and packet loss — either
// i.i.d. Bernoulli (WAN background loss) or a two-state Gilbert–Elliott
// process (bursty 802.11b loss in the wireless case).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/packet.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace lsl::sim {

/// Static configuration of one link direction.
struct LinkConfig {
  util::DataRate rate = util::DataRate::mbps(100);  ///< line rate
  util::SimDuration delay = util::millis(1);        ///< propagation delay
  std::size_t queue_bytes = 256 * util::kKiB;       ///< drop-tail buffer
  double loss_rate = 0.0;            ///< Bernoulli per-packet wire loss
  util::SimDuration jitter = 0;      ///< uniform extra delay in [0, jitter]

  /// Gilbert–Elliott burst-loss model; when enabled, `loss_rate` is ignored.
  bool gilbert_elliott = false;
  double ge_good_to_bad = 0.0;  ///< per-packet P(good -> bad)
  double ge_bad_to_good = 0.0;  ///< per-packet P(bad -> good)
  double ge_loss_good = 0.0;    ///< loss probability in the good state
  double ge_loss_bad = 0.5;     ///< loss probability in the bad state
};

/// Counters exposed for tests and experiment reports.
struct LinkStats {
  std::uint64_t packets_sent = 0;   ///< packets that left the queue
  std::uint64_t bytes_sent = 0;     ///< wire bytes serialized
  std::uint64_t drops_queue = 0;    ///< drop-tail discards
  std::uint64_t drops_wire = 0;     ///< loss-model discards
  std::size_t max_queue_bytes = 0;  ///< high-water mark of queued bytes
};

/// One direction of a point-to-point link.
class Link {
 public:
  /// `deliver` is invoked (at the receiving end's simulated time) for every
  /// packet that survives the queue and the wire.
  using DeliverFn = std::function<void(Packet&&)>;

  Link(Simulator& sim, std::string name, const LinkConfig& config,
       DeliverFn deliver);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Enqueue a packet for transmission; drops if the queue is full.
  void send(Packet&& p);

  const LinkConfig& config() const { return config_; }
  const LinkStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }

  /// Bytes currently waiting in the drop-tail queue.
  std::size_t queued_bytes() const { return queued_bytes_; }

  /// Adjust the Bernoulli loss rate mid-run (failure injection).
  void set_loss_rate(double p) { config_.loss_rate = p; }

 private:
  void start_transmission();
  void finish_transmission();
  bool wire_drops(const Packet& p);

  Simulator& sim_;
  std::string name_;
  LinkConfig config_;
  DeliverFn deliver_;
  util::Rng rng_;

  std::deque<Packet> queue_;
  std::size_t queued_bytes_ = 0;
  bool transmitting_ = false;
  bool ge_bad_state_ = false;
  util::SimTime last_delivery_ = 0;  ///< FIFO guard under jitter
  LinkStats stats_;
};

}  // namespace lsl::sim
