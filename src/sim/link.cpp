#include "sim/link.hpp"

#include <algorithm>
#include <utility>

namespace lsl::sim {

Link::Link(Simulator& sim, std::string name, const LinkConfig& config,
           DeliverFn deliver)
    : sim_(sim),
      name_(std::move(name)),
      config_(config),
      deliver_(std::move(deliver)),
      rng_(sim.make_rng()) {}

void Link::send(Packet&& p) {
  const std::size_t size = p.wire_bytes();
  if (queued_bytes_ + size > config_.queue_bytes && !queue_.empty()) {
    ++stats_.drops_queue;
    return;
  }
  queued_bytes_ += size;
  stats_.max_queue_bytes = std::max(stats_.max_queue_bytes, queued_bytes_);
  queue_.push_back(std::move(p));
  if (!transmitting_) start_transmission();
}

void Link::start_transmission() {
  if (queue_.empty()) {
    transmitting_ = false;
    return;
  }
  transmitting_ = true;
  const auto& head = queue_.front();
  const util::SimDuration tx = config_.rate.transmission_time(head.wire_bytes());
  sim_.events().schedule_in(tx, [this] { finish_transmission(); });
}

bool Link::wire_drops(const Packet& p) {
  (void)p;
  if (config_.gilbert_elliott) {
    // State transition is evaluated per packet, then loss is drawn from the
    // current state's loss probability.
    if (ge_bad_state_) {
      if (rng_.bernoulli(config_.ge_bad_to_good)) ge_bad_state_ = false;
    } else {
      if (rng_.bernoulli(config_.ge_good_to_bad)) ge_bad_state_ = true;
    }
    const double p_loss =
        ge_bad_state_ ? config_.ge_loss_bad : config_.ge_loss_good;
    return rng_.bernoulli(p_loss);
  }
  return rng_.bernoulli(config_.loss_rate);
}

void Link::finish_transmission() {
  Packet p = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= p.wire_bytes();

  ++stats_.packets_sent;
  stats_.bytes_sent += p.wire_bytes();

  if (wire_drops(p)) {
    ++stats_.drops_wire;
  } else {
    util::SimDuration prop = config_.delay;
    if (config_.jitter > 0) {
      prop += static_cast<util::SimDuration>(
          rng_.uniform(0.0, static_cast<double>(config_.jitter)));
    }
    // A physical link is FIFO: jitter may stretch delays but never reorder.
    util::SimTime deliver_at = sim_.now() + prop;
    deliver_at = std::max(deliver_at, last_delivery_);
    last_delivery_ = deliver_at;
    // The callback owns the packet; shared payload buffers make this cheap.
    sim_.events().schedule_at(
        deliver_at,
        [this, pkt = std::move(p)]() mutable { deliver_(std::move(pkt)); });
  }

  start_transmission();
}

}  // namespace lsl::sim
