// Simulation context: the event queue plus the root of the deterministic
// RNG tree and the global packet serial counter.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace lsl::sim {

/// One simulation run's shared context.
///
/// Components must obtain their RNG stream via make_rng() exactly once at
/// construction; this guarantees that adding or removing a component only
/// changes that component's randomness, never its neighbours'.
class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : root_rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// The discrete-event queue driving this run.
  EventQueue& events() { return events_; }
  const EventQueue& events() const { return events_; }

  /// Current simulated time.
  util::SimTime now() const { return events_.now(); }

  /// Derive an independent RNG stream for one component.
  util::Rng make_rng() { return root_rng_.split(); }

  /// Next globally unique packet serial number.
  std::uint64_t next_packet_serial() { return ++packet_serial_; }

 private:
  EventQueue events_;
  util::Rng root_rng_;
  std::uint64_t packet_serial_ = 0;
};

}  // namespace lsl::sim
