// Fundamental identifier types shared by the simulator, the TCP model and
// the session layer.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace lsl::sim {

/// Identifies a node (host or router) within one simulated network.
using NodeId = std::uint32_t;

/// An invalid/unset node id.
inline constexpr NodeId kInvalidNode = ~NodeId{0};

/// A transport-layer port number.
using PortNum = std::uint16_t;

/// A (node, port) transport endpoint — the simulator's "IP:port".
struct Endpoint {
  NodeId node = kInvalidNode;
  PortNum port = 0;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
  friend auto operator<=>(const Endpoint&, const Endpoint&) = default;
};

/// Protocols the simulated network demultiplexes on.
enum class Protocol : std::uint8_t {
  kTcp,  ///< the full TCP model in src/tcp
  kUdp,  ///< datagram traffic (cross-traffic generators)
};

}  // namespace lsl::sim

template <>
struct std::hash<lsl::sim::Endpoint> {
  std::size_t operator()(const lsl::sim::Endpoint& e) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(e.node) << 16) | e.port);
  }
};
