#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace lsl::sim {

EventId EventQueue::schedule_at(util::SimTime t, Callback cb) {
  const EventId id = next_id_++;
  heap_.push(Entry{std::max(t, now_), id, std::move(cb)});
  pending_.insert(id);
  ++live_count_;
  return id;
}

EventId EventQueue::schedule_in(util::SimDuration delay, Callback cb) {
  return schedule_at(now_ + std::max<util::SimDuration>(delay, 0),
                     std::move(cb));
}

void EventQueue::cancel(EventId id) {
  // Cancelling an id that never existed or has already fired is a no-op.
  if (pending_.erase(id) == 0) return;
  // We cannot cheaply remove from the heap; remember the id and skip it at
  // pop time. The tombstone is erased when the entry surfaces.
  cancelled_.insert(id);
  --live_count_;
}

bool EventQueue::pop_next(Entry& out) {
  while (!heap_.empty()) {
    // priority_queue::top() is const; we move via const_cast which is safe
    // because we pop immediately after.
    Entry& top = const_cast<Entry&>(heap_.top());
    Entry e{top.time, top.id, std::move(top.cb)};
    heap_.pop();
    const auto it = cancelled_.find(e.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    out = std::move(e);
    return true;
  }
  return false;
}

bool EventQueue::step() {
  Entry e;
  if (!pop_next(e)) return false;
  now_ = e.time;
  pending_.erase(e.id);
  --live_count_;
  ++executed_;
  e.cb();
  return true;
}

void EventQueue::run_until(util::SimTime deadline) {
  Entry e;
  while (!heap_.empty()) {
    if (heap_.top().time > deadline) break;
    if (!pop_next(e)) break;
    now_ = e.time;
    pending_.erase(e.id);
    --live_count_;
    ++executed_;
    e.cb();
  }
  now_ = std::max(now_, deadline);
}

void EventQueue::run() {
  while (step()) {
  }
}

}  // namespace lsl::sim
