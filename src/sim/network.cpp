#include "sim/network.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

#include "util/log.hpp"

namespace lsl::sim {

Node& Network::add_node(const std::string& name, bool is_router) {
  if (by_name_.count(name) != 0) {
    throw std::invalid_argument("duplicate node name: " + name);
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(*this, id, name, is_router));
  by_name_[name] = id;
  routes_dirty_ = true;
  return *nodes_.back();
}

Node& Network::add_host(const std::string& name) {
  return add_node(name, /*is_router=*/false);
}

Node& Network::add_router(const std::string& name) {
  return add_node(name, /*is_router=*/true);
}

void Network::connect(Node& a, Node& b, const LinkConfig& ab,
                      const LinkConfig& ba) {
  const NodeId ai = a.id(), bi = b.id();
  Node* bp = &b;
  Node* ap = &a;
  adjacency_[ai][bi] = std::make_unique<Link>(
      sim_, a.name() + "->" + b.name(), ab,
      [bp](Packet&& p) { bp->deliver(std::move(p)); });
  adjacency_[bi][ai] = std::make_unique<Link>(
      sim_, b.name() + "->" + a.name(), ba,
      [ap](Packet&& p) { ap->deliver(std::move(p)); });
  routes_dirty_ = true;
}

Node& Network::node(NodeId id) {
  if (id >= nodes_.size()) throw std::out_of_range("bad node id");
  return *nodes_[id];
}

const Node& Network::node(NodeId id) const {
  if (id >= nodes_.size()) throw std::out_of_range("bad node id");
  return *nodes_[id];
}

Node* Network::find_node(const std::string& name) {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : nodes_[it->second].get();
}

Link* Network::link_between(NodeId a, NodeId b) {
  const auto it = adjacency_.find(a);
  if (it == adjacency_.end()) return nullptr;
  const auto jt = it->second.find(b);
  return jt == it->second.end() ? nullptr : jt->second.get();
}

void Network::compute_routes() {
  const std::size_t n = nodes_.size();
  next_hop_.assign(n, std::vector<NodeId>(n, kInvalidNode));

  // Dijkstra from every node over the propagation-delay metric. Topologies
  // here are tiny (tens of nodes), so O(n * E log E) is irrelevant.
  for (NodeId src = 0; src < n; ++src) {
    std::vector<util::SimDuration> dist(
        n, std::numeric_limits<util::SimDuration>::max());
    std::vector<NodeId> prev(n, kInvalidNode);
    using QEntry = std::pair<util::SimDuration, NodeId>;
    std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> pq;
    dist[src] = 0;
    pq.push({0, src});
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u]) continue;
      // Hosts other than the source do not forward transit traffic.
      if (u != src && !nodes_[u]->is_router()) continue;
      const auto it = adjacency_.find(u);
      if (it == adjacency_.end()) continue;
      for (const auto& [v, link] : it->second) {
        // +1ns forwarding cost keeps hop counts minimal on equal-delay ties.
        const util::SimDuration nd = d + link->config().delay + 1;
        if (nd < dist[v]) {
          dist[v] = nd;
          prev[v] = u;
          pq.push({nd, v});
        }
      }
    }
    for (NodeId dst = 0; dst < n; ++dst) {
      if (dst == src || prev[dst] == kInvalidNode) continue;
      // Walk back from dst to find the first hop out of src.
      NodeId hop = dst;
      while (prev[hop] != src) hop = prev[hop];
      next_hop_[src][dst] = hop;
    }
  }
  routes_dirty_ = false;
}

LinkStats Network::total_link_stats() const {
  LinkStats total;
  for (const auto& [from, edges] : adjacency_) {
    for (const auto& [to, link] : edges) {
      const LinkStats& s = link->stats();
      total.packets_sent += s.packets_sent;
      total.bytes_sent += s.bytes_sent;
      total.drops_queue += s.drops_queue;
      total.drops_wire += s.drops_wire;
      total.max_queue_bytes = std::max(total.max_queue_bytes, s.max_queue_bytes);
    }
  }
  return total;
}

bool Network::forward_from(NodeId at, Packet&& p) {
  if (routes_dirty_) compute_routes();
  if (at >= next_hop_.size() || p.dst >= next_hop_.size()) return false;
  const NodeId hop = next_hop_[at][p.dst];
  if (hop == kInvalidNode) {
    LSL_LOG_WARN("%s: no route to node %u", nodes_[at]->name().c_str(), p.dst);
    return false;
  }
  Link* link = link_between(at, hop);
  if (link == nullptr) return false;
  link->send(std::move(p));
  return true;
}

}  // namespace lsl::sim
