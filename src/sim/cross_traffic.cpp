#include "sim/cross_traffic.hpp"

namespace lsl::sim {

OnOffUdpSource::OnOffUdpSource(Network& net, Node& src, NodeId dst,
                               const CrossTrafficConfig& config)
    : net_(net), src_(src), dst_(dst), config_(config),
      rng_(net.sim().make_rng()) {}

void OnOffUdpSource::start() {
  if (running_) return;
  running_ = true;
  const auto off = static_cast<util::SimDuration>(
      rng_.exponential(static_cast<double>(config_.mean_off)));
  net_.sim().events().schedule_in(off, [this] { begin_on_period(); });
}

void OnOffUdpSource::begin_on_period() {
  if (!running_) return;
  const auto on = static_cast<util::SimDuration>(
      rng_.exponential(static_cast<double>(config_.mean_on)));
  on_until_ = net_.now() + on;
  send_next();
}

void OnOffUdpSource::send_next() {
  if (!running_) return;
  if (net_.now() >= on_until_) {
    const auto off = static_cast<util::SimDuration>(
        rng_.exponential(static_cast<double>(config_.mean_off)));
    net_.sim().events().schedule_in(off, [this] { begin_on_period(); });
    return;
  }
  Packet p;
  p.src = src_.id();
  p.dst = dst_;
  p.proto = Protocol::kUdp;
  p.payload_bytes = config_.packet_bytes;
  p.serial = net_.sim().next_packet_serial();
  src_.send(std::move(p));
  ++packets_sent_;

  const util::SimDuration gap =
      config_.peak_rate.transmission_time(config_.packet_bytes +
                                          kUdpIpHeaderBytes);
  net_.sim().events().schedule_in(gap, [this] { send_next(); });
}

}  // namespace lsl::sim
