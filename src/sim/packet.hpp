// The simulated network packet.
//
// Packets model IPv4/TCP framing at the granularity the experiments need:
// exact wire sizes (so serialization and queueing delays are right), full
// TCP header semantics (sequence/ack/flags/window), and either *virtual*
// payloads (a byte count plus the offset of those bytes within the sending
// application's stream) or *real* payloads (an actual byte buffer). Virtual
// payloads make multi-gigabyte sweeps cheap; real payloads let tests and the
// MD5 integrity path verify content end-to-end through depots.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/types.hpp"

namespace lsl::sim {

/// TCP header flag bits (subset the model uses).
enum TcpFlags : std::uint8_t {
  kFlagSyn = 1u << 0,
  kFlagAck = 1u << 1,
  kFlagFin = 1u << 2,
  kFlagRst = 1u << 3,
};

/// Simulated TCP header. Sequence numbers are 64-bit stream offsets — the
/// model never wraps, which removes an entire class of bookkeeping without
/// changing any timing behaviour the paper measures.
struct TcpHeader {
  PortNum src_port = 0;
  PortNum dst_port = 0;
  std::uint64_t seq = 0;  ///< sequence number of first payload byte
  std::uint64_t ack = 0;  ///< next expected sequence number (if kFlagAck)
  std::uint8_t flags = 0;
  std::uint64_t window = 0;  ///< advertised receive window, bytes

  /// SACK option blocks (RFC 2018): up to 3 [start, end) sequence ranges,
  /// most recently changed first. Counted in the wire size.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sack;
};

/// Bytes of IP + TCP header on the wire (20 IP + 20 TCP + 12 timestamp
/// options, the usual framing for the paper's Linux 2.4 era with RFC 1323
/// extensions enabled).
inline constexpr std::uint32_t kTcpIpHeaderBytes = 52;

/// Bytes of IP + UDP header on the wire.
inline constexpr std::uint32_t kUdpIpHeaderBytes = 28;

/// Maximum TCP segment payload for a 1500-byte MTU with our framing.
inline constexpr std::uint32_t kDefaultMss = 1448;

/// A packet in flight.
struct Packet {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Protocol proto = Protocol::kTcp;
  TcpHeader tcp;

  /// Payload length in bytes (counted for wire size whether or not `data`
  /// carries real bytes).
  std::uint32_t payload_bytes = 0;

  /// Real payload contents; null for virtual-payload flows. Shared so that
  /// retransmissions and multi-hop forwarding never copy.
  std::shared_ptr<const std::vector<std::uint8_t>> data;

  /// Unique id assigned at send time; used by traces and debugging.
  std::uint64_t serial = 0;

  /// Remaining router hops before the packet is dropped (loop guard).
  std::uint8_t ttl = 64;

  /// Total wire size, headers included (SACK options add 2 + 8 bytes per
  /// block, padded to 4-byte alignment).
  std::uint32_t wire_bytes() const {
    std::uint32_t size =
        payload_bytes +
        (proto == Protocol::kTcp ? kTcpIpHeaderBytes : kUdpIpHeaderBytes);
    if (!tcp.sack.empty()) {
      const std::uint32_t opt =
          2 + 8 * static_cast<std::uint32_t>(tcp.sack.size());
      size += (opt + 3) & ~3u;
    }
    return size;
  }

  bool has(TcpFlags f) const { return (tcp.flags & f) != 0; }
};

}  // namespace lsl::sim
