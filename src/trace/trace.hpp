// Sender-side packet trace capture — the simulator's tcpdump.
//
// The paper's methodology (§IV.A, §V) captures packet traces at the sending
// host of every TCP connection (direct, sublink 1, sublink 2), then derives
// three things from them: ACK-matched round-trip times, retransmission
// counts, and normalized sequence-number-growth curves. TraceRecorder
// captures the same signal by hooking a simulated socket's packet-out /
// packet-in paths; src/trace/analysis.hpp reproduces the derivations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/packet.hpp"
#include "tcp/socket.hpp"
#include "util/units.hpp"

namespace lsl::trace {

/// One captured packet, as seen at the traced (sending) host.
struct TraceEvent {
  util::SimTime time = 0;
  bool outgoing = false;       ///< sent by the traced host vs. received
  std::uint64_t seq = 0;       ///< TCP sequence number
  std::uint64_t ack = 0;       ///< acknowledgment number (if kFlagAck)
  std::uint32_t payload = 0;   ///< payload bytes
  std::uint8_t flags = 0;      ///< TcpFlags bits
  std::uint64_t window = 0;    ///< advertised window
  bool retransmit = false;     ///< sender marked this as a retransmission
};

/// Captures the packet stream of one connection at its sending host.
///
/// The recorder must outlive the socket's traffic (it is referenced from the
/// socket's trace hooks). Detach by destroying the socket or replacing its
/// hooks.
class TraceRecorder {
 public:
  TraceRecorder() = default;
  explicit TraceRecorder(std::string label) : label_(std::move(label)) {}

  // Not movable: attach() installs hooks that capture the address of
  // events_, so moving an attached recorder would leave the socket writing
  // through a dangling pointer into the moved-from shell. Heap-allocate
  // (exp::TransferResult does) when ownership must travel.
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;
  TraceRecorder(TraceRecorder&&) = delete;
  TraceRecorder& operator=(TraceRecorder&&) = delete;

  /// Install capture hooks on `socket`. Call before traffic flows.
  void attach(tcp::TcpSocket* socket);

  /// Append one event directly — synthetic traces for tests and benchmarks
  /// (the attach() hooks use the same path for captured packets).
  void record(const TraceEvent& e) { events_.push_back(e); }

  const std::vector<TraceEvent>& events() const { return events_; }
  const std::string& label() const { return label_; }
  bool empty() const { return events_.empty(); }

  /// Timestamp of the first captured packet (0 when empty).
  util::SimTime start_time() const {
    return events_.empty() ? 0 : events_.front().time;
  }
  /// Timestamp of the last captured packet (0 when empty).
  util::SimTime end_time() const {
    return events_.empty() ? 0 : events_.back().time;
  }

  /// Discard captured events (reuse between iterations).
  void clear() { events_.clear(); }

 private:
  std::string label_;
  std::vector<TraceEvent> events_;
};

}  // namespace lsl::trace
