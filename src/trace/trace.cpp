#include "trace/trace.hpp"

namespace lsl::trace {

void TraceRecorder::attach(tcp::TcpSocket* socket) {
  auto* events = &events_;

  socket->set_packet_out_hook(
      [events, socket](const sim::Packet& p, bool retx) {
        TraceEvent e;
        e.time = socket->now();
        e.outgoing = true;
        e.seq = p.tcp.seq;
        e.ack = p.tcp.ack;
        e.payload = p.payload_bytes;
        e.flags = p.tcp.flags;
        e.window = p.tcp.window;
        e.retransmit = retx;
        events->push_back(e);
      });
  socket->set_packet_in_hook([events, socket](const sim::Packet& p) {
    TraceEvent e;
    e.time = socket->now();
    e.outgoing = false;
    e.seq = p.tcp.seq;
    e.ack = p.tcp.ack;
    e.payload = p.payload_bytes;
    e.flags = p.tcp.flags;
    e.window = p.tcp.window;
    events->push_back(e);
  });
}

}  // namespace lsl::trace
