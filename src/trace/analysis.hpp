// Trace-derived metrics: the analyses behind every figure in the paper.
//
//  * ACK-matched RTT estimation with Karn's rule (Figures 3, 4, 9):
//    a sample is taken when a cumulative ACK first covers a data segment
//    that was transmitted exactly once. As in the paper, depot-internal
//    latency is *not* included — these are per-TCP-connection RTTs.
//  * Retransmission counting (the min/median/max "loss case" selection of
//    Figures 15–25).
//  * Normalized sequence-number growth over time (Figures 11–27): the
//    high-water mark of sent sequence numbers, time- and seq-normalized to
//    the transfer start, averaged across iterations on a common grid.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"
#include "util/series.hpp"
#include "util/units.hpp"

namespace lsl::trace {

/// All RTT samples (seconds) derived from a sender-side trace by matching
/// cumulative ACKs against first transmissions (Karn's algorithm).
std::vector<double> rtt_samples(const TraceRecorder& trace);

/// Mean of rtt_samples() in milliseconds; 0 when no sample exists.
double average_rtt_ms(const TraceRecorder& trace);

/// Number of retransmitted data segments in the trace.
std::uint64_t retransmission_count(const TraceRecorder& trace);

/// Sequence-number growth curve: (seconds since `origin`, bytes of sequence
/// space sent beyond the first data byte). Monotone non-decreasing — the
/// high-water mark, matching how sequence plots are drawn from tcpdump.
/// `origin` defaults to the trace's own first event when negative.
util::Series sequence_growth(const TraceRecorder& trace,
                             util::SimTime origin = -1);

/// Bytes of unique payload the traced sender transmitted.
std::uint64_t unique_bytes_sent(const TraceRecorder& trace);

}  // namespace lsl::trace
