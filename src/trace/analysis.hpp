// Trace-derived metrics: the analyses behind every figure in the paper.
//
//  * ACK-matched RTT estimation with Karn's rule (Figures 3, 4, 9):
//    a sample is taken when a cumulative ACK first covers a data segment
//    that was transmitted exactly once. As in the paper, depot-internal
//    latency is *not* included — these are per-TCP-connection RTTs.
//  * Retransmission counting (the min/median/max "loss case" selection of
//    Figures 15–25).
//  * Normalized sequence-number growth over time (Figures 11–27): the
//    high-water mark of sent sequence numbers, time- and seq-normalized to
//    the transfer start, averaged across iterations on a common grid.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/metrics.hpp"
#include "trace/trace.hpp"
#include "util/series.hpp"
#include "util/units.hpp"

namespace lsl::trace {

/// All RTT samples (seconds) derived from a sender-side trace by matching
/// cumulative ACKs against first transmissions (Karn's algorithm).
std::vector<double> rtt_samples(const TraceRecorder& trace);

/// Mean of rtt_samples() in milliseconds; 0 when no sample exists.
double average_rtt_ms(const TraceRecorder& trace);

/// Number of retransmitted data segments in the trace.
std::uint64_t retransmission_count(const TraceRecorder& trace);

/// Sequence-number growth curve: (seconds since `origin`, bytes of sequence
/// space sent beyond the first data byte). Monotone non-decreasing — the
/// high-water mark, matching how sequence plots are drawn from tcpdump.
/// `origin` defaults to the trace's own first event when negative.
util::Series sequence_growth(const TraceRecorder& trace,
                             util::SimTime origin = -1);

/// Bytes of unique payload the traced sender transmitted.
std::uint64_t unique_bytes_sent(const TraceRecorder& trace);

/// Trace → metrics bridge: derive this trace's per-sublink figures and
/// register them under `<prefix>.` in `reg`:
///
///   <prefix>.retransmits       counter     = retransmission_count()
///   <prefix>.rtt_samples       counter     = rtt_samples().size()
///   <prefix>.unique_bytes      counter     = unique_bytes_sent()
///   <prefix>.rtt_ms            histogram   over rtt_samples(), in the
///                                          shared latency_ms_bounds layout
///   <prefix>.seq_growth_bytes  timeseries  = sequence_growth()
///
/// Lets the figure benchmarks and `--metrics-out` tools emit the paper's
/// per-sublink RTT/retransmit distributions alongside their raw output.
/// Re-exporting the same prefix accumulates into the existing instruments
/// (counters add, histograms merge), which is what per-iteration bench
/// loops want; use distinct prefixes for per-run isolation.
void export_trace_metrics(const TraceRecorder& trace, metrics::Registry& reg,
                          const std::string& prefix);

}  // namespace lsl::trace
