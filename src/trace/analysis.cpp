#include "trace/analysis.hpp"

#include <algorithm>
#include <map>

#include "metrics/instruments.hpp"
#include "sim/packet.hpp"

namespace lsl::trace {

std::vector<double> rtt_samples(const TraceRecorder& trace) {
  std::vector<double> samples;

  // Outstanding first transmissions keyed by the sequence number of the
  // byte *after* the segment — a cumulative ACK >= that key acknowledges it.
  struct Pending {
    util::SimTime send_time;
    bool ambiguous;  ///< retransmitted at least once (Karn: no sample)
  };
  std::map<std::uint64_t, Pending> pending;

  for (const TraceEvent& e : trace.events()) {
    if (e.outgoing) {
      std::uint32_t slen = e.payload;
      if (e.flags & sim::kFlagSyn) ++slen;
      if (e.flags & sim::kFlagFin) ++slen;
      if (slen == 0) continue;
      const std::uint64_t end = e.seq + slen;
      auto [it, inserted] = pending.try_emplace(end, Pending{e.time, false});
      if (!inserted || e.retransmit) {
        // Retransmission of the same range: both copies are ambiguous.
        it->second.ambiguous = true;
      }
    } else if (e.flags & sim::kFlagAck) {
      // The freshest information is carried by the segment whose end equals
      // the ACK; older covered segments were acknowledged implicitly and
      // would bias samples upward, so only the exact match is sampled
      // (tcptrace behaves the same way).
      const auto exact = pending.find(e.ack);
      if (exact != pending.end() && !exact->second.ambiguous) {
        samples.push_back(
            util::to_seconds(e.time - exact->second.send_time));
      }
      // Discard everything the cumulative ACK covered.
      pending.erase(pending.begin(), pending.upper_bound(e.ack));
    }
  }
  return samples;
}

double average_rtt_ms(const TraceRecorder& trace) {
  const auto samples = rtt_samples(trace);
  if (samples.empty()) return 0.0;
  double s = 0.0;
  for (double v : samples) s += v;
  return s / static_cast<double>(samples.size()) * 1e3;
}

std::uint64_t retransmission_count(const TraceRecorder& trace) {
  std::uint64_t n = 0;
  for (const TraceEvent& e : trace.events()) {
    if (e.outgoing && e.retransmit && e.payload > 0) ++n;
  }
  return n;
}

util::Series sequence_growth(const TraceRecorder& trace, util::SimTime origin) {
  util::Series out;
  if (trace.empty()) return out;
  const util::SimTime t0 = origin >= 0 ? origin : trace.start_time();

  std::uint64_t high_water = 0;
  bool first = true;
  std::uint64_t base = 0;
  for (const TraceEvent& e : trace.events()) {
    if (!e.outgoing || e.payload == 0) continue;
    if (first) {
      base = e.seq;
      first = false;
      out.push_back({util::to_seconds(e.time - t0), 0.0});
    }
    const std::uint64_t end = e.seq + e.payload - base;
    if (end > high_water) {
      high_water = end;
      out.push_back(
          {util::to_seconds(e.time - t0), static_cast<double>(high_water)});
    }
  }
  return out;
}

std::uint64_t unique_bytes_sent(const TraceRecorder& trace) {
  std::uint64_t n = 0;
  for (const TraceEvent& e : trace.events()) {
    if (e.outgoing && !e.retransmit) n += e.payload;
  }
  return n;
}

void export_trace_metrics(const TraceRecorder& trace, metrics::Registry& reg,
                          const std::string& prefix) {
  reg.counter(prefix + ".retransmits").inc(retransmission_count(trace));
  reg.counter(prefix + ".unique_bytes").inc(unique_bytes_sent(trace));

  const std::vector<double> samples = rtt_samples(trace);
  reg.counter(prefix + ".rtt_samples").inc(samples.size());
  metrics::Histogram& rtt =
      reg.histogram(prefix + ".rtt_ms", metrics::latency_ms_bounds());
  for (double s : samples) rtt.observe(s * 1e3);

  const util::Series growth = sequence_growth(trace);
  metrics::Timeseries& seq = reg.timeseries(prefix + ".seq_growth_bytes");
  for (const auto& pt : growth) seq.record(pt.t, pt.v);
}

}  // namespace lsl::trace
