#include "posix/sharded_lsd.hpp"

#include <string>
#include <utility>

#include "health/gossip.hpp"
#include "util/contract.hpp"
#include "util/log.hpp"

namespace lsl::posix {

ShardedLsd::ShardedLsd(const ShardedLsdConfig& config)
    : config_(config),
      budget_(config.base.pool.budget_bytes, config.base.pool.low_watermark,
              config.base.pool.high_watermark),
      gate_(static_cast<std::uint32_t>(config.shards > 0 ? config.shards
                                                         : 1)) {
  LSL_PRECONDITION(config_.shards >= 1, "sharded lsd: need at least 1 shard");
  LSL_PRECONDITION(config_.base.shared_pool == nullptr,
                   "sharded lsd: base.shared_pool must be null (the runtime "
                   "builds the per-shard pools)");

  // Build and bind every shard on the caller's thread — the engines are
  // not running yet, so construction needs no synchronization. Shard 0
  // resolves the ephemeral port; the rest bind the same port, all with
  // SO_REUSEPORT so the kernel spreads accepts across the listeners.
  for (int i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    Shard* s = shard.get();
    s->index = i;
    s->engine = engine::make_engine("epoll");
    s->pool = std::make_unique<buf::ChunkPool>(config_.base.pool, &budget_);

    LsdConfig cfg = config_.base;
    cfg.shared_pool = s->pool.get();
    cfg.reuse_port = true;
    if (i > 0) cfg.bind.port = port_;
    s->lsd = std::make_unique<Lsd>(*s->engine, cfg);
    if (i == 0) port_ = s->lsd->port();

    if (config_.registry != nullptr) {
      const std::string tag = "shard" + std::to_string(i);
      s->lsd_metrics = std::make_unique<metrics::LsdMetrics>(
          *config_.registry, "lsd." + tag);
      s->lsd->set_metrics(s->lsd_metrics.get());
      s->loop_metrics = std::make_unique<metrics::LoopMetrics>(
          *config_.registry, "loop." + tag);
      s->engine->set_metrics(s->loop_metrics.get());
    }
    if (config_.tracer != nullptr) s->lsd->set_tracer(config_.tracer);
    if (config_.health_plane) {
      s->health_board = std::make_unique<health::HealthBoard>(config_.health);
      s->lsd->set_health_board(s->health_board.get());
    }

    // The drain rendezvous: the report is written on the shard thread
    // before the gate arrival's RMW publishes it.
    s->lsd->on_drain_done = [this, s](const live::DrainReport& rep) {
      s->report = rep;
      s->drained.store(true, std::memory_order_release);
      gate_.arrive();
    };

    if (config_.fault_plan) {
      s->fault = std::make_unique<LsdFaultDriver>(*s->lsd,
                                                  *config_.fault_plan);
      s->fault->arm();
    }

    s->engine->set_wakeup_callback([s] { s->posts.drain(); });
    publish(*s);
    shards_.push_back(std::move(shard));
  }

  LSL_LOG_INFO("sharded lsd: %d shards on port %u", config_.shards,
               static_cast<unsigned>(port_));

  // Everything a shard thread touches exists now; start the threads.
  for (auto& s : shards_) {
    Shard* sp = s.get();
    sp->thread = engine::ShardThread([this, sp] { shard_main(*sp); });
  }
}

ShardedLsd::~ShardedLsd() {
  for (auto& s : shards_) {
    s->stop.store(true, std::memory_order_release);
    s->engine->wakeup();
  }
  // Shard destruction joins each thread first (member order), then tears
  // down daemon → pools → engines; the shared budget outlives them all.
  shards_.clear();
}

void ShardedLsd::post(Shard& s, engine::PostQueue::Task task) {
  if (s.posts.post(std::move(task))) s.engine->wakeup();
}

void ShardedLsd::shard_main(Shard& s) {
  // The same drive pattern as lsd_relay's single-daemon loop: bounded
  // waits so the fault driver's timed events and the parked-session
  // backstop run even while no socket is ready (liveness deadlines ride
  // the daemon's own timerfd regardless).
  while (!s.stop.load(std::memory_order_acquire)) {
    int wait = s.fault ? s.fault->next_timeout_ms()
                       : s.lsd->next_timeout_ms();
    if (wait < 0 || wait > 500) wait = 500;
    if (s.engine->run_once(wait) >= 0) {
      if (s.fault) {
        s.fault->poll();
      } else {
        s.lsd->expire_parked();
      }
    }
    publish(s);
  }
  publish(s);
}

void ShardedLsd::publish(Shard& s) {
  s.board.publish(s.lsd->stats());
  HealthWords h;
  h.live_relays = s.lsd->live_relays();
  h.parked_relays = s.lsd->parked_relays();
  h.striped_relays = s.lsd->striped_relays();
  h.draining = s.lsd->draining() ? 1 : 0;
  h.drain_done = s.lsd->drain_done() ? 1 : 0;
  s.health.publish(h);
}

LsdStats ShardedLsd::stats() const {
  LsdStats sum;
  for (const auto& s : shards_) sum = sum + s->board.snapshot();
  return sum;
}

LsdStats ShardedLsd::shard_stats(int shard) const {
  LSL_PRECONDITION(shard >= 0 && shard < shard_count(),
                   "sharded lsd: shard index out of range");
  return shards_[static_cast<std::size_t>(shard)]->board.snapshot();
}

buf::PoolStats ShardedLsd::pool_stats() const {
  buf::PoolStats sum;
  for (const auto& s : shards_) {
    // ChunkPool::stats() is mutex-guarded — safe from this thread.
    const buf::PoolStats ps = s->pool->stats();
    sum.allocs += ps.allocs;
    sum.reuses += ps.reuses;
    sum.creations += ps.creations;
    sum.failures += ps.failures;
    sum.in_use_bytes += ps.in_use_bytes;
    sum.peak_bytes += ps.peak_bytes;
    sum.free_chunks += ps.free_chunks;
  }
  // Per-pool "episodes" all mirror the shared budget; report the
  // process-wide count once instead of N times.
  sum.pressure_episodes = budget_.pressure_episodes();
  return sum;
}

void ShardedLsd::begin_drain() {
  if (!gate_.request()) return;  // idempotent (signals can repeat)
  for (auto& s : shards_) {
    post(*s, [lsd = s->lsd.get()] { lsd->begin_drain(); });
  }
}

live::DrainReport ShardedLsd::drain_report() const {
  live::DrainReport merged;
  for (const auto& s : shards_) {
    if (!s->drained.load(std::memory_order_acquire)) continue;
    merged.in_flight_at_start += s->report.in_flight_at_start;
    merged.completed += s->report.completed;
    merged.parked += s->report.parked;
    merged.aborted += s->report.aborted;
    merged.refused += s->report.refused;
    merged.expired = merged.expired || s->report.expired;
  }
  return merged;
}

std::vector<health::HealthBoard*> ShardedLsd::health_boards() const {
  std::vector<health::HealthBoard*> boards;
  if (!config_.health_plane) return boards;
  boards.reserve(shards_.size());
  for (const auto& s : shards_) boards.push_back(s->health_board.get());
  return boards;
}

AdminHealth ShardedLsd::admin_health() const {
  AdminHealth h;
  h.port = port_;
  h.shards = shard_count();
  h.draining = draining();
  h.drain_done = drain_done();
  for (const auto& s : shards_) {
    const HealthWords w = s->health.snapshot();
    h.live_relays += w.live_relays;
    h.parked_relays += w.parked_relays;
    h.stripes += w.striped_relays;
  }
  h.stats = stats();
  if (config_.health_plane) {
    std::vector<std::vector<health::DepotHealth>> rows;
    rows.reserve(shards_.size());
    for (const auto& s : shards_) rows.push_back(s->health_board->rows());
    h.depots = health::merge_rows(rows);
  }
  return h;
}

}  // namespace lsl::posix
