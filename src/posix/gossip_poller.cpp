#include "posix/gossip_poller.hpp"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/un.h>

#include <cerrno>
#include <cstring>

#include "health/gossip.hpp"
#include "posix/socket_util.hpp"
#include "util/log.hpp"

namespace lsl::posix {

namespace {

constexpr char kCommand[] = "gossip\n";
constexpr std::size_t kCommandLen = sizeof(kCommand) - 1;
/// A runaway peer must not grow the buffer unbounded (mirrors the admin
/// server's own input cap).
constexpr std::size_t kMaxResponse = 1 << 20;

Fd connect_unix(const std::string& path, bool* connecting) {
  *connecting = false;
  sockaddr_un sa{};
  sa.sun_family = AF_UNIX;
  if (path.size() >= sizeof(sa.sun_path)) {
    errno = ENAMETOOLONG;
    return Fd{};
  }
  std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
  Fd sock(::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!sock.valid()) return Fd{};
  if (::connect(sock.get(), reinterpret_cast<const sockaddr*>(&sa),
                sizeof(sa)) != 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) return Fd{};
    *connecting = true;
  }
  return sock;
}

std::uint64_t steady_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

GossipPoller::GossipPoller(engine::EventEngine& loop,
                           std::vector<health::HealthBoard*> boards,
                           GossipPollerConfig config)
    : loop_(loop), boards_(std::move(boards)), config_(std::move(config)) {
  const auto now = std::chrono::steady_clock::now();
  for (const std::string& path : config_.peers) {
    auto p = std::make_unique<Peer>();
    p->path = path;
    p->next_due = now;  // first poll() sweeps everyone immediately
    peers_.push_back(std::move(p));
  }
}

GossipPoller::~GossipPoller() {
  for (auto& p : peers_) {
    if (p->sock.valid()) loop_.remove(p->sock.get());
  }
}

void GossipPoller::poll() {
  const auto now = std::chrono::steady_clock::now();
  for (auto& p : peers_) {
    if (now < p->next_due) continue;
    // A poll still in flight at its own next tick is wedged; drop it and
    // start fresh (the peer may have restarted with a new socket file).
    if (p->sock.valid()) abandon(*p);
    p->next_due = now + config_.interval;
    start_poll(*p);
  }
}

int GossipPoller::next_timeout_ms() const {
  if (peers_.empty()) return -1;
  const auto now = std::chrono::steady_clock::now();
  auto due = peers_.front()->next_due;
  for (const auto& p : peers_) {
    if (p->next_due < due) due = p->next_due;
  }
  if (due <= now) return 0;
  return static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(due - now)
          .count());
}

void GossipPoller::start_poll(Peer& p) {
  p.sent = 0;
  p.in.clear();
  p.started = std::chrono::steady_clock::now();
  p.sock = connect_unix(p.path, &p.connecting);
  if (!p.sock.valid()) {
    // Peer not up (yet): quietly count it and retry next tick — gossip is
    // advisory, a missing peer must never spam the log from a hot path.
    ++failed_;
    return;
  }
  Peer* pp = &p;
  loop_.add(p.sock.get(), EPOLLOUT | EPOLLIN,
            [this, pp](std::uint32_t ev) { on_event(*pp, ev); });
}

void GossipPoller::on_event(Peer& p, std::uint32_t events) {
  if (!p.sock.valid()) return;  // stale event after an abandon
  if (p.connecting) {
    if (connect_result(p.sock.get()) != 0) {
      finish_poll(p, false);
      return;
    }
    p.connecting = false;
  }
  if ((events & EPOLLOUT) && !pump_send(p)) return;
  if (events & EPOLLIN) {
    std::uint8_t buf[4096];
    for (;;) {
      const long n = read_some(p.sock.get(), buf, sizeof(buf));
      if (n == -1) break;  // EAGAIN
      if (n <= 0) {        // EOF or fatal before the terminator
        finish_poll(p, false);
        return;
      }
      p.in.append(reinterpret_cast<const char*>(buf),
                  static_cast<std::size_t>(n));
      if (p.in.size() > kMaxResponse) {
        finish_poll(p, false);
        return;
      }
    }
    // Response framing: lines, then one blank line.
    if (p.in.find("\n\n") != std::string::npos) {
      const std::uint64_t now_ms = steady_ms();
      for (const health::DepotHealth& row : health::decode_gossip(p.in)) {
        if (!config_.self_name.empty() && row.name == config_.self_name) {
          continue;
        }
        for (health::HealthBoard* b : boards_) {
          b->merge(row, config_.weight, now_ms);
        }
        ++merged_;
      }
      finish_poll(p, true);
      return;
    }
  }
  if (events & (EPOLLHUP | EPOLLERR)) finish_poll(p, false);
}

bool GossipPoller::pump_send(Peer& p) {
  while (p.sent < kCommandLen) {
    const long n = write_some(
        p.sock.get(),
        reinterpret_cast<const std::uint8_t*>(kCommand) + p.sent,
        kCommandLen - p.sent);
    if (n < 0) {
      finish_poll(p, false);
      return false;
    }
    if (n == 0) return true;  // EAGAIN: EPOLLOUT will resume
    p.sent += static_cast<std::size_t>(n);
  }
  // Command fully sent: only the response matters now.
  loop_.modify(p.sock.get(), EPOLLIN);
  return true;
}

void GossipPoller::finish_poll(Peer& p, bool ok) {
  loop_.remove(p.sock.get());
  p.sock.reset();
  p.connecting = false;
  if (ok) {
    ++completed_;
  } else {
    ++failed_;
  }
}

void GossipPoller::abandon(Peer& p) {
  loop_.remove(p.sock.get());
  p.sock.reset();
  p.connecting = false;
  ++failed_;
}

}  // namespace lsl::posix
