// Live daemon introspection over a Unix-domain socket.
//
// `lsd_relay --admin-socket=PATH` serves a one-line-command protocol on the
// daemon's own epoll loop — no extra thread, so every answer is a coherent
// snapshot taken between event-loop turns:
//
//   stats   ->  the attached metrics registry as JSONL (the same format
//               --metrics-out writes), or a single LsdStats JSON object
//               when no registry is attached
//   spans   ->  the flight recorder's retained spans as JSONL (the same
//               format tools/lsl_spans merges)
//   health  ->  one JSON object: liveness at a glance (relay counts,
//               drain state, session/byte counters)
//
// Every response ends with one blank line so clients can frame multi-line
// payloads; unknown commands answer {"error":...}. The full protocol is
// documented in docs/OBSERVABILITY.md §4.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "posix/epoll_loop.hpp"
#include "posix/fd.hpp"

namespace lsl::metrics {
class Registry;
}
namespace lsl::span {
class Tracer;
}

namespace lsl::posix {

class AdminSource;

/// One admin endpoint bound to one daemon — the single-threaded Lsd or
/// the sharded runtime, via the AdminSource seam (posix/lsd.hpp); the
/// sharded daemon's `stats` and `health` sum per-shard counters. Binds
/// (and unlinks any stale socket file) in the constructor; throws
/// std::system_error on failure. Removes the socket file again on
/// destruction.
class AdminServer {
 public:
  AdminServer(engine::EventEngine& loop, std::string socket_path,
              AdminSource& source);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Attach the registry `stats` reports (must outlive the server); null
  /// detaches (stats falls back to the daemon's raw counters).
  void set_registry(const metrics::Registry* reg) { registry_ = reg; }

  /// Attach the tracer `spans` reads (must outlive the server); null
  /// detaches (spans answers an error line).
  void set_tracer(const span::Tracer* t) { tracer_ = t; }

  const std::string& path() const { return path_; }

 private:
  struct Conn {
    Fd sock;
    std::string in;        ///< bytes read, scanned for newlines
    std::string out;       ///< staged response bytes
    std::size_t out_off = 0;
    std::uint32_t events = 0;  ///< current epoll interest mask
  };

  void on_accept();
  void on_conn(Conn* c, std::uint32_t events);
  /// Append the response for one command line to c->out.
  void handle_command(Conn* c, const std::string& line);
  std::string cmd_stats() const;
  std::string cmd_spans() const;
  std::string cmd_health() const;
  /// Depot scorecard rows in gossip wire format ("h1 ..." lines, or a
  /// lone "# none" comment when the board is empty or absent).
  std::string cmd_gossip() const;
  /// Write staged bytes; adjusts EPOLLOUT interest. False = peer gone
  /// (the connection was closed and `c` freed).
  bool flush(Conn* c);
  void close_conn(Conn* c);

  engine::EventEngine& loop_;
  AdminSource& source_;
  std::string path_;
  Fd listener_;
  const metrics::Registry* registry_ = nullptr;
  const span::Tracer* tracer_ = nullptr;
  std::vector<std::unique_ptr<Conn>> conns_;
};

}  // namespace lsl::posix
