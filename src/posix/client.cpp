#include "posix/client.hpp"

#include <linux/sockios.h>
#include <sys/epoll.h>
#include <sys/ioctl.h>
#include <sys/socket.h>

#include <algorithm>
#include <cstring>
#include <random>
#include <system_error>

#include "stripe/plan.hpp"
#include "stripe/reassemble.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace lsl::posix {

// --- PosixSource -------------------------------------------------------------

PosixSource::PosixSource(EpollLoop& loop, PosixSourceConfig config)
    : loop_(loop),
      config_(std::move(config)),
      generator_(config_.payload_seed) {
  // Striped lanes recover from loss above this layer (a replacement lane
  // on a spare chain), never via kFlagResume.
  if (config_.stripe) config_.resumable = false;
  // An MD5 trailer hashes the whole stream through one connection; it
  // cannot rewind to a resume offset. Content verification for resumable
  // sessions comes from the sink's seeded generator instead.
  if (config_.resumable) config_.send_digest = false;
}

PosixSource::~PosixSource() {
  if (sock_.valid()) loop_.remove(sock_.get());
}

void PosixSource::start() {
  if (config_.session) {
    session_ = *config_.session;
  } else {
    util::Rng rng(config_.payload_seed ^ 0xabcdef);
    session_ = core::SessionId::generate(rng);
  }
  open_connection(0);
}

void PosixSource::open_connection(std::uint64_t offset) {
  staged_.clear();
  staged_off_ = 0;
  wire_written_ = 0;
  conn_offset_ = offset;
  acked_floor_ = std::max(acked_floor_, offset);
  write_done_ = false;
  payload_left_ = config_.payload_bytes - offset;
  generator_.seek(offset);

  const bool use_header = !config_.route.empty() || config_.send_digest ||
                          config_.resumable || config_.stripe.has_value();
  if (use_header) {
    core::SessionHeader h;
    h.session = session_;
    h.trace_id = config_.trace_id;
    h.stripe = config_.stripe;
    if (config_.send_digest) h.flags |= core::kFlagDigestTrailer;
    if (migrated_) {
      // A migrate connection is an ordinary session to every depot on the
      // fresh chain — only the sink (in adopt mode) splices it onto the
      // original stream at `offset`. payload_length is the REMAINDER, so
      // total = resume_offset + payload_length (docs/PROTOCOL.md, bit 3).
      h.flags |= core::kFlagMigrate;
      h.resume_offset = offset;
      h.payload_length = config_.payload_bytes - offset;
    } else {
      if (offset > 0) {
        h.flags |= core::kFlagResume;
        h.resume_offset = offset;
      }
      h.payload_length = config_.payload_bytes;
    }
    for (std::size_t i = 1; i < config_.route.size(); ++i) {
      h.hops.push_back({config_.route[i].addr, config_.route[i].port});
    }
    h.destination = {config_.destination.addr, config_.destination.port};
    core::encode_header(h, staged_);
  }
  header_wire_bytes_ = staged_.size();

  const InetAddress first =
      config_.route.empty() ? config_.destination : config_.route[0];
  sock_ = connect_tcp(first);
  if (!sock_.valid()) {
    handle_connection_error();
    return;
  }
  connecting_ = true;
  loop_.add(sock_.get(), EPOLLOUT | EPOLLIN,
            [this](std::uint32_t ev) { on_io(ev); });
  if (config_.dial_timeout.count() > 0) {
    timer_purpose_ = TimerPurpose::kDial;
    arm_timer_in(config_.dial_timeout);
  }
}

void PosixSource::arm_timer_in(std::chrono::milliseconds delay) {
  if (!timer_) {
    timer_ = std::make_unique<TimerFd>(loop_, [this] { on_timer(); });
  }
  timer_->arm(
      TimerFd::now_ns() +
      std::chrono::duration_cast<std::chrono::nanoseconds>(delay).count());
}

void PosixSource::on_timer() {
  const TimerPurpose purpose = timer_purpose_;
  timer_purpose_ = TimerPurpose::kNone;
  switch (purpose) {
    case TimerPurpose::kDial:
      if (!connecting_) return;  // dial resolved while the expiry was queued
      LSL_LOG_WARN("source: dial timed out after %lld ms",
                   static_cast<long long>(config_.dial_timeout.count()));
      handle_connection_error();
      break;
    case TimerPurpose::kBackoff:
      open_connection(acked_floor_);
      break;
    case TimerPurpose::kNone:
      break;
  }
}

void PosixSource::on_io(std::uint32_t events) {
  if (connecting_) {
    const int err = connect_result(sock_.get());
    if (err != 0) {
      LSL_LOG_WARN("source: connect failed: %s", std::strerror(err));
      handle_connection_error();
      return;
    }
    connecting_ = false;
    if (timer_purpose_ == TimerPurpose::kDial) {
      timer_purpose_ = TimerPurpose::kNone;
      if (timer_) timer_->disarm();
    }
  }
  if (events & EPOLLERR) {
    handle_connection_error();
    return;
  }
  if (events & EPOLLIN) {
    // The sink sends a one-byte end-to-end status before closing; a close
    // without it means the session died in transit.
    std::uint8_t buf[256];
    const long n = read_some(sock_.get(), buf, sizeof(buf));
    if (n > 0) status_ = buf[static_cast<std::size_t>(n) - 1];
    if (n == 0) {
      if (write_done_) {
        finish(status_ == core::kStatusOk);
      } else {
        handle_connection_error();  // orderly close mid-stream
      }
      return;
    }
    if (n == -2) {
      handle_connection_error();
      return;
    }
  }
  pump();
}

void PosixSource::note_acked() {
  if (!sock_.valid()) return;
  int outq = 0;
  if (::ioctl(sock_.get(), SIOCOUTQ, &outq) != 0 || outq < 0) return;
  const std::uint64_t acked_wire =
      wire_written_ - std::min<std::uint64_t>(
                          wire_written_, static_cast<std::uint64_t>(outq));
  if (acked_wire <= header_wire_bytes_) return;
  const std::uint64_t acked_payload =
      conn_offset_ + (acked_wire - header_wire_bytes_);
  acked_floor_ = std::max(
      acked_floor_, std::min(acked_payload, config_.payload_bytes));
}

void PosixSource::handle_connection_error() {
  if (finished_) return;
  // write_done_ does not make a death terminal: the chain may have died
  // holding acked-but-undelivered bytes, and a resume (or a driver-side
  // migrate) refills everything past the floor — open_connection resets
  // the write state for the new connection.
  if (!config_.resumable || !config_.reconnect_backoff) {
    finish(false);
    return;
  }
  const auto delay = config_.reconnect_backoff();
  if (!delay) {
    LSL_LOG_WARN("source: reconnect budget exhausted; giving up");
    gave_up_ = true;
    finish(false);
    return;
  }
  if (sock_.valid()) {
    loop_.remove(sock_.get());
    sock_.reset();
  }
  ++resumes_;
  LSL_LOG_INFO("source: connection lost; resuming from %llu after %lld ms",
               static_cast<unsigned long long>(acked_floor_),
               static_cast<long long>(delay->count()));
  // Wait on the event loop, not in it: a timerfd expiry re-dials, so a
  // sibling session (or the daemon under test) keeps being serviced while
  // this source backs off.
  timer_purpose_ = TimerPurpose::kBackoff;
  arm_timer_in(*delay);
}

bool PosixSource::migrate(std::vector<InetAddress> new_route,
                          std::uint64_t floor) {
  // Migration rides the resume machinery (a digest trailer cannot rewind)
  // and striped lanes re-stripe above this layer instead.
  if (!config_.resumable || config_.stripe) return false;
  if (finished_ || gave_up_) return false;
  if (floor >= config_.payload_bytes) return false;

  // Abandon the current chain: the dying depots park or fail the husk on
  // their own. Any pending dial/backoff timer belongs to the old chain too.
  if (timer_) timer_->disarm();
  timer_purpose_ = TimerPurpose::kNone;
  if (sock_.valid()) {
    loop_.remove(sock_.get());
    sock_.reset();
  }
  connecting_ = false;
  write_done_ = false;  // bytes past `floor` go out again, via the new chain
  status_ = 0;
  migrated_ = true;
  ++migrations_;
  config_.route = std::move(new_route);
  // The sink's frontier replaces — never maxes with — our first-hop ack
  // floor: SIOCOUTQ counts bytes the dying chain acknowledged but may
  // never deliver, and a reconnect floor above the sink's frontier would
  // open a gap the adoption ledger must refuse.
  acked_floor_ = floor;
  LSL_LOG_INFO("source: migrating at floor %llu",
               static_cast<unsigned long long>(floor));
  open_connection(floor);
  return true;
}

void PosixSource::pump() {
  if (finished_ || write_done_) return;
  for (;;) {
    // Flush the staged buffer.
    while (staged_off_ < staged_.size()) {
      const long n = write_some(sock_.get(), staged_.data() + staged_off_,
                                staged_.size() - staged_off_);
      if (n < 0) {
        handle_connection_error();
        return;
      }
      if (n == 0) {
        note_acked();
        return;  // kernel buffer full; EPOLLOUT re-arms us
      }
      staged_off_ += static_cast<std::size_t>(n);
      wire_written_ += static_cast<std::uint64_t>(n);
      note_acked();
    }
    staged_.clear();
    staged_off_ = 0;

    // Refill with payload or trailer.
    if (payload_left_ > 0) {
      const std::size_t chunk = static_cast<std::size_t>(
          std::min<std::uint64_t>(payload_left_, 64 * 1024));
      staged_.resize(chunk);
      if (config_.payload_fill) {
        config_.payload_fill(config_.payload_bytes - payload_left_, staged_);
      } else {
        generator_.generate(staged_);
      }
      if (!config_.trailer_digest) {
        hasher_.update(std::span<const std::uint8_t>(staged_.data(), chunk));
      }
      if (config_.corrupt_one_byte && !corrupted_yet_) {
        staged_[chunk / 2] ^= 0xff;  // after hashing: wire differs from hash
        corrupted_yet_ = true;
      }
      payload_left_ -= chunk;
      continue;
    }
    if (config_.send_digest && !trailer_sent_) {
      const md5::Digest d = config_.trailer_digest ? *config_.trailer_digest
                                                   : hasher_.finalize();
      staged_.assign(d.bytes.begin(), d.bytes.end());
      trailer_sent_ = true;
      continue;
    }
    break;
  }
  // Everything written: half-close and await the sink's close.
  ::shutdown(sock_.get(), SHUT_WR);
  write_done_ = true;
  loop_.modify(sock_.get(), EPOLLIN);
}

void PosixSource::finish(bool ok) {
  if (finished_) return;
  finished_ = true;
  timer_.reset();  // unregister so an idle loop can run dry and exit
  timer_purpose_ = TimerPurpose::kNone;
  if (sock_.valid()) {
    loop_.remove(sock_.get());
    sock_.reset();
  }
  if (on_done) on_done(ok);
}

// --- PosixSinkServer ---------------------------------------------------------

struct PosixSinkServer::Conn {
  Fd sock;
  std::chrono::steady_clock::time_point accepted_at;
  std::vector<std::uint8_t> header_buf;
  std::optional<core::SessionHeader> header;
  bool header_done = false;
  std::uint64_t payload_received = 0;
  core::PayloadVerifier verifier;
  std::vector<std::uint8_t> trailer;
  bool failed = false;
  /// Striped lanes: the session's merge point and this lane's placement
  /// cursor (unstriped sessions leave both unset and verify per-conn).
  StripeGroup* group = nullptr;
  std::optional<stripe::LaneCursor> cursor;
  /// Lane finished cleanly but the merge hasn't: held open, off the loop,
  /// until the group resolves and sends every lane its status byte.
  bool parked = false;
  /// Adoption mode: the session ledger this connection feeds, and the
  /// absolute stream offset its first payload byte lands at (a migrate
  /// connection's resume_offset; 0 for the original). Unset when the
  /// connection verifies per-conn as before.
  SessionState* session = nullptr;
  std::uint64_t session_base = 0;

  Conn(std::uint64_t seed, bool check_content)
      : verifier(seed, check_content) {}
};

struct PosixSinkServer::SessionState {
  core::SessionId id;
  std::uint64_t total = 0;     ///< logical session bytes
  std::uint64_t frontier = 0;  ///< contiguous bytes secured from 0
  bool completed = false;
  bool ok = false;
  bool gap_refused = false;  ///< a connection claimed bytes we lack
  std::size_t connections = 0;
  core::PayloadVerifier verifier;
  std::optional<core::SessionHeader> first_header;
  std::chrono::steady_clock::time_point first_accept;
  /// Connections currently attached (live fds feeding this session).
  std::vector<Conn*> attached;

  SessionState(std::uint64_t seed, bool check_content)
      : verifier(seed, check_content) {}
};

struct PosixSinkServer::StripeGroup {
  stripe::Reassembler reasm;
  core::PayloadVerifier verifier;
  std::optional<md5::Digest> trailer;
  std::optional<core::SessionHeader> first_header;
  std::chrono::steady_clock::time_point first_accept;
  std::vector<Conn*> parked;
  bool reported = false;
  bool ok = false;

  StripeGroup(const core::StripeInfo& info, std::uint64_t seed,
              bool check_content,
              std::chrono::steady_clock::time_point accepted)
      : reasm(stripe::Reassembler::Config{.session_bytes = info.session_bytes,
                                          .stripe_count = info.stripe_count,
                                          .metrics = nullptr}),
        verifier(seed, check_content),
        first_accept(accepted) {
    reasm.on_frontier = [this](std::uint64_t,
                               std::span<const std::uint8_t> data) {
      verifier.feed(data);
    };
  }
};

PosixSinkServer::PosixSinkServer(EpollLoop& loop, const InetAddress& bind,
                                 bool expect_header,
                                 std::uint64_t payload_seed,
                                 bool verify_content)
    : loop_(loop),
      expect_header_(expect_header),
      payload_seed_(payload_seed),
      verify_content_(verify_content) {
  listener_ = listen_tcp(bind, 64, &port_);
  if (!listener_.valid()) {
    throw std::system_error(errno, std::generic_category(), "sink: bind");
  }
  loop_.add(listener_.get(), EPOLLIN, [this](std::uint32_t) { on_accept(); });
}

PosixSinkServer::~PosixSinkServer() {
  if (listener_.valid()) loop_.remove(listener_.get());
  for (auto& c : conns_) {
    if (c->sock.valid()) loop_.remove(c->sock.get());
  }
}

void PosixSinkServer::on_accept() {
  for (;;) {
    Fd conn = accept_connection(listener_.get());
    if (!conn.valid()) return;
    auto c = std::make_unique<Conn>(payload_seed_, verify_content_);
    c->sock = std::move(conn);
    c->accepted_at = std::chrono::steady_clock::now();
    if (!expect_header_) c->header_done = true;
    Conn* cp = c.get();
    loop_.add(cp->sock.get(), EPOLLIN,
              [this, cp](std::uint32_t) { on_readable(cp); });
    conns_.push_back(std::move(c));
  }
}

void PosixSinkServer::on_readable(Conn* c) {
  std::uint8_t buf[64 * 1024];
  for (;;) {
    // Header phase reads exactly what the header needs.
    if (!c->header_done) {
      std::size_t want = core::kHeaderPrefixBytes > c->header_buf.size()
                             ? core::kHeaderPrefixBytes - c->header_buf.size()
                             : 0;
      if (want == 0) {
        const auto len = core::header_length(c->header_buf);
        if (!len) {
          c->failed = true;
          finish(c);
          return;
        }
        if (c->header_buf.size() >= *len) {
          c->header = core::decode_header(c->header_buf);
          c->header_done = true;
          if (c->header && c->header->stripe) {
            const core::StripeInfo& info = *c->header->stripe;
            // The lane's claimed extent must fit its plan, or reassembly
            // offers could land outside the session (decode validates the
            // block itself, not the lengths around it).
            const std::uint64_t lane_total =
                c->header->resume_offset + c->header->payload_length;
            const bool sane =
                info.mode == core::StripeMode::kContiguous
                    ? lane_total <= info.session_bytes - info.range_lo
                    : lane_total <= stripe::round_robin_lane_bytes(info);
            if (!sane) {
              c->failed = true;
              close_conn(c, std::nullopt);
              return;
            }
            auto [it, fresh] = groups_.try_emplace(c->header->session);
            if (fresh) {
              it->second = std::make_unique<StripeGroup>(
                  info, payload_seed_, verify_content_, c->accepted_at);
              it->second->first_header = c->header;
            }
            c->group = it->second.get();
            // The lane's cursor places its bytes in the merged stream; a
            // replacement lane's resume_offset skips what the dead lane
            // already delivered.
            c->cursor.emplace(info,
                              c->header->resume_offset +
                                  c->header->payload_length);
            c->cursor->skip(c->header->resume_offset);
          } else if (adopt_migrations_ && c->header &&
                     (c->header->flags & core::kFlagUnboundedStream) == 0 &&
                     !c->header->has_digest()) {
            // Adoption mode: bounded, digest-free sessions (the resumable
            // kind migration rides) are tracked by id across connections.
            adopt_session(c);
          }
          continue;
        }
        want = *len - c->header_buf.size();
      }
      const long n =
          read_some(c->sock.get(), buf, std::min(want, sizeof(buf)));
      if (n == 0) {
        c->failed = true;
        finish(c);
        return;
      }
      if (n < 0) {
        if (n == -2) {
          c->failed = true;
          finish(c);
        }
        return;
      }
      c->header_buf.insert(c->header_buf.end(), buf, buf + n);
      continue;
    }

    // Payload / trailer phase. With a header, payload_length is exact
    // (unless the unbounded-stream flag is set); headerless raw transfers
    // run until FIN.
    const bool digest = c->header && c->header->has_digest();
    const bool bounded =
        c->header &&
        (c->header->flags & core::kFlagUnboundedStream) == 0;
    const std::uint64_t payload_total =
        bounded ? c->header->payload_length : ~std::uint64_t{0};
    std::size_t want = sizeof(buf);
    if (c->payload_received < payload_total) {
      want = static_cast<std::size_t>(std::min<std::uint64_t>(
          payload_total - c->payload_received, sizeof(buf)));
    } else if (digest) {
      want = core::kDigestTrailerBytes - c->trailer.size();
      if (want == 0) want = sizeof(buf);  // drain unexpected surplus
    }
    const long n = read_some(c->sock.get(), buf, want);
    if (n == 0) {
      if (c->group) {
        finish_striped_lane(c);
      } else if (c->session) {
        // An adopted connection ending before its session completes is a
        // husk (the abandoned chain's leftover) or a mid-stream death the
        // source's resume/migration machinery recovers from: close
        // silently — the session verdict comes from complete_session.
        close_conn(c, std::nullopt);
      } else {
        finish(c);
      }
      return;
    }
    if (n < 0) {
      if (n == -2) {
        c->failed = true;
        if (c->group) {
          finish_striped_lane(c);
        } else if (c->session) {
          close_conn(c, std::nullopt);
        } else {
          finish(c);
        }
      }
      return;
    }
    if (c->payload_received < payload_total) {
      const std::span<const std::uint8_t> data(buf,
                                               static_cast<std::size_t>(n));
      bytes_received_ += static_cast<std::uint64_t>(n);
      if (c->group) {
        feed_stripe(c, data);
        c->payload_received += static_cast<std::uint64_t>(n);
      } else if (c->session) {
        SessionState* s = c->session;
        if (!feed_session(c, data)) {
          // The connection opened a gap past the stitched frontier: acked
          // bytes died with the old chain. Refuse it outright.
          c->failed = true;
          close_conn(c, core::kStatusFail);
          return;
        }
        if (s->completed) return;  // complete_session closed this conn
      } else {
        c->verifier.feed(data);
        c->payload_received += static_cast<std::uint64_t>(n);
      }
    } else if (digest && c->trailer.size() < core::kDigestTrailerBytes) {
      c->trailer.insert(c->trailer.end(), buf, buf + n);
      if (c->group && !c->group->trailer &&
          c->trailer.size() == core::kDigestTrailerBytes) {
        md5::Digest d;
        std::copy(c->trailer.begin(), c->trailer.end(), d.bytes.begin());
        c->group->trailer = d;
        maybe_complete_group(c->group);
      }
    }
  }
}

void PosixSinkServer::feed_stripe(Conn* c, std::span<const std::uint8_t> data) {
  while (!data.empty()) {
    const auto r = c->cursor->next(data.size());
    if (r.length == 0) return;  // lane overran its plan; surplus is dropped
    c->group->reasm.offer(c->header->stripe->stripe_id, r.global,
                          data.first(static_cast<std::size_t>(r.length)));
    data = data.subspan(static_cast<std::size_t>(r.length));
  }
  maybe_complete_group(c->group);
}

PosixSinkServer::SessionState* PosixSinkServer::adopt_session(Conn* c) {
  const core::SessionHeader& h = *c->header;
  // A migrate header carries (floor, remaining); the logical total is their
  // sum. Resume and original headers carry the full payload length.
  const std::uint64_t base =
      (h.is_migrate() || h.is_resume()) ? h.resume_offset : 0;
  const std::uint64_t total = h.is_migrate()
                                  ? h.resume_offset + h.payload_length
                                  : h.payload_length;
  auto [it, fresh] = sessions_.try_emplace(h.session);
  if (fresh) {
    it->second =
        std::make_unique<SessionState>(payload_seed_, verify_content_);
    SessionState* s = it->second.get();
    s->id = h.session;
    s->total = total;
    s->first_header = c->header;
    s->first_accept = c->accepted_at;
  }
  SessionState* s = it->second.get();
  ++s->connections;
  s->attached.push_back(c);
  c->session = s;
  c->session_base = base;
  return s;
}

bool PosixSinkServer::feed_session(Conn* c, std::span<const std::uint8_t> data) {
  SessionState* s = c->session;
  const std::uint64_t off = c->session_base + c->payload_received;
  c->payload_received += data.size();
  if (s->completed) return true;  // late husk bytes after the verdict
  if (off > s->frontier) {
    s->gap_refused = true;
    LSL_LOG_WARN("sink: session gap at %llu (frontier %llu); refused",
                 static_cast<unsigned long long>(off),
                 static_cast<unsigned long long>(s->frontier));
    return false;
  }
  // Discard the duplicated prefix; feed only frontier-advancing bytes so
  // the stitched MD5 covers each stream byte exactly once.
  const std::uint64_t skip = s->frontier - off;
  if (skip >= data.size()) return true;
  const auto fresh = data.subspan(static_cast<std::size_t>(skip));
  s->verifier.feed(fresh);
  s->frontier += fresh.size();
  if (s->frontier >= s->total) complete_session(s);
  return true;
}

void PosixSinkServer::complete_session(SessionState* s) {
  s->completed = true;
  s->ok = !s->gap_refused && s->verifier.ok();

  SinkResult res;
  res.verified = s->ok;
  res.payload_bytes = s->frontier;
  res.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - s->first_accept)
                    .count();
  res.header = s->first_header;

  // One status byte per attached connection, then close them all — the
  // verdict is a stream property, delivered to whichever connection is
  // still carrying the session (husks included).
  const std::uint8_t status = s->ok ? core::kStatusOk : core::kStatusFail;
  const std::vector<Conn*> attached = s->attached;  // close_conn edits it
  for (Conn* conn : attached) close_conn(conn, status);

  if (on_complete) on_complete(res);
}

std::uint64_t PosixSinkServer::session_frontier(
    const core::SessionId& id) const {
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? 0 : it->second->frontier;
}

bool PosixSinkServer::session_completed(const core::SessionId& id) const {
  const auto it = sessions_.find(id);
  return it != sessions_.end() && it->second->completed;
}

md5::Digest PosixSinkServer::session_digest(const core::SessionId& id) const {
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? md5::Digest{} : it->second->verifier.digest();
}

void PosixSinkServer::maybe_complete_group(StripeGroup* g) {
  if (g->reported || !g->reasm.complete() || !g->trailer) return;
  g->reported = true;
  g->ok = g->verifier.ok() && g->reasm.digest() == *g->trailer;

  SinkResult res;
  res.verified = g->ok;
  res.payload_bytes = g->reasm.frontier();
  res.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - g->first_accept)
                    .count();
  res.header = g->first_header;

  // Release every lane that was waiting on the merge; lanes still
  // streaming (redundant surplus) get their status at their own EOF.
  const std::vector<Conn*> parked = std::move(g->parked);
  g->parked.clear();
  const std::uint8_t status = g->ok ? core::kStatusOk : core::kStatusFail;
  for (Conn* c : parked) close_conn(c, status);

  if (on_complete) on_complete(res);
}

void PosixSinkServer::finish_striped_lane(Conn* c) {
  StripeGroup* g = c->group;
  const bool digest = c->header->has_digest();
  const bool lane_ok = !c->failed &&
                       c->payload_received == c->header->payload_length &&
                       (!digest || c->trailer.size() ==
                                       core::kDigestTrailerBytes);
  if (!lane_ok) {
    // A dead lane: close without a status byte so the source sees the
    // failure and re-stripes. The merge keeps whatever the lane delivered.
    close_conn(c, std::nullopt);
    return;
  }
  if (g->reported) {
    close_conn(c, g->ok ? core::kStatusOk : core::kStatusFail);
    return;
  }
  // Lane done, merge not: park until the last lane lands.
  c->parked = true;
  loop_.remove(c->sock.get());
  g->parked.push_back(c);
}

void PosixSinkServer::close_conn(Conn* c, std::optional<std::uint8_t> status) {
  if (c->group) {
    auto& parked = c->group->parked;
    parked.erase(std::remove(parked.begin(), parked.end(), c), parked.end());
  }
  if (c->session) {
    auto& at = c->session->attached;
    at.erase(std::remove(at.begin(), at.end(), c), at.end());
  }
  if (c->sock.valid()) {
    if (status) write_some(c->sock.get(), &*status, 1);
    if (!c->parked) loop_.remove(c->sock.get());
    c->sock.reset();
  }
  conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                              [c](const auto& p) { return p.get() == c; }),
               conns_.end());
}

void PosixSinkServer::finish(Conn* c) {
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - c->accepted_at)
                           .count();
  SinkResult res;
  res.payload_bytes = c->payload_received;
  res.seconds = elapsed;
  res.header = c->header;

  bool ok = !c->failed && c->verifier.ok();
  if (ok && c->header) {
    if ((c->header->flags & core::kFlagUnboundedStream) == 0 &&
        c->payload_received != c->header->payload_length) {
      ok = false;
    }
    if (c->header->has_digest()) {
      if (c->trailer.size() == core::kDigestTrailerBytes) {
        md5::Digest expect;
        std::copy(c->trailer.begin(), c->trailer.end(), expect.bytes.begin());
        ok = ok && (c->verifier.digest() == expect);
      } else {
        ok = false;
      }
    }
  }
  res.verified = ok;

  // End-to-end status byte, then close: the source's completion signal.
  const std::uint8_t status = ok ? core::kStatusOk : core::kStatusFail;
  write_some(c->sock.get(), &status, 1);
  loop_.remove(c->sock.get());
  c->sock.reset();

  if (on_complete) on_complete(res);

  conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                              [c](const auto& p) { return p.get() == c; }),
               conns_.end());
}

}  // namespace lsl::posix
