// ShardedLsd: one forwarding daemon per core, one port, one budget.
//
// The classic posix::Lsd is a single epoll thread — correct, but it leaves
// every other core idle (the paper's §VII scalability concern, restated
// for 2020s hardware). ShardedLsd launches N shards, each a complete
// single-threaded daemon on its own EventEngine and OS thread, all bound
// to the *same* TCP port via SO_REUSEPORT so the kernel load-balances
// accepted sessions across them. Nothing on the relay fast path is shared:
// each shard owns its ChunkPool freelist, its deadline wheel + timerfd,
// its LsdStats counters, and its `lsd.shard<i>.*` metrics bundle. What IS
// shared is exactly the set of protocols PR 7 model-checked:
//
//   * byte accounting — every shard pool draws on one buf::SharedBudget,
//     so the operator's memory ceiling and the admission-pressure
//     hysteresis are process-wide (scenario "buf_shared_budget");
//   * work injection — closures posted to a shard's PostQueue, then
//     EventEngine::wakeup() (scenario "engine_post_queue");
//   * drain — a DrainGate rendezvous: request once, every shard finishes
//     its in-flight sessions and arrives once (scenario
//     "engine_drain_gate");
//   * stats export — per-shard StatsBoards published after every dispatch
//     round and summed by readers, so `stats`/`health` aggregation never
//     takes a shard lock.
//
// Park/salvage/resume stays shard-local: a kFlagResume reconnect lands on
// a kernel-chosen shard, and one that misses its parked session is refused
// exactly like an unknown session — the source's fresh-transfer fallback
// covers it (docs/ENGINE.md discusses the trade).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "buf/pool.hpp"
#include "buf/shared_budget.hpp"
#include "engine/drain_gate.hpp"
#include "engine/event_engine.hpp"
#include "engine/post_queue.hpp"
#include "engine/shard_thread.hpp"
#include "engine/stats_board.hpp"
#include "fault/spec.hpp"
#include "health/board.hpp"
#include "live/liveness.hpp"
#include "metrics/instruments.hpp"
#include "posix/fault_driver.hpp"
#include "posix/lsd.hpp"

namespace lsl::posix {

/// Sharded-runtime configuration: the per-shard daemon template plus the
/// fleet-level knobs.
struct ShardedLsdConfig {
  /// Template every shard daemon is built from. `bind.port` 0 picks one
  /// ephemeral port that all shards then share; `pool` sizes both the
  /// per-shard chunk geometry and the single process-wide budget;
  /// `shared_pool` must be null (the runtime builds the per-shard pools).
  LsdConfig base;
  /// Number of shards (>= 1); one acceptor + event loop + OS thread each.
  int shards = 2;
  /// Optional: per-shard `lsd.shard<i>.*` / `loop.shard<i>.*` bundles are
  /// registered here (must outlive the runtime).
  metrics::Registry* registry = nullptr;
  /// Optional shared tracer (the flight recorder is multi-writer safe;
  /// must outlive the runtime).
  span::Tracer* tracer = nullptr;
  /// Optional fault plan, applied to every shard (each shard runs its own
  /// LsdFaultDriver over a copy, mirroring one-driver-per-daemon).
  std::optional<fault::FaultPlan> fault_plan;
  /// Build a per-shard HealthBoard and attach it to each shard daemon.
  /// The admin `health`/`gossip` responses then carry one fleet row set —
  /// the pessimistic cross-shard merge (health::merge_rows: worst state,
  /// minimum score, summed counters). Off by default: an unattached fleet
  /// reports byte-identical output to the pre-health daemon.
  bool health_plane = false;
  /// Knobs for the per-shard boards when `health_plane` is set.
  health::HealthConfig health;
};

/// N SO_REUSEPORT shard daemons behind one port. Threads start in the
/// constructor and are joined in the destructor.
class ShardedLsd : public AdminSource {
 public:
  /// Binds every shard (throws std::system_error if any bind fails) and
  /// starts the shard threads.
  explicit ShardedLsd(const ShardedLsdConfig& config);
  ~ShardedLsd() override;

  ShardedLsd(const ShardedLsd&) = delete;
  ShardedLsd& operator=(const ShardedLsd&) = delete;

  /// The shared TCP port (after ephemeral resolution).
  std::uint16_t port() const { return port_; }

  int shard_count() const { return static_cast<int>(shards_.size()); }

  /// The process-wide byte budget all shard pools draw on.
  buf::SharedBudget& budget() { return budget_; }
  const buf::SharedBudget& budget() const { return budget_; }

  /// Aggregate daemon counters (sum of the shard boards; exact whenever
  /// the shards are quiescent — see engine/stats_board.hpp).
  LsdStats stats() const;
  /// One shard's counters (same publication caveat).
  LsdStats shard_stats(int shard) const;

  /// Aggregate pool counters (sums the shard pools' thread-safe stats;
  /// pressure_episodes reports the shared budget's process-wide count).
  buf::PoolStats pool_stats() const;

  // --- Graceful drain (thread-safe) ---------------------------------------

  /// SIGTERM semantics, fanned out: ask every shard to drain (each refuses
  /// new sessions and finishes or parks its in-flight ones). Idempotent.
  void begin_drain();
  bool draining() const { return gate_.requested(); }
  /// True once every shard's drain has resolved (merged report final).
  bool drain_done() const { return gate_.all_done(); }
  /// Element-wise merge of the shard reports; call only after
  /// drain_done().
  live::DrainReport drain_report() const;

  // --- AdminSource (safe from the admin engine's thread) ------------------
  LsdStats admin_stats() const override { return stats(); }
  AdminHealth admin_health() const override;

  /// The per-shard health boards (empty unless config.health_plane). Each
  /// board is mutex-guarded, so a gossip poller on the control thread may
  /// merge remote rows into them while the shards observe.
  std::vector<health::HealthBoard*> health_boards() const;

 private:
  /// Cross-thread health words published alongside the stats board.
  struct HealthWords {
    std::uint64_t live_relays = 0;
    std::uint64_t parked_relays = 0;
    std::uint64_t striped_relays = 0;
    std::uint64_t draining = 0;
    std::uint64_t drain_done = 0;
  };

  struct Shard {
    int index = 0;
    std::unique_ptr<engine::EventEngine> engine;
    std::unique_ptr<buf::ChunkPool> pool;  ///< draws on the shared budget
    std::unique_ptr<metrics::LsdMetrics> lsd_metrics;
    std::unique_ptr<metrics::LoopMetrics> loop_metrics;
    std::unique_ptr<Lsd> lsd;
    std::unique_ptr<LsdFaultDriver> fault;
    /// Per-shard scorecard (mutex-guarded, so the admin thread may read
    /// rows() while the shard thread observes); null unless
    /// config.health_plane.
    std::unique_ptr<health::HealthBoard> health_board;
    engine::PostQueue posts;
    engine::StatsBoard<LsdStats> board;
    engine::StatsBoard<HealthWords> health;
    std::atomic<bool> stop{false};
    std::atomic<bool> drained{false};
    /// Written by the shard thread before its DrainGate arrival (the
    /// arrival's RMW publishes it to readers of all_done()).
    live::DrainReport report;
    /// Declared last: joined first when the Shard is destroyed, so every
    /// member above outlives the thread that uses it.
    engine::ShardThread thread;
  };

  /// Run `task` on the shard's dispatch thread (next wakeup).
  void post(Shard& s, engine::PostQueue::Task task);
  /// The shard thread: dispatch, apply fault/park timers, publish boards.
  void shard_main(Shard& s);
  void publish(Shard& s);

  ShardedLsdConfig config_;
  buf::SharedBudget budget_;
  engine::DrainGate gate_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint16_t port_ = 0;
};

}  // namespace lsl::posix
