#include "posix/epoll_loop.hpp"

#include <sys/epoll.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <stdexcept>
#include <system_error>

namespace lsl::posix {

EpollLoop::EpollLoop() : epoll_(::epoll_create1(EPOLL_CLOEXEC)) {
  if (!epoll_.valid()) {
    throw std::system_error(errno, std::generic_category(), "epoll_create1");
  }
}

void EpollLoop::add(int fd, std::uint32_t events, IoCallback cb) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw std::system_error(errno, std::generic_category(), "epoll_ctl ADD");
  }
  callbacks_[fd] = std::move(cb);
}

void EpollLoop::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw std::system_error(errno, std::generic_category(), "epoll_ctl MOD");
  }
}

void EpollLoop::remove(int fd) {
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

int EpollLoop::run_once(int timeout_ms) {
  std::array<epoll_event, 64> events;
  const int n = ::epoll_wait(epoll_.get(), events.data(),
                             static_cast<int>(events.size()), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return -1;
    throw std::system_error(errno, std::generic_category(), "epoll_wait");
  }
  std::chrono::steady_clock::time_point dispatch_start;
  if (metrics_) {
    metrics_->iterations->inc();
    metrics_->events_dispatched->inc(static_cast<std::uint64_t>(n));
    dispatch_start = std::chrono::steady_clock::now();
  }
  for (int i = 0; i < n; ++i) {
    const int fd = events[static_cast<std::size_t>(i)].data.fd;
    const auto it = callbacks_.find(fd);
    if (it == callbacks_.end()) continue;  // removed by an earlier callback
    // Copy: the callback may remove (and thus invalidate) its own entry.
    IoCallback cb = it->second;
    cb(events[static_cast<std::size_t>(i)].events);
  }
  if (metrics_ && n > 0) {
    metrics_->dispatch_ms->observe(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - dispatch_start)
            .count());
  }
  return n;
}

void EpollLoop::run() {
  stopped_ = false;
  while (!stopped_ && !callbacks_.empty()) {
    run_once(-1);
  }
}

}  // namespace lsl::posix
