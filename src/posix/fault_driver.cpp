#include "posix/fault_driver.hpp"

#include <algorithm>

#include "util/log.hpp"
#include "util/units.hpp"

namespace lsl::posix {

namespace {

std::chrono::steady_clock::duration wall(util::SimDuration d) {
  return std::chrono::nanoseconds(d);
}

}  // namespace

LsdFaultDriver::LsdFaultDriver(Lsd& lsd, fault::FaultPlan plan,
                               fault::FaultMetrics* metrics)
    : lsd_(lsd), plan_(std::move(plan)), metrics_(metrics) {}

LsdFaultDriver::~LsdFaultDriver() {
  if (armed_) lsd_.on_progress = nullptr;
}

void LsdFaultDriver::arm() {
  if (armed_) return;
  armed_ = true;
  start_ = std::chrono::steady_clock::now();
  bool hook_needed = false;
  for (const fault::FaultEvent& e : plan_.events) {
    switch (e.kind) {
      case fault::FaultKind::kFlap:
        LSL_LOG_WARN("fault-driver: %s targets a link; a daemon cannot "
                     "apply it — skipped", e.describe().c_str());
        continue;
      case fault::FaultKind::kCorrupt:
      case fault::FaultKind::kDisconnect:
        LSL_LOG_WARN("fault-driver: %s is source-side; use the client's "
                     "own knobs — skipped", e.describe().c_str());
        continue;
      default:
        break;  // every other kind maps onto a daemon knob below
    }
    if (e.byte_keyed()) {
      by_bytes_.push_back(e);
      hook_needed = true;
    } else {
      timed_.push_back({start_ + wall(e.at), e, false});
    }
  }
  if (hook_needed) {
    lsd_.on_progress = [this](std::uint64_t bytes) { on_bytes(bytes); };
  }
}

int LsdFaultDriver::next_timeout_ms() const {
  // The daemon's own wheel (liveness deadlines, park expiries, the drain
  // bound) composes in, so a host bounding run_once() by this value wakes
  // for whichever is due first.
  const int daemon = lsd_.next_timeout_ms();
  if (!armed_ || timed_.empty()) return daemon;
  const auto now = std::chrono::steady_clock::now();
  auto soonest = timed_.front().due;
  for (const Pending& p : timed_) soonest = std::min(soonest, p.due);
  int mine = 0;
  if (soonest > now) {
    mine = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(soonest - now)
            .count() + 1);
  }
  if (daemon < 0) return mine;
  return std::min(mine, daemon);
}

void LsdFaultDriver::poll() {
  if (!armed_) return;
  const auto now = std::chrono::steady_clock::now();
  // Collect-then-apply: applying an event may schedule a repair into
  // timed_, which must not be visited mid-iteration.
  std::vector<Pending> due;
  timed_.erase(std::remove_if(timed_.begin(), timed_.end(),
                              [&](const Pending& p) {
                                if (p.due > now) return false;
                                due.push_back(p);
                                return true;
                              }),
               timed_.end());
  for (const Pending& p : due) {
    if (p.repair) {
      apply_repair(p.event);
    } else {
      apply(p.event);
    }
  }
  lsd_.expire_parked();
}

void LsdFaultDriver::on_bytes(std::uint64_t bytes_relayed) {
  std::vector<fault::FaultEvent> due;
  by_bytes_.erase(std::remove_if(by_bytes_.begin(), by_bytes_.end(),
                                 [&](const fault::FaultEvent& e) {
                                   if (e.at_bytes > bytes_relayed) {
                                     return false;
                                   }
                                   due.push_back(e);
                                   return true;
                                 }),
                  by_bytes_.end());
  for (const fault::FaultEvent& e : due) apply(e);
}

void LsdFaultDriver::note_injected(fault::FaultKind kind) {
  ++injected_;
  if (metrics_) {
    const double t = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start_)
                         .count();
    metrics_->on_injected(t, kind);
  }
}

void LsdFaultDriver::apply(const fault::FaultEvent& e) {
  LSL_LOG_INFO("fault-driver: applying %s", e.describe().c_str());
  switch (e.kind) {
    case fault::FaultKind::kCrash:
      lsd_.crash();
      note_injected(e.kind);
      if (e.duration > 0) {
        timed_.push_back(
            {std::chrono::steady_clock::now() + wall(e.duration), e, true});
      }
      break;
    case fault::FaultKind::kRestart:
      lsd_.restart();  // a repair, not a fault: not counted
      break;
    case fault::FaultKind::kSynDrop:
      lsd_.set_accept_drops(e.count);
      note_injected(e.kind);
      break;
    case fault::FaultKind::kReset:
      lsd_.inject_upstream_reset();
      note_injected(e.kind);
      break;
    case fault::FaultKind::kSlow:
      lsd_.set_stalled(true);
      note_injected(e.kind);
      timed_.push_back(
          {std::chrono::steady_clock::now() + wall(e.duration), e, true});
      break;
    case fault::FaultKind::kBlackhole:
      // Against a single daemon, a blackholed link means its next hop
      // stops answering: dials launch but never complete, which is
      // exactly what the dial deadline exists to bound.
      lsd_.set_dial_blackhole(true);
      note_injected(e.kind);
      if (e.duration > 0) {
        timed_.push_back(
            {std::chrono::steady_clock::now() + wall(e.duration), e, true});
      }
      break;
    default:
      break;  // filtered at arm()
  }
}

void LsdFaultDriver::apply_repair(const fault::FaultEvent& e) {
  switch (e.kind) {
    case fault::FaultKind::kCrash:
      lsd_.restart();
      break;
    case fault::FaultKind::kSlow:
      lsd_.set_stalled(false);
      break;
    case fault::FaultKind::kBlackhole:
      lsd_.set_dial_blackhole(false);
      break;
    default:
      break;  // only crash, slow and blackhole schedule repairs
  }
}

}  // namespace lsl::posix
