// Real-socket LSL endpoints: a session source that streams a deterministic
// payload through a depot route with an MD5 trailer, and a sink server that
// receives, verifies and timestamps sessions. Both are nonblocking apps on
// an EpollLoop, so a full cascade (source -> lsd -> lsd -> sink) runs in a
// single process over loopback — which is exactly how the posix integration
// tests and the lsd_relay example drive them.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "lsl/payload.hpp"
#include "lsl/session_id.hpp"
#include "lsl/wire.hpp"
#include "md5/md5.hpp"
#include "posix/epoll_loop.hpp"
#include "posix/socket_util.hpp"
#include "posix/timer_fd.hpp"

namespace lsl::posix {

/// Source configuration.
struct PosixSourceConfig {
  /// Depot hops to cascade through (may be empty = direct to destination).
  std::vector<InetAddress> route;
  InetAddress destination;
  std::uint64_t payload_bytes = 0;
  std::uint64_t payload_seed = 1;
  bool send_digest = true;
  /// Failure injection: flip one payload byte so the sink's MD5 check must
  /// fail (tests the end-to-end integrity path).
  bool corrupt_one_byte = false;
  /// Survive mid-stream connection loss by reconnecting to the first hop
  /// with kFlagResume from the last acknowledged payload offset (requires
  /// a depot running with `lsd --resume-grace`). Forces send_digest off:
  /// an MD5 trailer cannot rewind across connections — a seeded sink still
  /// verifies content byte-for-byte. Each reconnect asks reconnect_backoff
  /// how long to wait first (a timerfd wait on the event loop, not a
  /// blocking sleep); nullopt means give up.
  bool resumable = false;
  std::function<std::optional<std::chrono::milliseconds>()>
      reconnect_backoff;
  /// Bound every dial: a connect() that has not resolved within this
  /// window counts as a connection error (resumable sessions fall into
  /// the reconnect path, others fail), so a blackholed depot cannot hang
  /// a session — or a resume — forever. Zero means unbounded.
  std::chrono::milliseconds dial_timeout{0};
  /// Nonzero stamps every header this source sends with a trace id, which
  /// each depot propagates hop-to-hop (wire version 2) and joins its spans
  /// on. Zero (the default) keeps the wire byte-identical to version 1.
  std::uint64_t trace_id = 0;
  /// Session id override: striped lanes must share one id so the sink can
  /// group them into a single reassembly. Unset generates a fresh id.
  std::optional<core::SessionId> session;
  /// Striping: stamp this lane's StripeInfo into the header (wire version
  /// 3) so the sink maps the lane's bytes back into the merged stream.
  /// payload_bytes is then the *lane's* byte count, and `resumable` is
  /// forced off — lane loss is handled above (StripedPosixSource) by
  /// re-striping onto a spare chain, not by kFlagResume.
  std::optional<core::StripeInfo> stripe;
  /// Payload filler consulted instead of the seeded generator when set.
  /// `offset` is lane-relative; striped lanes map it onto merged-stream
  /// content through a stripe::LaneCursor.
  std::function<void(std::uint64_t offset, std::span<std::uint8_t> out)>
      payload_fill;
  /// With send_digest: ship this precomputed digest instead of hashing
  /// this connection's own bytes (striped lanes all carry the merged
  /// stream's digest, which only the reassembling sink can check).
  std::optional<md5::Digest> trailer_digest;
};

/// Streams one LSL session (or a raw TCP transfer when route is empty and
/// send_digest is false — then no header is sent either).
class PosixSource {
 public:
  PosixSource(EpollLoop& loop, PosixSourceConfig config);
  ~PosixSource();

  PosixSource(const PosixSource&) = delete;
  PosixSource& operator=(const PosixSource&) = delete;

  /// Connect and start streaming. on_done(ok) fires when the peer confirms
  /// completion by closing the connection after our FIN.
  void start();

  /// Proactive mid-transfer re-selection: abandon the current chain and
  /// re-send everything past `floor` through `new_route` with kFlagMigrate.
  /// `floor` must be the sink's acknowledged stream frontier (the driver
  /// reads it from PosixSinkServer::session_frontier) — never this source's
  /// own ack counter, which counts bytes that may still be stranded in the
  /// dying chain's buffers. Fresh depots relay the migrate connection as an
  /// ordinary session; only a sink in adopt mode splices it (requires
  /// `resumable`, like the kFlagResume machinery it rides). Returns false
  /// when the source already gave up or `floor` covers the payload.
  bool migrate(std::vector<InetAddress> new_route, std::uint64_t floor);

  /// Completion callback: `ok` is false on any socket/protocol error.
  std::function<void(bool ok)> on_done;

  bool finished() const { return finished_; }

  /// Resume cycles performed (reconnects after mid-stream loss).
  std::size_t resumes() const { return resumes_; }

  /// Proactive migrations performed (mid-transfer route re-selections).
  std::size_t migrations() const { return migrations_; }

  core::SessionId session() const { return session_; }

 private:
  void on_io(std::uint32_t events);
  void pump();
  void finish(bool ok);
  /// Connect (or reconnect) and stage the session header; `offset` is the
  /// first payload byte this connection carries (>0 sets kFlagResume).
  void open_connection(std::uint64_t offset);
  /// A connection died mid-session: resume per config, or fail.
  void handle_connection_error();
  /// Refresh acked_floor_ from the kernel send-queue depth (SIOCOUTQ):
  /// bytes the peer's TCP has acknowledged — the safe resume offset.
  void note_acked();
  /// Arm the (lazily created) timerfd to fire `delay` from now.
  void arm_timer_in(std::chrono::milliseconds delay);
  void on_timer();

  EpollLoop& loop_;
  PosixSourceConfig config_;
  Fd sock_;
  /// One timerfd serves both source deadlines: bounding an in-flight dial
  /// and waking from a reconnect backoff. The purpose tags which one the
  /// next expiry means.
  enum class TimerPurpose { kNone, kDial, kBackoff };
  std::unique_ptr<TimerFd> timer_;
  TimerPurpose timer_purpose_ = TimerPurpose::kNone;
  bool connecting_ = false;
  bool write_done_ = false;
  bool finished_ = false;

  std::vector<std::uint8_t> staged_;  ///< header, then refilled chunks
  std::size_t staged_off_ = 0;
  std::uint64_t payload_left_ = 0;
  core::PayloadGenerator generator_;
  md5::Md5 hasher_;
  bool trailer_sent_ = false;
  bool corrupted_yet_ = false;
  std::uint8_t status_ = 0;  ///< sink's end-to-end status byte

  core::SessionId session_;          ///< stable across resume connections
  std::uint64_t conn_offset_ = 0;    ///< resume offset of this connection
  std::uint64_t header_wire_bytes_ = 0;
  std::uint64_t wire_written_ = 0;   ///< bytes handed to this connection
  std::uint64_t acked_floor_ = 0;    ///< payload offset known delivered
  std::size_t resumes_ = 0;
  std::size_t migrations_ = 0;
  bool migrated_ = false;  ///< headers carry kFlagMigrate from now on
  bool gave_up_ = false;   ///< terminal: budget exhausted or hard failure
};

/// Result of one received session.
struct SinkResult {
  bool verified = false;        ///< content + digest matched
  std::uint64_t payload_bytes = 0;
  double seconds = 0.0;         ///< accept -> completion wall time
  std::optional<core::SessionHeader> header;
};

/// Accepts sessions and verifies their payload streams.
class PosixSinkServer {
 public:
  /// Binds immediately (throws std::system_error on failure). Sessions are
  /// expected to carry an LSL header iff `expect_header`. With
  /// `verify_content` false, only the MD5 trailer is checked (arbitrary
  /// payloads); otherwise bytes are also compared against the generator
  /// stream seeded with `payload_seed`.
  PosixSinkServer(EpollLoop& loop, const InetAddress& bind, bool expect_header,
                  std::uint64_t payload_seed, bool verify_content = true);
  ~PosixSinkServer();

  PosixSinkServer(const PosixSinkServer&) = delete;
  PosixSinkServer& operator=(const PosixSinkServer&) = delete;

  std::uint16_t port() const { return port_; }

  /// Payload bytes accepted across all sessions so far — a cheap progress
  /// probe for drivers that need "mid-transfer" (chaos tests inject there).
  std::uint64_t bytes_received() const { return bytes_received_; }

  /// Fires once per completed session.
  std::function<void(const SinkResult&)> on_complete;

  // --- Migration adoption ----------------------------------------------------
  // With adoption on, every headered (non-striped, bounded) session is
  // tracked by id across connections: a kFlagMigrate connection splices
  // onto the original stream at its resume_offset, duplicate prefixes are
  // discarded, gaps are refused, and completion becomes a *stream*
  // property — on_complete fires exactly once, when the stitched frontier
  // reaches the session total, and husk connections (the dying chain's
  // leftovers) close silently. Off (the default), the sink behaves exactly
  // as before — one verdict per connection.

  void set_adopt_migrations(bool on) { adopt_migrations_ = on; }

  /// The session's acknowledged stream frontier — the exact floor a
  /// migrating source must resume from. 0 for unknown sessions.
  std::uint64_t session_frontier(const core::SessionId& id) const;
  bool session_completed(const core::SessionId& id) const;
  /// MD5 of the stitched stream so far (frontier-advancing bytes only, in
  /// order) — equals the whole-payload digest once the session completes.
  md5::Digest session_digest(const core::SessionId& id) const;

 private:
  struct Conn;
  /// One adopted session's ledger: the stitched frontier, the in-order
  /// verifier, and the single-shot completion latch.
  struct SessionState;
  /// One striped session's merge point: lanes sharing a session id feed a
  /// stripe::Reassembler; completed lanes park until the merge finishes,
  /// then every lane gets the end-to-end status byte at once.
  struct StripeGroup;
  void on_accept();
  void on_readable(Conn* c);
  void finish(Conn* c);
  void feed_stripe(Conn* c, std::span<const std::uint8_t> data);
  void finish_striped_lane(Conn* c);
  void maybe_complete_group(StripeGroup* g);
  void close_conn(Conn* c, std::optional<std::uint8_t> status);
  /// Adoption-mode plumbing: attach the connection to its session ledger
  /// (creating it on first sight) and feed payload at the stream offset the
  /// connection is positioned at. feed_session returns false when the
  /// connection opened a gap and must be refused.
  SessionState* adopt_session(Conn* c);
  bool feed_session(Conn* c, std::span<const std::uint8_t> data);
  /// Stream complete: stamp the verdict, fan the status byte out to every
  /// connection still attached to this session, and fire on_complete once.
  void complete_session(SessionState* s);

  EpollLoop& loop_;
  bool expect_header_;
  std::uint64_t payload_seed_;
  bool verify_content_;
  Fd listener_;
  std::uint16_t port_ = 0;
  std::uint64_t bytes_received_ = 0;
  bool adopt_migrations_ = false;
  std::vector<std::unique_ptr<Conn>> conns_;
  /// Reassembly state per striped session; kept for the server's lifetime
  /// so a late replacement lane can still join its session.
  std::map<core::SessionId, std::unique_ptr<StripeGroup>> groups_;
  /// Adopted-session ledgers (adopt mode only); kept for the server's
  /// lifetime so frontier/digest stay queryable after completion.
  std::map<core::SessionId, std::unique_ptr<SessionState>> sessions_;
};

}  // namespace lsl::posix
