// Single-threaded epoll event loop — now the epoll backend of the
// engine layer (engine/epoll_engine.hpp, behind the engine::EventEngine
// interface). This header keeps the historical lsl::posix::EpollLoop
// spelling: tests, tools, and examples construct the concrete backend
// directly, while the daemon itself is written against EventEngine so an
// io_uring backend can slot in later.
#pragma once

#include "engine/epoll_engine.hpp"
#include "engine/event_engine.hpp"

namespace lsl::posix {

using EpollLoop = engine::EpollEngine;

}  // namespace lsl::posix
