// Single-threaded epoll event loop.
//
// The real-socket half of the repository (the lsd daemon, the posix client
// and sink) is written against this loop so a whole relay chain — client,
// several depots, sink — can run in one process over loopback, mirroring
// how the simulated apps share one event queue.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "metrics/instruments.hpp"
#include "posix/fd.hpp"

namespace lsl::posix {

/// Edge-triggered-free (level-triggered) epoll wrapper.
class EpollLoop {
 public:
  /// Callback receives the ready EPOLL* event mask.
  using IoCallback = std::function<void(std::uint32_t events)>;

  EpollLoop();
  ~EpollLoop() = default;

  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  /// Register `fd` for `events` (EPOLLIN/EPOLLOUT/...). The callback stays
  /// installed until remove().
  void add(int fd, std::uint32_t events, IoCallback cb);

  /// Change the interest mask of a registered fd.
  void modify(int fd, std::uint32_t events);

  /// Deregister; safe to call from inside the fd's own callback.
  void remove(int fd);

  /// Dispatch ready events once, waiting up to `timeout_ms` (-1 = forever).
  /// Returns the number of events handled, or -1 on EINTR.
  int run_once(int timeout_ms = -1);

  /// Loop until stop() is called or no fds remain registered.
  void run();

  /// Make run() return after the current dispatch round.
  void stop() { stopped_ = true; }

  std::size_t watched_count() const { return callbacks_.size(); }

  /// Attach a metrics bundle (must outlive the loop's use); null detaches.
  /// Dispatch timing is only measured while a bundle is attached, so the
  /// unmetered loop pays no clock_gettime cost.
  void set_metrics(metrics::LoopMetrics* m) { metrics_ = m; }

 private:
  Fd epoll_;
  std::unordered_map<int, IoCallback> callbacks_;
  metrics::LoopMetrics* metrics_ = nullptr;
  bool stopped_ = false;
};

}  // namespace lsl::posix
