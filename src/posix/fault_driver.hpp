// Scripted fault injection against a live lsd daemon — the real-socket
// counterpart of fault::FaultInjector, sharing the same FaultPlan grammar
// (`lsd --fault-spec=...`). Time-keyed events are measured on a steady
// clock from arm(); byte-keyed events ride the daemon's on_progress hook.
//
// The driver has no thread of its own: the host's event loop drives it by
// calling poll() after every EpollLoop::run_once(), bounding the wait with
// next_timeout_ms() so due events fire promptly. poll() also expires the
// daemon's parked sessions, which an idle epoll loop would never revisit.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "fault/fault_metrics.hpp"
#include "fault/spec.hpp"
#include "posix/lsd.hpp"

namespace lsl::posix {

/// Applies a FaultPlan to one Lsd instance.
class LsdFaultDriver {
 public:
  /// Events targeting any depot name apply to `lsd` — a single daemon
  /// cannot tell depot names apart; run one driver per daemon with a
  /// pre-filtered plan when cascading several. `metrics` (optional) gets
  /// the `fault.*` instruments; must outlive the driver.
  LsdFaultDriver(Lsd& lsd, fault::FaultPlan plan,
                 fault::FaultMetrics* metrics = nullptr);
  ~LsdFaultDriver();

  LsdFaultDriver(const LsdFaultDriver&) = delete;
  LsdFaultDriver& operator=(const LsdFaultDriver&) = delete;

  /// Start the clock and install the byte-offset hook.
  void arm();

  /// Milliseconds until the next due deadline — the sooner of this plan's
  /// time-keyed events and the daemon's own wheel (liveness deadlines,
  /// park expiries, the drain bound) — 0 when one is already overdue, or
  /// -1 when nothing is scheduled anywhere. Feed to EpollLoop::run_once
  /// so the loop wakes in time.
  int next_timeout_ms() const;

  /// Apply every due event; call after each run_once().
  void poll();

  /// Faults applied so far (repairs — restarts, unstalls — not counted).
  std::uint64_t injected() const { return injected_; }

 private:
  struct Pending {
    std::chrono::steady_clock::time_point due;
    fault::FaultEvent event;
    bool repair = false;  ///< restore action (restart / unstall)
  };

  void apply(const fault::FaultEvent& e);
  void apply_repair(const fault::FaultEvent& e);
  void on_bytes(std::uint64_t bytes_relayed);
  void note_injected(fault::FaultKind kind);

  Lsd& lsd_;
  fault::FaultPlan plan_;
  fault::FaultMetrics* metrics_;
  std::chrono::steady_clock::time_point start_;
  std::vector<Pending> timed_;
  std::vector<fault::FaultEvent> by_bytes_;
  std::uint64_t injected_ = 0;
  bool armed_ = false;
};

}  // namespace lsl::posix
