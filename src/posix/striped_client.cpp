#include "posix/striped_client.hpp"

#include <algorithm>
#include <utility>

#include "lsl/payload.hpp"
#include "util/contract.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace lsl::posix {

namespace {

/// Lane-relative offsets onto merged-stream content, like the simulator's
/// filler (src/exp/striped.cpp): a LaneCursor maps, the seeded generator
/// produces.
struct LaneFiller {
  core::StripeInfo info;
  std::uint64_t lane_total;
  core::PayloadGenerator gen;
  stripe::LaneCursor cursor;
  std::uint64_t pos = 0;

  LaneFiller(const core::StripeInfo& i, std::uint64_t total,
             std::uint64_t seed)
      : info(i), lane_total(total), gen(seed), cursor(i, total) {}

  void fill(std::uint64_t offset, std::span<std::uint8_t> out) {
    if (offset != pos) {
      cursor = stripe::LaneCursor(info, lane_total);
      cursor.skip(offset);
      pos = offset;
    }
    std::size_t done = 0;
    while (done < out.size()) {
      const auto r = cursor.next(out.size() - done);
      if (r.length == 0) break;
      gen.seek(r.global);
      gen.generate(out.subspan(done, static_cast<std::size_t>(r.length)));
      done += static_cast<std::size_t>(r.length);
      pos += r.length;
    }
  }
};

}  // namespace

StripedPosixSource::StripedPosixSource(EpollLoop& loop,
                                       StripedPosixSourceConfig config)
    : loop_(loop), config_(std::move(config)) {
  const std::size_t count = config_.lane_routes.size();
  LSL_PRECONDITION(count >= 2 && count <= core::kMaxStripes,
                   "striped source: lane count out of range");
  restripes_left_ = config_.max_restripes;

  if (config_.session) {
    session_ = *config_.session;
  } else {
    util::Rng rng(config_.payload_seed ^ 0xabcdef);
    session_ = core::SessionId::generate(rng);
  }
  session_digest_ =
      core::stream_digest(config_.payload_seed, config_.payload_bytes);
  plan_ = stripe::StripePlan::round_robin(
      config_.payload_bytes, static_cast<std::uint16_t>(count),
      config_.chunk, config_.redundancy);

  lanes_.resize(count);
  for (std::size_t j = 0; j < count; ++j) {
    lanes_[j].info = plan_.lanes[j];
    lanes_[j].total = plan_.lane_bytes[j];
    lanes_[j].route = config_.lane_routes[j];
  }
}

void StripedPosixSource::start() {
  for (std::size_t j = 0; j < lanes_.size(); ++j) launch_lane(j);
}

void StripedPosixSource::launch_lane(std::size_t li) {
  Lane& lane = lanes_[li];
  PosixSourceConfig scfg;
  scfg.route = lane.route;
  scfg.destination = config_.destination;
  scfg.payload_bytes = lane.total;
  scfg.payload_seed = config_.payload_seed;
  scfg.send_digest = true;
  scfg.dial_timeout = config_.dial_timeout;
  scfg.trace_id = config_.trace_id;
  scfg.session = session_;
  scfg.stripe = lane.info;
  scfg.trailer_digest = session_digest_;
  auto filler = std::make_shared<LaneFiller>(lane.info, lane.total,
                                             config_.payload_seed);
  scfg.payload_fill = [filler](std::uint64_t off,
                               std::span<std::uint8_t> out) {
    filler->fill(off, out);
  };
  lane.source = std::make_unique<PosixSource>(loop_, std::move(scfg));
  lane.source->on_done = [this, li](bool ok) { on_lane_done(li, ok); };
  lane.source->start();
}

void StripedPosixSource::on_lane_done(std::size_t li, bool ok) {
  if (finished_) return;
  Lane& lane = lanes_[li];
  if (ok) {
    // The status byte is group-level: one confirmed lane means the sink
    // verified the whole merged stream.
    lane.settled = true;
    session_ok_ = true;
    maybe_finish();
    return;
  }
  if (session_ok_) {
    // Merge already confirmed; a lane dying afterwards changes nothing.
    lane.settled = true;
    maybe_finish();
    return;
  }
  lane.dead = true;
  ++stripes_lost_;
  LSL_LOG_WARN("striped source: lane %zu lost (%s)", li,
               lane.route.empty() ? "direct"
                                  : lane.route.front().to_string().c_str());
  if (coverage_without_dead()) {
    lane.settled = true;
    LSL_LOG_INFO("striped source: redundancy covers lane %zu", li);
    maybe_finish();
    return;
  }
  if (restripes_left_ == 0 || config_.spare_routes.empty()) {
    LSL_LOG_WARN("striped source: no spare chain for lane %zu; giving up",
                 li);
    fail_all();
    return;
  }
  --restripes_left_;
  lane.route = config_.spare_routes.front();
  config_.spare_routes.erase(config_.spare_routes.begin());
  ++stripes_recovered_;
  // Only first-hop ACKs are visible here, and a crashed depot may have
  // acked bytes it never relayed — so the replacement resends the whole
  // lane and the sink's reassembler drops what it already holds.
  retransmitted_ += lane.total;
  timers_.push_back(nullptr);
  auto& slot = timers_.back();
  slot = std::make_unique<TimerFd>(loop_, [this, li] {
    Lane& l = lanes_[li];
    if (finished_ || l.settled) return;
    l.dead = false;
    LSL_LOG_INFO("striped source: re-striping lane %zu onto %s", li,
                 l.route.empty() ? "direct"
                                 : l.route.front().to_string().c_str());
    launch_lane(li);
  });
  slot->arm(TimerFd::now_ns() +
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                config_.restripe_delay)
                .count());
}

bool StripedPosixSource::coverage_without_dead() const {
  const std::uint16_t count = plan_.stripe_count();
  std::vector<bool> covered(count, false);
  for (const Lane& l : lanes_) {
    if (l.dead) continue;
    for (std::uint16_t k = 0; k <= l.info.redundancy; ++k) {
      covered[(l.info.stripe_id + k) % count] = true;
    }
  }
  return std::all_of(covered.begin(), covered.end(),
                     [](bool b) { return b; });
}

void StripedPosixSource::maybe_finish() {
  if (finished_) return;
  for (const Lane& lane : lanes_) {
    if (lane.settled) continue;
    if (lane.dead) return;  // a re-stripe is pending for this lane
    if (!(lane.source && lane.source->finished())) return;
  }
  finished_ = true;
  timers_.clear();
  if (on_done) on_done(session_ok_);
}

void StripedPosixSource::fail_all() {
  if (finished_) return;
  finished_ = true;
  timers_.clear();
  // Tearing the sources down closes their sockets; the sink sees dead
  // lanes and keeps whatever it merged (a later session is a fresh id).
  for (Lane& lane : lanes_) lane.source.reset();
  if (on_done) on_done(false);
}

}  // namespace lsl::posix
