#include "posix/socket_util.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/tcp.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace lsl::posix {

sockaddr_in InetAddress::to_sockaddr() const {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(addr);
  sa.sin_port = htons(port);
  return sa;
}

std::string InetAddress::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u:%u", (addr >> 24) & 255,
                (addr >> 16) & 255, (addr >> 8) & 255, addr & 255, port);
  return buf;
}

std::optional<std::uint32_t> parse_ipv4(const std::string& dotted) {
  in_addr a{};
  if (::inet_pton(AF_INET, dotted.c_str(), &a) != 1) return std::nullopt;
  return ntohl(a.s_addr);
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool set_nodelay(int fd) {
  const int one = 1;
  return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) == 0;
}

Fd listen_tcp(const InetAddress& bind_addr, int backlog,
              std::uint16_t* bound_port, bool reuse_port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return {};
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuse_port) {
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));
  }
  sockaddr_in sa = bind_addr.to_sockaddr();
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    return {};
  }
  if (!set_nonblocking(fd.get())) return {};
  if (::listen(fd.get(), backlog) != 0) return {};
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &len) ==
        0) {
      *bound_port = ntohs(actual.sin_port);
    }
  }
  return fd;
}

Fd connect_tcp(const InetAddress& remote) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return {};
  if (!set_nonblocking(fd.get())) return {};
  set_nodelay(fd.get());
  sockaddr_in sa = remote.to_sockaddr();
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 &&
      errno != EINPROGRESS) {
    return {};
  }
  return fd;
}

int connect_result(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) return errno;
  return err;
}

Fd accept_connection(int listen_fd) {
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) return {};
  Fd out(fd);
  set_nonblocking(fd);
  set_nodelay(fd);
  return out;
}

long write_some(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t total = 0;
  while (total < len) {
    // MSG_NOSIGNAL: a peer reset between poll and write must surface as
    // EPIPE, not a process-killing SIGPIPE (fault injection relies on it).
    const ssize_t n = ::send(fd, data + total, len - total, MSG_NOSIGNAL);
    if (n > 0) {
      total += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return -1;
  }
  return static_cast<long>(total);
}

long writev_some(int fd, const struct iovec* iov, int iovcnt) {
  for (;;) {
    msghdr msg{};
    // sendmsg's iovec is mutation-free here (one shot, no retry walk);
    // const_cast bridges the POSIX struct's non-const field.
    msg.msg_iov = const_cast<struct iovec*>(iov);
    msg.msg_iovlen = static_cast<decltype(msg.msg_iovlen)>(iovcnt);
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n >= 0) return static_cast<long>(n);
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    if (errno == EINTR) continue;
    return -1;
  }
}

long read_some(int fd, std::uint8_t* data, std::size_t len) {
  while (true) {
    const ssize_t n = ::read(fd, data, len);
    if (n > 0) return static_cast<long>(n);
    if (n == 0) return 0;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    if (errno == EINTR) continue;
    return -2;
  }
}

std::size_t make_pipe(Fd* rd, Fd* wr) {
  int fds[2];
  if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) != 0) return 0;
  rd->reset(fds[0]);
  wr->reset(fds[1]);
  // Deliberately left at the kernel's default capacity (64 KiB). Span
  // profiling (span.stream_window) showed F_SETPIPE_SZ to 256 KiB / 1 MiB
  // does let one splice move a whole window per wakeup, but bought no
  // aggregate throughput under concurrent sessions — the loop is bounded
  // elsewhere, and bigger bursts only make per-turn work less fair. See
  // docs/MEMORY.md ("Profiling the splice path with stream windows").
  const int cap = ::fcntl(fds[0], F_GETPIPE_SZ);
  // Linux's default pipe capacity; used when F_GETPIPE_SZ is unsupported.
  return cap > 0 ? static_cast<std::size_t>(cap) : 65536u;
}

long splice_some(int in_fd, int out_fd, std::size_t len) {
  for (;;) {
    const ssize_t n =
        ::splice(in_fd, nullptr, out_fd, nullptr, len,
                 SPLICE_F_MOVE | SPLICE_F_NONBLOCK);
    if (n > 0) return static_cast<long>(n);
    if (n == 0) return 0;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    if (errno == EINTR) continue;
    if (errno == EINVAL) return -3;  // fds unspliceable: fall back for good
    return -2;
  }
}

}  // namespace lsl::posix
