// timerfd wrapper: turns a DeadlineWheel due-instant into an epoll wakeup.
//
// The daemon's deadlines must fire even when no socket is ready — a silent
// peer generates no events, which is exactly the case liveness exists to
// catch. A TimerFd registers in the same EpollLoop as the sockets; arming
// it at the wheel's next_due() makes the loop's plain run() wake for
// deadlines with no host-side polling and no computed-timeout plumbing.
#pragma once

#include <cstdint>
#include <functional>

#include "posix/epoll_loop.hpp"
#include "posix/fd.hpp"

namespace lsl::posix {

/// A CLOCK_MONOTONIC timerfd registered in an EpollLoop.
class TimerFd {
 public:
  /// Creates the timerfd (disarmed) and registers it for EPOLLIN; `on_fire`
  /// runs whenever the armed instant passes. Throws std::system_error if
  /// the timer cannot be created.
  TimerFd(EpollLoop& loop, std::function<void()> on_fire);
  ~TimerFd();

  TimerFd(const TimerFd&) = delete;
  TimerFd& operator=(const TimerFd&) = delete;

  /// Current CLOCK_MONOTONIC time in nanoseconds — the timebase armed
  /// instants are expressed in (and the one the daemon's DeadlineWheel
  /// runs on).
  static std::int64_t now_ns();

  /// Arm (or re-arm) for absolute monotonic instant `due_ns`; an instant
  /// at or before now fires on the next loop turn. Arming at the instant
  /// already armed is a no-op (skips the syscall).
  void arm(std::int64_t due_ns);

  /// Disarm without unregistering.
  void disarm();

  bool armed() const { return armed_; }
  int fd() const { return fd_.get(); }

 private:
  void on_readable();

  EpollLoop& loop_;
  Fd fd_;
  std::function<void()> on_fire_;
  bool armed_ = false;
  std::int64_t armed_due_ = 0;
};

}  // namespace lsl::posix
