// timerfd wrapper — moved to the engine layer (engine/timer.hpp) as
// engine::EngineTimer; this header keeps the historical lsl::posix::TimerFd
// spelling for existing call sites.
#pragma once

#include "engine/timer.hpp"

namespace lsl::posix {

using TimerFd = engine::EngineTimer;

}  // namespace lsl::posix
