// RAII file descriptor — moved to the engine layer (engine/fd.hpp); this
// header keeps the historical lsl::posix spelling for existing call sites.
#pragma once

#include "engine/fd.hpp"

namespace lsl::posix {

using Fd = engine::Fd;

}  // namespace lsl::posix
