// lsd — the Logistical Session Layer forwarding daemon, on real sockets.
//
// This is the artifact the paper describes in §IV.A: a user-level process,
// running without privileges, that "very simply establishes a transport to
// transport binding based on the LSL header information". It accepts a
// session connection, reads the LSL header (src/lsl/wire.hpp — the same
// codec the simulator uses, so the two are wire compatible), dials the next
// hop of the loose source route, forwards the popped header, and then
// relays bytes through a bounded ring buffer. When the buffer fills, it
// stops reading and lets TCP flow control push back on the upstream
// sublink — the hop-by-hop buffering the paper replaces end-to-end
// buffering with.
//
// Single-threaded, nonblocking, driven by an EpollLoop; multiple relays
// multiplex over one loop, and several Lsd instances (a cascade) can share
// a loop in one process for testing.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "lsl/wire.hpp"
#include "metrics/instruments.hpp"
#include "posix/epoll_loop.hpp"
#include "posix/socket_util.hpp"
#include "util/contract.hpp"

namespace lsl::posix {

/// Daemon configuration.
struct LsdConfig {
  InetAddress bind = InetAddress::loopback(0);  ///< port 0 = ephemeral
  std::size_t buffer_bytes = 1024 * 1024;       ///< per-session relay ring
};

/// Why a relay session failed (the largest contributor wins; a session
/// counts under exactly one reason).
enum class LsdFailReason {
  kNone,       ///< session completed — not a failure
  kDial,       ///< downstream connect() refused / unreachable
  kHeader,     ///< malformed or truncated LSL header
  kPeerReset,  ///< connection error (reset/broken pipe) mid-relay
  kOther,      ///< shutdown teardown, premature downstream EOF, ...
};

/// Lifecycle of one relay session, validated by relay_transition_table().
///
/// kDone is terminal: a finished relay's sockets are out of the loop and
/// its buffers are dead — any attempt to pump it again is the PR 1
/// use-after-free class, and now aborts as a forbidden kDone edge instead
/// of corrupting the heap.
enum class RelayState {
  kHeader,  ///< reading the upstream session header
  kDial,    ///< header parsed, downstream connect in progress
  kStream,  ///< relaying payload / reverse-path bytes
  kDone,    ///< finished (success or failure); terminal
};

/// Human-readable relay state name (diagnostics).
const char* to_string(RelayState s);

/// Number of RelayState values (TransitionTable dimension).
inline constexpr std::size_t kRelayStateCount = 4;

/// Legal edges of the relay lifecycle; see RelayState.
const util::TransitionTable<RelayState, kRelayStateCount>&
relay_transition_table();

/// Daemon counters.
struct LsdStats {
  std::uint64_t sessions_accepted = 0;
  std::uint64_t sessions_completed = 0;
  std::uint64_t sessions_failed = 0;
  std::uint64_t bytes_relayed = 0;
  // Failure-reason breakdown; the four reasons sum to sessions_failed.
  std::uint64_t fail_dial = 0;
  std::uint64_t fail_header = 0;
  std::uint64_t fail_peer_reset = 0;
  std::uint64_t fail_other = 0;
};

/// One forwarding daemon instance.
class Lsd {
 public:
  /// Binds and starts listening immediately; throws std::system_error if
  /// the socket cannot be bound.
  Lsd(EpollLoop& loop, const LsdConfig& config);
  ~Lsd();

  Lsd(const Lsd&) = delete;
  Lsd& operator=(const Lsd&) = delete;

  /// Actual bound port (after ephemeral resolution).
  std::uint16_t port() const { return port_; }

  const LsdStats& stats() const { return stats_; }

  /// Attach a metrics bundle (must outlive the daemon); null detaches.
  void set_metrics(metrics::LsdMetrics* m) { metrics_ = m; }

  /// Stop accepting and tear down all live relays.
  void shutdown();

 private:
  struct Relay;

  void on_accept();
  void on_upstream(Relay* r, std::uint32_t events);
  void on_downstream(Relay* r, std::uint32_t events);
  // The pump/flush helpers may finish() the relay on error; they return
  // false when they did, so callers must not keep driving `r`. A finished
  // relay's memory stays valid (parked in graveyard_) until the next safe
  // point, so a buggy late touch trips the kDone contract instead of
  // reading freed memory.
  bool pump_upstream(Relay* r);
  bool pump_downstream(Relay* r);
  bool flush_reverse(Relay* r);
  void update_interest(Relay* r);
  void finish(Relay* r, bool ok,
              LsdFailReason reason = LsdFailReason::kOther);
  /// Free relays finished on earlier event-loop turns. Never called with a
  /// graveyard relay on the call stack.
  void reap_finished();

  EpollLoop& loop_;
  LsdConfig config_;
  Fd listener_;
  std::uint16_t port_ = 0;
  LsdStats stats_;
  metrics::LsdMetrics* metrics_ = nullptr;
  /// Live relays, keyed by identity for O(1) finish().
  std::unordered_map<Relay*, std::unique_ptr<Relay>> relays_;
  /// Finished relays awaiting reap_finished() (deferred deletion).
  std::vector<std::unique_ptr<Relay>> graveyard_;
};

}  // namespace lsl::posix
