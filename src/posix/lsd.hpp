// lsd — the Logistical Session Layer forwarding daemon, on real sockets.
//
// This is the artifact the paper describes in §IV.A: a user-level process,
// running without privileges, that "very simply establishes a transport to
// transport binding based on the LSL header information". It accepts a
// session connection, reads the LSL header (src/lsl/wire.hpp — the same
// codec the simulator uses, so the two are wire compatible), dials the next
// hop of the loose source route, forwards the popped header, and then
// relays bytes through a bounded ring buffer. When the buffer fills, it
// stops reading and lets TCP flow control push back on the upstream
// sublink — the hop-by-hop buffering the paper replaces end-to-end
// buffering with.
//
// Single-threaded, nonblocking, driven by an EpollLoop; multiple relays
// multiplex over one loop, and several Lsd instances (a cascade) can share
// a loop in one process for testing.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "buf/chunk_ring.hpp"
#include "buf/pool.hpp"
#include "health/board.hpp"
#include "live/deadline_wheel.hpp"
#include "live/live_metrics.hpp"
#include "live/liveness.hpp"
#include "lsl/session_id.hpp"
#include "lsl/wire.hpp"
#include "metrics/instruments.hpp"
#include "posix/epoll_loop.hpp"
#include "posix/socket_util.hpp"
#include "posix/timer_fd.hpp"
#include "span/span.hpp"
#include "util/contract.hpp"

namespace lsl::posix {

/// Daemon configuration.
struct LsdConfig {
  InetAddress bind = InetAddress::loopback(0);  ///< port 0 = ephemeral
  /// Per-session buffering cap. Sessions no longer own a flat ring of this
  /// size: they draw 64 KiB chunks from the daemon-wide pool on demand, up
  /// to this much each, so an idle session costs nothing.
  std::size_t buffer_bytes = 1024 * 1024;
  /// Park window for sessions whose upstream connection died mid-stream:
  /// the relay salvages whatever the kernel still holds, keeps its
  /// downstream connection open, and waits this long for the source to
  /// reconnect with kFlagResume before declaring the session failed.
  /// 0 (the default, documented in docs/PROTOCOL.md §6) disables
  /// resumption — upstream loss fails the session immediately.
  std::chrono::milliseconds resume_grace{0};
  /// Chunk-pool sizing (chunk size, daemon-wide budget, admission
  /// watermarks; see docs/MEMORY.md) for the daemon's own pool. Ignored
  /// when `shared_pool` is set.
  buf::PoolConfig pool;
  /// Optional externally-owned pool (several daemons in one process can
  /// share one budget); must outlive the daemon. Null: the daemon builds
  /// its own from `pool`.
  buf::ChunkPool* shared_pool = nullptr;
  /// Linux splice()-through-pipe zero-copy fast path: while a relay has
  /// nothing buffered in user space, payload moves fd→fd through a kernel
  /// pipe. Falls back to pooled chunks transparently (per relay) when the
  /// kernel refuses; disable to force the copy path everywhere.
  bool use_splice = true;
  /// Liveness deadlines (header/dial/idle/stall) and the graceful-drain
  /// bound, all default-off; see src/live/liveness.hpp and the timeout
  /// table in docs/PROTOCOL.md. When any per-relay deadline is set the
  /// daemon arms a timerfd in its loop, so deadlines fire even while no
  /// socket is ready.
  live::LivenessConfig liveness;
  /// Bind the listener with SO_REUSEPORT so several daemons (the shards
  /// of a posix::ShardedLsd) can share one port and let the kernel
  /// load-balance accepts. Off for the classic single daemon.
  bool reuse_port = false;
};

/// Why a relay session failed (the largest contributor wins; a session
/// counts under exactly one reason).
enum class LsdFailReason {
  kNone,       ///< session completed — not a failure
  kDial,       ///< downstream connect() refused / unreachable
  kHeader,     ///< malformed or truncated LSL header
  kPeerReset,  ///< connection error (reset/broken pipe) mid-relay
  kTimeout,    ///< a liveness deadline fired (header/dial/idle/stall)
  kOther,      ///< shutdown teardown, premature downstream EOF, ...
};

/// Lifecycle of one relay session, validated by relay_transition_table().
///
/// kDone is terminal: a finished relay's sockets are out of the loop and
/// its buffers are dead — any attempt to pump it again is the PR 1
/// use-after-free class, and now aborts as a forbidden kDone edge instead
/// of corrupting the heap.
enum class RelayState {
  kHeader,  ///< reading the upstream session header
  kDial,    ///< header parsed, downstream connect in progress
  kStream,  ///< relaying payload / reverse-path bytes
  kDone,    ///< finished (success or failure); terminal
};

/// Human-readable relay state name (diagnostics).
const char* to_string(RelayState s);

/// Number of RelayState values (TransitionTable dimension).
inline constexpr std::size_t kRelayStateCount = 4;

/// Legal edges of the relay lifecycle; see RelayState.
const util::TransitionTable<RelayState, kRelayStateCount>&
relay_transition_table();

/// Daemon counters.
struct LsdStats {
  std::uint64_t sessions_accepted = 0;
  std::uint64_t sessions_completed = 0;
  std::uint64_t sessions_failed = 0;
  /// Connections refused at accept because the pool crossed its high
  /// watermark (admission control; distinct from injected accepts_dropped
  /// so callers can tell backpressure from chaos).
  std::uint64_t sessions_refused = 0;
  std::uint64_t bytes_relayed = 0;
  /// Of bytes_relayed, bytes that moved through the splice fast path
  /// without crossing user space.
  std::uint64_t bytes_spliced = 0;
  // Failure-reason breakdown; the five reasons sum to sessions_failed.
  std::uint64_t fail_dial = 0;
  std::uint64_t fail_header = 0;
  std::uint64_t fail_peer_reset = 0;
  std::uint64_t fail_timeout = 0;
  std::uint64_t fail_other = 0;
  // Resume / fault-injection activity.
  std::uint64_t sessions_parked = 0;   ///< upstream died, session kept
  std::uint64_t sessions_resumed = 0;  ///< kFlagResume rebinds completed
  std::uint64_t accepts_dropped = 0;   ///< injected accept refusals
  // Liveness-deadline breakdown; the four classes sum to fail_timeout.
  std::uint64_t timeouts_header = 0;
  std::uint64_t timeouts_dial = 0;
  std::uint64_t timeouts_idle = 0;
  std::uint64_t timeouts_stall = 0;
  /// Connections refused at accept because a graceful drain is in
  /// progress (distinct from pool-pressure sessions_refused).
  std::uint64_t sessions_refused_drain = 0;
};

/// Element-wise sum (aggregating per-shard counters at export).
LsdStats operator+(const LsdStats& a, const LsdStats& b);

/// The `health` snapshot an admin endpoint reports.
struct AdminHealth {
  std::uint16_t port = 0;
  std::size_t live_relays = 0;
  std::size_t parked_relays = 0;
  bool draining = false;
  bool drain_done = false;
  /// Shard count; 0 = classic single daemon (the field is then omitted
  /// from the health JSON, keeping the historical output byte-identical).
  int shards = 0;
  /// Live relays that are lanes of striped (wire v3) sessions; 0 also
  /// omits the field from the health JSON, same bargain as `shards`.
  std::size_t stripes = 0;
  LsdStats stats;
  /// Per-depot scorecard rows (next hops this daemon has dialed, scored by
  /// its HealthBoard). Empty — and omitted from the health JSON, keeping
  /// the historical output byte-identical — when no board is attached.
  /// The sharded daemon merges its shards' rows pessimistically
  /// (health::merge_rows). Also what the admin `gossip` command serves.
  std::vector<health::DepotHealth> depots;
};

/// What an admin endpoint needs from the daemon behind it — implemented by
/// the single-threaded Lsd directly and by posix::ShardedLsd as a
/// cross-shard aggregation. Both methods must be safe to call from the
/// thread running the AdminServer's engine.
class AdminSource {
 public:
  virtual ~AdminSource() = default;
  virtual LsdStats admin_stats() const = 0;
  virtual AdminHealth admin_health() const = 0;
};

/// One forwarding daemon instance.
class Lsd : public AdminSource {
 public:
  /// Binds and starts listening immediately; throws std::system_error if
  /// the socket cannot be bound. The daemon is written against the
  /// abstract EventEngine, so any backend (epoll today, io_uring later)
  /// can drive it.
  Lsd(engine::EventEngine& loop, const LsdConfig& config);
  ~Lsd();

  Lsd(const Lsd&) = delete;
  Lsd& operator=(const Lsd&) = delete;

  /// Actual bound port (after ephemeral resolution).
  std::uint16_t port() const { return port_; }

  const LsdStats& stats() const { return stats_; }

  // AdminSource (the single-daemon admin endpoint reads straight through).
  LsdStats admin_stats() const override { return stats_; }
  AdminHealth admin_health() const override {
    AdminHealth h;
    h.port = port_;
    h.live_relays = live_relays();
    h.parked_relays = parked_relays();
    h.draining = draining_;
    h.drain_done = drain_done_;
    h.stripes = striped_relays();
    h.stats = stats_;
    if (health_ != nullptr) h.depots = health_->rows();
    return h;
  }

  /// The chunk pool relays buffer through (daemon-owned or shared).
  buf::ChunkPool& pool() { return *pool_; }
  const buf::ChunkPool& pool() const { return *pool_; }

  /// Attach a metrics bundle (must outlive the daemon); null detaches.
  void set_metrics(metrics::LsdMetrics* m) { metrics_ = m; }

  /// Attach the liveness instruments (`live.*`); null detaches.
  void set_live_metrics(live::LiveMetrics* m) { live_metrics_ = m; }

  /// Attach a depot health board (must outlive the daemon); null detaches.
  /// With a board attached the daemon scores the next hops it dials —
  /// dial failures and liveness timeouts demote, completed relays promote
  /// and feed the observed-bps EWMA, parks/salvages mark the upstream
  /// peer — and the admin `health` response gains per-depot rows (the
  /// `gossip` command serves the same rows to polling peers). Off by
  /// default: an unattached daemon behaves — and reports — exactly as
  /// before.
  void set_health_board(health::HealthBoard* b) { health_ = b; }
  health::HealthBoard* health_board() const { return health_; }

  /// Attach a span tracer (must outlive the daemon); null detaches. Off by
  /// default; even when attached, spans are only emitted for sessions whose
  /// wire header carries a trace id (version 2), so untraced traffic costs
  /// one branch per lifecycle edge. Times are CLOCK_MONOTONIC seconds —
  /// one machine-wide timebase, so per-daemon dumps from a multi-process
  /// cascade merge directly (tools/lsl_spans).
  void set_tracer(span::Tracer* t) { tracer_ = t; }

  /// Live (unfinished) relays, parked ones included — the admin-socket
  /// health snapshot.
  std::size_t live_relays() const { return relays_.size(); }
  std::size_t parked_relays() const { return parked_.size(); }
  /// Live relays carrying striped (wire v3) sessions — the admin `health`
  /// "stripes" field on a striped daemon.
  std::size_t striped_relays() const;

  /// Milliseconds until the daemon's next internal deadline (liveness,
  /// park expiry, drain bound) is due — the DeadlineWheel convention:
  /// -1 when nothing is scheduled, 0 when one is already overdue. The
  /// daemon's own timerfd wakes the loop anyway; this exists for hosts
  /// that bound their own run_once() waits (LsdFaultDriver composes it
  /// into its next_timeout_ms()).
  int next_timeout_ms() const;

  // --- Graceful drain ------------------------------------------------------

  /// SIGTERM semantics: keep the listener but refuse new sessions (RST,
  /// counted as sessions_refused_drain), let in-flight sessions finish or
  /// park, and bound the wait by config.liveness.drain_deadline (0 = wait
  /// forever). When the last live relay resolves — or the deadline expires
  /// and the stragglers are torn down — on_drain_done fires with the
  /// report. Idempotent.
  void begin_drain();
  bool draining() const { return draining_; }
  /// True once a started drain has resolved (report final).
  bool drain_done() const { return drain_done_; }
  const live::DrainReport& drain_report() const { return drain_report_; }
  /// Fires exactly once per drain, when it resolves; the daemon is still
  /// alive (the host decides whether to exit).
  std::function<void(const live::DrainReport&)> on_drain_done;

  /// Stop accepting and tear down all live relays.
  void shutdown();

  // --- Fault-injection hooks (driven by posix::LsdFaultDriver) -------------
  // The same failure surface the simulator's FaultInjector exercises on
  // core::DepotApp, against real sockets.

  /// Simulate a daemon death: stop listening and hard-reset (RST) every
  /// live relay. The object survives so restart() can bring it back on
  /// the same port.
  void crash();
  /// Undo crash(): re-bind the listener on the original port.
  void restart();
  bool crashed() const { return crashed_; }
  /// Refuse (RST-close) the next `n` accepted connections.
  void set_accept_drops(std::uint32_t n) { accept_drops_ += n; }
  /// Stall/unstall relaying: a stalled daemon keeps its connections but
  /// stops moving bytes (the "slow depot" fault).
  void set_stalled(bool stalled);
  bool stalled() const { return stalled_; }
  /// Hard-reset every live upstream connection mid-stream. With
  /// resume_grace set, the sessions park (their buffered bytes salvaged
  /// first) and await a kFlagResume reconnect; otherwise they fail.
  void inject_upstream_reset();
  /// Fail parked sessions whose grace deadline has passed. Parked sessions
  /// also carry a DeadlineWheel entry, so expiry normally fires from the
  /// daemon's own timerfd; this lazy sweep remains for hosts that drive
  /// the daemon without running its loop long enough (and as the fault
  /// drivers' poll-time backstop).
  void expire_parked();
  /// Simulate a blackholed next hop: while set, newly-dialed downstream
  /// connections are never observed completing (their EPOLLOUT is
  /// suppressed), so the dial deadline — if configured — is what resolves
  /// them. Clearing re-arms the suppressed dials. This is what
  /// `blackhole:depot=...` in a fault spec maps to.
  void set_dial_blackhole(bool on);
  bool dial_blackhole() const { return dial_blackhole_; }

  /// Fires whenever stats().bytes_relayed advances (after the pump that
  /// moved the bytes) — the byte-offset trigger for scripted faults.
  std::function<void(std::uint64_t bytes_relayed)> on_progress;

 private:
  struct Relay;

  void on_accept();
  void on_upstream(Relay* r, std::uint32_t events);
  void on_downstream(Relay* r, std::uint32_t events);
  // The pump/flush helpers may finish() the relay on error; they return
  // false when they did, so callers must not keep driving `r`. A finished
  // relay's memory stays valid (parked in graveyard_) until the next safe
  // point, so a buggy late touch trips the kDone contract instead of
  // reading freed memory.
  bool pump_upstream(Relay* r);
  bool pump_downstream(Relay* r);
  bool flush_reverse(Relay* r);
  void update_interest(Relay* r);
  /// Whether the splice fast path may ingest right now: nothing buffered in
  /// user space (ring, spill, discard), header forwarded, downstream up.
  bool splice_eligible(const Relay* r) const;
  /// Whether an upstream read could currently be buffered somewhere
  /// (pipe space, ring space, or an acquirable chunk) — the EPOLLIN
  /// predicate; false means backpressure.
  bool can_ingest(const Relay* r) const;
  /// Move stranded pipe bytes into the spill buffer (splice fallback and
  /// park salvage; pipe bytes are older than anything still in the socket).
  bool drain_pipe_to_spill(Relay* r);
  /// Re-pump relays that stopped reading because the pool was dry; called
  /// after event turns that may have released chunks.
  void service_pool_waiters();
  /// Span bookkeeping after `took` relayed bytes: opens a stream window at
  /// the first byte, closes one per span::kStreamWindowBytes.
  void note_stream(Relay* r, std::uint64_t took);
  /// Close a dangling stream window (finish/park).
  void flush_stream_window(Relay* r);
  /// Return every buffer a relay holds to the pool / allocator the moment
  /// it leaves service (graveyard entry) — freed memory must be available
  /// to live sessions immediately, not after the deferred delete.
  void release_buffers(Relay* r);
  void finish(Relay* r, bool ok,
              LsdFailReason reason = LsdFailReason::kOther);
  /// Free relays finished on earlier event-loop turns. Never called with a
  /// graveyard relay on the call stack.
  void reap_finished();

  /// Upstream connection died: park the session (resume_grace set, header
  /// parsed, no EOF yet) or fail it.
  void handle_upstream_failure(Relay* r);
  /// Drain whatever the upstream kernel buffer still holds into the
  /// relay's spill buffer before the fd closes — acked bytes the resuming
  /// source will not retransmit.
  void salvage_upstream(Relay* r);
  void park_relay(Relay* r);
  /// Adopt `fresh`'s connection into the parked relay its resume header
  /// names; refuses (and fails `fresh`) on unknown session or offset gap.
  void try_resume(Relay* fresh);
  /// Retire a relay without touching the completion/failure counters
  /// (used for the husk left behind after a resume adoption).
  void discard_relay(Relay* r);

  // --- Liveness plumbing ---------------------------------------------------
  /// Monotonic nanoseconds — the wheel's timebase (TimerFd::now_ns).
  std::int64_t now_ns() const;
  /// A per-relay liveness deadline fired: count it and fail the relay.
  void on_deadline(Relay* r, live::DeadlineKind kind);
  /// Tell the relay's watchdog whether bytes are staged for downstream
  /// (stall watchdog) or not (idle deadline); call after any pump.
  void sync_liveness(Relay* r);
  /// Point the timerfd at the wheel's earliest deadline (created lazily;
  /// disarmed when the wheel empties). Call after any wheel mutation.
  void arm_timer();
  /// Complete the drain if no live (non-parked) relay remains.
  void maybe_finish_drain();
  /// The bounded drain expired: abort the stragglers and resolve.
  void on_drain_deadline();

  engine::EventEngine& loop_;
  LsdConfig config_;
  Fd listener_;
  std::uint16_t port_ = 0;
  LsdStats stats_;
  metrics::LsdMetrics* metrics_ = nullptr;
  std::unique_ptr<buf::ChunkPool> owned_pool_;
  buf::ChunkPool* pool_ = nullptr;
  /// Daemon-wide splice capability; cleared on the first EINVAL so every
  /// later relay skips the doomed pipe setup.
  bool splice_usable_ = true;
  bool servicing_waiters_ = false;
  /// Live relays, keyed by identity for O(1) finish().
  std::unordered_map<Relay*, std::unique_ptr<Relay>> relays_;
  /// Finished relays awaiting reap_finished() (deferred deletion).
  std::vector<std::unique_ptr<Relay>> graveyard_;
  /// Parked relays (still owned by relays_), keyed by session id.
  std::map<core::SessionId, Relay*> parked_;
  bool crashed_ = false;
  bool stalled_ = false;
  std::uint32_t accept_drops_ = 0;

  // Liveness / drain state.
  live::DeadlineWheel wheel_;
  std::unique_ptr<TimerFd> timer_;  ///< lazily created on first deadline
  live::LiveMetrics* live_metrics_ = nullptr;
  health::HealthBoard* health_ = nullptr;
  span::Tracer* tracer_ = nullptr;
  std::int64_t drain_start_ns_ = 0;  ///< span.drain opens at begin_drain
  bool dial_blackhole_ = false;
  bool draining_ = false;
  bool drain_done_ = false;
  live::DrainReport drain_report_;
  live::DeadlineWheel::Token drain_token_ = live::DeadlineWheel::kInvalidToken;
};

}  // namespace lsl::posix
