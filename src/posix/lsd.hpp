// lsd — the Logistical Session Layer forwarding daemon, on real sockets.
//
// This is the artifact the paper describes in §IV.A: a user-level process,
// running without privileges, that "very simply establishes a transport to
// transport binding based on the LSL header information". It accepts a
// session connection, reads the LSL header (src/lsl/wire.hpp — the same
// codec the simulator uses, so the two are wire compatible), dials the next
// hop of the loose source route, forwards the popped header, and then
// relays bytes through a bounded ring buffer. When the buffer fills, it
// stops reading and lets TCP flow control push back on the upstream
// sublink — the hop-by-hop buffering the paper replaces end-to-end
// buffering with.
//
// Single-threaded, nonblocking, driven by an EpollLoop; multiple relays
// multiplex over one loop, and several Lsd instances (a cascade) can share
// a loop in one process for testing.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "lsl/wire.hpp"
#include "metrics/instruments.hpp"
#include "posix/epoll_loop.hpp"
#include "posix/socket_util.hpp"

namespace lsl::posix {

/// Daemon configuration.
struct LsdConfig {
  InetAddress bind = InetAddress::loopback(0);  ///< port 0 = ephemeral
  std::size_t buffer_bytes = 1024 * 1024;       ///< per-session relay ring
};

/// Why a relay session failed (the largest contributor wins; a session
/// counts under exactly one reason).
enum class LsdFailReason {
  kNone,       ///< session completed — not a failure
  kDial,       ///< downstream connect() refused / unreachable
  kHeader,     ///< malformed or truncated LSL header
  kPeerReset,  ///< connection error (reset/broken pipe) mid-relay
  kOther,      ///< shutdown teardown, premature downstream EOF, ...
};

/// Daemon counters.
struct LsdStats {
  std::uint64_t sessions_accepted = 0;
  std::uint64_t sessions_completed = 0;
  std::uint64_t sessions_failed = 0;
  std::uint64_t bytes_relayed = 0;
  // Failure-reason breakdown; the four reasons sum to sessions_failed.
  std::uint64_t fail_dial = 0;
  std::uint64_t fail_header = 0;
  std::uint64_t fail_peer_reset = 0;
  std::uint64_t fail_other = 0;
};

/// One forwarding daemon instance.
class Lsd {
 public:
  /// Binds and starts listening immediately; throws std::system_error if
  /// the socket cannot be bound.
  Lsd(EpollLoop& loop, const LsdConfig& config);
  ~Lsd();

  Lsd(const Lsd&) = delete;
  Lsd& operator=(const Lsd&) = delete;

  /// Actual bound port (after ephemeral resolution).
  std::uint16_t port() const { return port_; }

  const LsdStats& stats() const { return stats_; }

  /// Attach a metrics bundle (must outlive the daemon); null detaches.
  void set_metrics(metrics::LsdMetrics* m) { metrics_ = m; }

  /// Stop accepting and tear down all live relays.
  void shutdown();

 private:
  struct Relay;

  void on_accept();
  void on_upstream(Relay* r, std::uint32_t events);
  void on_downstream(Relay* r, std::uint32_t events);
  // The pump/flush helpers may finish() (and delete) the relay on error;
  // they return false when they did, so callers must not touch `r` again.
  bool pump_upstream(Relay* r);
  bool pump_downstream(Relay* r);
  bool flush_reverse(Relay* r);
  void update_interest(Relay* r);
  void finish(Relay* r, bool ok,
              LsdFailReason reason = LsdFailReason::kOther);

  EpollLoop& loop_;
  LsdConfig config_;
  Fd listener_;
  std::uint16_t port_ = 0;
  LsdStats stats_;
  metrics::LsdMetrics* metrics_ = nullptr;
  std::unordered_set<Relay*> relays_;
};

}  // namespace lsl::posix
