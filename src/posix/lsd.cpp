#include "posix/lsd.hpp"

#include <sys/epoll.h>
#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <system_error>

#include "util/log.hpp"

namespace lsl::posix {

const char* to_string(RelayState s) {
  switch (s) {
    case RelayState::kHeader: return "HEADER";
    case RelayState::kDial: return "DIAL";
    case RelayState::kStream: return "STREAM";
    case RelayState::kDone: return "DONE";
  }
  return "?";
}

const util::TransitionTable<RelayState, kRelayStateCount>&
relay_transition_table() {
  using S = RelayState;
  static const util::TransitionTable<RelayState, kRelayStateCount> table{
      "lsd-relay", to_string, {
          {S::kHeader, S::kDial},    // header parsed, dialing downstream
          {S::kDial, S::kStream},    // downstream connect completed
          // finish() is legal from every live state; kDone is terminal —
          // there is deliberately no edge out of it.
          {S::kHeader, S::kDone},
          {S::kDial, S::kDone},
          {S::kStream, S::kDone},
      }};
  return table;
}

/// Per-session relay state machine.
struct Lsd::Relay {
  Fd up;
  Fd down;

  /// Lifecycle; every change goes through the checked transition table.
  util::CheckedState<RelayState, kRelayStateCount> state{
      relay_transition_table(), RelayState::kHeader};

  // Header ingest.
  std::vector<std::uint8_t> header_buf;
  core::SessionHeader header;
  bool header_done = false;

  // Downstream connection.
  bool down_connecting = false;
  bool down_connected = false;

  // Forwarded header.
  std::vector<std::uint8_t> fwd;
  std::size_t fwd_off = 0;

  // Bounded relay ring buffer.
  std::vector<std::uint8_t> ring;
  std::size_t head = 0;  ///< read position
  std::size_t size = 0;  ///< bytes buffered

  bool up_eof = false;
  bool flushed = false;  ///< EOF propagated downstream (SHUT_WR sent)

  // Reverse path (sink -> source): the end-to-end status byte and any
  // other upstream-bound traffic are relayed back verbatim.
  std::vector<std::uint8_t> rev;
  std::size_t rev_off = 0;

  // Current epoll interest, to avoid redundant epoll_ctl calls.
  std::uint32_t up_events = 0;
  std::uint32_t down_events = 0;

  /// Wall-clock accept time, for the accept-to-dial latency metric.
  std::chrono::steady_clock::time_point accepted_at;

  std::size_t space() const { return ring.size() - size; }
};

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Lsd::Lsd(EpollLoop& loop, const LsdConfig& config)
    : loop_(loop), config_(config) {
  listener_ = listen_tcp(config_.bind, 64, &port_);
  if (!listener_.valid()) {
    throw std::system_error(errno, std::generic_category(), "lsd: bind");
  }
  loop_.add(listener_.get(), EPOLLIN, [this](std::uint32_t) { on_accept(); });
  LSL_LOG_INFO("lsd: listening on %s",
               InetAddress{config_.bind.addr, port_}.to_string().c_str());
}

Lsd::~Lsd() { shutdown(); }

void Lsd::shutdown() {
  if (listener_.valid()) {
    loop_.remove(listener_.get());
    listener_.reset();
  }
  while (!relays_.empty()) {
    finish(relays_.begin()->first, false);
  }
  reap_finished();
}

void Lsd::reap_finished() { graveyard_.clear(); }

void Lsd::on_accept() {
  reap_finished();
  for (;;) {
    Fd conn = accept_connection(listener_.get());
    if (!conn.valid()) return;
    ++stats_.sessions_accepted;
    auto owned = std::make_unique<Relay>();
    Relay* r = owned.get();
    r->up = std::move(conn);
    r->accepted_at = std::chrono::steady_clock::now();
    r->ring.resize(config_.buffer_bytes);
    relays_.emplace(r, std::move(owned));
    r->up_events = EPOLLIN;
    loop_.add(r->up.get(), EPOLLIN,
              [this, r](std::uint32_t ev) { on_upstream(r, ev); });
  }
}

void Lsd::on_upstream(Relay* r, std::uint32_t events) {
  LSL_PRECONDITION(r->state != RelayState::kDone,
                   "upstream event on a finished relay");
  if ((events & EPOLLOUT) && !flush_reverse(r)) return;
  if (events & (EPOLLERR | EPOLLHUP)) {
    // EPOLLHUP with pending data still allows reads; try to pump first.
    if (!pump_upstream(r)) return;
    if (!r->up_eof && (events & EPOLLERR)) {
      finish(r, false, LsdFailReason::kPeerReset);
    }
    return;
  }
  pump_upstream(r);
}

bool Lsd::flush_reverse(Relay* r) {
  LSL_PRECONDITION(r->state != RelayState::kDone,
                   "reverse flush on a finished relay");
  while (r->rev_off < r->rev.size()) {
    const long n = write_some(r->up.get(), r->rev.data() + r->rev_off,
                              r->rev.size() - r->rev_off);
    if (n < 0) {
      if (metrics_) metrics_->write_errors->inc();
      finish(r, false, LsdFailReason::kPeerReset);
      return false;
    }
    if (n == 0) break;  // upstream send buffer full; EPOLLOUT re-arms
    if (metrics_) metrics_->bytes_reverse->inc(static_cast<std::uint64_t>(n));
    r->rev_off += static_cast<std::size_t>(n);
  }
  if (r->rev_off == r->rev.size()) {
    r->rev.clear();
    r->rev_off = 0;
  }
  update_interest(r);
  return true;
}

void Lsd::on_downstream(Relay* r, std::uint32_t events) {
  LSL_PRECONDITION(r->state != RelayState::kDone,
                   "downstream event on a finished relay");
  if (r->down_connecting) {
    const int err = connect_result(r->down.get());
    if (err != 0) {
      LSL_LOG_WARN("lsd: downstream connect failed: %s", std::strerror(err));
      finish(r, false, LsdFailReason::kDial);
      return;
    }
    r->down_connecting = false;
    r->down_connected = true;
    r->state.transition(RelayState::kStream);
  }
  if (events & EPOLLERR) {
    finish(r, false, LsdFailReason::kPeerReset);
    return;
  }
  if (events & EPOLLIN) {
    // Reverse-path traffic (the sink's end-to-end status byte) is relayed
    // back to the upstream peer verbatim; EOF completes the session.
    std::uint8_t buf[4096];
    for (;;) {
      const long n = read_some(r->down.get(), buf, sizeof(buf));
      if (n == 0) {
        if (!flush_reverse(r)) return;
        // EOF before our own EOF was flushed = premature downstream close.
        finish(r, r->flushed, LsdFailReason::kOther);
        return;
      }
      if (n < 0) break;  // EAGAIN (-1) or error (-2: treat on next event)
      r->rev.insert(r->rev.end(), buf, buf + n);
    }
    if (!flush_reverse(r)) return;
  }
  pump_downstream(r);
}

bool Lsd::pump_upstream(Relay* r) {
  LSL_PRECONDITION(r->state != RelayState::kDone,
                   "upstream pump on a finished relay");
  // Phase 1: header bytes.
  while (!r->header_done) {
    std::uint8_t tmp[512];
    std::size_t want = core::kHeaderPrefixBytes > r->header_buf.size()
                           ? core::kHeaderPrefixBytes - r->header_buf.size()
                           : 0;
    if (want == 0) {
      const auto len = core::header_length(r->header_buf);
      if (!len) {
        LSL_LOG_WARN("lsd: malformed session header");
        finish(r, false, LsdFailReason::kHeader);
        return false;
      }
      if (r->header_buf.size() >= *len) {
        const auto h = core::decode_header(r->header_buf);
        if (!h) {
          finish(r, false, LsdFailReason::kHeader);
          return false;
        }
        r->header = *h;
        r->header_done = true;
        if (metrics_) {
          metrics_->accept_to_dial_ms->observe(ms_since(r->accepted_at));
        }

        // Dial onward and stage the popped header.
        const core::HopAddress next = r->header.next_hop();
        core::encode_header(r->header.popped(), r->fwd);
        r->down = connect_tcp(InetAddress{next.addr, next.port});
        if (!r->down.valid()) {
          finish(r, false, LsdFailReason::kDial);
          return false;
        }
        r->down_connecting = true;
        r->state.transition(RelayState::kDial);
        r->down_events = EPOLLOUT | EPOLLIN;
        loop_.add(r->down.get(), r->down_events,
                  [this, rp = r](std::uint32_t ev) { on_downstream(rp, ev); });
        break;
      }
      want = *len - r->header_buf.size();
    }
    const long n = read_some(r->up.get(), tmp, std::min(want, sizeof(tmp)));
    if (n == 0) {
      finish(r, false, LsdFailReason::kHeader);  // EOF mid-header: truncated
      return false;
    }
    if (n < 0) {
      if (n == -2) {
        if (metrics_) metrics_->read_errors->inc();
        finish(r, false, LsdFailReason::kPeerReset);
        return false;
      }
      return true;  // EAGAIN
    }
    r->header_buf.insert(r->header_buf.end(), tmp, tmp + n);
  }

  // Phase 2: payload into the ring.
  while (!r->up_eof && r->space() > 0) {
    const std::size_t tail = (r->head + r->size) % r->ring.size();
    const std::size_t contig =
        std::min(r->space(), r->ring.size() - tail);
    const long n = read_some(r->up.get(), r->ring.data() + tail, contig);
    if (n == 0) {
      r->up_eof = true;
      break;
    }
    if (n < 0) {
      if (n == -2) {
        if (metrics_) metrics_->read_errors->inc();
        finish(r, false, LsdFailReason::kPeerReset);
        return false;
      }
      break;  // EAGAIN
    }
    r->size += static_cast<std::size_t>(n);
  }
  if (metrics_) {
    metrics_->ring_occupancy_bytes->set(static_cast<double>(r->size));
  }

  if (!pump_downstream(r)) return false;
  update_interest(r);
  return true;
}

bool Lsd::pump_downstream(Relay* r) {
  LSL_PRECONDITION(r->state != RelayState::kDone,
                   "downstream pump on a finished relay");
  if (!r->down_connected) return true;

  // Forwarded header first.
  while (r->fwd_off < r->fwd.size()) {
    const long n = write_some(r->down.get(), r->fwd.data() + r->fwd_off,
                              r->fwd.size() - r->fwd_off);
    if (n < 0) {
      if (metrics_) metrics_->write_errors->inc();
      finish(r, false, LsdFailReason::kPeerReset);
      return false;
    }
    if (n == 0) {
      update_interest(r);
      return true;
    }
    r->fwd_off += static_cast<std::size_t>(n);
  }

  // Then ring contents.
  while (r->size > 0) {
    const std::size_t contig = std::min(r->size, r->ring.size() - r->head);
    const long n = write_some(r->down.get(), r->ring.data() + r->head, contig);
    if (n < 0) {
      if (metrics_) metrics_->write_errors->inc();
      finish(r, false, LsdFailReason::kPeerReset);
      return false;
    }
    if (n == 0) break;  // downstream full
    r->head = (r->head + static_cast<std::size_t>(n)) % r->ring.size();
    r->size -= static_cast<std::size_t>(n);
    stats_.bytes_relayed += static_cast<std::uint64_t>(n);
    if (metrics_) metrics_->bytes_relayed->inc(static_cast<std::uint64_t>(n));
  }
  if (metrics_) {
    metrics_->ring_occupancy_bytes->set(static_cast<double>(r->size));
  }

  // Propagate EOF once everything is flushed.
  if (r->up_eof && r->size == 0 && r->fwd_off == r->fwd.size() &&
      !r->flushed) {
    ::shutdown(r->down.get(), SHUT_WR);
    r->flushed = true;
    // Relay completion is confirmed when the downstream peer closes
    // (on_downstream sees EOF); the upstream socket stays open until then.
  }
  update_interest(r);
  return true;
}

void Lsd::update_interest(Relay* r) {
  // Upstream: read while there is buffer space and no EOF; write when
  // reverse-path bytes are pending.
  std::uint32_t up_want =
      (!r->up_eof && (r->space() > 0 || !r->header_done))
          ? static_cast<std::uint32_t>(EPOLLIN)
          : 0u;
  if (r->rev_off < r->rev.size()) up_want |= EPOLLOUT;
  if (r->up.valid() && up_want != r->up_events) {
    loop_.modify(r->up.get(), up_want);
    r->up_events = up_want;
  }
  // Downstream: write while anything is staged; always watch for EOF/err.
  if (r->down.valid() && r->down_connected) {
    std::uint32_t down_want = EPOLLIN;
    if (r->size > 0 || r->fwd_off < r->fwd.size() ||
        (r->up_eof && !r->flushed)) {
      down_want |= EPOLLOUT;
    }
    if (down_want != r->down_events) {
      loop_.modify(r->down.get(), down_want);
      r->down_events = down_want;
    }
  }
}

void Lsd::finish(Relay* r, bool ok, LsdFailReason reason) {
  const auto it = relays_.find(r);
  if (it == relays_.end()) return;  // already finished
  r->state.transition(RelayState::kDone);
  if (ok) {
    ++stats_.sessions_completed;
  } else {
    ++stats_.sessions_failed;
    switch (reason) {
      case LsdFailReason::kDial: ++stats_.fail_dial; break;
      case LsdFailReason::kHeader: ++stats_.fail_header; break;
      case LsdFailReason::kPeerReset: ++stats_.fail_peer_reset; break;
      case LsdFailReason::kNone:
      case LsdFailReason::kOther: ++stats_.fail_other; break;
    }
  }
  // Sockets close now (peers must observe the teardown immediately) ...
  if (r->up.valid()) loop_.remove(r->up.get());
  if (r->down.valid()) loop_.remove(r->down.get());
  r->up.reset();
  r->down.reset();
  // ... but deletion is deferred: `r` may still be on the call stack
  // (finish() is reached from inside its own pump helpers), and keeping
  // the memory alive until the next safe point turns any late touch into
  // a checked kDone-contract failure instead of a use-after-free.
  graveyard_.push_back(std::move(it->second));
  relays_.erase(it);
}

}  // namespace lsl::posix
