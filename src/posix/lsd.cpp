#include "posix/lsd.hpp"

#include <sys/epoll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <system_error>

#include "util/log.hpp"

namespace lsl::posix {

const char* to_string(RelayState s) {
  switch (s) {
    case RelayState::kHeader: return "HEADER";
    case RelayState::kDial: return "DIAL";
    case RelayState::kStream: return "STREAM";
    case RelayState::kDone: return "DONE";
  }
  return "?";
}

const util::TransitionTable<RelayState, kRelayStateCount>&
relay_transition_table() {
  using S = RelayState;
  static const util::TransitionTable<RelayState, kRelayStateCount> table{
      "lsd-relay", to_string, {
          {S::kHeader, S::kDial},    // header parsed, dialing downstream
          {S::kDial, S::kStream},    // downstream connect completed
          // finish() is legal from every live state; kDone is terminal —
          // there is deliberately no edge out of it.
          {S::kHeader, S::kDone},
          {S::kDial, S::kDone},
          {S::kStream, S::kDone},
      }};
  return table;
}

/// Per-session relay state machine.
struct Lsd::Relay {
  Relay(buf::ChunkPool& pool, std::size_t buffer_bytes)
      : ring(pool, buffer_bytes) {}

  Fd up;
  Fd down;

  /// Lifecycle; every change goes through the checked transition table.
  util::CheckedState<RelayState, kRelayStateCount> state{
      relay_transition_table(), RelayState::kHeader};

  // Header ingest.
  std::vector<std::uint8_t> header_buf;
  core::SessionHeader header;
  bool header_done = false;

  // Downstream connection.
  bool down_connecting = false;
  bool down_connected = false;

  // Forwarded header.
  std::vector<std::uint8_t> fwd;
  std::size_t fwd_off = 0;

  // Bounded relay buffer: chunks drawn on demand from the daemon-wide
  // pool, returned the instant they drain.
  buf::ChunkRing ring;
  /// The ring refused an upstream read because the *pool* was dry (as
  /// opposed to this session's own cap); service_pool_waiters() re-pumps
  /// when chunks come back.
  bool pool_blocked = false;

  // Splice fast path: a kernel pipe between the two sockets. Invariant:
  // the pipe and the ring are never simultaneously nonempty — splicing in
  // requires an empty ring, ring fills require an empty pipe — so relative
  // byte order between the two stores never arises.
  Fd pipe_r;
  Fd pipe_w;
  std::size_t pipe_capacity = 0;
  std::size_t pipe_bytes = 0;     ///< bytes currently inside the pipe
  bool splice_ok = true;          ///< per-relay fallback latch
  bool pipe_tried = false;        ///< pipe creation attempted

  bool up_eof = false;
  bool flushed = false;  ///< EOF propagated downstream (SHUT_WR sent)

  // Reverse path (sink -> source): the end-to-end status byte and any
  // other upstream-bound traffic are relayed back verbatim.
  std::vector<std::uint8_t> rev;
  std::size_t rev_off = 0;

  // Current epoll interest, to avoid redundant epoll_ctl calls.
  std::uint32_t up_events = 0;
  std::uint32_t down_events = 0;

  /// Wall-clock accept time, for the accept-to-dial latency metric.
  std::chrono::steady_clock::time_point accepted_at;

  // Span tracing (inert unless the header carried a trace id AND the
  // daemon has a tracer attached — trace_id stays 0 otherwise). Times are
  // CLOCK_MONOTONIC nanoseconds (TimerFd::now_ns).
  std::uint64_t trace_id = 0;
  std::int64_t accept_ns = 0;
  std::int64_t dial_start_ns = 0;   ///< header done; span.dial opens here
  std::uint64_t relayed = 0;        ///< payload bytes this relay pushed
  std::uint64_t window_base = 0;    ///< `relayed` at stream-window open
  std::int64_t window_open_ns = -1; ///< -1 = no open stream window
  /// Stripe lane of a striped (wire v3) session, -1 otherwise: selects the
  /// lane-indexed stream-window span name and feeds the striped-relay
  /// census the admin `health` endpoint reports as "stripes".
  int stripe_lane = -1;

  // Health-plane attribution (populated only while a HealthBoard is
  // attached). next_hop_name scores the depot this relay dialed;
  // peer_name (the upstream's IP, ephemeral port dropped) takes the
  // park/salvage blame when the *source* side of the relay dies.
  std::string next_hop_name;
  std::string peer_name;

  // Resume machinery. payload_pulled counts unique payload bytes taken
  // from the upstream (the high-water mark a resume offset is checked
  // against); spill holds bytes salvaged from a dying upstream's kernel
  // buffer — older than anything read after the resume, so it drains
  // downstream after the ring's pre-park contents and blocks new ring
  // fills until empty. discard_left is the duplicated prefix of a resumed
  // connection still to be dropped.
  std::uint64_t payload_pulled = 0;
  std::uint64_t discard_left = 0;
  std::vector<std::uint8_t> spill;
  std::size_t spill_off = 0;
  bool parked = false;
  std::chrono::steady_clock::time_point park_deadline;
  /// Wheel entry mirroring park_deadline, so expiry fires from the
  /// daemon's timerfd instead of waiting for the next lazy sweep.
  live::DeadlineWheel::Token park_token = live::DeadlineWheel::kInvalidToken;

  /// Lifecycle deadlines + progress watchdog (inert unless the daemon's
  /// LivenessConfig arms any class).
  live::RelayLiveness live;

  bool spill_empty() const { return spill_off >= spill.size(); }
  /// Total payload bytes buffered anywhere in user space or the pipe.
  std::size_t buffered() const { return ring.size() + pipe_bytes; }
};

namespace {

/// Dotted-quad IP of the connected peer, without the (ephemeral) port —
/// the stable identity health observations are keyed by.
std::string peer_ip_of(int fd) {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (getpeername(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    return {};
  }
  const std::uint32_t a = ntohl(sa.sin_addr.s_addr);
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (a >> 24) & 255,
                (a >> 16) & 255, (a >> 8) & 255, a & 255);
  return buf;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Monotonic nanoseconds → span seconds (the tracer's timebase).
double span_sec(std::int64_t ns) { return static_cast<double>(ns) * 1e-9; }

/// Arrange for close() to emit RST instead of an orderly FIN.
void arm_reset(int fd) {
  struct linger lg {1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
}

}  // namespace

LsdStats operator+(const LsdStats& a, const LsdStats& b) {
  LsdStats s;
  s.sessions_accepted = a.sessions_accepted + b.sessions_accepted;
  s.sessions_completed = a.sessions_completed + b.sessions_completed;
  s.sessions_failed = a.sessions_failed + b.sessions_failed;
  s.sessions_refused = a.sessions_refused + b.sessions_refused;
  s.bytes_relayed = a.bytes_relayed + b.bytes_relayed;
  s.bytes_spliced = a.bytes_spliced + b.bytes_spliced;
  s.fail_dial = a.fail_dial + b.fail_dial;
  s.fail_header = a.fail_header + b.fail_header;
  s.fail_peer_reset = a.fail_peer_reset + b.fail_peer_reset;
  s.fail_timeout = a.fail_timeout + b.fail_timeout;
  s.fail_other = a.fail_other + b.fail_other;
  s.sessions_parked = a.sessions_parked + b.sessions_parked;
  s.sessions_resumed = a.sessions_resumed + b.sessions_resumed;
  s.accepts_dropped = a.accepts_dropped + b.accepts_dropped;
  s.timeouts_header = a.timeouts_header + b.timeouts_header;
  s.timeouts_dial = a.timeouts_dial + b.timeouts_dial;
  s.timeouts_idle = a.timeouts_idle + b.timeouts_idle;
  s.timeouts_stall = a.timeouts_stall + b.timeouts_stall;
  s.sessions_refused_drain =
      a.sessions_refused_drain + b.sessions_refused_drain;
  return s;
}

Lsd::Lsd(engine::EventEngine& loop, const LsdConfig& config)
    : loop_(loop), config_(config) {
  pool_ = config_.shared_pool;
  if (pool_ == nullptr) {
    owned_pool_ = std::make_unique<buf::ChunkPool>(config_.pool);
    pool_ = owned_pool_.get();
  }
  listener_ = listen_tcp(config_.bind, 64, &port_, config_.reuse_port);
  if (!listener_.valid()) {
    throw std::system_error(errno, std::generic_category(), "lsd: bind");
  }
  loop_.add(listener_.get(), EPOLLIN, [this](std::uint32_t) { on_accept(); });
  LSL_LOG_INFO("lsd: listening on %s",
               InetAddress{config_.bind.addr, port_}.to_string().c_str());
}

Lsd::~Lsd() { shutdown(); }

void Lsd::shutdown() {
  if (listener_.valid()) {
    loop_.remove(listener_.get());
    listener_.reset();
  }
  while (!relays_.empty()) {
    finish(relays_.begin()->first, false);
  }
  reap_finished();
  // Every relay deadline is gone with its relay; drop the drain bound too
  // and release the timerfd so an otherwise-empty loop can run() to exit.
  wheel_.cancel(drain_token_);
  drain_token_ = live::DeadlineWheel::kInvalidToken;
  timer_.reset();
}

void Lsd::reap_finished() { graveyard_.clear(); }

void Lsd::on_accept() {
  reap_finished();
  expire_parked();
  for (;;) {
    Fd conn = accept_connection(listener_.get());
    if (!conn.valid()) break;
    if (draining_) {
      // Graceful drain: existing sessions run to completion, but the door
      // is closed — a hard reset tells the source to go elsewhere now
      // rather than time out against a daemon that is leaving.
      ++stats_.sessions_refused_drain;
      ++drain_report_.refused;
      arm_reset(conn.get());
      conn.reset();
      continue;
    }
    if (accept_drops_ > 0) {
      // Injected SYN/accept failure: the peer sees a hard reset where the
      // session handshake should have been.
      --accept_drops_;
      ++stats_.accepts_dropped;
      arm_reset(conn.get());
      conn.reset();
      continue;
    }
    if (pool_->under_pressure()) {
      // Admission control: the pool crossed its high watermark. Refusing
      // with a hard reset (not a slow header timeout) lets the source's
      // RetryPolicy back off immediately; existing sessions keep draining
      // until the low watermark re-opens the door.
      ++stats_.sessions_refused;
      arm_reset(conn.get());
      conn.reset();
      continue;
    }
    ++stats_.sessions_accepted;
    auto owned = std::make_unique<Relay>(*pool_, config_.buffer_bytes);
    Relay* r = owned.get();
    r->up = std::move(conn);
    r->accepted_at = std::chrono::steady_clock::now();
    r->accept_ns = now_ns();
    if (health_ != nullptr) r->peer_name = peer_ip_of(r->up.get());
    relays_.emplace(r, std::move(owned));
    r->up_events = EPOLLIN;
    // Each top-level event turn ends by re-pumping relays that stopped
    // reading on an empty pool — any turn may have released chunks — and
    // re-aiming the timerfd at whatever the wheel now holds.
    loop_.add(r->up.get(), EPOLLIN, [this, r](std::uint32_t ev) {
      on_upstream(r, ev);
      service_pool_waiters();
      arm_timer();
    });
    r->live.attach(&wheel_, &config_.liveness,
                   [this, r](live::DeadlineKind k) { on_deadline(r, k); });
    if (live_metrics_ != nullptr) {
      r->live.set_rate_hook([this](double bps) {
        // Gauge min-tracking makes this the slowest-relay figure: every
        // watchdog window reports its rate, and `min` keeps the floor.
        live_metrics_->slowest_relay_bps->set(bps);
      });
    }
    r->live.on_accepted(now_ns());
  }
  service_pool_waiters();  // expire_parked() may have released chunks
  arm_timer();
}

void Lsd::on_upstream(Relay* r, std::uint32_t events) {
  LSL_PRECONDITION(r->state != RelayState::kDone,
                   "upstream event on a finished relay");
  if ((events & EPOLLOUT) && !flush_reverse(r)) return;
  if (events & (EPOLLERR | EPOLLHUP)) {
    // EPOLLHUP with pending data still allows reads; try to pump first.
    if (!pump_upstream(r)) return;
    if (!r->up_eof && (events & EPOLLERR)) {
      handle_upstream_failure(r);
    }
    return;
  }
  pump_upstream(r);
}

bool Lsd::flush_reverse(Relay* r) {
  LSL_PRECONDITION(r->state != RelayState::kDone,
                   "reverse flush on a finished relay");
  while (r->up.valid() && r->rev_off < r->rev.size()) {
    const long n = write_some(r->up.get(), r->rev.data() + r->rev_off,
                              r->rev.size() - r->rev_off);
    if (n < 0) {
      if (metrics_) metrics_->write_errors->inc();
      handle_upstream_failure(r);
      return false;
    }
    if (n == 0) break;  // upstream send buffer full; EPOLLOUT re-arms
    if (metrics_) metrics_->bytes_reverse->inc(static_cast<std::uint64_t>(n));
    r->rev_off += static_cast<std::size_t>(n);
    r->live.note_activity(now_ns());
  }
  if (r->rev_off == r->rev.size()) {
    r->rev.clear();
    r->rev_off = 0;
  }
  update_interest(r);
  return true;
}

void Lsd::on_downstream(Relay* r, std::uint32_t events) {
  LSL_PRECONDITION(r->state != RelayState::kDone,
                   "downstream event on a finished relay");
  if (r->down_connecting) {
    const int err = connect_result(r->down.get());
    if (err != 0) {
      LSL_LOG_WARN("lsd: downstream connect failed: %s", std::strerror(err));
      finish(r, false, LsdFailReason::kDial);
      return;
    }
    r->down_connecting = false;
    r->down_connected = true;
    r->state.transition(RelayState::kStream);
    r->live.on_connected(now_ns());
    if (tracer_ != nullptr && r->trace_id != 0) {
      // The same interval the dial liveness deadline bounds.
      tracer_->emit(r->trace_id, span::kSpanDial,
                    span_sec(r->dial_start_ns), span_sec(now_ns()));
    }
  }
  if (events & EPOLLERR) {
    finish(r, false, LsdFailReason::kPeerReset);
    return;
  }
  if (events & EPOLLIN) {
    // Reverse-path traffic (the sink's end-to-end status byte) is relayed
    // back to the upstream peer verbatim; EOF completes the session.
    std::uint8_t buf[4096];
    for (;;) {
      const long n = read_some(r->down.get(), buf, sizeof(buf));
      if (n == 0) {
        if (!flush_reverse(r)) return;
        // EOF before our own EOF was flushed = premature downstream close.
        finish(r, r->flushed, LsdFailReason::kOther);
        return;
      }
      if (n < 0) break;  // EAGAIN (-1) or error (-2: treat on next event)
      r->rev.insert(r->rev.end(), buf, buf + n);
      r->live.note_activity(now_ns());
    }
    if (!flush_reverse(r)) return;
  }
  pump_downstream(r);
}

bool Lsd::pump_upstream(Relay* r) {
  LSL_PRECONDITION(r->state != RelayState::kDone,
                   "upstream pump on a finished relay");
  // Phase 1: header bytes.
  while (!r->header_done) {
    std::uint8_t tmp[512];
    std::size_t want = core::kHeaderPrefixBytes > r->header_buf.size()
                           ? core::kHeaderPrefixBytes - r->header_buf.size()
                           : 0;
    if (want == 0) {
      const auto len = core::header_length(r->header_buf);
      if (!len) {
        LSL_LOG_WARN("lsd: malformed session header");
        finish(r, false, LsdFailReason::kHeader);
        return false;
      }
      if (r->header_buf.size() >= *len) {
        const auto h = core::decode_header(r->header_buf);
        if (!h) {
          finish(r, false, LsdFailReason::kHeader);
          return false;
        }
        r->header = *h;
        r->header_done = true;
        r->trace_id = r->header.trace_id;
        if (r->header.stripe) r->stripe_lane = r->header.stripe->stripe_id;
        if (tracer_ != nullptr && r->trace_id != 0) {
          // Backfilled: the interval opened at accept, but the join key
          // only exists once the header is parsed.
          tracer_->mark(r->trace_id, span::kSpanAccept,
                        span_sec(r->accept_ns));
          tracer_->emit(r->trace_id, span::kSpanHeaderRead,
                        span_sec(r->accept_ns), span_sec(now_ns()));
        }
        if (r->header.is_resume()) {
          // This connection re-binds a parked session rather than opening
          // a new relay; `r` is retired either way (its socket adopted on
          // success, the connection refused on failure).
          try_resume(r);
          return false;
        }
        if (metrics_) {
          metrics_->accept_to_dial_ms->observe(ms_since(r->accepted_at));
        }

        // Dial onward and stage the popped header.
        const core::HopAddress next = r->header.next_hop();
        if (health_ != nullptr) {
          r->next_hop_name = InetAddress{next.addr, next.port}.to_string();
        }
        core::encode_header(r->header.popped(), r->fwd);
        r->down = connect_tcp(InetAddress{next.addr, next.port});
        if (!r->down.valid()) {
          finish(r, false, LsdFailReason::kDial);
          return false;
        }
        r->down_connecting = true;
        r->dial_start_ns = now_ns();
        r->state.transition(RelayState::kDial);
        // Under an injected dial blackhole the connect's completion is
        // never observed (no EPOLLOUT interest), exactly like a SYN into
        // the void; only the dial deadline can resolve the relay.
        r->down_events =
            dial_blackhole_ ? 0u
                            : static_cast<std::uint32_t>(EPOLLOUT | EPOLLIN);
        loop_.add(r->down.get(), r->down_events,
                  [this, rp = r](std::uint32_t ev) {
                    on_downstream(rp, ev);
                    service_pool_waiters();
                    arm_timer();
                  });
        r->live.on_header_done(now_ns());
        break;
      }
      want = *len - r->header_buf.size();
    }
    const long n = read_some(r->up.get(), tmp, std::min(want, sizeof(tmp)));
    if (n == 0) {
      finish(r, false, LsdFailReason::kHeader);  // EOF mid-header: truncated
      return false;
    }
    if (n < 0) {
      if (n == -2) {
        if (metrics_) metrics_->read_errors->inc();
        finish(r, false, LsdFailReason::kPeerReset);
        return false;
      }
      return true;  // EAGAIN
    }
    r->header_buf.insert(r->header_buf.end(), tmp, tmp + n);
  }

  const std::uint64_t pulled_before = r->payload_pulled;
  // Phase 2: payload ingest. Salvaged (spill) bytes are older than
  // anything a read here would produce, so new fills wait until the spill
  // has drained downstream; a stalled daemon stops reading so TCP flow
  // control pushes back on the source. While nothing is buffered in user
  // space, bytes move socket→pipe via splice (zero-copy); otherwise they
  // land in pooled chunks.
  while (!r->up_eof && !stalled_ && r->spill_empty()) {
    // A resumed connection first retransmits bytes the relay already has;
    // drop the duplicated prefix without counting it.
    if (r->discard_left > 0) {
      std::uint8_t dump[4096];
      const std::size_t want = static_cast<std::size_t>(
          std::min<std::uint64_t>(r->discard_left, sizeof(dump)));
      const long n = read_some(r->up.get(), dump, want);
      if (n == 0) {
        r->up_eof = true;
        break;
      }
      if (n < 0) {
        if (n == -2) {
          if (metrics_) metrics_->read_errors->inc();
          handle_upstream_failure(r);
          return false;
        }
        break;  // EAGAIN
      }
      r->discard_left -= static_cast<std::uint64_t>(n);
      continue;
    }
    if (splice_eligible(r)) {
      if (!r->pipe_tried) {
        r->pipe_tried = true;
        r->pipe_capacity = make_pipe(&r->pipe_r, &r->pipe_w);
        if (r->pipe_capacity == 0) {
          r->splice_ok = false;  // no pipe: chunks from here on
          continue;
        }
      }
      if (r->pipe_bytes >= r->pipe_capacity) break;  // pipe full: backpressure
      // Bounding the request by the pipe's free space keeps EAGAIN
      // unambiguous: it can only mean "no socket data".
      const long n = splice_some(r->up.get(), r->pipe_w.get(),
                                 r->pipe_capacity - r->pipe_bytes);
      if (n == 0) {
        r->up_eof = true;
        break;
      }
      if (n == -1) break;  // EAGAIN: nothing to read
      if (n == -3) {
        // Kernel refuses splice on these fds; remember daemon-wide and
        // fall back to the chunk path for this and every later relay.
        splice_usable_ = false;
        r->splice_ok = false;
        continue;
      }
      if (n == -2) {
        if (metrics_) metrics_->read_errors->inc();
        handle_upstream_failure(r);
        return false;
      }
      r->pipe_bytes += static_cast<std::size_t>(n);
      r->payload_pulled += static_cast<std::uint64_t>(n);
      continue;
    }
    // Chunk path. Never start filling the ring while pipe bytes are
    // pending — draining the pipe first preserves byte order.
    if (r->pipe_bytes > 0) break;
    const std::span<std::uint8_t> win = r->ring.write_window();
    if (win.empty()) {
      // Either this session's cap (plain backpressure) or an exhausted
      // pool (remember to re-pump when chunks come back).
      r->pool_blocked = r->ring.pool_starved();
      break;
    }
    r->pool_blocked = false;
    const long n = read_some(r->up.get(), win.data(), win.size());
    if (n == 0) {
      r->up_eof = true;
      break;
    }
    if (n < 0) {
      if (n == -2) {
        if (metrics_) metrics_->read_errors->inc();
        handle_upstream_failure(r);
        return false;
      }
      break;  // EAGAIN
    }
    r->ring.commit(static_cast<std::size_t>(n));
    r->payload_pulled += static_cast<std::uint64_t>(n);
  }
  if (r->payload_pulled != pulled_before) r->live.note_activity(now_ns());
  if (metrics_) {
    metrics_->ring_occupancy_bytes->set(static_cast<double>(r->buffered()));
  }

  if (!pump_downstream(r)) return false;
  update_interest(r);
  sync_liveness(r);
  return true;
}

bool Lsd::pump_downstream(Relay* r) {
  LSL_PRECONDITION(r->state != RelayState::kDone,
                   "downstream pump on a finished relay");
  if (!r->down_connected || stalled_) return true;
  const std::uint64_t relayed_before = stats_.bytes_relayed;

  // Forwarded header first, gathered with the first buffered payload so a
  // session open costs one syscall, not a small-write pair.
  while (r->fwd_off < r->fwd.size()) {
    struct iovec iov[2];
    int iovcnt = 1;
    iov[0].iov_base = r->fwd.data() + r->fwd_off;
    iov[0].iov_len = r->fwd.size() - r->fwd_off;
    const std::span<const std::uint8_t> win = r->ring.read_window();
    if (!win.empty()) {
      iov[1].iov_base = const_cast<std::uint8_t*>(win.data());
      iov[1].iov_len = win.size();
      iovcnt = 2;
    }
    const long n = writev_some(r->down.get(), iov, iovcnt);
    if (n < 0) {
      if (metrics_) metrics_->write_errors->inc();
      finish(r, false, LsdFailReason::kPeerReset);
      return false;
    }
    if (n == 0) {
      update_interest(r);
      return true;
    }
    std::size_t took = static_cast<std::size_t>(n);
    const std::size_t hdr = std::min(took, r->fwd.size() - r->fwd_off);
    r->fwd_off += hdr;
    took -= hdr;
    if (took > 0) {
      r->ring.consume(took);
      stats_.bytes_relayed += took;
      if (metrics_) metrics_->bytes_relayed->inc(took);
      note_stream(r, took);
    }
  }

  // Then ring contents (pre-park bytes are older than any spill).
  while (!r->ring.empty()) {
    const std::span<const std::uint8_t> win = r->ring.read_window();
    const long n = write_some(r->down.get(), win.data(), win.size());
    if (n < 0) {
      if (metrics_) metrics_->write_errors->inc();
      finish(r, false, LsdFailReason::kPeerReset);
      return false;
    }
    if (n == 0) break;  // downstream full
    r->ring.consume(static_cast<std::size_t>(n));
    stats_.bytes_relayed += static_cast<std::uint64_t>(n);
    if (metrics_) metrics_->bytes_relayed->inc(static_cast<std::uint64_t>(n));
    note_stream(r, static_cast<std::uint64_t>(n));
  }

  // Then the pipe (fast path; mutually exclusive with ring contents).
  while (r->ring.empty() && r->pipe_bytes > 0) {
    const long n =
        splice_some(r->pipe_r.get(), r->down.get(), r->pipe_bytes);
    if (n == -1) break;  // downstream full
    if (n == -2) {
      if (metrics_) metrics_->write_errors->inc();
      finish(r, false, LsdFailReason::kPeerReset);
      return false;
    }
    if (n == -3 || n == 0) {
      // The outbound splice is refused (or the pipe misbehaved): rescue
      // the in-flight bytes into the spill and stay on the copy path.
      splice_usable_ = false;
      r->splice_ok = false;
      if (!drain_pipe_to_spill(r)) {
        finish(r, false, LsdFailReason::kOther);
        return false;
      }
      break;
    }
    r->pipe_bytes -= static_cast<std::size_t>(n);
    stats_.bytes_relayed += static_cast<std::uint64_t>(n);
    stats_.bytes_spliced += static_cast<std::uint64_t>(n);
    if (metrics_) {
      metrics_->bytes_relayed->inc(static_cast<std::uint64_t>(n));
      metrics_->bytes_spliced->inc(static_cast<std::uint64_t>(n));
    }
    note_stream(r, static_cast<std::uint64_t>(n));
  }

  // Then bytes salvaged from a dead upstream.
  while (r->buffered() == 0 && !r->spill_empty()) {
    const long n = write_some(r->down.get(), r->spill.data() + r->spill_off,
                              r->spill.size() - r->spill_off);
    if (n < 0) {
      if (metrics_) metrics_->write_errors->inc();
      finish(r, false, LsdFailReason::kPeerReset);
      return false;
    }
    if (n == 0) break;
    r->spill_off += static_cast<std::size_t>(n);
    stats_.bytes_relayed += static_cast<std::uint64_t>(n);
    if (metrics_) metrics_->bytes_relayed->inc(static_cast<std::uint64_t>(n));
    note_stream(r, static_cast<std::uint64_t>(n));
  }
  if (r->spill_empty() && !r->spill.empty()) {
    r->spill.clear();
    r->spill_off = 0;
  }
  if (metrics_) {
    metrics_->ring_occupancy_bytes->set(static_cast<double>(r->buffered()));
  }

  // Propagate EOF once everything is flushed.
  if (r->up_eof && r->buffered() == 0 && r->spill_empty() &&
      r->fwd_off == r->fwd.size() && !r->flushed) {
    ::shutdown(r->down.get(), SHUT_WR);
    r->flushed = true;
    // Relay completion is confirmed when the downstream peer closes
    // (on_downstream sees EOF); the upstream socket stays open until then.
  }
  update_interest(r);
  if (stats_.bytes_relayed != relayed_before) {
    r->live.note_progress(stats_.bytes_relayed - relayed_before);
    r->live.note_activity(now_ns());
  }
  sync_liveness(r);
  // Byte-keyed fault triggers; the hook may crash/stall/reset this very
  // relay, so bail out if it did.
  if (on_progress && stats_.bytes_relayed != relayed_before) {
    on_progress(stats_.bytes_relayed);
    if (r->state == RelayState::kDone) return false;
  }
  return true;
}

std::size_t Lsd::striped_relays() const {
  std::size_t n = 0;
  for (const auto& [_, r] : relays_) {
    if (r->stripe_lane >= 0) ++n;
  }
  return n;
}

void Lsd::note_stream(Relay* r, std::uint64_t took) {
  r->relayed += took;
  if (!tracer_ || r->trace_id == 0) return;
  // One stream-window span per MiB of relayed payload; the window opens at
  // the first byte after the previous close so idle gaps between windows
  // stay visible in the timeline.
  if (r->window_open_ns < 0) {
    r->window_open_ns = now_ns();
    r->window_base = r->relayed - took;
  }
  if (r->relayed - r->window_base >= span::kStreamWindowBytes) {
    tracer_->emit(r->trace_id, span::stream_window_name(r->stripe_lane),
                  span_sec(r->window_open_ns), span_sec(now_ns()), r->relayed);
    r->window_open_ns = -1;
  }
}

void Lsd::flush_stream_window(Relay* r) {
  if (!tracer_ || r->trace_id == 0 || r->window_open_ns < 0) return;
  tracer_->emit(r->trace_id, span::stream_window_name(r->stripe_lane),
                span_sec(r->window_open_ns), span_sec(now_ns()), r->relayed);
  r->window_open_ns = -1;
}

bool Lsd::splice_eligible(const Relay* r) const {
  return config_.use_splice && splice_usable_ && r->splice_ok &&
         r->header_done && r->down_connected && r->ring.empty() &&
         r->spill_empty() && r->discard_left == 0 &&
         r->fwd_off == r->fwd.size();
}

bool Lsd::can_ingest(const Relay* r) const {
  if (splice_eligible(r)) {
    // Room in the pipe — or no pipe yet (the first eligible pump creates
    // it; a failure latches splice_ok off and the chunk predicate rules).
    return !r->pipe_tried || r->pipe_bytes < r->pipe_capacity;
  }
  return r->pipe_bytes == 0 && r->ring.can_accept();
}

void Lsd::update_interest(Relay* r) {
  // Upstream: read while the bytes could land somewhere (pipe space, ring
  // space, an acquirable chunk) and no EOF; write when reverse-path bytes
  // are pending. Reads also pause while the daemon is stalled, a spill is
  // draining, or the pool is dry — level-triggered epoll would spin on
  // data we refuse to consume.
  std::uint32_t up_want =
      (!r->up_eof && !stalled_ && r->spill_empty() &&
       (!r->header_done || r->discard_left > 0 || can_ingest(r)))
          ? static_cast<std::uint32_t>(EPOLLIN)
          : 0u;
  if (r->rev_off < r->rev.size()) up_want |= EPOLLOUT;
  if (r->up.valid() && up_want != r->up_events) {
    loop_.modify(r->up.get(), up_want);
    r->up_events = up_want;
  }
  // Downstream: write while anything is staged; always watch for EOF/err.
  if (r->down.valid() && r->down_connected) {
    std::uint32_t down_want = EPOLLIN;
    if (!stalled_ &&
        (r->buffered() > 0 || !r->spill_empty() ||
         r->fwd_off < r->fwd.size() || (r->up_eof && !r->flushed))) {
      down_want |= EPOLLOUT;
    }
    if (down_want != r->down_events) {
      loop_.modify(r->down.get(), down_want);
      r->down_events = down_want;
    }
  }
}

void Lsd::finish(Relay* r, bool ok, LsdFailReason reason) {
  const auto it = relays_.find(r);
  if (it == relays_.end()) return;  // already finished
  flush_stream_window(r);
  r->state.transition(RelayState::kDone);
  if (r->parked) {
    const auto pit = parked_.find(r->header.session);
    if (pit != parked_.end() && pit->second == r) parked_.erase(pit);
    r->parked = false;
  }
  if (ok) {
    ++stats_.sessions_completed;
    if (draining_ && !drain_done_) ++drain_report_.completed;
  } else {
    ++stats_.sessions_failed;
    switch (reason) {
      case LsdFailReason::kDial: ++stats_.fail_dial; break;
      case LsdFailReason::kHeader: ++stats_.fail_header; break;
      case LsdFailReason::kPeerReset: ++stats_.fail_peer_reset; break;
      case LsdFailReason::kTimeout: ++stats_.fail_timeout; break;
      case LsdFailReason::kNone:
      case LsdFailReason::kOther: ++stats_.fail_other; break;
    }
  }
  // Score the depot this relay dialed: a clean completion promotes it
  // (and feeds the delivered rate into its EWMA); a dial failure or a
  // liveness timeout demotes it. Header/reset failures stay neutral —
  // they indict the upstream, not the next hop.
  if (health_ != nullptr && !r->next_hop_name.empty()) {
    const std::uint64_t now_ms =
        static_cast<std::uint64_t>(now_ns() / 1'000'000);
    if (ok) {
      health_->observe_success(r->next_hop_name, now_ms);
      const double secs =
          static_cast<double>(now_ns() - r->dial_start_ns) / 1e9;
      if (r->dial_start_ns > 0 && secs > 0.0 && r->payload_pulled > 0) {
        health_->observe_bps(
            r->next_hop_name,
            static_cast<double>(r->payload_pulled) * 8.0 / secs, now_ms);
      }
    } else if (reason == LsdFailReason::kDial) {
      health_->observe_failure(r->next_hop_name, now_ms);
    } else if (reason == LsdFailReason::kTimeout) {
      health_->observe_timeout(r->next_hop_name, now_ms);
    }
  }
  r->live.cancel_all();
  wheel_.cancel(r->park_token);
  r->park_token = live::DeadlineWheel::kInvalidToken;
  // Sockets close now (peers must observe the teardown immediately), and
  // buffers go back to the pool now (live sessions must see the freed
  // memory immediately, not after the deferred delete) ...
  if (r->up.valid()) loop_.remove(r->up.get());
  if (r->down.valid()) loop_.remove(r->down.get());
  r->up.reset();
  r->down.reset();
  release_buffers(r);
  // ... but deletion is deferred: `r` may still be on the call stack
  // (finish() is reached from inside its own pump helpers), and keeping
  // the memory alive until the next safe point turns any late touch into
  // a checked kDone-contract failure instead of a use-after-free.
  graveyard_.push_back(std::move(it->second));
  relays_.erase(it);
  maybe_finish_drain();
}

void Lsd::release_buffers(Relay* r) {
  r->ring.clear();  // every chunk returns to the pool freelist here
  r->pipe_r.reset();
  r->pipe_w.reset();
  r->pipe_bytes = 0;
  // Swap-with-empty actually frees the heap blocks; clear() would keep
  // capacity alive for as long as the graveyard does.
  std::vector<std::uint8_t>().swap(r->spill);
  r->spill_off = 0;
  std::vector<std::uint8_t>().swap(r->rev);
  r->rev_off = 0;
  std::vector<std::uint8_t>().swap(r->header_buf);
}

bool Lsd::drain_pipe_to_spill(Relay* r) {
  while (r->pipe_bytes > 0) {
    const std::size_t old = r->spill.size();
    r->spill.resize(old + r->pipe_bytes);
    const long n =
        read_some(r->pipe_r.get(), r->spill.data() + old, r->pipe_bytes);
    if (n <= 0) {
      // A pipe holding bytes must be readable; anything else means the
      // accounting is wrong or the pipe died.
      r->spill.resize(old);
      return false;
    }
    r->spill.resize(old + static_cast<std::size_t>(n));
    r->pipe_bytes -= static_cast<std::size_t>(n);
  }
  return true;
}

void Lsd::service_pool_waiters() {
  if (servicing_waiters_) return;
  servicing_waiters_ = true;
  std::vector<Relay*> blocked;
  for (const auto& [r, owned] : relays_) {
    if (r->pool_blocked && !r->parked && r->state != RelayState::kDone) {
      blocked.push_back(r);
    }
  }
  for (Relay* r : blocked) {
    if (!pool_->can_acquire()) break;
    if (relays_.find(r) == relays_.end()) continue;  // finished meanwhile
    if (r->state == RelayState::kDone || !r->up.valid()) continue;
    pump_upstream(r);
  }
  servicing_waiters_ = false;
}

void Lsd::handle_upstream_failure(Relay* r) {
  // A session is parkable once its header is parsed and until its
  // upstream EOF — after EOF the source has nothing left to resume.
  if (config_.resume_grace.count() > 0 && r->header_done && !r->up_eof &&
      r->header.session.valid()) {
    park_relay(r);
  } else {
    finish(r, false, LsdFailReason::kPeerReset);
  }
}

void Lsd::salvage_upstream(Relay* r) {
  // Bytes already spliced into the pipe are older than anything still in
  // the socket's receive queue; they lead the spill.
  if (r->pipe_bytes > 0) drain_pipe_to_spill(r);
  if (!r->up.valid() || !r->header_done || r->up_eof) return;
  std::uint8_t buf[16 * 1024];
  for (;;) {
    const long n = read_some(r->up.get(), buf, sizeof(buf));
    if (n <= 0) break;  // EAGAIN, EOF or error: nothing more to save
    std::size_t off = 0;
    std::size_t len = static_cast<std::size_t>(n);
    if (r->discard_left > 0) {
      const std::size_t d = static_cast<std::size_t>(
          std::min<std::uint64_t>(r->discard_left, len));
      r->discard_left -= d;
      off = d;
      len -= d;
    }
    r->spill.insert(r->spill.end(), buf + off, buf + off + len);
    r->payload_pulled += len;
  }
}

void Lsd::park_relay(Relay* r) {
  // Everything the kernel already acknowledged on the source's behalf must
  // survive the fd: the resuming source will not retransmit acked bytes.
  flush_stream_window(r);
  const std::int64_t salvage_start = now_ns();
  salvage_upstream(r);
  if (tracer_ && r->trace_id != 0) {
    tracer_->emit(r->trace_id, span::kSpanSalvage, span_sec(salvage_start),
                  span_sec(now_ns()), r->spill.size());
    tracer_->mark(r->trace_id, span::kSpanPark, span_sec(now_ns()),
                  r->payload_pulled);
  }
  if (r->up.valid()) {
    loop_.remove(r->up.get());
    r->up.reset();
  }
  r->parked = true;
  r->park_deadline = std::chrono::steady_clock::now() + config_.resume_grace;
  // A parked relay has no live connection to watch; only the park expiry
  // (a wheel entry, so the timerfd fires it without waiting for the next
  // lazy expire_parked() sweep) can end it now.
  r->live.cancel_all();
  wheel_.cancel(r->park_token);
  r->park_token = wheel_.schedule(
      now_ns() + std::chrono::nanoseconds(config_.resume_grace).count(),
      [this, r] {
        r->park_token = live::DeadlineWheel::kInvalidToken;
        if (!r->parked) return;
        LSL_LOG_WARN("lsd: parked session %s expired unresumed",
                     r->header.session.hex().c_str());
        finish(r, false, LsdFailReason::kPeerReset);
      });
  // Last writer wins: a re-parked session replaces its stale index entry.
  parked_[r->header.session] = r;
  ++stats_.sessions_parked;
  // The park indicts the peer whose connection died under the session,
  // not the depot we dialed onward.
  if (health_ != nullptr && !r->peer_name.empty()) {
    const std::uint64_t now_ms =
        static_cast<std::uint64_t>(now_ns() / 1'000'000);
    health_->observe_park(r->peer_name, now_ms);
    if (!r->spill.empty()) health_->observe_salvage(r->peer_name, now_ms);
  }
  LSL_LOG_INFO("lsd: parked session %s at offset %llu (salvaged %zu bytes)",
               r->header.session.hex().c_str(),
               static_cast<unsigned long long>(r->payload_pulled),
               r->spill.size());
  // Keep draining what we hold toward the downstream meanwhile.
  pump_downstream(r);
  // A drain treats parking as resolution: the session's fate now rests
  // with a future resume against whoever replaces this daemon.
  maybe_finish_drain();
}

void Lsd::try_resume(Relay* fresh) {
  expire_parked();
  const auto it = parked_.find(fresh->header.session);
  if (it == parked_.end()) {
    LSL_LOG_WARN("lsd: resume refused: unknown or expired session %s",
                 fresh->header.session.hex().c_str());
    finish(fresh, false, LsdFailReason::kHeader);
    return;
  }
  Relay* p = it->second;
  const std::uint64_t offset = fresh->header.resume_offset;
  if (offset > p->payload_pulled) {
    // The source believes more was delivered than we hold — bytes lost in
    // flight when the old connection died. Refusing keeps the stream
    // gap-free; the source must fall back to a fresh transfer.
    LSL_LOG_WARN("lsd: resume refused: offset %llu beyond pulled %llu",
                 static_cast<unsigned long long>(offset),
                 static_cast<unsigned long long>(p->payload_pulled));
    finish(fresh, false, LsdFailReason::kHeader);
    return;
  }
  p->discard_left = p->payload_pulled - offset;
  // The fd is still registered under the husk's callback from accept time;
  // re-register it under the adopting relay.
  loop_.remove(fresh->up.get());
  p->up = std::move(fresh->up);
  p->parked = false;
  wheel_.cancel(p->park_token);
  p->park_token = live::DeadlineWheel::kInvalidToken;
  parked_.erase(it);
  ++stats_.sessions_resumed;
  LSL_LOG_INFO("lsd: resumed session %s from offset %llu (discarding %llu)",
               p->header.session.hex().c_str(),
               static_cast<unsigned long long>(offset),
               static_cast<unsigned long long>(p->discard_left));
  p->up_events = EPOLLIN;
  loop_.add(p->up.get(), EPOLLIN, [this, p](std::uint32_t ev) {
    on_upstream(p, ev);
    service_pool_waiters();
    arm_timer();
  });
  // Back in the stream phase: the idle/stall watchdog resumes.
  p->live.on_connected(now_ns());
  if (tracer_ && p->trace_id != 0) {
    tracer_->mark(p->trace_id, span::kSpanResume, span_sec(now_ns()), offset);
  }
  // The husk that carried the resume header is done; it must not count as
  // a completed or failed session.
  discard_relay(fresh);
  // Reverse bytes that queued while parked flow on the new connection,
  // then normal pumping takes over.
  if (!flush_reverse(p)) return;
  pump_upstream(p);
}

void Lsd::discard_relay(Relay* r) {
  const auto it = relays_.find(r);
  if (it == relays_.end()) return;
  r->state.transition(RelayState::kDone);
  r->live.cancel_all();
  wheel_.cancel(r->park_token);
  r->park_token = live::DeadlineWheel::kInvalidToken;
  if (r->up.valid()) loop_.remove(r->up.get());
  if (r->down.valid()) loop_.remove(r->down.get());
  r->up.reset();
  r->down.reset();
  release_buffers(r);
  graveyard_.push_back(std::move(it->second));
  relays_.erase(it);
  maybe_finish_drain();
}

void Lsd::expire_parked() {
  if (parked_.empty()) return;
  const auto now = std::chrono::steady_clock::now();
  std::vector<Relay*> expired;
  for (const auto& [id, r] : parked_) {
    if (r->park_deadline <= now) expired.push_back(r);
  }
  for (Relay* r : expired) {
    LSL_LOG_WARN("lsd: parked session %s expired unresumed",
                 r->header.session.hex().c_str());
    finish(r, false, LsdFailReason::kPeerReset);
  }
  arm_timer();
}

void Lsd::crash() {
  if (crashed_) return;
  crashed_ = true;
  if (listener_.valid()) {
    loop_.remove(listener_.get());
    listener_.reset();
  }
  while (!relays_.empty()) {
    Relay* r = relays_.begin()->first;
    if (r->up.valid()) arm_reset(r->up.get());
    if (r->down.valid()) arm_reset(r->down.get());
    finish(r, false, LsdFailReason::kOther);
  }
  arm_timer();
}

void Lsd::restart() {
  if (!crashed_) return;
  listener_ = listen_tcp(InetAddress{config_.bind.addr, port_}, 64, &port_,
                         config_.reuse_port);
  if (!listener_.valid()) {
    LSL_LOG_WARN("lsd: restart failed to re-bind port %u: %s",
                 static_cast<unsigned>(port_), std::strerror(errno));
    return;
  }
  crashed_ = false;
  loop_.add(listener_.get(), EPOLLIN, [this](std::uint32_t) { on_accept(); });
  LSL_LOG_INFO("lsd: restarted on port %u", static_cast<unsigned>(port_));
}

void Lsd::set_stalled(bool stalled) {
  if (stalled_ == stalled) return;
  stalled_ = stalled;
  std::vector<Relay*> live;
  live.reserve(relays_.size());
  for (const auto& [r, owned] : relays_) live.push_back(r);
  if (stalled_) {
    for (Relay* r : live) {
      update_interest(r);  // drop read/write interest
      // A stalled daemon is the one failing to progress; the watchdog
      // treats that as pending work so the stall deadline can catch a
      // `slow` injection that outlives its window.
      sync_liveness(r);
    }
    arm_timer();
    return;
  }
  for (Relay* r : live) {  // kick everything that waited out the stall
    if (r->state == RelayState::kDone) continue;
    if (!pump_downstream(r)) continue;
    if (r->state == RelayState::kDone) continue;
    if (r->up.valid()) {
      pump_upstream(r);
    } else {
      update_interest(r);
      sync_liveness(r);
    }
  }
  service_pool_waiters();
  arm_timer();
}

void Lsd::inject_upstream_reset() {
  std::vector<Relay*> targets;
  for (const auto& [r, owned] : relays_) {
    if (r->state == RelayState::kDone || r->parked || !r->header_done ||
        !r->up.valid()) {
      continue;
    }
    targets.push_back(r);
  }
  for (Relay* r : targets) {
    // park/finish salvages the recv queue first, then the armed close
    // emits RST so the source sees a hard mid-stream reset.
    arm_reset(r->up.get());
    handle_upstream_failure(r);
  }
  arm_timer();
}

// --- Liveness / drain --------------------------------------------------------

std::int64_t Lsd::now_ns() const { return TimerFd::now_ns(); }

int Lsd::next_timeout_ms() const {
  return wheel_.next_timeout_ms(TimerFd::now_ns());
}

void Lsd::arm_timer() {
  if (wheel_.empty()) {
    if (timer_) timer_->disarm();
    return;
  }
  if (!timer_) {
    timer_ = std::make_unique<TimerFd>(loop_, [this] {
      wheel_.fire_due(TimerFd::now_ns());
      reap_finished();  // deadline callbacks finish relays
      arm_timer();
    });
  }
  timer_->arm(wheel_.next_due());
}

void Lsd::sync_liveness(Relay* r) {
  if (r->state == RelayState::kDone || r->parked) return;
  // "Should be making progress" = bytes are staged for downstream, or the
  // daemon itself is stalled by an injected `slow` fault (the failure the
  // watchdog exists to surface). Otherwise the quiet stream is the idle
  // deadline's problem.
  const bool staged =
      r->down_connected &&
      (stalled_ || r->buffered() > 0 || !r->spill_empty() ||
       r->fwd_off < r->fwd.size());
  r->live.set_should_progress(staged, now_ns());
}

void Lsd::on_deadline(Relay* r, live::DeadlineKind kind) {
  if (relays_.find(r) == relays_.end() || r->state == RelayState::kDone) {
    return;
  }
  LSL_LOG_WARN("lsd: %s deadline expired for session %s",
               live::to_string(kind),
               r->header_done ? r->header.session.hex().c_str() : "<none>");
  switch (kind) {
    case live::DeadlineKind::kHeader: ++stats_.timeouts_header; break;
    case live::DeadlineKind::kDial: ++stats_.timeouts_dial; break;
    case live::DeadlineKind::kIdle: ++stats_.timeouts_idle; break;
    case live::DeadlineKind::kStall: ++stats_.timeouts_stall; break;
    case live::DeadlineKind::kDrain:
      return;  // daemon-wide; handled by on_drain_deadline
  }
  if (live_metrics_) live_metrics_->on_timeout(kind);
  // A timed-out peer gets a hard reset: it is by definition not reading
  // in an orderly way, so there is no FIN handshake worth waiting for.
  if (r->up.valid()) arm_reset(r->up.get());
  finish(r, false, LsdFailReason::kTimeout);
}

void Lsd::set_dial_blackhole(bool on) {
  if (dial_blackhole_ == on) return;
  dial_blackhole_ = on;
  if (on) return;
  // Repair: surface the connects that silently completed (or failed)
  // while the hole was open.
  for (const auto& [r, owned] : relays_) {
    if (r->down_connecting && r->down.valid() && r->down_events == 0) {
      r->down_events = EPOLLOUT | EPOLLIN;
      loop_.modify(r->down.get(), r->down_events);
    }
  }
}

void Lsd::begin_drain() {
  if (draining_) return;
  draining_ = true;
  drain_done_ = false;
  drain_start_ns_ = now_ns();
  drain_report_ = {};
  drain_report_.in_flight_at_start = relays_.size() - parked_.size();
  if (live_metrics_) live_metrics_->drains_started->inc();
  LSL_LOG_INFO("lsd: drain started, %llu sessions in flight",
               static_cast<unsigned long long>(
                   drain_report_.in_flight_at_start));
  if (config_.liveness.drain_deadline > 0) {
    drain_token_ =
        wheel_.schedule(now_ns() + config_.liveness.drain_deadline, [this] {
          drain_token_ = live::DeadlineWheel::kInvalidToken;
          on_drain_deadline();
        });
  }
  arm_timer();
  maybe_finish_drain();
}

void Lsd::maybe_finish_drain() {
  if (!draining_ || drain_done_) return;
  if (relays_.size() > parked_.size()) return;  // live sessions remain
  drain_done_ = true;
  drain_report_.parked = parked_.size();
  wheel_.cancel(drain_token_);
  drain_token_ = live::DeadlineWheel::kInvalidToken;
  if (live_metrics_ && !drain_report_.expired) {
    live_metrics_->drains_completed->inc();
  }
  if (tracer_) {
    // Trace id 0 = node scope: the drain belongs to the daemon, not to any
    // one session flowing through it.
    tracer_->emit(0, span::kSpanDrain, span_sec(drain_start_ns_),
                  span_sec(now_ns()), drain_report_.completed);
  }
  LSL_LOG_INFO("lsd: %s", drain_report_.summary().c_str());
  if (on_drain_done) on_drain_done(drain_report_);
}

void Lsd::on_drain_deadline() {
  if (!draining_ || drain_done_) return;
  drain_report_.expired = true;
  if (live_metrics_) live_metrics_->on_timeout(live::DeadlineKind::kDrain);
  // Sessions that neither finished nor parked in time are torn down the
  // hard way — the drain's whole point is a bounded exit.
  std::vector<Relay*> stragglers;
  for (const auto& [r, owned] : relays_) {
    if (!r->parked) stragglers.push_back(r);
  }
  drain_report_.aborted = stragglers.size();
  for (Relay* r : stragglers) {
    if (r->up.valid()) arm_reset(r->up.get());
    if (r->down.valid()) arm_reset(r->down.get());
    finish(r, false, LsdFailReason::kOther);
  }
  maybe_finish_drain();
}

}  // namespace lsl::posix
