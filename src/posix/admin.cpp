#include "posix/admin.hpp"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <system_error>

#include "health/gossip.hpp"
#include "metrics/export.hpp"
#include "metrics/metrics.hpp"
#include "posix/lsd.hpp"
#include "span/span.hpp"
#include "util/log.hpp"

namespace lsl::posix {

namespace {

Fd listen_unix(const std::string& path) {
  sockaddr_un sa{};
  sa.sun_family = AF_UNIX;
  if (path.size() >= sizeof(sa.sun_path)) {
    errno = ENAMETOOLONG;
    return Fd{};
  }
  std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
  Fd sock(::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!sock.valid()) return Fd{};
  // A stale socket file from a previous (crashed) daemon would make bind
  // fail with EADDRINUSE even though nobody is listening; remove it first.
  ::unlink(path.c_str());
  if (::bind(sock.get(), reinterpret_cast<const sockaddr*>(&sa),
             sizeof(sa)) != 0) {
    return Fd{};
  }
  if (::listen(sock.get(), 8) != 0) return Fd{};
  return sock;
}

}  // namespace

AdminServer::AdminServer(engine::EventEngine& loop, std::string socket_path,
                         AdminSource& source)
    : loop_(loop), source_(source), path_(std::move(socket_path)) {
  listener_ = listen_unix(path_);
  if (!listener_.valid()) {
    throw std::system_error(errno, std::generic_category(),
                            "admin socket bind: " + path_);
  }
  loop_.add(listener_.get(), EPOLLIN, [this](std::uint32_t) { on_accept(); });
  LSL_LOG_INFO("admin: listening on %s", path_.c_str());
}

AdminServer::~AdminServer() {
  for (auto& c : conns_) {
    if (c->sock.valid()) loop_.remove(c->sock.get());
  }
  conns_.clear();
  if (listener_.valid()) loop_.remove(listener_.get());
  listener_.reset();
  ::unlink(path_.c_str());
}

void AdminServer::on_accept() {
  for (;;) {
    Fd sock(::accept4(listener_.get(), nullptr, nullptr,
                      SOCK_NONBLOCK | SOCK_CLOEXEC));
    if (!sock.valid()) return;  // EAGAIN or error: nothing (more) pending
    auto conn = std::make_unique<Conn>();
    Conn* c = conn.get();
    c->sock = std::move(sock);
    c->events = EPOLLIN;
    conns_.push_back(std::move(conn));
    loop_.add(c->sock.get(), EPOLLIN,
              [this, c](std::uint32_t ev) { on_conn(c, ev); });
  }
}

void AdminServer::on_conn(Conn* c, std::uint32_t events) {
  if (events & (EPOLLHUP | EPOLLERR)) {
    close_conn(c);
    return;
  }
  if (events & EPOLLIN) {
    std::uint8_t buf[4096];
    for (;;) {
      const long n = read_some(c->sock.get(), buf, sizeof(buf));
      if (n == -1) break;  // EAGAIN
      if (n <= 0) {        // EOF or fatal
        close_conn(c);
        return;
      }
      c->in.append(reinterpret_cast<const char*>(buf),
                   static_cast<std::size_t>(n));
      // A runaway sender (no newline) must not grow the buffer unbounded.
      if (c->in.size() > 4096) {
        close_conn(c);
        return;
      }
    }
    std::size_t nl;
    while ((nl = c->in.find('\n')) != std::string::npos) {
      std::string line = c->in.substr(0, nl);
      c->in.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      handle_command(c, line);
    }
  }
  flush(c);
}

void AdminServer::handle_command(Conn* c, const std::string& line) {
  if (line == "stats") {
    c->out += cmd_stats();
  } else if (line == "spans") {
    c->out += cmd_spans();
  } else if (line == "health") {
    c->out += cmd_health();
  } else if (line == "gossip") {
    c->out += cmd_gossip();
  } else {
    c->out +=
        "{\"error\":\"unknown command (try stats|spans|health|gossip)\"}\n";
  }
  c->out += "\n";  // blank line = end of response
}

std::string AdminServer::cmd_stats() const {
  std::ostringstream out;
  if (registry_) {
    metrics::write_jsonl(*registry_, out);
  } else {
    const LsdStats s = source_.admin_stats();
    out << "{\"sessions_accepted\":" << s.sessions_accepted
        << ",\"sessions_completed\":" << s.sessions_completed
        << ",\"sessions_failed\":" << s.sessions_failed
        << ",\"bytes_relayed\":" << s.bytes_relayed
        << ",\"bytes_spliced\":" << s.bytes_spliced << "}\n";
  }
  return out.str();
}

std::string AdminServer::cmd_spans() const {
  if (!tracer_) return "{\"error\":\"no tracer attached\"}\n";
  std::ostringstream out;
  span::dump_jsonl(*tracer_, out);
  if (out.tellp() == 0) {
    // An empty recorder must still yield a response line: the framing is
    // "lines, then one blank line", and a bare blank line is too easy for
    // a client to mistake for a partial read.
    return "{\"spans\":0}\n";
  }
  return out.str();
}

std::string AdminServer::cmd_health() const {
  const AdminHealth h = source_.admin_health();
  const LsdStats& s = h.stats;
  std::ostringstream out;
  out << "{\"port\":" << h.port << ",\"live_relays\":" << h.live_relays
      << ",\"parked_relays\":" << h.parked_relays;
  // Sharded daemons report their width; the classic daemon's output stays
  // byte-identical (no new field).
  if (h.shards > 0) out << ",\"shards\":" << h.shards;
  // Likewise striped sessions: the field appears only while striped (wire
  // v3) relays are live, so unstriped daemons keep the historical output.
  if (h.stripes > 0) out << ",\"stripes\":" << h.stripes;
  out << ",\"draining\":" << (h.draining ? "true" : "false")
      << ",\"drain_done\":" << (h.drain_done ? "true" : "false")
      << ",\"sessions_accepted\":" << s.sessions_accepted
      << ",\"sessions_completed\":" << s.sessions_completed
      << ",\"sessions_failed\":" << s.sessions_failed
      << ",\"sessions_parked\":" << s.sessions_parked
      << ",\"sessions_resumed\":" << s.sessions_resumed
      << ",\"bytes_relayed\":" << s.bytes_relayed
      << ",\"bytes_spliced\":" << s.bytes_spliced;
  // Depot scorecard rows appear only when a HealthBoard is attached and
  // has observed something — a board-less daemon's output stays
  // byte-identical (same bargain as "shards"/"stripes" above).
  if (!h.depots.empty()) {
    out << ",\"depots\":[";
    bool first = true;
    for (const auto& d : h.depots) {
      if (!first) out << ",";
      first = false;
      out << "{\"name\":\"" << d.name << "\",\"state\":\""
          << health::to_string(d.state) << "\",\"score\":" << d.score
          << ",\"ewma_bps\":" << d.ewma_bps
          << ",\"successes\":" << d.successes
          << ",\"failures\":" << d.failures << ",\"timeouts\":" << d.timeouts
          << ",\"parks\":" << d.parks << ",\"salvages\":" << d.salvages
          << ",\"transitions\":" << d.transitions << "}";
    }
    out << "]";
  }
  out << "}\n";
  return out.str();
}

std::string AdminServer::cmd_gossip() const {
  const AdminHealth h = source_.admin_health();
  if (h.depots.empty()) {
    // An empty scorecard must still yield a response line (same framing
    // argument as `spans`); decode_gossip skips `#` comments, so a poller
    // can feed the whole body straight through.
    return "# none\n";
  }
  return health::encode_gossip(h.depots);
}

bool AdminServer::flush(Conn* c) {
  while (c->out_off < c->out.size()) {
    const long n = write_some(
        c->sock.get(),
        reinterpret_cast<const std::uint8_t*>(c->out.data()) + c->out_off,
        c->out.size() - c->out_off);
    if (n < 0) {
      close_conn(c);
      return false;
    }
    if (n == 0) break;  // EAGAIN: wait for EPOLLOUT
    c->out_off += static_cast<std::size_t>(n);
  }
  if (c->out_off >= c->out.size()) {
    c->out.clear();
    c->out_off = 0;
  }
  const std::uint32_t want =
      EPOLLIN | (c->out.empty() ? 0u : static_cast<std::uint32_t>(EPOLLOUT));
  if (want != c->events) {
    c->events = want;
    loop_.modify(c->sock.get(), want);
  }
  return true;
}

void AdminServer::close_conn(Conn* c) {
  loop_.remove(c->sock.get());
  conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                              [c](const std::unique_ptr<Conn>& p) {
                                return p.get() == c;
                              }),
               conns_.end());
}

}  // namespace lsl::posix
