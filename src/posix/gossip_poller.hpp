// GossipPoller: a nonblocking admin-socket client that spreads depot
// health judgements between relay daemons.
//
// Each lsd daemon scores only the depots it personally dials; the depot
// two hops away learns nothing until its own dial fails. The poller
// closes that gap without any new wire protocol: on a fixed cadence it
// connects to each peer's *admin* Unix socket, issues the `gossip`
// command, and merges the returned `h1` rows into the local HealthBoard
// with a configurable weight (judgement blending — see
// BasicHealthBoard::merge for why counters are never added).
//
// Everything runs on the daemon's own event loop: connects, writes and
// reads are nonblocking and edge-driven, so a dead or wedged peer can
// never stall the relay path — its poll simply times out at the next
// cadence tick and the connection is abandoned.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/event_engine.hpp"
#include "health/board.hpp"
#include "posix/fd.hpp"

namespace lsl::posix {

struct GossipPollerConfig {
  /// Admin Unix-socket paths of the peers to poll.
  std::vector<std::string> peers;
  /// Cadence per peer; a poll still in flight when the next tick arrives
  /// is abandoned (counted as a failure) and restarted.
  std::chrono::milliseconds interval{1000};
  /// Merge weight in (0, 1]: how far the local score shifts toward the
  /// remote judgement per poll.
  double weight = 0.5;
  /// When nonempty, rows naming this depot are dropped before merging —
  /// a daemon must not let a peer's opinion of *itself* feed back into
  /// the scores it serves back to that peer.
  std::string self_name;
};

class GossipPoller {
 public:
  /// Every row a peer reports is merged into every board in `boards` —
  /// one for the classic daemon, one per shard for ShardedLsd (each board
  /// is mutex-guarded, so merging from the control thread is safe). The
  /// boards must outlive the poller; the loop drives all socket IO.
  GossipPoller(engine::EventEngine& loop,
               std::vector<health::HealthBoard*> boards,
               GossipPollerConfig config);
  ~GossipPoller();

  GossipPoller(const GossipPoller&) = delete;
  GossipPoller& operator=(const GossipPoller&) = delete;

  /// Drive the cadence: start polls that are due, abandon ones that
  /// overstayed an interval. Call from the daemon's idle turn (the same
  /// place expire_parked()/fault poll() run); sub-interval precision is
  /// not needed.
  void poll();

  /// Milliseconds until the next poll is due (for bounded run_once waits).
  int next_timeout_ms() const;

  std::uint64_t polls_completed() const { return completed_; }
  std::uint64_t polls_failed() const { return failed_; }
  std::uint64_t rows_merged() const { return merged_; }

 private:
  struct Peer {
    std::string path;
    Fd sock;
    bool connecting = false;
    std::size_t sent = 0;    ///< bytes of the "gossip\n" command written
    std::string in;          ///< response bytes; complete at "\n\n"
    std::chrono::steady_clock::time_point next_due;
    std::chrono::steady_clock::time_point started;
  };

  void start_poll(Peer& p);
  void on_event(Peer& p, std::uint32_t events);
  /// Write any unsent command bytes; false = peer closed/error.
  bool pump_send(Peer& p);
  void finish_poll(Peer& p, bool ok);
  void abandon(Peer& p);

  engine::EventEngine& loop_;
  std::vector<health::HealthBoard*> boards_;
  GossipPollerConfig config_;
  std::vector<std::unique_ptr<Peer>> peers_;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t merged_ = 0;
};

}  // namespace lsl::posix
