// Striped real-socket source: one LSL session over N depot chains at once.
//
// StripedPosixSource splits a session's byte stream into lanes with a
// stripe::StripePlan and runs one PosixSource per lane, each dialing its
// own depot route with a version-3 header (shared session id, per-lane
// StripeInfo) so the PosixSinkServer groups the connections into a single
// reassembly and answers every lane with one end-to-end status byte when
// the merged stream's MD5 checks out.
//
// Lane death composes with the striping the same way the simulator's
// driver does (src/exp/striped.cpp): with plan redundancy the surviving
// lanes already cover the dead lane's logical stripes and nothing is
// re-sent; without it the lane is re-striped onto the next spare route
// after a timerfd-paced delay. Unlike the simulator — which reads the
// sink's lane progress directly — this client only observes first-hop
// ACKs, which a crashed depot may have issued for bytes it never relayed,
// so a replacement lane conservatively resends the whole lane and lets the
// reassembler drop the duplicates (docs/STRIPING.md discusses the trade).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "posix/client.hpp"
#include "stripe/plan.hpp"

namespace lsl::posix {

/// Striped source configuration.
struct StripedPosixSourceConfig {
  /// One depot route per lane (each usually a single depot; may be empty
  /// for a direct lane). Lane count = lane_routes.size(), in [2, 16].
  std::vector<std::vector<InetAddress>> lane_routes;
  /// Replacement routes consumed in order when a lane must re-stripe.
  std::vector<std::vector<InetAddress>> spare_routes;
  InetAddress destination;
  std::uint64_t payload_bytes = 0;
  std::uint64_t payload_seed = 1;
  /// Round-robin cell size of the stripe plan.
  std::uint32_t chunk = 64 * 1024;
  /// Extra carriers per logical stripe (loss masking; see stripe/plan.hpp).
  std::uint8_t redundancy = 0;
  /// Re-stripe budget and pacing for lanes redundancy cannot absorb.
  std::uint32_t max_restripes = 4;
  std::chrono::milliseconds restripe_delay{50};
  std::chrono::milliseconds dial_timeout{0};
  std::uint64_t trace_id = 0;
  /// Session id override: callers running several striped sessions from
  /// one seed (lsl_load slots) must keep them in distinct sink groups.
  /// Unset derives one id deterministically from payload_seed.
  std::optional<core::SessionId> session;
};

/// Streams one striped LSL session; on_done(ok) fires once when the sink
/// confirmed the merged stream (ok) or recovery ran out of options.
class StripedPosixSource {
 public:
  StripedPosixSource(EpollLoop& loop, StripedPosixSourceConfig config);

  StripedPosixSource(const StripedPosixSource&) = delete;
  StripedPosixSource& operator=(const StripedPosixSource&) = delete;

  void start();

  std::function<void(bool ok)> on_done;

  bool finished() const { return finished_; }
  std::uint16_t lanes() const { return static_cast<std::uint16_t>(lanes_.size()); }
  std::uint32_t stripes_lost() const { return stripes_lost_; }
  std::uint32_t stripes_recovered() const { return stripes_recovered_; }
  /// Bytes handed to replacement lanes (0 when redundancy absorbed every
  /// death).
  std::uint64_t retransmitted_bytes() const { return retransmitted_; }

 private:
  struct Lane {
    core::StripeInfo info;
    std::uint64_t total = 0;
    std::vector<InetAddress> route;
    std::unique_ptr<PosixSource> source;
    bool settled = false;  ///< ok, absorbed, or abandoned
    bool dead = false;     ///< lost and not (yet) replaced
  };

  void launch_lane(std::size_t li);
  void on_lane_done(std::size_t li, bool ok);
  bool coverage_without_dead() const;
  void maybe_finish();
  void fail_all();

  EpollLoop& loop_;
  StripedPosixSourceConfig config_;
  core::SessionId session_;
  md5::Digest session_digest_;
  stripe::StripePlan plan_;
  std::vector<Lane> lanes_;
  /// One timerfd per pending re-stripe: lane relaunch happens on the event
  /// loop after restripe_delay, never inline in the failure callback.
  std::vector<std::unique_ptr<TimerFd>> timers_;
  std::uint32_t stripes_lost_ = 0;
  std::uint32_t stripes_recovered_ = 0;
  std::uint32_t restripes_left_ = 0;
  std::uint64_t retransmitted_ = 0;
  bool session_ok_ = false;
  bool finished_ = false;
};

}  // namespace lsl::posix
