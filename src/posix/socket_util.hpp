// Nonblocking TCP socket helpers shared by the lsd daemon and the posix
// client/sink applications.
#pragma once

#include <netinet/in.h>
#include <sys/uio.h>

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "posix/fd.hpp"

namespace lsl::posix {

/// IPv4 address + port in host byte order.
struct InetAddress {
  std::uint32_t addr = 0;  ///< e.g. 0x7f000001 for 127.0.0.1
  std::uint16_t port = 0;

  static InetAddress loopback(std::uint16_t port) {
    return {0x7f000001u, port};
  }
  sockaddr_in to_sockaddr() const;
  std::string to_string() const;
};

/// Parse dotted-quad "a.b.c.d" into host-order u32; nullopt on error.
std::optional<std::uint32_t> parse_ipv4(const std::string& dotted);

/// Set O_NONBLOCK on `fd`; returns false on error.
bool set_nonblocking(int fd);

/// Disable Nagle (TCP_NODELAY).
bool set_nodelay(int fd);

/// Create a nonblocking listening socket bound to `bind_addr` with
/// SO_REUSEADDR. If bind_addr.port == 0, an ephemeral port is chosen;
/// `bound_port` (when non-null) receives the actual port. With
/// `reuse_port`, SO_REUSEPORT is also set — several listeners (one per
/// daemon shard) bind the same address and the kernel load-balances
/// accepted connections across them. Invalid Fd on failure (errno is
/// preserved).
Fd listen_tcp(const InetAddress& bind_addr, int backlog = 64,
              std::uint16_t* bound_port = nullptr, bool reuse_port = false);

/// Begin a nonblocking connect to `remote`. On return the socket is either
/// connected or connecting (EINPROGRESS) — wait for EPOLLOUT and check
/// connect_result(). Invalid Fd on immediate failure.
Fd connect_tcp(const InetAddress& remote);

/// After EPOLLOUT on a connecting socket: 0 on success, else the errno.
int connect_result(int fd);

/// Accept one connection (nonblocking); invalid Fd when none pending.
Fd accept_connection(int listen_fd);

/// write() as much of [data, data+len) as the socket accepts.
/// Returns bytes written (possibly 0 on EAGAIN), or -1 on fatal error.
long write_some(int fd, const std::uint8_t* data, std::size_t len);

/// Scatter/gather write_some: send as much of the iovec array as the
/// socket accepts in one sendmsg (MSG_NOSIGNAL, EINTR retried). The relay
/// uses it to pair the forwarded header with the first payload bytes in
/// one syscall. Returns bytes written (0 on EAGAIN), or -1 on fatal error.
/// Does not modify the iovec array; callers account partial progress.
long writev_some(int fd, const struct iovec* iov, int iovcnt);

/// read() up to `len` bytes. Returns bytes read, 0 on orderly EOF, -1 on
/// EAGAIN (no data), -2 on fatal error.
long read_some(int fd, std::uint8_t* data, std::size_t len);

/// Create a nonblocking pipe (the splice fast path's kernel buffer).
/// On success fills rd/wr and returns the pipe's capacity in bytes
/// (F_GETPIPE_SZ, or a conservative default when unavailable); 0 on
/// failure.
std::size_t make_pipe(Fd* rd, Fd* wr);

/// splice() up to `len` bytes from `in_fd` to `out_fd` without copying
/// through user space. Returns bytes moved, 0 on EOF at `in_fd`, -1 on
/// EAGAIN (either side), -2 on fatal error, -3 when the kernel refuses
/// splice on these fds altogether (EINVAL — caller falls back to the
/// copy path for good).
long splice_some(int in_fd, int out_fd, std::size_t len);

}  // namespace lsl::posix
