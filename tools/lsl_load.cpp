// lsl_load — capacity harness for the lsd daemon's pooled-memory data path.
//
// Runs N concurrent LSL sessions through ONE daemon instance in a single
// process (sources, daemon, and verifying sink share an epoll loop, like
// the posix test tier), and reports what the pool did under load:
// aggregate throughput, session completion rate, peak RSS, and the
// `pool.*` counters from docs/OBSERVABILITY.md. Exit status is nonzero if
// any session fails verification or the pool's peak exceeds its budget —
// which makes this binary the assertion behind scripts/bench_smoke.sh.
//
//   lsl_load [--sessions=N] [--bytes=SIZE] [--budget=SIZE] [--chunk=SIZE]
//            [--buffer=SIZE] [--no-splice] [--seed=S] [--json=FILE]
//            [--metrics-out=FILE] [--log-level=LEVEL]
//            [--trace] [--spans-out=FILE]
//
// SIZE accepts k/m/g suffixes (binary units): --bytes=4m, --budget=64m.
// --trace mints one trace id per session slot (deterministic from --seed)
// so every session's lifecycle lands in the daemon's flight recorder;
// --spans-out dumps the recorder as JSONL on exit (implies --trace) for
// tools/lsl_spans. The summary always reports session-latency percentiles
// (p50/p90/p99) from a fixed-bucket histogram of per-session wall times.
// Sessions refused by pool-pressure admission control are retried with
// backoff (the client half of the hop-by-hop backpressure contract), so a
// run under memory pressure completes late rather than failing.
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <csignal>
#include <memory>
#include <string>
#include <vector>

#include "buf/pool.hpp"
#include "metrics/export.hpp"
#include "metrics/instruments.hpp"
#include "metrics/metrics.hpp"
#include "posix/client.hpp"
#include "posix/epoll_loop.hpp"
#include "posix/lsd.hpp"
#include "posix/socket_util.hpp"
#include "span/span.hpp"
#include "util/log.hpp"
#include "util/units.hpp"

using namespace lsl;

namespace {

struct Options {
  std::size_t sessions = 16;
  std::uint64_t bytes = 4 * util::kMiB;
  std::uint64_t budget = 64 * util::kMiB;
  std::size_t chunk = 64 * util::kKiB;
  std::size_t buffer = 1 * util::kMiB;
  bool splice = true;
  std::uint64_t seed = 1;
  double timeout_s = 300.0;
  std::string json_file;
  std::string metrics_file;
  bool trace = false;
  std::string spans_file;
};

bool parse_size(const char* s, std::uint64_t* out) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || v < 0) return false;
  std::uint64_t mult = 1;
  if (*end == 'k' || *end == 'K') {
    mult = util::kKiB;
  } else if (*end == 'm' || *end == 'M') {
    mult = util::kMiB;
  } else if (*end == 'g' || *end == 'G') {
    mult = util::kGiB;
  } else if (*end != '\0') {
    return false;
  }
  *out = static_cast<std::uint64_t>(v * static_cast<double>(mult));
  return true;
}

/// Split "--name=value" / "--name value" argument forms.
const char* arg_value(const char* name, int argc, char** argv, int* i) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(argv[*i], name, n) != 0) return nullptr;
  if (argv[*i][n] == '=') return argv[*i] + n + 1;
  if (argv[*i][n] == '\0' && *i + 1 < argc) return argv[++*i];
  return nullptr;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: lsl_load [--sessions=N] [--bytes=SIZE] [--budget=SIZE]\n"
      "                [--chunk=SIZE] [--buffer=SIZE] [--no-splice]\n"
      "                [--seed=S] [--timeout=SECONDS] [--json=FILE]\n"
      "                [--metrics-out=FILE] [--log-level=LEVEL]\n"
      "                [--trace] [--spans-out=FILE]\n");
}

/// Peak resident set of this process, in bytes (Linux ru_maxrss is KiB).
std::uint64_t peak_rss_bytes() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
}

/// One logical session slot: retried with backoff until its stream
/// verifies (admission refusals surface as failed attempts).
struct Slot {
  std::unique_ptr<posix::PosixSource> source;
  std::uint32_t attempts = 0;
  bool completed = false;
  std::chrono::steady_clock::time_point next_attempt{};
  bool relaunch_due = false;
};

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::uint64_t size = 0;
    const char* v = nullptr;
    if ((v = arg_value("--sessions", argc, argv, &i)) != nullptr) {
      opt.sessions = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if ((v = arg_value("--bytes", argc, argv, &i)) != nullptr &&
               parse_size(v, &size)) {
      opt.bytes = size;
    } else if ((v = arg_value("--budget", argc, argv, &i)) != nullptr &&
               parse_size(v, &size)) {
      opt.budget = size;
    } else if ((v = arg_value("--chunk", argc, argv, &i)) != nullptr &&
               parse_size(v, &size)) {
      opt.chunk = static_cast<std::size_t>(size);
    } else if ((v = arg_value("--buffer", argc, argv, &i)) != nullptr &&
               parse_size(v, &size)) {
      opt.buffer = static_cast<std::size_t>(size);
    } else if (std::strcmp(argv[i], "--no-splice") == 0) {
      opt.splice = false;
    } else if (std::strcmp(argv[i], "--splice") == 0) {
      opt.splice = true;
    } else if ((v = arg_value("--seed", argc, argv, &i)) != nullptr) {
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if ((v = arg_value("--timeout", argc, argv, &i)) != nullptr) {
      opt.timeout_s = std::strtod(v, nullptr);
    } else if ((v = arg_value("--json", argc, argv, &i)) != nullptr) {
      opt.json_file = v;
    } else if ((v = arg_value("--metrics-out", argc, argv, &i)) != nullptr) {
      opt.metrics_file = v;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      opt.trace = true;
    } else if ((v = arg_value("--spans-out", argc, argv, &i)) != nullptr) {
      opt.spans_file = v;
      opt.trace = true;
    } else if ((v = arg_value("--log-level", argc, argv, &i)) != nullptr) {
      const auto lvl = util::parse_log_level(v);
      if (!lvl) {
        std::fprintf(stderr, "lsl_load: bad log level %s\n", v);
        return 2;
      }
      util::set_log_level(*lvl);
    } else {
      std::fprintf(stderr, "lsl_load: bad argument %s\n", argv[i]);
      usage();
      return 2;
    }
  }
  if (opt.sessions == 0 || opt.bytes == 0) {
    usage();
    return 2;
  }

  metrics::Registry registry;
  buf::PoolMetrics pool_metrics(registry);
  metrics::LsdMetrics lsd_metrics(registry, "lsd.load");
  metrics::Histogram& session_ms =
      registry.histogram("load.session_ms", metrics::latency_ms_bounds());

  posix::EpollLoop loop;
  posix::PosixSinkServer sink(loop, posix::InetAddress::loopback(0),
                              /*expect_header=*/true,
                              static_cast<std::uint32_t>(opt.seed));

  posix::LsdConfig dcfg;
  dcfg.buffer_bytes = opt.buffer;
  dcfg.use_splice = opt.splice;
  dcfg.pool.chunk_bytes = opt.chunk;
  dcfg.pool.budget_bytes = opt.budget;
  // Declared before the daemon: teardown flushes open stream windows
  // through the tracer, so it must outlive the Lsd (like the metrics).
  std::unique_ptr<span::Tracer> tracer;
  posix::Lsd daemon(loop, dcfg);
  daemon.set_metrics(&lsd_metrics);
  daemon.pool().set_metrics(&pool_metrics);

  if (opt.trace) {
    // Big enough that a default run's full lifecycle survives the ring.
    tracer = std::make_unique<span::Tracer>(
        "lsd." + std::to_string(daemon.port()), 64 * 1024);
    daemon.set_tracer(tracer.get());
  }

  std::size_t verified = 0;
  std::size_t mismatched = 0;
  std::uint64_t payload_total = 0;
  sink.on_complete = [&](const posix::SinkResult& r) {
    if (r.verified) {
      ++verified;
      payload_total += r.payload_bytes;
      session_ms.observe(r.seconds * 1000.0);
    } else {
      ++mismatched;
    }
  };

  posix::PosixSourceConfig scfg;
  scfg.route = {posix::InetAddress::loopback(daemon.port())};
  scfg.destination = posix::InetAddress::loopback(sink.port());
  scfg.payload_bytes = opt.bytes;
  scfg.payload_seed = static_cast<std::uint32_t>(opt.seed);

  std::vector<Slot> slots(opt.sessions);
  constexpr std::uint32_t kMaxAttempts = 25;
  auto launch = [&](Slot& s) {
    ++s.attempts;
    s.relaunch_due = false;
    posix::PosixSourceConfig cfg = scfg;
    if (opt.trace) {
      // One id per slot, stable across retry attempts (a retried slot is
      // the same logical transfer) and deterministic from the run seed.
      const std::size_t idx = static_cast<std::size_t>(&s - slots.data());
      cfg.trace_id = span::mint_trace_id(opt.seed * 100003 + idx);
    }
    s.source = std::make_unique<posix::PosixSource>(loop, cfg);
    Slot* sp = &s;
    s.source->on_done = [&, sp](bool ok) {
      if (ok) {
        sp->completed = true;
        return;
      }
      // Refused at admission (or reset mid-handshake): back off linearly
      // and try again — the pool drains as running sessions finish.
      sp->relaunch_due = true;
      sp->next_attempt = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(20 * sp->attempts);
    };
    s.source->start();
  };

  const auto t0 = std::chrono::steady_clock::now();
  for (auto& s : slots) launch(s);

  const auto deadline =
      t0 + std::chrono::duration<double>(opt.timeout_s);
  bool gave_up = false;
  while (verified + mismatched < opt.sessions) {
    const auto now = std::chrono::steady_clock::now();
    if (now > deadline) {
      gave_up = true;
      break;
    }
    for (auto& s : slots) {
      if (s.relaunch_due && now >= s.next_attempt) {
        if (s.attempts >= kMaxAttempts) {
          ++mismatched;  // counts against the run
          s.relaunch_due = false;
        } else {
          launch(s);
        }
      }
    }
    loop.run_once(20);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const auto pool = daemon.pool().stats();
  const auto& st = daemon.stats();
  const std::uint64_t rss = peak_rss_bytes();
  const double reuse_rate =
      pool.allocs > 0
          ? static_cast<double>(pool.reuses) / static_cast<double>(pool.allocs)
          : 0.0;
  const double mbps =
      elapsed > 0 ? static_cast<double>(payload_total) * 8 / 1e6 / elapsed
                  : 0.0;
  const double sessions_per_s =
      elapsed > 0 ? static_cast<double>(verified) / elapsed : 0.0;

  std::printf(
      "lsl_load: %zu/%zu sessions verified in %.3f s "
      "(%.2f Mbit/s aggregate, %.2f sessions/s)\n",
      verified, opt.sessions, elapsed, mbps, sessions_per_s);
  std::printf(
      "  pool: peak %llu / budget %llu bytes, %llu allocs "
      "(%.1f%% reuse), %llu refusals, %llu pressure episodes\n",
      static_cast<unsigned long long>(pool.peak_bytes),
      static_cast<unsigned long long>(opt.budget),
      static_cast<unsigned long long>(pool.allocs), reuse_rate * 100,
      static_cast<unsigned long long>(pool.failures),
      static_cast<unsigned long long>(pool.pressure_episodes));
  std::printf(
      "  daemon: %llu relayed (%llu spliced), %llu sessions refused at "
      "admission; peak RSS %llu KiB\n",
      static_cast<unsigned long long>(st.bytes_relayed),
      static_cast<unsigned long long>(st.bytes_spliced),
      static_cast<unsigned long long>(st.sessions_refused),
      static_cast<unsigned long long>(rss / 1024));
  std::printf("  session latency: p50 %.1f ms, p90 %.1f ms, p99 %.1f ms\n",
              session_ms.percentile(0.50), session_ms.percentile(0.90),
              session_ms.percentile(0.99));

  const bool over_budget = opt.budget > 0 && pool.peak_bytes > opt.budget;
  const bool ok = !gave_up && mismatched == 0 &&
                  verified == opt.sessions && !over_budget;

  if (!opt.json_file.empty()) {
    std::FILE* f = std::fopen(opt.json_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "lsl_load: cannot write %s\n",
                   opt.json_file.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\"sessions\": %zu, \"verified\": %zu, \"bytes_per_session\": %llu,"
        " \"elapsed_s\": %.6f, \"aggregate_mbps\": %.3f,"
        " \"sessions_per_s\": %.3f, \"splice\": %s,"
        " \"bytes_relayed\": %llu, \"bytes_spliced\": %llu,"
        " \"pool_budget_bytes\": %llu, \"pool_peak_bytes\": %llu,"
        " \"pool_allocs\": %llu, \"pool_reuse_rate\": %.4f,"
        " \"pool_failures\": %llu, \"pool_pressure_episodes\": %llu,"
        " \"sessions_refused\": %llu, \"peak_rss_bytes\": %llu,"
        " \"latency_p50_ms\": %.3f, \"latency_p90_ms\": %.3f,"
        " \"latency_p99_ms\": %.3f,"
        " \"ok\": %s}\n",
        opt.sessions, verified,
        static_cast<unsigned long long>(opt.bytes), elapsed, mbps,
        sessions_per_s, opt.splice ? "true" : "false",
        static_cast<unsigned long long>(st.bytes_relayed),
        static_cast<unsigned long long>(st.bytes_spliced),
        static_cast<unsigned long long>(opt.budget),
        static_cast<unsigned long long>(pool.peak_bytes),
        static_cast<unsigned long long>(pool.allocs), reuse_rate,
        static_cast<unsigned long long>(pool.failures),
        static_cast<unsigned long long>(pool.pressure_episodes),
        static_cast<unsigned long long>(st.sessions_refused),
        static_cast<unsigned long long>(rss), session_ms.percentile(0.50),
        session_ms.percentile(0.90), session_ms.percentile(0.99),
        ok ? "true" : "false");
    std::fclose(f);
  }
  if (!opt.spans_file.empty()) {
    if (!span::dump_file(*tracer, opt.spans_file)) {
      std::fprintf(stderr, "lsl_load: cannot write %s\n",
                   opt.spans_file.c_str());
      return 1;
    }
    std::printf("  spans: %llu recorded (%llu dropped) -> %s\n",
                static_cast<unsigned long long>(tracer->recorder().recorded()),
                static_cast<unsigned long long>(tracer->recorder().dropped()),
                opt.spans_file.c_str());
  }
  if (!opt.metrics_file.empty() &&
      !metrics::write_file(registry, opt.metrics_file)) {
    std::fprintf(stderr, "lsl_load: cannot write %s\n",
                 opt.metrics_file.c_str());
    return 1;
  }
  if (over_budget) {
    std::fprintf(stderr, "lsl_load: FAIL pool peak exceeded budget\n");
  }
  if (gave_up) {
    std::fprintf(stderr, "lsl_load: FAIL timed out with sessions pending\n");
  }
  if (mismatched > 0) {
    std::fprintf(stderr, "lsl_load: FAIL %zu sessions failed verification\n",
                 mismatched);
  }
  return ok ? 0 : 1;
}
